(* HMAC-DRBG over SHA-256 (NIST SP 800-90A).

   Serves two roles: (1) the deterministic nonce derivation of RFC 6979 used
   by [Larch_ec.Ecdsa] (the update/generate loop below is exactly the K,V
   state machine of that RFC), and (2) a seedable, reproducible randomness
   source for tests, benchmarks and the simulator — every protocol entry
   point takes a [rand_bytes] function so runs can be made deterministic. *)

type t = { mutable k : string; mutable v : string }

let update (t : t) (data : string) : unit =
  t.k <- Hmac.sha256 ~key:t.k (t.v ^ "\x00" ^ data);
  t.v <- Hmac.sha256 ~key:t.k t.v;
  if data <> "" then begin
    t.k <- Hmac.sha256 ~key:t.k (t.v ^ "\x01" ^ data);
    t.v <- Hmac.sha256 ~key:t.k t.v
  end

let create ~(entropy : string) : t =
  let t = { k = String.make 32 '\000'; v = String.make 32 '\x01' } in
  update t entropy;
  t

let generate (t : t) (n : int) : string =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.v <- Hmac.sha256 ~key:t.k t.v;
    Buffer.add_string buf t.v
  done;
  t.k <- Hmac.sha256 ~key:t.k (t.v ^ "\x00");
  t.v <- Hmac.sha256 ~key:t.k t.v;
  String.sub (Buffer.contents buf) 0 n

(* Rejection hook used by RFC 6979: mix in a zero byte and refresh V. *)
let retry (t : t) : unit =
  t.k <- Hmac.sha256 ~key:t.k (t.v ^ "\x00");
  t.v <- Hmac.sha256 ~key:t.k t.v

(* A convenient [rand_bytes] closure.  [of_seed] gives deterministic streams
   for tests; [system] pulls entropy from /dev/urandom once and runs the DRBG
   thereafter. *)
let rand_bytes_of (t : t) : int -> string = fun n -> generate t n

let of_seed (seed : string) : int -> string = rand_bytes_of (create ~entropy:seed)

let system_entropy () : string =
  try
    let ic = open_in_bin "/dev/urandom" in
    let s = really_input_string ic 48 in
    close_in ic;
    s
  with _ ->
    (* Fallback for exotic sandboxes: clock-derived seed. *)
    Printf.sprintf "%f-%d-fallback-entropy" (Unix.gettimeofday ()) (Unix.getpid ())

let system () : int -> string = of_seed (system_entropy ())
