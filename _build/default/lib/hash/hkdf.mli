(** HKDF (RFC 5869) over HMAC-SHA256: per-purpose subkey derivation from
    archive keys, OT pads, and PRG seeds. *)

val extract : ?salt:string -> string -> string
val expand : prk:string -> info:string -> len:int -> string
val derive : ?salt:string -> ikm:string -> info:string -> len:int -> unit -> string
