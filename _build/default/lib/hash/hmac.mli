(** HMAC (RFC 2104) over SHA-256 and SHA-1.  HMAC-SHA1 is what RFC 6238
    TOTP computes; HMAC-SHA256 backs HKDF and the DRBG. *)

type algo = SHA256 | SHA1

val block_size : algo -> int
val digest_size : algo -> int
val hash : algo -> string -> string

val mac : algo:algo -> key:string -> string -> string
val sha256 : key:string -> string -> string
val sha1 : key:string -> string -> string
