(** SHA-256 (FIPS 180-4) — the root of trust for commitments, signing
    digests, HMAC, the DRBG, and the in-circuit statements (the gate-level
    SHA-256 is tested against this module). *)

val digest_size : int
val block_size : int

val digest : string -> string
val digest_list : string list -> string

(** {1 Streaming} *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit
val finish : ctx -> string

(**/**)

val k : int array
val initial_state : int array
val compress : int array -> string -> int -> unit
