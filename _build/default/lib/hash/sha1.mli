(** SHA-1 (FIPS 180-4) — present solely because RFC 6238 TOTP defaults to
    HMAC-SHA1; the gate-level circuit is tested against this module. *)

val digest_size : int
val block_size : int
val digest : string -> string

(**/**)

val compress : int array -> string -> int -> unit
