(* HKDF (RFC 5869) over HMAC-SHA256.  Used to derive per-purpose subkeys from
   larch archive keys and transport secrets. *)

let extract ?(salt = "") (ikm : string) : string =
  let salt = if salt = "" then String.make Sha256.digest_size '\000' else salt in
  Hmac.sha256 ~key:salt ikm

let expand ~(prk : string) ~(info : string) ~(len : int) : string =
  if len > 255 * Sha256.digest_size then invalid_arg "Hkdf.expand: too long";
  let buf = Buffer.create len in
  let t = ref "" in
  let i = ref 1 in
  while Buffer.length buf < len do
    t := Hmac.sha256 ~key:prk (!t ^ info ^ String.make 1 (Char.chr !i));
    Buffer.add_string buf !t;
    incr i
  done;
  String.sub (Buffer.contents buf) 0 len

let derive ?salt ~(ikm : string) ~(info : string) ~(len : int) () : string =
  expand ~prk:(extract ?salt ikm) ~info ~len
