(** HMAC-DRBG over SHA-256 (NIST SP 800-90A).

    Doubles as the RFC 6979 deterministic-nonce machine (the K,V update
    loop is exactly that RFC's) and as the seedable randomness source every
    protocol entry point consumes via a [rand_bytes : int -> string]
    closure — seeded for reproducible tests/benches, system-seeded for
    examples. *)

type t

val create : entropy:string -> t
val update : t -> string -> unit
val generate : t -> int -> string

val retry : t -> unit
(** The RFC 6979 rejection step (mix a zero byte, refresh V). *)

val rand_bytes_of : t -> int -> string

val of_seed : string -> int -> string
(** Deterministic stream from a seed. *)

val system : unit -> int -> string
(** Seeded once from /dev/urandom. *)

(**/**)

val system_entropy : unit -> string
