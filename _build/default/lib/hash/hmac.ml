(* HMAC (RFC 2104) over SHA-256 and SHA-1. *)

type algo = SHA256 | SHA1

let block_size = function SHA256 -> Sha256.block_size | SHA1 -> Sha1.block_size
let digest_size = function SHA256 -> Sha256.digest_size | SHA1 -> Sha1.digest_size
let hash algo s = match algo with SHA256 -> Sha256.digest s | SHA1 -> Sha1.digest s

let mac ~(algo : algo) ~(key : string) (msg : string) : string =
  let bs = block_size algo in
  let key = if String.length key > bs then hash algo key else key in
  let key = key ^ String.make (bs - String.length key) '\000' in
  let ipad = Larch_util.Bytesx.xor key (String.make bs '\x36') in
  let opad = Larch_util.Bytesx.xor key (String.make bs '\x5c') in
  hash algo (opad ^ hash algo (ipad ^ msg))

let sha256 ~key msg = mac ~algo:SHA256 ~key msg
let sha1 ~key msg = mac ~algo:SHA1 ~key msg
