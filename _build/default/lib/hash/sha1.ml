(* SHA-1 (FIPS 180-4).

   Present because RFC 6238 TOTP defaults to HMAC-SHA1; the gate-level
   circuit in [Larch_circuit.Sha1_circuit] is tested against this module.
   SHA-1 is used here only where the TOTP standard requires it. *)

let mask32 = 0xffffffff
let digest_size = 20
let block_size = 64

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let compress (h : int array) (block : string) (off : int) : unit =
  let w = Array.make 80 0 in
  for t = 0 to 15 do
    let i = off + (4 * t) in
    w.(t) <-
      (Char.code block.[i] lsl 24)
      lor (Char.code block.[i + 1] lsl 16)
      lor (Char.code block.[i + 2] lsl 8)
      lor Char.code block.[i + 3]
  done;
  for t = 16 to 79 do
    w.(t) <- rotl (w.(t - 3) lxor w.(t - 8) lxor w.(t - 14) lxor w.(t - 16)) 1
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) and e = ref h.(4) in
  for t = 0 to 79 do
    let f, kc =
      if t < 20 then ((!b land !c) lor (lnot !b land !d) land mask32, 0x5a827999)
      else if t < 40 then (!b lxor !c lxor !d, 0x6ed9eba1)
      else if t < 60 then ((!b land !c) lor (!b land !d) lor (!c land !d), 0x8f1bbcdc)
      else (!b lxor !c lxor !d, 0xca62c1d6)
    in
    let tmp = (rotl !a 5 + f + !e + kc + w.(t)) land mask32 in
    e := !d;
    d := !c;
    c := rotl !b 30;
    b := !a;
    a := tmp
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32

let digest (s : string) : string =
  let h = [| 0x67452301; 0xefcdab89; 0x98badcfe; 0x10325476; 0xc3d2e1f0 |] in
  let total = String.length s in
  let pad_len =
    let r = (total + 1 + 8) mod block_size in
    if r = 0 then 1 + 8 else 1 + 8 + (block_size - r)
  in
  let msg = Bytes.make (total + pad_len) '\000' in
  Bytes.blit_string s 0 msg 0 total;
  Bytes.set msg total '\x80';
  Bytes.set_int64_be msg (total + pad_len - 8) (Int64.of_int (8 * total));
  let msg = Bytes.unsafe_to_string msg in
  let nblocks = String.length msg / block_size in
  for i = 0 to nblocks - 1 do
    compress h msg (i * block_size)
  done;
  let out = Bytes.create digest_size in
  for i = 0 to 4 do
    Bytes.set_uint8 out (4 * i) ((h.(i) lsr 24) land 0xff);
    Bytes.set_uint8 out ((4 * i) + 1) ((h.(i) lsr 16) land 0xff);
    Bytes.set_uint8 out ((4 * i) + 2) ((h.(i) lsr 8) land 0xff);
    Bytes.set_uint8 out ((4 * i) + 3) (h.(i) land 0xff)
  done;
  Bytes.unsafe_to_string out
