lib/hash/drbg.ml: Buffer Hmac Printf String Unix
