lib/hash/sha1.ml: Array Bytes Char Int64 String
