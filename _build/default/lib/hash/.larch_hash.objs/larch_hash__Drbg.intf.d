lib/hash/drbg.mli:
