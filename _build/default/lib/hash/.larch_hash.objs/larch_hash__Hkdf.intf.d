lib/hash/hkdf.mli:
