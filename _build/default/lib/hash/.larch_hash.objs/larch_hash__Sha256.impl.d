lib/hash/sha256.ml: Array Bytes Char Int64 List String
