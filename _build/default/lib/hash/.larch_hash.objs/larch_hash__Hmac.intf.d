lib/hash/hmac.mli:
