lib/hash/hmac.ml: Larch_util Sha1 Sha256 String
