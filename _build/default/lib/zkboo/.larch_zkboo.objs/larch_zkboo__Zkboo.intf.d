lib/zkboo/zkboo.mli: Larch_circuit
