lib/zkboo/zkboo.ml: Array Buffer Bytes Char Larch_cipher Larch_circuit Larch_hash Larch_util List String
