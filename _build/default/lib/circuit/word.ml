(* 32-bit words over circuit wires (index 0 = least significant bit).

   Rotations and shifts are pure wiring, XOR is free in both backends, and
   addition is a ripple-carry chain costing one AND per bit via the
   majority identity maj(a,b,c) = a XOR ((a XOR b) AND (a XOR c)). *)

type t = Builder.wire array (* length 32 *)

let width = 32

let of_const (b : Builder.t) (v : int) : t =
  Array.init width (fun i -> Builder.const b ((v lsr i) land 1 = 1))

let xor (b : Builder.t) (x : t) (y : t) : t = Array.map2 (Builder.bxor b) x y
let and_ (b : Builder.t) (x : t) (y : t) : t = Array.map2 (Builder.band b) x y
let not_ (b : Builder.t) (x : t) : t = Array.map (Builder.bnot b) x

let rotr (x : t) (n : int) : t = Array.init width (fun i -> x.((i + n) mod width))
let rotl (x : t) (n : int) : t = rotr x (width - n)

let shr (b : Builder.t) (x : t) (n : int) : t =
  Array.init width (fun i -> if i + n < width then x.(i + n) else Builder.const b false)

let add (b : Builder.t) (x : t) (y : t) : t =
  let out = Array.make width 0 in
  let carry = ref (Builder.const b false) in
  for i = 0 to width - 1 do
    let axb = Builder.bxor b x.(i) y.(i) in
    out.(i) <- Builder.bxor b axb !carry;
    if i < width - 1 then begin
      let axc = Builder.bxor b x.(i) !carry in
      carry := Builder.bxor b x.(i) (Builder.band b axb axc)
    end
  done;
  out

let add_list (b : Builder.t) (xs : t list) : t =
  match xs with
  | [] -> of_const b 0
  | x :: rest -> List.fold_left (add b) x rest

(* [w AND (f XOR g) XOR g] — the 1-AND-per-bit "choose" used by SHA. *)
let choose (b : Builder.t) (e : t) (f : t) (g : t) : t =
  Array.init width (fun i -> Builder.bxor b g.(i) (Builder.band b e.(i) (Builder.bxor b f.(i) g.(i))))

let majority (b : Builder.t) (x : t) (y : t) (z : t) : t =
  Array.init width (fun i ->
      let xy = Builder.bxor b x.(i) y.(i) and xz = Builder.bxor b x.(i) z.(i) in
      Builder.bxor b x.(i) (Builder.band b xy xz))

(* Message bits are byte-ordered, LSB-first within each byte (the layout of
   [Larch_util.Bytesx.bits_of_string]); SHA interprets each 4-byte group as
   a big-endian 32-bit word. *)
let words_of_bitwires (bits : Builder.wire array) : t array =
  if Array.length bits mod 32 <> 0 then invalid_arg "Word.words_of_bitwires: not 32-bit aligned";
  Array.init
    (Array.length bits / 32)
    (fun j -> Array.init width (fun k -> bits.(((4 * j) + (3 - (k / 8))) * 8 + (k mod 8))))

let bitwires_of_words (words : t array) : Builder.wire array =
  let n = Array.length words in
  Array.init (32 * n)
    (fun i ->
      (* bit i of the byte stream: byte i/8, bit i mod 8 (LSB-first) *)
      let byte = i / 8 and bit = i mod 8 in
      let j = byte / 4 and byte_in_word = byte mod 4 in
      words.(j).((8 * (3 - byte_in_word)) + bit))
