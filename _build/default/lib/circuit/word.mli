(** 32-bit words over circuit wires (index 0 = LSB).

    Rotations/shifts are wiring, XOR is free, and addition costs one AND
    per bit via maj(a,b,c) = a ⊕ ((a⊕b) ∧ (a⊕c)) — the cost model behind
    the SHA circuit sizes. *)

type t = Builder.wire array

val width : int
val of_const : Builder.t -> int -> t
val xor : Builder.t -> t -> t -> t
val and_ : Builder.t -> t -> t -> t
val not_ : Builder.t -> t -> t
val rotr : t -> int -> t
val rotl : t -> int -> t
val shr : Builder.t -> t -> int -> t
val add : Builder.t -> t -> t -> t
val add_list : Builder.t -> t list -> t

val choose : Builder.t -> t -> t -> t -> t
(** SHA's Ch(e,f,g) in one AND per bit. *)

val majority : Builder.t -> t -> t -> t -> t
(** SHA's Maj(x,y,z) in one AND per bit. *)

val words_of_bitwires : Builder.wire array -> t array
(** Byte-ordered, LSB-first bits → big-endian 32-bit words (SHA layout). *)

val bitwires_of_words : t array -> Builder.wire array
