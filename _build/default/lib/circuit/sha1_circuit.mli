(** Gate-level SHA-1 (fixed-length messages) — HMAC-SHA1 inside the TOTP
    2PC circuit (~11k AND gates per compression).  Tested against
    {!Larch_hash.Sha1}. *)

val iv : int array
val compress : Builder.t -> state:Word.t array -> block:Word.t array -> Word.t array
val hash_fixed : Builder.t -> msg:Builder.wire array -> Builder.wire array
