(** Boolean circuit intermediate representation — the common substrate of
    ZKBoo proofs (FIDO2) and garbled-circuit 2PC (TOTP).

    Gates are XOR / AND / NOT / constants: XOR and NOT are free in both
    backends, AND is the counted cost.  Wires [0, n_inputs) are inputs;
    gate i defines wire n_inputs + i and may only reference earlier
    wires. *)

type gate = And of int * int | Xor of int * int | Not of int | Const of bool

type t = {
  n_inputs : int;
  gates : gate array;
  outputs : int array;
  n_and : int; (** cached AND-gate count *)
  and_index : int array; (** gate index → dense AND index, or -1 *)
}

val make : n_inputs:int -> gates:gate array -> outputs:int array -> t
(** Validates wire references. @raise Invalid_argument on forward edges *)

val n_wires : t -> int
val n_gates : t -> int
val n_outputs : t -> int

val eval : t -> bool array -> bool array
(** Reference (cleartext) evaluation. *)

val eval_bits : t -> int array -> int array
