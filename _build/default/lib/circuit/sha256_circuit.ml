(* Gate-level SHA-256 for fixed-length messages.

   The larch FIDO2 statement proves three SHA-256 relations in zero
   knowledge (commitment opening, record encryption keystream, signing
   digest) and the TOTP 2PC circuit reuses the same construction, so this
   module is on the hot path of both proof systems.  Roughly 23k AND gates
   per compression. *)

let k_const = Larch_hash.Sha256.k
let iv = Larch_hash.Sha256.initial_state

let compress (b : Builder.t) ~(state : Word.t array) ~(block : Word.t array) : Word.t array =
  let w = Array.make 64 [||] in
  Array.blit block 0 w 0 16;
  for t = 16 to 63 do
    let s0 =
      Word.xor b (Word.xor b (Word.rotr w.(t - 15) 7) (Word.rotr w.(t - 15) 18)) (Word.shr b w.(t - 15) 3)
    in
    let s1 =
      Word.xor b (Word.xor b (Word.rotr w.(t - 2) 17) (Word.rotr w.(t - 2) 19)) (Word.shr b w.(t - 2) 10)
    in
    w.(t) <- Word.add_list b [ w.(t - 16); s0; w.(t - 7); s1 ]
  done;
  let a = ref state.(0) and bb = ref state.(1) and c = ref state.(2) and d = ref state.(3) in
  let e = ref state.(4) and f = ref state.(5) and g = ref state.(6) and h = ref state.(7) in
  for t = 0 to 63 do
    let s1 = Word.xor b (Word.xor b (Word.rotr !e 6) (Word.rotr !e 11)) (Word.rotr !e 25) in
    let ch = Word.choose b !e !f !g in
    let t1 = Word.add_list b [ !h; s1; ch; Word.of_const b k_const.(t); w.(t) ] in
    let s0 = Word.xor b (Word.xor b (Word.rotr !a 2) (Word.rotr !a 13)) (Word.rotr !a 22) in
    let maj = Word.majority b !a !bb !c in
    let t2 = Word.add b s0 maj in
    h := !g;
    g := !f;
    f := !e;
    e := Word.add b !d t1;
    d := !c;
    c := !bb;
    bb := !a;
    a := Word.add b t1 t2
  done;
  let pairs = [| (!a, 0); (!bb, 1); (!c, 2); (!d, 3); (!e, 4); (!f, 5); (!g, 6); (!h, 7) |] in
  Array.map (fun (v, i) -> Word.add b state.(i) v) pairs

(* Full SHA-256 of a message whose byte length is fixed at circuit build
   time.  [msg] is the message's bit wires (byte order, LSB-first per byte);
   returns the 256 digest bit wires in the same layout. *)
let hash_fixed (b : Builder.t) ~(msg : Builder.wire array) : Builder.wire array =
  if Array.length msg mod 8 <> 0 then invalid_arg "Sha256_circuit.hash_fixed: not byte aligned";
  let len_bytes = Array.length msg / 8 in
  let pad_len =
    let r = (len_bytes + 1 + 8) mod 64 in
    if r = 0 then 1 + 8 else 1 + 8 + (64 - r)
  in
  let padding = Bytes.make pad_len '\000' in
  Bytes.set padding 0 '\x80';
  Bytes.set_int64_be padding (pad_len - 8) (Int64.of_int (8 * len_bytes));
  let pad_wires = Builder.const_bytes b (Bytes.unsafe_to_string padding) in
  let all_bits = Array.append msg pad_wires in
  let words = Word.words_of_bitwires all_bits in
  let state = ref (Array.map (Word.of_const b) iv) in
  let nblocks = Array.length words / 16 in
  for i = 0 to nblocks - 1 do
    state := compress b ~state:!state ~block:(Array.sub words (16 * i) 16)
  done;
  Word.bitwires_of_words !state
