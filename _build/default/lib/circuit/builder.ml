(* Imperative circuit builder.

   All inputs must be allocated before the first gate so that input wires
   occupy the prefix of the wire space (both proof backends rely on that
   layout).  The builder hash-conses constants and caches nothing else;
   statement circuits are built once and reused. *)

type wire = int

type t = {
  mutable n_inputs : int;
  mutable gates_rev : Circuit.gate list;
  mutable n_gates : int;
  mutable frozen_inputs : bool;
  mutable const_cache : (bool * wire) list;
}

let create () =
  { n_inputs = 0; gates_rev = []; n_gates = 0; frozen_inputs = false; const_cache = [] }

let input (b : t) : wire =
  if b.frozen_inputs then invalid_arg "Builder.input: inputs must precede gates";
  let w = b.n_inputs in
  b.n_inputs <- b.n_inputs + 1;
  w

let inputs (b : t) (n : int) : wire array = Array.init n (fun _ -> input b)

let push (b : t) (g : Circuit.gate) : wire =
  b.frozen_inputs <- true;
  let w = b.n_inputs + b.n_gates in
  b.gates_rev <- g :: b.gates_rev;
  b.n_gates <- b.n_gates + 1;
  w

let band b x y = push b (Circuit.And (x, y))
let bxor b x y = if x = y then push b (Circuit.Const false) else push b (Circuit.Xor (x, y))
let bnot b x = push b (Circuit.Not x)

let const (b : t) (v : bool) : wire =
  match List.assoc_opt v b.const_cache with
  | Some w -> w
  | None ->
      let w = push b (Circuit.Const v) in
      b.const_cache <- (v, w) :: b.const_cache;
      w

let bor b x y = bnot b (band b (bnot b x) (bnot b y))

(* Balanced AND-tree: true iff all wires are 1. *)
let rec and_all (b : t) (ws : wire list) : wire =
  match ws with
  | [] -> const b true
  | [ w ] -> w
  | _ ->
      let rec split acc n = function
        | rest when n = 0 -> (List.rev acc, rest)
        | x :: rest -> split (x :: acc) (n - 1) rest
        | [] -> (List.rev acc, [])
      in
      let half = List.length ws / 2 in
      let l, r = split [] half ws in
      band b (and_all b l) (and_all b r)

(* 1 iff the two wire vectors are equal. *)
let eq_vec (b : t) (xs : wire array) (ys : wire array) : wire =
  if Array.length xs <> Array.length ys then invalid_arg "Builder.eq_vec: length mismatch";
  let bits = Array.to_list (Array.map2 (fun x y -> bnot b (bxor b x y)) xs ys) in
  and_all b bits

(* mux: sel = 0 -> a, sel = 1 -> b, bitwise over vectors.
   out = a XOR (sel AND (a XOR b)). *)
let mux_vec (b : t) ~(sel : wire) (a : wire array) (c : wire array) : wire array =
  Array.map2 (fun x y -> bxor b x (band b sel (bxor b x y))) a c

let and_vec (b : t) ~(w : wire) (xs : wire array) : wire array =
  Array.map (fun x -> band b w x) xs

let xor_vec (b : t) (xs : wire array) (ys : wire array) : wire array =
  Array.map2 (fun x y -> bxor b x y) xs ys

let const_bits (b : t) (bits : int array) : wire array =
  Array.map (fun v -> const b (v land 1 = 1)) bits

(* Constant wires for a byte string, LSB-first per byte (matching
   [Larch_util.Bytesx.bits_of_string]). *)
let const_bytes (b : t) (s : string) : wire array =
  const_bits b (Larch_util.Bytesx.bits_of_string s)

let finalize (b : t) ~(outputs : wire array) : Circuit.t =
  Circuit.make ~n_inputs:b.n_inputs
    ~gates:(Array.of_list (List.rev b.gates_rev))
    ~outputs
