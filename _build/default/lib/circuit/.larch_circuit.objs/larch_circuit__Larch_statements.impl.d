lib/circuit/larch_statements.ml: Array Buffer Builder Bytes Circuit Larch_hash Larch_util Lazy List Printf Sha1_circuit Sha256_circuit String
