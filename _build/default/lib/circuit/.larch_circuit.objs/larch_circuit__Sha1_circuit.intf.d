lib/circuit/sha1_circuit.mli: Builder Word
