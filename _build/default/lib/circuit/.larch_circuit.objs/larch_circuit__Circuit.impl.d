lib/circuit/circuit.ml: Array
