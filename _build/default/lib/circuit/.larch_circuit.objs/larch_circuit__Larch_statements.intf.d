lib/circuit/larch_statements.mli: Builder Circuit Lazy
