lib/circuit/sha1_circuit.ml: Array Builder Bytes Int64 Word
