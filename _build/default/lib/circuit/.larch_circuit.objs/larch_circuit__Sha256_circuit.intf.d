lib/circuit/sha256_circuit.mli: Builder Word
