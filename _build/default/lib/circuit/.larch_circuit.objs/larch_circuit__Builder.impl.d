lib/circuit/builder.ml: Array Circuit Larch_util List
