lib/circuit/circuit.mli:
