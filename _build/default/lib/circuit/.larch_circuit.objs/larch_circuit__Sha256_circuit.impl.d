lib/circuit/sha256_circuit.ml: Array Builder Bytes Int64 Larch_hash Word
