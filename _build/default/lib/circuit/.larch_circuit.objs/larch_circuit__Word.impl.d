lib/circuit/word.ml: Array Builder List
