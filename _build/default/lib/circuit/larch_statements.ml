(* The two larch statement circuits.

   FIDO2 (§3.2): the client proves in zero knowledge (via ZKBoo) that it
   knows archive key k, commitment nonce r, relying-party id and challenge
   chal such that, for the public commitment cm, record ciphertext ct,
   encryption nonce and signing digest dgst:

     (a) cm   = SHA256(k ‖ r)
     (b) ct   = id XOR SHA256(k ‖ nonce ‖ 0)      (the sha_ctr keystream)
     (c) dgst = SHA256(id ‖ chal)

   The nonce is public but varies per authentication, so the circuit treats
   it as a witness wire and *echoes it as an output*; the verifier checks
   the echoed bits against the public nonce.  This keeps one statically
   built circuit for every authentication.

   TOTP (§4): a garbled 2PC circuit over the client's (k, r, id, kclient)
   and the log's registration table ((id_j, klog_j))_j that checks the
   archive-key commitment, selects the log's key share for id, reassembles
   the TOTP key, computes HMAC-SHA1(k_id, T), and encrypts id under k.
   Public per-execution values (cm, nonce, time counter) are baked in as
   constants because a garbling is single-use anyway. *)

module Bytesx = Larch_util.Bytesx

(* --- field sizes (bytes) --- *)
let archive_key_len = 32
let commit_nonce_len = 16
let rp_id_len = 32
let challenge_len = 32
let enc_nonce_len = 12
let totp_id_len = 16
let totp_key_len = 20

(* ---------- FIDO2 statement ---------- *)

type fido2_witness = { k : string; r : string; id : string; chal : string; nonce : string }

let check_len name expected s =
  if String.length s <> expected then
    invalid_arg (Printf.sprintf "Larch_statements: %s must be %d bytes, got %d" name expected (String.length s))

let fido2_circuit : Circuit.t Lazy.t =
  lazy
    (let b = Builder.create () in
     let k = Builder.inputs b (8 * archive_key_len) in
     let r = Builder.inputs b (8 * commit_nonce_len) in
     let id = Builder.inputs b (8 * rp_id_len) in
     let chal = Builder.inputs b (8 * challenge_len) in
     let nonce = Builder.inputs b (8 * enc_nonce_len) in
     let cm = Sha256_circuit.hash_fixed b ~msg:(Array.concat [ k; r ]) in
     let ctr0 = Builder.const_bytes b (Bytesx.be32 0) in
     let keystream = Sha256_circuit.hash_fixed b ~msg:(Array.concat [ k; nonce; ctr0 ]) in
     let ct = Builder.xor_vec b id keystream in
     let dgst = Sha256_circuit.hash_fixed b ~msg:(Array.concat [ id; chal ]) in
     Builder.finalize b ~outputs:(Array.concat [ cm; ct; dgst; nonce ]))

let fido2_witness_bits (w : fido2_witness) : bool array =
  check_len "k" archive_key_len w.k;
  check_len "r" commit_nonce_len w.r;
  check_len "id" rp_id_len w.id;
  check_len "chal" challenge_len w.chal;
  check_len "nonce" enc_nonce_len w.nonce;
  let bits = Bytesx.bits_of_string (w.k ^ w.r ^ w.id ^ w.chal ^ w.nonce) in
  Array.map (fun v -> v = 1) bits

let fido2_public_bits ~(cm : string) ~(ct : string) ~(dgst : string) ~(nonce : string) : bool array =
  check_len "cm" 32 cm;
  check_len "ct" rp_id_len ct;
  check_len "dgst" 32 dgst;
  check_len "nonce" enc_nonce_len nonce;
  Array.map (fun v -> v = 1) (Bytesx.bits_of_string (cm ^ ct ^ dgst ^ nonce))

(* Software counterparts, used by the client to form the statement and by
   tests to cross-check the circuit. *)
let fido2_compute ~(k : string) ~(r : string) ~(id : string) ~(chal : string) ~(nonce : string) :
    string * string * string =
  let cm = Larch_hash.Sha256.digest (k ^ r) in
  let keystream = Larch_hash.Sha256.digest (k ^ nonce ^ Bytesx.be32 0) in
  let ct = Bytesx.xor id keystream in
  let dgst = Larch_hash.Sha256.digest (id ^ chal) in
  (cm, ct, dgst)

(* ---------- TOTP 2PC circuit ---------- *)

(* HMAC-SHA1 with a wire-valued key of at most one block. *)
let hmac_sha1_wires (b : Builder.t) ~(key : Builder.wire array) ~(msg : Builder.wire array) :
    Builder.wire array =
  if Array.length key > 512 then invalid_arg "hmac_sha1_wires: key longer than one block";
  let zero = Builder.const b false in
  let key_block = Array.init 512 (fun i -> if i < Array.length key then key.(i) else zero) in
  let ipad = Builder.xor_vec b key_block (Builder.const_bytes b (String.make 64 '\x36')) in
  let opad = Builder.xor_vec b key_block (Builder.const_bytes b (String.make 64 '\x5c')) in
  let inner = Sha1_circuit.hash_fixed b ~msg:(Array.append ipad msg) in
  Sha1_circuit.hash_fixed b ~msg:(Array.append opad inner)

type totp_public = { cm : string; enc_nonce : string; time_counter : int64 }

(* Input layout: client bits first, then log bits.
   client: k(256) ‖ r(128) ‖ id(128) ‖ kclient(160)
   log:    for each of the n registrations: id_j(128) ‖ klog_j(160)
   Outputs: ok(1) ‖ ct(128) ‖ hmac(160), the hmac bits gated by ok. *)
let totp_client_bits = 8 * (archive_key_len + commit_nonce_len + totp_id_len + totp_key_len)
let totp_log_bits_per_rp = 8 * (totp_id_len + totp_key_len)

let totp_circuit ~(n_rps : int) (pub : totp_public) : Circuit.t =
  if n_rps < 1 then invalid_arg "totp_circuit: need at least one registration";
  check_len "cm" 32 pub.cm;
  check_len "enc_nonce" enc_nonce_len pub.enc_nonce;
  let b = Builder.create () in
  let k = Builder.inputs b (8 * archive_key_len) in
  let r = Builder.inputs b (8 * commit_nonce_len) in
  let id = Builder.inputs b (8 * totp_id_len) in
  let kclient = Builder.inputs b (8 * totp_key_len) in
  let regs =
    Array.init n_rps (fun _ ->
        let id_j = Builder.inputs b (8 * totp_id_len) in
        let klog_j = Builder.inputs b (8 * totp_key_len) in
        (id_j, klog_j))
  in
  (* (a) archive-key commitment check *)
  let cm_bits = Sha256_circuit.hash_fixed b ~msg:(Array.concat [ k; r ]) in
  let cm_ok = Builder.eq_vec b cm_bits (Builder.const_bytes b pub.cm) in
  (* (b) select the log's share for this id; at most one id_j matches *)
  let zero = Builder.const b false in
  let klog_sel = ref (Array.make (8 * totp_key_len) zero) in
  let matched = ref zero in
  Array.iter
    (fun (id_j, klog_j) ->
      let eq_j = Builder.eq_vec b id id_j in
      klog_sel := Builder.xor_vec b !klog_sel (Builder.and_vec b ~w:eq_j klog_j);
      matched := Builder.bor b !matched eq_j)
    regs;
  let k_id = Builder.xor_vec b kclient !klog_sel in
  (* (c) the TOTP code: HMAC-SHA1(k_id, T) on the 8-byte counter *)
  let t_bytes = Bytes.create 8 in
  Bytes.set_int64_be t_bytes 0 pub.time_counter;
  let msg = Builder.const_bytes b (Bytes.unsafe_to_string t_bytes) in
  let hmac = hmac_sha1_wires b ~key:k_id ~msg in
  (* (d) the encrypted log record: ct = id XOR keystream(k) *)
  let ctr0 = Builder.const_bytes b (Bytesx.be32 0) in
  let keystream = Sha256_circuit.hash_fixed b ~msg:(Array.concat [ k; Builder.const_bytes b pub.enc_nonce; ctr0 ]) in
  let ct = Builder.xor_vec b id (Array.sub keystream 0 (8 * totp_id_len)) in
  let ok = Builder.band b cm_ok !matched in
  let hmac_gated = Builder.and_vec b ~w:ok hmac in
  Builder.finalize b ~outputs:(Array.concat [ [| ok |]; ct; hmac_gated ])

let totp_client_input ~(k : string) ~(r : string) ~(id : string) ~(kclient : string) : bool array =
  check_len "k" archive_key_len k;
  check_len "r" commit_nonce_len r;
  check_len "id" totp_id_len id;
  check_len "kclient" totp_key_len kclient;
  Array.map (fun v -> v = 1) (Bytesx.bits_of_string (k ^ r ^ id ^ kclient))

let totp_log_input ~(registrations : (string * string) list) : bool array =
  let buf = Buffer.create 64 in
  List.iter
    (fun (id_j, klog_j) ->
      check_len "id_j" totp_id_len id_j;
      check_len "klog_j" totp_key_len klog_j;
      Buffer.add_string buf id_j;
      Buffer.add_string buf klog_j)
    registrations;
  Array.map (fun v -> v = 1) (Bytesx.bits_of_string (Buffer.contents buf))

(* Software reference for the TOTP circuit, for tests and for the honest
   client's bookkeeping. *)
let totp_compute ~(k : string) ~(id : string) ~(k_id : string) (pub : totp_public) : string * string =
  let t_bytes = Bytes.create 8 in
  Bytes.set_int64_be t_bytes 0 pub.time_counter;
  let hmac = Larch_hash.Hmac.sha1 ~key:k_id (Bytes.unsafe_to_string t_bytes) in
  let keystream = Larch_hash.Sha256.digest (k ^ pub.enc_nonce ^ Bytesx.be32 0) in
  let ct = Bytesx.xor id (String.sub keystream 0 totp_id_len) in
  (hmac, ct)
