(** Imperative circuit builder.  All inputs must be allocated before the
    first gate (both proof backends rely on inputs occupying the wire-space
    prefix). *)

type wire = int
type t

val create : unit -> t

val input : t -> wire
(** @raise Invalid_argument once any gate has been pushed *)

val inputs : t -> int -> wire array

val band : t -> wire -> wire -> wire
val bxor : t -> wire -> wire -> wire
val bnot : t -> wire -> wire
val bor : t -> wire -> wire -> wire

val const : t -> bool -> wire
(** Hash-consed constant wire. *)

val and_all : t -> wire list -> wire
(** Balanced AND-tree; [const true] on the empty list. *)

val eq_vec : t -> wire array -> wire array -> wire
(** 1 iff the two wire vectors are bitwise equal. *)

val mux_vec : t -> sel:wire -> wire array -> wire array -> wire array
val and_vec : t -> w:wire -> wire array -> wire array
val xor_vec : t -> wire array -> wire array -> wire array
val const_bits : t -> int array -> wire array

val const_bytes : t -> string -> wire array
(** Constant wires for a byte string, LSB-first per byte (the layout of
    {!Larch_util.Bytesx.bits_of_string}). *)

val finalize : t -> outputs:wire array -> Circuit.t

(**/**)

val push : t -> Circuit.gate -> wire
