(* Gate-level SHA-1 for fixed-length messages — used by the TOTP 2PC circuit
   to compute HMAC-SHA1 (RFC 6238's default MAC) on the jointly-held key.
   Roughly 11k AND gates per compression. *)

let iv = [| 0x67452301; 0xefcdab89; 0x98badcfe; 0x10325476; 0xc3d2e1f0 |]

let compress (b : Builder.t) ~(state : Word.t array) ~(block : Word.t array) : Word.t array =
  let w = Array.make 80 [||] in
  Array.blit block 0 w 0 16;
  for t = 16 to 79 do
    w.(t) <- Word.rotl (Word.xor b (Word.xor b w.(t - 3) w.(t - 8)) (Word.xor b w.(t - 14) w.(t - 16))) 1
  done;
  let a = ref state.(0) and bb = ref state.(1) and c = ref state.(2) in
  let d = ref state.(3) and e = ref state.(4) in
  for t = 0 to 79 do
    let f, kc =
      if t < 20 then (Word.choose b !bb !c !d, 0x5a827999)
      else if t < 40 then (Word.xor b (Word.xor b !bb !c) !d, 0x6ed9eba1)
      else if t < 60 then (Word.majority b !bb !c !d, 0x8f1bbcdc)
      else (Word.xor b (Word.xor b !bb !c) !d, 0xca62c1d6)
    in
    let tmp = Word.add_list b [ Word.rotl !a 5; f; !e; Word.of_const b kc; w.(t) ] in
    e := !d;
    d := !c;
    c := Word.rotl !bb 30;
    bb := !a;
    a := tmp
  done;
  let updates = [| !a; !bb; !c; !d; !e |] in
  Array.mapi (fun i v -> Word.add b state.(i) v) updates

let hash_fixed (b : Builder.t) ~(msg : Builder.wire array) : Builder.wire array =
  if Array.length msg mod 8 <> 0 then invalid_arg "Sha1_circuit.hash_fixed: not byte aligned";
  let len_bytes = Array.length msg / 8 in
  let pad_len =
    let r = (len_bytes + 1 + 8) mod 64 in
    if r = 0 then 1 + 8 else 1 + 8 + (64 - r)
  in
  let padding = Bytes.make pad_len '\000' in
  Bytes.set padding 0 '\x80';
  Bytes.set_int64_be padding (pad_len - 8) (Int64.of_int (8 * len_bytes));
  let pad_wires = Builder.const_bytes b (Bytes.unsafe_to_string padding) in
  let all_bits = Array.append msg pad_wires in
  let words = Word.words_of_bitwires all_bits in
  let state = ref (Array.map (Word.of_const b) iv) in
  let nblocks = Array.length words / 16 in
  for i = 0 to nblocks - 1 do
    state := compress b ~state:!state ~block:(Array.sub words (16 * i) 16)
  done;
  Word.bitwires_of_words !state
