(** The two larch statement circuits.

    {b FIDO2} (proved with ZKBoo, §3.2): the client knows k, r, id, chal,
    nonce such that cm = SHA256(k‖r), ct = id ⊕ SHA256(k‖nonce‖0) and
    dgst = SHA256(id‖chal); the nonce is echoed as an output so one static
    circuit serves every authentication.

    {b TOTP} (run under Yao, §4): checks the archive-key commitment,
    selects the log's share for the client's id, recomputes the TOTP key,
    computes HMAC-SHA1(k_id, T) and the encrypted record; public
    per-execution values are baked in as constants (garblings are
    single-use). *)

(** {1 Field sizes (bytes)} *)

val archive_key_len : int
val commit_nonce_len : int
val rp_id_len : int
val challenge_len : int
val enc_nonce_len : int
val totp_id_len : int
val totp_key_len : int

(** {1 FIDO2 statement} *)

type fido2_witness = { k : string; r : string; id : string; chal : string; nonce : string }

val fido2_circuit : Circuit.t Lazy.t
(** Built once (~100k AND gates); shared by prover and verifier. *)

val fido2_witness_bits : fido2_witness -> bool array
val fido2_public_bits : cm:string -> ct:string -> dgst:string -> nonce:string -> bool array

val fido2_compute :
  k:string -> r:string -> id:string -> chal:string -> nonce:string -> string * string * string
(** Software counterpart: (cm, ct, dgst). *)

(** {1 TOTP 2PC circuit} *)

type totp_public = { cm : string; enc_nonce : string; time_counter : int64 }

val totp_client_bits : int
val totp_log_bits_per_rp : int

val totp_circuit : n_rps:int -> totp_public -> Circuit.t
(** Input layout: client k‖r‖id‖kclient, then n × (id_j ‖ klog_j);
    outputs ok(1) ‖ ct(128) ‖ hmac(160) with the hmac gated by ok. *)

val totp_client_input : k:string -> r:string -> id:string -> kclient:string -> bool array
val totp_log_input : registrations:(string * string) list -> bool array

val totp_compute : k:string -> id:string -> k_id:string -> totp_public -> string * string
(** Software counterpart: (hmac, ct). *)

(**/**)

val hmac_sha1_wires :
  Builder.t -> key:Builder.wire array -> msg:Builder.wire array -> Builder.wire array

val check_len : string -> int -> string -> unit
