(** Gate-level SHA-256 (fixed-length messages): the hot primitive of both
    the ZKBoo FIDO2 statement and the TOTP 2PC circuit (~23k AND gates per
    compression).  Tested bit-for-bit against {!Larch_hash.Sha256}. *)

val iv : int array
val k_const : int array

val compress : Builder.t -> state:Word.t array -> block:Word.t array -> Word.t array

val hash_fixed : Builder.t -> msg:Builder.wire array -> Builder.wire array
(** Full hash with padding baked in for the (build-time-fixed) message
    length; bit layout as in {!Larch_util.Bytesx.bits_of_string}. *)
