(* Boolean circuit intermediate representation.

   Circuits are the common substrate of larch's two heavyweight proof
   systems: ZKBoo proofs of the FIDO2 statement and garbled-circuit 2PC for
   TOTP.  Gates are restricted to XOR / AND / NOT / constants because XOR
   and NOT are "free" in both backends (local in MPC-in-the-head, free-XOR
   in garbling) while AND is the costly gate both cost models count.

   Wire numbering: wires [0, n_inputs) are inputs; gate [i] defines wire
   [n_inputs + i].  Gates may only reference earlier wires. *)

type gate =
  | And of int * int
  | Xor of int * int
  | Not of int
  | Const of bool

type t = {
  n_inputs : int;
  gates : gate array;
  outputs : int array;
  n_and : int; (* cached count of And gates *)
  and_index : int array; (* gate index -> dense AND index, or -1 *)
}

let make ~n_inputs ~gates ~outputs =
  let n_and = ref 0 in
  let and_index =
    Array.map (function And _ -> let i = !n_and in incr n_and; i | _ -> -1) gates
  in
  let n_wires = n_inputs + Array.length gates in
  Array.iteri
    (fun i g ->
      let check w =
        if w < 0 || w >= n_inputs + i then invalid_arg "Circuit.make: forward wire reference"
      in
      match g with
      | And (a, b) | Xor (a, b) -> check a; check b
      | Not a -> check a
      | Const _ -> ())
    gates;
  Array.iter
    (fun w -> if w < 0 || w >= n_wires then invalid_arg "Circuit.make: bad output wire")
    outputs;
  { n_inputs; gates; outputs; n_and = !n_and; and_index }

let n_wires c = c.n_inputs + Array.length c.gates
let n_gates c = Array.length c.gates
let n_outputs c = Array.length c.outputs

(* Reference (cleartext) evaluation. *)
let eval (c : t) (inputs : bool array) : bool array =
  if Array.length inputs <> c.n_inputs then invalid_arg "Circuit.eval: wrong input count";
  let w = Array.make (n_wires c) false in
  Array.blit inputs 0 w 0 c.n_inputs;
  Array.iteri
    (fun i g ->
      w.(c.n_inputs + i) <-
        (match g with
        | And (a, b) -> w.(a) && w.(b)
        | Xor (a, b) -> w.(a) <> w.(b)
        | Not a -> not w.(a)
        | Const b -> b))
    c.gates;
  Array.map (fun o -> w.(o)) c.outputs

let eval_bits (c : t) (inputs : int array) : int array =
  let out = eval c (Array.map (fun b -> b land 1 = 1) inputs) in
  Array.map (fun b -> if b then 1 else 0) out
