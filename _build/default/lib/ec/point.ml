(* P-256 group operations in Jacobian coordinates.

   A point (X, Y, Z) with Z <> 0 represents the affine point (X/Z², Y/Z³);
   Z = 0 is the point at infinity.  Doubling uses the a = -3 "dbl-2001-b"
   formulas; addition uses "add-2007-bl".  These are complete for this code
   because [add] dispatches explicitly on the H = 0 cases. *)

open Larch_bignum
module Fe = P256.Fe
module Scalar = P256.Scalar

type t = { x : Fe.t; y : Fe.t; z : Fe.t }

let infinity = { x = Fe.one; y = Fe.one; z = Fe.zero }
let is_infinity p = Nat.is_zero p.z
let of_affine ~(x : Fe.t) ~(y : Fe.t) : t = { x; y; z = Fe.one }
let g : t = of_affine ~x:(Fe.of_nat P256.gx) ~y:(Fe.of_nat P256.gy)

let to_affine (p : t) : (Fe.t * Fe.t) option =
  if is_infinity p then None
  else begin
    let zinv = Fe.inv p.z in
    let zinv2 = Fe.sqr zinv in
    Some (Fe.mul p.x zinv2, Fe.mul p.y (Fe.mul zinv2 zinv))
  end

let equal (p : t) (q : t) : bool =
  match (is_infinity p, is_infinity q) with
  | true, true -> true
  | true, false | false, true -> false
  | false, false ->
      (* Cross-multiply to compare without inversion:
         X1*Z2² = X2*Z1² and Y1*Z2³ = Y2*Z1³. *)
      let z1z1 = Fe.sqr p.z and z2z2 = Fe.sqr q.z in
      Fe.equal (Fe.mul p.x z2z2) (Fe.mul q.x z1z1)
      && Fe.equal (Fe.mul p.y (Fe.mul z2z2 q.z)) (Fe.mul q.y (Fe.mul z1z1 p.z))

let double (p : t) : t =
  if is_infinity p || Nat.is_zero p.y then infinity
  else begin
    let delta = Fe.sqr p.z in
    let gamma = Fe.sqr p.y in
    let beta = Fe.mul p.x gamma in
    let alpha = Fe.mul (Fe.of_int 3) (Fe.mul (Fe.sub p.x delta) (Fe.add p.x delta)) in
    let beta4 = Fe.mul (Fe.of_int 4) beta in
    let x3 = Fe.sub (Fe.sqr alpha) (Fe.add beta4 beta4) in
    let z3 = Fe.sub (Fe.sub (Fe.sqr (Fe.add p.y p.z)) gamma) delta in
    let gamma2_8 = Fe.mul (Fe.of_int 8) (Fe.sqr gamma) in
    let y3 = Fe.sub (Fe.mul alpha (Fe.sub beta4 x3)) gamma2_8 in
    { x = x3; y = y3; z = z3 }
  end

let add (p : t) (q : t) : t =
  if is_infinity p then q
  else if is_infinity q then p
  else begin
    let z1z1 = Fe.sqr p.z and z2z2 = Fe.sqr q.z in
    let u1 = Fe.mul p.x z2z2 and u2 = Fe.mul q.x z1z1 in
    let s1 = Fe.mul p.y (Fe.mul q.z z2z2) and s2 = Fe.mul q.y (Fe.mul p.z z1z1) in
    let h = Fe.sub u2 u1 in
    if Nat.is_zero h then begin
      if Fe.equal s1 s2 then double p else infinity
    end
    else begin
      let h2 = Fe.add h h in
      let i = Fe.sqr h2 in
      let j = Fe.mul h i in
      let rr = Fe.add (Fe.sub s2 s1) (Fe.sub s2 s1) in
      let v = Fe.mul u1 i in
      let x3 = Fe.sub (Fe.sub (Fe.sqr rr) j) (Fe.add v v) in
      let s1j = Fe.mul s1 j in
      let y3 = Fe.sub (Fe.mul rr (Fe.sub v x3)) (Fe.add s1j s1j) in
      let z3 = Fe.mul (Fe.sub (Fe.sub (Fe.sqr (Fe.add p.z q.z)) z1z1) z2z2) h in
      { x = x3; y = y3; z = z3 }
    end
  end

let neg (p : t) : t = if is_infinity p then p else { p with y = Fe.neg p.y }
let sub (p : t) (q : t) : t = add p (neg q)

(* 4-bit fixed-window scalar multiplication. *)
let mul (k : Scalar.t) (p : t) : t =
  if Nat.is_zero k || is_infinity p then infinity
  else begin
    let table = Array.make 16 infinity in
    table.(1) <- p;
    for i = 2 to 15 do
      table.(i) <- add table.(i - 1) p
    done;
    let kb = Scalar.to_bytes_be k in
    let acc = ref infinity in
    String.iter
      (fun c ->
        let byte = Char.code c in
        let step nibble =
          acc := double (double (double (double !acc)));
          if nibble <> 0 then acc := add !acc table.(nibble)
        in
        step (byte lsr 4);
        step (byte land 0xf))
      kb;
    !acc
  end

(* Base-point multiplication with a cached window table: G, 2^4 G, 2^8 G, …
   combined with 4-bit digits (Lim-Lee style single-row comb). *)
let base_table : t array array lazy_t =
  lazy
    (let windows = 64 in
     Array.init windows (fun w ->
         (* table.(w).(d) = d * 2^(4w) * G *)
         let base = ref g in
         for _ = 1 to 4 * w do
           base := double !base
         done;
         let row = Array.make 16 infinity in
         row.(1) <- !base;
         for d = 2 to 15 do
           row.(d) <- add row.(d - 1) !base
         done;
         row))

let mul_base (k : Scalar.t) : t =
  if Nat.is_zero k then infinity
  else begin
    let table = Lazy.force base_table in
    let kb = Scalar.to_bytes_be k in
    (* byte i (big-endian) covers windows 2*(31-i)+1 and 2*(31-i). *)
    let acc = ref infinity in
    for i = 0 to 31 do
      let byte = Char.code kb.[i] in
      let w_hi = (2 * (31 - i)) + 1 and w_lo = 2 * (31 - i) in
      let hi = byte lsr 4 and lo = byte land 0xf in
      if hi <> 0 then acc := add !acc table.(w_hi).(hi);
      if lo <> 0 then acc := add !acc table.(w_lo).(lo)
    done;
    !acc
  end

(* Multi-scalar multiplication (Pippenger's bucket method).  Dominates the
   cost of Groth–Kohlweiss proving/verification, which is what makes the
   password protocol's O(n) prover practical at n = 512 relying parties. *)
let multi_mul (pairs : (Scalar.t * t) array) : t =
  let n = Array.length pairs in
  if n = 0 then infinity
  else begin
    let w = if n >= 256 then 6 else if n >= 32 then 5 else if n >= 8 then 4 else 2 in
    let nbuckets = (1 lsl w) - 1 in
    let nwindows = (256 + w - 1) / w in
    let digit k win =
      (* bits [win*w, win*w + w) of the scalar *)
      let d = ref 0 in
      for b = (win * w) + w - 1 downto win * w do
        d := (!d lsl 1) lor (if b < 256 && Nat.test_bit k b then 1 else 0)
      done;
      !d
    in
    let acc = ref infinity in
    for win = nwindows - 1 downto 0 do
      for _ = 1 to w do
        acc := double !acc
      done;
      let buckets = Array.make nbuckets infinity in
      Array.iter
        (fun (k, p) ->
          let d = digit k win in
          if d > 0 then buckets.(d - 1) <- add buckets.(d - 1) p)
        pairs;
      let run = ref infinity and total = ref infinity in
      for d = nbuckets downto 1 do
        run := add !run buckets.(d - 1);
        total := add !total !run
      done;
      acc := add !acc !total
    done;
    !acc
  end

let is_on_curve (p : t) : bool =
  if is_infinity p then true
  else begin
    match to_affine p with
    | None -> true
    | Some (x, y) ->
        let rhs = Fe.add (Fe.add (Fe.mul (Fe.sqr x) x) (Fe.mul P256.a x)) (Fe.of_nat P256.b) in
        Fe.equal (Fe.sqr y) rhs
  end

(* SEC1 uncompressed encoding; infinity encodes as a single zero byte. *)
let encode (p : t) : string =
  match to_affine p with
  | None -> "\x00"
  | Some (x, y) -> "\x04" ^ Fe.to_bytes_be x ^ Fe.to_bytes_be y

let decode (s : string) : t option =
  if s = "\x00" then Some infinity
  else if String.length s = 65 && s.[0] = '\x04' then begin
    let x = Nat.of_bytes_be (String.sub s 1 32) and y = Nat.of_bytes_be (String.sub s 33 32) in
    if Nat.compare x P256.p >= 0 || Nat.compare y P256.p >= 0 then None
    else begin
      let pt = of_affine ~x ~y in
      if is_on_curve pt then Some pt else None
    end
  end
  else None

let decode_exn s =
  match decode s with Some p -> p | None -> invalid_arg "Point.decode_exn: invalid encoding"

(* SEC1 compressed encoding (33 bytes); infinity as a single zero byte. *)
let encode_compressed (p : t) : string =
  match to_affine p with
  | None -> "\x00"
  | Some (x, y) ->
      let tag = if Nat.test_bit y 0 then "\x03" else "\x02" in
      tag ^ Fe.to_bytes_be x

let decode_compressed (s : string) : t option =
  if s = "\x00" then Some infinity
  else if String.length s = 33 && (s.[0] = '\x02' || s.[0] = '\x03') then begin
    let x = Nat.of_bytes_be (String.sub s 1 32) in
    if Nat.compare x P256.p >= 0 then None
    else begin
      let rhs = Fe.add (Fe.add (Fe.mul (Fe.sqr x) x) (Fe.mul P256.a x)) (Fe.of_nat P256.b) in
      match Fe.sqrt rhs with
      | None -> None
      | Some y ->
          let want_odd = s.[0] = '\x03' in
          let y = if Nat.test_bit y 0 = want_odd then y else Fe.neg y in
          Some (of_affine ~x ~y)
    end
  end
  else None

(* x-coordinate as a scalar: ECDSA's conversion function f : G -> Z_n. *)
let x_scalar (p : t) : Scalar.t =
  match to_affine p with
  | None -> invalid_arg "Point.x_scalar: infinity"
  | Some (x, _) -> Scalar.of_nat x

let random ~(rand_bytes : int -> string) : Scalar.t * t =
  let k = Scalar.random_nonzero ~rand_bytes in
  (k, mul_base k)

let pp fmt p =
  match to_affine p with
  | None -> Fmt.pf fmt "Infinity"
  | Some (x, y) -> Fmt.pf fmt "(%a, %a)" Fe.pp x Fe.pp y
