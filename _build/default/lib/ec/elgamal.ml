(* ElGamal encryption over P-256.

   The password protocol's archive key is an ElGamal keypair: the client
   keeps x and gives the log X = g^x; during authentication the client sends
   (g^r, Hash(id) * g^(xr)) which the log stores as the encrypted record and
   partially exponentiates (§5).  Rerandomization supports the §9 FIDO
   extension where relying parties refresh ciphertexts. *)

module Scalar = P256.Scalar

type ciphertext = { c1 : Point.t; c2 : Point.t }

let keygen ~(rand_bytes : int -> string) : Scalar.t * Point.t = Point.random ~rand_bytes

let encrypt ~(pk : Point.t) ~(msg : Point.t) ~(r : Scalar.t) : ciphertext =
  { c1 = Point.mul_base r; c2 = Point.add msg (Point.mul r pk) }

let decrypt ~(sk : Scalar.t) (ct : ciphertext) : Point.t =
  Point.sub ct.c2 (Point.mul sk ct.c1)

let rerandomize ~(pk : Point.t) ~(r : Scalar.t) (ct : ciphertext) : ciphertext =
  { c1 = Point.add ct.c1 (Point.mul_base r); c2 = Point.add ct.c2 (Point.mul r pk) }

let encode (ct : ciphertext) : string = Point.encode ct.c1 ^ Point.encode ct.c2

let decode (s : string) : ciphertext option =
  if String.length s <> 130 then None
  else
    match (Point.decode (String.sub s 0 65), Point.decode (String.sub s 65 65)) with
    | Some c1, Some c2 -> Some { c1; c2 }
    | _ -> None
