(* Hash-to-curve by try-and-increment.

   The password protocol needs Hash : {0,1}* -> G (§5).  Try-and-increment
   is not constant time, but the hashed value here is a random 128-bit
   registration identifier, not a secret with structure, matching the
   paper's threat model. *)

open Larch_bignum
module Fe = P256.Fe

let hash (msg : string) : Point.t =
  let rec attempt ctr =
    if ctr > 512 then failwith "Hash_to_curve.hash: no point found (improbable)"
    else begin
      let h = Larch_hash.Sha256.digest ("larch-h2c" ^ Larch_util.Bytesx.be32 ctr ^ msg) in
      let x = Fe.of_bytes_be h in
      let rhs = Fe.add (Fe.add (Fe.mul (Fe.sqr x) x) (Fe.mul P256.a x)) (Fe.of_nat P256.b) in
      match Fe.sqrt rhs with
      | None -> attempt (ctr + 1)
      | Some y ->
          (* Use one hash bit to pick the y parity so the map is well defined. *)
          let want_odd = Char.code h.[0] land 1 = 1 in
          let y_is_odd = Nat.test_bit y 0 in
          let y = if want_odd = y_is_odd then y else Fe.neg y in
          Point.of_affine ~x ~y
    end
  in
  attempt 0
