(** ElGamal encryption over P-256.

    The password protocol's archive key: the client keeps x and gives the
    log X = g^x; authentication ciphertexts (g^r, Hash(id)·X^r) double as
    the encrypted log records (§5).  Rerandomization supports the §9 FIDO
    extension. *)

module Scalar = P256.Scalar

type ciphertext = { c1 : Point.t; c2 : Point.t }

val keygen : rand_bytes:(int -> string) -> Scalar.t * Point.t
val encrypt : pk:Point.t -> msg:Point.t -> r:Scalar.t -> ciphertext
val decrypt : sk:Scalar.t -> ciphertext -> Point.t
val rerandomize : pk:Point.t -> r:Scalar.t -> ciphertext -> ciphertext

val encode : ciphertext -> string
(** 130 bytes (two uncompressed points) — the password record size. *)

val decode : string -> ciphertext option
