lib/ec/elgamal.mli: P256 Point
