lib/ec/point.ml: Array Char Fmt Larch_bignum Lazy Nat P256 String
