lib/ec/hash_to_curve.mli: Point
