lib/ec/elgamal.ml: P256 Point String
