lib/ec/ecdsa.ml: Larch_bignum Larch_hash Nat P256 Point String
