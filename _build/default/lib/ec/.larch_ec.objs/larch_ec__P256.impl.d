lib/ec/p256.ml: Larch_bignum Modarith Nat
