lib/ec/hash_to_curve.ml: Char Larch_bignum Larch_hash Larch_util Nat P256 Point String
