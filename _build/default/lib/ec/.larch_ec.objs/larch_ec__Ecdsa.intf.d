lib/ec/ecdsa.mli: P256 Point
