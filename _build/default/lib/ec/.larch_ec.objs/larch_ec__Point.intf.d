lib/ec/point.mli: Format P256
