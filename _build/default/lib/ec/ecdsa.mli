(** ECDSA over P-256 with RFC 6979 deterministic nonces.

    Used directly by relying parties to verify FIDO2 assertions and by the
    client to sign record ciphertexts (§7); signatures produced jointly by
    {!Larch_core.Two_party_ecdsa} verify under this module. *)

module Scalar = P256.Scalar

type signature = { r : Scalar.t; s : Scalar.t }

val keygen : rand_bytes:(int -> string) -> Scalar.t * Point.t

val sign : ?nonce:Scalar.t -> sk:Scalar.t -> string -> signature
(** Sign a message (SHA-256 hashed internally); the nonce defaults to the
    RFC 6979 derivation, making signing deterministic. *)

val sign_digest : ?nonce:Scalar.t -> sk:Scalar.t -> string -> signature
(** Sign a precomputed 32-byte digest. *)

val verify : pk:Point.t -> string -> signature -> bool
val verify_digest : pk:Point.t -> string -> signature -> bool

val encode : signature -> string
(** Fixed 64-byte r ‖ s. *)

val decode : string -> signature option

(**/**)

val hash_to_scalar : string -> Scalar.t
val deterministic_nonce : sk:Scalar.t -> digest:string -> Scalar.t
