(** Hash-to-curve by try-and-increment, for the password protocol's
    Hash : \{0,1\}* → G (§5).  Not constant time; inputs here are random
    128-bit registration identifiers, not structured secrets. *)

val hash : string -> Point.t
(** Deterministic; distinct inputs map to independent-looking points. *)
