(* IKNP oblivious-transfer extension (semi-honest).

   Turns κ = 128 public-key base OTs into m symmetric-crypto OTs.  The TOTP
   protocol runs one extension per authentication to deliver the log's
   garbled-circuit input labels; the base-OT cost is paid in the offline
   phase.

   Roles: the extension *sender* S holds message pairs (m0_i, m1_i); the
   extension *receiver* R holds choice bits r_i.  In the base OTs the roles
   reverse: R acts as base-sender of seed pairs, S as base-receiver with a
   random selection string s ∈ {0,1}^κ.

     t_j = PRG(k0_j)                      (column j, length m)
     u_j = t_j ⊕ PRG(k1_j) ⊕ r            (sent R → S)
     q_j = PRG(k_{s_j},j) ⊕ s_j·u_j = t_j ⊕ s_j·r
     row i:  q_i = t_i ⊕ r_i·s
     pads:   y0_i = H(i, q_i),  y1_i = H(i, q_i ⊕ s);  R knows H(i, t_i) = y_{r_i}. *)

module Bytesx = Larch_util.Bytesx

let kappa = 128

(* --- base-OT phase (R = base sender, S = base receiver) --- *)

type r_base = { k0 : string array; k1 : string array } (* κ seed pairs, 16B each *)
type s_base = { s_bits : int array; ks : string array } (* selection bits + chosen seeds *)

(* Run the κ base OTs in one in-process exchange; returns what each side
   retains.  The byte cost of this exchange is what [base_bytes] reports. *)
let run_base_ots ~(rand_bytes_r : int -> string) ~(rand_bytes_s : int -> string) :
    r_base * s_base * int =
  let st, setup = Ot.sender_setup ~rand_bytes:rand_bytes_r in
  let k0 = Array.init kappa (fun _ -> rand_bytes_r 16) in
  let k1 = Array.init kappa (fun _ -> rand_bytes_r 16) in
  let s_bits = Array.init kappa (fun _ -> Char.code (rand_bytes_s 1).[0] land 1) in
  let bytes = ref 65 (* sender setup point *) in
  let ks =
    Array.init kappa (fun j ->
        let rstate, rmsg = Ot.receiver_choose ~setup ~choice:s_bits.(j) ~rand_bytes:rand_bytes_s in
        let payload = Ot.sender_encrypt ~state:st ~msg:rmsg ~m0:k0.(j) ~m1:k1.(j) in
        bytes := !bytes + 65 + 32;
        Ot.receiver_recover ~state:rstate ~choice:s_bits.(j) payload)
  in
  ({ k0; k1 }, { s_bits; ks }, !bytes)

(* --- extension phase --- *)

let column_prg (seed : string) (j : int) (m_bytes : int) : string =
  Larch_cipher.Prg.next_bytes
    (Larch_cipher.Prg.create (seed ^ "iknp-col" ^ Bytesx.be32 j))
    m_bytes

let pad (i : int) (row : string) (len : int) : string =
  Larch_hash.Hkdf.derive ~ikm:row ~info:("iknp-pad" ^ Bytesx.be32 i) ~len ()

type r_ext = { rows_t : string array (* m rows of κ bits = 16B *) }
type u_matrix = { cols : string array (* κ columns of m bits *) }

(* Receiver: choices is a bit array of length m.  Produces the u-matrix to
   send to S and the per-row pads base. *)
let receiver_extend (base : r_base) ~(choices : int array) : r_ext * u_matrix =
  let m = Array.length choices in
  let m_bytes = (m + 7) / 8 in
  let r_str = Bytesx.string_of_bits choices in
  let t_cols = Array.init kappa (fun j -> column_prg base.k0.(j) j m_bytes) in
  let cols =
    Array.init kappa (fun j ->
        Bytesx.xor (Bytesx.xor t_cols.(j) (column_prg base.k1.(j) j m_bytes)) r_str)
  in
  (* transpose: row i of T, as 16 bytes *)
  let rows_t =
    Array.init m (fun i ->
        let row = Bytes.make (kappa / 8) '\000' in
        for j = 0 to kappa - 1 do
          if Bytesx.get_bit t_cols.(j) i = 1 then Bytesx.set_bit row j 1
        done;
        Bytes.unsafe_to_string row)
  in
  ({ rows_t }, { cols })

type s_ext = { rows_q : string array; s_str : string }

let sender_extend (base : s_base) ~(u : u_matrix) ~(m : int) : s_ext =
  let m_bytes = (m + 7) / 8 in
  let q_cols =
    Array.init kappa (fun j ->
        let prg = column_prg base.ks.(j) j m_bytes in
        if base.s_bits.(j) = 1 then Bytesx.xor prg u.cols.(j) else prg)
  in
  let rows_q =
    Array.init m (fun i ->
        let row = Bytes.make (kappa / 8) '\000' in
        for j = 0 to kappa - 1 do
          if Bytesx.get_bit q_cols.(j) i = 1 then Bytesx.set_bit row j 1
        done;
        Bytes.unsafe_to_string row)
  in
  { rows_q; s_str = Bytesx.string_of_bits base.s_bits }

(* Sender encrypts message pairs; messages at index i must share a length. *)
let sender_encrypt (ext : s_ext) ~(pairs : (string * string) array) : (string * string) array =
  Array.mapi
    (fun i (m0, m1) ->
      if String.length m0 <> String.length m1 then invalid_arg "Ot_ext: length mismatch";
      let len = String.length m0 in
      let y0 = pad i ext.rows_q.(i) len in
      let y1 = pad i (Bytesx.xor ext.rows_q.(i) ext.s_str) len in
      (Bytesx.xor m0 y0, Bytesx.xor m1 y1))
    pairs

let receiver_recover (ext : r_ext) ~(choices : int array) ~(cipher : (string * string) array) :
    string array =
  Array.mapi
    (fun i (e0, e1) ->
      let c = if choices.(i) land 1 = 0 then e0 else e1 in
      Bytesx.xor c (pad i ext.rows_t.(i) (String.length c)))
    cipher

(* Communication accounting helpers. *)
let u_matrix_bytes (u : u_matrix) : int =
  Array.fold_left (fun acc c -> acc + String.length c) 0 u.cols
