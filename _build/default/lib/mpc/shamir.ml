(* Shamir secret sharing over Z_q (§6: splitting trust across multiple
   logs).  A t-of-n sharing of a password share lets the client reassemble
   the password from any t log responses. *)

module Scalar = Larch_ec.P256.Scalar

type share = { index : int; value : Scalar.t } (* evaluation at x = index, index >= 1 *)

let split ~(threshold : int) ~(n : int) (secret : Scalar.t) ~(rand_bytes : int -> string) :
    share list =
  if threshold < 1 || threshold > n then invalid_arg "Shamir.split: bad threshold";
  (* polynomial of degree threshold-1 with constant term = secret *)
  let coeffs =
    Array.init threshold (fun i -> if i = 0 then secret else Scalar.random ~rand_bytes)
  in
  List.init n (fun j ->
      let x = Scalar.of_int (j + 1) in
      let v = ref Scalar.zero and xp = ref Scalar.one in
      Array.iter
        (fun c ->
          v := Scalar.add !v (Scalar.mul c !xp);
          xp := Scalar.mul !xp x)
        coeffs;
      { index = j + 1; value = !v })

(* Lagrange interpolation at 0 over any >= threshold shares. *)
let reconstruct (shares : share list) : Scalar.t =
  let shares = List.sort_uniq (fun a b -> compare a.index b.index) shares in
  List.fold_left
    (fun acc si ->
      let num = ref Scalar.one and den = ref Scalar.one in
      List.iter
        (fun sj ->
          if sj.index <> si.index then begin
            num := Scalar.mul !num (Scalar.of_int sj.index);
            den :=
              Scalar.mul !den (Scalar.sub (Scalar.of_int sj.index) (Scalar.of_int si.index))
          end)
        shares;
      let lagrange = Scalar.mul !num (Scalar.inv !den) in
      Scalar.add acc (Scalar.mul si.value lagrange))
    Scalar.zero shares

(* Shamir sharing of a group element via exponent-free blinding is not
   possible; instead larch's multi-log password protocol shares the *scalar*
   key k across logs, and the client combines the per-log responses
   c₂^{k_i} with Lagrange coefficients in the exponent. *)
let lagrange_coefficient ~(at : int) (indices : int list) : Scalar.t =
  let num = ref Scalar.one and den = ref Scalar.one in
  List.iter
    (fun j ->
      if j <> at then begin
        num := Scalar.mul !num (Scalar.of_int j);
        den := Scalar.mul !den (Scalar.sub (Scalar.of_int j) (Scalar.of_int at))
      end)
    indices;
  Scalar.mul !num (Scalar.inv !den)
