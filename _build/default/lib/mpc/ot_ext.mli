(** IKNP oblivious-transfer extension (semi-honest): κ = 128 public-key
    base OTs amortize into arbitrarily many symmetric-crypto OTs.  Delivers
    the log's garbled-circuit input labels in the TOTP protocol; the base
    OTs are paid in the offline phase. *)

val kappa : int

(** {1 Base-OT phase (roles reversed: extension receiver = base sender)} *)

type r_base
type s_base

val run_base_ots :
  rand_bytes_r:(int -> string) -> rand_bytes_s:(int -> string) -> r_base * s_base * int
(** Returns each side's retained state plus the bytes exchanged. *)

(** {1 Extension phase} *)

type r_ext
type u_matrix

val receiver_extend : r_base -> choices:int array -> r_ext * u_matrix
(** The receiver's per-OT choice bits produce the u-matrix sent to the
    sender. *)

type s_ext

val sender_extend : s_base -> u:u_matrix -> m:int -> s_ext

val sender_encrypt : s_ext -> pairs:(string * string) array -> (string * string) array
(** Encrypt message pairs; pair i's two messages must share a length. *)

val receiver_recover :
  r_ext -> choices:int array -> cipher:(string * string) array -> string array

val u_matrix_bytes : u_matrix -> int

(**/**)

val column_prg : string -> int -> int -> string
val pad : int -> string -> int -> string
