(** 1-out-of-2 oblivious transfer (Chou–Orlandi shape over P-256).

    Only used as the base OTs of {!Ot_ext}; bulk transfers go through the
    extension. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar

type sender_state
type sender_setup = { s_pub : Point.t }

val sender_setup : rand_bytes:(int -> string) -> sender_state * sender_setup

type receiver_state
type receiver_msg = { r_pub : Point.t }

val receiver_choose :
  setup:sender_setup -> choice:int -> rand_bytes:(int -> string) -> receiver_state * receiver_msg
(** B = g^b for choice 0, A·g^b for choice 1. *)

val sender_keys : state:sender_state -> msg:receiver_msg -> key_len:int -> string * string
(** Both pads: k₀ = H(B^a), k₁ = H((B/A)^a); the receiver can compute only
    the chosen one. *)

type sender_payload = { e0 : string; e1 : string }

val sender_encrypt :
  state:sender_state -> msg:receiver_msg -> m0:string -> m1:string -> sender_payload

val receiver_recover : state:receiver_state -> choice:int -> sender_payload -> string

(**/**)

val derive_key : string -> Point.t -> int -> string
