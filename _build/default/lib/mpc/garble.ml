(* Garbled circuits: free-XOR + point-and-permute + half-gates
   (Zahur–Rosulek–Evans), with SHA-256 as the label-derivation oracle.

   Cost model matches the classic accounting the paper's TOTP numbers are
   shaped by: two 16-byte ciphertexts per AND gate, nothing for XOR/NOT.

   NOTE (DESIGN.md §1): the paper uses *authenticated garbling* [Wang et
   al. 2017] for malicious security; this implementation is semi-honest
   Yao.  The substitution preserves the communication/latency shape that
   Figure 3 (right) and Table 6 report, at a smaller constant. *)

module Bytesx = Larch_util.Bytesx
module Circuit = Larch_circuit.Circuit
open Circuit

let label_len = 16

let lsb (s : string) : int = Char.code s.[label_len - 1] land 1

let hash (label : string) (index : int) : string =
  String.sub (Larch_hash.Sha256.digest_list [ "garble-h"; label; Bytesx.be32 index ]) 0 label_len

let zeros = String.make label_len '\000'

type garbling = {
  tables : (string * string) array; (* (TG, TE) per AND gate *)
  const_labels : (int * string) list; (* gate wire index -> active label for Const gates *)
  input_zero : string array; (* zero-label of each input wire *)
  offset : string; (* global free-XOR offset R, lsb = 1 *)
  output_decode : int array; (* lsb of each output wire's zero-label *)
  output_zero : string array; (* zero-labels of output wires (garbler side) *)
}

(* Size of the material the garbler ships to the evaluator (tables + const
   labels + decode bits), excluding input labels. *)
let tables_bytes (g : garbling) : int =
  (Array.length g.tables * 2 * label_len)
  + (List.length g.const_labels * (4 + label_len))
  + ((Array.length g.output_decode + 7) / 8)

let garble (c : Circuit.t) ~(rand_bytes : int -> string) : garbling =
  let offset =
    let r = Bytes.of_string (rand_bytes label_len) in
    Bytes.set r (label_len - 1) (Char.chr (Char.code (Bytes.get r (label_len - 1)) lor 1));
    Bytes.unsafe_to_string r
  in
  let nw = Circuit.n_wires c in
  let zero_label = Array.make nw "" in
  for i = 0 to c.n_inputs - 1 do
    zero_label.(i) <- rand_bytes label_len
  done;
  let tables = Array.make c.n_and (zeros, zeros) in
  let const_labels = ref [] in
  Array.iteri
    (fun i g ->
      let o = c.n_inputs + i in
      match g with
      | Xor (a, b) -> zero_label.(o) <- Bytesx.xor zero_label.(a) zero_label.(b)
      | Not a -> zero_label.(o) <- Bytesx.xor zero_label.(a) offset
      | Const v ->
          (* fresh label; evaluator receives the active (= value v) label *)
          let w0 = rand_bytes label_len in
          zero_label.(o) <- w0;
          let active = if v then Bytesx.xor w0 offset else w0 in
          const_labels := (o, active) :: !const_labels
      | And (a, b) ->
          let k = c.and_index.(i) in
          let wa0 = zero_label.(a) and wb0 = zero_label.(b) in
          let wa1 = Bytesx.xor wa0 offset and wb1 = Bytesx.xor wb0 offset in
          let pa = lsb wa0 and pb = lsb wb0 in
          let j = 2 * k and j' = (2 * k) + 1 in
          (* generator half *)
          let tg =
            let t = Bytesx.xor (hash wa0 j) (hash wa1 j) in
            if pb = 1 then Bytesx.xor t offset else t
          in
          let wg0 = if pa = 1 then Bytesx.xor (hash wa0 j) tg else hash wa0 j in
          (* evaluator half *)
          let te = Bytesx.xor (Bytesx.xor (hash wb0 j') (hash wb1 j')) wa0 in
          let we0 =
            if pb = 1 then Bytesx.xor (hash wb0 j') (Bytesx.xor te wa0) else hash wb0 j'
          in
          zero_label.(o) <- Bytesx.xor wg0 we0;
          tables.(k) <- (tg, te))
    c.gates;
  {
    tables;
    const_labels = List.rev !const_labels;
    input_zero = Array.sub zero_label 0 c.n_inputs;
    offset;
    output_decode = Array.map (fun o -> lsb zero_label.(o)) c.outputs;
    output_zero = Array.map (fun o -> zero_label.(o)) c.outputs;
  }

(* Garbler side: the active label for input wire [i] carrying bit [v]. *)
let active_input (g : garbling) (i : int) (v : int) : string =
  if v land 1 = 0 then g.input_zero.(i) else Bytesx.xor g.input_zero.(i) g.offset

(* Evaluator: walk the circuit with active labels. *)
let evaluate (c : Circuit.t) ~(tables : (string * string) array)
    ~(const_labels : (int * string) list) ~(active_inputs : string array) : string array =
  if Array.length active_inputs <> c.n_inputs then invalid_arg "Garble.evaluate: input count";
  let nw = Circuit.n_wires c in
  let label = Array.make nw "" in
  Array.blit active_inputs 0 label 0 c.n_inputs;
  let consts = Hashtbl.create 7 in
  List.iter (fun (o, l) -> Hashtbl.replace consts o l) const_labels;
  Array.iteri
    (fun i g ->
      let o = c.n_inputs + i in
      match g with
      | Xor (a, b) -> label.(o) <- Bytesx.xor label.(a) label.(b)
      | Not a -> label.(o) <- label.(a)
      | Const _ -> (
          match Hashtbl.find_opt consts o with
          | Some l -> label.(o) <- l
          | None -> invalid_arg "Garble.evaluate: missing const label")
      | And (a, b) ->
          let k = c.and_index.(i) in
          let tg, te = tables.(k) in
          let wa = label.(a) and wb = label.(b) in
          let sa = lsb wa and sb = lsb wb in
          let j = 2 * k and j' = (2 * k) + 1 in
          let wg = if sa = 1 then Bytesx.xor (hash wa j) tg else hash wa j in
          let we = if sb = 1 then Bytesx.xor (hash wb j') (Bytesx.xor te wa) else hash wb j' in
          label.(o) <- Bytesx.xor wg we)
    c.gates;
  Array.map (fun o -> label.(o)) c.outputs

(* Decode output labels with the garbler's decode bits. *)
let decode_outputs (g : garbling) (active_out : string array) : int array =
  Array.mapi (fun i l -> lsb l lxor g.output_decode.(i)) active_out

(* Garbler-side decode of an active output label returned by the evaluator
   (checks it is one of the two valid labels). *)
let garbler_decode (g : garbling) (i : int) (active : string) : int option =
  if String.equal active g.output_zero.(i) then Some 0
  else if String.equal active (Bytesx.xor g.output_zero.(i) g.offset) then Some 1
  else None
