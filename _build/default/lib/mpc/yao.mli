(** Two-party garbled-circuit execution over metered channels.

    One full Yao run between a garbler (the larch client) and an evaluator
    (the log), with traffic split into the offline (base OTs + garbled
    tables) and online (OT extension, input labels, evaluation, output
    exchange) phases that Figure 3 (right) and Table 6 report. *)

module Circuit = Larch_circuit.Circuit
module Channel = Larch_net.Channel

type config = {
  circuit : Circuit.t;
  n_garbler_inputs : int; (** input wires [0, n) belong to the garbler *)
  n_evaluator_outputs : int; (** output wires [0, n) are revealed to the evaluator *)
}

type timings = {
  offline_seconds : float;
  online_seconds : float;
  evaluator_seconds : float; (** the log's CPU share, for throughput/cost *)
}

type outcome = {
  garbler_outputs : int array;
  evaluator_outputs : int array;
  timings : timings;
}

exception Cheating of string

val run :
  config ->
  garbler_inputs:bool array ->
  evaluator_inputs:bool array ->
  rand_garbler:(int -> string) ->
  rand_evaluator:(int -> string) ->
  offline:Channel.t ->
  online:Channel.t ->
  outcome
(** @raise Cheating if the evaluator returns an invalid output label *)
