(** Garbled circuits: free-XOR + point-and-permute + half-gates
    (Zahur–Rosulek–Evans), SHA-256 as the label-derivation oracle.

    Two 16-byte ciphertexts per AND gate; XOR/NOT are free.  Semi-honest —
    the paper uses authenticated garbling for malicious security; see
    DESIGN.md §1 for why the substitution preserves the reported shapes. *)

module Circuit = Larch_circuit.Circuit

val label_len : int

type garbling = {
  tables : (string * string) array; (** (T_G, T_E) per AND gate *)
  const_labels : (int * string) list; (** active labels of Const wires *)
  input_zero : string array; (** zero-label per input wire (garbler secret) *)
  offset : string; (** the global free-XOR offset R (garbler secret) *)
  output_decode : int array; (** permute bits for output decoding *)
  output_zero : string array; (** output zero-labels (garbler secret) *)
}

val garble : Circuit.t -> rand_bytes:(int -> string) -> garbling

val tables_bytes : garbling -> int
(** Bytes shipped to the evaluator (tables + const labels + decode bits). *)

val active_input : garbling -> int -> int -> string
(** The label for input wire [i] carrying bit [v] (garbler side). *)

val evaluate :
  Circuit.t ->
  tables:(string * string) array ->
  const_labels:(int * string) list ->
  active_inputs:string array ->
  string array
(** Evaluator: walk the circuit with active labels; returns the active
    output labels. *)

val decode_outputs : garbling -> string array -> int array

val garbler_decode : garbling -> int -> string -> int option
(** Decode an output label returned by the evaluator; [None] means the
    label is not one of the two valid ones (evaluator cheating). *)

(**/**)

val lsb : string -> int
val hash : string -> int -> string
