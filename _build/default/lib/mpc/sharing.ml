(* Two-out-of-two secret sharing (§2.2 "Background").

   Additive sharing over Z_q is used for ECDSA key and nonce shares; XOR
   sharing over byte strings is used for TOTP keys (the shares feed the
   Boolean 2PC circuit, where XOR is the natural group). *)

module Scalar = Larch_ec.P256.Scalar

(* x = x1 + x2 (mod q); x1 uniform. *)
let additive (x : Scalar.t) ~(rand_bytes : int -> string) : Scalar.t * Scalar.t =
  let x1 = Scalar.random ~rand_bytes in
  (x1, Scalar.sub x x1)

let additive_recover (x1 : Scalar.t) (x2 : Scalar.t) : Scalar.t = Scalar.add x1 x2

(* s = s1 XOR s2; s1 uniform. *)
let xor (s : string) ~(rand_bytes : int -> string) : string * string =
  let s1 = rand_bytes (String.length s) in
  (s1, Larch_util.Bytesx.xor s s1)

let xor_recover (s1 : string) (s2 : string) : string = Larch_util.Bytesx.xor s1 s2
