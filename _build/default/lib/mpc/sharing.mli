(** Two-out-of-two secret sharing (§2.2): additive over Z_q for ECDSA
    material, XOR over byte strings for TOTP keys. *)

module Scalar = Larch_ec.P256.Scalar

val additive : Scalar.t -> rand_bytes:(int -> string) -> Scalar.t * Scalar.t
(** x = x₁ + x₂ (mod q), x₁ uniform. *)

val additive_recover : Scalar.t -> Scalar.t -> Scalar.t

val xor : string -> rand_bytes:(int -> string) -> string * string
(** s = s₁ ⊕ s₂, s₁ uniform. *)

val xor_recover : string -> string -> string
