(** Shamir secret sharing over Z_q — the substrate of the §6 multi-log
    password deployment (t-of-n recombination in the exponent). *)

module Scalar = Larch_ec.P256.Scalar

type share = { index : int; value : Scalar.t }
(** Evaluation of the polynomial at x = [index] (indices start at 1). *)

val split : threshold:int -> n:int -> Scalar.t -> rand_bytes:(int -> string) -> share list

val reconstruct : share list -> Scalar.t
(** Lagrange interpolation at 0; correct given ≥ threshold distinct
    shares. *)

val lagrange_coefficient : at:int -> int list -> Scalar.t
(** λ_at for the given index set — used to recombine c₂^(k_i) shares as
    Π (c₂^(k_i))^(λ_i) = c₂^k without reconstructing k. *)
