lib/mpc/shamir.mli: Larch_ec
