lib/mpc/sharing.ml: Larch_ec Larch_util String
