lib/mpc/ot.ml: Larch_ec Larch_hash Larch_util String
