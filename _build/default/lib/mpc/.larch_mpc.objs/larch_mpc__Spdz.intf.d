lib/mpc/spdz.mli: Larch_ec
