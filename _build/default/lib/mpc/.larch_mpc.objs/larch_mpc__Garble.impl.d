lib/mpc/garble.ml: Array Bytes Char Hashtbl Larch_circuit Larch_hash Larch_util List String
