lib/mpc/ot_ext.mli:
