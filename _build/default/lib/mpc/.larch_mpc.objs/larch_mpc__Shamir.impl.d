lib/mpc/shamir.ml: Array Larch_ec List
