lib/mpc/yao.mli: Larch_circuit Larch_net
