lib/mpc/spdz.ml: Larch_ec Larch_hash Larch_util Sharing
