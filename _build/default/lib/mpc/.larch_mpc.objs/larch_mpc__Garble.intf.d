lib/mpc/garble.mli: Larch_circuit
