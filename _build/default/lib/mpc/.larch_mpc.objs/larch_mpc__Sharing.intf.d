lib/mpc/sharing.mli: Larch_ec
