lib/mpc/ot_ext.ml: Array Bytes Char Larch_cipher Larch_hash Larch_util Ot String
