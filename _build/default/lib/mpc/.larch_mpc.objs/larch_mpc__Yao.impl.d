lib/mpc/yao.ml: Array Garble Larch_circuit Larch_net Larch_util Ot_ext String Unix
