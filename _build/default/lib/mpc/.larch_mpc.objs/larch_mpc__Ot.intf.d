lib/mpc/ot.mli: Larch_ec
