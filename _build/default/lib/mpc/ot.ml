(* 1-out-of-2 oblivious transfer (Chou–Orlandi "simplest OT" shape, over
   P-256, random-oracle key derivation).

   Used only as the *base* OTs of the IKNP extension ([Ot_ext]); the TOTP
   garbled-circuit execution transfers the log's input-wire labels with the
   extension, not with these (relatively expensive) public-key OTs. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar

type sender_state = { a : Scalar.t; a_pub : Point.t }
type sender_setup = { s_pub : Point.t }

let sender_setup ~(rand_bytes : int -> string) : sender_state * sender_setup =
  let a = Scalar.random_nonzero ~rand_bytes in
  let a_pub = Point.mul_base a in
  ({ a; a_pub }, { s_pub = a_pub })

type receiver_state = { shared : Point.t }
type receiver_msg = { r_pub : Point.t }

let derive_key (tag : string) (p : Point.t) (len : int) : string =
  Larch_hash.Hkdf.derive ~ikm:(Point.encode p) ~info:("larch-ot" ^ tag) ~len ()

(* Receiver with choice bit [choice]: B = g^b (choice 0) or A·g^b (choice 1). *)
let receiver_choose ~(setup : sender_setup) ~(choice : int) ~(rand_bytes : int -> string) :
    receiver_state * receiver_msg =
  let b = Scalar.random_nonzero ~rand_bytes in
  let gb = Point.mul_base b in
  let r_pub = if choice land 1 = 0 then gb else Point.add setup.s_pub gb in
  ({ shared = Point.mul b setup.s_pub }, { r_pub })

(* Sender derives both pads: k0 = H(B^a), k1 = H((B/A)^a). *)
let sender_keys ~(state : sender_state) ~(msg : receiver_msg) ~(key_len : int) : string * string
    =
  let k0 = derive_key "k" (Point.mul state.a msg.r_pub) key_len in
  let k1 = derive_key "k" (Point.mul state.a (Point.sub msg.r_pub state.a_pub)) key_len in
  (k0, k1)

(* Convenience: complete OT of two equal-length messages. *)
type sender_payload = { e0 : string; e1 : string }

let sender_encrypt ~(state : sender_state) ~(msg : receiver_msg) ~(m0 : string) ~(m1 : string) :
    sender_payload =
  if String.length m0 <> String.length m1 then invalid_arg "Ot.sender_encrypt: length mismatch";
  let len = String.length m0 in
  let k0, k1 = sender_keys ~state ~msg ~key_len:len in
  { e0 = Larch_util.Bytesx.xor m0 k0; e1 = Larch_util.Bytesx.xor m1 k1 }

let receiver_recover ~(state : receiver_state) ~(choice : int) (p : sender_payload) : string =
  let c = if choice land 1 = 0 then p.e0 else p.e1 in
  Larch_util.Bytesx.xor c (derive_key "k" state.shared (String.length c))
