(** Half-authenticated secure multiplication and MAC-checked opening
    (Appendix B.2, Figure 10; SPDZ-style information-theoretic MACs).

    The signing nonce r⁻¹ is authenticated (shares carry tags x̂ = α·x
    under a shared MAC key α); the ECDSA key share is deliberately not —
    Appendix A proves ECDSA tolerates adversarial additive "tweaks" of the
    key, which is what makes this cheaper protocol sound.

    Everything is expressed as pure per-party steps with explicit messages
    so drivers can meter them and tests can inject malicious deviations. *)

module Scalar = Larch_ec.P256.Scalar

(** One party's Π_HalfMul input: shares of the Beaver triple (a,b,c), its
    authenticated counterpart (f,g,h) = α·(a,b,c), the authenticated input
    (x, x̂), the unauthenticated input y, and the MAC-key share α. *)
type halfmul_input = {
  a : Scalar.t;
  b : Scalar.t;
  c : Scalar.t;
  f : Scalar.t;
  g : Scalar.t;
  h : Scalar.t;
  x : Scalar.t;
  xhat : Scalar.t;
  y : Scalar.t;
  alpha : Scalar.t;
}

type halfmul_msg = { d : Scalar.t; e : Scalar.t }
(** The exchanged Beaver openings d = x − a, e = y − b (shares thereof). *)

type halfmul_output = {
  z : Scalar.t; (** share of x·y *)
  zhat : Scalar.t; (** share of α·x·y *)
  d_open : Scalar.t; (** the publicly opened d *)
  dhat : Scalar.t; (** share of α·d, checked at opening time *)
}

val halfmul_round1 : halfmul_input -> halfmul_msg
val halfmul_finish : party:int -> halfmul_input -> own:halfmul_msg -> other:halfmul_msg -> halfmul_output

(** {1 Π_Open: commit-then-reveal opening with MAC check} *)

type open_input = {
  s : Scalar.t;
  shat : Scalar.t;
  d_pub : Scalar.t;
  dhat_share : Scalar.t;
  alpha_share : Scalar.t;
}

type open_commit = { commitment : string }
type open_reveal = { sigma : Scalar.t; tau : Scalar.t; nonce : string }
type open_state = { reveal : open_reveal; s_share : Scalar.t }

val open_round1 :
  open_input -> s_total:Scalar.t -> rand_bytes:(int -> string) -> open_state * open_commit
(** Compute σ = ŝ − α·s and τ = d̂ − α·d and commit to them; the
    commitment round stops the second mover from adapting. *)

val open_check : own:open_state -> other_commit:open_commit -> other_reveal:open_reveal -> bool
(** Accept iff the commitment opens correctly and both MAC residues sum to
    zero; [false] ⇒ the counterparty cheated (probability 1/q otherwise,
    Claim 4). *)

(** {1 Trusted dealing (client at enrollment)} *)

type triple_pair = { share0 : halfmul_input; share1 : halfmul_input }

val make_halfmul_inputs :
  x:Scalar.t -> y0:Scalar.t -> y1:Scalar.t -> rand_bytes:(int -> string) -> triple_pair * Scalar.t
(** Deal both parties' inputs for x·(y₀+y₁); also returns α for tests. *)
