(** Domain-based fork/join parallelism.  The larch client parallelizes
    ZKBoo proving across repetition batches (Figure 3, left). *)

val available_cores : unit -> int

val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Evaluate [f] over the array with at most [domains] concurrent domains;
    [domains = 1] runs sequentially in the calling domain (no overhead on
    single-core measurements). *)
