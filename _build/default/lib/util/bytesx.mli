(** Byte-string helpers.  Protocol byte values are immutable [string]s;
    [Bytes.t] appears only transiently while building values. *)

val xor : string -> string -> string
(** @raise Invalid_argument on length mismatch *)

val ct_equal : string -> string -> bool
(** Constant-time equality (time depends only on lengths). *)

(** {1 Bit access — LSB-first within each byte} *)

val get_bit : string -> int -> int
val set_bit : Bytes.t -> int -> int -> unit
val bits_of_string : string -> int array
val string_of_bits : int array -> string

(** {1 Fixed-width big-endian integers} *)

val be32 : int -> string
val be64 : int64 -> string

val concat : string list -> string
val pp_bytes_human : Format.formatter -> float -> unit
