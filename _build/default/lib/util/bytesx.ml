(* Byte-string helpers shared across the codebase.

   All protocol-level byte values are immutable [string]s; [Bytes.t] is only
   used transiently while building values. *)

let xor (a : string) (b : string) : string =
  if String.length a <> String.length b then invalid_arg "Bytesx.xor: length mismatch";
  let out = Bytes.create (String.length a) in
  for i = 0 to String.length a - 1 do
    Bytes.set out i (Char.chr (Char.code a.[i] lxor Char.code b.[i]))
  done;
  Bytes.unsafe_to_string out

(* Constant-time equality: the running time depends only on the lengths. *)
let ct_equal (a : string) (b : string) : bool =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end

let get_bit (s : string) (i : int) : int =
  (Char.code s.[i lsr 3] lsr (i land 7)) land 1

let set_bit (b : Bytes.t) (i : int) (v : int) : unit =
  let cur = Char.code (Bytes.get b (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let cur = if v land 1 = 1 then cur lor mask else cur land lnot mask in
  Bytes.set b (i lsr 3) (Char.chr cur)

(* Bits are numbered LSB-first within each byte, matching [get_bit]. *)
let bits_of_string (s : string) : int array =
  Array.init (8 * String.length s) (fun i -> get_bit s i)

let string_of_bits (bits : int array) : string =
  let n = Array.length bits in
  let out = Bytes.make ((n + 7) / 8) '\000' in
  Array.iteri (fun i v -> if v land 1 = 1 then set_bit out i 1) bits;
  Bytes.unsafe_to_string out

let be32 (v : int) : string =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((v lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((v lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((v lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (v land 0xff);
  Bytes.unsafe_to_string b

let be64 (v : int64) : string =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  Bytes.unsafe_to_string b

let concat = String.concat ""

(* Fixed-size human-readable sizes used by the bench harness. *)
let pp_bytes_human fmt (n : float) =
  if n >= 1024. *. 1024. then Fmt.pf fmt "%.2f MiB" (n /. (1024. *. 1024.))
  else if n >= 1024. then Fmt.pf fmt "%.2f KiB" (n /. 1024.)
  else Fmt.pf fmt "%.0f B" n
