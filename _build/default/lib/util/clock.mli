(** Simulated wall clock.  Records carry timestamps and TOTP depends on
    time, so the whole system reads time here: real by default, freezable
    and advanceable for deterministic tests and examples. *)

type mode = Real | Fixed of float

val now : unit -> float
val set : float -> unit
val advance : float -> unit
val use_real_time : unit -> unit
