(* Simulated wall clock.

   Log records carry timestamps and TOTP codes depend on the current time.
   Tests and examples need deterministic time, so the whole system reads time
   through this module: by default it tracks the real clock, but it can be
   frozen and advanced manually. *)

type mode = Real | Fixed of float

let state = ref Real

let now () : float =
  match !state with Real -> Unix.gettimeofday () | Fixed t -> t

let set (t : float) = state := Fixed t
let advance (dt : float) =
  match !state with
  | Fixed t -> state := Fixed (t +. dt)
  | Real -> state := Fixed (Unix.gettimeofday () +. dt)

let use_real_time () = state := Real
