lib/util/bytesx.ml: Array Bytes Char Fmt String
