lib/util/hex.mli:
