lib/util/parallel.mli:
