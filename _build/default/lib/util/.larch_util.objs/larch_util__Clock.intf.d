lib/util/clock.mli:
