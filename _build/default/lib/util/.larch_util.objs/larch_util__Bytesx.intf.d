lib/util/bytesx.mli: Bytes Format
