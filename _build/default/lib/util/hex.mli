(** Hexadecimal encoding/decoding. *)

val encode : string -> string

val decode : string -> string
(** @raise Invalid_argument on odd length or non-hex characters *)
