(* Domain-based fork/join parallelism.

   The larch client parallelises ZKBoo proving across repetition batches
   (Figure 3, left: latency vs. client cores).  [map ~domains f xs] evaluates
   [f] on each element of [xs] using at most [domains] concurrent domains.
   [domains = 1] runs sequentially in the calling domain, which keeps
   single-core measurements free of domain overhead. *)

let available_cores () = Domain.recommended_domain_count ()

let map ~(domains : int) (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  if domains <= 1 || n <= 1 then Array.map f xs
  else begin
    let domains = min domains n in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f xs.(i));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.map
      (function Some r -> r | None -> failwith "Parallel.map: missing result")
      results
  end
