lib/auth/password.ml: Buffer Larch_hash Larch_util String
