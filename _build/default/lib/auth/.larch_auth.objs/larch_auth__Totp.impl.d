lib/auth/totp.ml: Bytes Char Int64 Larch_hash List Printf String
