lib/auth/password.mli:
