lib/auth/totp.mli: Larch_hash
