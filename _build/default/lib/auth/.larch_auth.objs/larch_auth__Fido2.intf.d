lib/auth/fido2.mli: Larch_ec
