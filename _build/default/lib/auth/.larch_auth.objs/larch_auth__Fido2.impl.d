lib/auth/fido2.ml: Char Larch_ec Larch_hash Larch_util String
