(** FIDO2 / U2F assertion formats (simplified WebAuthn).

    Larch maps the standard signed payload onto its provable statement:
    the ECDSA-signed digest is SHA256(rp_id_hash ‖ chal') where chal'
    collapses flags, counter, and the challenge digest — exactly the
    dgst = Hash(id, chal) shape of the FIDO2 statement circuit, so relying
    parties need no changes (Goal 4). *)

val rp_id_hash : string -> string
(** 32-byte relying-party identity: SHA256 of the (namespaced) RP name. *)

type assertion_request = { rp_name : string; challenge : string }

type assertion_payload = {
  rp_hash : string;
  flags : int;
  counter : int;
  challenge_digest : string;
}

val flags_user_present : int
val flags_user_verified : int

val make_payload : rp_name:string -> challenge:string -> counter:int -> assertion_payload

val statement_challenge : assertion_payload -> string
(** The 32-byte "chal" fed to the statement circuit (everything except the
    relying-party identity). *)

val signing_digest : assertion_payload -> string
(** The digest that is ECDSA-signed: SHA256(rp_hash ‖ statement_challenge). *)

type assertion = { payload : assertion_payload; signature : Larch_ec.Ecdsa.signature }

val verify : pk:Larch_ec.Point.t -> rp_name:string -> challenge:string -> assertion -> bool
(** Full relying-party verification (payload consistency, user presence,
    signature). *)
