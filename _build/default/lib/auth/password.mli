(** Relying-party password storage: PBKDF2-HMAC-SHA256 salted verifiers
    (RFC 2898).  Lets the simulation check that larch-derived passwords
    actually authenticate. *)

val pbkdf2 : password:string -> salt:string -> iterations:int -> len:int -> string

type verifier = { salt : string; hash : string; iterations : int }

val default_iterations : int
(** Deliberately small for test throughput; a production RP would use a
    memory-hard KDF (cf. the paper's Argon2 comparison row). *)

val create : ?iterations:int -> rand_bytes:(int -> string) -> string -> verifier
val check : verifier -> string -> bool
