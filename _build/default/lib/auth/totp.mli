(** HOTP (RFC 4226) and TOTP (RFC 6238).

    The relying party's verification algorithm; the larch client computes
    the identical code jointly with the log via garbled circuits, with the
    dynamic truncation below applied client-side in the clear. *)

type algo = Larch_hash.Hmac.algo = SHA256 | SHA1

val time_step : int64
val digits : int

val counter_of_time : float -> int64
val counter_bytes : int64 -> string

val truncate : string -> int
(** RFC 4226 §5.3 dynamic truncation of a full HMAC value to 6 digits. *)

val hotp : ?algo:algo -> key:string -> int64 -> int
val totp : ?algo:algo -> key:string -> time:float -> unit -> int
val code_to_string : int -> string

val verify : ?algo:algo -> key:string -> time:float -> int -> bool
(** Accepts codes from the current and the two adjacent time steps. *)
