(* Arbitrary-precision natural numbers.

   Representation: little-endian array of limbs in base 2^26, normalized so
   the most-significant limb is nonzero ([||] represents zero).  Base 2^26
   keeps every intermediate product and accumulation comfortably inside
   OCaml's 63-bit native ints: a limb product is <= 2^52 and schoolbook
   accumulation stays below 2^62. *)

type t = int array

let base_bits = 26
let mask = (1 lsl base_bits) - 1

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int (v : int) : t =
  if v < 0 then invalid_arg "Nat.of_int: negative";
  let rec limbs v = if v = 0 then [] else (v land mask) :: limbs (v lsr base_bits) in
  Array.of_list (limbs v)

let one = of_int 1

let to_int_exn (a : t) : int =
  if Array.length a > 2 then invalid_arg "Nat.to_int_exn: too large";
  Array.fold_right (fun limb acc -> (acc lsl base_bits) lor limb) a 0

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) : int =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let lt a b = compare a b < 0
let leq a b = compare a b <= 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let av = if i < la then a.(i) else 0 and bv = if i < lb then b.(i) else 0 in
    let t = av + bv + !carry in
    r.(i) <- t land mask;
    carry := t lsr base_bits
  done;
  r.(n) <- !carry;
  normalize r

(* [sub a b] requires [a >= b]. *)
let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < lb then invalid_arg "Nat.sub: underflow";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let t = a.(i) - bv - !borrow in
    if t < 0 then begin
      r.(i) <- t + (1 lsl base_bits);
      borrow := 1
    end
    else begin
      r.(i) <- t;
      borrow := 0
    end
  done;
  if !borrow <> 0 then invalid_arg "Nat.sub: underflow";
  normalize r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    (* hot loop of every group operation: indices are in range by
       construction, so unsafe accesses are used *)
    for i = 0 to la - 1 do
      let ai = Array.unsafe_get a i in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = Array.unsafe_get r (i + j) + (ai * Array.unsafe_get b j) + !carry in
          Array.unsafe_set r (i + j) (t land mask);
          carry := t lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = Array.unsafe_get r !k + !carry in
          Array.unsafe_set r !k (t land mask);
          carry := t lsr base_bits;
          incr k
        done
      end
    done;
    normalize r
  end

let bit_length (a : t) : int =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + width top 0
  end

let test_bit (a : t) (i : int) : bool =
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let shift_left (a : t) (k : int) : t =
  if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land mask);
      r.(i + limb_shift + 1) <- r.(i + limb_shift + 1) lor (v lsr base_bits)
    done;
    normalize r
  end

let shift_right (a : t) (k : int) : t =
  if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Binary long division.  Only used off the hot path (Barrett precompute,
   initial reductions); modular arithmetic goes through [Modarith]. *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let shift = bit_length a - bit_length b in
    let q = Array.make ((shift / base_bits) + 1) 0 in
    let r = ref a in
    for i = shift downto 0 do
      let bs = shift_left b i in
      if compare !r bs >= 0 then begin
        r := sub !r bs;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (normalize q, !r)
  end

let of_bytes_be (s : string) : t =
  let n = String.length s in
  if n = 0 then zero
  else begin
    let nbits = 8 * n in
    let nlimbs = (nbits + base_bits - 1) / base_bits in
    let r = Array.make nlimbs 0 in
    for i = 0 to n - 1 do
      let byte = Char.code s.[n - 1 - i] in
      let bitpos = 8 * i in
      let limb = bitpos / base_bits and off = bitpos mod base_bits in
      r.(limb) <- r.(limb) lor ((byte lsl off) land mask);
      if off > base_bits - 8 then begin
        let spill = byte lsr (base_bits - off) in
        if spill <> 0 then r.(limb + 1) <- r.(limb + 1) lor spill
      end
    done;
    normalize r
  end

(* Big-endian encoding into exactly [len] bytes; raises if it does not fit. *)
let to_bytes_be ~(len : int) (a : t) : string =
  if bit_length a > 8 * len then invalid_arg "Nat.to_bytes_be: does not fit";
  let out = Bytes.make len '\000' in
  let la = Array.length a in
  for i = 0 to len - 1 do
    (* i-th least significant byte *)
    let bitpos = 8 * i in
    let limb = bitpos / base_bits and off = bitpos mod base_bits in
    if limb < la then begin
      let v = a.(limb) lsr off in
      let v =
        if off > base_bits - 8 && limb + 1 < la then
          v lor (a.(limb + 1) lsl (base_bits - off))
        else v
      in
      Bytes.set out (len - 1 - i) (Char.chr (v land 0xff))
    end
  done;
  Bytes.unsafe_to_string out

let of_hex (s : string) : t =
  let s = if String.length s mod 2 = 1 then "0" ^ s else s in
  of_bytes_be (Larch_util.Hex.decode s)

let to_hex (a : t) : string =
  if is_zero a then "00"
  else Larch_util.Hex.encode (to_bytes_be ~len:((bit_length a + 7) / 8) a)

let pp fmt a = Fmt.pf fmt "0x%s" (to_hex a)

let is_even (a : t) = not (test_bit a 0)
let is_one (a : t) = equal a one
