lib/bignum/modarith.ml: Array Format Nat
