lib/bignum/nat.ml: Array Bytes Char Fmt Larch_util Stdlib String
