(** Arbitrary-precision natural numbers.

    Little-endian base-2²⁶ limbs in native-int arrays, sized so that
    schoolbook multiplication never overflows OCaml's 63-bit ints.  This is
    the arithmetic bedrock under {!Modarith} and the P-256 group. *)

type t = int array
(** Normalized: most-significant limb nonzero; [[||]] is zero. *)

val base_bits : int
val mask : int

val zero : t
val one : t
val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool

val of_int : int -> t
(** @raise Invalid_argument on negatives *)

val to_int_exn : t -> int
val normalize : int array -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val lt : t -> t -> bool
val leq : t -> t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Quotient and remainder (binary long division; off the hot path — use
    {!Modarith} for repeated reductions).
    @raise Division_by_zero *)

val bit_length : t -> int
val test_bit : t -> int -> bool
val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** {1 Encodings} *)

val of_bytes_be : string -> t

val to_bytes_be : len:int -> t -> string
(** @raise Invalid_argument if the value needs more than [len] bytes *)

val of_hex : string -> t
val to_hex : t -> string
val pp : Format.formatter -> t -> unit
