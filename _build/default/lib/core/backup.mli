(** Account recovery (§9): encrypted client-state backups at the log.

    The client serializes its complete secret state, seals it with
    encrypt-then-MAC under a PBKDF2 key derived from the log-account
    password, and stores the blob at the log.  After losing every device,
    the user recovers with the password alone (so the backup is exactly as
    strong as that password — the paper's stated tradeoff). *)

val encode_state : Client.t -> string
(** Serialize all three method states (archive keys, credentials,
    presignature shares). *)

val decode_state : string -> Client.t -> (unit, string) result
(** Restore serialized state into a freshly created client. *)

val kdf_iterations : int

val seal : password:string -> rand_bytes:(int -> string) -> string -> string
(** ChaCha20 + HMAC-SHA256 encrypt-then-MAC under a password-derived key. *)

val open_sealed : password:string -> string -> (string, string) result
(** Fails on a wrong password or a tampered blob. *)

val store : Client.t -> int
(** Seal and upload the client's state; returns the blob size in bytes. *)

val recover :
  log:Log_service.t ->
  client_id:string ->
  account_password:string ->
  rand_bytes:(int -> string) ->
  (Client.t, string) result
(** Rebuild a working client on a new device from the stored backup. *)
