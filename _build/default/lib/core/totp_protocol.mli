(** Split-secret TOTP authentication (§4).

    Registration XOR-splits the relying party's TOTP secret under a random
    128-bit identifier; authentication executes the
    {!Larch_circuit.Larch_statements.totp_circuit} with the Yao runner.
    The log (evaluator) learns only the validity bit and an encrypted
    record; the client (garbler) learns the full HMAC, truncated to the
    6-digit code in the clear. *)

module Wire = Larch_net.Wire
module Statements = Larch_circuit.Larch_statements
module Yao = Larch_mpc.Yao
module Channel = Larch_net.Channel

type registration = { id : string; klog : string }

val encode_registration : registration -> string
val decode_registration : string -> registration option

val evaluator_output_bits : int
(** Output wires revealed to the log: ok(1) ‖ ct(128). *)

type outcome = {
  code : int; (** the 6-digit TOTP code (client side) *)
  hmac : string; (** the full 20-byte HMAC released by the circuit *)
  ok : bool; (** log-side validity bit (commitment + id-membership) *)
  ct : string; (** log-side encrypted record *)
  timings : Yao.timings;
}

val run_auth :
  pub:Statements.totp_public ->
  n_rps:int ->
  client:string * string * string * string ->
  registrations:(string * string) list ->
  rand_client:(int -> string) ->
  rand_log:(int -> string) ->
  offline:Channel.t ->
  online:Channel.t ->
  outcome
(** One full 2PC execution.  [client] is (archive key, commitment nonce,
    registration id, client key share); [registrations] the log's
    (id, klog) table. *)
