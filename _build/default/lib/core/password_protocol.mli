(** Larch_PW: split-secret authentication for passwords (§5, Appendix C).

    The password for relying party id is pw = k_id · Hash(id)^k ∈ G: k_id
    is a per-party client secret, k the log's per-client Diffie-Hellman
    key.  Authentication sends an ElGamal encryption of Hash(id) under the
    client's archive key plus two {!Larch_sigma.Gk15} proofs that it
    encrypts a registered identifier; the ciphertext is the log record.

    These are the pure algorithms of Figure 11; state and routing live in
    {!Client} and {!Log_service}. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Gk15 = Larch_sigma.Gk15
module Pedersen = Larch_sigma.Pedersen
module Wire = Larch_net.Wire

val id_len : int
(** Registration identifiers are 128-bit random strings. *)

(** {1 Enrollment / registration (Figure 11)} *)

val client_gen : rand_bytes:(int -> string) -> Scalar.t * Point.t
(** The client's ElGamal archive keypair (x, X). *)

val log_gen : rand_bytes:(int -> string) -> Scalar.t * Point.t
(** The log's Diffie-Hellman keypair (k, K). *)

val client_register : rand_bytes:(int -> string) -> string * Point.t
(** Fresh (id, k_id). *)

val log_register : log_sk:Scalar.t -> id:string -> Point.t
(** Hash(id)^k. *)

val finish_register : k_id:Point.t -> y:Point.t -> Point.t
(** The password group element k_id · Hash(id)^k. *)

val import_legacy : pw:Point.t -> y:Point.t -> Point.t
(** k_id for an existing password embedding: pw · (Hash(id)^k)⁻¹. *)

(** {1 Password ↔ group element} *)

val max_legacy_len : int

val embed_password : string -> Point.t
(** Invertible Koblitz-style embedding of a short password (≤ 28 bytes).
    @raise Invalid_argument if too long *)

val extract_password : Point.t -> string option
(** Inverse of {!embed_password}; [None] for non-embedded points. *)

val password_string : Point.t -> string
(** The secret typed at the relying party: the legacy string when the point
    is an embedding, otherwise a derived high-entropy password. *)

(** {1 Authentication} *)

type auth_request = {
  ct : Larch_ec.Elgamal.ciphertext; (** (g^r, Hash(id)·X^r): the log record *)
  pi1 : Gk15.proof; (** some hᵢ = X^r *)
  pi2 : Gk15.proof; (** the same hᵢ = c₁^x *)
}

val commitment_set : c2:Point.t -> ids:string list -> Point.t array
(** hᵢ = c₂ / Hash(idᵢ), shared by prover and verifier. *)

val client_auth :
  idx:int -> x:Scalar.t -> ids:string list -> rand_bytes:(int -> string) -> Scalar.t * auth_request
(** Returns the encryption randomness r (needed by {!finish_auth}) and the
    request. *)

val log_auth :
  log_sk:Scalar.t -> client_pub:Point.t -> ids:string list -> auth_request -> Point.t option
(** Verify both proofs; on success return c₂^k, else [None]. *)

val finish_auth :
  x:Scalar.t -> log_pub:Point.t -> r:Scalar.t -> k_id:Point.t -> y:Point.t -> Point.t
(** pw = k_id · y · K^(−x·r). *)

(** {1 Auditing / wire} *)

val decrypt_record : x:Scalar.t -> Larch_ec.Elgamal.ciphertext -> Point.t
val encode_auth_request : auth_request -> string
val decode_auth_request : string -> auth_request option
