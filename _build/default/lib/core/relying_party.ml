(* Simulated relying parties (Goal 4: no larch awareness).

   Each relying party supports whichever of the three standard mechanisms
   it was configured with: FIDO2 assertions over ECDSA/P-256, RFC 6238 TOTP
   (with an optional replay cache, §2.4), and salted-hash passwords. *)

module Point = Larch_ec.Point

type user_state = {
  mutable fido2_pk : Point.t option;
  mutable fido2_counter : int;
  mutable pending_challenge : string option;
  mutable totp_key : string option;
  mutable totp_replay : (int64 * int) list; (* (counter, code) pairs already used *)
  mutable password : Larch_auth.Password.verifier option;
}

type t = {
  name : string;
  rand : int -> string;
  users : (string, user_state) Hashtbl.t;
  totp_replay_cache : bool;
}

let create ?(totp_replay_cache = true) ~(name : string) ~(rand_bytes : int -> string) () : t =
  { name; rand = rand_bytes; users = Hashtbl.create 8; totp_replay_cache }

let user (t : t) (u : string) : user_state =
  match Hashtbl.find_opt t.users u with
  | Some s -> s
  | None ->
      let s =
        {
          fido2_pk = None;
          fido2_counter = 0;
          pending_challenge = None;
          totp_key = None;
          totp_replay = [];
          password = None;
        }
      in
      Hashtbl.replace t.users u s;
      s

(* --- FIDO2 --- *)

let fido2_register (t : t) ~(username : string) ~(pk : Point.t) : unit =
  (user t username).fido2_pk <- Some pk

let fido2_challenge (t : t) ~(username : string) : string =
  let u = user t username in
  let chal = t.rand 32 in
  u.pending_challenge <- Some chal;
  chal

let fido2_login (t : t) ~(username : string) (a : Larch_auth.Fido2.assertion) : bool =
  let u = user t username in
  match (u.fido2_pk, u.pending_challenge) with
  | Some pk, Some challenge ->
      u.pending_challenge <- None;
      let ok = Larch_auth.Fido2.verify ~pk ~rp_name:t.name ~challenge a in
      (* signature-counter regression indicates a cloned authenticator *)
      let counter_ok = a.Larch_auth.Fido2.payload.Larch_auth.Fido2.counter > u.fido2_counter in
      if ok && counter_ok then begin
        u.fido2_counter <- a.Larch_auth.Fido2.payload.Larch_auth.Fido2.counter;
        true
      end
      else false
  | _ -> false

(* --- TOTP --- *)

(* Registration: the relying party generates the shared secret (§4.1). *)
let totp_register (t : t) ~(username : string) : string =
  let key = t.rand 20 in
  (user t username).totp_key <- Some key;
  key

let totp_login (t : t) ~(username : string) ~(time : float) (code : int) : bool =
  let u = user t username in
  match u.totp_key with
  | None -> false
  | Some key ->
      let counter = Larch_auth.Totp.counter_of_time time in
      let fresh = not (t.totp_replay_cache && List.mem (counter, code) u.totp_replay) in
      let ok = fresh && Larch_auth.Totp.verify ~key ~time code in
      if ok then u.totp_replay <- (counter, code) :: u.totp_replay;
      ok

(* --- passwords --- *)

let password_set (t : t) ~(username : string) ~(password : string) : unit =
  (user t username).password <- Some (Larch_auth.Password.create ~rand_bytes:t.rand password)

let password_login (t : t) ~(username : string) ~(password : string) : bool =
  match (user t username).password with
  | None -> false
  | Some v -> Larch_auth.Password.check v password
