(* Account recovery (§9): the client serializes its entire secret state,
   encrypts it under a key derived from the log-account password, and
   stores the ciphertext at the log service.  After losing every device,
   the user recovers the state with only that password.

   As the paper notes, the backup is only as strong as the password; the
   PBKDF2 work factor is the knob (a production deployment would pair this
   with secure hardware as in SafetyPin [27]). *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Wire = Larch_net.Wire
module Tpe = Two_party_ecdsa

(* --- client-state serialization --- *)

let put_scalar w (s : Scalar.t) = Wire.fixed w (Scalar.to_bytes_be s)
let read_scalar r = Scalar.of_bytes_be (Wire.read_fixed r 32)
let put_point w (p : Point.t) = Wire.bytes w (Point.encode p)

let read_point r =
  match Point.decode (Wire.read_bytes r) with
  | Some p -> p
  | None -> raise (Wire.Malformed "bad point")

let put_client_presig w (p : Tpe.client_presig) =
  List.iter (put_scalar w)
    [ p.Tpe.cap_r1; p.Tpe.r1; p.Tpe.rhat1; p.Tpe.alpha1; p.Tpe.a1; p.Tpe.b1; p.Tpe.c1;
      p.Tpe.f1; p.Tpe.g1; p.Tpe.h1 ]

let read_client_presig r : Tpe.client_presig =
  let cap_r1 = read_scalar r in
  let r1 = read_scalar r in
  let rhat1 = read_scalar r in
  let alpha1 = read_scalar r in
  let a1 = read_scalar r in
  let b1 = read_scalar r in
  let c1 = read_scalar r in
  let f1 = read_scalar r in
  let g1 = read_scalar r in
  let h1 = read_scalar r in
  { Tpe.cap_r1; r1; rhat1; alpha1; a1; b1; c1; f1; g1; h1 }

let put_hashtbl w (tbl : (string, 'a) Hashtbl.t) (put_v : Wire.writer -> 'a -> unit) =
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let items = List.sort compare (List.map (fun (k, v) -> (k, v)) items) in
  Wire.list w
    (fun w (k, v) ->
      Wire.bytes w k;
      put_v w v)
    items

let read_hashtbl r (read_v : Wire.reader -> 'a) : (string, 'a) Hashtbl.t =
  let items =
    Wire.read_list r (fun r ->
        let k = Wire.read_bytes r in
        let v = read_v r in
        (k, v))
  in
  let tbl = Hashtbl.create (max 8 (List.length items)) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) items;
  tbl

let encode_state (c : Client.t) : string =
  Wire.encode (fun w ->
      (* fido2 side *)
      (match c.Client.fido2 with
      | None -> Wire.u8 w 0
      | Some f ->
          Wire.u8 w 1;
          Wire.bytes w f.Client.fk;
          Wire.bytes w f.Client.fr;
          put_scalar w f.Client.record_sk;
          put_point w f.Client.log_pub;
          Wire.list w
            (fun w (b : Tpe.client_batch) ->
              Wire.u32 w b.Tpe.cnext;
              Wire.list w put_client_presig (Array.to_list b.Tpe.centries))
            f.Client.batches;
          put_hashtbl w f.Client.fido2_creds (fun w (cred : Client.fido2_cred) ->
              put_scalar w cred.Client.y;
              put_point w cred.Client.pk;
              Wire.u32 w cred.Client.counter);
          put_hashtbl w f.Client.fido2_names Wire.bytes);
      (* totp side *)
      (match c.Client.totp with
      | None -> Wire.u8 w 0
      | Some s ->
          Wire.u8 w 1;
          Wire.bytes w s.Client.tk;
          Wire.bytes w s.Client.tr;
          put_hashtbl w s.Client.totp_creds (fun w (cred : Client.totp_cred) ->
              Wire.bytes w cred.Client.tid;
              Wire.bytes w cred.Client.kclient;
              Wire.u8 w (match cred.Client.algo with Larch_auth.Totp.SHA1 -> 0 | SHA256 -> 1));
          put_hashtbl w s.Client.totp_names Wire.bytes);
      (* password side *)
      match c.Client.pw with
      | None -> Wire.u8 w 0
      | Some s ->
          Wire.u8 w 1;
          put_scalar w s.Client.x;
          put_point w s.Client.x_pub;
          put_point w s.Client.log_k_pub;
          Wire.list w Wire.bytes s.Client.pw_ids;
          put_hashtbl w s.Client.pw_creds (fun w (cred : Client.pw_cred) ->
              Wire.bytes w cred.Client.pid;
              put_point w cred.Client.k_id);
          put_hashtbl w s.Client.pw_names Wire.bytes)

let decode_state (blob : string) (c : Client.t) : (unit, string) result =
  Wire.decode blob (fun r ->
      (match Wire.read_u8 r with
      | 0 -> c.Client.fido2 <- None
      | _ ->
          let fk = Wire.read_bytes r in
          let fr = Wire.read_bytes r in
          let record_sk = read_scalar r in
          let log_pub = read_point r in
          let batches =
            Wire.read_list r (fun r ->
                let cnext = Wire.read_u32 r in
                let centries = Array.of_list (Wire.read_list r read_client_presig) in
                { Tpe.centries; cnext })
          in
          let fido2_creds =
            read_hashtbl r (fun r ->
                let y = read_scalar r in
                let pk = read_point r in
                let counter = Wire.read_u32 r in
                { Client.y; pk; counter })
          in
          let fido2_names = read_hashtbl r Wire.read_bytes in
          c.Client.fido2 <-
            Some { Client.fk; fr; record_sk; log_pub; batches; fido2_creds; fido2_names });
      (match Wire.read_u8 r with
      | 0 -> c.Client.totp <- None
      | _ ->
          let tk = Wire.read_bytes r in
          let tr = Wire.read_bytes r in
          let totp_creds =
            read_hashtbl r (fun r ->
                let tid = Wire.read_bytes r in
                let kclient = Wire.read_bytes r in
                let algo =
                  match Wire.read_u8 r with 0 -> Larch_auth.Totp.SHA1 | _ -> Larch_auth.Totp.SHA256
                in
                { Client.tid; kclient; algo })
          in
          let totp_names = read_hashtbl r Wire.read_bytes in
          c.Client.totp <- Some { Client.tk; tr; totp_creds; totp_names });
      match Wire.read_u8 r with
      | 0 -> c.Client.pw <- None
      | _ ->
          let x = read_scalar r in
          let x_pub = read_point r in
          let log_k_pub = read_point r in
          let pw_ids = Wire.read_list r Wire.read_bytes in
          let pw_creds =
            read_hashtbl r (fun r ->
                let pid = Wire.read_bytes r in
                let k_id = read_point r in
                { Client.pid; k_id })
          in
          let pw_names = read_hashtbl r Wire.read_bytes in
          c.Client.pw <- Some { Client.x; x_pub; log_k_pub; pw_ids; pw_creds; pw_names })

(* --- authenticated encryption under a password-derived key --- *)

let kdf_iterations = 4096

let derive_keys ~(password : string) ~(salt : string) : string * string =
  let km = Larch_auth.Password.pbkdf2 ~password ~salt ~iterations:kdf_iterations ~len:64 in
  (String.sub km 0 32, String.sub km 32 32)

(* encrypt-then-MAC: ChaCha20 + HMAC-SHA256 *)
let seal ~(password : string) ~(rand_bytes : int -> string) (plaintext : string) : string =
  let salt = rand_bytes 16 and nonce = rand_bytes 12 in
  let enc_key, mac_key = derive_keys ~password ~salt in
  let ct = Larch_cipher.Chacha20.encrypt ~key:enc_key ~nonce plaintext in
  let tag = Larch_hash.Hmac.sha256 ~key:mac_key (salt ^ nonce ^ ct) in
  Wire.encode (fun w ->
      Wire.bytes w salt;
      Wire.bytes w nonce;
      Wire.bytes w ct;
      Wire.bytes w tag)

let open_sealed ~(password : string) (blob : string) : (string, string) result =
  match
    Wire.decode blob (fun r ->
        let salt = Wire.read_bytes r in
        let nonce = Wire.read_bytes r in
        let ct = Wire.read_bytes r in
        let tag = Wire.read_bytes r in
        (salt, nonce, ct, tag))
  with
  | Error e -> Error e
  | Ok (salt, nonce, ct, tag) ->
      let enc_key, mac_key = derive_keys ~password ~salt in
      if not (Larch_util.Bytesx.ct_equal tag (Larch_hash.Hmac.sha256 ~key:mac_key (salt ^ nonce ^ ct)))
      then Error "authentication failed (wrong password or corrupted backup)"
      else Ok (Larch_cipher.Chacha20.decrypt ~key:enc_key ~nonce ct)

(* --- store / recover via the log service --- *)

let store (c : Client.t) : int =
  let blob =
    seal ~password:c.Client.account_password ~rand_bytes:c.Client.rand (encode_state c)
  in
  Client.send_c2l c blob;
  Log_service.store_backup c.Client.log ~client_id:c.Client.client_id blob;
  String.length blob

let recover ~(log : Log_service.t) ~(client_id : string) ~(account_password : string)
    ~(rand_bytes : int -> string) : (Client.t, string) result =
  match Log_service.fetch_backup log ~client_id with
  | None -> Error "no backup stored"
  | Some blob -> (
      match open_sealed ~password:account_password blob with
      | Error e -> Error e
      | Ok plaintext ->
          let c = Client.create ~client_id ~account_password ~log ~rand_bytes () in
          (match decode_state plaintext c with
          | Ok () -> Ok c
          | Error e -> Error e))
