(** Splitting trust across multiple log services (§6).

    Enroll with n logs, authenticate with any t, audit completely with any
    n − t + 1.  Fully implemented for passwords via Shamir sharing of the
    log-side Diffie-Hellman key with recombination in the exponent; FIDO2
    and TOTP generalize via threshold ECDSA / multi-party GC (the paper
    defers to existing protocols). *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Shamir = Larch_mpc.Shamir

type t = {
  logs : Log_service.t array;
  threshold : int;
  online : bool array;
  rand : int -> string;
}

val create : n:int -> threshold:int -> rand_bytes:(int -> string) -> t
val n_logs : t -> int

val set_online : t -> int -> bool -> unit
(** Availability simulation: mark log [i] up or down. *)

val online_indices : t -> int list

(** Client-side multi-log password state. *)
type client = {
  client_id : string;
  account_password : string;
  x : Scalar.t;
  x_pub : Point.t;
  k_pub : Point.t; (** K = g^k for the joint (dealt) key *)
  mutable ids : string list;
  creds : (string, string * Point.t) Hashtbl.t;
  names : (string, string) Hashtbl.t;
}

val enroll : t -> client_id:string -> account_password:string -> client
(** One-time enrollment with all n logs; the client deals Shamir shares of
    the joint key and deletes it. *)

val register : t -> client -> rp_name:string -> string
(** Register at every log (so identifier sets stay aligned); returns the
    password for the relying party. *)

exception Unavailable of string

val authenticate : t -> client -> rp_name:string -> now:float -> string
(** Authenticate against any t online logs; each verifies the GK15 proofs
    and stores the record.
    @raise Unavailable when fewer than t logs are up *)

type audit_result = {
  entries : (float * string option) list;
  complete : bool; (** guaranteed-complete iff ≥ n − t + 1 logs reachable *)
}

val audit : t -> client -> audit_result
(** Union of reachable logs' records, deduplicated by ciphertext. *)
