(* Authentication log records (what the log service stores per auth).

   Layout follows the paper's §8.2 accounting: timestamp (8B) + ciphertext
   + integrity signature (64B, the §7 "sign the ciphertext" optimization;
   absent for passwords, whose ElGamal ciphertext is bound by the GK15
   proof).  The log additionally keeps the client IP as metadata. *)

module Wire = Larch_net.Wire

type payload =
  | Symmetric of { nonce : string; ct : string; signature : string }
      (** FIDO2 / TOTP: sha-ctr ciphertext of the relying-party id under the
          archive key, signed by the client's record-integrity key. *)
  | Elgamal of Larch_ec.Elgamal.ciphertext
      (** Passwords: ElGamal encryption of Hash(id) under the archive key. *)

type t = { time : float; ip : string; method_ : Types.auth_method; payload : payload }

(* Paper-style storage accounting (timestamp + ciphertext + signature). *)
let storage_bytes (r : t) : int =
  match r.payload with
  | Symmetric { nonce; ct; signature } -> 8 + String.length nonce + String.length ct + String.length signature
  | Elgamal _ -> 8 + 130

let encode_payload (w : Wire.writer) (p : payload) : unit =
  match p with
  | Symmetric { nonce; ct; signature } ->
      Wire.u8 w 0;
      Wire.bytes w nonce;
      Wire.bytes w ct;
      Wire.bytes w signature
  | Elgamal ct ->
      Wire.u8 w 1;
      Wire.bytes w (Larch_ec.Elgamal.encode ct)

let decode_payload (r : Wire.reader) : payload =
  match Wire.read_u8 r with
  | 0 ->
      let nonce = Wire.read_bytes r in
      let ct = Wire.read_bytes r in
      let signature = Wire.read_bytes r in
      Symmetric { nonce; ct; signature }
  | 1 -> (
      match Larch_ec.Elgamal.decode (Wire.read_bytes r) with
      | Some ct -> Elgamal ct
      | None -> raise (Wire.Malformed "bad elgamal ciphertext"))
  | _ -> raise (Wire.Malformed "bad payload tag")

let encode (t : t) : string =
  Wire.encode (fun w ->
      Wire.u64 w (Int64.bits_of_float t.time);
      Wire.bytes w t.ip;
      Wire.u8 w (Types.auth_method_tag t.method_);
      encode_payload w t.payload)

let decode (s : string) : (t, string) result =
  match
    Wire.decode s (fun r ->
        let time = Int64.float_of_bits (Wire.read_u64 r) in
        let ip = Wire.read_bytes r in
        let m =
          match Types.auth_method_of_tag (Wire.read_u8 r) with
          | Some m -> m
          | None -> raise (Wire.Malformed "bad method")
        in
        let payload = decode_payload r in
        { time; ip; method_ = m; payload })
  with
  | Ok r -> Ok r
  | Error e -> Error e

let decode_opt s = match decode s with Ok r -> Some r | Error _ -> None
