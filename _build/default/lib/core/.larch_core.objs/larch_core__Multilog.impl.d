lib/core/multilog.ml: Array Hashtbl Larch_ec Larch_mpc List Log_service Password_protocol Printf Record Types
