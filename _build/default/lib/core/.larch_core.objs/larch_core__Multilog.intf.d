lib/core/multilog.mli: Hashtbl Larch_ec Larch_mpc Log_service
