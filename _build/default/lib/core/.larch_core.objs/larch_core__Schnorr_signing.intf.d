lib/core/schnorr_signing.mli: Larch_ec
