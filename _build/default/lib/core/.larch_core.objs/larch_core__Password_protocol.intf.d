lib/core/password_protocol.mli: Larch_ec Larch_net Larch_sigma
