lib/core/totp_protocol.ml: Array Larch_auth Larch_circuit Larch_mpc Larch_net Larch_util String
