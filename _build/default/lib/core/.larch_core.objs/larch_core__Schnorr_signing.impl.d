lib/core/schnorr_signing.ml: Larch_bignum Larch_ec Larch_hash Larch_util Nat
