lib/core/types.mli:
