lib/core/record.ml: Int64 Larch_ec Larch_net String Types
