lib/core/client.mli: Hashtbl Larch_auth Larch_circuit Larch_ec Larch_net Larch_util Log_service Totp_protocol Two_party_ecdsa Types
