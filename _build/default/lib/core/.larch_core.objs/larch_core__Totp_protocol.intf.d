lib/core/totp_protocol.mli: Larch_circuit Larch_mpc Larch_net
