lib/core/password_protocol.ml: Array Bytes Char Larch_bignum Larch_ec Larch_hash Larch_net Larch_sigma Larch_util List String
