lib/core/log_service.mli: Fido2_protocol Hashtbl Larch_ec Larch_mpc Larch_sigma Password_protocol Record Totp_protocol Two_party_ecdsa Types
