lib/core/types.ml: Printf
