lib/core/fido2_protocol.ml: Larch_circuit Larch_mpc Larch_net Larch_zkboo Lazy String Two_party_ecdsa
