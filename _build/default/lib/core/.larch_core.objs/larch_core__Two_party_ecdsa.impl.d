lib/core/two_party_ecdsa.ml: Array Larch_bignum Larch_cipher Larch_ec Larch_mpc Larch_net Larch_util Nat Option String Types
