lib/core/backup.ml: Array Client Hashtbl Larch_auth Larch_cipher Larch_ec Larch_hash Larch_net Larch_util List Log_service String Two_party_ecdsa
