lib/core/log_service.ml: Array Fido2_protocol Hashtbl Larch_ec Larch_hash Larch_mpc Larch_sigma Larch_util List Password_protocol Record String Totp_protocol Two_party_ecdsa Types
