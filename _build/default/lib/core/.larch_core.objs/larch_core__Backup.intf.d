lib/core/backup.mli: Client Log_service
