lib/core/relying_party.mli: Hashtbl Larch_auth Larch_ec
