lib/core/two_party_ecdsa.mli: Larch_ec Larch_mpc Larch_net
