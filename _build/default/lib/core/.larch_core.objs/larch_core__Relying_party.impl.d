lib/core/relying_party.ml: Hashtbl Larch_auth Larch_ec List
