lib/core/fido2_protocol.mli: Larch_circuit Larch_mpc Larch_net Larch_zkboo
