lib/core/record.mli: Larch_ec Larch_net Types
