(** Simulated relying parties (Goal 4: they are unaware of larch).

    Supports the three standard mechanisms exactly as a web service would:
    FIDO2 assertions (ECDSA/P-256 with challenge freshness and signature
    counters), RFC 6238 TOTP with an optional replay cache (§2.4), and
    salted-hash password login. *)

module Point = Larch_ec.Point

type user_state = {
  mutable fido2_pk : Point.t option;
  mutable fido2_counter : int;
  mutable pending_challenge : string option;
  mutable totp_key : string option;
  mutable totp_replay : (int64 * int) list;
  mutable password : Larch_auth.Password.verifier option;
}

type t = {
  name : string;
  rand : int -> string;
  users : (string, user_state) Hashtbl.t;
  totp_replay_cache : bool;
}

val create : ?totp_replay_cache:bool -> name:string -> rand_bytes:(int -> string) -> unit -> t
val user : t -> string -> user_state

(** {1 FIDO2} *)

val fido2_register : t -> username:string -> pk:Point.t -> unit

val fido2_challenge : t -> username:string -> string
(** A fresh 32-byte challenge; consumed by the next login attempt. *)

val fido2_login : t -> username:string -> Larch_auth.Fido2.assertion -> bool
(** Verifies the assertion against the pending challenge and enforces
    signature-counter monotonicity (clone detection). *)

(** {1 TOTP} *)

val totp_register : t -> username:string -> string
(** The relying party generates and returns the 20-byte shared secret. *)

val totp_login : t -> username:string -> time:float -> int -> bool

(** {1 Passwords} *)

val password_set : t -> username:string -> password:string -> unit
val password_login : t -> username:string -> password:string -> bool
