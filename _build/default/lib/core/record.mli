(** Authentication log records — what the log stores per authentication
    (§8.2 storage accounting: timestamp + ciphertext + integrity
    signature). *)

module Wire = Larch_net.Wire

type payload =
  | Symmetric of { nonce : string; ct : string; signature : string }
      (** FIDO2/TOTP: sha-ctr ciphertext of the relying-party identity
          under the archive key; [signature] is the client's
          record-integrity signature (§7). *)
  | Elgamal of Larch_ec.Elgamal.ciphertext
      (** Passwords: ElGamal encryption of Hash(id). *)

type t = { time : float; ip : string; method_ : Types.auth_method; payload : payload }

val storage_bytes : t -> int
(** Paper-style accounting (8-byte timestamp + ciphertext + signature). *)

val encode : t -> string
val decode : string -> (t, string) result
val decode_opt : string -> t option

(**/**)

val encode_payload : Wire.writer -> payload -> unit
val decode_payload : Wire.reader -> payload
