(** Two-party ECDSA signing with client-side preprocessing (§3.3, App. B).

    The log holds one long-term key share [x] used for every relying party;
    the client derives a fresh share [y] per party, so aggregated public
    keys pk = g^(x+y) are unlinkable and the log never learns which key a
    signature belongs to.  Because the client is trusted at enrollment, it
    generates presignatures — shared signing nonce, MAC key, authenticated
    Beaver triple — locally; the online phase is one half-authenticated
    multiplication plus a MAC-checked opening:

      s = r⁻¹ · (Hash(m) + f(R) · (x + y))

    Presignature compression (§7): the log's uniform triple shares are
    PRG-derived from a per-batch seed, leaving six explicit scalars
    ({!log_presig_bytes} = 192 bytes) per presignature at the log. *)

module Scalar = Larch_ec.P256.Scalar
module Point = Larch_ec.Point
module Spdz = Larch_mpc.Spdz
module Sharing = Larch_mpc.Sharing
module Wire = Larch_net.Wire

(** {1 Key generation} *)

type log_key = { x : Scalar.t; x_pub : Point.t }

val log_keygen : rand_bytes:(int -> string) -> log_key

val client_keygen : log_pub:Point.t -> rand_bytes:(int -> string) -> Scalar.t * Point.t
(** ClientKeyGen: fresh per-relying-party share [y] and public key X·g^y. *)

(** {1 Presignatures} *)

(** The log's explicit per-presignature scalars; (a₀,b₀,f₀,g₀) are derived
    from the batch seed. *)
type log_presig = {
  cap_r : Scalar.t; (** f(g^r): the signature's r component *)
  r0 : Scalar.t;
  rhat0 : Scalar.t;
  alpha0 : Scalar.t;
  c0 : Scalar.t;
  h0 : Scalar.t;
}

type client_presig = {
  cap_r1 : Scalar.t;
  r1 : Scalar.t;
  rhat1 : Scalar.t;
  alpha1 : Scalar.t;
  a1 : Scalar.t;
  b1 : Scalar.t;
  c1 : Scalar.t;
  f1 : Scalar.t;
  g1 : Scalar.t;
  h1 : Scalar.t;
}

type log_batch = { seed : string; entries : log_presig array; mutable next : int }
type client_batch = { centries : client_presig array; mutable cnext : int }

val log_presig_bytes : int
(** Log storage per presignature: 6 × 32 = 192 bytes (matches the paper). *)

val presign_batch : count:int -> rand_bytes:(int -> string) -> client_batch * log_batch
(** PreSign, run by the trusted-at-enrollment client. *)

val log_batch_wire_bytes : log_batch -> int
val log_batch_remaining : log_batch -> int
val client_batch_remaining : client_batch -> int

(** {1 The signing protocol Π_Sign}

    Per-party state threaded through: round1 (exchange Beaver openings) →
    round2 (derive s-shares) → open_commit / open_reveal / open_check
    (MAC-checked opening) → {!signature}. *)

type party_state = {
  party : int; (** 0 = log, 1 = client *)
  inp : Spdz.halfmul_input;
  cap_r : Scalar.t;
  e_scalar : Scalar.t;
  mutable hm_out : Spdz.halfmul_output option;
  mutable s_share : Scalar.t;
  mutable shat_share : Scalar.t;
  mutable open_state : Spdz.open_state option;
}

val halfmul_input_of_log : log_batch -> int -> sk0:Scalar.t -> Spdz.halfmul_input
val halfmul_input_of_client : client_batch -> int -> sk1:Scalar.t -> Spdz.halfmul_input
val digest_scalar : string -> Scalar.t

val init_party :
  party:int -> inp:Spdz.halfmul_input -> cap_r:Scalar.t -> digest:string -> party_state

val round1 : party_state -> Spdz.halfmul_msg

val round2 : party_state -> own:Spdz.halfmul_msg -> other:Spdz.halfmul_msg -> Scalar.t
(** Returns this party's share of s. *)

val open_commit :
  party_state -> other_s:Scalar.t -> rand_bytes:(int -> string) -> Spdz.open_commit

val open_reveal : party_state -> Spdz.open_reveal

val open_check :
  party_state -> other_commit:Spdz.open_commit -> other_reveal:Spdz.open_reveal -> bool
(** The information-theoretic MAC check: [false] means the counterparty
    shifted the authenticated nonce or the opened value. *)

val signature : party_state -> other_s:Scalar.t -> Larch_ec.Ecdsa.signature

(** {1 Wire encodings} *)

val encode_halfmul_msg : Spdz.halfmul_msg -> string
val decode_halfmul_msg : string -> Spdz.halfmul_msg option
val encode_reveal : Spdz.open_reveal -> string
val decode_reveal : string -> Spdz.open_reveal option
