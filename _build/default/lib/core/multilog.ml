(* Splitting trust across multiple log services (§6).

   The user enrolls with n logs and picks a threshold t: authentication
   succeeds whenever t logs are online, and auditing is complete whenever
   n − t + 1 logs are reachable (any t-subset that served an authentication
   intersects any (n−t+1)-subset).

   Implemented in full for passwords: the client (trusted at enrollment)
   deals Shamir shares k_i of the joint key k to the logs; per
   authentication it collects y_i = c₂^(k_i) from any t logs and
   recombines c₂^k in the exponent with Lagrange coefficients.  Every
   participating log verifies the same one-out-of-many proofs and stores
   the same encrypted record.

   FIDO2/TOTP generalize the same way via threshold ECDSA / multi-party GC
   (the paper defers to existing protocols [24, 80, 13]); this module
   exposes the password deployment plus the availability/audit quorum
   machinery shared by all methods. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Shamir = Larch_mpc.Shamir

type t = {
  logs : Log_service.t array;
  threshold : int;
  online : bool array;
  rand : int -> string;
}

let create ~(n : int) ~(threshold : int) ~(rand_bytes : int -> string) : t =
  if threshold < 1 || threshold > n then invalid_arg "Multilog.create: bad threshold";
  {
    logs = Array.init n (fun _ -> Log_service.create ~rand_bytes ());
    threshold;
    online = Array.make n true;
    rand = rand_bytes;
  }

let n_logs (t : t) = Array.length t.logs
let set_online (t : t) (i : int) (up : bool) = t.online.(i) <- up
let online_indices (t : t) : int list =
  List.filter (fun i -> t.online.(i)) (List.init (n_logs t) (fun i -> i))

type client = {
  client_id : string;
  account_password : string;
  x : Scalar.t; (* ElGamal archive key *)
  x_pub : Point.t;
  k_pub : Point.t; (* K = g^k for the joint key *)
  mutable ids : string list;
  creds : (string, string * Point.t) Hashtbl.t; (* rp -> (id, k_id) *)
  names : (string, string) Hashtbl.t; (* Point.encode Hash(id) -> rp *)
}

(* Enrollment requires all n logs (one-time). *)
let enroll (t : t) ~(client_id : string) ~(account_password : string) : client =
  let x, x_pub = Password_protocol.client_gen ~rand_bytes:t.rand in
  let k = Scalar.random_nonzero ~rand_bytes:t.rand in
  let shares = Shamir.split ~threshold:t.threshold ~n:(n_logs t) k ~rand_bytes:t.rand in
  List.iteri
    (fun i share ->
      Log_service.enroll t.logs.(i) ~client_id ~account_password;
      ignore
        (Log_service.enroll_password_share t.logs.(i) ~client_id ~client_pub:x_pub
           ~k_share:share.Shamir.value))
    shares;
  (* the client deletes k after dealing the shares *)
  {
    client_id;
    account_password;
    x;
    x_pub;
    k_pub = Point.mul_base k;
    ids = [];
    creds = Hashtbl.create 8;
    names = Hashtbl.create 8;
  }

(* Registration goes to every log so their identifier sets stay aligned;
   the client recombines Hash(id)^k from the first t responses. *)
let register (t : t) (c : client) ~(rp_name : string) : string =
  if Hashtbl.mem c.creds rp_name then Types.fail "already registered: %s" rp_name;
  let online = online_indices t in
  if List.length online < n_logs t then Types.fail "registration requires all logs online";
  let id = t.rand Password_protocol.id_len in
  (* every log stores the id and replies with Hash(id)^(k_i) *)
  let ys = Array.map (fun log -> Log_service.pw_register log ~client_id:c.client_id ~id) t.logs in
  let idxs = List.init t.threshold (fun i -> i + 1) in
  let h_id_k =
    List.fold_left
      (fun acc i ->
        Point.add acc (Point.mul (Shamir.lagrange_coefficient ~at:i idxs) ys.(i - 1)))
      Point.infinity idxs
  in
  let k_id = Point.mul_base (Scalar.random_nonzero ~rand_bytes:t.rand) in
  c.ids <- c.ids @ [ id ];
  Hashtbl.replace c.creds rp_name (id, k_id);
  Hashtbl.replace c.names (Point.encode (Larch_ec.Hash_to_curve.hash id)) rp_name;
  Password_protocol.password_string (Password_protocol.finish_register ~k_id ~y:h_id_k)

exception Unavailable of string

(* Authentication against any t online logs. *)
let authenticate (t : t) (c : client) ~(rp_name : string) ~(now : float) : string =
  let id, k_id =
    match Hashtbl.find_opt c.creds rp_name with
    | Some v -> v
    | None -> Types.fail "not registered: %s" rp_name
  in
  let online = online_indices t in
  if List.length online < t.threshold then
    raise (Unavailable (Printf.sprintf "only %d of %d required logs online" (List.length online) t.threshold));
  let chosen = List.filteri (fun i _ -> i < t.threshold) online in
  let idx =
    match List.find_index (fun i -> i = id) c.ids with
    | Some i -> i
    | None -> Types.fail "identifier missing"
  in
  let r, req = Password_protocol.client_auth ~idx ~x:c.x ~ids:c.ids ~rand_bytes:t.rand in
  let shares =
    List.map
      (fun i ->
        let y, _dleq =
          Log_service.pw_auth t.logs.(i) ~client_id:c.client_id ~ip:"multilog" ~now req
        in
        (i + 1, y))
      chosen
  in
  let lag_idxs = List.map fst shares in
  let y_combined =
    List.fold_left
      (fun acc (i, y) -> Point.add acc (Point.mul (Shamir.lagrange_coefficient ~at:i lag_idxs) y))
      Point.infinity shares
  in
  let pw =
    Password_protocol.finish_auth ~x:c.x ~log_pub:c.k_pub ~r ~k_id ~y:y_combined
  in
  Password_protocol.password_string pw

(* Audit: union of the records of all reachable logs, deduplicated by
   ciphertext.  Returns the entries plus whether coverage is guaranteed
   complete (>= n - t + 1 logs reachable). *)
type audit_result = { entries : (float * string option) list; complete : bool }

let audit (t : t) (c : client) : audit_result =
  let online = online_indices t in
  let seen = Hashtbl.create 64 in
  let entries = ref [] in
  List.iter
    (fun i ->
      let records =
        Log_service.audit t.logs.(i) ~client_id:c.client_id ~token:c.account_password
      in
      List.iter
        (fun (r : Record.t) ->
          match r.Record.payload with
          | Record.Elgamal ct ->
              let key = Larch_ec.Elgamal.encode ct in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                let h = Password_protocol.decrypt_record ~x:c.x ct in
                entries :=
                  (r.Record.time, Hashtbl.find_opt c.names (Point.encode h)) :: !entries
              end
          | Record.Symmetric _ -> ())
        records)
    online;
  {
    entries = List.rev !entries;
    complete = List.length online >= n_logs t - t.threshold + 1;
  }
