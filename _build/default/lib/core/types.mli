(** Shared identifiers and the protocol-violation error. *)

type auth_method = Fido2 | Totp | Password

val auth_method_to_string : auth_method -> string
val auth_method_tag : auth_method -> int
val auth_method_of_tag : int -> auth_method option

exception Protocol_error of string
(** Raised when a counterparty violates the protocol (bad proof, bad MAC,
    malformed message, policy denial); the honest party aborts. *)

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Protocol_error} with a formatted message. *)
