(** Split-secret FIDO2 authentication (§3.2): message formats and the
    log-side statement check.

    The proof of digest-preimage knowledge verified here is what makes
    ECDSA-with-presignatures safe to expose as a signing oracle (App. A):
    the log never signs a digest whose preimage the client cannot prove
    well-formed. *)

module Wire = Larch_net.Wire
module Zkboo = Larch_zkboo.Zkboo
module Statements = Larch_circuit.Larch_statements

val statement_tag : string
(** Fiat–Shamir domain separator for the FIDO2 statement. *)

type auth_request = {
  dgst : string; (** the 32-byte signing digest Hash(id ‖ chal) *)
  ct_nonce : string; (** 12-byte record-encryption nonce *)
  ct : string; (** encrypted relying-party identity *)
  record_sig : string; (** client's 64-byte integrity signature (§7) *)
  proof : Zkboo.proof;
  presig_index : int; (** index into the current presignature batch *)
  hm_msg : Larch_mpc.Spdz.halfmul_msg; (** client's signing round-1 message *)
}

val build_public_output : cm:string -> auth_request -> bool array
val verify_statement : ?domains:int -> cm:string -> auth_request -> bool

type auth_response1 = { hm_msg : Larch_mpc.Spdz.halfmul_msg; s0 : string }

val encode_auth_request : auth_request -> string
val decode_auth_request : string -> auth_request option
val encode_auth_response1 : auth_response1 -> string
val decode_auth_response1 : string -> auth_response1 option
