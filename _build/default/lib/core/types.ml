(* Shared identifiers and error type for the larch core. *)

type auth_method = Fido2 | Totp | Password

let auth_method_to_string = function Fido2 -> "fido2" | Totp -> "totp" | Password -> "password"

let auth_method_tag = function Fido2 -> 0 | Totp -> 1 | Password -> 2

let auth_method_of_tag = function
  | 0 -> Some Fido2
  | 1 -> Some Totp
  | 2 -> Some Password
  | _ -> None

exception Protocol_error of string
(** Raised when a counterparty violates the protocol (bad proof, bad MAC,
    malformed message).  The honest party aborts the operation. *)

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt
