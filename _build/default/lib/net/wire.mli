(** Length-prefixed binary codec.  Every client↔log message goes through
    this module so channels can meter exact byte counts — Table 6 and
    Figure 5 are sums of these encodings. *)

type writer

val writer : unit -> writer
val u8 : writer -> int -> unit
val u32 : writer -> int -> unit
val u64 : writer -> int64 -> unit

val bytes : writer -> string -> unit
(** Length-prefixed. *)

val fixed : writer -> string -> unit
(** Raw, no prefix (fixed-size fields). *)

val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val contents : writer -> string
val encode : (writer -> unit) -> string

type reader

exception Malformed of string

val reader : string -> reader
val take : reader -> int -> string
val read_u8 : reader -> int
val read_u32 : reader -> int
val read_u64 : reader -> int64
val read_bytes : reader -> string
val read_fixed : reader -> int -> string

val read_list : reader -> (reader -> 'a) -> 'a list
(** Bounded against absurd lengths. *)

val expect_end : reader -> unit

val decode : string -> (reader -> 'a) -> ('a, string) result
(** Run a decoder over the whole string; trailing bytes are an error. *)
