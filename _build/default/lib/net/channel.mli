(** Byte- and round-metered message channel between the two in-process
    parties.  All reported communication numbers (Table 6, Figure 5) come
    from payloads pushed through {!send}. *)

type direction = Client_to_log | Log_to_client

type t

val create : unit -> t

val send : t -> direction -> string -> string
(** Meter a payload; returns it unchanged.  A request/response direction
    flip counts toward round trips. *)

val total_bytes : t -> int
val round_trips : t -> int

val network_time : t -> Netsim.t -> float
(** Modeled network time for everything sent so far. *)

val reset : t -> unit

type snapshot = { up : int; down : int; msgs : int; rts : int }

val snapshot : t -> snapshot
