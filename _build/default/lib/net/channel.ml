(* Byte- and round-metered message channel between two in-process parties.

   A "round" is a direction flip: the paper's RTT cost is paid once per
   request/response exchange, so we count a round each time a message
   reverses the direction of the previous one (the first message also
   counts as opening a round). *)

type direction = Client_to_log | Log_to_client

type t = {
  mutable bytes_client_to_log : int;
  mutable bytes_log_to_client : int;
  mutable messages : int;
  mutable rounds : int;
  mutable last_direction : direction option;
}

let create () =
  {
    bytes_client_to_log = 0;
    bytes_log_to_client = 0;
    messages = 0;
    rounds = 0;
    last_direction = None;
  }

let send (t : t) (dir : direction) (payload : string) : string =
  let n = String.length payload in
  (match dir with
  | Client_to_log -> t.bytes_client_to_log <- t.bytes_client_to_log + n
  | Log_to_client -> t.bytes_log_to_client <- t.bytes_log_to_client + n);
  t.messages <- t.messages + 1;
  (match t.last_direction with
  | Some d when d = dir -> () (* same direction: pipelined, no extra round *)
  | Some _ -> t.rounds <- t.rounds + 1
  | None -> t.rounds <- t.rounds + 1);
  t.last_direction <- Some dir;
  payload

let total_bytes (t : t) = t.bytes_client_to_log + t.bytes_log_to_client

(* round trips = ceil(direction flips / 2): a request+response pair costs
   one RTT. *)
let round_trips (t : t) = (t.rounds + 1) / 2

let network_time (t : t) (net : Netsim.t) : float =
  Netsim.transfer_time net ~bytes:(total_bytes t) ~rounds:(round_trips t)

let reset (t : t) =
  t.bytes_client_to_log <- 0;
  t.bytes_log_to_client <- 0;
  t.messages <- 0;
  t.rounds <- 0;
  t.last_direction <- None

type snapshot = { up : int; down : int; msgs : int; rts : int }

let snapshot (t : t) : snapshot =
  { up = t.bytes_client_to_log; down = t.bytes_log_to_client; msgs = t.messages; rts = round_trips t }
