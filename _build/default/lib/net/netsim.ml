(* Deterministic network model.

   The paper's testbed shapes the client-log link to a 20 ms RTT and
   100 Mbps of bandwidth; authentication latency is compute time plus this
   network time.  We run both parties in one process, meter exact bytes and
   message rounds on the channel, and model network time as

     time = rounds * RTT + bytes / bandwidth

   which reproduces the paper's latency composition with exact counts
   instead of noisy socket measurements. *)

type t = { rtt_s : float; bandwidth_bytes_per_s : float }

let paper_default = { rtt_s = 0.020; bandwidth_bytes_per_s = 100. *. 1e6 /. 8. }
let zero = { rtt_s = 0.; bandwidth_bytes_per_s = infinity }

let make ~rtt_ms ~bandwidth_mbps =
  { rtt_s = rtt_ms /. 1000.; bandwidth_bytes_per_s = bandwidth_mbps *. 1e6 /. 8. }

let transfer_time (t : t) ~(bytes : int) ~(rounds : int) : float =
  (float_of_int rounds *. t.rtt_s) +. (float_of_int bytes /. t.bandwidth_bytes_per_s)
