(* Length-prefixed binary codec.

   Every protocol message between the larch client and log service is
   serialized through this module so that [Channel] can meter exact byte
   counts — the communication numbers in Table 6 / Figure 5 come straight
   from these encodings. *)

type writer = Buffer.t

let writer () : writer = Buffer.create 256

let u8 (b : writer) (v : int) = Buffer.add_char b (Char.chr (v land 0xff))

let u32 (b : writer) (v : int) =
  if v < 0 || v > 0xffffffff then invalid_arg "Wire.u32: out of range";
  Buffer.add_string b (Larch_util.Bytesx.be32 v)

let u64 (b : writer) (v : int64) = Buffer.add_string b (Larch_util.Bytesx.be64 v)

let bytes (b : writer) (s : string) =
  u32 b (String.length s);
  Buffer.add_string b s

let fixed (b : writer) (s : string) = Buffer.add_string b s

let list (b : writer) (f : writer -> 'a -> unit) (xs : 'a list) =
  u32 b (List.length xs);
  List.iter (f b) xs

let contents = Buffer.contents

type reader = { src : string; mutable pos : int }

exception Malformed of string

let reader (src : string) : reader = { src; pos = 0 }

let take (r : reader) (n : int) : string =
  if n < 0 || r.pos + n > String.length r.src then raise (Malformed "short read");
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let read_u8 (r : reader) : int = Char.code (take r 1).[0]

let read_u32 (r : reader) : int =
  let s = take r 4 in
  (Char.code s.[0] lsl 24) lor (Char.code s.[1] lsl 16) lor (Char.code s.[2] lsl 8)
  lor Char.code s.[3]

let read_u64 (r : reader) : int64 =
  let s = take r 8 in
  Bytes.get_int64_be (Bytes.of_string s) 0

let read_bytes (r : reader) : string = take r (read_u32 r)
let read_fixed (r : reader) (n : int) : string = take r n

let read_list (r : reader) (f : reader -> 'a) : 'a list =
  let n = read_u32 r in
  if n > 10_000_000 then raise (Malformed "absurd list length");
  List.init n (fun _ -> f r)

let expect_end (r : reader) : unit =
  if r.pos <> String.length r.src then raise (Malformed "trailing bytes")

(* Helper: encode with a fresh writer. *)
let encode (f : writer -> unit) : string =
  let w = writer () in
  f w;
  contents w

let decode (s : string) (f : reader -> 'a) : ('a, string) result =
  let r = reader s in
  match f r with
  | v ->
      (try
         expect_end r;
         Ok v
       with Malformed m -> Error m)
  | exception Malformed m -> Error m
