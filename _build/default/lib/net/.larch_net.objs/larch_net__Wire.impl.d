lib/net/wire.ml: Buffer Bytes Char Larch_util List String
