lib/net/netsim.ml:
