lib/net/wire.mli:
