lib/net/netsim.mli:
