lib/net/channel.ml: Netsim String
