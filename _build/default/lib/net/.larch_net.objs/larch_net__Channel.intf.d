lib/net/channel.mli: Netsim
