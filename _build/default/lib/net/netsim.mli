(** Deterministic network model: time = rounds × RTT + bytes / bandwidth.

    The paper shapes its client↔log link to 20 ms RTT and 100 Mbps;
    {!paper_default} reproduces that, and latency figures combine measured
    compute with this model applied to exact metered byte counts. *)

type t = { rtt_s : float; bandwidth_bytes_per_s : float }

val paper_default : t
val zero : t
val make : rtt_ms:float -> bandwidth_mbps:float -> t
val transfer_time : t -> bytes:int -> rounds:int -> float
