(** Chaum–Pedersen discrete-log-equality proofs: log_b1(Y₁) = log_b2(Y₂).

    A log server attaches one to its password response h = c₂^k to show it
    exponentiated with the key it registered as K = g^k, so a faulty log
    cannot silently hand the client a wrong password share. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar

type proof = { a1 : Point.t; a2 : Point.t; z : Scalar.t }

val prove :
  base1:Point.t ->
  base2:Point.t ->
  secret:Scalar.t ->
  tag:string ->
  rand_bytes:(int -> string) ->
  proof

val verify :
  base1:Point.t ->
  base2:Point.t ->
  public1:Point.t ->
  public2:Point.t ->
  tag:string ->
  proof ->
  bool

val encode : proof -> string
val decode : string -> proof option
