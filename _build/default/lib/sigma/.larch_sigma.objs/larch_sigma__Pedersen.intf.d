lib/sigma/pedersen.mli: Larch_ec Lazy
