lib/sigma/gk15.mli: Larch_ec Pedersen
