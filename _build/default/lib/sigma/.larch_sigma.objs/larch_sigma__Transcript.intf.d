lib/sigma/transcript.mli: Larch_ec
