lib/sigma/transcript.ml: Larch_bignum Larch_ec Larch_hash Larch_util Nat String
