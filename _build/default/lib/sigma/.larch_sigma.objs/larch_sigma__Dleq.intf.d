lib/sigma/dleq.mli: Larch_ec
