lib/sigma/schnorr.ml: Larch_ec String Transcript
