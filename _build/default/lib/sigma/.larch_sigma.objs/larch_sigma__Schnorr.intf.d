lib/sigma/schnorr.mli: Larch_ec
