lib/sigma/gk15.ml: Array Larch_bignum Larch_ec Larch_net List Nat Pedersen String Transcript
