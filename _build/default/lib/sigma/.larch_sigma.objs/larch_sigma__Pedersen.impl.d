lib/sigma/pedersen.ml: Larch_bignum Larch_ec Lazy
