lib/sigma/dleq.ml: Larch_ec List String Transcript
