(** Pedersen commitments Com(m; r) = g^m · h^r over P-256.

    {!Gk15} is generic in the second generator: larch's password protocol
    instantiates [h] with the client's ElGamal public key (π₁) or the
    ciphertext component c₁ (π₂), so "commitment to 0" means "h^r for
    known r". *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar

type key = { g : Point.t; h : Point.t }

val default_h : Point.t Lazy.t
(** A nothing-up-my-sleeve independent generator (hash-to-curve). *)

val default : key Lazy.t
val make : h:Point.t -> key
val commit : key -> msg:Scalar.t -> rand:Scalar.t -> Point.t
val verify : key -> commitment:Point.t -> msg:Scalar.t -> rand:Scalar.t -> bool
