(* Chaum–Pedersen proof of discrete-log equality: log_g A = log_h B.

   In the multi-log deployment, a log server can attach a DLEQ proof to its
   response h = c₂^k, demonstrating that it exponentiated with the same key
   k it registered as K = g^k — so a faulty log cannot silently hand the
   client a wrong password share. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar

type proof = { a1 : Point.t; a2 : Point.t; z : Scalar.t }

let prove ~(base1 : Point.t) ~(base2 : Point.t) ~(secret : Scalar.t) ~(tag : string)
    ~(rand_bytes : int -> string) : proof =
  let y1 = Point.mul secret base1 and y2 = Point.mul secret base2 in
  let k = Scalar.random_nonzero ~rand_bytes in
  let a1 = Point.mul k base1 and a2 = Point.mul k base2 in
  let t = Transcript.create ("dleq" ^ tag) in
  List.iter
    (fun (label, p) -> Transcript.absorb_point t ~label p)
    [ ("b1", base1); ("b2", base2); ("y1", y1); ("y2", y2); ("a1", a1); ("a2", a2) ];
  let c = Transcript.challenge_scalar t ~label:"c" in
  { a1; a2; z = Scalar.add k (Scalar.mul c secret) }

let verify ~(base1 : Point.t) ~(base2 : Point.t) ~(public1 : Point.t) ~(public2 : Point.t)
    ~(tag : string) (p : proof) : bool =
  let t = Transcript.create ("dleq" ^ tag) in
  List.iter
    (fun (label, pt) -> Transcript.absorb_point t ~label pt)
    [ ("b1", base1); ("b2", base2); ("y1", public1); ("y2", public2); ("a1", p.a1); ("a2", p.a2) ];
  let c = Transcript.challenge_scalar t ~label:"c" in
  Point.equal (Point.mul p.z base1) (Point.add p.a1 (Point.mul c public1))
  && Point.equal (Point.mul p.z base2) (Point.add p.a2 (Point.mul c public2))

let encode (p : proof) : string =
  Point.encode_compressed p.a1 ^ Point.encode_compressed p.a2 ^ Scalar.to_bytes_be p.z

let decode (s : string) : proof option =
  if String.length s <> 98 then None
  else
    match
      ( Point.decode_compressed (String.sub s 0 33),
        Point.decode_compressed (String.sub s 33 33) )
    with
    | Some a1, Some a2 -> Some { a1; a2; z = Scalar.of_bytes_be (String.sub s 66 32) }
    | _ -> None
