(** Groth–Kohlweiss one-out-of-many proofs (EUROCRYPT 2015).

    Statement: among commitments c₀…c₍N₋₁₎ under Com(m; ρ) = g^m·h^ρ, the
    prover knows an index ℓ and randomness r with c_ℓ = Com(0; r) = h^r.

    Larch's password protocol instantiates this twice per authentication
    (§5, App. C) over cᵢ = c₂ / Hash(idᵢ) to show the submitted ElGamal
    ciphertext encrypts a *registered* relying-party identifier — without
    revealing which.  Proofs are O(log N) group elements; proving and
    verification are O(N) group operations. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar

type proof = {
  n : int; (** padded commitment-set size (power of two) *)
  c_l : Point.t array; (** commitments to the bits of ℓ *)
  c_a : Point.t array;
  c_b : Point.t array;
  c_d : Point.t array; (** the masked polynomial-coefficient commitments *)
  f : Scalar.t array; (** responses f_j = ℓ_j·ξ + a_j *)
  z_a : Scalar.t array;
  z_b : Scalar.t array;
  z_d : Scalar.t;
}

val prove :
  key:Pedersen.key ->
  commitments:Point.t array ->
  index:int ->
  opening:Scalar.t ->
  tag:string ->
  rand_bytes:(int -> string) ->
  proof
(** Requires [commitments.(index) = key.h ^ opening].  The set is padded to
    a power of two by repeating the last element; [tag] domain-separates the
    Fiat–Shamir challenge. *)

val verify : key:Pedersen.key -> commitments:Point.t array -> tag:string -> proof -> bool

val encode : proof -> string
val decode : string -> proof option
val size_bytes : proof -> int

(**/**)

val next_pow2 : int -> int
val log2 : int -> int
val pad : Point.t array -> Point.t array
val poly_mul : Scalar.t array -> Scalar.t array -> Scalar.t array
