(* Groth–Kohlweiss one-out-of-many proofs ("One-out-of-many proofs: or how
   to leak a secret and spend a coin", EUROCRYPT 2015).

   Statement: given commitments c_0, …, c_{N-1} under Com(m; ρ) = g^m h^ρ,
   the prover knows an index ℓ and randomness r with c_ℓ = Com(0; r) = h^r.

   Larch's password protocol (§5, App. C) instantiates this twice per
   authentication with h = X (the client's ElGamal public key) and h = c₁,
   over c_i = c₂ / Hash(id_i), to show the ciphertext encrypts one of the
   registered relying-party identifiers.  Proof size is O(log N); prover
   and verifier are O(N) group operations (via Pippenger multi-exponen-
   tiation in [Point.multi_mul]). *)

open Larch_bignum
module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Wire = Larch_net.Wire

type proof = {
  n : int; (* padded size, 2^m *)
  c_l : Point.t array; (* m commitments to the bits of ℓ *)
  c_a : Point.t array;
  c_b : Point.t array;
  c_d : Point.t array;
  f : Scalar.t array; (* m responses f_j = ℓ_j ξ + a_j *)
  z_a : Scalar.t array;
  z_b : Scalar.t array;
  z_d : Scalar.t;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let log2 n =
  let rec go p acc = if p >= n then acc else go (2 * p) (acc + 1) in
  go 1 0

(* Pad the commitment list to a power of two by repeating the last entry;
   the relation "some padded c_i is a commitment to 0" is implied by the
   unpadded relation and vice versa (duplicates add no new openings). *)
let pad (commitments : Point.t array) : Point.t array =
  let n = Array.length commitments in
  let np = next_pow2 n in
  if np = n then commitments
  else Array.init np (fun i -> if i < n then commitments.(i) else commitments.(n - 1))

(* polynomial arithmetic over Z_n, coefficient arrays (index = degree) *)
let poly_mul (p : Scalar.t array) (q : Scalar.t array) : Scalar.t array =
  let r = Array.make (Array.length p + Array.length q - 1) Scalar.zero in
  Array.iteri
    (fun i pi ->
      if not (Nat.is_zero pi) then
        Array.iteri (fun j qj -> r.(i + j) <- Scalar.add r.(i + j) (Scalar.mul pi qj)) q)
    p;
  r

let transcript_init ~(tag : string) ~(key : Pedersen.key) (cs : Point.t array) : Transcript.t =
  let t = Transcript.create ("gk15" ^ tag) in
  Transcript.absorb_point t ~label:"g" key.Pedersen.g;
  Transcript.absorb_point t ~label:"h" key.Pedersen.h;
  Array.iter (Transcript.absorb_point t ~label:"c") cs;
  t

let absorb_round (t : Transcript.t) (p : proof) : unit =
  Array.iter (Transcript.absorb_point t ~label:"cl") p.c_l;
  Array.iter (Transcript.absorb_point t ~label:"ca") p.c_a;
  Array.iter (Transcript.absorb_point t ~label:"cb") p.c_b;
  Array.iter (Transcript.absorb_point t ~label:"cd") p.c_d

let prove ~(key : Pedersen.key) ~(commitments : Point.t array) ~(index : int)
    ~(opening : Scalar.t) ~(tag : string) ~(rand_bytes : int -> string) : proof =
  let cs = pad commitments in
  let n = Array.length cs in
  let m = log2 n in
  if index < 0 || index >= Array.length commitments then invalid_arg "Gk15.prove: bad index";
  let bit j = (index lsr j) land 1 in
  let rnd () = Scalar.random ~rand_bytes in
  let r_j = Array.init m (fun _ -> rnd ()) in
  let a_j = Array.init m (fun _ -> rnd ()) in
  let s_j = Array.init m (fun _ -> rnd ()) in
  let t_j = Array.init m (fun _ -> rnd ()) in
  let rho = Array.init m (fun _ -> rnd ()) in
  let c_l = Array.init m (fun j -> Pedersen.commit key ~msg:(Scalar.of_int (bit j)) ~rand:r_j.(j)) in
  let c_a = Array.init m (fun j -> Pedersen.commit key ~msg:a_j.(j) ~rand:s_j.(j)) in
  let c_b =
    Array.init m (fun j ->
        let la = if bit j = 1 then a_j.(j) else Scalar.zero in
        Pedersen.commit key ~msg:la ~rand:t_j.(j))
  in
  (* p_i(X) = prod_j f_{j, i_j}(X);  f_{j,1} = a_j + l_j X,  f_{j,0} = -a_j + (1-l_j) X *)
  let coeffs =
    Array.init n (fun i ->
        let p = ref [| Scalar.one |] in
        for j = 0 to m - 1 do
          let f_j =
            if (i lsr j) land 1 = 1 then [| a_j.(j); Scalar.of_int (bit j) |]
            else [| Scalar.neg a_j.(j); Scalar.of_int (1 - bit j) |]
          in
          p := poly_mul !p f_j
        done;
        !p)
  in
  let c_d =
    Array.init m (fun k ->
        let pairs =
          Array.of_list
            (List.filteri (fun _ (e, _) -> not (Nat.is_zero e))
               (List.init n (fun i -> (coeffs.(i).(k), cs.(i)))))
        in
        Point.add (Point.multi_mul pairs) (Pedersen.commit key ~msg:Scalar.zero ~rand:rho.(k)))
  in
  let partial =
    { n; c_l; c_a; c_b; c_d; f = [||]; z_a = [||]; z_b = [||]; z_d = Scalar.zero }
  in
  let t = transcript_init ~tag ~key cs in
  absorb_round t partial;
  let xi = Transcript.challenge_scalar t ~label:"xi" in
  let f = Array.init m (fun j -> Scalar.add (if bit j = 1 then xi else Scalar.zero) a_j.(j)) in
  let z_a = Array.init m (fun j -> Scalar.add (Scalar.mul r_j.(j) xi) s_j.(j)) in
  let z_b = Array.init m (fun j -> Scalar.add (Scalar.mul r_j.(j) (Scalar.sub xi f.(j))) t_j.(j)) in
  let xi_pow = Array.make (m + 1) Scalar.one in
  for k = 1 to m do
    xi_pow.(k) <- Scalar.mul xi_pow.(k - 1) xi
  done;
  let sum_rho = ref Scalar.zero in
  for k = 0 to m - 1 do
    sum_rho := Scalar.add !sum_rho (Scalar.mul rho.(k) xi_pow.(k))
  done;
  let z_d = Scalar.sub (Scalar.mul opening xi_pow.(m)) !sum_rho in
  { partial with f; z_a; z_b; z_d }

let verify ~(key : Pedersen.key) ~(commitments : Point.t array) ~(tag : string) (p : proof) :
    bool =
  let cs = pad commitments in
  let n = Array.length cs in
  let m = log2 n in
  if p.n <> n || Array.length p.c_l <> m || Array.length p.c_a <> m || Array.length p.c_b <> m
     || Array.length p.c_d <> m || Array.length p.f <> m || Array.length p.z_a <> m
     || Array.length p.z_b <> m
  then false
  else begin
    let t = transcript_init ~tag ~key cs in
    absorb_round t p;
    let xi = Transcript.challenge_scalar t ~label:"xi" in
    let eq1 =
      Array.for_all
        (fun j ->
          Point.equal
            (Point.add (Point.mul xi p.c_l.(j)) p.c_a.(j))
            (Pedersen.commit key ~msg:p.f.(j) ~rand:p.z_a.(j)))
        (Array.init m (fun j -> j))
    in
    let eq2 =
      Array.for_all
        (fun j ->
          Point.equal
            (Point.add (Point.mul (Scalar.sub xi p.f.(j)) p.c_l.(j)) p.c_b.(j))
            (Pedersen.commit key ~msg:Scalar.zero ~rand:p.z_b.(j)))
        (Array.init m (fun j -> j))
    in
    if not (eq1 && eq2) then false
    else begin
      (* w_i = prod_j (i_j = 1 ? f_j : xi - f_j) *)
      let xi_minus_f = Array.map (fun fj -> Scalar.sub xi fj) p.f in
      let pairs_c =
        Array.init n (fun i ->
            let w = ref Scalar.one in
            for j = 0 to m - 1 do
              w := Scalar.mul !w (if (i lsr j) land 1 = 1 then p.f.(j) else xi_minus_f.(j))
            done;
            (!w, cs.(i)))
      in
      let xi_pow = Array.make m Scalar.one in
      for k = 1 to m - 1 do
        xi_pow.(k) <- Scalar.mul xi_pow.(k - 1) xi
      done;
      let pairs_d = Array.init m (fun k -> (Scalar.neg xi_pow.(k), p.c_d.(k))) in
      let lhs = Point.multi_mul (Array.append pairs_c pairs_d) in
      Point.equal lhs (Pedersen.commit key ~msg:Scalar.zero ~rand:p.z_d)
    end
  end

(* --- serialization --- *)

let encode (p : proof) : string =
  Wire.encode (fun w ->
      Wire.u32 w p.n;
      let pts ps = Wire.list w (fun w pt -> Wire.fixed w (Point.encode_compressed pt)) (Array.to_list ps) in
      pts p.c_l;
      pts p.c_a;
      pts p.c_b;
      pts p.c_d;
      let scs ss = Wire.list w (fun w s -> Wire.fixed w (Scalar.to_bytes_be s)) (Array.to_list ss) in
      scs p.f;
      scs p.z_a;
      scs p.z_b;
      Wire.fixed w (Scalar.to_bytes_be p.z_d))

let decode (s : string) : proof option =
  let read_point r =
    match Point.decode_compressed (Wire.read_fixed r 33) with
    | Some p -> p
    | None -> raise (Wire.Malformed "bad point")
  in
  let read_scalar r = Scalar.of_bytes_be (Wire.read_fixed r 32) in
  match
    Wire.decode s (fun r ->
        let n = Wire.read_u32 r in
        let pts () = Array.of_list (Wire.read_list r read_point) in
        let c_l = pts () in
        let c_a = pts () in
        let c_b = pts () in
        let c_d = pts () in
        let scs () = Array.of_list (Wire.read_list r read_scalar) in
        let f = scs () in
        let z_a = scs () in
        let z_b = scs () in
        let z_d = read_scalar r in
        { n; c_l; c_a; c_b; c_d; f; z_a; z_b; z_d })
  with
  | Ok p -> Some p
  | Error _ -> None

let size_bytes (p : proof) : int = String.length (encode p)
