(** Schnorr proofs of knowledge of a discrete logarithm (Fiat–Shamir). *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar

type proof = { a : Point.t; z : Scalar.t }

val prove : base:Point.t -> secret:Scalar.t -> tag:string -> rand_bytes:(int -> string) -> proof
(** Prove knowledge of [secret] with [public] = [base]^[secret]. *)

val verify : base:Point.t -> public:Point.t -> tag:string -> proof -> bool

val encode : proof -> string
val decode : string -> proof option
