(** Fiat–Shamir transcripts: all sigma-protocol challenges derive from a
    running hash of labeled protocol messages, binding statements, bases,
    and commitments against challenge reuse and cross-protocol confusion. *)

module Scalar = Larch_ec.P256.Scalar

type t

val create : string -> t
(** A fresh transcript under a domain-separation string. *)

val absorb : t -> label:string -> string -> unit
(** Length-prefixed (label, data) absorption — boundary-unambiguous. *)

val absorb_point : t -> label:string -> Larch_ec.Point.t -> unit
val absorb_scalar : t -> label:string -> Scalar.t -> unit

val challenge_scalar : t -> label:string -> Scalar.t
(** Derive a challenge and fold it back into the state. *)
