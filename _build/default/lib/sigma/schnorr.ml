(* Schnorr proof of knowledge of a discrete logarithm: given Y = base^x,
   prove knowledge of x.  Used for client-to-log session authentication and
   as the building block of the two-party Schnorr signing extension. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar

type proof = { a : Point.t; z : Scalar.t }

let prove ~(base : Point.t) ~(secret : Scalar.t) ~(tag : string) ~(rand_bytes : int -> string) :
    proof =
  let y = Point.mul secret base in
  let k = Scalar.random_nonzero ~rand_bytes in
  let a = Point.mul k base in
  let t = Transcript.create ("schnorr" ^ tag) in
  Transcript.absorb_point t ~label:"base" base;
  Transcript.absorb_point t ~label:"Y" y;
  Transcript.absorb_point t ~label:"a" a;
  let c = Transcript.challenge_scalar t ~label:"c" in
  { a; z = Scalar.add k (Scalar.mul c secret) }

let verify ~(base : Point.t) ~(public : Point.t) ~(tag : string) (p : proof) : bool =
  let t = Transcript.create ("schnorr" ^ tag) in
  Transcript.absorb_point t ~label:"base" base;
  Transcript.absorb_point t ~label:"Y" public;
  Transcript.absorb_point t ~label:"a" p.a;
  let c = Transcript.challenge_scalar t ~label:"c" in
  Point.equal (Point.mul p.z base) (Point.add p.a (Point.mul c public))

let encode (p : proof) : string = Point.encode_compressed p.a ^ Scalar.to_bytes_be p.z

let decode (s : string) : proof option =
  if String.length s <> 65 then None
  else
    match Point.decode_compressed (String.sub s 0 33) with
    | Some a -> Some { a; z = Scalar.of_bytes_be (String.sub s 33 32) }
    | None -> None
