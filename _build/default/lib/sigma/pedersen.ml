(* Pedersen commitments Com(m; r) = g^m · h^r over P-256.

   The Groth–Kohlweiss proof is generic in the second generator h: larch's
   password protocol instantiates h with the client's ElGamal public key X
   (for π₁) or the ciphertext component c₁ (for π₂), so that "c is a
   commitment to 0" means exactly "c = h^r for known r". *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar

type key = { g : Point.t; h : Point.t }

(* A nothing-up-my-sleeve independent generator for standalone uses. *)
let default_h : Point.t Lazy.t = lazy (Larch_ec.Hash_to_curve.hash "larch-pedersen-h")

let default : key Lazy.t = lazy { g = Point.g; h = Lazy.force default_h }

let make ~(h : Point.t) : key = { g = Point.g; h }

let commit (k : key) ~(msg : Scalar.t) ~(rand : Scalar.t) : Point.t =
  let gm = if Larch_bignum.Nat.is_zero msg then Point.infinity else Point.mul msg k.g in
  let hr = if Larch_bignum.Nat.is_zero rand then Point.infinity else Point.mul rand k.h in
  Point.add gm hr

let verify (k : key) ~(commitment : Point.t) ~(msg : Scalar.t) ~(rand : Scalar.t) : bool =
  Point.equal commitment (commit k ~msg ~rand)
