(* Fiat–Shamir transcript.

   All sigma-protocol challenges are derived by absorbing labeled protocol
   messages into a running hash; binding the statement, the bases, and
   every commitment into the transcript rules out challenge-reuse and
   cross-protocol confusion. *)

open Larch_bignum
module Scalar = Larch_ec.P256.Scalar

type t = { mutable state : string }

let create (domain : string) : t = { state = Larch_hash.Sha256.digest ("larch-transcript" ^ domain) }

let absorb (t : t) ~(label : string) (data : string) : unit =
  t.state <-
    Larch_hash.Sha256.digest_list
      [ t.state; Larch_util.Bytesx.be32 (String.length label); label;
        Larch_util.Bytesx.be32 (String.length data); data ]

let absorb_point (t : t) ~label (p : Larch_ec.Point.t) : unit =
  absorb t ~label (Larch_ec.Point.encode p)

let absorb_scalar (t : t) ~label (s : Scalar.t) : unit = absorb t ~label (Scalar.to_bytes_be s)

(* Derive a challenge scalar and fold it back into the state. *)
let challenge_scalar (t : t) ~(label : string) : Scalar.t =
  let h = Larch_hash.Sha256.digest_list [ t.state; "challenge"; label ] in
  t.state <- Larch_hash.Sha256.digest_list [ t.state; "post-challenge"; h ];
  (* 256-bit hash reduced mod the 256-bit group order: bias < 2^-128 *)
  Scalar.of_nat (Nat.of_bytes_be h)
