(* AES-128-CTR mode, and the SHA-256-keystream cipher that mirrors the
   in-circuit encryption of larch log records.

   The two are interchangeable stream ciphers keyed by the archive key; the
   protocol code uses [sha_ctr] so that software encryption and the ZK/2PC
   statement circuits compute the identical function. *)

let aes_ctr ~(key : string) ~(nonce : string) (data : string) : string =
  if String.length nonce <> 12 then invalid_arg "Ctr.aes_ctr: nonce must be 12 bytes";
  let ks = Aes.expand_key key in
  let out = Bytes.create (String.length data) in
  let nblocks = (String.length data + 15) / 16 in
  for i = 0 to nblocks - 1 do
    let ctr_block = nonce ^ Larch_util.Bytesx.be32 i in
    let stream = Aes.encrypt_block ks ctr_block in
    let take = min 16 (String.length data - (16 * i)) in
    for j = 0 to take - 1 do
      Bytes.set out ((16 * i) + j) (Char.chr (Char.code data.[(16 * i) + j] lxor Char.code stream.[j]))
    done
  done;
  Bytes.unsafe_to_string out

(* ct = data XOR SHA256(key ‖ nonce ‖ counter), block by block.  This is the
   keystream the FIDO2 statement circuit evaluates (DESIGN.md §1). *)
let sha_ctr ~(key : string) ~(nonce : string) (data : string) : string =
  let n = String.length data in
  let buf = Buffer.create n in
  let i = ref 0 in
  while Buffer.length buf < n do
    Buffer.add_string buf (Larch_hash.Sha256.digest (key ^ nonce ^ Larch_util.Bytesx.be32 !i));
    incr i
  done;
  Larch_util.Bytesx.xor data (String.sub (Buffer.contents buf) 0 n)
