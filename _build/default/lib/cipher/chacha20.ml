(* ChaCha20 stream cipher (RFC 8439).

   The paper's TOTP circuit uses ChaCha20 for in-circuit encryption; here the
   software ChaCha20 additionally backs the PRG used to compress presignature
   shares (§7 "Optimizations") and the garbling randomness. *)

let mask32 = 0xffffffff

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let quarter_round (st : int array) a b c d =
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let le32 (s : string) (off : int) : int =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

(* One 64-byte keystream block.  [key] is 32 bytes, [nonce] 12 bytes. *)
let block ~(key : string) ~(nonce : string) ~(counter : int) : string =
  if String.length key <> 32 then invalid_arg "Chacha20.block: key must be 32 bytes";
  if String.length nonce <> 12 then invalid_arg "Chacha20.block: nonce must be 12 bytes";
  let st = Array.make 16 0 in
  st.(0) <- 0x61707865;
  st.(1) <- 0x3320646e;
  st.(2) <- 0x79622d32;
  st.(3) <- 0x6b206574;
  for i = 0 to 7 do
    st.(4 + i) <- le32 key (4 * i)
  done;
  st.(12) <- counter land mask32;
  for i = 0 to 2 do
    st.(13 + i) <- le32 nonce (4 * i)
  done;
  let working = Array.copy st in
  for _ = 1 to 10 do
    quarter_round working 0 4 8 12;
    quarter_round working 1 5 9 13;
    quarter_round working 2 6 10 14;
    quarter_round working 3 7 11 15;
    quarter_round working 0 5 10 15;
    quarter_round working 1 6 11 12;
    quarter_round working 2 7 8 13;
    quarter_round working 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    let v = (working.(i) + st.(i)) land mask32 in
    Bytes.set_uint8 out (4 * i) (v land 0xff);
    Bytes.set_uint8 out ((4 * i) + 1) ((v lsr 8) land 0xff);
    Bytes.set_uint8 out ((4 * i) + 2) ((v lsr 16) land 0xff);
    Bytes.set_uint8 out ((4 * i) + 3) ((v lsr 24) land 0xff)
  done;
  Bytes.unsafe_to_string out

let keystream ~key ~nonce ~(counter : int) (len : int) : string =
  let buf = Buffer.create len in
  let ctr = ref counter in
  while Buffer.length buf < len do
    Buffer.add_string buf (block ~key ~nonce ~counter:!ctr);
    incr ctr
  done;
  String.sub (Buffer.contents buf) 0 len

let encrypt ~key ~nonce ?(counter = 1) (plaintext : string) : string =
  Larch_util.Bytesx.xor plaintext (keystream ~key ~nonce ~counter (String.length plaintext))

let decrypt = encrypt
