(** AES-128 block cipher (FIPS 197), backing the conventional record
    encryption path ({!Ctr.aes_ctr}). *)

type key_schedule

val expand_key : string -> key_schedule
(** @raise Invalid_argument unless the key is 16 bytes *)

val encrypt_block : key_schedule -> string -> string
(** @raise Invalid_argument unless the block is 16 bytes *)
