(** Counter-mode stream encryption of log records.

    [sha_ctr] (keystream block i = SHA256(key ‖ nonce ‖ i)) is the cipher
    the statement circuits compute, so software and in-circuit encryption
    agree bit-for-bit; [aes_ctr] is the conventional alternative the
    paper's implementation used outside the circuit. *)

val aes_ctr : key:string -> nonce:string -> string -> string
(** AES-128-CTR; 16-byte key, 12-byte nonce; involutive. *)

val sha_ctr : key:string -> nonce:string -> string -> string
(** SHA-256-keystream counter mode; involutive. *)
