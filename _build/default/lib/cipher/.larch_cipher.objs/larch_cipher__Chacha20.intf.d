lib/cipher/chacha20.mli:
