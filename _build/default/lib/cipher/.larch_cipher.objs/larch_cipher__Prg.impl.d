lib/cipher/prg.ml: Buffer Chacha20 Char Larch_hash String
