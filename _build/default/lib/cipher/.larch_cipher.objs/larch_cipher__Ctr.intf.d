lib/cipher/ctr.mli:
