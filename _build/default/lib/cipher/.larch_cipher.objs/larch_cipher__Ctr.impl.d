lib/cipher/ctr.ml: Aes Buffer Bytes Char Larch_hash Larch_util String
