lib/cipher/aes.ml: Array Char String
