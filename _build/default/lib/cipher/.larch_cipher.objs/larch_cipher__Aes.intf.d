lib/cipher/aes.mli:
