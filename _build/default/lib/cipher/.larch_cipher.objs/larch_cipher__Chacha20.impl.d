lib/cipher/chacha20.ml: Array Buffer Bytes Char Larch_util String
