lib/cipher/prg.mli:
