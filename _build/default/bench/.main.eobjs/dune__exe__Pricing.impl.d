bench/pricing.ml:
