bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance Larch_cipher Larch_ec Larch_hash List Measure Printf Staged Test Time Toolkit
