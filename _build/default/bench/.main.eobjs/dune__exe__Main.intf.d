bench/main.mli:
