(* AWS price model used by the paper's cost analysis (§8.2, Table 6,
   Figure 4 right).  Constants from the paper's reference [1]: c5 cores at
   $0.0425–$0.085 per hour depending on instance size; data transfer out of
   AWS at $0.05–$0.09/GB; transfer in is free. *)

let core_hour_min = 0.0425
let core_hour_max = 0.085
let egress_gb_min = 0.05
let egress_gb_max = 0.09

type per_auth = {
  log_core_seconds : float; (* log CPU per authentication *)
  egress_bytes : int; (* log -> client bytes per authentication *)
}

type cost = { min_usd : float; max_usd : float }

let cost_of (p : per_auth) ~(auths : float) : cost =
  let core_hours = p.log_core_seconds *. auths /. 3600. in
  let egress_gb = float_of_int p.egress_bytes *. auths /. 1e9 in
  {
    min_usd = (core_hours *. core_hour_min) +. (egress_gb *. egress_gb_min);
    max_usd = (core_hours *. core_hour_max) +. (egress_gb *. egress_gb_max);
  }

let auths_per_core_second (p : per_auth) : float = 1. /. p.log_core_seconds
