(* Sigma-protocol tests: Schnorr, DLEQ, Pedersen, multi-exponentiation, and
   the Groth–Kohlweiss one-out-of-many proof used by larch passwords. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
open Larch_sigma

let rand = Larch_hash.Drbg.of_seed "test-sigma"

let schnorr_roundtrip () =
  let x = Scalar.random_nonzero ~rand_bytes:rand in
  let base = Point.g in
  let y = Point.mul x base in
  let p = Schnorr.prove ~base ~secret:x ~tag:"t" ~rand_bytes:rand in
  Alcotest.(check bool) "verifies" true (Schnorr.verify ~base ~public:y ~tag:"t" p);
  Alcotest.(check bool) "wrong tag" false (Schnorr.verify ~base ~public:y ~tag:"u" p);
  Alcotest.(check bool) "wrong public" false
    (Schnorr.verify ~base ~public:(Point.double y) ~tag:"t" p);
  (match Schnorr.decode (Schnorr.encode p) with
  | Some p' -> Alcotest.(check bool) "decode verifies" true (Schnorr.verify ~base ~public:y ~tag:"t" p')
  | None -> Alcotest.fail "decode");
  (* non-generator base *)
  let base2 = Larch_ec.Hash_to_curve.hash "another-base" in
  let y2 = Point.mul x base2 in
  let p2 = Schnorr.prove ~base:base2 ~secret:x ~tag:"t" ~rand_bytes:rand in
  Alcotest.(check bool) "other base verifies" true (Schnorr.verify ~base:base2 ~public:y2 ~tag:"t" p2)

let dleq_roundtrip () =
  let k = Scalar.random_nonzero ~rand_bytes:rand in
  let b1 = Point.g and b2 = Larch_ec.Hash_to_curve.hash "dleq-base" in
  let y1 = Point.mul k b1 and y2 = Point.mul k b2 in
  let p = Dleq.prove ~base1:b1 ~base2:b2 ~secret:k ~tag:"t" ~rand_bytes:rand in
  Alcotest.(check bool) "verifies" true
    (Dleq.verify ~base1:b1 ~base2:b2 ~public1:y1 ~public2:y2 ~tag:"t" p);
  Alcotest.(check bool) "wrong pair rejected" false
    (Dleq.verify ~base1:b1 ~base2:b2 ~public1:y1 ~public2:(Point.double y2) ~tag:"t" p);
  match Dleq.decode (Dleq.encode p) with
  | Some p' ->
      Alcotest.(check bool) "decode verifies" true
        (Dleq.verify ~base1:b1 ~base2:b2 ~public1:y1 ~public2:y2 ~tag:"t" p')
  | None -> Alcotest.fail "decode"

let pedersen_binding_smoke () =
  let key = Lazy.force Pedersen.default in
  let m = Scalar.random ~rand_bytes:rand and r = Scalar.random ~rand_bytes:rand in
  let c = Pedersen.commit key ~msg:m ~rand:r in
  Alcotest.(check bool) "opens" true (Pedersen.verify key ~commitment:c ~msg:m ~rand:r);
  Alcotest.(check bool) "wrong msg" false
    (Pedersen.verify key ~commitment:c ~msg:(Scalar.add m Scalar.one) ~rand:r)

let multi_mul_matches_naive () =
  for n = 1 to 12 do
    let pairs =
      Array.init n (fun _ ->
          let k = Scalar.random ~rand_bytes:rand in
          let p = Point.mul_base (Scalar.random_nonzero ~rand_bytes:rand) in
          (k, p))
    in
    let naive =
      Array.fold_left (fun acc (k, p) -> Point.add acc (Point.mul k p)) Point.infinity pairs
    in
    Alcotest.(check bool)
      (Printf.sprintf "multi_mul n=%d" n)
      true
      (Point.equal naive (Point.multi_mul pairs))
  done

let gk15_complete n () =
  let key = Pedersen.make ~h:(Larch_ec.Hash_to_curve.hash "gk-h") in
  let index = n / 2 in
  let opening = Scalar.random_nonzero ~rand_bytes:rand in
  let commitments =
    Array.init n (fun i ->
        if i = index then Point.mul opening key.Pedersen.h
        else Point.mul_base (Scalar.random_nonzero ~rand_bytes:rand))
  in
  let p = Gk15.prove ~key ~commitments ~index ~opening ~tag:"t" ~rand_bytes:rand in
  Alcotest.(check bool) "verifies" true (Gk15.verify ~key ~commitments ~tag:"t" p);
  Alcotest.(check bool) "wrong tag rejected" false (Gk15.verify ~key ~commitments ~tag:"u" p);
  (* perturbing the commitment list must break the proof *)
  let bad = Array.copy commitments in
  bad.(0) <- Point.double bad.(0);
  Alcotest.(check bool) "modified set rejected" false (Gk15.verify ~key ~commitments:bad ~tag:"t" p);
  (* decode/encode *)
  match Gk15.decode (Gk15.encode p) with
  | Some p' -> Alcotest.(check bool) "decoded verifies" true (Gk15.verify ~key ~commitments ~tag:"t" p')
  | None -> Alcotest.fail "decode"

let gk15_soundness_no_zero_commitment () =
  (* If no commitment opens to zero, an honest-prover run with a bogus
     opening must fail verification. *)
  let key = Pedersen.make ~h:(Larch_ec.Hash_to_curve.hash "gk-h2") in
  let n = 8 in
  let commitments =
    Array.init n (fun _ -> Point.mul_base (Scalar.random_nonzero ~rand_bytes:rand))
  in
  let p =
    Gk15.prove ~key ~commitments ~index:3 ~opening:(Scalar.random_nonzero ~rand_bytes:rand)
      ~tag:"t" ~rand_bytes:rand
  in
  Alcotest.(check bool) "rejected" false (Gk15.verify ~key ~commitments ~tag:"t" p)

let gk15_tamper () =
  let key = Pedersen.make ~h:(Larch_ec.Hash_to_curve.hash "gk-h3") in
  let n = 16 and index = 5 in
  let opening = Scalar.random_nonzero ~rand_bytes:rand in
  let commitments =
    Array.init n (fun i ->
        if i = index then Point.mul opening key.Pedersen.h
        else Point.mul_base (Scalar.random_nonzero ~rand_bytes:rand))
  in
  let p = Gk15.prove ~key ~commitments ~index ~opening ~tag:"t" ~rand_bytes:rand in
  let tampered = { p with Gk15.z_d = Scalar.add p.Gk15.z_d Scalar.one } in
  Alcotest.(check bool) "tampered z_d rejected" false
    (Gk15.verify ~key ~commitments ~tag:"t" tampered);
  let tampered2 = { p with Gk15.f = Array.map (fun x -> Scalar.add x Scalar.one) p.Gk15.f } in
  Alcotest.(check bool) "tampered f rejected" false
    (Gk15.verify ~key ~commitments ~tag:"t" tampered2)

let gk15_padding () =
  (* non-power-of-two list sizes *)
  List.iter
    (fun n ->
      let key = Pedersen.make ~h:(Larch_ec.Hash_to_curve.hash "gk-h4") in
      let index = n - 1 in
      let opening = Scalar.random_nonzero ~rand_bytes:rand in
      let commitments =
        Array.init n (fun i ->
            if i = index then Point.mul opening key.Pedersen.h
            else Point.mul_base (Scalar.random_nonzero ~rand_bytes:rand))
      in
      let p = Gk15.prove ~key ~commitments ~index ~opening ~tag:"t" ~rand_bytes:rand in
      Alcotest.(check bool) (Printf.sprintf "n=%d verifies" n) true
        (Gk15.verify ~key ~commitments ~tag:"t" p))
    [ 1; 3; 5; 7; 9 ]

let transcript_determinism () =
  let mk () =
    let t = Transcript.create "d" in
    Transcript.absorb t ~label:"a" "hello";
    Transcript.absorb t ~label:"b" "world";
    Transcript.challenge_scalar t ~label:"c"
  in
  Alcotest.(check bool) "deterministic" true (Scalar.equal (mk ()) (mk ()));
  let t2 = Transcript.create "d" in
  (* label/data boundary confusion must change the challenge *)
  Transcript.absorb t2 ~label:"ah" "ello";
  Transcript.absorb t2 ~label:"b" "world";
  Alcotest.(check bool) "boundary-sensitive" false
    (Scalar.equal (mk ()) (Transcript.challenge_scalar t2 ~label:"c"))

let () =
  Alcotest.run "sigma"
    [
      ( "sigma",
        [
          Alcotest.test_case "transcript" `Quick transcript_determinism;
          Alcotest.test_case "schnorr" `Quick schnorr_roundtrip;
          Alcotest.test_case "dleq" `Quick dleq_roundtrip;
          Alcotest.test_case "pedersen" `Quick pedersen_binding_smoke;
          Alcotest.test_case "multi_mul" `Quick multi_mul_matches_naive;
        ] );
      ( "gk15",
        [
          Alcotest.test_case "complete n=8" `Quick (gk15_complete 8);
          Alcotest.test_case "complete n=32" `Quick (gk15_complete 32);
          Alcotest.test_case "soundness" `Quick gk15_soundness_no_zero_commitment;
          Alcotest.test_case "tamper" `Quick gk15_tamper;
          Alcotest.test_case "padding" `Quick gk15_padding;
        ] );
    ]
