(* MPC substrate tests: secret sharing, Shamir, half-authenticated SPDZ
   multiplication, base OT, IKNP extension, garbling, and the Yao runner on
   the real larch TOTP circuit. *)

module Scalar = Larch_ec.P256.Scalar
module Bytesx = Larch_util.Bytesx
open Larch_mpc

let rand = Larch_hash.Drbg.of_seed "test-mpc"

let sharing_roundtrip () =
  let x = Scalar.random ~rand_bytes:rand in
  let x1, x2 = Sharing.additive x ~rand_bytes:rand in
  Alcotest.(check bool) "additive" true (Scalar.equal (Sharing.additive_recover x1 x2) x);
  let s = rand 37 in
  let s1, s2 = Sharing.xor s ~rand_bytes:rand in
  Alcotest.(check string) "xor" s (Sharing.xor_recover s1 s2)

let shamir_roundtrip () =
  let secret = Scalar.random ~rand_bytes:rand in
  let shares = Shamir.split ~threshold:3 ~n:5 secret ~rand_bytes:rand in
  let take idxs = List.filter (fun s -> List.mem s.Shamir.index idxs) shares in
  Alcotest.(check bool) "3 of 5" true (Scalar.equal (Shamir.reconstruct (take [ 1; 3; 5 ])) secret);
  Alcotest.(check bool) "all 5" true (Scalar.equal (Shamir.reconstruct shares) secret);
  Alcotest.(check bool) "2 of 5 fails" false
    (Scalar.equal (Shamir.reconstruct (take [ 2; 4 ])) secret);
  (* lagrange coefficients recombine in the exponent *)
  let idxs = [ 1; 2; 4 ] in
  let combo =
    List.fold_left
      (fun acc s ->
        if List.mem s.Shamir.index idxs then
          Scalar.add acc
            (Scalar.mul s.Shamir.value (Shamir.lagrange_coefficient ~at:s.Shamir.index idxs))
        else acc)
      Scalar.zero shares
  in
  Alcotest.(check bool) "lagrange coeffs" true (Scalar.equal combo secret)

let spdz_halfmul_correct () =
  let x = Scalar.random ~rand_bytes:rand in
  let y = Scalar.random ~rand_bytes:rand in
  let y0, y1 = Sharing.additive y ~rand_bytes:rand in
  let pair, _alpha = Spdz.make_halfmul_inputs ~x ~y0 ~y1 ~rand_bytes:rand in
  let m0 = Spdz.halfmul_round1 pair.Spdz.share0 in
  let m1 = Spdz.halfmul_round1 pair.Spdz.share1 in
  let o0 = Spdz.halfmul_finish ~party:0 pair.Spdz.share0 ~own:m0 ~other:m1 in
  let o1 = Spdz.halfmul_finish ~party:1 pair.Spdz.share1 ~own:m1 ~other:m0 in
  Alcotest.(check bool) "z = x*y" true
    (Scalar.equal (Scalar.add o0.Spdz.z o1.Spdz.z) (Scalar.mul x y));
  (* opening with MAC check accepts *)
  let s_total = Scalar.add o0.Spdz.z o1.Spdz.z in
  let inp i (o : Spdz.halfmul_output) (p : Spdz.halfmul_input) =
    ignore i;
    Spdz.{ s = o.z; shat = o.zhat; d_pub = o.d_open; dhat_share = o.dhat; alpha_share = p.alpha }
  in
  let st0, c0 = Spdz.open_round1 (inp 0 o0 pair.Spdz.share0) ~s_total ~rand_bytes:rand in
  let st1, c1 = Spdz.open_round1 (inp 1 o1 pair.Spdz.share1) ~s_total ~rand_bytes:rand in
  Alcotest.(check bool) "party0 accepts" true
    (Spdz.open_check ~own:st0 ~other_commit:c1 ~other_reveal:st1.Spdz.reveal);
  Alcotest.(check bool) "party1 accepts" true
    (Spdz.open_check ~own:st1 ~other_commit:c0 ~other_reveal:st0.Spdz.reveal)

let spdz_halfmul_detects_nonce_shift () =
  (* shifting the authenticated input x (the signing nonce) is caught *)
  let x = Scalar.random ~rand_bytes:rand in
  let y = Scalar.random ~rand_bytes:rand in
  let y0, y1 = Sharing.additive y ~rand_bytes:rand in
  let pair, _ = Spdz.make_halfmul_inputs ~x ~y0 ~y1 ~rand_bytes:rand in
  (* party 1 cheats: uses x + 1 *)
  let cheat = { pair.Spdz.share1 with Spdz.x = Scalar.add pair.Spdz.share1.Spdz.x Scalar.one } in
  let m0 = Spdz.halfmul_round1 pair.Spdz.share0 in
  let m1 = Spdz.halfmul_round1 cheat in
  let o0 = Spdz.halfmul_finish ~party:0 pair.Spdz.share0 ~own:m0 ~other:m1 in
  let o1 = Spdz.halfmul_finish ~party:1 cheat ~own:m1 ~other:m0 in
  let s_total = Scalar.add o0.Spdz.z o1.Spdz.z in
  let st0, _c0 =
    Spdz.open_round1
      Spdz.{ s = o0.z; shat = o0.zhat; d_pub = o0.d_open; dhat_share = o0.dhat; alpha_share = pair.Spdz.share0.Spdz.alpha }
      ~s_total ~rand_bytes:rand
  in
  let st1, c1 =
    Spdz.open_round1
      Spdz.{ s = o1.z; shat = o1.zhat; d_pub = o1.d_open; dhat_share = o1.dhat; alpha_share = cheat.Spdz.alpha }
      ~s_total ~rand_bytes:rand
  in
  Alcotest.(check bool) "honest party rejects" false
    (Spdz.open_check ~own:st0 ~other_commit:c1 ~other_reveal:st1.Spdz.reveal)

let base_ot_correct () =
  let st, setup = Ot.sender_setup ~rand_bytes:rand in
  List.iter
    (fun choice ->
      let rstate, rmsg = Ot.receiver_choose ~setup ~choice ~rand_bytes:rand in
      let m0 = rand 24 and m1 = rand 24 in
      let payload = Ot.sender_encrypt ~state:st ~msg:rmsg ~m0 ~m1 in
      let got = Ot.receiver_recover ~state:rstate ~choice payload in
      Alcotest.(check string) "chosen message" (if choice = 0 then m0 else m1) got;
      Alcotest.(check bool) "other message hidden" false
        (got = if choice = 0 then m1 else m0))
    [ 0; 1; 0; 1 ]

let iknp_correct () =
  let r_base, s_base, _bytes = Ot_ext.run_base_ots ~rand_bytes_r:rand ~rand_bytes_s:rand in
  let m = 300 in
  let choices = Array.init m (fun _ -> Char.code (rand 1).[0] land 1) in
  let r_ext, u = Ot_ext.receiver_extend r_base ~choices in
  let s_ext = Ot_ext.sender_extend s_base ~u ~m in
  let pairs = Array.init m (fun _ -> (rand 16, rand 16)) in
  let cipher = Ot_ext.sender_encrypt s_ext ~pairs in
  let got = Ot_ext.receiver_recover r_ext ~choices ~cipher in
  Array.iteri
    (fun i g ->
      let m0, m1 = pairs.(i) in
      Alcotest.(check string) (Printf.sprintf "ot %d" i) (if choices.(i) = 0 then m0 else m1) g)
    got

let garble_matches_cleartext () =
  (* random small circuits: compare garbled evaluation with plain eval *)
  let module Builder = Larch_circuit.Builder in
  for trial = 1 to 5 do
    let b = Builder.create () in
    let inputs = Builder.inputs b 16 in
    (* build a random gate soup *)
    let wires = ref (Array.to_list inputs) in
    let pick () =
      let l = !wires in
      List.nth l (Char.code (rand 1).[0] mod List.length l)
    in
    for _ = 1 to 60 do
      let w =
        match Char.code (rand 1).[0] mod 4 with
        | 0 -> Builder.band b (pick ()) (pick ())
        | 1 -> Builder.bxor b (pick ()) (pick ())
        | 2 -> Builder.bnot b (pick ())
        | _ -> Builder.const b (Char.code (rand 1).[0] land 1 = 1)
      in
      wires := w :: !wires
    done;
    let outputs = Array.init 8 (fun _ -> pick ()) in
    let c = Builder.finalize b ~outputs in
    let input_bits = Array.init 16 (fun _ -> Char.code (rand 1).[0] land 1 = 1) in
    let expected = Larch_circuit.Circuit.eval c input_bits in
    let g = Garble.garble c ~rand_bytes:rand in
    let active =
      Array.init 16 (fun i -> Garble.active_input g i (if input_bits.(i) then 1 else 0))
    in
    let out_labels =
      Garble.evaluate c ~tables:g.Garble.tables ~const_labels:g.Garble.const_labels
        ~active_inputs:active
    in
    let decoded = Garble.decode_outputs g out_labels in
    Array.iteri
      (fun i v ->
        Alcotest.(check int)
          (Printf.sprintf "trial %d output %d" trial i)
          (if expected.(i) then 1 else 0)
          v)
      decoded;
    (* garbler-side decode agrees *)
    Array.iteri
      (fun i l ->
        match Garble.garbler_decode g i l with
        | Some v -> Alcotest.(check int) "garbler decode" (if expected.(i) then 1 else 0) v
        | None -> Alcotest.fail "garbler decode: invalid label")
      out_labels
  done

let yao_totp_end_to_end () =
  let k = rand 32 and r = rand 16 in
  let cm = Larch_hash.Sha256.digest (k ^ r) in
  let pub = Larch_circuit.Larch_statements.{ cm; enc_nonce = rand 12; time_counter = 1234L } in
  let n_rps = 3 in
  let regs = List.init n_rps (fun _ -> (rand 16, rand 20)) in
  let id, klog = List.nth regs 1 in
  let kclient = rand 20 in
  let circuit = Larch_circuit.Larch_statements.totp_circuit ~n_rps pub in
  let garbler_inputs = Larch_circuit.Larch_statements.totp_client_input ~k ~r ~id ~kclient in
  let evaluator_inputs = Larch_circuit.Larch_statements.totp_log_input ~registrations:regs in
  let offline = Larch_net.Channel.create () and online = Larch_net.Channel.create () in
  let cfg =
    Yao.{ circuit; n_garbler_inputs = Array.length garbler_inputs; n_evaluator_outputs = 129 }
  in
  let outcome =
    Yao.run cfg ~garbler_inputs ~evaluator_inputs ~rand_garbler:rand ~rand_evaluator:rand
      ~offline ~online
  in
  (* expected values *)
  let k_id = Bytesx.xor kclient klog in
  let hmac, ct = Larch_circuit.Larch_statements.totp_compute ~k ~id ~k_id pub in
  Alcotest.(check int) "ok bit" 1 outcome.Yao.evaluator_outputs.(0);
  let ct_bits = Array.sub outcome.Yao.evaluator_outputs 1 128 in
  Alcotest.(check string) "log learns ct" (Larch_util.Hex.encode ct)
    (Larch_util.Hex.encode (Bytesx.string_of_bits ct_bits));
  Alcotest.(check string) "client learns hmac" (Larch_util.Hex.encode hmac)
    (Larch_util.Hex.encode (Bytesx.string_of_bits outcome.Yao.garbler_outputs));
  let off = Larch_net.Channel.snapshot offline and on = Larch_net.Channel.snapshot online in
  Printf.printf "\n  [yao totp n=3] offline %.2f MiB online %.1f KiB\n"
    (float_of_int (off.Larch_net.Channel.up + off.Larch_net.Channel.down) /. 1024. /. 1024.)
    (float_of_int (on.Larch_net.Channel.up + on.Larch_net.Channel.down) /. 1024.);
  Alcotest.(check bool) "offline dominates online" true
    (off.Larch_net.Channel.up + off.Larch_net.Channel.down
    > on.Larch_net.Channel.up + on.Larch_net.Channel.down)

let () =
  Alcotest.run "mpc"
    [
      ( "sharing",
        [
          Alcotest.test_case "additive/xor" `Quick sharing_roundtrip;
          Alcotest.test_case "shamir" `Quick shamir_roundtrip;
        ] );
      ( "spdz",
        [
          Alcotest.test_case "halfmul correct" `Quick spdz_halfmul_correct;
          Alcotest.test_case "nonce shift detected" `Quick spdz_halfmul_detects_nonce_shift;
        ] );
      ( "ot",
        [
          Alcotest.test_case "base ot" `Quick base_ot_correct;
          Alcotest.test_case "iknp extension" `Quick iknp_correct;
        ] );
      ( "garble",
        [
          Alcotest.test_case "vs cleartext" `Quick garble_matches_cleartext;
          Alcotest.test_case "yao totp end-to-end" `Slow yao_totp_end_to_end;
        ] );
    ]
