test/test_sigma.ml: Alcotest Array Dleq Gk15 Larch_ec Larch_hash Larch_sigma Lazy List Pedersen Printf Schnorr Transcript
