test/test_zkboo.ml: Alcotest Array Char Larch_circuit Larch_hash Larch_zkboo Lazy List Printf QCheck QCheck_alcotest String Unix
