test/test_zkboo.mli:
