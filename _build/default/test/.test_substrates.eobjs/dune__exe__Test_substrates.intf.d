test/test_substrates.mli:
