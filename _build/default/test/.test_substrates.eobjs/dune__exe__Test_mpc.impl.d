test/test_mpc.ml: Alcotest Array Char Garble Larch_circuit Larch_ec Larch_hash Larch_mpc Larch_net Larch_util List Ot Ot_ext Printf Shamir Sharing Spdz String Yao
