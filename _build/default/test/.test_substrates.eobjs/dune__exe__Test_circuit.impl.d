test/test_circuit.ml: Alcotest Array Builder Circuit Larch_circuit Larch_hash Larch_statements Larch_util Lazy List Printf Sha1_circuit Sha256_circuit String Word
