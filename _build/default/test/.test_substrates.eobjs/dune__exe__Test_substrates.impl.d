test/test_substrates.ml: Alcotest Array Char Larch_bignum Larch_cipher Larch_ec Larch_hash Larch_util List Modarith Nat Option QCheck QCheck_alcotest String
