(* Compromise detection — the scenario larch exists for (§1, §2.4).

   An attacker steals Alice's laptop state (every larch secret on the
   device).  The attacker can log in to her accounts — larch does not
   prevent that — but *cannot* do so without the log service recording an
   encrypted, client-decryptable record.  Alice audits, sees logins she
   never made, revokes the device's shares at the log, and the stolen
   state becomes useless.

     dune exec examples/compromise_detection.exe *)

open Larch_core

let () =
  let rand = Larch_hash.Drbg.system () in
  let log = Log_service.create ~rand_bytes:rand () in
  let alice =
    Client.create ~client_id:"alice" ~account_password:"log password" ~log ~rand_bytes:rand ()
  in
  Client.enroll ~presignature_count:8 alice;

  let bank = Relying_party.create ~name:"bank.example.com" ~rand_bytes:rand () in
  let pk = Client.register_fido2 alice ~rp_name:"bank.example.com" in
  Relying_party.fido2_register bank ~username:"alice" ~pk;

  (* Alice logs in once, legitimately. *)
  let chal = Relying_party.fido2_challenge bank ~username:"alice" in
  let a = Client.authenticate_fido2 alice ~rp_name:"bank.example.com" ~challenge:chal in
  assert (Relying_party.fido2_login bank ~username:"alice" a);
  print_endline "alice logs in to bank.example.com (1 legitimate login)";

  (* The attacker has the full device state — in this simulation, the same
     client value — and logs in twice at 3am. *)
  Larch_util.Clock.set (Unix.gettimeofday () +. 3600.);
  for i = 1 to 2 do
    let chal = Relying_party.fido2_challenge bank ~username:"alice" in
    let a = Client.authenticate_fido2 alice ~rp_name:"bank.example.com" ~challenge:chal in
    let ok = Relying_party.fido2_login bank ~username:"alice" a in
    Printf.printf "attacker login %d with stolen device state: %s\n" i
      (if ok then "succeeds (as expected)" else "failed")
  done;

  (* Alice expected exactly one bank login.  The audit is ground truth: the
     attacker could not authenticate without leaving these records. *)
  let anomalies =
    Client.detect_anomalies alice ~expected:[ (Types.Fido2, "bank.example.com") ]
  in
  Printf.printf "audit: %d authentication(s) alice never made:\n" (List.length anomalies);
  List.iter
    (fun e ->
      Printf.printf "  t=%-12.0f %-8s %s from %s\n" e.Client.time
        (Types.auth_method_to_string e.Client.method_)
        (Option.value ~default:"?" e.Client.rp)
        e.Client.ip)
    anomalies;

  (* Remediation: revoke the log-side shares.  The stolen device can no
     longer authenticate anywhere, even to accounts alice forgot about. *)
  Client.revoke_all alice;
  print_endline "alice revokes her device's shares at the log";
  (try
     let chal = Relying_party.fido2_challenge bank ~username:"alice" in
     ignore (Client.authenticate_fido2 alice ~rp_name:"bank.example.com" ~challenge:chal);
     print_endline "BUG: stolen state still works"
   with _ -> print_endline "stolen device state is now useless: log refuses to participate")
