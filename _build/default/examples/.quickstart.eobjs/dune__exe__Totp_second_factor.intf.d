examples/totp_second_factor.mli:
