examples/password_vault.ml: Array Client Hashtbl Larch_core Larch_hash Larch_net List Log_service Option Printf Relying_party Sys Unix
