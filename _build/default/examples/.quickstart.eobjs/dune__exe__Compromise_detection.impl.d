examples/compromise_detection.ml: Client Larch_core Larch_hash Larch_util List Log_service Option Printf Relying_party Types Unix
