examples/account_recovery.ml: Backup Client Larch_core Larch_hash List Log_service Printf Relying_party
