examples/password_vault.mli:
