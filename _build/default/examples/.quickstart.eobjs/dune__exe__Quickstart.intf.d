examples/quickstart.mli:
