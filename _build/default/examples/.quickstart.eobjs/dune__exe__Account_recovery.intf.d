examples/account_recovery.mli:
