examples/quickstart.ml: Client Larch_core Larch_hash Larch_net List Log_service Option Printf Relying_party Types Unix
