examples/compromise_detection.mli:
