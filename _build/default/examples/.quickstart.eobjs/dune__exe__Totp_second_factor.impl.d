examples/totp_second_factor.ml: Array Client Larch_auth Larch_core Larch_hash Larch_net List Log_service Option Printf Relying_party Sys Types Unix
