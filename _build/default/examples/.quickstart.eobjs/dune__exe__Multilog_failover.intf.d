examples/multilog_failover.mli:
