examples/multilog_failover.ml: Larch_core Larch_hash List Multilog Printf Unix
