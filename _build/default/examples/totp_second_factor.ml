(* TOTP second factor: the user has TOTP enabled at a set of services
   (think Google Authenticator, but split-secret so every code generation
   is logged).  Shows the online/offline phase split of the garbled-circuit
   protocol and the relying party's replay cache.

     dune exec examples/totp_second_factor.exe -- [n_accounts] *)

open Larch_core

let () =
  let n = if Array.length Sys.argv > 1 then max 1 (int_of_string Sys.argv.(1)) else 5 in
  let rand = Larch_hash.Drbg.system () in
  let log = Log_service.create ~rand_bytes:rand () in
  let alice =
    Client.create ~client_id:"alice" ~account_password:"log password" ~log ~rand_bytes:rand ()
  in
  Client.enroll ~presignature_count:1 alice;

  let services = List.init n (fun i -> Printf.sprintf "service%02d.example.com" i) in
  let rps =
    List.map
      (fun s ->
        let rp = Relying_party.create ~name:s ~rand_bytes:rand () in
        let key = Relying_party.totp_register rp ~username:"alice" in
        Client.register_totp alice ~rp_name:s ~totp_key:key;
        (s, rp))
      services
  in
  Printf.printf "enrolled TOTP at %d services (each secret XOR-split with the log)\n" n;

  let time = Unix.gettimeofday () in
  let target, rp = List.nth rps (n / 2) in
  Client.reset_channels alice;
  let t0 = Unix.gettimeofday () in
  let code = Client.authenticate_totp alice ~rp_name:target ~time in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Printf.printf "TOTP code for %s: %s  (%.0f ms total 2PC)\n" target
    (Larch_auth.Totp.code_to_string code)
    ms;
  let off = Larch_net.Channel.snapshot alice.Client.totp_offline in
  let on = Larch_net.Channel.snapshot alice.Client.totp_online in
  Printf.printf "communication: offline %.2f MiB (precomputable), online %.1f KiB\n"
    (float_of_int (off.Larch_net.Channel.up + off.Larch_net.Channel.down) /. 1024. /. 1024.)
    (float_of_int (on.Larch_net.Channel.up + on.Larch_net.Channel.down) /. 1024.);

  Printf.printf "service %s the code\n"
    (if Relying_party.totp_login rp ~username:"alice" ~time code then "accepted" else "REJECTED");
  Printf.printf "replaying the same code: %s\n"
    (if Relying_party.totp_login rp ~username:"alice" ~time code then "accepted (no replay cache)"
     else "rejected (replay cache)");

  print_endline "audit log:";
  List.iter
    (fun e ->
      Printf.printf "  t=%-12.0f %-8s %s\n" e.Client.time
        (Types.auth_method_to_string e.Client.method_)
        (Option.value ~default:"?" e.Client.rp))
    (Client.audit alice)
