(* Quickstart: enroll with a log service, register a FIDO2 credential at a
   relying party, authenticate, and audit the encrypted log.

     dune exec examples/quickstart.exe *)

open Larch_core

let () =
  let rand = Larch_hash.Drbg.system () in

  (* The user picks a log service and enrolls once. *)
  let log = Log_service.create ~rand_bytes:rand () in
  let alice =
    Client.create ~client_id:"alice@example.com" ~account_password:"a strong log password"
      ~log ~rand_bytes:rand ()
  in
  Client.enroll ~presignature_count:16 alice;
  Printf.printf "enrolled with the log service (%d FIDO2 presignatures)\n"
    (Client.presignatures_remaining alice);

  (* github.com supports FIDO2; to it, larch looks like a security key. *)
  let github = Relying_party.create ~name:"github.com" ~rand_bytes:rand () in
  let pk = Client.register_fido2 alice ~rp_name:"github.com" in
  Relying_party.fido2_register github ~username:"alice" ~pk;
  print_endline "registered a larch-backed FIDO2 credential at github.com";

  (* Authentication: the relying party issues a challenge; the client and
     the log jointly produce the ECDSA assertion; the log keeps an
     encrypted record it cannot read. *)
  let challenge = Relying_party.fido2_challenge github ~username:"alice" in
  let t0 = Unix.gettimeofday () in
  let assertion = Client.authenticate_fido2 alice ~rp_name:"github.com" ~challenge in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let accepted = Relying_party.fido2_login github ~username:"alice" assertion in
  Printf.printf "github.com %s the assertion (%.0f ms client-side compute)\n"
    (if accepted then "accepted" else "REJECTED")
    ms;
  let snap = Client.channel_snapshot alice in
  Printf.printf "communication this session: %.2f MiB up, %d B down\n"
    (float_of_int snap.Larch_net.Channel.up /. 1024. /. 1024.)
    snap.Larch_net.Channel.down;

  (* Audit: only the client can decrypt the log's records. *)
  print_endline "audit log:";
  List.iter
    (fun e ->
      Printf.printf "  t=%-12.0f  %-8s  %s\n" e.Client.time
        (Types.auth_method_to_string e.Client.method_)
        (Option.value ~default:"<unknown>" e.Client.rp))
    (Client.audit alice)
