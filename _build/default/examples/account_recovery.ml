(* Account recovery and tamper-evident auditing (§9 extensions).

   Alice backs up her encrypted client state at the log, loses every
   device, recovers with only her log-account password, and keeps auditing
   with hash-chain verification that would expose a log rewriting history.

     dune exec examples/account_recovery.exe *)

open Larch_core

let () =
  let rand = Larch_hash.Drbg.system () in
  let log = Log_service.create ~rand_bytes:rand () in
  let alice =
    Client.create ~client_id:"alice" ~account_password:"a strong log password" ~log
      ~rand_bytes:rand ()
  in
  Client.enroll ~presignature_count:8 alice;

  let rp = Relying_party.create ~name:"mail.example.com" ~rand_bytes:rand () in
  let pw = Client.register_password alice ~rp_name:"mail.example.com" in
  Relying_party.password_set rp ~username:"alice" ~password:pw;
  ignore (Client.authenticate_password alice ~rp_name:"mail.example.com");
  print_endline "registered and logged in at mail.example.com";

  (* Encrypted state backup: the log stores a blob it cannot read. *)
  let blob_size = Backup.store alice in
  Printf.printf "backed up encrypted client state at the log (%d bytes)\n" blob_size;

  (* Catastrophe: every device is gone.  Recover from the password alone. *)
  print_endline "...all devices lost...";
  (match
     Backup.recover ~log ~client_id:"alice" ~account_password:"a strong log password"
       ~rand_bytes:rand
   with
  | Error e -> Printf.printf "recovery failed: %s\n" e
  | Ok restored ->
      let pw' = Client.authenticate_password restored ~rp_name:"mail.example.com" in
      Printf.printf "recovered on a new device; password login %s\n"
        (if Relying_party.password_login rp ~username:"alice" ~password:pw' then "works"
         else "FAILED");
      (* Verified audit: the client checks the log's record hash chain. *)
      (match Client.audit_verified restored with
      | Ok entries ->
          Printf.printf "verified audit: %d entries, chain consistent\n" (List.length entries)
      | Error e -> Printf.printf "verified audit FAILED: %s\n" e);
      (* A wrong password cannot open the backup. *)
      match
        Backup.recover ~log ~client_id:"alice" ~account_password:"guess" ~rand_bytes:rand
      with
      | Error e -> Printf.printf "wrong password rejected: %s\n" e
      | Ok _ -> print_endline "BUG: wrong password accepted")
