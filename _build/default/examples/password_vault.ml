(* The "average user" password vault of §8.2: 128 password relying parties,
   unique random passwords per site, a legacy import, and an audit at the
   end.  Latency and communication are printed per authentication so the
   O(n) prover / O(log n) proof-size behaviour is visible.

     dune exec examples/password_vault.exe -- [n_sites] *)

open Larch_core

let () =
  let n_sites =
    if Array.length Sys.argv > 1 then max 2 (int_of_string Sys.argv.(1)) else 128
  in
  let rand = Larch_hash.Drbg.system () in
  let log = Log_service.create ~rand_bytes:rand () in
  let alice =
    Client.create ~client_id:"alice" ~account_password:"log password" ~log ~rand_bytes:rand ()
  in
  Client.enroll ~presignature_count:1 alice;

  (* Register fresh random passwords at n relying parties. *)
  let sites = List.init n_sites (fun i -> Printf.sprintf "site%03d.example.com" i) in
  let rps = Hashtbl.create n_sites in
  List.iter
    (fun site ->
      let rp = Relying_party.create ~name:site ~rand_bytes:rand () in
      let pw = Client.register_password alice ~rp_name:site in
      Relying_party.password_set rp ~username:"alice" ~password:pw;
      Hashtbl.replace rps site rp)
    sites;
  Printf.printf "registered %d relying parties with unique random passwords\n" n_sites;

  (* Import one legacy password: the recovered secret is the original. *)
  let legacy_site = "legacy-bank.example.com" in
  let rp = Relying_party.create ~name:legacy_site ~rand_bytes:rand () in
  let pw = Client.register_password ~legacy:"hunter2!since2009" alice ~rp_name:legacy_site in
  Relying_party.password_set rp ~username:"alice" ~password:pw;
  Printf.printf "imported legacy password for %s (recovered: %S)\n" legacy_site pw;

  (* Authenticate to a few sites; every login requires the log and leaves a
     record only the client can decrypt. *)
  List.iter
    (fun site ->
      Client.reset_channels alice;
      let t0 = Unix.gettimeofday () in
      let password = Client.authenticate_password alice ~rp_name:site in
      let ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let rp = Hashtbl.find rps site in
      let ok = Relying_party.password_login rp ~username:"alice" ~password in
      let snap = Client.channel_snapshot alice in
      Printf.printf "login %-22s %-8s  %6.0f ms compute, %5.2f KiB on the wire\n" site
        (if ok then "accepted" else "REJECTED")
        ms
        (float_of_int (snap.Larch_net.Channel.up + snap.Larch_net.Channel.down) /. 1024.))
    [ List.nth sites 0; List.nth sites (n_sites / 2); List.nth sites (n_sites - 1) ];

  let password = Client.authenticate_password alice ~rp_name:legacy_site in
  Printf.printf "legacy login %s\n"
    (if Relying_party.password_login rp ~username:"alice" ~password then "accepted" else "REJECTED");

  Printf.printf "audit log (%d entries):\n" (List.length (Client.audit alice));
  List.iter
    (fun e ->
      Printf.printf "  t=%-12.0f %s\n" e.Client.time (Option.value ~default:"?" e.Client.rp))
    (Client.audit alice)
