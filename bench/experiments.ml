(* Regeneration of every table and figure in the paper's evaluation (§8).

   Each experiment prints the same rows/series the paper reports, with the
   paper's own numbers alongside for comparison.  Absolute values differ
   (pure-OCaml substrate vs the authors' C++/OpenSSL testbed); the shapes —
   who wins, growth rates, crossovers — are the reproduction target.  See
   EXPERIMENTS.md for the recorded paper-vs-measured comparison. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Statements = Larch_circuit.Larch_statements
module Zkboo = Larch_zkboo.Zkboo
module Netsim = Larch_net.Netsim
module Channel = Larch_net.Channel
open Larch_core

let net = Netsim.paper_default
let rand = Larch_hash.Drbg.of_seed "larch-bench"

(* The shared timing substrate: a monotonic-clock span, recorded in the
   trace when tracing is enabled (see --trace-json). *)
let timed (f : unit -> 'a) : 'a * float = Larch_obs.Trace.timed "bench.op" f

let ms t = t *. 1000.
let mib b = float_of_int b /. 1024. /. 1024.
let kib b = float_of_int b /. 1024.

let header title =
  Printf.printf "\n=== %s ===\n%!" title

(* Fixed workload pieces reused across experiments. *)

let fido2_statement () =
  let k = rand 32 and r = rand 16 and id = rand 32 and chal = rand 32 and nonce = rand 12 in
  let cm, ct, dgst = Statements.fido2_compute ~k ~r ~id ~chal ~nonce in
  let witness = Statements.fido2_witness_bits { Statements.k; r; id; chal; nonce } in
  let public_output = Statements.fido2_public_bits ~cm ~ct ~dgst ~nonce in
  (witness, public_output)

(* One complete online FIDO2 signing exchange (no proof), timed. *)
let run_signing_once () =
  let key = Two_party_ecdsa.log_keygen ~rand_bytes:rand in
  let y, pk = Two_party_ecdsa.client_keygen ~log_pub:key.Two_party_ecdsa.x_pub ~rand_bytes:rand in
  let cbatch, lbatch = Two_party_ecdsa.presign_batch ~count:1 ~rand_bytes:rand in
  let digest = Larch_hash.Sha256.digest "bench-message" in
  let (), dt =
    timed (fun () ->
        let log_st =
          Two_party_ecdsa.init_party ~party:0
            ~inp:(Two_party_ecdsa.halfmul_input_of_log lbatch 0 ~sk0:key.Two_party_ecdsa.x)
            ~cap_r:lbatch.Two_party_ecdsa.entries.(0).Two_party_ecdsa.cap_r ~digest
        in
        let cli_st =
          Two_party_ecdsa.init_party ~party:1
            ~inp:(Two_party_ecdsa.halfmul_input_of_client cbatch 0 ~sk1:y)
            ~cap_r:cbatch.Two_party_ecdsa.centries.(0).Two_party_ecdsa.cap_r1 ~digest
        in
        let m0 = Two_party_ecdsa.round1 log_st and m1 = Two_party_ecdsa.round1 cli_st in
        let s0 = Two_party_ecdsa.round2 log_st ~own:m0 ~other:m1 in
        let s1 = Two_party_ecdsa.round2 cli_st ~own:m1 ~other:m0 in
        let c0 = Two_party_ecdsa.open_commit log_st ~other_s:s1 ~rand_bytes:rand in
        let c1 = Two_party_ecdsa.open_commit cli_st ~other_s:s0 ~rand_bytes:rand in
        let r0 = Two_party_ecdsa.open_reveal log_st and r1 = Two_party_ecdsa.open_reveal cli_st in
        assert (Two_party_ecdsa.open_check log_st ~other_commit:c1 ~other_reveal:r1);
        assert (Two_party_ecdsa.open_check cli_st ~other_commit:c0 ~other_reveal:r0);
        let sg = Two_party_ecdsa.signature cli_st ~other_s:s0 in
        assert (Larch_ec.Ecdsa.verify_digest ~pk digest sg))
  in
  (* halfmul d,e both ways + s + commit + reveal both ways *)
  let online_bytes = 64 + 64 + 32 + 32 + 32 + 32 + 80 + 80 in
  (dt, online_bytes)

(* ---------- Figure 3 (left): FIDO2 latency vs client cores ---------- *)

let fig3_left ~fast () =
  header "Figure 3 (left): FIDO2 authentication latency vs client cores";
  Printf.printf "host has %d cores available; log verification fixed at 2 domains\n"
    (Larch_util.Parallel.available_cores ());
  let witness, public_output = fido2_statement () in
  let circuit = Lazy.force Statements.fido2_circuit in
  let cores = if fast then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let sign_s, sign_bytes = run_signing_once () in
  (* one proof to size the communication *)
  let proof0 =
    Zkboo.prove ~circuit ~witness ~statement_tag:"bench" ~rand_bytes:rand ()
  in
  let proof_bytes = Zkboo.size_bytes proof0 in
  let verify_s =
    snd (timed (fun () -> assert (Zkboo.verify ~domains:2 ~circuit ~public_output ~statement_tag:"bench" proof0)))
  in
  let total_bytes = proof_bytes + 32 + 32 + 12 + 64 + sign_bytes in
  let net_s = Netsim.transfer_time net ~bytes:total_bytes ~rounds:3 in
  Printf.printf "per-auth communication: %.2f MiB (paper: 1.73 MiB); modeled network %.0f ms\n"
    (mib total_bytes) (ms net_s);
  Printf.printf "%-8s %-12s %-12s %-12s %-10s %-12s %s\n" "cores" "prove(ms)" "modeled(ms)"
    "verify(ms)" "sign(ms)" "total(ms)" "paper-total(ms)";
  let paper = [ (1, 303.); (2, 205.); (4, 150.); (8, 117.) ] in
  let avail = Larch_util.Parallel.available_cores () in
  let _, prove1_s =
    timed (fun () ->
        ignore (Zkboo.prove ~domains:1 ~circuit ~witness ~statement_tag:"bench" ~rand_bytes:rand ()))
  in
  List.iter
    (fun d ->
      let _, prove_s =
        timed (fun () ->
            ignore (Zkboo.prove ~domains:d ~circuit ~witness ~statement_tag:"bench" ~rand_bytes:rand ()))
      in
      (* batch evaluation (~95% of proving) parallelizes across repetition
         groups; Fiat–Shamir and response assembly are serial.  On hosts
         with fewer cores than d, the Amdahl model stands in for the
         measurement (flagged by comparing [avail]). *)
      let modeled_s = prove1_s *. (0.05 +. (0.95 /. float_of_int d)) in
      let best = if avail >= d then prove_s else modeled_s in
      let total = best +. verify_s +. sign_s +. net_s in
      Printf.printf "%-8d %-12.0f %-12.0f %-12.0f %-10.1f %-12.0f %s\n%!" d (ms prove_s)
        (ms modeled_s) (ms verify_s) (ms sign_s) (ms total)
        (match List.assoc_opt d paper with Some p -> Printf.sprintf "%.0f" p | None -> "-"))
    cores;
  if avail < List.fold_left max 1 cores then
    Printf.printf
      "(host has %d core(s): measured prove times cannot scale; 'total' uses the Amdahl model)\n"
      avail

(* ---------- Figure 3 (center) + Figure 5: passwords vs #RPs ---------- *)

let password_world n =
  let x, x_pub = Password_protocol.client_gen ~rand_bytes:rand in
  let log_sk, log_pub = Password_protocol.log_gen ~rand_bytes:rand in
  let ids = List.init n (fun _ -> rand Password_protocol.id_len) in
  (x, x_pub, log_sk, log_pub, ids)

let password_point ~fast () =
  let ns = if fast then [ 16; 64; 128 ] else [ 16; 32; 64; 128; 256; 512 ] in
  List.map
    (fun n ->
      let x, x_pub, log_sk, log_pub, ids = password_world n in
      let (r, req), client_s =
        timed (fun () -> Password_protocol.client_auth ~idx:(n / 2) ~x ~ids ~rand_bytes:rand)
      in
      let y_opt, log_s =
        timed (fun () -> Password_protocol.log_auth ~log_sk ~client_pub:x_pub ~ids req)
      in
      let y = Option.get y_opt in
      let k_id = Point.mul_base (Scalar.random_nonzero ~rand_bytes:rand) in
      let _pw, finish_s =
        timed (fun () -> Password_protocol.finish_auth ~x ~log_pub ~r ~k_id ~y)
      in
      let up_bytes = String.length (Password_protocol.encode_auth_request req) in
      let down_bytes = 65 + 98 (* y point + DLEQ proof *) in
      (n, client_s, log_s, finish_s, up_bytes, down_bytes))
    ns

let fig3_center ~fast () =
  header "Figure 3 (center): password authentication latency vs relying parties";
  let rows = password_point ~fast () in
  Printf.printf "%-6s %-14s %-12s %-12s %-12s %s\n" "n" "client(ms)" "log(ms)" "total(ms)"
    "network(ms)" "paper-total(ms)";
  let paper = [ (16, 28.); (32, 39.); (64, 60.); (128, 99.); (256, 153.); (512, 245.) ] in
  List.iter
    (fun (n, client_s, log_s, finish_s, up, down) ->
      let net_s = Netsim.transfer_time net ~bytes:(up + down) ~rounds:1 in
      let total = client_s +. log_s +. finish_s +. net_s in
      Printf.printf "%-6d %-14.0f %-12.0f %-12.0f %-12.1f %s\n%!" n
        (ms (client_s +. finish_s))
        (ms log_s) (ms total) (ms net_s)
        (match List.assoc_opt n paper with Some p -> Printf.sprintf "%.0f" p | None -> "-"))
    rows;
  rows

let fig5 ~rows () =
  header "Figure 5: password communication vs relying parties (log-log)";
  Printf.printf "%-6s %-14s %-14s %-12s %s\n" "n" "client->log" "log->client" "total(KiB)"
    "paper-total(KiB)";
  let paper = [ (16, 1.47); (32, 1.83); (64, 2.19); (128, 2.55); (256, 3.78); (512, 4.14) ] in
  List.iter
    (fun (n, _, _, _, up, down) ->
      Printf.printf "%-6d %-14.2f %-14.2f %-12.2f %s\n" n (kib up) (kib down) (kib (up + down))
        (match List.assoc_opt n paper with Some p -> Printf.sprintf "%.2f" p | None -> "-"))
    rows

(* ---------- Figure 3 (right): TOTP latency vs #RPs ---------- *)

let totp_point n =
  let k = rand 32 and r = rand 16 in
  let cm = Larch_hash.Sha256.digest (k ^ r) in
  let regs = List.init n (fun _ -> (rand 16, rand 20)) in
  let id, klog = List.nth regs (n / 2) in
  let kclient = rand 20 in
  ignore klog;
  let pub = { Statements.cm; enc_nonce = rand 12; time_counter = 0x2345L } in
  let offline = Channel.create () and online = Channel.create () in
  let outcome =
    Totp_protocol.run_auth ~pub ~n_rps:n ~client:(k, r, id, kclient) ~registrations:regs
      ~rand_client:rand ~rand_log:rand ~offline ~online
  in
  assert outcome.Totp_protocol.ok;
  let off = Channel.snapshot offline and on = Channel.snapshot online in
  (outcome, off, on)

let fig3_right ~fast () =
  header "Figure 3 (right): TOTP latency vs relying parties (online vs offline)";
  let ns = if fast then [ 5; 20 ] else [ 20; 40; 60; 80; 100 ] in
  Printf.printf "%-6s %-14s %-14s %-14s %s\n" "n" "online(ms)" "offline(ms)" "off-comm(MiB)"
    "paper(on/off ms)";
  let paper = [ (20, (91., 1230.)); (100, (120., 1390.)) ] in
  List.map
    (fun n ->
      let outcome, off, on = totp_point n in
      let t = outcome.Totp_protocol.timings in
      let on_bytes = on.Channel.up + on.Channel.down in
      let off_bytes = off.Channel.up + off.Channel.down in
      let online_net = Netsim.transfer_time net ~bytes:on_bytes ~rounds:2 in
      let online_total = t.Larch_mpc.Yao.online_seconds +. online_net in
      let offline_net = Netsim.transfer_time net ~bytes:off_bytes ~rounds:1 in
      let offline_total = t.Larch_mpc.Yao.offline_seconds +. offline_net in
      Printf.printf "%-6d %-14.0f %-14.0f %-14.2f %s\n%!" n (ms online_total) (ms offline_total)
        (mib off_bytes)
        (match List.assoc_opt n paper with
        | Some (a, b) -> Printf.sprintf "%.0f / %.0f" a b
        | None -> "-");
      (n, outcome, off, on, online_total, offline_total))
    ns

(* ---------- Figure 4 (left): log storage vs authentications ---------- *)

let fig4_left ~fast () =
  header "Figure 4 (left): per-client log storage as presignatures are consumed";
  (* validate the storage model against the real log service at small scale *)
  let log = Log_service.create ~rand_bytes:rand () in
  let client = Client.create ~client_id:"bench" ~account_password:"pw" ~log ~rand_bytes:rand () in
  Client.enroll ~presignature_count:4 client;
  let rp = Relying_party.create ~name:"rp" ~rand_bytes:rand () in
  let pk = Client.register_fido2 client ~rp_name:"rp" in
  Relying_party.fido2_register rp ~username:"u" ~pk;
  let st0 = Log_service.storage log ~client_id:"bench" in
  let chal = Relying_party.fido2_challenge rp ~username:"u" in
  ignore (Client.authenticate_fido2 client ~rp_name:"rp" ~challenge:chal);
  let st1 = Log_service.storage log ~client_id:"bench" in
  let record_bytes = st1.Log_service.record_bytes - st0.Log_service.record_bytes in
  let presig_delta = st0.Log_service.presig_bytes - st1.Log_service.presig_bytes in
  Printf.printf
    "measured: presignature %d B each (paper: 192 B), auth record %d B (paper: 104 B)\n"
    presig_delta record_bytes;
  let presigs = if fast then 1_000 else 10_000 in
  Printf.printf "%-10s %-16s %-16s %s\n" "auths" "presig(MiB)" "records(MiB)" "total(MiB)";
  List.iter
    (fun frac ->
      let a = presigs * frac / 10 in
      let pres = 16 + ((presigs - a) * Two_party_ecdsa.log_presig_bytes) in
      let recs = a * record_bytes in
      Printf.printf "%-10d %-16.3f %-16.3f %.3f\n" a (mib pres) (mib recs) (mib (pres + recs)))
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  Printf.printf "(10K presignatures = %.2f MiB at the log; paper: 1.83 MiB)\n"
    (mib (16 + (10_000 * Two_party_ecdsa.log_presig_bytes)))

(* ---------- per-auth log costs, Figure 4 (right) and Table 6 ---------- *)

type method_cost = {
  name : string;
  online_ms : float;
  total_ms : float;
  online_comm : int;
  total_comm : int;
  record_bytes : int;
  per_auth : Pricing.per_auth;
}

let measure_fido2 () =
  let witness, public_output = fido2_statement () in
  let circuit = Lazy.force Statements.fido2_circuit in
  let proof, prove_s =
    timed (fun () -> Zkboo.prove ~domains:4 ~circuit ~witness ~statement_tag:"bench" ~rand_bytes:rand ())
  in
  let ok, verify_1core_s =
    timed (fun () -> Zkboo.verify ~domains:1 ~circuit ~public_output ~statement_tag:"bench" proof)
  in
  assert ok;
  let sign_s, sign_bytes = run_signing_once () in
  let proof_bytes = Zkboo.size_bytes proof in
  let total_comm = proof_bytes + 140 + sign_bytes in
  let net_s = Netsim.transfer_time net ~bytes:total_comm ~rounds:3 in
  {
    name = "FIDO2";
    online_ms = ms (prove_s +. verify_1core_s +. sign_s +. net_s);
    total_ms = ms (prove_s +. verify_1core_s +. sign_s +. net_s);
    online_comm = total_comm;
    total_comm;
    record_bytes = 8 + 12 + 32 + 64;
    per_auth =
      {
        Pricing.log_core_seconds = verify_1core_s +. (sign_s /. 2.);
        egress_bytes = 96 + 32 + 112 + 80 (* log's signing messages *);
      };
  }

let measure_totp () =
  let outcome, off, on = totp_point 20 in
  let t = outcome.Totp_protocol.timings in
  let on_bytes = on.Channel.up + on.Channel.down in
  let off_bytes = off.Channel.up + off.Channel.down in
  let online_net = Netsim.transfer_time net ~bytes:on_bytes ~rounds:2 in
  let total_net = Netsim.transfer_time net ~bytes:(on_bytes + off_bytes) ~rounds:3 in
  {
    name = "TOTP (n=20)";
    online_ms = ms (t.Larch_mpc.Yao.online_seconds +. online_net);
    total_ms =
      ms (t.Larch_mpc.Yao.online_seconds +. t.Larch_mpc.Yao.offline_seconds +. total_net);
    online_comm = on_bytes;
    total_comm = on_bytes + off_bytes;
    record_bytes = 8 + 12 + 16 + 64;
    per_auth =
      {
        Pricing.log_core_seconds = t.Larch_mpc.Yao.evaluator_seconds;
        egress_bytes = off.Channel.down + on.Channel.down;
      };
  }

let measure_password () =
  let n = 128 in
  let x, x_pub, log_sk, log_pub, ids = password_world n in
  let (r, req), client_s =
    timed (fun () -> Password_protocol.client_auth ~idx:7 ~x ~ids ~rand_bytes:rand)
  in
  let y_opt, log_s = timed (fun () -> Password_protocol.log_auth ~log_sk ~client_pub:x_pub ~ids req) in
  let y = Option.get y_opt in
  let k_id = Point.mul_base (Scalar.random_nonzero ~rand_bytes:rand) in
  let _pw, finish_s = timed (fun () -> Password_protocol.finish_auth ~x ~log_pub ~r ~k_id ~y) in
  let up = String.length (Password_protocol.encode_auth_request req) in
  let down = 65 + 98 in
  let net_s = Netsim.transfer_time net ~bytes:(up + down) ~rounds:1 in
  {
    name = "Password (n=128)";
    online_ms = ms (client_s +. log_s +. finish_s +. net_s);
    total_ms = ms (client_s +. log_s +. finish_s +. net_s);
    online_comm = up + down;
    total_comm = up + down;
    record_bytes = 8 + 130;
    per_auth = { Pricing.log_core_seconds = log_s; egress_bytes = down };
  }

let fig4_right ~methods () =
  header "Figure 4 (right): minimum deployment cost vs authentications (log-log)";
  Printf.printf "%-12s" "auths";
  List.iter (fun m -> Printf.printf " %-18s" m.name) methods;
  print_newline ();
  List.iter
    (fun auths ->
      Printf.printf "%-12.0e" auths;
      List.iter
        (fun m ->
          let c = Pricing.cost_of m.per_auth ~auths in
          Printf.printf " $%-17.2f" c.Pricing.min_usd)
        methods;
      print_newline ())
    [ 1e3; 1e4; 1e5; 1e6; 1e7 ]

let table6 ~methods () =
  header "Table 6: larch costs by authentication method";
  let paper =
    [
      ("FIDO2", ("150 ms", "150 ms", "1.73 MiB", "1.73 MiB", "104 B", "6.18", "$19.19", "$38.37"));
      ("TOTP (n=20)", ("91 ms", "1.32 s", "201 KiB", "65 MiB", "88 B", "0.73", "$18,086", "$32,588"));
      ( "Password (n=128)",
        ("74 ms", "74 ms", "3.25 KiB", "3.25 KiB", "138 B", "47.62", "$2.48", "$4.96") );
    ]
  in
  List.iter
    (fun m ->
      let p_online, p_total, p_ocomm, p_tcomm, p_rec, p_tput, p_min, p_max =
        List.assoc m.name paper
      in
      let c10m = Pricing.cost_of m.per_auth ~auths:1e7 in
      Printf.printf "\n-- %s --\n" m.name;
      Printf.printf "  %-24s %-18s (paper: %s)\n" "online auth time" (Printf.sprintf "%.0f ms" m.online_ms) p_online;
      Printf.printf "  %-24s %-18s (paper: %s)\n" "total auth time" (Printf.sprintf "%.0f ms" m.total_ms) p_total;
      let human b =
        if b >= 1024 * 1024 then Printf.sprintf "%.2f MiB" (mib b)
        else Printf.sprintf "%.2f KiB" (kib b)
      in
      Printf.printf "  %-24s %-18s (paper: %s)\n" "online auth comm" (human m.online_comm) p_ocomm;
      Printf.printf "  %-24s %-18s (paper: %s)\n" "total auth comm" (human m.total_comm) p_tcomm;
      Printf.printf "  %-24s %-18s (paper: %s)\n" "auth record" (Printf.sprintf "%d B" m.record_bytes) p_rec;
      Printf.printf "  %-24s %-18s (paper: %s)\n" "log auths/core/s"
        (Printf.sprintf "%.2f" (Pricing.auths_per_core_second m.per_auth)) p_tput;
      Printf.printf "  %-24s %-18s (paper: %s)\n" "10M auths min cost"
        (Printf.sprintf "$%.2f" c10m.Pricing.min_usd) p_min;
      Printf.printf "  %-24s %-18s (paper: %s)\n" "10M auths max cost"
        (Printf.sprintf "$%.2f" c10m.Pricing.max_usd) p_max)
    methods;
  Printf.printf "\n  log presignature: %d B each (paper: 192 B)\n" Two_party_ecdsa.log_presig_bytes;
  Printf.printf
    "  (for comparison, the paper notes Argon2 should take ~0.5 s on 2 cores per password hash)\n"

(* ---------- §8.1.1 in-text: enrollment presignature generation ---------- *)

let enroll_bench ~fast () =
  header "Enrollment: presignature batch generation (paper: 10K in 885 ms, 1.8 MiB)";
  let count = if fast then 500 else 10_000 in
  let (_, lbatch), dt =
    timed (fun () -> Two_party_ecdsa.presign_batch ~count ~rand_bytes:rand)
  in
  let bytes = Two_party_ecdsa.log_batch_wire_bytes lbatch in
  Printf.printf "%d presignatures in %.0f ms (%.2f ms each); %.2f MiB shipped to the log\n" count
    (ms dt)
    (ms dt /. float_of_int count)
    (mib bytes);
  if fast then
    Printf.printf "extrapolated to 10K: %.0f ms, %.2f MiB\n"
      (ms dt /. float_of_int count *. 10_000.)
      (mib (16 + (10_000 * Two_party_ecdsa.log_presig_bytes)))

(* ---------- §8.1.1 comparison: two-party ECDSA protocols ---------- *)

let ecdsa_compare () =
  header "Two-party ECDSA comparison (§8.1.1)";
  (* average several runs *)
  let n = 10 in
  let total_t = ref 0. and bytes = ref 0 in
  for _ = 1 to n do
    let dt, b = run_signing_once () in
    total_t := !total_t +. dt;
    bytes := b
  done;
  let ours_ms = ms (!total_t /. float_of_int n) in
  let net_ms = ms (Netsim.transfer_time net ~bytes:!bytes ~rounds:3) in
  Printf.printf "%-34s %-16s %-14s %s\n" "protocol" "compute(ms)" "network(ms)" "comm/signature";
  Printf.printf "%-34s %-16.1f %-14.0f %.2f KiB (+%d B log presignature)\n"
    "larch presignature 2P-ECDSA (ours)" ours_ms net_ms (kib !bytes)
    Two_party_ecdsa.log_presig_bytes;
  Printf.printf "%-34s %-16s %-14s %s\n" "Xue et al. Paillier (paper-reported)" "226" "~60"
    "6.3 KiB";
  Printf.printf "%-34s %-16s %-14s %s\n" "Xue et al. OT (paper-reported)" "2.8" "~60" "90.9 KiB";
  Printf.printf
    "(paper's own signing: 0.5 KiB per signature, 61 ms mostly network; ours matches that shape)\n"

(* ---------- ablations ---------- *)

let ablate_schnorr () =
  header "Ablation: presignature ECDSA vs two-party Schnorr (§3.3/§9 future FIDO)";
  let ecdsa_ms, ecdsa_bytes = run_signing_once () in
  let x = Scalar.random_nonzero ~rand_bytes:rand and y = Scalar.random_nonzero ~rand_bytes:rand in
  let pk = Point.mul_base (Scalar.add x y) in
  let digest = Larch_hash.Sha256.digest "bench" in
  let (), schnorr_s =
    timed (fun () ->
        let lst, lr1 = Schnorr_signing.log_round1 ~rand_bytes:rand in
        let cst, cr = Schnorr_signing.client_round ~commitment:lr1 ~rand_bytes:rand in
        let lr2 = Schnorr_signing.log_round2 lst ~client:cr ~sk0:x ~digest in
        match Schnorr_signing.client_finish cst ~log_msg:lr2 ~sk1:y ~digest with
        | Some sg -> assert (Schnorr_signing.verify ~pk ~digest sg)
        | None -> assert false)
  in
  (* amortized presignature generation cost per ECDSA signature *)
  let (_, _lb), batch_dt = timed (fun () -> Two_party_ecdsa.presign_batch ~count:100 ~rand_bytes:rand) in
  let presig_ms = ms batch_dt /. 100. in
  Printf.printf "%-34s %-14s %-16s %s\n" "protocol" "online(ms)" "presig(ms/sig)" "comm";
  Printf.printf "%-34s %-14.2f %-16.2f %d B (+192 B presig)\n" "2P-ECDSA with presignatures"
    (ms ecdsa_ms) presig_ms ecdsa_bytes;
  Printf.printf "%-34s %-14.2f %-16s %d B\n" "2P-Schnorr (no preprocessing)" (ms schnorr_s) "0"
    Schnorr_signing.wire_bytes;
  Printf.printf
    "(Schnorr needs no presignature state at the log — the simplification §9 hopes FIDO enables)\n"

let ablate_pack () =
  header "Ablation: ZKBoo repetition packing (the paper's \"SIMD bitwidth 32\" optimization)";
  let witness, _ = fido2_statement () in
  let circuit = Lazy.force Statements.fido2_circuit in
  Printf.printf "%-18s %-14s\n" "lane width" "prove(ms)";
  List.iter
    (fun w ->
      let _, dt =
        timed (fun () ->
            ignore
              (Zkboo.prove ~lane_width:w ~circuit ~witness ~statement_tag:"bench"
                 ~rand_bytes:rand ()))
      in
      Printf.printf "%-18d %-14.0f\n%!" w (ms dt))
    [ 1; 8; 62 ]

(* ---------- Groth16 note (§8.2) ---------- *)

let groth16_note () =
  header "NIZK choice (§8.2): ZKBoo vs Groth16 on the larch FIDO2 circuit";
  print_endline
    "Groth16 requires a pairing curve and trusted setup and is not implemented here;\n\
     the paper reports (ZoKrates/libsnark, BN-128, SHA-256 portion only):\n\
     prove 4.07 s, verify 8 ms, proof 4.26 KiB, client setup storage 19.86 MiB,\n\
     log per-client storage 9.2 MiB.  Compare the measured ZKBoo row in fig3-left:\n\
     fast proving / larger proofs vs slow proving / tiny proofs — the tradeoff the\n\
     paper discusses for raising log throughput."

(* ---------- recovery: WAL replay vs snapshot-bounded restart ---------- *)

(* Not a paper figure: the storage layer's own tentpole number.  A log
   that recovers from the WAL alone replays every operation since boot;
   checkpointing bounds that replay to the records since the last
   snapshot.  This sweep measures both paths over the same state. *)

module Disk = Larch_store.Disk
module Store = Larch_store.Store

let recovery_bench ~fast () =
  header "recovery time: full WAL replay vs snapshot + empty tail";
  Printf.printf "%8s  %10s  %10s  %12s  %12s  %8s\n" "records" "wal KiB" "snap KiB"
    "replay ms" "snapshot ms" "speedup";
  let sizes = if fast then [ 200; 800 ] else [ 250; 1_000; 4_000 ] in
  List.iter
    (fun n ->
      let disk = Disk.create ~profile:Disk.clean_profile () in
      let store = Store.open_ ~disk ~dir:"log" () in
      let persist = Log_persist.of_store ~checkpoint_every:max_int store in
      let clients = Hashtbl.create 4 in
      let commit op =
        let e = { Log_state.cid = "bench"; op } in
        Log_state.apply clients e;
        Log_persist.append persist e
      in
      commit (Log_state.Enroll { token = "pw" });
      let k, client_pub = Password_protocol.log_gen ~rand_bytes:rand in
      commit (Log_state.Enroll_pw { client_pub; k });
      for i = 1 to n - 2 do
        commit (Log_state.Pw_register { id = Printf.sprintf "rp%06d.example" i })
      done;
      Log_persist.sync persist clients;
      let wal_bytes = Disk.size disk ~file:(Store.wal_file "log" 0) in
      let recover_once img =
        let d = Disk.restore img in
        let (c, _), dt =
          timed (fun () ->
              let s = Store.open_ ~disk:d ~dir:"log" () in
              let p = Log_persist.of_store s in
              (Log_persist.recover p, s))
        in
        assert (Hashtbl.length c = 1);
        dt
      in
      let best f = List.fold_left min (f ()) [ f (); f () ] in
      let img_wal = Disk.dump disk in
      let wal_ms = best (fun () -> recover_once img_wal) in
      Store.checkpoint store (Log_codec.encode_clients clients);
      let snap_bytes = Disk.size disk ~file:"log/snap.000001" in
      let img_snap = Disk.dump disk in
      let snap_ms = best (fun () -> recover_once img_snap) in
      Printf.printf "%8d  %10.1f  %10.1f  %12.2f  %12.2f  %7.1fx\n%!" n
        (kib wal_bytes) (kib snap_bytes) (ms wal_ms) (ms snap_ms)
        (wal_ms /. snap_ms))
    sizes;
  print_endline
    "(snapshot recovery is O(state); WAL replay is O(history) — the gap is why\n\
     the store checkpoints every 128 records by default)"

(* ---------- swarm: concurrent session throughput on the runtime ---------- *)

(* Not a paper figure: the fiber runtime's tentpole number.  N
   concurrent password sessions (the cheapest protocol — the point is
   scheduler + admission-loop overhead, not ZKBoo) each run a full
   enroll → register → authenticate against one log behind the
   Log_async admission loop, over the paper's 20 ms RTT link.  Reported:
   wall-clock sessions/sec, simulated (virtual) elapsed time, and how
   many requests the admission loop absorbed in multi-request batches. *)

module Runtime = Larch_runtime.Runtime

let swarm_bench ~fast ?json () =
  header "swarm: concurrent password sessions on the fiber runtime";
  Printf.printf "%8s  %9s  %12s  %11s  %9s  %13s\n" "fibers" "wall s" "sessions/s"
    "virtual s" "batches" "batched reqs";
  let counts = if fast then [ 1; 16; 64 ] else [ 1; 16; 256; 1024 ] in
  let base = 1_700_000_000. in
  let rows =
    List.map
      (fun n ->
        Larch_util.Clock.set base;
        let drbg = Larch_hash.Drbg.create ~entropy:(Printf.sprintf "swarm-bench-%d" n) in
        let rnd k = Larch_hash.Drbg.generate drbg k in
        let log = Log_service.create ~rand_bytes:rnd () in
        let la = Log_async.create log in
        let (), wall =
          timed (fun () ->
              Runtime.run ~seed:"bench" (fun () ->
                  Log_async.start la;
                  let fibers =
                    List.init n (fun i ->
                        Runtime.spawn (fun () ->
                            let cid = Printf.sprintf "c%04d" i in
                            let client =
                              Client.create ~net ~client_id:cid ~account_password:"pw"
                                ~log ~rand_bytes:rnd ()
                            in
                            Log_async.attach la ~client_id:cid client.Client.transport;
                            Client.enroll ~presignature_count:1 client;
                            ignore (Client.register_password client ~rp_name:"rp");
                            ignore (Client.authenticate_password client ~rp_name:"rp")))
                  in
                  List.iter Runtime.await fibers;
                  Log_async.stop la))
        in
        let virtual_s = Larch_util.Clock.now () -. base in
        Larch_util.Clock.use_real_time ();
        let rate = float_of_int n /. wall in
        Printf.printf "%8d  %9.2f  %12.1f  %11.2f  %9d  %13d\n%!" n wall rate virtual_s
          (Log_async.batches la) (Log_async.batched_requests la);
        (n, wall, rate, virtual_s, Log_async.batches la, Log_async.batched_requests la))
      counts
  in
  print_endline
    "(virtual seconds stay near-constant while fibers scale: sessions overlap on the\n\
     simulated link, and same-tick arrivals drain as one admission batch)";
  match json with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc "{\n  \"pr\": \"effects-based fiber runtime: concurrent sessions over the simulated link\",\n";
      output_string oc "  \"units\": \"wall-clock seconds / sessions per second\",\n";
      output_string oc "  \"command\": \"dune exec bench/main.exe -- -e swarm --json FILE\",\n";
      output_string oc
        "  \"note\": \"password-only sessions (scheduler + admission overhead, not ZKBoo); \
         full enroll+register+auth per fiber; one shared log behind the Log_async \
         admission loop; 20 ms RTT simulated link\",\n";
      output_string oc "  \"benchmarks\": {\n";
      List.iteri
        (fun i (n, wall, rate, virtual_s, batches, batched) ->
          Printf.fprintf oc
            "    \"swarm/%d-fibers\": {\n      \"wall_s\": %.3f,\n      \"sessions_per_s\": %.1f,\n      \"virtual_s\": %.3f,\n      \"admission_batches\": %d,\n      \"batched_requests\": %d\n    }%s\n"
            n wall rate virtual_s batches batched
            (if i = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "  }\n}\n";
      close_out oc;
      Printf.printf "swarm rows written to %s\n%!" file

(* ---------- overload: goodput vs offered load under admission control ----- *)

(* Not a paper figure: the overload-robustness tentpole number.  The
   deterministic Overload scenario at 1x/2x/4x the log's service
   capacity — goodput (completed auths per simulated second) must hold
   as the offered load quadruples, with the excess shed as typed
   Overloaded replies instead of collapsing the queue. *)

let overload_bench ~fast ?json () =
  header "overload: goodput vs offered load under bounded admission";
  Printf.printf "%6s  %8s  %10s  %6s  %12s  %10s  %9s  %8s\n" "mult" "offered" "completed"
    "shed" "typed sheds" "goodput/s" "brownout" "wall s";
  let mults = if fast then [ 1; 4 ] else [ 1; 2; 4 ] in
  let rows =
    List.map
      (fun mult ->
        let w, wall = timed (fun () -> Overload.run ~seed:"bench" ~mult) in
        Printf.printf "%5dx  %8d  %10d  %6d  %12d  %10.1f  %9d  %8.2f\n%!" mult
          w.Overload.offered w.Overload.completed w.Overload.admission.Log_async.shed_total
          w.Overload.shed_attempts w.Overload.goodput
          w.Overload.admission.Log_async.brownout_entries wall;
        (w, wall))
      mults
  in
  let base = fst (List.hd rows) in
  let top = fst (List.nth rows (List.length rows - 1)) in
  Printf.printf
    "(goodput at %dx holds %.0f%% of 1x: sheds cost no service time, so the loop keeps\n\
     serving at capacity while the excess bounces off the admission door)\n"
    top.Overload.mult
    (100. *. top.Overload.goodput /. base.Overload.goodput);
  match json with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc
        "{\n  \"pr\": \"overload robustness: bounded admission, load shedding, brownout\",\n";
      output_string oc "  \"units\": \"completed authentications per simulated second\",\n";
      output_string oc "  \"command\": \"dune exec bench/main.exe -- -e overload --json FILE\",\n";
      output_string oc
        "  \"note\": \"deterministic Overload scenario (seed=bench): 20*mult password \
         clients + 2 FIDO2 probes against one store-backed log at 100 req/s service \
         capacity; excess load shed with typed Overloaded replies; brownout defers \
         attestation proofs under sustained pressure\",\n";
      output_string oc "  \"benchmarks\": {\n";
      List.iteri
        (fun i (w, wall) ->
          Printf.fprintf oc
            "    \"overload/%dx\": {\n      \"offered\": %d,\n      \"completed\": %d,\n      \
             \"shed\": %d,\n      \"typed_shed_attempts\": %d,\n      \"goodput_per_s\": %.1f,\n      \
             \"goodput_vs_1x\": %.3f,\n      \"brownout_entries\": %d,\n      \
             \"audits_ok\": %d,\n      \"fsck_clean\": %b,\n      \"wall_s\": %.3f\n    }%s\n"
            w.Overload.mult w.Overload.offered w.Overload.completed
            w.Overload.admission.Log_async.shed_total w.Overload.shed_attempts
            w.Overload.goodput
            (w.Overload.goodput /. base.Overload.goodput)
            w.Overload.admission.Log_async.brownout_entries w.Overload.audits_ok
            w.Overload.fsck_clean wall
            (if i = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "  }\n}\n";
      close_out oc;
      Printf.printf "overload rows written to %s\n%!" file
