(* Bechamel microbenchmarks for the substrate primitives whose costs
   dominate the macro experiments.

   [run ?quota ?json ()] optionally dumps every estimate to [json] as a flat
   {name: ns_per_op} object so perf trajectories (BENCH_*.json) can be
   regenerated mechanically instead of transcribed by hand. *)

open Bechamel
open Toolkit

let rand = Larch_hash.Drbg.of_seed "micro"

let tests () =
  let msg64 = rand 64 in
  let fe_a = Larch_ec.P256.Fe.random ~rand_bytes:rand in
  let fe_b = Larch_ec.P256.Fe.random ~rand_bytes:rand in
  let scalar = Larch_ec.P256.Scalar.random_nonzero ~rand_bytes:rand in
  let scalar2 = Larch_ec.P256.Scalar.random_nonzero ~rand_bytes:rand in
  let p = Larch_ec.Point.mul_base scalar in
  let q = Larch_ec.Point.double p in
  let sk, pk = Larch_ec.Ecdsa.keygen ~rand_bytes:rand in
  let sg = Larch_ec.Ecdsa.sign ~sk "m" in
  let key = rand 32 and nonce = rand 12 in
  let aes_ks = Larch_cipher.Aes.expand_key (rand 16) in
  let block16 = rand 16 in
  [
    Test.make ~name:"sha256/64B" (Staged.stage (fun () -> Larch_hash.Sha256.digest msg64));
    Test.make ~name:"hmac-sha256/64B" (Staged.stage (fun () -> Larch_hash.Hmac.sha256 ~key msg64));
    Test.make ~name:"chacha20/block" (Staged.stage (fun () -> Larch_cipher.Chacha20.block ~key ~nonce ~counter:0));
    Test.make ~name:"aes128/block" (Staged.stage (fun () -> Larch_cipher.Aes.encrypt_block aes_ks block16));
    Test.make ~name:"p256/fe-mul" (Staged.stage (fun () -> Larch_ec.P256.Fe.mul fe_a fe_b));
    Test.make ~name:"p256/fe-sqr" (Staged.stage (fun () -> Larch_ec.P256.Fe.sqr fe_a));
    Test.make ~name:"p256/point-add" (Staged.stage (fun () -> Larch_ec.Point.add p q));
    Test.make ~name:"p256/point-mul" (Staged.stage (fun () -> Larch_ec.Point.mul scalar2 p));
    Test.make ~name:"p256/mul-base" (Staged.stage (fun () -> Larch_ec.Point.mul_base scalar));
    Test.make ~name:"ecdsa/sign" (Staged.stage (fun () -> Larch_ec.Ecdsa.sign ~sk:scalar "m"));
    Test.make ~name:"ecdsa/verify" (Staged.stage (fun () -> Larch_ec.Ecdsa.verify ~pk "m" sg));
  ]

(* {"estimates": {name: ns_per_op}, "metrics": <registry snapshot>} — the
   counters ride along so BENCH_*.json files capture what the run actually
   did (ops, bytes, span histograms), not just how fast. *)
let dump_json ~file rows =
  let oc = open_out file in
  output_string oc "{\n  \"estimates\": {\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    %S: %.1f%s\n" name ns (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  },\n  \"metrics\": ";
  output_string oc (Larch_obs.Export.json Larch_obs.Metrics.default);
  output_string oc "\n}\n";
  close_out oc

let run ?(quota = 0.5) ?json () =
  Printf.printf "\n=== microbenchmarks (bechamel, ns/op) ===\n%!";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  let estimates =
    List.filter_map
      (fun (name, v) ->
        match Analyze.OLS.estimates v with Some [ est ] -> Some (name, est) | _ -> None)
      (List.sort compare rows)
  in
  List.iter (fun (name, est) -> Printf.printf "%-28s %12.1f ns/op\n" name est) estimates;
  match json with
  | None -> ()
  | Some file ->
      dump_json ~file estimates;
      Printf.printf "micro estimates written to %s\n" file
