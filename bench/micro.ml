(* Bechamel microbenchmarks for the substrate primitives whose costs
   dominate the macro experiments.

   [run ?quota ?json ()] optionally dumps every estimate to [json] as a flat
   {name: ns_per_op} object so perf trajectories (BENCH_*.json) can be
   regenerated mechanically instead of transcribed by hand.

   [run_zkboo ?quota ?json ()] benchmarks the ZKBoo prover end to end and
   per phase (shares / commit / challenge / respond) on the one-compression
   SHA-256 statement, and emits the BENCH_pr7.json before/after schema
   directly when [json] is given. *)

open Bechamel
open Toolkit

let rand = Larch_hash.Drbg.of_seed "micro"

let tests () =
  let msg64 = rand 64 in
  let fe_a = Larch_ec.P256.Fe.random ~rand_bytes:rand in
  let fe_b = Larch_ec.P256.Fe.random ~rand_bytes:rand in
  let scalar = Larch_ec.P256.Scalar.random_nonzero ~rand_bytes:rand in
  let scalar2 = Larch_ec.P256.Scalar.random_nonzero ~rand_bytes:rand in
  let p = Larch_ec.Point.mul_base scalar in
  let q = Larch_ec.Point.double p in
  let sk, pk = Larch_ec.Ecdsa.keygen ~rand_bytes:rand in
  let sg = Larch_ec.Ecdsa.sign ~sk "m" in
  let key = rand 32 and nonce = rand 12 in
  let aes_ks = Larch_cipher.Aes.expand_key (rand 16) in
  let block16 = rand 16 in
  [
    Test.make ~name:"sha256/64B" (Staged.stage (fun () -> Larch_hash.Sha256.digest msg64));
    Test.make ~name:"hmac-sha256/64B" (Staged.stage (fun () -> Larch_hash.Hmac.sha256 ~key msg64));
    Test.make ~name:"chacha20/block" (Staged.stage (fun () -> Larch_cipher.Chacha20.block ~key ~nonce ~counter:0));
    Test.make ~name:"aes128/block" (Staged.stage (fun () -> Larch_cipher.Aes.encrypt_block aes_ks block16));
    Test.make ~name:"p256/fe-mul" (Staged.stage (fun () -> Larch_ec.P256.Fe.mul fe_a fe_b));
    Test.make ~name:"p256/fe-sqr" (Staged.stage (fun () -> Larch_ec.P256.Fe.sqr fe_a));
    Test.make ~name:"p256/point-add" (Staged.stage (fun () -> Larch_ec.Point.add p q));
    Test.make ~name:"p256/point-mul" (Staged.stage (fun () -> Larch_ec.Point.mul scalar2 p));
    Test.make ~name:"p256/mul-base" (Staged.stage (fun () -> Larch_ec.Point.mul_base scalar));
    Test.make ~name:"ecdsa/sign" (Staged.stage (fun () -> Larch_ec.Ecdsa.sign ~sk:scalar "m"));
    Test.make ~name:"ecdsa/verify" (Staged.stage (fun () -> Larch_ec.Ecdsa.verify ~pk "m" sg));
  ]

(* --- the Merkle transparency layer ---

   Tree maintenance and proof verification at two history depths, plus
   the client-side audit cost before (hash-chain scan over the whole
   history, linear) and after (consistency + inclusion for one new
   record, logarithmic) the transparency layer.  The audit rows use real
   [Record] encodings so the leaf sizes match production. *)

module Merkle = Larch_merkle.Merkle

let mk_record i : Larch_core.Record.t =
  {
    Larch_core.Record.time = 1_700_000_000. +. float_of_int i;
    ip = "192.0.2.7";
    method_ = Larch_core.Types.Password;
    payload =
      Larch_core.Record.Symmetric
        { nonce = rand 12; ct = rand 32; signature = rand 64 };
  }

let merkle_tests () =
  let leaves n = List.init n (fun i -> Larch_core.Record.encode (mk_record i)) in
  let l1e3 = leaves 1_000 and l1e5 = leaves 100_000 in
  let t1e3 = Merkle.Tree.of_leaves l1e3 and t1e5 = Merkle.Tree.of_leaves l1e5 in
  let incl tree n =
    let root = Merkle.Tree.root tree in
    let index = n / 2 in
    let leaf = List.nth (if n = 1_000 then l1e3 else l1e5) index in
    let proof = Merkle.Tree.inclusion tree ~index in
    fun () -> Merkle.verify_inclusion ~root ~size:n ~index ~leaf ~proof
  in
  let cons tree n =
    let old_size = (n / 2) + 1 in
    let old_root = Merkle.Tree.root_at tree old_size in
    let proof = Merkle.Tree.consistency tree ~old_size ~new_size:n in
    fun () ->
      Merkle.verify_consistency ~old_root ~old_size ~new_root:(Merkle.Tree.root tree) ~new_size:n
        ~proof
  in
  (* the audit delta: n records verified yesterday, one new record today *)
  let audit_delta tree n =
    let old_size = n - 1 in
    let old_root = Merkle.Tree.root_at tree old_size in
    let root = Merkle.Tree.root tree in
    let leaf = List.nth (if n = 1_000 then l1e3 else l1e5) old_size in
    let cproof = Merkle.Tree.consistency tree ~old_size ~new_size:n in
    let iproof = Merkle.Tree.inclusion tree ~index:old_size in
    fun () ->
      Merkle.verify_consistency ~old_root ~old_size ~new_root:root ~new_size:n ~proof:cproof
      && Merkle.verify_inclusion ~root ~size:n ~index:old_size ~leaf ~proof:iproof
  in
  let r1e3 = List.init 1_000 mk_record and r1e5 = List.init 100_000 mk_record in
  [
    Test.make ~name:"merkle/append-1e3"
      (Staged.stage (fun () -> Merkle.Tree.of_leaves l1e3));
    Test.make ~name:"merkle/append-1e5"
      (Staged.stage (fun () -> Merkle.Tree.of_leaves l1e5));
    Test.make ~name:"merkle/inclusion-verify-1e3" (Staged.stage (incl t1e3 1_000));
    Test.make ~name:"merkle/inclusion-verify-1e5" (Staged.stage (incl t1e5 100_000));
    Test.make ~name:"merkle/consistency-verify-1e3" (Staged.stage (cons t1e3 1_000));
    Test.make ~name:"merkle/consistency-verify-1e5" (Staged.stage (cons t1e5 100_000));
    (* before: the legacy audit re-hashes the whole history *)
    Test.make ~name:"audit/chain-scan-1e3"
      (Staged.stage (fun () -> Larch_core.Log_state.chain_over r1e3));
    Test.make ~name:"audit/chain-scan-1e5"
      (Staged.stage (fun () -> Larch_core.Log_state.chain_over r1e5));
    (* after: consistency old→new plus inclusion of the one new record *)
    Test.make ~name:"audit/merkle-delta-1e3" (Staged.stage (audit_delta t1e3 1_000));
    Test.make ~name:"audit/merkle-delta-1e5" (Staged.stage (audit_delta t1e5 100_000));
  ]

(* --- ZKBoo prove/verify, end to end and split by phase ---

   The statement is one SHA-256 compression (the hot primitive of the
   FIDO2 circuit) at the paper's 137 repetitions, single-domain so the
   rows measure the packed evaluator itself.  Phase rows reuse one fixed
   (prepared, committed, challenges) pipeline state, so e.g.
   zkboo/prove-commit times exactly the evaluate+commit pass. *)

module Zkboo = Larch_zkboo.Zkboo

let zkboo_tests () =
  let b = Larch_circuit.Builder.create () in
  let msg = Larch_circuit.Builder.inputs b 256 in
  let out = Larch_circuit.Sha256_circuit.hash_fixed b ~msg in
  let circuit = Larch_circuit.Builder.finalize b ~outputs:out in
  let rand = Larch_hash.Drbg.of_seed "micro-zkboo" in
  let witness = Array.init 256 (fun _ -> Char.code (rand 1).[0] land 1 = 1) in
  let public_output = Larch_circuit.Circuit.eval circuit witness in
  let reps = Zkboo.default_reps in
  let tag = "micro" in
  let prand = Larch_hash.Drbg.of_seed "micro-zkboo-prove" in
  let prep = Zkboo.Phases.shares ~reps ~circuit ~witness ~rand_bytes:prand in
  let comm = Zkboo.Phases.commit ~circuit prep in
  let challenges = Zkboo.Phases.challenge ~circuit ~statement_tag:tag prep comm in
  let proof = Zkboo.Phases.respond prep comm challenges in
  [
    Test.make ~name:"zkboo/prove"
      (Staged.stage (fun () ->
           Zkboo.prove ~reps ~circuit ~witness ~statement_tag:tag ~rand_bytes:prand ()));
    Test.make ~name:"zkboo/prove-shares"
      (Staged.stage (fun () -> Zkboo.Phases.shares ~reps ~circuit ~witness ~rand_bytes:prand));
    Test.make ~name:"zkboo/prove-commit"
      (Staged.stage (fun () -> Zkboo.Phases.commit ~circuit prep));
    Test.make ~name:"zkboo/prove-challenge"
      (Staged.stage (fun () -> Zkboo.Phases.challenge ~circuit ~statement_tag:tag prep comm));
    Test.make ~name:"zkboo/prove-respond"
      (Staged.stage (fun () -> Zkboo.Phases.respond prep comm challenges));
    Test.make ~name:"zkboo/verify"
      (Staged.stage (fun () -> Zkboo.verify ~circuit ~public_output ~statement_tag:tag proof));
  ]

(* {"estimates": {name: ns_per_op}, "metrics": <registry snapshot>} — the
   counters ride along so BENCH_*.json files capture what the run actually
   did (ops, bytes, span histograms), not just how fast. *)
let dump_json ~file rows =
  let oc = open_out file in
  output_string oc "{\n  \"estimates\": {\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    %S: %.1f%s\n" name ns (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  },\n  \"metrics\": ";
  output_string oc (Larch_obs.Export.json Larch_obs.Metrics.default);
  output_string oc "\n}\n";
  close_out oc

let estimate ~quota tests =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  let strip name =
    (* drop the bechamel group prefix: "micro sha256/64B" -> "sha256/64B" *)
    match String.index_opt name ' ' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  List.filter_map
    (fun (name, v) ->
      match Analyze.OLS.estimates v with Some [ est ] -> Some (strip name, est) | _ -> None)
    (List.sort compare rows)

let run ?(quota = 0.5) ?json () =
  Printf.printf "\n=== microbenchmarks (bechamel, ns/op) ===\n%!";
  let estimates = estimate ~quota (tests () @ merkle_tests ()) in
  List.iter (fun (name, est) -> Printf.printf "%-28s %12.1f ns/op\n" name est) estimates;
  match json with
  | None -> ()
  | Some file ->
      dump_json ~file estimates;
      Printf.printf "micro estimates written to %s\n" file

(* Pre-PR7 single-core baselines for the ZKBoo rows, measured at commit
   6532da6 (per-phase numbers from the prover's trace spans, since the
   phases only became separately callable in PR7; respond was below the
   span timer's resolution). *)
let zkboo_baseline_ns =
  [
    ("zkboo/prove", 207305765.0);
    ("zkboo/prove-shares", 7670000.0);
    ("zkboo/prove-commit", 192030000.0);
    ("zkboo/prove-challenge", 2340000.0);
    ("zkboo/prove-respond", 5000.0);
    ("zkboo/verify", 110949183.0);
  ]

let dump_pr7_json ~file rows =
  let oc = open_out file in
  output_string oc "{\n";
  output_string oc
    "  \"pr\": \"ZKBoo raw-speed pass: flattened circuit plans, allocation-free tapes, \
     transposed packing, reusable hash contexts, balanced domain batches\",\n";
  Printf.fprintf oc "  \"units\": \"ns/op (bechamel OLS estimate, 2 s quota per benchmark)\",\n";
  Printf.fprintf oc "  \"command\": \"dune exec bench/main.exe -- -e zkboo --json FILE\",\n";
  output_string oc
    "  \"note\": \"statement = one SHA-256 compression (22696 AND gates), 137 reps, 1 domain; \
     baseline = commit 6532da6, per-phase baselines from trace spans; proof bytes are \
     bit-identical before/after (fixed-seed KAT)\",\n";
  output_string oc "  \"benchmarks\": {\n";
  List.iteri
    (fun i (name, after, base) ->
      Printf.fprintf oc
        "    %S: {\n      \"baseline_ns\": %.1f,\n      \"after_ns\": %.1f,\n      \
         \"speedup\": %.2f\n    }%s\n"
        name base after (base /. after)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  }\n}\n";
  close_out oc

let run_zkboo ?(quota = 2.0) ?json () =
  Printf.printf "\n=== zkboo microbenchmarks (bechamel, ns/op, vs pre-PR7 baseline) ===\n%!";
  let estimates = estimate ~quota (zkboo_tests ()) in
  let rows =
    List.map
      (fun (name, after) ->
        match List.assoc_opt name zkboo_baseline_ns with
        | Some base -> (name, after, base)
        | None -> (name, after, after))
      estimates
  in
  List.iter
    (fun (name, after, base) ->
      Printf.printf "%-24s %14.1f ns/op   baseline %14.1f   speedup %5.2fx\n" name after base
        (base /. after))
    rows;
  match json with
  | None -> ()
  | Some file ->
      dump_pr7_json ~file rows;
      Printf.printf "zkboo BENCH rows written to %s\n" file
