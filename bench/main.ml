(* larch benchmark harness: regenerates every table and figure of the
   paper's evaluation (§8).

     dune exec bench/main.exe                 # everything, default sizes
     dune exec bench/main.exe -- --fast       # reduced sweeps (CI-sized)
     dune exec bench/main.exe -- -e fig3-left # one experiment

   Experiments: fig3-left fig3-center fig3-right fig4-left fig4-right fig5
   table6 enroll ecdsa-compare ablate-schnorr ablate-pack groth16 recovery
   micro zkboo swarm overload *)

let all_ids =
  [
    "fig3-left"; "fig3-center"; "fig3-right"; "fig4-left"; "fig4-right"; "fig5"; "table6";
    "enroll"; "ecdsa-compare"; "ablate-schnorr"; "ablate-pack"; "groth16"; "recovery"; "micro";
    "zkboo"; "swarm"; "overload";
  ]

let run_experiments ~fast ~micro_json ~micro_quota ~selected =
  let want id = match selected with [] -> true | l -> List.mem id l in
  let pw_rows = ref None in
  let methods = ref None in
  let get_pw_rows () =
    match !pw_rows with
    | Some r -> r
    | None ->
        let r = Experiments.fig3_center ~fast () in
        pw_rows := Some r;
        r
  in
  let get_methods () =
    match !methods with
    | Some m -> m
    | None ->
        let m =
          [ Experiments.measure_fido2 (); Experiments.measure_totp (); Experiments.measure_password () ]
        in
        methods := Some m;
        m
  in
  if want "fig3-left" then Experiments.fig3_left ~fast ();
  if want "fig3-center" then ignore (get_pw_rows ());
  if want "fig3-right" then ignore (Experiments.fig3_right ~fast ());
  if want "fig4-left" then Experiments.fig4_left ~fast ();
  if want "fig4-right" then Experiments.fig4_right ~methods:(get_methods ()) ();
  if want "fig5" then Experiments.fig5 ~rows:(get_pw_rows ()) ();
  if want "table6" then Experiments.table6 ~methods:(get_methods ()) ();
  if want "enroll" then Experiments.enroll_bench ~fast ();
  if want "ecdsa-compare" then Experiments.ecdsa_compare ();
  if want "ablate-schnorr" then Experiments.ablate_schnorr ();
  if want "ablate-pack" then Experiments.ablate_pack ();
  if want "groth16" then Experiments.groth16_note ();
  if want "recovery" then Experiments.recovery_bench ~fast ();
  if want "micro" then Micro.run ?quota:micro_quota ?json:micro_json ();
  (* zkboo and swarm are opt-in only: multi-second sweeps would dominate
     a default run *)
  if selected <> [] && want "zkboo" then
    Micro.run_zkboo ?quota:micro_quota ?json:micro_json ();
  if selected <> [] && want "swarm" then Experiments.swarm_bench ~fast ?json:micro_json ();
  if selected <> [] && want "overload" then Experiments.overload_bench ~fast ?json:micro_json ()

open Cmdliner

let fast =
  let doc = "Reduced sweep sizes (CI-friendly)." in
  Arg.(value & flag & info [ "fast" ] ~doc)

let experiments =
  let doc = "Run only the named experiment (repeatable). One of: " ^ String.concat ", " all_ids in
  Arg.(value & opt_all string [] & info [ "e"; "experiment" ] ~doc)

let micro_json =
  let doc = "Write the micro benchmark estimates as a flat JSON object to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let micro_quota =
  let doc = "Per-benchmark time quota in seconds for the micro experiment (default 0.5)." in
  Arg.(value & opt (some float) None & info [ "quota" ] ~docv:"SECONDS" ~doc)

let trace_json =
  let doc =
    "Enable tracing for the run and write the span tree as Chrome trace_event JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)

let main fast selected micro_json micro_quota trace_json =
  List.iter
    (fun id ->
      if not (List.mem id all_ids) then begin
        Printf.eprintf "unknown experiment %S; known: %s\n" id (String.concat ", " all_ids);
        exit 2
      end)
    selected;
  Printf.printf
    "larch benchmark harness -- network model: 20 ms RTT, 100 Mbps (as in the paper, sec. 8)\n%!";
  if trace_json <> None then begin
    Larch_obs.Runtime.set_tracing true;
    Larch_obs.Trace.reset ()
  end;
  run_experiments ~fast ~micro_json ~micro_quota ~selected;
  match trace_json with
  | None -> ()
  | Some file -> (
      try
        Larch_obs.Trace.write_chrome_json file;
        Printf.printf "\n%d spans written to %s\n" (Larch_obs.Trace.span_count ()) file
      with Sys_error msg ->
        Printf.eprintf "larch-bench: cannot write trace: %s\n" msg;
        exit 1)

let cmd =
  let doc = "Regenerate the larch paper's evaluation tables and figures" in
  Cmd.v
    (Cmd.info "larch-bench" ~doc)
    Term.(const main $ fast $ experiments $ micro_json $ micro_quota $ trace_json)

let () = exit (Cmd.eval cmd)
