(* Multi-log deployment (§6): split trust across three log services with a
   2-of-3 authentication threshold.  Authentication survives one log
   outage; auditing is guaranteed complete while n - t + 1 = 2 logs are
   reachable.

     dune exec examples/multilog_failover.exe *)

open Larch_core

let () =
  let rand = Larch_hash.Drbg.system () in
  let ml = Multilog.create ~n:3 ~threshold:2 ~rand_bytes:rand () in
  let alice = Multilog.enroll ml ~client_id:"alice" ~account_password:"log password" in
  print_endline "enrolled with 3 logs, threshold 2 (Shamir-shared DH key)";

  let pw = Multilog.register ml alice ~rp_name:"payroll.example.com" in
  Printf.printf "registered payroll.example.com, password %S\n" pw;

  let now () = Unix.gettimeofday () in
  let attempt label =
    match Multilog.authenticate ml alice ~rp_name:"payroll.example.com" ~now:(now ()) with
    | pw' ->
        Printf.printf "%-28s -> authenticated (password %s)\n" label
          (if pw' = pw then "matches" else "MISMATCH!")
    | exception Multilog.Unavailable msg -> Printf.printf "%-28s -> unavailable: %s\n" label msg
  in
  attempt "all logs online";
  Multilog.set_online ml 0 false;
  attempt "log #0 down";
  Multilog.set_online ml 1 false;
  attempt "logs #0 and #1 down";
  Multilog.set_online ml 0 true;
  Multilog.set_online ml 1 true;

  let res = Multilog.audit ml alice in
  Printf.printf "audit with all logs online: %d entries, coverage %s\n"
    (List.length res.Multilog.entries)
    (if res.Multilog.complete then "complete" else "INCOMPLETE");
  Multilog.set_online ml 2 false;
  let res = Multilog.audit ml alice in
  Printf.printf "audit with one log down:    %d entries, coverage %s\n"
    (List.length res.Multilog.entries)
    (if res.Multilog.complete then "complete (n-t+1 reachable)" else "INCOMPLETE");
  Multilog.set_online ml 1 false;
  let res = Multilog.audit ml alice in
  Printf.printf "audit with two logs down:   %d entries, coverage %s\n"
    (List.length res.Multilog.entries)
    (if res.Multilog.complete then "complete" else "incomplete — flagged to the user")
