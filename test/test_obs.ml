(* Observability-layer tests: span nesting across Parallel.map domains,
   histogram percentile accuracy, the log-service event stream's privacy
   guarantee over full protocol flows, the disabled-mode zero-allocation
   contract, channel round-trip accounting, and Chrome JSON validity. *)

module Obs = Larch_obs
module Trace = Larch_obs.Trace
module Metrics = Larch_obs.Metrics
module Events = Larch_obs.Events
module Channel = Larch_net.Channel
open Larch_core

(* substring search, KMP-free: fine for test-sized inputs *)
let contains (hay : string) (needle : string) : bool =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Every test leaves the global toggles off. *)
let with_obs f =
  Obs.Runtime.enable_all ();
  Trace.reset ();
  Events.clear ();
  Metrics.reset Metrics.default;
  Fun.protect ~finally:(fun () -> Obs.Runtime.disable_all ()) f

(* --- tracing --- *)

let span_nesting_parallel () =
  with_obs @@ fun () ->
  (* each task must be slow enough that the spawned domains win a share of
     the work queue before the calling domain drains it *)
  let busy x =
    let acc = ref x in
    for _ = 1 to 2_000_000 do
      acc := (!acc * 7) land 0xFFFFFF
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let results =
    Trace.with_span "outer" (fun () ->
        Trace.add_int "tasks" 16;
        Larch_util.Parallel.map ~domains:4
          (fun x ->
            Trace.with_span "work" (fun () ->
                busy x;
                x * x))
          (Array.init 16 Fun.id))
  in
  Alcotest.(check (array int)) "map results" (Array.init 16 (fun i -> i * i)) results;
  let spans = Trace.spans () in
  let outer = List.find (fun s -> s.Trace.name = "outer") spans in
  let works = List.filter (fun s -> s.Trace.name = "work") spans in
  Alcotest.(check int) "one work span per task" 16 (List.length works);
  (* every work span must sit under the outer span, even though it ran on a
     worker domain: Parallel.map stitches the parent across domains *)
  List.iter
    (fun w ->
      let anc = Trace.ancestors spans w in
      Alcotest.(check bool) "outer is an ancestor" true
        (List.exists (fun a -> a.Trace.id = outer.Trace.id) anc))
    works;
  (* the work really was spread over multiple domains *)
  let domains = List.sort_uniq compare (List.map (fun s -> s.Trace.domain) works) in
  Alcotest.(check bool) "more than one domain" true (List.length domains > 1);
  (* worker spans exist and are direct children of outer *)
  let workers = List.filter (fun s -> s.Trace.name = "parallel.worker") spans in
  Alcotest.(check bool) "worker spans recorded" true (List.length workers >= 2);
  List.iter
    (fun w -> Alcotest.(check int) "worker parent is outer" outer.Trace.id w.Trace.parent)
    workers;
  (* spans () is start-ordered *)
  let starts = List.map (fun s -> s.Trace.start_ns) spans in
  Alcotest.(check bool) "start-ordered" true (List.sort compare starts = starts)

let span_exception_safety () =
  with_obs @@ fun () ->
  (try Trace.with_span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  let spans = Trace.spans () in
  Alcotest.(check int) "span recorded despite raise" 1 (List.length spans);
  Alcotest.(check bool) "duration measured" true
    ((List.hd spans).Trace.dur_ns >= 0L)

(* --- metrics --- *)

let histogram_percentiles () =
  with_obs @@ fun () ->
  let m = Metrics.create () in
  let h = Metrics.histogram m "test.latency" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Metrics.histogram_count h);
  Alcotest.(check (float 0.001)) "sum" 500500.0 (Metrics.histogram_sum h);
  Alcotest.(check (float 0.001)) "mean" 500.5 (Metrics.histogram_mean h);
  (* log2 buckets: estimates are exact to within a factor of 2 *)
  let within q lo hi =
    let v = Metrics.percentile h q in
    if v < lo || v > hi then
      Alcotest.failf "p%.0f = %.1f outside [%g, %g]" (q *. 100.) v lo hi
  in
  within 0.50 250. 1000.;
  within 0.95 475. 1000.;
  within 0.99 495. 1000.;
  (* clamped to the observed range *)
  Alcotest.(check bool) "p100 <= max" true (Metrics.percentile h 1.0 <= 1000.);
  Alcotest.(check bool) "p0 >= min" true (Metrics.percentile h 0.0 >= 1.0)

let counters_and_gauges () =
  with_obs @@ fun () ->
  let m = Metrics.create () in
  let c = Metrics.counter m "test.count" in
  Metrics.inc c;
  Metrics.add c 41;
  Alcotest.(check int) "counter" 42 (Metrics.counter_value c);
  Alcotest.(check bool) "registration idempotent" true (Metrics.counter m "test.count" == c);
  let g = Metrics.gauge m "test.gauge" in
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Metrics.gauge_value g);
  Metrics.reset m;
  Alcotest.(check int) "reset zeroes counters" 0 (Metrics.counter_value c);
  (* the report renders every registered metric *)
  Metrics.add c 7;
  let report = Metrics.report m in
  Alcotest.(check bool) "report mentions counter" true
    (contains report "test.count")

(* --- disabled-mode contract: no allocation, no recording --- *)

let disabled_is_noop () =
  Obs.Runtime.disable_all ();
  Trace.reset ();
  Events.clear ();
  let m = Metrics.create () in
  let c = Metrics.counter m "noop.count" in
  let h = Metrics.histogram m "noop.hist" in
  let f = Fun.id in
  (* warm up so any lazy setup has happened *)
  for _ = 1 to 10 do
    ignore (Trace.with_span "noop" (fun () -> ()));
    Metrics.inc c;
    Metrics.observe h 1.5
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    ignore (f (Trace.with_span "noop" (fun () -> ())));
    Metrics.inc c;
    Metrics.observe h 1.5;
    Events.emit Events.Audit "never recorded"
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check (float 0.0)) "no allocation while disabled" 0.0 allocated;
  Alcotest.(check int) "no spans recorded" 0 (Trace.span_count ());
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.histogram_count h);
  Alcotest.(check int) "no events recorded" 0 (List.length (Events.recent ()))

(* --- channel round trips + metrics export --- *)

let channel_round_trips () =
  let ch = Channel.create ~label:"test" () in
  ignore (Channel.send ch Channel.Client_to_log "request-1");
  ignore (Channel.send ch Channel.Log_to_client "response-1");
  ignore (Channel.send ch Channel.Client_to_log "request-2");
  (* request -> response -> request is exactly 2 round trips: the second
     request opens a round whose response has not yet been paid for *)
  let snap = Channel.snapshot ch in
  Alcotest.(check int) "req/resp/req = 2 RTs" 2 snap.Channel.rts;
  Alcotest.(check int) "messages" 3 snap.Channel.msgs;
  Alcotest.(check int) "bytes up" 18 snap.Channel.up;
  Alcotest.(check int) "bytes down" 10 snap.Channel.down;
  (* completing the pair does not add a round trip *)
  ignore (Channel.send ch Channel.Log_to_client "response-2");
  Alcotest.(check int) "completed pair still 2 RTs" 2 (Channel.snapshot ch).Channel.rts;
  (* observe exports totals even with the runtime toggle off *)
  let m = Metrics.create () in
  Channel.observe ch m;
  Alcotest.(check int) "exported round trips" 2
    (Metrics.counter_value (Metrics.counter m "net.test.round_trips"));
  Alcotest.(check int) "exported bytes up" 18
    (Metrics.counter_value (Metrics.counter m "net.test.bytes_up"));
  (* reset clears everything including the direction memory *)
  Channel.reset ch;
  let z = Channel.snapshot ch in
  Alcotest.(check int) "post-reset up" 0 z.Channel.up;
  Alcotest.(check int) "post-reset rts" 0 z.Channel.rts;
  ignore (Channel.send ch Channel.Log_to_client "x");
  Alcotest.(check int) "fresh round after reset" 1 (Channel.snapshot ch).Channel.rts

(* --- event-stream privacy over the full three-protocol flow --- *)

(* Relying-party identifiers that must never reach an event. *)
let forbidden = [ "github"; "target.example"; "decoy" ]

let event_privacy () =
  with_obs @@ fun () ->
  Larch_util.Clock.set 1_700_000_000.;
  let rand = Larch_hash.Drbg.of_seed "test-obs-privacy" in
  let log = Log_service.create ~rand_bytes:rand () in
  let client =
    Client.create ~client_id:"alice" ~account_password:"hunter2 but longer" ~log
      ~rand_bytes:rand ()
  in
  Client.enroll ~presignature_count:4 client;
  (* FIDO2 against github.com *)
  let rp = Relying_party.create ~name:"github.com" ~rand_bytes:rand () in
  let pk = Client.register_fido2 client ~rp_name:"github.com" in
  Relying_party.fido2_register rp ~username:"alice" ~pk;
  let challenge = Relying_party.fido2_challenge rp ~username:"alice" in
  let assertion = Client.authenticate_fido2 client ~rp_name:"github.com" ~challenge in
  Alcotest.(check bool) "fido2 accepted" true
    (Relying_party.fido2_login rp ~username:"alice" assertion);
  (* TOTP against target.example with a decoy registration *)
  let trp = Relying_party.create ~name:"target.example" ~rand_bytes:rand () in
  let tkey = Relying_party.totp_register trp ~username:"alice" in
  Client.register_totp client ~rp_name:"target.example" ~totp_key:tkey;
  Client.register_totp client ~rp_name:"decoy01.example" ~totp_key:(rand 20);
  let time = 1_700_000_000. in
  let code = Client.authenticate_totp client ~rp_name:"target.example" ~time in
  Alcotest.(check bool) "totp accepted" true
    (Relying_party.totp_login trp ~username:"alice" ~time code);
  (* passwords against target.example with a decoy *)
  let pw = Client.register_password client ~rp_name:"target.example" in
  ignore (Client.register_password client ~rp_name:"decoy02.example");
  let pw' = Client.authenticate_password client ~rp_name:"target.example" in
  Alcotest.(check string) "password stable" pw pw';
  (* audit + revocation emit too *)
  ignore (Client.audit client);
  Client.revoke_all client;
  let events = Events.recent () in
  Alcotest.(check bool) "events were captured" true (List.length events >= 12);
  List.iter
    (fun e ->
      let rendered = Events.to_string e in
      List.iter
        (fun bad ->
          if contains rendered bad then
            Alcotest.failf "event leaks relying-party identifier %S: %s" bad rendered)
        forbidden)
    events;
  (* the stream still names the client, method, and lifecycle kinds *)
  let kinds = List.map (fun e -> e.Events.kind) events in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Events.kind_to_string k ^ " present")
        true (List.mem k kinds))
    [ Events.Enroll; Events.Register; Events.Auth_begin; Events.Auth_finish;
      Events.Audit; Events.Revocation ]

(* --- Chrome trace_event JSON: validate with a minimal JSON parser --- *)

exception Bad_json of string

let validate_json (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail m = raise (Bad_json (Printf.sprintf "%s at %d" m !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c = if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c) in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail "value"
  and literal lit =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then
      pos := !pos + String.length lit
    else fail lit
  and number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "number"
  and string_lit () =
    expect '"';
    let fin = ref false in
    while not !fin do
      if !pos >= n then fail "unterminated string";
      (match s.[!pos] with
      | '"' -> fin := true
      | '\\' -> incr pos (* skip the escaped char *)
      | c when Char.code c < 0x20 -> fail "unescaped control char"
      | _ -> ());
      incr pos
    done
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let fin = ref false in
      while not !fin do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some '}' -> incr pos; fin := true
        | _ -> fail "object"
      done
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let fin = ref false in
      while not !fin do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some ']' -> incr pos; fin := true
        | _ -> fail "array"
      done
    end
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let chrome_json_valid () =
  with_obs @@ fun () ->
  Trace.with_span "outer \"quoted\\name\"" (fun () ->
      Trace.add_str "note" "attrs with \"quotes\", newline \n and tab \t";
      Trace.add_int "n" 3;
      Trace.add_float "ratio" 0.5;
      Trace.with_span "inner" (fun () -> ()));
  let json = Trace.to_chrome_json () in
  (match validate_json json with
  | () -> ()
  | exception Bad_json m -> Alcotest.failf "invalid chrome json (%s): %s" m json);
  Alcotest.(check bool) "has traceEvents" true
    (contains json "\"traceEvents\"");
  Alcotest.(check bool) "has complete events" true
    (contains json "\"ph\":\"X\"")

(* --- high-resolution histograms: merge properties (qcheck) --- *)

module Histo = Larch_obs.Histo

let build (xs : float list) : Histo.t =
  let h = Histo.create () in
  List.iter (Histo.observe h) xs;
  h

(* Samples spread across ~24 octaves, all inside the covered range. *)
let gen_sample =
  QCheck.Gen.(
    map2
      (fun e m -> float_of_int m *. (2. ** float_of_int e))
      (int_range (-6) 18) (int_range 1 1023))

let gen_stream = QCheck.Gen.(list_size (int_range 1 200) gen_sample)

let arb_two_streams =
  QCheck.make
    ~print:QCheck.Print.(pair (list float) (list float))
    QCheck.Gen.(pair gen_stream gen_stream)

let arb_three_streams =
  QCheck.make
    ~print:QCheck.Print.(triple (list float) (list float) (list float))
    QCheck.Gen.(triple gen_stream gen_stream gen_stream)

(* Quantiles of merge(a,b) track the exact quantiles of the concatenated
   stream to within one sub-bucket: the rank-⌈q·n⌉ sample of the merged
   histogram lands in exactly the bucket of the true rank-⌈q·n⌉ value, so
   the midpoint estimate is off by at most one bucket width (~1.6%
   relative; we allow 2%). *)
let merge_quantile_bound =
  QCheck.Test.make ~name:"merge(a,b) quantiles within error bound of a@b" ~count:200
    arb_two_streams
    (fun (xs, ys) ->
      let m = Histo.merge (build xs) (build ys) in
      let sorted = Array.of_list (List.sort compare (xs @ ys)) in
      let n = Array.length sorted in
      List.iter
        (fun q ->
          let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
          let exact = sorted.(rank - 1) in
          let est = Histo.percentile m q in
          let rel = Float.abs (est -. exact) /. exact in
          if rel > 0.02 then
            QCheck.Test.fail_reportf "p%g: est %.17g vs exact %.17g (rel err %.4f, n=%d)"
              (q *. 100.) est exact rel n)
        [ 0.5; 0.9; 0.99; 1.0 ];
      true)

(* Merge is lossless on bucket counts: merging equals observing the
   concatenated stream, and the bucket arrays commute and associate
   exactly (the float sum only up to rounding, so we compare counts). *)
let merge_lossless_commutative_associative =
  QCheck.Test.make ~name:"merge lossless on counts, commutative, associative" ~count:200
    arb_three_streams
    (fun (xs, ys, zs) ->
      let ha = build xs and hb = build ys and hc = build zs in
      let buckets h = Histo.nonzero_buckets h in
      let concat = build (xs @ ys) in
      let ab = Histo.merge ha hb in
      if buckets ab <> buckets concat then
        QCheck.Test.fail_reportf "merge(a,b) buckets differ from concatenated stream";
      if Histo.count ab <> List.length xs + List.length ys then
        QCheck.Test.fail_reportf "merge(a,b) count not additive";
      if buckets ab <> buckets (Histo.merge hb ha) then
        QCheck.Test.fail_reportf "merge not commutative on buckets";
      let abc = Histo.merge (Histo.merge ha hb) hc in
      let a_bc = Histo.merge ha (Histo.merge hb hc) in
      if buckets abc <> buckets a_bc then
        QCheck.Test.fail_reportf "merge not associative on buckets";
      true)

(* Registry-level merge: counters and gauges add, histograms bucket-merge,
   metrics missing from [into] get registered. *)
let registry_merge () =
  with_obs @@ fun () ->
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add (Metrics.counter a "ops") 3;
  Metrics.add (Metrics.counter b "ops") 4;
  Metrics.inc (Metrics.counter b "only_b");
  Metrics.set_gauge (Metrics.gauge a "depth") 2.0;
  Metrics.set_gauge (Metrics.gauge b "depth") 5.0;
  Metrics.observe (Metrics.histogram a "lat") 1.0;
  Metrics.observe (Metrics.histogram b "lat") 100.0;
  Metrics.merge ~into:a b;
  Alcotest.(check int) "counters add" 7 (Metrics.counter_value (Metrics.counter a "ops"));
  Alcotest.(check int) "missing counter registered" 1
    (Metrics.counter_value (Metrics.counter a "only_b"));
  Alcotest.(check (float 0.0)) "gauges add" 7.0 (Metrics.gauge_value (Metrics.gauge a "depth"));
  let h = Metrics.histogram a "lat" in
  Alcotest.(check int) "histogram counts merge" 2 (Metrics.histogram_count h);
  Alcotest.(check (float 0.0)) "merged min" 1.0 (Metrics.histogram_min h);
  Alcotest.(check (float 0.0)) "merged max" 100.0 (Metrics.histogram_max h);
  (* source registry is untouched *)
  Alcotest.(check int) "source unchanged" 4 (Metrics.counter_value (Metrics.counter b "ops"))

(* --- flight recorder: ring eviction, incident dumps, sink --- *)

let flight_ring_and_incident () =
  with_obs @@ fun () ->
  let reg = Metrics.create () in
  let f = Larch_obs.Flight.create ~capacity:2 ~registry:reg () in
  let c = Metrics.counter reg "flight.ticks" in
  Metrics.inc c;
  Larch_obs.Flight.record f;
  Metrics.inc c;
  Larch_obs.Flight.record f;
  Metrics.inc c;
  Larch_obs.Flight.record f;
  let seen = ref None in
  Larch_obs.Flight.set_sink f (Some (fun d -> seen := Some d));
  Larch_obs.Flight.incident ~detail:"unit" f "test.reason";
  Alcotest.(check int) "one incident" 1 (Larch_obs.Flight.incident_count f);
  let d = Option.get (Larch_obs.Flight.last_dump f) in
  Alcotest.(check bool) "sink got the dump" true (!seen = Some d);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "dump has %S" needle) true (contains d needle))
    [
      "=== larch flight recorder ===";
      "incident: test.reason";
      "detail: unit";
      "ring_entries: 2";
      "--- current ---";
      "=== end flight dump ===";
    ];
  (* capacity 2: the oldest snapshot (ticks=1) was evicted, 2 and 3 remain *)
  Alcotest.(check bool) "evicted oldest snapshot" false (contains d "\"flight.ticks\":1}");
  Alcotest.(check bool) "kept second snapshot" true (contains d "\"flight.ticks\":2}");
  Alcotest.(check bool) "kept newest snapshot" true (contains d "\"flight.ticks\":3}");
  Larch_obs.Flight.clear f;
  Alcotest.(check bool) "clear forgets dumps" true (Larch_obs.Flight.last_dump f = None);
  Alcotest.(check int) "clear resets incidents" 0 (Larch_obs.Flight.incident_count f)

(* --- exporters: format sanity + the §2.3 privacy invariant --- *)

(* Drive all three protocols against RP names from [forbidden], then
   grep-proof every export surface: Prometheus text, canonical JSON, and
   a flight-recorder dump taken over the same registry and event stream. *)
let exporter_privacy () =
  with_obs @@ fun () ->
  Larch_util.Clock.set 1_700_000_000.;
  Larch_obs.Flight.clear Larch_obs.Flight.default;
  let rand = Larch_hash.Drbg.of_seed "test-obs-export-privacy" in
  let log = Log_service.create ~rand_bytes:rand () in
  let client =
    Client.create ~client_id:"alice" ~account_password:"hunter2 but longer" ~log
      ~rand_bytes:rand ()
  in
  Client.enroll ~presignature_count:4 client;
  let rp = Relying_party.create ~name:"github.com" ~rand_bytes:rand () in
  let pk = Client.register_fido2 client ~rp_name:"github.com" in
  Relying_party.fido2_register rp ~username:"alice" ~pk;
  let challenge = Relying_party.fido2_challenge rp ~username:"alice" in
  let assertion = Client.authenticate_fido2 client ~rp_name:"github.com" ~challenge in
  Alcotest.(check bool) "fido2 accepted" true
    (Relying_party.fido2_login rp ~username:"alice" assertion);
  let trp = Relying_party.create ~name:"target.example" ~rand_bytes:rand () in
  let tkey = Relying_party.totp_register trp ~username:"alice" in
  Client.register_totp client ~rp_name:"target.example" ~totp_key:tkey;
  let code = Client.authenticate_totp client ~rp_name:"target.example" ~time:1_700_000_000. in
  Alcotest.(check bool) "totp accepted" true
    (Relying_party.totp_login trp ~username:"alice" ~time:1_700_000_000. code);
  ignore (Client.register_password client ~rp_name:"decoy01.example");
  ignore (Client.authenticate_password client ~rp_name:"decoy01.example");
  ignore (Client.audit client);
  Larch_obs.Flight.record Larch_obs.Flight.default;
  Larch_obs.Flight.incident ~detail:"privacy sweep" Larch_obs.Flight.default "test.incident";
  let prom = Larch_obs.Export.prometheus Metrics.default in
  let js = Larch_obs.Export.json Metrics.default in
  let dump = Option.get (Larch_obs.Flight.last_dump Larch_obs.Flight.default) in
  (* the surfaces actually carry the new deep metrics... *)
  Alcotest.(check bool) "prom has TYPE lines" true (contains prom "# TYPE");
  Alcotest.(check bool) "prom carries auth counters" true
    (contains prom "larch_auth_fido2_verify_ok");
  Alcotest.(check bool) "prom carries presig gauge" true
    (contains prom "larch_log_fido2_presigs_remaining");
  Alcotest.(check bool) "json carries record counter" true
    (contains js "\"log.records.stored\":");
  (match validate_json js with
  | () -> ()
  | exception Bad_json m -> Alcotest.failf "exporter json invalid (%s)" m);
  (* ...and none of them leaks a relying-party identifier *)
  List.iter
    (fun (label, surface) ->
      List.iter
        (fun bad ->
          if contains surface bad then
            Alcotest.failf "%s leaks relying-party identifier %S" label bad)
        forbidden)
    [ ("prometheus", prom); ("json", js); ("flight dump", dump) ]

(* --- trace lanes: parallel workers pin tid >= 1000 --- *)

let parallel_tid_lanes () =
  with_obs @@ fun () ->
  let busy x =
    let acc = ref x in
    for _ = 1 to 500_000 do
      acc := (!acc * 7) land 0xFFFFFF
    done;
    ignore (Sys.opaque_identity !acc)
  in
  ignore
    (Larch_util.Parallel.map ~domains:3
       (fun x ->
         Trace.with_span "lane.work" (fun () ->
             busy x;
             x))
       (Array.init 8 Fun.id));
  let spans = Trace.spans () in
  let workers = List.filter (fun s -> s.Trace.name = "parallel.worker") spans in
  Alcotest.(check bool) "workers recorded" true (workers <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool) "worker pinned to a lane >= 1000" true (s.Trace.domain >= 1000))
    workers;
  let works = List.filter (fun s -> s.Trace.name = "lane.work") spans in
  List.iter
    (fun s ->
      Alcotest.(check bool) "task span inherits the worker lane" true (s.Trace.domain >= 1000))
    works;
  (* outside the parallel section the override is gone *)
  Trace.with_span "after" (fun () -> ());
  let after = List.find (fun s -> s.Trace.name = "after") (Trace.spans ()) in
  Alcotest.(check bool) "caller back on its real domain id" true (after.Trace.domain < 1000);
  let json = Trace.to_chrome_json () in
  (match validate_json json with
  | () -> ()
  | exception Bad_json m -> Alcotest.failf "chrome json with lanes invalid (%s): %s" m json);
  Alcotest.(check bool) "lanes are named" true (contains json "worker lane ");
  Alcotest.(check bool) "thread_name metadata present" true (contains json "\"thread_name\"")

(* --- capacity report: byte-for-byte determinism --- *)

let report_determinism () =
  let r1 = Report.run ~auths:1 ~seed:"test-obs-report" () in
  let r2 = Report.run ~auths:1 ~seed:"test-obs-report" () in
  Alcotest.(check string) "same seed, same text" r1.Report.text r2.Report.text;
  Alcotest.(check string) "same seed, same digest" r1.Report.digest r2.Report.digest;
  Alcotest.(check int) "digest is hex sha256" 64 (String.length r1.Report.digest);
  let r3 = Report.run ~auths:1 ~seed:"test-obs-other" () in
  Alcotest.(check bool) "different seed, different digest" true
    (r3.Report.digest <> r1.Report.digest);
  (* the report names every section the issue promises *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report has %S" needle) true
        (contains r1.Report.text needle))
    [ "fido2"; "totp"; "password"; "p50"; "p99"; "presig"; "wal" ]

(* --- runner --- *)

let () =
  Alcotest.run "larch-obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting across 4 domains" `Quick span_nesting_parallel;
          Alcotest.test_case "span survives exceptions" `Quick span_exception_safety;
          Alcotest.test_case "chrome json validity" `Quick chrome_json_valid;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram percentiles" `Quick histogram_percentiles;
          Alcotest.test_case "counters and gauges" `Quick counters_and_gauges;
          Alcotest.test_case "registry merge" `Quick registry_merge;
        ] );
      ( "histo-property",
        [
          QCheck_alcotest.to_alcotest merge_quantile_bound;
          QCheck_alcotest.to_alcotest merge_lossless_commutative_associative;
        ] );
      ( "flight",
        [ Alcotest.test_case "ring eviction, incident dump, sink" `Quick flight_ring_and_incident ] );
      ( "export",
        [ Alcotest.test_case "privacy across prom/json/flight dumps" `Slow exporter_privacy ] );
      ( "lanes",
        [ Alcotest.test_case "parallel workers pin trace lanes" `Quick parallel_tid_lanes ] );
      ( "report",
        [ Alcotest.test_case "capacity report is byte-deterministic" `Slow report_determinism ] );
      ( "runtime",
        [ Alcotest.test_case "disabled mode allocates nothing" `Quick disabled_is_noop ] );
      ( "channel",
        [ Alcotest.test_case "round trips, observe, reset" `Quick channel_round_trips ] );
      ( "events",
        [ Alcotest.test_case "privacy across all three protocols" `Slow event_privacy ] );
    ]
