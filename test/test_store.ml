(* Crash-consistent storage: the in-memory faultable disk, the
   checksummed WAL, generation snapshots, and the log service running on
   top of them.

   Layers of coverage:

   - disk: fsync semantics under crash (clean and seeded-faulty
     profiles), deterministic crash fates for equal seeds;
   - wal: framing round-trip, torn-tail detection and repair, every
     single-byte flip caught by the CRC, group commit batching;
   - store: un-flushed records lost on kill while flushed ones survive,
     checkpoint generation roll with fallback across a rotted snapshot;
   - service: [Log_service.restart] as a genuine kill-and-recover, the
     §9 backup blob surviving a crash, fsck flagging injected rot;
   - transport: the bounded LRU replay cache (cap, eviction accounting,
     recency, duplicates still answered within the window);
   - property: for a seeded workload killed at ANY WAL byte offset,
     recovery lands exactly on the floor record boundary (records are
     atomically present-or-absent) and every fsck invariant holds —
     including across [prune_records] chain truncation. *)

open Larch_core
module Disk = Larch_store.Disk
module Store = Larch_store.Store
module Wal = Larch_store.Wal
module Snapshot = Larch_store.Snapshot
module Channel = Larch_net.Channel
module Transport = Larch_net.Transport
module Fault = Larch_net.Fault
module Clock = Larch_util.Clock

let base_time = 1_754_000_000.

let with_clock (f : unit -> 'a) : 'a =
  Clock.set base_time;
  Fun.protect ~finally:Clock.use_real_time f

let sha s = Larch_hash.Sha256.digest s
let drbg_rand entropy = Larch_hash.Drbg.rand_bytes_of (Larch_hash.Drbg.create ~entropy)

(* --- a deterministic store-backed world ------------------------------- *)

let dir = "log"

let store_world ?(entropy = "test-store") ?(profile = Disk.clean_profile)
    ?(checkpoint_every = 100_000) () =
  let rand = drbg_rand entropy in
  let disk = Disk.create ~seed:entropy ~profile () in
  let store = Store.open_ ~disk ~dir () in
  let log = Log_service.create ~checkpoint_every ~store ~rand_bytes:rand () in
  let client = Client.create ~client_id:"alice" ~account_password:"pw" ~log ~rand_bytes:rand () in
  (log, client, disk, rand)

(* All three methods, a stored backup, and a prune — so the WAL crosses
   every op family the recovery path has to handle. *)
let drive ?(auths = 1) log client rand =
  Client.enroll ~presignature_count:(2 * auths) client;
  let rp = Relying_party.create ~name:"rp.example" ~rand_bytes:rand () in
  let pk = Client.register_fido2 client ~rp_name:"rp.example" in
  Relying_party.fido2_register rp ~username:"alice" ~pk;
  let key = Relying_party.totp_register rp ~username:"alice" in
  Client.register_totp client ~rp_name:"rp.example" ~totp_key:key;
  let site_pw = Client.register_password client ~rp_name:"rp.example" in
  for _ = 1 to auths do
    Clock.advance 30.;
    let challenge = Relying_party.fido2_challenge rp ~username:"alice" in
    ignore (Client.authenticate_fido2 client ~rp_name:"rp.example" ~challenge);
    Clock.advance 30.;
    ignore (Client.authenticate_totp client ~rp_name:"rp.example" ~time:(Clock.now ()));
    Clock.advance 30.;
    ignore (Client.authenticate_password client ~rp_name:"rp.example")
  done;
  ignore (Backup.store client);
  ignore
    (Log_service.prune_records log ~client_id:"alice" ~token:"pw"
       ~older_than:(Clock.now () -. 45.));
  (rp, site_pw)

let live_digest (log : Log_service.t) = sha (Log_codec.encode_clients log.Log_service.clients)

(* --- disk ------------------------------------------------------------- *)

let disk_crash_keeps_synced_prefix () =
  let d = Disk.create ~profile:Disk.clean_profile () in
  Disk.write d ~file:"f" "durable";
  Disk.fsync d ~file:"f";
  Disk.append d ~file:"f" " volatile";
  Alcotest.(check int) "unsynced bytes visible before crash" 16 (Disk.size d ~file:"f");
  Disk.crash d;
  Alcotest.(check (option string)) "crash truncates to the durability line" (Some "durable")
    (Disk.read d ~file:"f");
  Disk.crash d;
  Alcotest.(check (option string)) "second crash is a no-op" (Some "durable")
    (Disk.read d ~file:"f")

let disk_seeded_crash_deterministic () =
  let run () =
    let d = Disk.create ~seed:"crash-fates" () in
    for i = 0 to 4 do
      let f = Printf.sprintf "f%d" i in
      Disk.write d ~file:f (String.make 64 (Char.chr (Char.code 'a' + i)));
      Disk.fsync d ~file:f;
      Disk.append d ~file:f (String.make 48 'z')
    done;
    Disk.crash d;
    Disk.dump d
  in
  Alcotest.(check bool) "same seed, same post-crash bytes" true (run () = run ())

(* --- wal -------------------------------------------------------------- *)

let payloads = [ "alpha"; String.make 100 'b'; "\x00\x01\x02checksummed" ]

let fresh_wal () =
  let d = Disk.create ~profile:Disk.clean_profile () in
  let w, tail, torn = Wal.open_ d ~file:"w" in
  Alcotest.(check bool) "fresh wal empty" true (tail = [] && not torn);
  (d, w)

let wal_roundtrip () =
  let d, w = fresh_wal () in
  List.iter (Wal.append w) payloads;
  Wal.flush w;
  let entries, _, torn = Wal.scan d ~file:"w" in
  Alcotest.(check bool) "no tear" false torn;
  Alcotest.(check (list string)) "records round-trip" payloads entries

let wal_torn_tail_repaired () =
  let d, w = fresh_wal () in
  List.iter (Wal.append_sync w) payloads;
  let full = Disk.size d ~file:"w" in
  (* cut into the last frame: 3 bytes past the second record's end *)
  let boundary = full - (Wal.frame_overhead + String.length (List.nth payloads 2)) in
  Disk.truncate d ~file:"w" (boundary + 3);
  let entries, valid_len, torn = Wal.scan d ~file:"w" in
  Alcotest.(check bool) "tear detected" true torn;
  Alcotest.(check int) "valid prefix ends at the record boundary" boundary valid_len;
  Alcotest.(check int) "two records survive" 2 (List.length entries);
  let _, entries', torn' = Wal.open_ d ~file:"w" in
  Alcotest.(check bool) "open reports the tear it repaired" true torn';
  Alcotest.(check int) "repair truncated the file" boundary (Disk.size d ~file:"w");
  Alcotest.(check int) "repaired wal still has both records" 2 (List.length entries');
  let _, valid_len'', torn'' = Wal.scan d ~file:"w" in
  Alcotest.(check bool) "repaired wal scans clean" false torn'';
  Alcotest.(check int) "nothing beyond the boundary" boundary valid_len''

let wal_any_flip_detected () =
  let d, w = fresh_wal () in
  List.iter (Wal.append_sync w) payloads;
  let img = Disk.dump d in
  let size = Disk.size d ~file:"w" in
  for pos = 0 to size - 1 do
    let d' = Disk.restore img in
    Disk.corrupt d' ~file:"w" ~pos;
    let entries, _, torn = Wal.scan d' ~file:"w" in
    if (not torn) && entries = payloads then
      Alcotest.failf "flip at byte %d of %d went undetected" pos size
  done

let wal_group_commit () =
  let d, w = fresh_wal () in
  let before = Disk.stats d in
  List.iter (Wal.append w) [ "a"; "bb"; "ccc"; "dddd"; "eeeee" ];
  let buffered = Disk.stats d in
  Alcotest.(check int) "appends buffered off-disk" before.Disk.appends buffered.Disk.appends;
  Wal.flush w;
  let after = Disk.stats d in
  Alcotest.(check int) "one disk append per flush" (before.Disk.appends + 1) after.Disk.appends;
  Alcotest.(check int) "one fsync per flush" (before.Disk.fsyncs + 1) after.Disk.fsyncs;
  let entries, _, _ = Wal.scan d ~file:"w" in
  Alcotest.(check int) "all five committed" 5 (List.length entries)

(* --- store ------------------------------------------------------------ *)

let store_unflushed_lost () =
  let d = Disk.create ~profile:Disk.clean_profile () in
  let s = Store.open_ ~disk:d ~dir () in
  Store.append_sync s "durable-1";
  Store.append s "buffered-never-acked";
  Disk.crash d;
  let s' = Store.open_ ~disk:d ~dir () in
  Alcotest.(check (list string)) "only the flushed record survives" [ "durable-1" ]
    (Store.recovered s').Store.tail;
  Store.append_sync s' "durable-2";
  Disk.crash d;
  let s'' = Store.open_ ~disk:d ~dir () in
  Alcotest.(check (list string)) "acked records accumulate across kills"
    [ "durable-1"; "durable-2" ]
    (Store.recovered s'').Store.tail

let store_checkpoint_roll_and_fallback () =
  let d = Disk.create ~profile:Disk.clean_profile () in
  let s = Store.open_ ~disk:d ~dir () in
  List.iter (Store.append_sync s) [ "r1"; "r2" ];
  Store.checkpoint s "state-after-r2";
  Store.append_sync s "r3";
  Alcotest.(check int) "generation rolled" 1 (Store.generation s);
  let s' = Store.open_ ~disk:d ~dir () in
  let r = Store.recovered s' in
  Alcotest.(check (option string)) "snapshot recovered" (Some "state-after-r2") r.Store.snapshot;
  Alcotest.(check (list string)) "tail is the post-snapshot records" [ "r3" ] r.Store.tail;
  (* rot the newest snapshot: recovery must fall back to the previous
     generation and replay its WAL instead *)
  Disk.corrupt d ~file:(dir ^ "/snap.000001") ~pos:8;
  let s'' = Store.open_ ~disk:d ~dir () in
  let r'' = Store.recovered s'' in
  Alcotest.(check int) "damaged snapshot skipped" 1 r''.Store.snapshots_skipped;
  Alcotest.(check (option string)) "fell back to no snapshot" None r''.Store.snapshot;
  Alcotest.(check (list string)) "full history replayed from gen 0" [ "r1"; "r2"; "r3" ]
    r''.Store.tail

(* --- the log service on a store --------------------------------------- *)

let service_restart_is_genuine_kill () =
  with_clock @@ fun () ->
  (* default (faulty) profile: the kill draws crash fates, but since every
     acknowledged op was group-committed there is nothing to lose *)
  let log, client, _disk, rand = store_world ~profile:Disk.default_profile () in
  let rp, _ = drive ~auths:1 log client rand in
  let a = Log_service.audit_with_head log ~client_id:"alice" ~token:"pw" in
  Log_service.restart log;
  let a' = Log_service.audit_with_head log ~client_id:"alice" ~token:"pw" in
  Alcotest.(check int) "chain length survives the kill" a.Log_service.chain_len
    a'.Log_service.chain_len;
  Alcotest.(check bool) "chain head survives the kill" true
    (a.Log_service.chain_head = a'.Log_service.chain_head);
  Alcotest.(check int) "records survive the kill"
    (List.length a.Log_service.records)
    (List.length a'.Log_service.records);
  Alcotest.(check bool) "merkle root survives the kill" true
    (a.Log_service.sth.Larch_merkle.Merkle.Sth.root
    = a'.Log_service.sth.Larch_merkle.Merkle.Sth.root);
  (* the recovered log keeps serving: one more authentication per method *)
  Clock.advance 30.;
  let challenge = Relying_party.fido2_challenge rp ~username:"alice" in
  ignore (Client.authenticate_fido2 client ~rp_name:"rp.example" ~challenge);
  Clock.advance 30.;
  ignore (Client.authenticate_password client ~rp_name:"rp.example");
  let a'' = Log_service.audit_with_head log ~client_id:"alice" ~token:"pw" in
  Alcotest.(check int) "post-recovery auths append to the chain"
    (a.Log_service.chain_len + 2)
    a''.Log_service.chain_len;
  match Log_service.fsck log with
  | Some fr -> Alcotest.(check (list string)) "fsck clean after kill + reuse" [] fr.Log_persist.issues
  | None -> Alcotest.fail "store-backed log must offer fsck"

let backup_survives_crash () =
  with_clock @@ fun () ->
  let log, client, _disk, rand = store_world ~entropy:"backup-crash" () in
  Client.enroll ~presignature_count:1 client;
  let site_pw = Client.register_password client ~rp_name:"mail.example" in
  ignore (Backup.store client);
  Log_service.restart log;
  (* device lost; the blob recovered from the killed-and-restarted log *)
  match Backup.recover ~log ~client_id:"alice" ~account_password:"pw" ~rand_bytes:rand with
  | Error e -> Alcotest.failf "recovery failed after crash: %s" e
  | Ok restored ->
      let pw' = Client.authenticate_password restored ~rp_name:"mail.example" in
      Alcotest.(check string) "recovered device derives the same password" site_pw pw'

let fsck_flags_bit_rot () =
  with_clock @@ fun () ->
  let log, client, disk, rand = store_world ~entropy:"fsck-rot" () in
  ignore (drive ~auths:1 log client rand);
  (match Log_service.fsck log with
  | Some fr ->
      Alcotest.(check bool) "clean store passes fsck" true (Log_persist.fsck_clean fr);
      Alcotest.(check bool) "ops were actually checked" true (fr.Log_persist.wal_ops > 0)
  | None -> Alcotest.fail "store-backed log must offer fsck");
  let wal = Store.wal_file dir 0 in
  Disk.corrupt disk ~file:wal ~pos:(Disk.size disk ~file:wal / 2);
  let v = Store.verify_disk disk ~dir in
  Alcotest.(check bool) "structural verify flags the rot" false (Store.verify_clean v);
  (* a fresh open truncates the damage; what remains verifies again *)
  let s' = Store.open_ ~disk ~dir () in
  Alcotest.(check bool) "recovery notices the tear" true (Store.recovered s').Store.torn;
  let log' = Log_service.create ~store:s' ~rand_bytes:(drbg_rand "fsck-rot-reopen") () in
  match Log_service.fsck log' with
  | Some fr' -> Alcotest.(check bool) "repaired prefix is clean" true (Log_persist.fsck_clean fr')
  | None -> Alcotest.fail "store-backed log must offer fsck"

(* --- bounded transport replay cache ----------------------------------- *)

(* The cache only engages on the fault path; a scripted injector with no
   scheduled faults keeps every exchange clean and deterministic. *)
let lru_transport ~cap =
  let t = Transport.create ~label:"lru" ~cache_cap:cap (Channel.create ()) in
  Transport.set_injector t (Some (Fault.scripted []));
  let hits = ref 0 in
  let callit req =
    Transport.call t ~op:"echo" ~req ~decode:(fun s -> Some s) (fun r ->
        incr hits;
        "resp:" ^ r)
  in
  (t, hits, callit)

let lru_cap_and_evictions () =
  let t, _, callit = lru_transport ~cap:4 in
  for i = 1 to 8 do
    Alcotest.(check string) "response correct" (Printf.sprintf "resp:r%d" i)
      (callit (Printf.sprintf "r%d" i))
  done;
  Alcotest.(check int) "cache capped" 4 (Transport.cache_size t);
  Alcotest.(check int) "evictions counted" 4 (Transport.stats t).Transport.evictions;
  Alcotest.(check bool) "oldest entry evicted" false (Transport.cache_mem t ~op:"echo" ~req:"r1");
  Alcotest.(check bool) "newest entry kept" true (Transport.cache_mem t ~op:"echo" ~req:"r8")

let lru_duplicate_answered_at_cap () =
  let t, hits, callit = lru_transport ~cap:4 in
  for i = 1 to 6 do
    ignore (callit (Printf.sprintf "r%d" i))
  done;
  (* r5 is in the window: a duplicate must come from the cache, without
     re-running the handler (no double presig-consume, no double append) *)
  let h0 = !hits in
  Alcotest.(check string) "duplicate answered" "resp:r5" (callit "r5");
  Alcotest.(check int) "handler not re-executed" h0 !hits;
  Alcotest.(check int) "replay counted" 1 (Transport.stats t).Transport.replays;
  (* the duplicate touched r5 (cache now holds r3..r6, r5 most-recent):
     three fresh inserts evict r3, r4, r6 — and r5 outlives them all *)
  List.iter (fun r -> ignore (callit r)) [ "r7"; "r8"; "r9" ];
  Alcotest.(check bool) "touched entry survives eviction" true
    (Transport.cache_mem t ~op:"echo" ~req:"r5");
  Alcotest.(check bool) "least-recent entries evicted instead" false
    (Transport.cache_mem t ~op:"echo" ~req:"r6")

let lru_restart_clears () =
  let t, hits, callit = lru_transport ~cap:4 in
  ignore (callit "r1");
  Transport.restart t;
  Alcotest.(check int) "restart empties the cache" 0 (Transport.cache_size t);
  let h0 = !hits in
  ignore (callit "r1");
  Alcotest.(check int) "post-restart duplicate re-executes" (h0 + 1) !hits

(* --- property: atomic recovery at every crash point -------------------- *)

(* One seeded workload, killed at an arbitrary WAL byte offset: recovery
   must land exactly on the floor record boundary — the partial record (if
   any) vanishes, everything before it survives — and the recovered state
   passes every fsck invariant (hash-chain continuity and cursor
   monotonicity, including across the prune that truncates the chain). *)
let atomicity_world =
  lazy
    (with_clock @@ fun () ->
     let log, client, disk, rand = store_world ~entropy:"atomicity" () in
     ignore (drive ~auths:2 log client rand);
     let img = Disk.dump disk in
     let wal = Store.wal_file dir 0 in
     let entries, valid_len, torn = Wal.scan disk ~file:wal in
     assert (not torn);
     let boundaries =
       List.rev
         (List.fold_left
            (fun acc e -> (List.hd acc + Wal.frame_overhead + String.length e) :: acc)
            [ 0 ] entries)
     in
     (live_digest log, img, wal, boundaries, valid_len))

let recover_at img wal offset =
  let d = Disk.restore img in
  Disk.truncate d ~file:wal offset;
  let store = Store.open_ ~disk:d ~dir () in
  let log = Log_service.create ~store ~rand_bytes:(drbg_rand "atomicity-recover") () in
  let fr = Option.get (Log_service.fsck log) in
  (live_digest log, Log_persist.fsck_clean fr)

let boundary_digests : (int, string) Hashtbl.t = Hashtbl.create 64

let crash_point_atomicity =
  QCheck.Test.make ~name:"kill at any WAL offset: records atomic, invariants hold" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun raw ->
      let live, img, wal, boundaries, valid_len = Lazy.force atomicity_world in
      let offset = raw mod (valid_len + 1) in
      let floor = List.fold_left (fun acc b -> if b <= offset then b else acc) 0 boundaries in
      let digest, clean = recover_at img wal offset in
      let floor_digest =
        match Hashtbl.find_opt boundary_digests floor with
        | Some d -> d
        | None ->
            let d, floor_clean = recover_at img wal floor in
            if not floor_clean then QCheck.Test.fail_reportf "fsck dirty at boundary %d" floor;
            Hashtbl.replace boundary_digests floor d;
            d
      in
      if not clean then QCheck.Test.fail_reportf "fsck dirty at offset %d" offset;
      if digest <> floor_digest then
        QCheck.Test.fail_reportf "recovery at offset %d not atomic (floor boundary %d)" offset
          floor;
      (* killing after the last committed byte loses nothing *)
      if offset = valid_len && digest <> live then
        QCheck.Test.fail_reportf "full-WAL recovery diverges from live state";
      true)

let () =
  Alcotest.run "store"
    [
      ( "disk",
        [
          Alcotest.test_case "crash keeps the synced prefix" `Quick disk_crash_keeps_synced_prefix;
          Alcotest.test_case "seeded crash fates deterministic" `Quick
            disk_seeded_crash_deterministic;
        ] );
      ( "wal",
        [
          Alcotest.test_case "records round-trip" `Quick wal_roundtrip;
          Alcotest.test_case "torn tail detected and repaired" `Quick wal_torn_tail_repaired;
          Alcotest.test_case "every single-byte flip detected" `Quick wal_any_flip_detected;
          Alcotest.test_case "group commit: one append+fsync per flush" `Quick wal_group_commit;
        ] );
      ( "store",
        [
          Alcotest.test_case "unflushed records lost, acked survive" `Quick store_unflushed_lost;
          Alcotest.test_case "checkpoint rolls; rotted snapshot falls back" `Quick
            store_checkpoint_roll_and_fallback;
        ] );
      ( "service",
        [
          Alcotest.test_case "restart is a genuine kill-and-recover" `Quick
            service_restart_is_genuine_kill;
          Alcotest.test_case "backup blob survives a crash (§9)" `Quick backup_survives_crash;
          Alcotest.test_case "fsck flags injected bit rot" `Quick fsck_flags_bit_rot;
        ] );
      ( "transport-lru",
        [
          Alcotest.test_case "cap respected, evictions counted" `Quick lru_cap_and_evictions;
          Alcotest.test_case "duplicate answered from a full cache" `Quick
            lru_duplicate_answered_at_cap;
          Alcotest.test_case "restart clears the cache" `Quick lru_restart_clears;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest crash_point_atomicity ]);
    ]
