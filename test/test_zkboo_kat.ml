(* Fixed-seed ZKBoo proof-digest known-answer tests.

   Every byte of a proof is a deterministic function of the circuit, the
   witness, and the prover's randomness stream — so a fixed DRBG seed
   pins the SHA-256 of the serialized proof.  These digests were recorded
   from the pre-PR7 prover (commit 6532da6): the raw-speed rewrite
   (flattened plans, transposed packing, balanced batches) must not move
   a single bit, or `larch report` / `larch faults` digests silently stop
   being reproducible across builds.

   If a digest here ever changes on purpose (e.g. a deliberate format
   bump), re-record it and say so loudly in the commit message. *)

module Circuit = Larch_circuit.Circuit
module Builder = Larch_circuit.Builder
module Statements = Larch_circuit.Larch_statements
module Zkboo = Larch_zkboo.Zkboo

let proof_digest proof = Larch_util.Hex.encode (Larch_hash.Sha256.digest (Zkboo.to_bytes proof))

(* out = ((a AND b) XOR NOT c, … XOR 1): one AND, one NOT, one constant *)
let toy_circuit () =
  let b = Builder.create () in
  let a = Builder.input b and bb = Builder.input b and c = Builder.input b in
  let t = Builder.band b a bb in
  let nc = Builder.bnot b c in
  let o1 = Builder.bxor b t nc in
  let o2 = Builder.bxor b o1 (Builder.const b true) in
  Builder.finalize b ~outputs:[| o1; o2 |]

(* one SHA-256 compression over a 256-bit message: 22696 AND gates *)
let sha_block_circuit () =
  let b = Builder.create () in
  let msg = Builder.inputs b 256 in
  let out = Larch_circuit.Sha256_circuit.hash_fixed b ~msg in
  Builder.finalize b ~outputs:out

(* Witness bits and proof randomness both come from DRBGs seeded off the
   case name; one byte is drawn per witness bit, before proving starts. *)
let kat ~name ~reps circuit expected () =
  let rand = Larch_hash.Drbg.of_seed ("zkboo-kat-" ^ name) in
  let witness =
    Array.init circuit.Circuit.n_inputs (fun _ -> Char.code (rand 1).[0] land 1 = 1)
  in
  let proof =
    Zkboo.prove ~reps ~circuit ~witness ~statement_tag:("kat-" ^ name) ~rand_bytes:rand ()
  in
  Alcotest.(check string) (name ^ " proof digest") expected (proof_digest proof);
  Alcotest.(check bool) (name ^ " verifies") true
    (Zkboo.verify ~circuit
       ~public_output:(Circuit.eval circuit witness)
       ~statement_tag:("kat-" ^ name) proof)

(* The full FIDO2 statement at the paper's 137 repetitions — the proof
   whose bytes feed the fig3-left and communication rows. *)
let fido2_kat () =
  let circuit = Lazy.force Statements.fido2_circuit in
  let rand = Larch_hash.Drbg.of_seed "prof" in
  let k = rand 32 in
  let r = rand 16 in
  let id = rand 32 in
  let chal = rand 32 in
  let nonce = rand 12 in
  let witness = Statements.fido2_witness_bits { Statements.k; r; id; chal; nonce } in
  let prand = Larch_hash.Drbg.of_seed "zkboo-kat" in
  let proof = Zkboo.prove ~circuit ~witness ~statement_tag:"kat" ~rand_bytes:prand () in
  Alcotest.(check string) "fido2 proof digest"
    "ce731fc9a91a8306903173d357b322647a2377ff25dd3f4aff029217b254885d" (proof_digest proof);
  Alcotest.(check bool) "fido2 verifies" true
    (Zkboo.verify ~circuit
       ~public_output:(Circuit.eval circuit witness)
       ~statement_tag:"kat" proof)

let () =
  Alcotest.run "zkboo-kat"
    [
      ( "kat",
        [
          Alcotest.test_case "toy reps=40" `Quick
            (kat ~name:"toy" ~reps:40 (toy_circuit ())
               "5d3aaf56641ae7d48348d5edfc7ee0eab33c4c87a8cd5d68185f582fd1c19f71");
          Alcotest.test_case "sha-block reps=137" `Quick
            (kat ~name:"sha-block" ~reps:137 (sha_block_circuit ())
               "1e7f028172fac4aab588f4fe64f94841060d541f8ba7d778ef238a742c2a352f");
          Alcotest.test_case "sha-block reps=63" `Quick
            (kat ~name:"sha-block-63" ~reps:63 (sha_block_circuit ())
               "9467e480cee47f7746b2433ee295f24542ee3b158cf2dad8a7109249f6ba46ab");
          Alcotest.test_case "fido2 reps=137" `Quick fido2_kat;
        ] );
    ]
