(* Tests for the auth standards (RFC vectors), the wire/net substrate, the
   account-recovery backup, password embedding, and assorted operational
   paths not covered by the end-to-end suite. *)

module Wire = Larch_net.Wire
module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
open Larch_core

let rand = Larch_hash.Drbg.of_seed "test-protocols"

(* --- RFC 6238 TOTP vectors (SHA-1, 8 digits truncated to our 6) --- *)

let totp_rfc6238_vectors () =
  let key = "12345678901234567890" in
  (* RFC 6238 Appendix B lists 8-digit codes; the 6-digit codes are the
     last six digits of those values. *)
  List.iter
    (fun (t, expected8) ->
      let code = Larch_auth.Totp.totp ~key ~time:t () in
      Alcotest.(check int) (Printf.sprintf "t=%.0f" t) (expected8 mod 1_000_000) code)
    [ (59., 94287082); (1111111109., 7081804); (1111111111., 14050471);
      (1234567890., 89005924); (2000000000., 69279037) ];
  Alcotest.(check string) "code rendering" "081804"
    (Larch_auth.Totp.code_to_string (Larch_auth.Totp.totp ~key ~time:1111111109. () ));
  (* hotp counter mapping *)
  Alcotest.(check int64) "counter of t=59" 1L (Larch_auth.Totp.counter_of_time 59.);
  Alcotest.(check bool) "verify window accepts adjacent step" true
    (Larch_auth.Totp.verify ~key ~time:89. (Larch_auth.Totp.totp ~key ~time:59. ()))

let fido2_payload_verify () =
  let sk, pk = Larch_ec.Ecdsa.keygen ~rand_bytes:rand in
  let challenge = rand 32 in
  let payload = Larch_auth.Fido2.make_payload ~rp_name:"rp.example" ~challenge ~counter:7 in
  let signature = Larch_ec.Ecdsa.sign_digest ~sk (Larch_auth.Fido2.signing_digest payload) in
  let a = { Larch_auth.Fido2.payload; signature } in
  Alcotest.(check bool) "verifies" true
    (Larch_auth.Fido2.verify ~pk ~rp_name:"rp.example" ~challenge a);
  Alcotest.(check bool) "wrong rp" false
    (Larch_auth.Fido2.verify ~pk ~rp_name:"evil.example" ~challenge a);
  Alcotest.(check bool) "wrong challenge" false
    (Larch_auth.Fido2.verify ~pk ~rp_name:"rp.example" ~challenge:(rand 32) a)

let password_verifier () =
  let v = Larch_auth.Password.create ~rand_bytes:rand "s3cret" in
  Alcotest.(check bool) "accepts" true (Larch_auth.Password.check v "s3cret");
  Alcotest.(check bool) "rejects" false (Larch_auth.Password.check v "s3cret!");
  (* pbkdf2 determinism + salt sensitivity *)
  let h1 = Larch_auth.Password.pbkdf2 ~password:"p" ~salt:"s" ~iterations:10 ~len:32 in
  let h2 = Larch_auth.Password.pbkdf2 ~password:"p" ~salt:"s" ~iterations:10 ~len:32 in
  let h3 = Larch_auth.Password.pbkdf2 ~password:"p" ~salt:"t" ~iterations:10 ~len:32 in
  Alcotest.(check string) "deterministic" h1 h2;
  Alcotest.(check bool) "salt matters" false (h1 = h3)

(* --- wire codec --- *)

let wire_roundtrip () =
  let s =
    Wire.encode (fun w ->
        Wire.u8 w 250;
        Wire.u32 w 123456;
        Wire.u64 w 0x1122334455667788L;
        Wire.bytes w "hello";
        Wire.list w Wire.bytes [ "a"; "bb"; "" ])
  in
  match
    Wire.decode s (fun r ->
        let a = Wire.read_u8 r in
        let b = Wire.read_u32 r in
        let c = Wire.read_u64 r in
        let d = Wire.read_bytes r in
        let e = Wire.read_list r Wire.read_bytes in
        (a, b, c, d, e))
  with
  | Ok (a, b, c, d, e) ->
      Alcotest.(check int) "u8" 250 a;
      Alcotest.(check int) "u32" 123456 b;
      Alcotest.(check int64) "u64" 0x1122334455667788L c;
      Alcotest.(check string) "bytes" "hello" d;
      Alcotest.(check (list string)) "list" [ "a"; "bb"; "" ] e
  | Error e -> Alcotest.fail e

let wire_malformed () =
  (* truncation *)
  let s = Wire.encode (fun w -> Wire.bytes w "hello") in
  let short = String.sub s 0 (String.length s - 1) in
  (match Wire.decode short (fun r -> Wire.read_bytes r) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated accepted");
  (* trailing bytes *)
  (match Wire.decode (s ^ "x") (fun r -> Wire.read_bytes r) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing accepted");
  (* absurd list length must not allocate/crash *)
  let evil = "\xff\xff\xff\xff" in
  match Wire.decode evil (fun r -> Wire.read_list r Wire.read_bytes) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "absurd list accepted"

let wire_props =
  [
    QCheck.Test.make ~name:"bytes roundtrip" ~count:200 QCheck.(string_of Gen.char) (fun s ->
        Wire.decode (Wire.encode (fun w -> Wire.bytes w s)) Wire.read_bytes = Ok s);
    QCheck.Test.make ~name:"list roundtrip" ~count:100
      QCheck.(list (string_of Gen.char))
      (fun l ->
        Wire.decode
          (Wire.encode (fun w -> Wire.list w Wire.bytes l))
          (fun r -> Wire.read_list r Wire.read_bytes)
        = Ok l);
  ]

(* --- network model --- *)

let netsim_math () =
  let net = Larch_net.Netsim.make ~rtt_ms:20. ~bandwidth_mbps:100. in
  (* 1 MiB at 100 Mbps = 8*2^20/1e8 s, plus 1 RTT *)
  let t = Larch_net.Netsim.transfer_time net ~bytes:(1024 * 1024) ~rounds:1 in
  let expected = 0.020 +. (8. *. 1048576. /. 1e8) in
  Alcotest.(check (float 1e-9)) "transfer time" expected t;
  Alcotest.(check (float 1e-9)) "zero model" 0.
    (Larch_net.Netsim.transfer_time Larch_net.Netsim.zero ~bytes:1000 ~rounds:5)

let channel_accounting () =
  let ch = Larch_net.Channel.create () in
  let open Larch_net.Channel in
  ignore (send ch Client_to_log "12345");
  ignore (send ch Client_to_log "12345");
  (* same direction: pipelined *)
  ignore (send ch Log_to_client "123");
  ignore (send ch Client_to_log "1");
  let s = snapshot ch in
  Alcotest.(check int) "up bytes" 11 s.up;
  Alcotest.(check int) "down bytes" 3 s.down;
  Alcotest.(check int) "messages" 4 s.msgs;
  (* direction flips: C(1) L(2) C(3) -> ceil(3/2) = 2 round trips *)
  Alcotest.(check int) "round trips" 2 s.rts;
  reset ch;
  Alcotest.(check int) "reset" 0 (total_bytes ch)

(* --- account recovery backup (§9) --- *)

let backup_roundtrip () =
  Larch_util.Clock.set 1_700_000_000.;
  let log = Log_service.create ~rand_bytes:rand () in
  let alice = Client.create ~client_id:"alice" ~account_password:"strong pw" ~log ~rand_bytes:rand () in
  Client.enroll ~presignature_count:4 alice;
  let rp = Relying_party.create ~name:"site.com" ~rand_bytes:rand () in
  let pk = Client.register_fido2 alice ~rp_name:"site.com" in
  Relying_party.fido2_register rp ~username:"alice" ~pk;
  let pw = Client.register_password alice ~rp_name:"site.com" in
  let key = Relying_party.totp_register rp ~username:"alice" in
  Client.register_totp alice ~rp_name:"site.com" ~totp_key:key;
  let blob_size = Backup.store alice in
  Alcotest.(check bool) "backup non-trivial" true (blob_size > 500);
  (* the device burns down; recover on a new one *)
  match Backup.recover ~log ~client_id:"alice" ~account_password:"strong pw" ~rand_bytes:rand with
  | Error e -> Alcotest.fail e
  | Ok restored ->
      (* recovered state authenticates everywhere *)
      let pw' = Client.authenticate_password restored ~rp_name:"site.com" in
      Alcotest.(check string) "password preserved" pw pw';
      let chal = Relying_party.fido2_challenge rp ~username:"alice" in
      let a = Client.authenticate_fido2 restored ~rp_name:"site.com" ~challenge:chal in
      Alcotest.(check bool) "fido2 works after recovery" true
        (Relying_party.fido2_login rp ~username:"alice" a);
      let code = Client.authenticate_totp restored ~rp_name:"site.com" ~time:(Larch_util.Clock.now ()) in
      Alcotest.(check bool) "totp works after recovery" true
        (Relying_party.totp_login rp ~username:"alice" ~time:(Larch_util.Clock.now ()) code)

let backup_wrong_password () =
  let log = Log_service.create ~rand_bytes:rand () in
  let alice = Client.create ~client_id:"bob" ~account_password:"right" ~log ~rand_bytes:rand () in
  Client.enroll ~presignature_count:1 alice;
  ignore (Backup.store alice);
  (match Backup.recover ~log ~client_id:"bob" ~account_password:"wrong" ~rand_bytes:rand with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong password accepted");
  (* corrupted blob rejected *)
  let blob = Option.get (Log_service.fetch_backup log ~client_id:"bob") in
  let corrupted =
    String.mapi (fun i c -> if i = String.length blob - 1 then Char.chr (Char.code c lxor 1) else c) blob
  in
  Log_service.store_backup log ~client_id:"bob" corrupted;
  match Backup.recover ~log ~client_id:"bob" ~account_password:"right" ~rand_bytes:rand with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted blob accepted"

(* --- password embedding --- *)

let embed_props =
  [
    QCheck.Test.make ~name:"embed/extract roundtrip" ~count:100
      (QCheck.string_of_size (QCheck.Gen.int_range 0 28))
      (fun pw ->
        Password_protocol.extract_password (Password_protocol.embed_password pw) = Some pw);
    QCheck.Test.make ~name:"random points do not extract" ~count:30 QCheck.unit (fun () ->
        let p = Point.mul_base (Scalar.random_nonzero ~rand_bytes:rand) in
        Password_protocol.extract_password p = None);
  ]

let embed_limits () =
  Alcotest.check_raises "too long rejected"
    (Invalid_argument "Password_protocol.embed_password: too long") (fun () ->
      ignore (Password_protocol.embed_password (String.make 29 'x')))

(* --- operational odds and ends --- *)

let prune_and_unregister () =
  Larch_util.Clock.set 1_000.;
  let log = Log_service.create ~rand_bytes:rand () in
  let c = Client.create ~client_id:"x" ~account_password:"pw" ~log ~rand_bytes:rand () in
  Client.enroll ~presignature_count:1 c;
  ignore (Client.register_password c ~rp_name:"a.com");
  ignore (Client.authenticate_password c ~rp_name:"a.com");
  Larch_util.Clock.advance 1000.;
  ignore (Client.authenticate_password c ~rp_name:"a.com");
  Alcotest.(check int) "two records" 2 (List.length (Client.audit c));
  let dropped = Log_service.prune_records log ~client_id:"x" ~token:"pw" ~older_than:1500. in
  Alcotest.(check int) "one pruned" 1 dropped;
  Alcotest.(check int) "one remains" 1 (List.length (Client.audit c));
  (* totp unregister shrinks the 2PC input set *)
  Client.register_totp c ~rp_name:"t1.com" ~totp_key:(rand 20);
  Client.register_totp c ~rp_name:"t2.com" ~totp_key:(rand 20);
  Alcotest.(check int) "two regs" 2 (Log_service.totp_registration_count log ~client_id:"x");
  let s = Client.totp_side c in
  let tid = (Hashtbl.find s.Client.totp_creds "t1.com").Client.tid in
  Alcotest.(check bool) "unregistered" true
    (Log_service.totp_unregister log ~client_id:"x" ~token:"pw" ~id:tid);
  Alcotest.(check int) "one reg" 1 (Log_service.totp_registration_count log ~client_id:"x")

let gk15_proof_size_logarithmic () =
  let key = Larch_sigma.Pedersen.make ~h:(Larch_ec.Hash_to_curve.hash "size-h") in
  let size_at n =
    let opening = Scalar.random_nonzero ~rand_bytes:rand in
    let commitments =
      Array.init n (fun i ->
          if i = 0 then Point.mul opening key.Larch_sigma.Pedersen.h
          else Point.mul_base (Scalar.random_nonzero ~rand_bytes:rand))
    in
    let p = Larch_sigma.Gk15.prove ~key ~commitments ~index:0 ~opening ~tag:"t" ~rand_bytes:rand in
    Larch_sigma.Gk15.size_bytes p
  in
  let s16 = size_at 16 and s64 = size_at 64 and s256 = size_at 256 in
  Alcotest.(check bool) "grows" true (s16 < s64 && s64 < s256);
  (* logarithmic: equal increments per 4x set growth *)
  Alcotest.(check int) "log-shaped growth" (s64 - s16) (s256 - s64)

let audit_chain_detects_rollback () =
  Larch_util.Clock.set 5_000.;
  let log = Log_service.create ~rand_bytes:rand () in
  let c = Client.create ~client_id:"chain" ~account_password:"pw" ~log ~rand_bytes:rand () in
  Client.enroll ~presignature_count:1 c;
  ignore (Client.register_password c ~rp_name:"a.com");
  ignore (Client.authenticate_password c ~rp_name:"a.com");
  (match Client.audit_verified c with
  | Ok entries -> Alcotest.(check int) "one entry" 1 (List.length entries)
  | Error e -> Alcotest.fail e);
  ignore (Client.authenticate_password c ~rp_name:"a.com");
  (match Client.audit_verified c with
  | Ok entries -> Alcotest.(check int) "two entries" 2 (List.length entries)
  | Error e -> Alcotest.fail e);
  (* a malicious log silently drops the newest record (rollback) *)
  let cs = Log_service.get_client log "chain" in
  (match cs.Log_service.records with
  | _dropped :: rest ->
      cs.Log_service.records <- rest;
      cs.Log_service.chain_len <- cs.Log_service.chain_len - 1
  | [] -> Alcotest.fail "no records");
  (* recompute a consistent head for the truncated history so only the
     prefix check can catch it *)
  cs.Log_service.chain_head <- Larch_hash.Sha256.digest "larch-chain-genesis";
  List.iter
    (fun r ->
      cs.Log_service.chain_head <-
        Larch_hash.Sha256.digest_list
          [ "larch-chain"; cs.Log_service.chain_head; Record.encode r ])
    (List.rev cs.Log_service.records);
  (match Client.audit_verified c with
  | Error msg ->
      Alcotest.(check bool) "rollback named" true
        (String.length msg > 0 && String.sub msg 0 3 = "log")
  | Ok _ -> Alcotest.fail "rollback not detected");
  (* an inconsistent head (records tampered without chain update) is caught too *)
  cs.Log_service.chain_head <- String.make 32 'z';
  match Client.audit_verified c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad head not detected"

let pruned_chain_stays_consistent () =
  Larch_util.Clock.set 9_000.;
  let log = Log_service.create ~rand_bytes:rand () in
  let c = Client.create ~client_id:"prune2" ~account_password:"pw" ~log ~rand_bytes:rand () in
  Client.enroll ~presignature_count:1 c;
  ignore (Client.register_password c ~rp_name:"a.com");
  ignore (Client.authenticate_password c ~rp_name:"a.com");
  Larch_util.Clock.advance 100.;
  ignore (Client.authenticate_password c ~rp_name:"a.com");
  (match Client.audit_verified c with
  | Ok entries -> Alcotest.(check int) "pre-prune audit sees both" 2 (List.length entries)
  | Error e -> Alcotest.fail e);
  (* user-authorized pruning restarts the chain and the tree; the client
     resets its whole verified view (chain head, tree head, record cache) *)
  ignore (Log_service.prune_records log ~client_id:"prune2" ~token:"pw" ~older_than:9_050.);
  c.Client.last_chain <- None;
  c.Client.last_sth <- None;
  c.Client.audited <- [];
  match Client.audit_verified c with
  | Ok entries -> Alcotest.(check int) "pruned history verifies" 1 (List.length entries)
  | Error e -> Alcotest.fail e

let record_decode_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (match Record.decode "garbage-bytes" with Error _ -> true | Ok _ -> false);
  Alcotest.(check (option unit)) "decode_opt none" None
    (Option.map (fun _ -> ()) (Record.decode_opt "\x00\x01"))

let fido2_auth_request_codec () =
  (* roundtrip the largest wire message in the system *)
  let circuit = Lazy.force Larch_circuit.Larch_statements.fido2_circuit in
  let witness = Array.make circuit.Larch_circuit.Circuit.n_inputs false in
  let proof =
    Larch_zkboo.Zkboo.prove ~reps:10 ~circuit ~witness ~statement_tag:"codec" ~rand_bytes:rand ()
  in
  let req =
    {
      Fido2_protocol.dgst = rand 32;
      ct_nonce = rand 12;
      ct = rand 32;
      record_sig = rand 64;
      proof;
      presig_index = 42;
      hm_msg =
        { Larch_mpc.Spdz.d = Scalar.random ~rand_bytes:rand; e = Scalar.random ~rand_bytes:rand };
    }
  in
  let bytes = Fido2_protocol.encode_auth_request req in
  match Fido2_protocol.decode_auth_request bytes with
  | None -> Alcotest.fail "decode failed"
  | Some req' ->
      Alcotest.(check string) "reserializes identically" (Larch_util.Hex.encode bytes)
        (Larch_util.Hex.encode (Fido2_protocol.encode_auth_request req'));
      Alcotest.(check bool) "truncation rejected" true
        (Fido2_protocol.decode_auth_request (String.sub bytes 0 100) = None)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "protocols"
    [
      ( "auth-standards",
        [
          Alcotest.test_case "totp rfc6238 vectors" `Quick totp_rfc6238_vectors;
          Alcotest.test_case "fido2 payloads" `Quick fido2_payload_verify;
          Alcotest.test_case "password verifier" `Quick password_verifier;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick wire_roundtrip;
          Alcotest.test_case "malformed" `Quick wire_malformed;
        ] );
      qsuite "wire-props" wire_props;
      ( "net",
        [
          Alcotest.test_case "netsim math" `Quick netsim_math;
          Alcotest.test_case "channel accounting" `Quick channel_accounting;
        ] );
      ( "backup",
        [
          Alcotest.test_case "recovery roundtrip" `Slow backup_roundtrip;
          Alcotest.test_case "wrong password / corruption" `Quick backup_wrong_password;
        ] );
      qsuite "embedding-props" embed_props;
      ( "misc",
        [
          Alcotest.test_case "embed limits" `Quick embed_limits;
          Alcotest.test_case "prune + totp unregister" `Quick prune_and_unregister;
          Alcotest.test_case "audit chain rollback" `Quick audit_chain_detects_rollback;
          Alcotest.test_case "audit chain after prune" `Quick pruned_chain_stays_consistent;
          Alcotest.test_case "gk15 size logarithmic" `Quick gk15_proof_size_logarithmic;
          Alcotest.test_case "record garbage" `Quick record_decode_garbage;
          Alcotest.test_case "fido2 request codec" `Quick fido2_auth_request_codec;
        ] );
    ]
