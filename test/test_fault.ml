(* Deterministic fault-injection harness for the client↔log transport.

   Three layers of coverage:

   - a scripted fault-schedule matrix per protocol (FIDO2 / TOTP /
     password): drop, duplication, delay, reordering, corruption, and
     log crashes at exact message legs.  Every scenario must end in
     {completed} or {typed error} — never hung or half-mutated — and the
     world must be fully recoverable afterwards: a clean re-drive
     succeeds, the audit chain verifies, and the client's and log's
     presignature/identifier cursors agree (no presignature is ever
     double-consumed, no record double-appended);

   - seeded-storm determinism: the same seed replays the same world
     byte for byte (outcomes, channel meters, record chain, event
     stream);

   - the multilog availability matrix (n ∈ {3,5}): every online subset
     of size ≥ t authenticates and audits, any smaller subset fails
     typed, and enrollment/registration failures roll back cleanly.

   Seed threading: `--seed S` (stripped before alcotest sees argv) or
   LARCH_SEED=S reseeds the storm tests; the scripted matrix is
   deliberately seed-independent so its assertions stay exact.
   LARCH_FAULT_FAST=1 trims the matrix for the @fault/@smoke aliases. *)

open Larch_core
module Fault = Larch_net.Fault
module Transport = Larch_net.Transport
module Channel = Larch_net.Channel
module Clock = Larch_util.Clock
module Obs = Larch_obs

let seed, argv =
  let rec strip acc s = function
    | [] -> (s, List.rev acc)
    | "--seed" :: v :: rest -> strip acc (Some v) rest
    | a :: rest -> strip (a :: acc) s rest
  in
  let s, rest = strip [] None (Array.to_list Sys.argv) in
  let s =
    match s with
    | Some s -> s
    | None -> Option.value (Sys.getenv_opt "LARCH_SEED") ~default:"42"
  in
  (s, Array.of_list rest)

let fast = Sys.getenv_opt "LARCH_FAULT_FAST" <> None

let () =
  Printf.printf "fault harness: seed=%s%s (reproduce: LARCH_SEED=%s dune exec test/test_fault.exe)\n%!"
    seed
    (if fast then " [fast]" else "")
    seed

(* --- world scaffolding: simulated clock, deterministic event stream --- *)

let base_time = 1_754_000_000.

let fresh_world ~entropy () =
  Clock.set base_time;
  Obs.Runtime.set_time_source (Some Clock.now);
  Obs.Runtime.set_events true;
  Obs.Events.clear ();
  let rand = Larch_hash.Drbg.rand_bytes_of (Larch_hash.Drbg.create ~entropy) in
  let log = Log_service.create ~rand_bytes:rand () in
  let client =
    Client.create ~client_id:"alice" ~account_password:"pw" ~log ~rand_bytes:rand ()
  in
  (log, client, rand)

type outcome = Completed | Typed of string

let outcome_string = function Completed -> "completed" | Typed m -> "typed: " ^ m

(* The only acceptable ends of a faulty operation.  Anything else —
   including an untyped exception — fails the test. *)
let classify (f : unit -> unit) : outcome =
  match f () with
  | () -> Completed
  | exception Transport.Error e ->
      Typed ("transport " ^ Transport.failure_to_string e.Transport.last)
  | exception Types.Protocol_error m -> Typed ("protocol " ^ m)
  | exception Client.Log_misbehaved m -> Typed ("log-misbehaved " ^ m)

let expect_completed name = function
  | Completed -> ()
  | Typed m -> Alcotest.failf "%s: expected completion, got typed failure: %s" name m

let expect_typed name = function
  | Completed -> Alcotest.failf "%s: expected a typed failure, completed instead" name
  | Typed _ -> ()

let records log = List.length (Log_service.audit log ~client_id:"alice" ~token:"pw")

(* Run one scripted scenario: install the schedule, drive [auth] once,
   then verify the recovery invariants — injector off, resync, a clean
   re-drive succeeds, and the audit chain verifies end to end. *)
let run_scenario ~name ~schedule ~events (log, client) (auth : unit -> unit) :
    outcome * Transport.stats * int =
  let recs0 = records log in
  Transport.reset_stats client.Client.transport;
  Transport.set_injector client.Client.transport (Some (Fault.scripted ~events schedule));
  let outcome = classify auth in
  let stats = Transport.stats client.Client.transport in
  let faulty_recs = records log - recs0 in
  Transport.set_injector client.Client.transport None;
  Client.resync client;
  (match classify auth with
  | Completed -> ()
  | Typed m -> Alcotest.failf "%s: world wedged — clean re-drive failed: %s" name m);
  (match Client.audit_verified client with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: audit chain broken after recovery: %s" name e);
  (outcome, stats, faulty_recs)

(* --- FIDO2 schedule matrix ---

   Message legs per attempt-free session: 0 begin-req, 1 begin-resp,
   2 commit-req, 3 commit-resp, 4 finish-req, 5 finish-resp (retries and
   resync shift later indices). *)

let fido2_world tag =
  let log, client, rand = fresh_world ~entropy:("fault-matrix-fido2-" ^ tag) () in
  Client.enroll ~presignature_count:8 client;
  ignore (Client.register_fido2 client ~rp_name:"rp.com");
  (log, client, rand)

let fido2_scenario ~name ~schedule ?(events = []) ~check () =
  let log, client, rand = fido2_world name in
  let before_c = Client.presignatures_remaining client in
  let before_l = Log_service.presignatures_remaining log ~client_id:"alice" in
  let auth () =
    ignore (Client.authenticate_fido2 client ~rp_name:"rp.com" ~challenge:(rand 32))
  in
  let outcome, stats, faulty_recs = run_scenario ~name ~schedule ~events (log, client) auth in
  let used_c = before_c - Client.presignatures_remaining client in
  let used_l = before_l - Log_service.presignatures_remaining log ~client_id:"alice" in
  Alcotest.(check int) (name ^ ": client and log presig cursors agree") used_c used_l;
  check ~outcome ~stats ~faulty_recs ~used:used_c

let fido2_drop_request () =
  fido2_scenario ~name:"fido2 drop begin-request" ~schedule:[ (0, Fault.Drop) ]
    ~check:(fun ~outcome ~stats ~faulty_recs ~used ->
      expect_completed "fido2 drop-req" outcome;
      Alcotest.(check int) "one retry" 1 stats.Transport.retries;
      Alcotest.(check int) "one record for the faulty auth" 1 faulty_recs;
      Alcotest.(check int) "one presig per logical auth" 2 used)
    ()

let fido2_drop_response () =
  (* the log executed and consumed a presignature; the retry must be
     answered from the replay cache, not re-executed *)
  fido2_scenario ~name:"fido2 drop begin-response" ~schedule:[ (1, Fault.Drop) ]
    ~check:(fun ~outcome ~stats ~faulty_recs ~used ->
      expect_completed "fido2 drop-resp" outcome;
      Alcotest.(check bool) "replay cache answered the retry" true (stats.Transport.replays >= 1);
      Alcotest.(check int) "no double record" 1 faulty_recs;
      Alcotest.(check int) "no extra presignature burned" 2 used)
    ()

let fido2_duplicate_commit () =
  fido2_scenario ~name:"fido2 duplicate commit-request" ~schedule:[ (2, Fault.Duplicate) ]
    ~check:(fun ~outcome ~stats ~faulty_recs ~used ->
      expect_completed "fido2 dup-commit" outcome;
      Alcotest.(check bool) "duplicate absorbed by cache" true (stats.Transport.replays >= 1);
      Alcotest.(check int) "record appended once" 1 faulty_recs;
      Alcotest.(check int) "presigs" 2 used)
    ()

let fido2_corrupt_request () =
  fido2_scenario ~name:"fido2 corrupt begin-request"
    ~schedule:[ (0, Fault.Corrupt Fault.Truncate) ]
    ~check:(fun ~outcome ~stats ~faulty_recs:_ ~used ->
      expect_completed "fido2 corrupt-req" outcome;
      (* the log rejected the damaged bytes; the clean retransmission went through *)
      Alcotest.(check int) "one retry after garbled" 1 stats.Transport.retries;
      Alcotest.(check int) "presigs" 2 used)
    ()

let fido2_crash_mid_session () =
  (* the log dies between round 1 and round 2 and comes back with its
     volatile signing session gone: the operation must fail typed, the
     consumed presignature is burned forward, and the next auth works *)
  fido2_scenario ~name:"fido2 crash mid-session" ~schedule:[]
    ~events:[ (2, Fault.Crash); (3, Fault.Restart) ]
    ~check:(fun ~outcome ~stats:_ ~faulty_recs ~used ->
      expect_typed "fido2 crash-mid" outcome;
      Alcotest.(check int) "no record from the dead session" 0 faulty_recs;
      Alcotest.(check int) "burned + clean-auth presigs" 2 used)
    ()

let fido2_give_up_redrive () =
  (* every attempt's request leg drops: the transport gives up, the
     client rolls the session back (burning its possibly-leaked
     presignature) and re-drives a fresh session once — which succeeds *)
  fido2_scenario ~name:"fido2 give-up and re-drive"
    ~schedule:[ (0, Fault.Drop); (2, Fault.Drop); (4, Fault.Drop); (6, Fault.Drop) ]
    ~check:(fun ~outcome ~stats ~faulty_recs ~used ->
      expect_completed "fido2 redrive" outcome;
      Alcotest.(check bool) "exhausted the retry budget" true (stats.Transport.retries >= 3);
      Alcotest.(check int) "one record (re-driven session)" 1 faulty_recs;
      Alcotest.(check int) "abandoned presig burned, not reused" 3 used)
    ()

(* --- TOTP schedule matrix (invoke: legs 0 request, 1 response) --- *)

let totp_world tag =
  let log, client, rand = fresh_world ~entropy:("fault-matrix-totp-" ^ tag) () in
  Client.enroll ~presignature_count:1 client;
  Client.register_totp client ~rp_name:"rp.com" ~totp_key:(rand 20);
  (log, client, rand)

let totp_scenario ~name ~schedule ?(events = []) ~check () =
  let log, client, _rand = totp_world name in
  let auth () =
    ignore (Client.authenticate_totp client ~rp_name:"rp.com" ~time:(Clock.now ()))
  in
  let outcome, stats, faulty_recs = run_scenario ~name ~schedule ~events (log, client) auth in
  check ~outcome ~stats ~faulty_recs

let totp_drop_request () =
  totp_scenario ~name:"totp drop request" ~schedule:[ (0, Fault.Drop) ]
    ~check:(fun ~outcome ~stats ~faulty_recs ->
      expect_completed "totp drop-req" outcome;
      Alcotest.(check int) "one retry" 1 stats.Transport.retries;
      Alcotest.(check int) "single record" 1 faulty_recs)
    ()

let totp_drop_response () =
  (* the 2PC ran and the log recorded; the retried invocation must be
     deduplicated on the encrypted nonce, not run (or logged) again *)
  totp_scenario ~name:"totp drop response" ~schedule:[ (1, Fault.Drop) ]
    ~check:(fun ~outcome ~stats:_ ~faulty_recs ->
      expect_completed "totp drop-resp" outcome;
      Alcotest.(check int) "nonce-deduped: no double record" 1 faulty_recs)
    ()

let totp_duplicate () =
  totp_scenario ~name:"totp duplicated invocation" ~schedule:[ (0, Fault.Duplicate) ]
    ~check:(fun ~outcome ~stats:_ ~faulty_recs ->
      expect_completed "totp dup" outcome;
      Alcotest.(check int) "nonce-deduped: no double record" 1 faulty_recs)
    ()

let totp_crash_no_recovery () =
  totp_scenario ~name:"totp crash without restart" ~schedule:[]
    ~events:[ (0, Fault.Crash) ]
    ~check:(fun ~outcome ~stats ~faulty_recs ->
      expect_typed "totp crash" outcome;
      Alcotest.(check int) "all attempts timed out" 4 stats.Transport.timeouts;
      Alcotest.(check int) "nothing recorded" 0 faulty_recs)
    ()

(* --- password schedule matrix (call: legs 0 request, 1 response) --- *)

let pw_world tag =
  let log, client, _rand = fresh_world ~entropy:("fault-matrix-pw-" ^ tag) () in
  Client.enroll ~presignature_count:1 client;
  ignore (Client.register_password client ~rp_name:"rp.com");
  (log, client, ())

let pw_ids_aligned name log client =
  Alcotest.(check (list string))
    (name ^ ": client/log identifier lists aligned")
    (Log_service.pw_registered_ids log ~client_id:"alice")
    (Client.pw_side client).Client.pw_ids

let pw_scenario ~name ~schedule ?(events = []) ?(auths = 1) ~check () =
  let log, client, () = pw_world name in
  let auth () =
    for _ = 1 to auths do
      ignore (Client.authenticate_password client ~rp_name:"rp.com")
    done
  in
  let outcome, stats, faulty_recs = run_scenario ~name ~schedule ~events (log, client) auth in
  pw_ids_aligned name log client;
  check ~outcome ~stats ~faulty_recs

let pw_drop_request () =
  pw_scenario ~name:"password drop request" ~schedule:[ (0, Fault.Drop) ]
    ~check:(fun ~outcome ~stats ~faulty_recs ->
      expect_completed "pw drop-req" outcome;
      Alcotest.(check int) "one retry" 1 stats.Transport.retries;
      Alcotest.(check int) "single record" 1 faulty_recs)
    ()

let pw_corrupt_response () =
  pw_scenario ~name:"password corrupt response" ~schedule:[ (1, Fault.Corrupt Fault.Truncate) ]
    ~check:(fun ~outcome ~stats ~faulty_recs ->
      expect_completed "pw corrupt-resp" outcome;
      Alcotest.(check bool) "retry answered from cache" true (stats.Transport.replays >= 1);
      Alcotest.(check int) "no double record" 1 faulty_recs)
    ()

let pw_overdelayed_request () =
  (* the request arrives after the client gave up: the log has already
     appended the record, so the retry must be a pure replay *)
  pw_scenario ~name:"password over-delayed request" ~schedule:[ (0, Fault.Delay 100.) ]
    ~check:(fun ~outcome ~stats ~faulty_recs ->
      expect_completed "pw over-delay" outcome;
      Alcotest.(check int) "timed out once" 1 stats.Transport.timeouts;
      Alcotest.(check bool) "replay, not re-execution" true (stats.Transport.replays >= 1);
      Alcotest.(check int) "record appended exactly once" 1 faulty_recs)
    ()

let pw_small_delay () =
  pw_scenario ~name:"password sub-timeout delay" ~schedule:[ (0, Fault.Delay 0.1) ]
    ~check:(fun ~outcome ~stats ~faulty_recs ->
      expect_completed "pw delay" outcome;
      Alcotest.(check int) "no retries for a tolerable delay" 0 stats.Transport.retries;
      Alcotest.(check int) "single record" 1 faulty_recs)
    ()

let pw_reorder_stale () =
  (* leg 2 = second auth's request: the network re-delivers the first
     auth's (already answered) request first — the log replays it from
     cache without appending a third record *)
  pw_scenario ~name:"password stale re-delivery" ~schedule:[ (2, Fault.Reorder) ] ~auths:2
    ~check:(fun ~outcome ~stats ~faulty_recs ->
      expect_completed "pw reorder" outcome;
      Alcotest.(check int) "stale copy answered from cache" 1 stats.Transport.replays;
      Alcotest.(check int) "two auths, two records" 2 faulty_recs)
    ()

let pw_crash_restart () =
  (* per-client password state is durable: a crash+restart between the
     two legs only costs a retry *)
  pw_scenario ~name:"password crash and restart" ~schedule:[]
    ~events:[ (0, Fault.Crash); (1, Fault.Restart) ]
    ~check:(fun ~outcome ~stats:_ ~faulty_recs ->
      expect_completed "pw crash-restart" outcome;
      Alcotest.(check int) "single record" 1 faulty_recs)
    ()

(* --- seeded-storm determinism: same seed ⇒ identical transcript --- *)

let transcript ~run_tag ~auths : string =
  let log, client, rand =
    fresh_world ~entropy:(Printf.sprintf "storm-world-%s" seed) ()
  in
  ignore run_tag;
  (* the run tag must NOT influence the world *)
  Client.enroll ~presignature_count:(2 * auths * 2) client;
  ignore (Client.register_fido2 client ~rp_name:"rp.com");
  Client.register_totp client ~rp_name:"rp.com" ~totp_key:(rand 20);
  ignore (Client.register_password client ~rp_name:"rp.com");
  Transport.set_injector client.Client.transport
    (Some (Fault.seeded ~seed:("storm-" ^ seed) Fault.stormy));
  let buf = Buffer.create 1024 in
  let attempt name f =
    Clock.advance 30.;
    Buffer.add_string buf (name ^ " " ^ outcome_string (classify f) ^ "\n")
  in
  for i = 1 to auths do
    attempt
      (Printf.sprintf "fido2/%d" i)
      (fun () ->
        ignore (Client.authenticate_fido2 client ~rp_name:"rp.com" ~challenge:(rand 32)));
    attempt
      (Printf.sprintf "totp/%d" i)
      (fun () -> ignore (Client.authenticate_totp client ~rp_name:"rp.com" ~time:(Clock.now ())));
    attempt
      (Printf.sprintf "password/%d" i)
      (fun () -> ignore (Client.authenticate_password client ~rp_name:"rp.com"))
  done;
  Transport.set_injector client.Client.transport None;
  Client.resync client;
  let snap = Client.channel_snapshot client in
  Buffer.add_string buf
    (Printf.sprintf "wire up=%d down=%d msgs=%d rts=%d\n" snap.Channel.up snap.Channel.down
       snap.Channel.msgs snap.Channel.rts);
  let resp = Log_service.audit_with_head log ~client_id:"alice" ~token:"pw" in
  Buffer.add_string buf
    (Printf.sprintf "chain len=%d head=%s\n" resp.Log_service.chain_len
       (Larch_util.Hex.encode resp.Log_service.chain_head));
  let st = Transport.stats client.Client.transport in
  Buffer.add_string buf
    (Printf.sprintf "stats a=%d r=%d t=%d f=%d p=%d\n" st.Transport.attempts st.Transport.retries
       st.Transport.timeouts st.Transport.faults st.Transport.replays);
  List.iter (fun e -> Buffer.add_string buf (Obs.Events.to_string e ^ "\n")) (Obs.Events.recent ());
  Buffer.contents buf

let storm_deterministic () =
  let auths = if fast then 1 else 2 in
  let t1 = transcript ~run_tag:1 ~auths in
  let t2 = transcript ~run_tag:2 ~auths in
  if not (String.equal t1 t2) then
    Printf.printf "--- run 1 ---\n%s--- run 2 ---\n%s%!" t1 t2;
  Alcotest.(check bool)
    (Printf.sprintf "seed %s replays byte-for-byte (LARCH_SEED=%s to reproduce)" seed seed)
    true (String.equal t1 t2);
  (* the transcript must actually contain injected faults, or the storm
     profile silently stopped injecting *)
  Alcotest.(check bool) "storm produced transport events" true
    (String.length t1 > 0
    && (String.index_opt t1 '\n' <> None)
    && List.exists
         (fun line ->
           List.exists
             (fun k -> String.length line >= String.length k)
             [ "transport." ])
         [ t1 ])

(* --- multilog availability matrix --- *)

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

let multilog_world ~n ~threshold =
  Clock.set base_time;
  Obs.Runtime.set_time_source (Some Clock.now);
  Obs.Runtime.set_events true;
  Obs.Events.clear ();
  let rand =
    Larch_hash.Drbg.rand_bytes_of
      (Larch_hash.Drbg.create ~entropy:(Printf.sprintf "fault-multilog-%d-%d" n threshold))
  in
  let ml = Multilog.create ~n ~threshold ~rand_bytes:rand () in
  let c = Multilog.enroll ml ~client_id:"alice" ~account_password:"pw" in
  ignore (Multilog.register ml c ~rp_name:"rp.com");
  (ml, c)

let availability_matrix ~n ~threshold () =
  let ml, c = multilog_world ~n ~threshold in
  let expected = Multilog.authenticate ml c ~rp_name:"rp.com" ~now:(Clock.now ()) in
  for mask = 0 to (1 lsl n) - 1 do
    for i = 0 to n - 1 do
      Multilog.set_online ml i (mask land (1 lsl i) <> 0)
    done;
    let up = popcount mask in
    (match Multilog.authenticate ml c ~rp_name:"rp.com" ~now:(Clock.now ()) with
    | pw ->
        if up < threshold then
          Alcotest.failf "n=%d t=%d mask=%x: authenticated with only %d logs" n threshold mask up;
        Alcotest.(check string)
          (Printf.sprintf "n=%d mask=%x: password stable" n mask)
          expected pw
    | exception Multilog.Unavailable _ ->
        if up >= threshold then
          Alcotest.failf "n=%d t=%d mask=%x: unavailable with %d logs up" n threshold mask up);
    let res = Multilog.audit ml c in
    Alcotest.(check bool)
      (Printf.sprintf "n=%d mask=%x: audit coverage flag" n mask)
      (up >= n - threshold + 1)
      res.Multilog.complete
  done;
  for i = 0 to n - 1 do
    Multilog.set_online ml i true
  done

let multilog_failover_event () =
  let ml, c = multilog_world ~n:3 ~threshold:2 in
  (* log 0 crashed (injector, not admin-down): the client must fail over
     past it mid-flight and still authenticate with logs 1 and 2 *)
  Multilog.set_injector ml 0 (Some (Fault.scripted ~events:[ (0, Fault.Crash) ] []));
  Obs.Events.clear ();
  ignore (Multilog.authenticate ml c ~rp_name:"rp.com" ~now:(Clock.now ()));
  Alcotest.(check bool) "failover event emitted" true
    (List.exists (fun e -> e.Obs.Events.kind = Obs.Events.Failover) (Obs.Events.recent ()));
  Multilog.set_injector ml 0 None;
  ignore (Multilog.authenticate ml c ~rp_name:"rp.com" ~now:(Clock.now ()))

let multilog_enroll_rollback () =
  Clock.set base_time;
  Obs.Runtime.set_time_source (Some Clock.now);
  let rand =
    Larch_hash.Drbg.rand_bytes_of (Larch_hash.Drbg.create ~entropy:"fault-ml-enroll-rollback")
  in
  let ml = Multilog.create ~n:3 ~threshold:2 ~rand_bytes:rand () in
  Multilog.set_online ml 2 false;
  (match Multilog.enroll ml ~client_id:"alice" ~account_password:"pw" with
  | _ -> Alcotest.fail "enrollment succeeded with a log down"
  | exception Transport.Error _ -> ());
  (* the first two logs were rolled back: a clean re-enrollment works *)
  Multilog.set_online ml 2 true;
  let c = Multilog.enroll ml ~client_id:"alice" ~account_password:"pw" in
  ignore (Multilog.register ml c ~rp_name:"rp.com");
  ignore (Multilog.authenticate ml c ~rp_name:"rp.com" ~now:(Clock.now ()));
  (* revoke leaves the client re-enrollable too *)
  Multilog.revoke ml c;
  let c2 = Multilog.enroll ml ~client_id:"alice" ~account_password:"pw" in
  ignore (Multilog.register ml c2 ~rp_name:"rp.com")

let multilog_register_rollback () =
  let ml, c = multilog_world ~n:3 ~threshold:2 in
  (* log 2 unreachable mid-registration: the identifier must be
     unregistered from the logs that already stored it *)
  Multilog.set_injector ml 2 (Some (Fault.scripted ~events:[ (0, Fault.Crash) ] []));
  (match Multilog.register ml c ~rp_name:"new.com" with
  | _ -> Alcotest.fail "registration succeeded with a log down"
  | exception Transport.Error _ -> ());
  Multilog.set_injector ml 2 None;
  Array.iter
    (fun log ->
      Alcotest.(check int) "identifier lists realigned" 1
        (List.length (Log_service.pw_registered_ids log ~client_id:"alice")))
    ml.Multilog.logs;
  let _pw = Multilog.register ml c ~rp_name:"new.com" in
  ignore (Multilog.authenticate ml c ~rp_name:"new.com" ~now:(Clock.now ()))

(* --- channel accounting edge cases --- *)

let channel_reset_fresh_round () =
  let ch = Channel.create () in
  ignore (Channel.send ch Channel.Client_to_log "abc");
  ignore (Channel.send ch Channel.Log_to_client "de");
  Channel.reset ch;
  let s = Channel.snapshot ch in
  Alcotest.(check int) "zeroed up" 0 s.Channel.up;
  Alcotest.(check int) "zeroed rts" 0 s.Channel.rts;
  (* the direction memory is cleared too: the next message opens a fresh
     round exactly as on a new channel *)
  ignore (Channel.send ch Channel.Log_to_client "x");
  let s = Channel.snapshot ch in
  Alcotest.(check int) "fresh round after reset" 1 s.Channel.rts;
  Alcotest.(check int) "one message" 1 s.Channel.msgs

let channel_zero_byte_metering () =
  let ch = Channel.create () in
  ignore (Channel.send ch Channel.Client_to_log "");
  ignore (Channel.send ch Channel.Log_to_client "");
  let s = Channel.snapshot ch in
  Alcotest.(check int) "zero bytes up" 0 s.Channel.up;
  Alcotest.(check int) "zero bytes down" 0 s.Channel.down;
  Alcotest.(check int) "messages still counted" 2 s.Channel.msgs;
  Alcotest.(check int) "rounds still flip" 1 s.Channel.rts

let duplicate_metering () =
  let ch = Channel.create () in
  let tr = Transport.create ch in
  Transport.set_injector tr (Some (Fault.scripted [ (0, Fault.Duplicate) ]));
  let v =
    Transport.call tr ~op:"x" ~req:(String.make 10 'q') ~decode:Option.some (fun _ ->
        String.make 5 'r')
  in
  Alcotest.(check string) "value delivered" (String.make 5 'r') v;
  let s = Channel.snapshot ch in
  Alcotest.(check int) "both copies metered" 20 s.Channel.up;
  Alcotest.(check int) "response metered once" 5 s.Channel.down;
  Alcotest.(check int) "three messages" 3 s.Channel.msgs;
  Alcotest.(check int) "one round trip" 1 s.Channel.rts;
  let st = Transport.stats tr in
  Alcotest.(check int) "duplicate replay-cached" 1 st.Transport.replays

let reorder_metering () =
  let ch = Channel.create () in
  let tr = Transport.create ch in
  Transport.set_injector tr (Some (Fault.scripted [ (2, Fault.Reorder) ]));
  let echo n _ = String.make n 'r' in
  ignore (Transport.call tr ~op:"a" ~req:(String.make 4 'q') ~decode:Option.some (echo 2));
  ignore (Transport.call tr ~op:"b" ~req:(String.make 6 'q') ~decode:Option.some (echo 2));
  let s = Channel.snapshot ch in
  (* stale re-delivery of the 4-byte request is metered on the wire *)
  Alcotest.(check int) "up includes the stale copy" 14 s.Channel.up;
  Alcotest.(check int) "down" 4 s.Channel.down;
  Alcotest.(check int) "five messages" 5 s.Channel.msgs;
  Alcotest.(check int) "two round trips" 2 s.Channel.rts;
  Alcotest.(check int) "stale copy answered from cache" 1 (Transport.stats tr).Transport.replays

(* a clean-scheduled injector must meter exactly like the passthrough:
   turning fault injection on without faults is a zero-behavior change *)
let clean_injector_matches_passthrough () =
  let drive tr =
    ignore (Transport.call tr ~op:"a" ~req:"0123456789" ~decode:Option.some (fun _ -> "abcd"));
    Transport.post tr ~op:"b" ~req:"0123456" (fun _ -> ());
    ignore
      (Transport.call tr ~op:"c" ~req:"01" ~decode:Option.some ~meter_resp:false (fun _ -> "zz"));
    Transport.invoke tr ~op:"d" (fun () -> ())
  in
  let ch1 = Channel.create () in
  let t1 = Transport.create ch1 in
  drive t1;
  let ch2 = Channel.create () in
  let t2 = Transport.create ch2 in
  Transport.set_injector t2 (Some (Fault.scripted []));
  drive t2;
  let s1 = Channel.snapshot ch1 and s2 = Channel.snapshot ch2 in
  Alcotest.(check int) "up equal" s1.Channel.up s2.Channel.up;
  Alcotest.(check int) "down equal" s1.Channel.down s2.Channel.down;
  Alcotest.(check int) "msgs equal" s1.Channel.msgs s2.Channel.msgs;
  Alcotest.(check int) "rts equal" s1.Channel.rts s2.Channel.rts;
  let st1 = Transport.stats t1 in
  Alcotest.(check int) "passthrough keeps no stats" 0
    (st1.Transport.attempts + st1.Transport.retries + st1.Transport.faults)

let admin_down_fails_fast () =
  let tr = Transport.create (Channel.create ()) in
  Transport.set_admin_down tr true;
  (match Transport.invoke tr ~op:"x" (fun () -> ()) with
  | () -> Alcotest.fail "admin-down transport served a call"
  | exception Transport.Error e ->
      Alcotest.(check int) "no pointless retries" 1 e.Transport.attempts);
  Transport.set_admin_down tr false;
  Transport.invoke tr ~op:"x" (fun () -> ())

(* --- suites --- *)

let fido2_suite =
  let all =
    [
      ("drop begin-request", fido2_drop_request);
      ("drop begin-response (replay cache)", fido2_drop_response);
      ("duplicate commit-request", fido2_duplicate_commit);
      ("corrupt begin-request", fido2_corrupt_request);
      ("crash mid-session", fido2_crash_mid_session);
      ("give up and re-drive", fido2_give_up_redrive);
    ]
  in
  let all =
    if fast then
      List.filter
        (fun (n, _) -> n = "drop begin-response (replay cache)" || n = "crash mid-session")
        all
    else all
  in
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f) all

let totp_suite =
  let all =
    [
      ("drop request", totp_drop_request);
      ("drop response (nonce dedup)", totp_drop_response);
      ("duplicate invocation", totp_duplicate);
      ("crash without restart", totp_crash_no_recovery);
    ]
  in
  let all =
    if fast then
      List.filter
        (fun (n, _) -> n = "drop response (nonce dedup)" || n = "crash without restart")
        all
    else all
  in
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f) all

let pw_suite =
  let all =
    [
      ("drop request", pw_drop_request);
      ("corrupt response", pw_corrupt_response);
      ("over-delayed request", pw_overdelayed_request);
      ("sub-timeout delay", pw_small_delay);
      ("stale re-delivery", pw_reorder_stale);
      ("crash and restart", pw_crash_restart);
    ]
  in
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f) all

let multilog_suite =
  let base =
    [
      Alcotest.test_case "availability matrix n=3 t=2" `Quick (availability_matrix ~n:3 ~threshold:2);
      Alcotest.test_case "failover event" `Quick multilog_failover_event;
      Alcotest.test_case "enrollment rollback" `Quick multilog_enroll_rollback;
      Alcotest.test_case "registration rollback" `Quick multilog_register_rollback;
    ]
  in
  if fast then base
  else
    base
    @ [
        Alcotest.test_case "availability matrix n=5 t=3" `Quick
          (availability_matrix ~n:5 ~threshold:3);
      ]

let () =
  Alcotest.run ~argv "faults"
    [
      ("fido2", fido2_suite);
      ("totp", totp_suite);
      ("password", pw_suite);
      ("determinism", [ Alcotest.test_case "seeded storm replays" `Quick storm_deterministic ]);
      ("multilog", multilog_suite);
      ( "accounting",
        [
          Alcotest.test_case "reset opens a fresh round" `Quick channel_reset_fresh_round;
          Alcotest.test_case "zero-byte metering" `Quick channel_zero_byte_metering;
          Alcotest.test_case "duplicate metering" `Quick duplicate_metering;
          Alcotest.test_case "reorder metering" `Quick reorder_metering;
          Alcotest.test_case "clean injector = passthrough" `Quick
            clean_injector_matches_passthrough;
          Alcotest.test_case "admin-down fails fast" `Quick admin_down_fails_fast;
        ] );
    ]
