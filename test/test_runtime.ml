(* Scheduler tests: seeded determinism (same seed ⇒ identical completion
   order and digest), schedule diversity (different seeds explore many
   distinct interleavings), no starvation (every spawned fiber completes
   or is cancelled), cancellation/mailbox semantics, the virtual clock,
   and the Clock-tie regression — fibers sleeping to the same simulated
   tick wake in deterministic seeded order. *)

module Runtime = Larch_runtime.Runtime
module Mailbox = Larch_runtime.Runtime.Mailbox
module Clock = Larch_util.Clock
module Sha256 = Larch_hash.Sha256

let with_clock f =
  Clock.set 1_700_000_000.;
  Fun.protect ~finally:Clock.use_real_time f

(* -- basic semantics ----------------------------------------------------- *)

let spawn_await_value () =
  with_clock @@ fun () ->
  let v =
    Runtime.run (fun () ->
        let a = Runtime.spawn (fun () -> 19) in
        let b = Runtime.spawn (fun () -> Runtime.yield (); 23) in
        Runtime.await a + Runtime.await b)
  in
  Alcotest.(check int) "sum of awaited fibers" 42 v

let exception_propagates () =
  with_clock @@ fun () ->
  let r =
    Runtime.run (fun () ->
        let p = Runtime.spawn (fun () -> failwith "boom") in
        match Runtime.await p with
        | _ -> "no-raise"
        | exception Failure m -> "caught:" ^ m)
  in
  Alcotest.(check string) "awaiter sees the exception" "caught:boom" r

let sleep_advances_virtual_time () =
  with_clock @@ fun () ->
  let t0 = Clock.now () in
  let dt =
    Runtime.run (fun () ->
        Runtime.sleep 0.25;
        Clock.now () -. t0)
  in
  Alcotest.(check (float 1e-9)) "clock jumped by the sleep" 0.25 dt

let advance_hook_suspends () =
  (* Clock.advance inside a fiber must behave like sleep: other fibers
     run during the interval instead of seeing time shoved forward. *)
  with_clock @@ fun () ->
  let order = ref [] in
  Runtime.run (fun () ->
      let slow =
        Runtime.spawn ~name:"slow" (fun () ->
            Clock.advance 0.2;
            order := "slow" :: !order)
      in
      let quick =
        Runtime.spawn ~name:"quick" (fun () ->
            Runtime.sleep 0.05;
            order := "quick" :: !order)
      in
      Runtime.await slow;
      Runtime.await quick);
  Alcotest.(check (list string))
    "short sleeper finished during the long advance" [ "slow"; "quick" ]
    !order

let cancel_parked_fiber () =
  with_clock @@ fun () ->
  let cancelled = ref false in
  Runtime.run (fun () ->
      let mb = Mailbox.create () in
      let p =
        Runtime.spawn (fun () ->
            match Mailbox.recv mb with
            | _ -> ()
            | exception Runtime.Cancelled ->
                cancelled := true;
                raise Runtime.Cancelled)
      in
      Runtime.yield ();
      (* p is now parked on the mailbox *)
      Runtime.cancel p;
      (match Runtime.await p with
      | () -> Alcotest.fail "cancelled fiber returned normally"
      | exception Runtime.Cancelled -> ()));
  Alcotest.(check bool) "fiber observed Cancelled at its park" true !cancelled

let cancel_unstarted_fiber () =
  with_clock @@ fun () ->
  let ran = ref false in
  Runtime.run (fun () ->
      let p = Runtime.spawn (fun () -> ran := true) in
      Runtime.cancel p;
      match Runtime.await p with
      | () -> Alcotest.fail "expected Cancelled"
      | exception Runtime.Cancelled -> ());
  Alcotest.(check bool) "body never ran" false !ran

let deadlock_detected () =
  with_clock @@ fun () ->
  match
    Runtime.run (fun () ->
        let mb : int Mailbox.t = Mailbox.create ~name:"never" () in
        ignore (Mailbox.recv mb))
  with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Runtime.Deadlock names ->
      Alcotest.(check bool)
        "main listed among stuck fibers" true
        (List.exists
           (fun n ->
             String.length n >= 4 && String.sub n 0 4 = "main")
           names)

let mailbox_batch () =
  with_clock @@ fun () ->
  let batches =
    Runtime.run (fun () ->
        let mb = Mailbox.create () in
        let consumer =
          Runtime.spawn (fun () ->
              let b1 = Mailbox.recv_batch mb in
              let b2 = Mailbox.recv_batch mb in
              [ b1; b2 ])
        in
        Mailbox.send mb 1;
        Mailbox.send mb 2;
        Mailbox.send mb 3;
        Runtime.yield ();
        (* consumer drained 1,2,3 as one batch; queue a second wave *)
        Mailbox.send mb 4;
        Runtime.await consumer)
  in
  Alcotest.(check (list (list int)))
    "same-instant sends drain as one batch"
    [ [ 1; 2; 3 ]; [ 4 ] ]
    batches

(* -- determinism properties ---------------------------------------------- *)

(* A contended workload: [n] fibers each loop a few times over yield /
   jittered sleeps / a shared mailbox, recording their completion.  The
   trace is (completion order, event log digest) — any scheduling drift
   changes it. *)
let chaotic_world ~seed ~n () =
  let events = Buffer.create 256 in
  let order = ref [] in
  Runtime.run ~seed (fun () ->
      let mb = Mailbox.create () in
      let ps =
        List.init n (fun i ->
            Runtime.spawn ~name:("w" ^ string_of_int i) (fun () ->
                for k = 0 to 2 do
                  Buffer.add_string events (Printf.sprintf "%d:%d;" i k);
                  if (i + k) mod 2 = 0 then Runtime.yield ()
                  else Runtime.sleep (0.001 *. float_of_int ((i mod 3) + 1));
                  Mailbox.send mb i;
                  if k = 1 then ignore (Mailbox.recv mb)
                done;
                order := i :: !order))
      in
      List.iter Runtime.await ps);
  (List.rev !order, Larch_util.Hex.encode (Sha256.digest (Buffer.contents events)))

let run_world ~seed ~n =
  with_clock @@ fun () -> chaotic_world ~seed ~n ()

let same_seed_same_schedule =
  QCheck.Test.make ~name:"same seed => identical completion order and digest"
    ~count:30
    QCheck.(small_nat)
    (fun s ->
      let seed = "prop-" ^ string_of_int s in
      let o1, d1 = run_world ~seed ~n:8 in
      let o2, d2 = run_world ~seed ~n:8 in
      if (o1, d1) <> (o2, d2) then
        QCheck.Test.fail_reportf "seed %s: schedules diverged across runs" seed;
      true)

let distinct_interleavings () =
  (* 10 fibers, 32 seeds: expect many distinct completion orders.  K=8 is
     a loose floor — in practice nearly every seed gives a fresh order. *)
  let module S = Set.Make (struct
    type t = int list

    let compare = compare
  end) in
  let seen = ref S.empty in
  for s = 0 to 31 do
    let o, _ = run_world ~seed:("explore-" ^ string_of_int s) ~n:10 in
    seen := S.add o !seen
  done;
  let k = S.cardinal !seen in
  if k < 8 then
    Alcotest.failf "only %d distinct interleavings across 32 seeds" k

let no_starvation =
  QCheck.Test.make
    ~name:"no starvation: every spawned fiber completes or is cancelled"
    ~count:30
    QCheck.(pair small_nat (int_bound 20))
    (fun (s, extra) ->
      let n = 3 + extra in
      let completed = Array.make n false in
      (with_clock @@ fun () ->
       Runtime.run ~seed:("starve-" ^ string_of_int s) (fun () ->
           let ps =
             List.init n (fun i ->
                 Runtime.spawn (fun () ->
                     Runtime.sleep (0.01 *. float_of_int (i mod 4));
                     Runtime.yield ();
                     completed.(i) <- true))
           in
           (* cancel a deterministic subset mid-flight *)
           List.iteri (fun i p -> if i mod 5 = 4 then Runtime.cancel p) ps;
           List.iter
             (fun p -> match Runtime.await p with
               | () -> ()
               | exception Runtime.Cancelled -> ())
             ps));
      Array.iteri
        (fun i done_ ->
          if (not done_) && i mod 5 <> 4 then
            QCheck.Test.fail_reportf "fiber %d starved (n=%d seed=%d)" i n s)
        completed;
      Alcotest.(check int) "no fibers leak" 0 (Runtime.live_fibers ());
      true)

(* -- the Clock-tie regression (ISSUE 9 satellite 3) ----------------------- *)

let clock_tie_deterministic () =
  (* Two fibers sleep to the same simulated tick; their wake order must
     be a function of the seed alone: stable per seed, and both orders
     reachable across seeds. *)
  let wake_order ~seed =
    with_clock @@ fun () ->
    let order = ref [] in
    Runtime.run ~seed (fun () ->
        let tick = Clock.now () +. 0.5 in
        let mk name =
          Runtime.spawn ~name (fun () ->
              Runtime.sleep_until tick;
              order := name :: !order)
        in
        let a = mk "a" and b = mk "b" in
        Runtime.await a;
        Runtime.await b);
    List.rev !order
  in
  let seen = Hashtbl.create 4 in
  for s = 0 to 19 do
    let seed = "tie-" ^ string_of_int s in
    let o1 = wake_order ~seed and o2 = wake_order ~seed in
    Alcotest.(check (list string))
      (Printf.sprintf "tie order replayable (%s)" seed)
      o1 o2;
    Hashtbl.replace seen o1 ()
  done;
  Alcotest.(check int)
    "both tie orders explored across seeds" 2 (Hashtbl.length seen)

let tie_with_distinct_deadlines () =
  (* Sanity: non-tied deadlines always wake in deadline order regardless
     of seed. *)
  with_clock @@ fun () ->
  let order = ref [] in
  Runtime.run ~seed:"ordered" (fun () ->
      let mk name dt =
        Runtime.spawn ~name (fun () ->
            Runtime.sleep dt;
            order := name :: !order)
      in
      let a = mk "late" 0.3 and b = mk "early" 0.1 and c = mk "mid" 0.2 in
      Runtime.await a; Runtime.await b; Runtime.await c);
  Alcotest.(check (list string))
    "deadline order wins" [ "early"; "mid"; "late" ]
    (List.rev !order)

let () =
  Alcotest.run "larch-runtime"
    [
      ( "semantics",
        [
          Alcotest.test_case "spawn/await returns values" `Quick
            spawn_await_value;
          Alcotest.test_case "exceptions propagate through await" `Quick
            exception_propagates;
          Alcotest.test_case "sleep advances the virtual clock" `Quick
            sleep_advances_virtual_time;
          Alcotest.test_case "Clock.advance suspends cooperatively" `Quick
            advance_hook_suspends;
          Alcotest.test_case "cancel wakes a parked fiber" `Quick
            cancel_parked_fiber;
          Alcotest.test_case "cancel before start" `Quick
            cancel_unstarted_fiber;
          Alcotest.test_case "deadlock detected and reported" `Quick
            deadlock_detected;
          Alcotest.test_case "mailbox batches same-instant sends" `Quick
            mailbox_batch;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest same_seed_same_schedule;
          Alcotest.test_case "32 seeds explore >=8 interleavings of 10 fibers"
            `Quick distinct_interleavings;
          QCheck_alcotest.to_alcotest no_starvation;
        ] );
      ( "clock-ties",
        [
          Alcotest.test_case "tied deadlines wake in seeded order" `Quick
            clock_tie_deterministic;
          Alcotest.test_case "distinct deadlines wake in time order" `Quick
            tie_with_distinct_deadlines;
        ] );
    ]
