(* Differential fuzzing of the fixed-limb Solinas P-256 base-field backend
   (lib/ec/fe256.ml) against the generic Barrett [Modarith] functor, which
   stays in the tree precisely to serve as this oracle.  Random operand
   streams plus the edge values a fast-reduction implementation is most
   likely to get wrong: 0, 1, p±ε, Solinas term boundaries, limb patterns. *)

open Larch_bignum
module Fe256 = Larch_ec.Fe256
module Fe = Fe256.Fe

module Oracle = Modarith.Make (struct
  let modulus = Larch_ec.P256.p
end)

let p = Larch_ec.P256.p
let rand = Larch_hash.Drbg.of_seed "fe256-differential"

(* Random Nat of up to [maxbytes] bytes; short lengths arise naturally from
   leading zero bytes in the stream. *)
let rand_nat maxbytes =
  let len = Char.code (rand 1).[0] mod (maxbytes + 1) in
  Nat.of_bytes_be (rand len)

let check_eq what i ~a ~b expected actual =
  if not (Nat.equal expected actual) then
    Alcotest.failf "%s diverged at case %d:@ a=%s@ b=%s@ oracle=%s@ fe256=%s" what i
      (Nat.to_hex a) (Nat.to_hex b) (Nat.to_hex expected) (Nat.to_hex actual)

(* Run one operand pair through every public operation of both backends.
   [x] and [y] may be unreduced (anything a caller could feed [of_nat]). *)
let differential i x y =
  let a = Fe.of_nat x and b = Fe.of_nat y in
  check_eq "of_nat" i ~a:x ~b:y (Oracle.of_nat x) a;
  check_eq "add" i ~a ~b (Oracle.add a b) (Fe.add a b);
  check_eq "sub" i ~a ~b (Oracle.sub a b) (Fe.sub a b);
  check_eq "neg" i ~a ~b:Nat.zero (Oracle.neg a) (Fe.neg a);
  check_eq "mul" i ~a ~b (Oracle.mul a b) (Fe.mul a b);
  check_eq "sqr" i ~a ~b:a (Oracle.sqr a) (Fe.sqr a);
  check_eq "bytes roundtrip" i ~a ~b:a a (Fe.of_bytes_be (Fe.to_bytes_be a));
  if not (Nat.is_zero a) then begin
    let ia = Fe.inv a in
    check_eq "inv" i ~a ~b:a (Oracle.inv a) ia;
    check_eq "a * inv a" i ~a ~b:ia Fe.one (Fe.mul a ia)
  end

let fuzz_iterations = 10_000

let fuzz_random_stream () =
  for i = 1 to fuzz_iterations do
    (* Up to 512-bit operands: covers reduced values, the [reduce_wide]
       fast path for wide inputs, and everything in between. *)
    let x = rand_nat 64 and y = rand_nat 64 in
    let a = Fe.of_nat x and b = Fe.of_nat y in
    check_eq "of_nat" i ~a:x ~b:y (Oracle.of_nat x) a;
    check_eq "add" i ~a ~b (Oracle.add a b) (Fe.add a b);
    check_eq "sub" i ~a ~b (Oracle.sub a b) (Fe.sub a b);
    check_eq "mul" i ~a ~b (Oracle.mul a b) (Fe.mul a b);
    check_eq "sqr" i ~a ~b:a (Oracle.sqr a) (Fe.sqr a);
    check_eq "bytes roundtrip" i ~a ~b:a a (Fe.of_bytes_be (Fe.to_bytes_be a));
    (* Inversion costs ~300 mults; sampling keeps the suite fast while the
       product check below still exercises it against fuzzed [mul]. *)
    if i mod 50 = 0 && not (Nat.is_zero a) then begin
      let ia = Fe.inv a in
      check_eq "inv" i ~a ~b:a (Oracle.inv a) ia;
      check_eq "a * inv a" i ~a ~b:ia Fe.one (Fe.mul a ia)
    end
  done

(* The values most likely to expose a broken carry chain, reduction bound,
   or conditional subtraction. *)
let edge_values =
  let h = Nat.of_hex in
  let bit k = Nat.shift_left Nat.one k in
  [
    Nat.zero;
    Nat.one;
    Nat.of_int 2;
    Nat.sub p (Nat.of_int 2);
    Nat.sub p Nat.one;
    p;
    (* p is an allowed *input* (of_nat reduces); so are its neighbours *)
    Nat.add p Nat.one;
    Nat.sub (Nat.mul p (Nat.of_int 2)) Nat.one;
    Nat.mul p (Nat.of_int 2);
    Nat.mul p p;
    (* the Solinas fold terms: 2^224, 2^192, 2^96 and neighbours *)
    bit 96;
    Nat.sub (bit 96) Nat.one;
    bit 192;
    bit 224;
    Nat.sub (bit 224) Nat.one;
    bit 255;
    Nat.sub (bit 256) Nat.one;
    bit 256;
    (* limb-boundary patterns in the 10x26-bit representation *)
    h "3ffffff";
    (* one full limb *)
    h "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe";
    h "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
    h "5555555555555555555555555555555555555555555555555555555555555555";
    (* all 32-bit words at their max: worst case for the c0..c15 sums *)
    h "ffffffff00000001000000000000000000000000fffffffffffffffe00000001";
  ]

let edge_cases () =
  let i = ref 0 in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          incr i;
          differential !i x y)
        edge_values)
    edge_values

(* The in-place kernels advertise that [dst] may alias the sources (the
   product drains into separate scratch first).  Point arithmetic leans on
   this heavily, so pin it down at the kernel level. *)
let kernel_aliasing () =
  let wide = Array.make Fe256.wide_limbs 0 in
  for i = 1 to 200 do
    let x = Fe.of_nat (rand_nat 40) and y = Fe.of_nat (rand_nat 40) in
    let expect_mul = Oracle.mul x y and expect_sqr = Oracle.sqr x in
    let expect_add = Oracle.add x y and expect_sub = Oracle.sub x y in
    (* r aliases a *)
    let a = Fe256.own_of_fe x and b = Fe256.own_of_fe y in
    Fe256.mul_into wide a a b;
    check_eq "mul_into r=a" i ~a:x ~b:y expect_mul (Fe256.to_fe a);
    (* r aliases b *)
    let a = Fe256.own_of_fe x and b = Fe256.own_of_fe y in
    Fe256.mul_into wide b a b;
    check_eq "mul_into r=b" i ~a:x ~b:y expect_mul (Fe256.to_fe b);
    (* square in place *)
    let a = Fe256.own_of_fe x in
    Fe256.sqr_into wide a a;
    check_eq "sqr_into r=a" i ~a:x ~b:x expect_sqr (Fe256.to_fe a);
    (* add/sub with dst aliasing both operands *)
    let a = Fe256.own_of_fe x and b = Fe256.own_of_fe y in
    Fe256.add_into a a b;
    check_eq "add_into r=a" i ~a:x ~b:y expect_add (Fe256.to_fe a);
    let a = Fe256.own_of_fe x and b = Fe256.own_of_fe y in
    Fe256.sub_into a a b;
    check_eq "sub_into r=a" i ~a:x ~b:y expect_sub (Fe256.to_fe a);
    let a = Fe256.own_of_fe x in
    Fe256.add_into a a a;
    check_eq "add_into r=a=b" i ~a:x ~b:x (Oracle.add x x) (Fe256.to_fe a)
  done

(* Outputs must be normalized Nats (no high zero limbs): the rest of the
   tree compares field elements with [Nat.equal] / prints via [Nat.to_hex]. *)
let normalization () =
  List.iter
    (fun x ->
      let a = Fe.of_nat x in
      let la = Array.length a in
      Alcotest.(check bool) "normalized" true (la = 0 || a.(la - 1) <> 0);
      let s = Fe.sub a a in
      Alcotest.(check bool) "x - x = [||]" true (Array.length s = 0))
    edge_values

let () =
  Alcotest.run "fe256"
    [
      ( "differential",
        [
          Alcotest.test_case "10k random operand streams" `Quick fuzz_random_stream;
          Alcotest.test_case "edge-value cross product" `Quick edge_cases;
          Alcotest.test_case "kernel aliasing contracts" `Quick kernel_aliasing;
          Alcotest.test_case "output normalization" `Quick normalization;
        ] );
    ]
