(* End-to-end larch tests: full enrollment → registration → authentication
   → audit flows for FIDO2, TOTP, and passwords against simulated relying
   parties; malicious-client and malicious-log injections; operational
   machinery (policies, presignature top-up/objection, revocation,
   migration); and the multi-log deployment. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
open Larch_core

let mk_world ?(seed = "test-core") ?(presignature_count = 10) () =
  Larch_util.Clock.set 1_700_000_000.;
  let rand = Larch_hash.Drbg.of_seed seed in
  let log = Log_service.create ~rand_bytes:rand () in
  let client =
    Client.create ~client_id:"alice" ~account_password:"correct horse battery staple" ~log
      ~rand_bytes:rand ()
  in
  Client.enroll ~presignature_count client;
  (log, client, rand)

(* --- FIDO2 --- *)

let fido2_full_flow () =
  let _log, client, rand = mk_world () in
  let rp = Relying_party.create ~name:"github.com" ~rand_bytes:rand () in
  let pk = Client.register_fido2 client ~rp_name:"github.com" in
  Relying_party.fido2_register rp ~username:"alice" ~pk;
  (* two logins, each with a fresh challenge *)
  for _ = 1 to 2 do
    let challenge = Relying_party.fido2_challenge rp ~username:"alice" in
    let assertion = Client.authenticate_fido2 client ~rp_name:"github.com" ~challenge in
    Alcotest.(check bool) "relying party accepts" true
      (Relying_party.fido2_login rp ~username:"alice" assertion)
  done;
  (* replayed assertion rejected (counter regression) *)
  let challenge = Relying_party.fido2_challenge rp ~username:"alice" in
  let assertion = Client.authenticate_fido2 client ~rp_name:"github.com" ~challenge in
  Alcotest.(check bool) "accepts third" true
    (Relying_party.fido2_login rp ~username:"alice" assertion);
  let _ = Relying_party.fido2_challenge rp ~username:"alice" in
  Alcotest.(check bool) "replay rejected" false
    (Relying_party.fido2_login rp ~username:"alice" assertion);
  (* audit shows exactly three github logins *)
  let entries = Client.audit client in
  Alcotest.(check int) "three records" 3 (List.length entries);
  List.iter
    (fun e ->
      Alcotest.(check (option string)) "rp name recovered" (Some "github.com") e.Client.rp;
      Alcotest.(check bool) "method" true (e.Client.method_ = Types.Fido2))
    entries

let fido2_unlinkable_keys () =
  let _log, client, _ = mk_world () in
  let pk1 = Client.register_fido2 client ~rp_name:"rp1" in
  let pk2 = Client.register_fido2 client ~rp_name:"rp2" in
  Alcotest.(check bool) "distinct public keys" false (Point.equal pk1 pk2)

let fido2_wrong_rp_signature_fails () =
  let _log, client, rand = mk_world () in
  let rp1 = Relying_party.create ~name:"rp1" ~rand_bytes:rand () in
  let rp2 = Relying_party.create ~name:"rp2" ~rand_bytes:rand () in
  let pk1 = Client.register_fido2 client ~rp_name:"rp1" in
  let _pk2 = Client.register_fido2 client ~rp_name:"rp2" in
  Relying_party.fido2_register rp1 ~username:"alice" ~pk:pk1;
  (* assertion for rp2 cannot be used at rp1 (phishing protection) *)
  Relying_party.fido2_register rp2 ~username:"alice" ~pk:pk1;
  let chal = Relying_party.fido2_challenge rp2 ~username:"alice" in
  let a = Client.authenticate_fido2 client ~rp_name:"rp2" ~challenge:chal in
  Alcotest.(check bool) "cross-rp assertion rejected" false
    (Relying_party.fido2_login rp2 ~username:"alice" a)

let fido2_malicious_client_rejected () =
  let log, client, rand = mk_world () in
  let _pk = Client.register_fido2 client ~rp_name:"bank.com" in
  (* an attacker with the device forges a request whose ciphertext encrypts
     garbage (i.e. tries to log a wrong relying-party name) *)
  let f = match client.Client.fido2 with Some f -> f | None -> assert false in
  let rp_hash = Larch_auth.Fido2.rp_id_hash "bank.com" in
  let chal = rand 32 in
  let dgst = Larch_hash.Sha256.digest (rp_hash ^ chal) in
  let nonce = rand 12 in
  (* encrypt the WRONG identity *)
  let bogus_ct = Larch_cipher.Ctr.sha_ctr ~key:f.Client.fk ~nonce (rand 32) in
  let record_sig =
    Larch_ec.Ecdsa.encode (Larch_ec.Ecdsa.sign ~sk:f.Client.record_sk (nonce ^ bogus_ct))
  in
  let witness =
    Larch_circuit.Larch_statements.fido2_witness_bits
      { Larch_circuit.Larch_statements.k = f.Client.fk; r = f.Client.fr; id = rp_hash; chal; nonce }
  in
  let circuit = Lazy.force Larch_circuit.Larch_statements.fido2_circuit in
  let proof =
    Larch_zkboo.Zkboo.prove ~circuit ~witness ~statement_tag:Fido2_protocol.statement_tag
      ~rand_bytes:rand ()
  in
  let batch = List.hd f.Client.batches in
  let req =
    {
      Fido2_protocol.dgst;
      ct_nonce = nonce;
      ct = bogus_ct;
      record_sig;
      proof;
      presig_index = batch.Two_party_ecdsa.cnext;
      hm_msg = { Larch_mpc.Spdz.d = Scalar.zero; e = Scalar.zero };
    }
  in
  Alcotest.check_raises "log refuses to sign"
    (Types.Protocol_error "zero-knowledge proof rejected")
    (fun () ->
      ignore
        (Log_service.fido2_auth_begin log ~client_id:"alice" ~ip:"1.2.3.4"
           ~now:(Larch_util.Clock.now ()) req))

let fido2_presignature_reuse_rejected () =
  let _log, client, rand = mk_world () in
  let rp = Relying_party.create ~name:"rp" ~rand_bytes:rand () in
  let pk = Client.register_fido2 client ~rp_name:"rp" in
  Relying_party.fido2_register rp ~username:"alice" ~pk;
  let chal = Relying_party.fido2_challenge rp ~username:"alice" in
  let _ = Client.authenticate_fido2 client ~rp_name:"rp" ~challenge:chal in
  (* replaying an old presignature index must be refused *)
  let f = match client.Client.fido2 with Some f -> f | None -> assert false in
  let batch = List.hd f.Client.batches in
  batch.Two_party_ecdsa.cnext <- 0;
  (* force reuse of index 0 *)
  let chal2 = Relying_party.fido2_challenge rp ~username:"alice" in
  (try
     let _ = Client.authenticate_fido2 client ~rp_name:"rp" ~challenge:chal2 in
     Alcotest.fail "expected rejection"
   with Types.Protocol_error msg ->
     Alcotest.(check bool) "index mismatch" true
       (String.length msg > 0 && String.sub msg 0 12 = "presignature"))

let fido2_exhaustion_and_topup () =
  let log, client, rand = mk_world ~presignature_count:2 () in
  let rp = Relying_party.create ~name:"rp" ~rand_bytes:rand () in
  let pk = Client.register_fido2 client ~rp_name:"rp" in
  Relying_party.fido2_register rp ~username:"alice" ~pk;
  let auth () =
    let chal = Relying_party.fido2_challenge rp ~username:"alice" in
    Relying_party.fido2_login rp ~username:"alice"
      (Client.authenticate_fido2 client ~rp_name:"rp" ~challenge:chal)
  in
  Alcotest.(check bool) "auth 1" true (auth ());
  Alcotest.(check bool) "auth 2" true (auth ());
  Alcotest.(check int) "client exhausted" 0 (Client.presignatures_remaining client);
  (try
     ignore (auth ());
     Alcotest.fail "expected exhaustion"
   with Types.Protocol_error msg ->
     Alcotest.(check string) "exhausted" "out of presignatures" msg);
  (* top-up with an objection window: unusable until it passes *)
  let log_with_window = log in
  ignore log_with_window;
  Client.top_up_presignatures client ~count:4;
  ignore (Log_service.activate_pending log ~client_id:"alice" ~now:(Larch_util.Clock.now ()));
  Alcotest.(check bool) "auth after topup" true (auth ())

let fido2_objection_window () =
  Larch_util.Clock.set 1_700_000_000.;
  let rand = Larch_hash.Drbg.of_seed "objection" in
  let log = Log_service.create ~objection_window:3600. ~rand_bytes:rand () in
  let client =
    Client.create ~client_id:"alice" ~account_password:"pw" ~log ~rand_bytes:rand ()
  in
  Client.enroll ~presignature_count:1 client;
  Client.top_up_presignatures client ~count:5;
  Alcotest.(check int) "staged batch visible" 1
    (List.length (Log_service.pending_batches log ~client_id:"alice"));
  (* not yet active *)
  Alcotest.(check int) "not active yet" 0
    (Log_service.activate_pending log ~client_id:"alice" ~now:(Larch_util.Clock.now ()));
  (* the user objects (e.g. she never generated these) *)
  Alcotest.(check int) "objection cancels" 1 (Client.object_to_presignatures client);
  Larch_util.Clock.advance 7200.;
  Alcotest.(check int) "nothing to activate" 0
    (Log_service.activate_pending log ~client_id:"alice" ~now:(Larch_util.Clock.now ()));
  Alcotest.(check int) "log remains at initial batch" 1
    (Log_service.presignatures_remaining log ~client_id:"alice")

(* --- TOTP --- *)

let totp_full_flow () =
  let _log, client, rand = mk_world () in
  let rp = Relying_party.create ~name:"aws.amazon.com" ~rand_bytes:rand () in
  let key = Relying_party.totp_register rp ~username:"alice" in
  Client.register_totp client ~rp_name:"aws.amazon.com" ~totp_key:key;
  (* a couple of decoys so the selection mux is exercised *)
  let rp2 = Relying_party.create ~name:"dropbox.com" ~rand_bytes:rand () in
  let key2 = Relying_party.totp_register rp2 ~username:"alice" in
  Client.register_totp client ~rp_name:"dropbox.com" ~totp_key:key2;
  let time = Larch_util.Clock.now () in
  let code = Client.authenticate_totp client ~rp_name:"aws.amazon.com" ~time in
  Alcotest.(check bool) "rp accepts code" true
    (Relying_party.totp_login rp ~username:"alice" ~time code);
  (* replay cache rejects the same code *)
  Alcotest.(check bool) "replay rejected" false
    (Relying_party.totp_login rp ~username:"alice" ~time code);
  (* the other registration still works and yields a different code path *)
  let code2 = Client.authenticate_totp client ~rp_name:"dropbox.com" ~time in
  Alcotest.(check bool) "rp2 accepts" true
    (Relying_party.totp_login rp2 ~username:"alice" ~time code2);
  (* audit names both relying parties *)
  let entries = Client.audit client in
  let totp_rps =
    List.filter_map (fun e -> if e.Client.method_ = Types.Totp then e.Client.rp else None) entries
  in
  Alcotest.(check (list string)) "audit names" [ "aws.amazon.com"; "dropbox.com" ] totp_rps

let totp_code_matches_reference () =
  (* the jointly computed code equals the RFC 6238 reference computation *)
  let _log, client, rand = mk_world () in
  let key = rand 20 in
  Client.register_totp client ~rp_name:"rp" ~totp_key:key;
  let time = 59. in
  let code = Client.authenticate_totp client ~rp_name:"rp" ~time in
  Alcotest.(check int) "matches rfc computation" (Larch_auth.Totp.totp ~key ~time ()) code

let totp_wrong_archive_key_rejected () =
  let log, client, rand = mk_world () in
  let key = rand 20 in
  Client.register_totp client ~rp_name:"rp" ~totp_key:key;
  (* attacker tampers with the client's archive key: commitment check in
     the circuit flips the validity bit and the log aborts *)
  let s = match client.Client.totp with Some s -> s | None -> assert false in
  let tampered = { s with Client.tk = rand 32 } in
  client.Client.totp <- Some tampered;
  ignore log;
  Alcotest.check_raises "log aborts" (Types.Protocol_error "totp 2pc validity bit is 0")
    (fun () ->
      ignore (Client.authenticate_totp client ~rp_name:"rp" ~time:(Larch_util.Clock.now ())))

(* --- passwords --- *)

let password_full_flow () =
  let _log, client, rand = mk_world () in
  let rp = Relying_party.create ~name:"news.example.com" ~rand_bytes:rand () in
  let pw = Client.register_password client ~rp_name:"news.example.com" in
  Relying_party.password_set rp ~username:"alice" ~password:pw;
  (* a few decoy registrations *)
  List.iter
    (fun name -> ignore (Client.register_password client ~rp_name:name))
    [ "shop.example.com"; "bank.example.com"; "mail.example.com" ];
  let pw' = Client.authenticate_password client ~rp_name:"news.example.com" in
  Alcotest.(check string) "recomputed password matches" pw pw';
  Alcotest.(check bool) "rp accepts" true
    (Relying_party.password_login rp ~username:"alice" ~password:pw');
  (* a different rp gives a different password *)
  let pw_other = Client.authenticate_password client ~rp_name:"shop.example.com" in
  Alcotest.(check bool) "unique per rp" false (pw' = pw_other);
  (* audit *)
  let entries = Client.audit client in
  let pw_rps =
    List.filter_map
      (fun e -> if e.Client.method_ = Types.Password then e.Client.rp else None)
      entries
  in
  Alcotest.(check (list string)) "audit names" [ "news.example.com"; "shop.example.com" ] pw_rps

let password_legacy_import () =
  let _log, client, _rand = mk_world () in
  let legacy = "hunter2-legacy!" in
  let pw = Client.register_password ~legacy client ~rp_name:"old.example.com" in
  Alcotest.(check string) "import preserves the password" legacy pw;
  let pw' = Client.authenticate_password client ~rp_name:"old.example.com" in
  Alcotest.(check string) "recomputed equals legacy" legacy pw'

let password_unregistered_id_rejected () =
  let log, client, rand = mk_world () in
  ignore (Client.register_password client ~rp_name:"a.com");
  ignore (Client.register_password client ~rp_name:"b.com");
  (* a compromised client tries to get the log's exponentiation on an
     identity it never registered: proof cannot be produced honestly, and
     a proof for a wrong set fails *)
  let s = match client.Client.pw with Some s -> s | None -> assert false in
  let fake_id = rand 16 in
  let fake_ids = [ fake_id ] in
  let _r, req =
    Password_protocol.client_auth ~idx:0 ~x:s.Client.x ~ids:fake_ids ~rand_bytes:rand
  in
  Alcotest.check_raises "log rejects" (Types.Protocol_error "one-out-of-many proof rejected")
    (fun () ->
      ignore
        (Log_service.pw_auth log ~client_id:"alice" ~ip:"1.2.3.4" ~now:(Larch_util.Clock.now ())
           req))

let password_log_cannot_learn_which () =
  (* sanity: two authentications to different RPs produce ciphertexts and
     proofs with identical length profiles (no trivial length leak) *)
  let _log, client, _rand = mk_world () in
  ignore (Client.register_password client ~rp_name:"a.com");
  ignore (Client.register_password client ~rp_name:"b.com");
  Client.reset_channels client;
  ignore (Client.authenticate_password client ~rp_name:"a.com");
  let snap_a = Client.channel_snapshot client in
  Client.reset_channels client;
  ignore (Client.authenticate_password client ~rp_name:"b.com");
  let snap_b = Client.channel_snapshot client in
  Alcotest.(check int) "identical upstream bytes" snap_a.Larch_net.Channel.up
    snap_b.Larch_net.Channel.up;
  Alcotest.(check int) "identical downstream bytes" snap_a.Larch_net.Channel.down
    snap_b.Larch_net.Channel.down

(* --- operational machinery --- *)

let policy_rate_limit () =
  let log, client, _rand = mk_world () in
  ignore (Client.register_password client ~rp_name:"rp.com");
  Log_service.set_policy log ~client_id:"alice" ~token:"correct horse battery staple"
    {
      Log_service.max_auths_per_window = Some 2;
      window_seconds = 60.;
      notify = None;
    };
  ignore (Client.authenticate_password client ~rp_name:"rp.com");
  ignore (Client.authenticate_password client ~rp_name:"rp.com");
  Alcotest.check_raises "third auth rate-limited"
    (Types.Protocol_error "policy: rate limit exceeded") (fun () ->
      ignore (Client.authenticate_password client ~rp_name:"rp.com"));
  (* window expiry restores service *)
  Larch_util.Clock.advance 61.;
  ignore (Client.authenticate_password client ~rp_name:"rp.com")

let policy_notification () =
  let log, client, _rand = mk_world () in
  ignore (Client.register_password client ~rp_name:"rp.com");
  let notified = ref [] in
  Log_service.set_policy log ~client_id:"alice" ~token:"correct horse battery staple"
    {
      Log_service.max_auths_per_window = None;
      window_seconds = 60.;
      notify = Some (fun m t -> notified := (m, t) :: !notified);
    };
  ignore (Client.authenticate_password client ~rp_name:"rp.com");
  Alcotest.(check int) "one notification" 1 (List.length !notified)

let audit_requires_account_token () =
  let log, client, _rand = mk_world () in
  ignore client;
  Alcotest.check_raises "wrong token rejected"
    (Types.Protocol_error "log-account authentication failed") (fun () ->
      ignore (Log_service.audit log ~client_id:"alice" ~token:"wrong password"))

let compromise_detection_via_audit () =
  let _log, client, rand = mk_world () in
  let rp = Relying_party.create ~name:"bank.com" ~rand_bytes:rand () in
  let pk = Client.register_fido2 client ~rp_name:"bank.com" in
  Relying_party.fido2_register rp ~username:"alice" ~pk;
  (* the user authenticates once herself *)
  let chal = Relying_party.fido2_challenge rp ~username:"alice" in
  ignore (Client.authenticate_fido2 client ~rp_name:"bank.com" ~challenge:chal);
  (* the attacker, with full device state, authenticates twice *)
  for _ = 1 to 2 do
    let chal = Relying_party.fido2_challenge rp ~username:"alice" in
    let a = Client.authenticate_fido2 client ~rp_name:"bank.com" ~challenge:chal in
    Alcotest.(check bool) "attacker login works" true
      (Relying_party.fido2_login rp ~username:"alice" a)
  done;
  (* the user expected exactly one bank.com login: audit flags two extras *)
  let anomalies = Client.detect_anomalies client ~expected:[ (Types.Fido2, "bank.com") ] in
  Alcotest.(check int) "two unexpected authentications" 2 (List.length anomalies)

let revocation () =
  let log, client, _rand = mk_world () in
  ignore (Client.register_password client ~rp_name:"rp.com");
  Client.revoke_all client;
  Alcotest.check_raises "shares deleted" (Types.Protocol_error "password not enrolled")
    (fun () ->
      ignore
        (Log_service.pw_registered_ids log ~client_id:"alice"))

let migration_invalidates_old_device () =
  let log, client, rand = mk_world () in
  let rp = Relying_party.create ~name:"rp.com" ~rand_bytes:rand () in
  let pk = Client.register_fido2 client ~rp_name:"rp.com" in
  Relying_party.fido2_register rp ~username:"alice" ~pk;
  (* snapshot the "old device" credential state *)
  let old_f = match client.Client.fido2 with Some f -> f | None -> assert false in
  let old_cred = Hashtbl.find old_f.Client.fido2_creds "rp.com" in
  Client.migrate_fido2 client;
  (* the new device still authenticates under the same public key *)
  let chal = Relying_party.fido2_challenge rp ~username:"alice" in
  let a = Client.authenticate_fido2 client ~rp_name:"rp.com" ~challenge:chal in
  Alcotest.(check bool) "new device works" true (Relying_party.fido2_login rp ~username:"alice" a);
  (* the old device's share now produces garbage signatures *)
  let f = match client.Client.fido2 with Some f -> f | None -> assert false in
  Hashtbl.replace f.Client.fido2_creds "rp.com"
    { old_cred with Client.counter = old_cred.Client.counter + 10 };
  ignore log;
  let chal2 = Relying_party.fido2_challenge rp ~username:"alice" in
  let a2 = Client.authenticate_fido2 client ~rp_name:"rp.com" ~challenge:chal2 in
  Alcotest.(check bool) "old share rejected by rp" false
    (Relying_party.fido2_login rp ~username:"alice" a2)

let record_wire_roundtrip () =
  let r =
    {
      Record.time = 1234.5;
      ip = "10.0.0.1";
      method_ = Types.Fido2;
      payload = Record.Symmetric { nonce = String.make 12 'n'; ct = String.make 32 'c'; signature = String.make 64 's' };
    }
  in
  (match Record.decode (Record.encode r) with
  | Ok r' -> Alcotest.(check bool) "roundtrip" true (r = r')
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "fido2 record bytes" (8 + 12 + 32 + 64) (Record.storage_bytes r)

(* --- multilog (§6) --- *)

let multilog_flow () =
  Larch_util.Clock.set 1_700_000_000.;
  let rand = Larch_hash.Drbg.of_seed "multilog" in
  let ml = Multilog.create ~n:3 ~threshold:2 ~rand_bytes:rand () in
  let c = Multilog.enroll ml ~client_id:"alice" ~account_password:"pw" in
  let pw = Multilog.register ml c ~rp_name:"rp.com" in
  (* all online *)
  let pw1 = Multilog.authenticate ml c ~rp_name:"rp.com" ~now:(Larch_util.Clock.now ()) in
  Alcotest.(check string) "t-of-n recombination" pw pw1;
  (* one log down: still succeeds with the other two *)
  Multilog.set_online ml 0 false;
  let pw2 = Multilog.authenticate ml c ~rp_name:"rp.com" ~now:(Larch_util.Clock.now ()) in
  Alcotest.(check string) "survives one failure" pw pw2;
  (* two logs down: unavailable *)
  Multilog.set_online ml 1 false;
  (try
     ignore (Multilog.authenticate ml c ~rp_name:"rp.com" ~now:(Larch_util.Clock.now ()));
     Alcotest.fail "expected unavailability"
   with Multilog.Unavailable _ -> ());
  (* audit coverage: with 2 of 3 logs online, coverage is complete *)
  Multilog.set_online ml 1 true;
  let res = Multilog.audit ml c in
  Alcotest.(check bool) "audit complete with n-t+1 logs" true res.Multilog.complete;
  Alcotest.(check int) "both auths present" 2 (List.length res.Multilog.entries);
  List.iter
    (fun (_, rp) -> Alcotest.(check (option string)) "names recovered" (Some "rp.com") rp)
    res.Multilog.entries;
  (* only 1 of 3 online: audit may be incomplete and must say so *)
  Multilog.set_online ml 1 false;
  Multilog.set_online ml 2 false;
  Multilog.set_online ml 0 true;
  let res2 = Multilog.audit ml c in
  Alcotest.(check bool) "coverage flagged incomplete" false res2.Multilog.complete

(* --- 2p-ecdsa unit-level --- *)

let two_party_ecdsa_signature_verifies () =
  let rand = Larch_hash.Drbg.of_seed "tpe" in
  let key = Two_party_ecdsa.log_keygen ~rand_bytes:rand in
  let y, pk = Two_party_ecdsa.client_keygen ~log_pub:key.Two_party_ecdsa.x_pub ~rand_bytes:rand in
  let cbatch, lbatch = Two_party_ecdsa.presign_batch ~count:3 ~rand_bytes:rand in
  for i = 0 to 2 do
    let digest = Larch_hash.Sha256.digest (Printf.sprintf "message %d" i) in
    let log_st =
      Two_party_ecdsa.init_party ~party:0
        ~inp:(Two_party_ecdsa.halfmul_input_of_log lbatch i ~sk0:key.Two_party_ecdsa.x)
        ~cap_r:lbatch.Two_party_ecdsa.entries.(i).Two_party_ecdsa.cap_r ~digest
    in
    let cli_st =
      Two_party_ecdsa.init_party ~party:1
        ~inp:(Two_party_ecdsa.halfmul_input_of_client cbatch i ~sk1:y)
        ~cap_r:cbatch.Two_party_ecdsa.centries.(i).Two_party_ecdsa.cap_r1 ~digest
    in
    let m0 = Two_party_ecdsa.round1 log_st and m1 = Two_party_ecdsa.round1 cli_st in
    let s0 = Two_party_ecdsa.round2 log_st ~own:m0 ~other:m1 in
    let s1 = Two_party_ecdsa.round2 cli_st ~own:m1 ~other:m0 in
    let c0 = Two_party_ecdsa.open_commit log_st ~other_s:s1 ~rand_bytes:rand in
    let c1 = Two_party_ecdsa.open_commit cli_st ~other_s:s0 ~rand_bytes:rand in
    let r0 = Two_party_ecdsa.open_reveal log_st and r1 = Two_party_ecdsa.open_reveal cli_st in
    Alcotest.(check bool) "log accepts" true
      (Two_party_ecdsa.open_check log_st ~other_commit:c1 ~other_reveal:r1);
    Alcotest.(check bool) "client accepts" true
      (Two_party_ecdsa.open_check cli_st ~other_commit:c0 ~other_reveal:r0);
    let sg = Two_party_ecdsa.signature cli_st ~other_s:s0 in
    Alcotest.(check bool) "ECDSA verifies under aggregated pk" true
      (Larch_ec.Ecdsa.verify_digest ~pk digest sg)
  done

let schnorr_two_party () =
  let rand = Larch_hash.Drbg.of_seed "schnorr2p" in
  let x = Scalar.random_nonzero ~rand_bytes:rand and y = Scalar.random_nonzero ~rand_bytes:rand in
  let pk = Point.mul_base (Scalar.add x y) in
  let digest = Larch_hash.Sha256.digest "hello" in
  let lst, lr1 = Schnorr_signing.log_round1 ~rand_bytes:rand in
  let cst, cr = Schnorr_signing.client_round ~commitment:lr1 ~rand_bytes:rand in
  let lr2 = Schnorr_signing.log_round2 lst ~client:cr ~sk0:x ~digest in
  (match Schnorr_signing.client_finish cst ~log_msg:lr2 ~sk1:y ~digest with
  | Some sg ->
      Alcotest.(check bool) "schnorr verifies" true (Schnorr_signing.verify ~pk ~digest sg);
      Alcotest.(check bool) "wrong digest fails" false
        (Schnorr_signing.verify ~pk ~digest:(Larch_hash.Sha256.digest "other") sg)
  | None -> Alcotest.fail "commitment check failed");
  (* a log that equivocates on R0 is caught *)
  let lst2, lr1' = Schnorr_signing.log_round1 ~rand_bytes:rand in
  let cst2, cr2 = Schnorr_signing.client_round ~commitment:lr1' ~rand_bytes:rand in
  let lr2' = Schnorr_signing.log_round2 lst2 ~client:cr2 ~sk0:x ~digest in
  let forged = { lr2' with Schnorr_signing.r0_pub = Point.double lr2'.Schnorr_signing.r0_pub } in
  Alcotest.(check bool) "equivocation detected" true
    (Schnorr_signing.client_finish cst2 ~log_msg:forged ~sk1:y ~digest = None)

let () =
  Alcotest.run "core"
    [
      ( "fido2",
        [
          Alcotest.test_case "full flow + audit" `Slow fido2_full_flow;
          Alcotest.test_case "unlinkable keys" `Quick fido2_unlinkable_keys;
          Alcotest.test_case "phishing protection" `Slow fido2_wrong_rp_signature_fails;
          Alcotest.test_case "malicious client rejected" `Slow fido2_malicious_client_rejected;
          Alcotest.test_case "presig reuse rejected" `Slow fido2_presignature_reuse_rejected;
          Alcotest.test_case "exhaustion + topup" `Slow fido2_exhaustion_and_topup;
          Alcotest.test_case "objection window" `Quick fido2_objection_window;
        ] );
      ( "totp",
        [
          Alcotest.test_case "full flow + audit" `Slow totp_full_flow;
          Alcotest.test_case "matches rfc reference" `Slow totp_code_matches_reference;
          Alcotest.test_case "wrong archive key rejected" `Slow totp_wrong_archive_key_rejected;
        ] );
      ( "password",
        [
          Alcotest.test_case "full flow + audit" `Quick password_full_flow;
          Alcotest.test_case "legacy import" `Quick password_legacy_import;
          Alcotest.test_case "unregistered id rejected" `Quick password_unregistered_id_rejected;
          Alcotest.test_case "uniform traffic profile" `Quick password_log_cannot_learn_which;
        ] );
      ( "operations",
        [
          Alcotest.test_case "rate-limit policy" `Quick policy_rate_limit;
          Alcotest.test_case "notification policy" `Quick policy_notification;
          Alcotest.test_case "audit token" `Quick audit_requires_account_token;
          Alcotest.test_case "compromise detection" `Slow compromise_detection_via_audit;
          Alcotest.test_case "revocation" `Quick revocation;
          Alcotest.test_case "migration" `Slow migration_invalidates_old_device;
          Alcotest.test_case "record wire format" `Quick record_wire_roundtrip;
        ] );
      ("multilog", [ Alcotest.test_case "t-of-n passwords" `Quick multilog_flow ]);
      ( "signing",
        [
          Alcotest.test_case "2p-ecdsa" `Quick two_party_ecdsa_signature_verifies;
          Alcotest.test_case "2p-schnorr" `Quick schnorr_two_party;
        ] );
    ]
