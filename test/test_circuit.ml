(* Tests for the gate-level circuit substrate: builder semantics, the
   SHA-256/SHA-1 circuits against the software implementations, and the two
   larch statement circuits against their software counterparts. *)

module Bytesx = Larch_util.Bytesx
open Larch_circuit

let bits_of_string s = Array.map (fun v -> v = 1) (Bytesx.bits_of_string s)

let string_of_bits (bits : bool array) : string =
  Bytesx.string_of_bits (Array.map (fun b -> if b then 1 else 0) bits)

let builder_basics () =
  let b = Builder.create () in
  let x = Builder.input b and y = Builder.input b in
  let a = Builder.band b x y in
  let o = Builder.bor b x y in
  let n = Builder.bnot b x in
  let e = Builder.bxor b x y in
  let c = Circuit.make ~n_inputs:2
      ~gates:[||] ~outputs:[||] in
  ignore c;
  let circuit = Builder.finalize b ~outputs:[| a; o; n; e |] in
  let tbl = [ (false, false); (false, true); (true, false); (true, true) ] in
  List.iter
    (fun (vx, vy) ->
      let out = Circuit.eval circuit [| vx; vy |] in
      Alcotest.(check bool) "and" (vx && vy) out.(0);
      Alcotest.(check bool) "or" (vx || vy) out.(1);
      Alcotest.(check bool) "not" (not vx) out.(2);
      Alcotest.(check bool) "xor" (vx <> vy) out.(3))
    tbl

let word_adder () =
  let b = Builder.create () in
  let xs = Builder.inputs b 32 and ys = Builder.inputs b 32 in
  let sum = Word.add b xs ys in
  let circuit = Builder.finalize b ~outputs:sum in
  let check x y =
    let to_bits v = Array.init 32 (fun i -> (v lsr i) land 1 = 1) in
    let input = Array.append (to_bits x) (to_bits y) in
    let out = Circuit.eval circuit input in
    let v = Array.to_list out |> List.mapi (fun i bit -> if bit then 1 lsl i else 0) |> List.fold_left ( + ) 0 in
    Alcotest.(check int) (Printf.sprintf "%d+%d" x y) ((x + y) land 0xffffffff) v
  in
  check 0 0;
  check 1 1;
  check 0xffffffff 1;
  check 0x12345678 0x9abcdef0;
  check 0xdeadbeef 0xfeedface

let sha256_circuit_matches_software () =
  List.iter
    (fun msg ->
      let b = Builder.create () in
      let msg_wires = Builder.inputs b (8 * String.length msg) in
      let digest = Sha256_circuit.hash_fixed b ~msg:msg_wires in
      let circuit = Builder.finalize b ~outputs:digest in
      let out = Circuit.eval circuit (bits_of_string msg) in
      Alcotest.(check string)
        (Printf.sprintf "sha256 circuit (%d bytes)" (String.length msg))
        (Larch_util.Hex.encode (Larch_hash.Sha256.digest msg))
        (Larch_util.Hex.encode (string_of_bits out)))
    [ "abc"; String.make 48 'x'; String.make 64 'y'; String.make 100 'z' ]

let sha1_circuit_matches_software () =
  List.iter
    (fun msg ->
      let b = Builder.create () in
      let msg_wires = Builder.inputs b (8 * String.length msg) in
      let digest = Sha1_circuit.hash_fixed b ~msg:msg_wires in
      let circuit = Builder.finalize b ~outputs:digest in
      let out = Circuit.eval circuit (bits_of_string msg) in
      Alcotest.(check string)
        (Printf.sprintf "sha1 circuit (%d bytes)" (String.length msg))
        (Larch_util.Hex.encode (Larch_hash.Sha1.digest msg))
        (Larch_util.Hex.encode (string_of_bits out)))
    [ "abc"; String.make 72 'q'; String.make 84 'w' ]

let rand = Larch_hash.Drbg.of_seed "test-circuit"

let fido2_statement_matches () =
  let k = rand 32 and r = rand 16 and id = rand 32 and chal = rand 32 and nonce = rand 12 in
  let cm, ct, dgst = Larch_statements.fido2_compute ~k ~r ~id ~chal ~nonce in
  let circuit = Lazy.force Larch_statements.fido2_circuit in
  let out = Circuit.eval circuit (Larch_statements.fido2_witness_bits { k; r; id; chal; nonce }) in
  let expected = Larch_statements.fido2_public_bits ~cm ~ct ~dgst ~nonce in
  Alcotest.(check bool) "circuit output = software" true (out = expected);
  (* wrong id must change the output *)
  let out2 =
    Circuit.eval circuit
      (Larch_statements.fido2_witness_bits { k; r; id = rand 32; chal; nonce })
  in
  Alcotest.(check bool) "different witness differs" false (out2 = expected)

let fido2_circuit_stats () =
  let circuit = Lazy.force Larch_statements.fido2_circuit in
  Alcotest.(check bool) "AND count sane" true
    (circuit.Circuit.n_and > 50_000 && circuit.Circuit.n_and < 150_000);
  Alcotest.(check int) "inputs" (8 * (32 + 16 + 32 + 32 + 12)) circuit.Circuit.n_inputs;
  Alcotest.(check int) "outputs" (8 * (32 + 32 + 32 + 12)) (Circuit.n_outputs circuit)

let totp_circuit_matches () =
  let pub =
    Larch_statements.{ cm = ""; enc_nonce = rand 12; time_counter = 59L }
  in
  let k = rand 32 and r = rand 16 in
  let cm = Larch_hash.Sha256.digest (k ^ r) in
  let pub = { pub with Larch_statements.cm } in
  let n_rps = 4 in
  let regs = List.init n_rps (fun _ -> (rand 16, rand 20)) in
  let target = 2 in
  let id, klog = List.nth regs target in
  let kclient = rand 20 in
  let k_id = Bytesx.xor kclient klog in
  let circuit = Larch_statements.totp_circuit ~n_rps pub in
  let client_bits = Larch_statements.totp_client_input ~k ~r ~id ~kclient in
  let log_bits = Larch_statements.totp_log_input ~registrations:regs in
  let out = Circuit.eval circuit (Array.append client_bits log_bits) in
  Alcotest.(check bool) "ok bit" true out.(0);
  let ct_bits = Array.sub out 1 128 and hmac_bits = Array.sub out 129 160 in
  let hmac, ct = Larch_statements.totp_compute ~k ~id ~k_id pub in
  Alcotest.(check string) "ct" (Larch_util.Hex.encode ct) (Larch_util.Hex.encode (string_of_bits ct_bits));
  Alcotest.(check string) "hmac" (Larch_util.Hex.encode hmac) (Larch_util.Hex.encode (string_of_bits hmac_bits));
  (* unknown id -> ok = 0, hmac gated to zero *)
  let client_bad = Larch_statements.totp_client_input ~k ~r ~id:(rand 16) ~kclient in
  let out_bad = Circuit.eval circuit (Array.append client_bad log_bits) in
  Alcotest.(check bool) "unknown id rejected" false out_bad.(0);
  Alcotest.(check bool) "hmac gated" true
    (Array.for_all (fun b -> not b) (Array.sub out_bad 129 160));
  (* wrong archive key -> commitment check fails *)
  let client_badk = Larch_statements.totp_client_input ~k:(rand 32) ~r ~id ~kclient in
  let out_badk = Circuit.eval circuit (Array.append client_badk log_bits) in
  Alcotest.(check bool) "wrong archive key rejected" false out_badk.(0)

(* Differential property: the flattened [Plan] evaluator must agree
   bit-for-bit with the gate-walking [Circuit.eval] oracle on random
   circuits — the packed ZKBoo evaluators trust the plan's validated
   indices, so this is the test that keeps their unchecked accesses
   honest. *)
let plan_differential_props =
  let gen =
    QCheck.Gen.(
      let* n_in = int_range 1 16 in
      let* n_gates = int_range 0 60 in
      let* seed = string_size ~gen:char (return 16) in
      return (n_in, n_gates, seed))
  in
  let arb =
    QCheck.make ~print:(fun (a, b, _) -> Printf.sprintf "in=%d gates=%d" a b) gen
  in
  [
    QCheck.Test.make ~name:"flattened plan = gate-walking eval" ~count:200 arb
      (fun (n_in, n_gates, seed) ->
        let prg = Larch_hash.Drbg.of_seed ("plan" ^ seed) in
        let byte () = Char.code (prg 1).[0] in
        let b = Builder.create () in
        let inputs = Builder.inputs b n_in in
        let wires = ref (Array.to_list inputs) in
        let pick () = List.nth !wires (byte () mod List.length !wires) in
        for _ = 1 to n_gates do
          let w =
            match byte () mod 4 with
            | 0 -> Builder.band b (pick ()) (pick ())
            | 1 -> Builder.bxor b (pick ()) (pick ())
            | 2 -> Builder.bnot b (pick ())
            | _ -> Builder.const b (byte () land 1 = 1)
          in
          wires := w :: !wires
        done;
        let outputs = Array.init (1 + (byte () mod 6)) (fun _ -> pick ()) in
        let circuit = Builder.finalize b ~outputs in
        let witness = Array.init n_in (fun _ -> byte () land 1 = 1) in
        Plan.eval (Plan.of_circuit circuit) witness = Circuit.eval circuit witness);
  ]

let plan_statement_circuit () =
  let circuit = Lazy.force Larch_statements.fido2_circuit in
  let plan = Plan.cached circuit in
  Alcotest.(check bool) "cached memoizes" true (Plan.cached circuit == plan);
  Alcotest.(check int) "AND count" circuit.Circuit.n_and plan.Plan.n_and;
  Alcotest.(check int) "gate count" (Circuit.n_gates circuit) plan.Plan.n_gates;
  let witness = Array.init circuit.Circuit.n_inputs (fun i -> i mod 3 = 0) in
  Alcotest.(check bool) "fido2 plan eval matches oracle" true
    (Plan.eval plan witness = Circuit.eval circuit witness)

let () =
  Alcotest.run "circuit"
    [
      ( "builder",
        [
          Alcotest.test_case "gate semantics" `Quick builder_basics;
          Alcotest.test_case "32-bit adder" `Quick word_adder;
        ] );
      ( "plan",
        Alcotest.test_case "fido2 statement plan" `Quick plan_statement_circuit
        :: List.map QCheck_alcotest.to_alcotest plan_differential_props );
      ( "sha-circuits",
        [
          Alcotest.test_case "sha256 vs software" `Quick sha256_circuit_matches_software;
          Alcotest.test_case "sha1 vs software" `Quick sha1_circuit_matches_software;
        ] );
      ( "statements",
        [
          Alcotest.test_case "fido2 statement" `Quick fido2_statement_matches;
          Alcotest.test_case "fido2 stats" `Quick fido2_circuit_stats;
          Alcotest.test_case "totp 2pc circuit" `Quick totp_circuit_matches;
        ] );
    ]
