(* The transparency layer: RFC 6962-style Merkle trees, signed tree
   heads, per-authentication attestations, O(log n) verified audits, and
   split-view detection across multilog replicas.

   Coverage:

   - tree properties: inclusion verifies for every leaf at every tree
     size up to 512; consistency proofs compose across random size
     pairs; any single flipped byte in a leaf or proof is rejected;
   - signed tree heads: client binding and signature tamper rejection;
   - the client under a lying log: rollback, rewrite, and a two-headed
     (chain says one history, tree says another) equivocating fixture;
   - incremental audits: the delta fast path only downloads new records
     and the verified view advances;
   - per-auth attestations: a log that acks without storing (or stores
     something else) is caught at authentication time;
   - multilog: a forked replica is localized by pairwise consistency;
   - fsck: a live tree that drifts from the records is flagged. *)

open Larch_core
module Merkle = Larch_merkle.Merkle
module Tree = Larch_merkle.Merkle.Tree
module Clock = Larch_util.Clock

let rand = Larch_hash.Drbg.of_seed "test-merkle"
let leaf i = Printf.sprintf "leaf-%06d" i

(* --- tree mechanics ---------------------------------------------------- *)

let empty_tree_root () =
  let t = Tree.create () in
  Alcotest.(check int) "empty size" 0 (Tree.size t);
  Alcotest.(check bool) "empty root is H(\"\")" true (Tree.root t = Merkle.empty_root)

let append_matches_rebuild () =
  (* incremental appends and a batch build agree at every size *)
  let t = Tree.create () in
  for n = 1 to 200 do
    Tree.append t (leaf (n - 1));
    let fresh = Tree.of_leaves (List.init n leaf) in
    if Tree.root t <> Tree.root fresh then
      Alcotest.failf "append/rebuild roots diverge at size %d" n
  done

let root_at_is_prefix_root () =
  let t = Tree.of_leaves (List.init 100 leaf) in
  for m = 0 to 100 do
    let prefix = Tree.of_leaves (List.init m leaf) in
    if Tree.root_at t m <> Tree.root prefix then Alcotest.failf "root_at %d diverges" m
  done

(* the tentpole property: every leaf of every tree size up to 512 has a
   verifying inclusion proof (exhaustive, not sampled) *)
let inclusion_all_sizes () =
  let t = Tree.create () in
  for n = 1 to 512 do
    Tree.append t (leaf (n - 1));
    let root = Tree.root t in
    for i = 0 to n - 1 do
      let proof = Tree.inclusion t ~index:i in
      if not (Merkle.verify_inclusion ~root ~size:n ~index:i ~leaf:(leaf i) ~proof) then
        Alcotest.failf "inclusion fails at size %d index %d" n i
    done
  done

let consistency_composes =
  QCheck.Test.make ~name:"consistency composes across random size pairs" ~count:200
    QCheck.(triple (1 -- 512) (1 -- 512) (1 -- 512))
    (fun (x, y, z) ->
      let sizes = List.sort compare [ x; y; z ] in
      let a = List.nth sizes 0 and b = List.nth sizes 1 and c = List.nth sizes 2 in
      let t = Tree.of_leaves (List.init c leaf) in
      let ra = Tree.root_at t a and rb = Tree.root_at t b and rc = Tree.root_at t c in
      Merkle.verify_consistency ~old_root:ra ~old_size:a ~new_root:rb ~new_size:b
        ~proof:(Tree.consistency t ~old_size:a ~new_size:b)
      && Merkle.verify_consistency ~old_root:rb ~old_size:b ~new_root:rc ~new_size:c
           ~proof:(Tree.consistency t ~old_size:b ~new_size:c)
      && Merkle.verify_consistency ~old_root:ra ~old_size:a ~new_root:rc ~new_size:c
           ~proof:(Tree.consistency t ~old_size:a ~new_size:c))

let flip (s : string) ~(pos : int) ~(bit : int) : string =
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
  Bytes.to_string b

let flipped_inclusion_rejected =
  QCheck.Test.make ~name:"flipped leaf/proof byte rejected" ~count:300
    QCheck.(triple (1 -- 256) small_nat small_nat)
    (fun (n, seed1, seed2) ->
      let t = Tree.of_leaves (List.init n leaf) in
      let root = Tree.root t in
      let i = seed1 mod n in
      let proof = Tree.inclusion t ~index:i in
      let bad_leaf = flip (leaf i) ~pos:(seed2 mod String.length (leaf i)) ~bit:(seed2 mod 8) in
      let leaf_rejected =
        not (Merkle.verify_inclusion ~root ~size:n ~index:i ~leaf:bad_leaf ~proof)
      in
      let proof_rejected =
        match proof with
        | [] -> true (* size-1 tree: no proof bytes to corrupt *)
        | _ ->
            let j = seed2 mod List.length proof in
            let bad_proof =
              List.mapi
                (fun k h -> if k = j then flip h ~pos:(seed1 mod 32) ~bit:(seed1 mod 8) else h)
                proof
            in
            not (Merkle.verify_inclusion ~root ~size:n ~index:i ~leaf:(leaf i) ~proof:bad_proof)
      in
      leaf_rejected && proof_rejected)

let flipped_consistency_rejected =
  QCheck.Test.make ~name:"flipped consistency proof byte rejected" ~count:200
    QCheck.(triple (1 -- 255) (1 -- 255) small_nat)
    (fun (a, d, seed) ->
      let old_size = min a (a + d) and new_size = a + d in
      let t = Tree.of_leaves (List.init new_size leaf) in
      let proof = Tree.consistency t ~old_size ~new_size in
      match proof with
      | [] -> true (* pow2-aligned or trivial: nothing to corrupt *)
      | _ ->
          let j = seed mod List.length proof in
          let bad =
            List.mapi (fun k h -> if k = j then flip h ~pos:(seed mod 32) ~bit:(seed mod 8) else h)
              proof
          in
          not
            (Merkle.verify_consistency ~old_root:(Tree.root_at t old_size) ~old_size
               ~new_root:(Tree.root t) ~new_size ~proof:bad))

(* --- signed tree heads ------------------------------------------------- *)

let sth_binding_and_tampering () =
  let sk, pk = Larch_ec.Ecdsa.keygen ~rand_bytes:rand in
  let sth = Merkle.Sth.sign ~sk ~client_id:"alice" ~size:7 ~root:(rand 32) ~time:100. in
  Alcotest.(check bool) "verifies for its client" true
    (Merkle.Sth.verify ~pk ~client_id:"alice" sth);
  Alcotest.(check bool) "bound to the client id" false
    (Merkle.Sth.verify ~pk ~client_id:"bob" sth);
  Alcotest.(check bool) "size tamper rejected" false
    (Merkle.Sth.verify ~pk ~client_id:"alice" { sth with Merkle.Sth.size = 8 });
  Alcotest.(check bool) "root tamper rejected" false
    (Merkle.Sth.verify ~pk ~client_id:"alice" { sth with Merkle.Sth.root = rand 32 });
  let bad_sig = flip sth.Merkle.Sth.signature ~pos:11 ~bit:3 in
  Alcotest.(check bool) "signature tamper rejected" false
    (Merkle.Sth.verify ~pk ~client_id:"alice" { sth with Merkle.Sth.signature = bad_sig })

(* --- the client under a lying log -------------------------------------- *)

let mk_world (tag : string) =
  Clock.set 40_000.;
  let r = Larch_hash.Drbg.of_seed ("merkle-" ^ tag) in
  let log = Log_service.create ~rand_bytes:r () in
  let c = Client.create ~client_id:"alice" ~account_password:"pw" ~log ~rand_bytes:r () in
  Client.enroll ~presignature_count:1 c;
  ignore (Client.register_password c ~rp_name:"a.com");
  (log, c)

let auth (c : Client.t) = ignore (Client.authenticate_password c ~rp_name:"a.com")

let incremental_audit_fast_path () =
  let _log, c = mk_world "incremental" in
  auth c;
  (match Client.audit_verified c with
  | Ok entries -> Alcotest.(check int) "first audit: 1 entry" 1 (List.length entries)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "view advanced to size 1" 1
    (match c.Client.last_sth with Some s -> s.Merkle.Sth.size | None -> -1);
  Clock.advance 10.;
  auth c;
  Clock.advance 10.;
  auth c;
  (match Client.audit_verified c with
  | Ok entries -> Alcotest.(check int) "delta audit: 3 entries total" 3 (List.length entries)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "view advanced to size 3" 3
    (match c.Client.last_sth with Some s -> s.Merkle.Sth.size | None -> -1);
  (* nothing new: the audit is a no-op delta and still verifies *)
  match Client.audit_verified c with
  | Ok entries -> Alcotest.(check int) "empty delta verifies" 3 (List.length entries)
  | Error e -> Alcotest.fail e

let rollback_detected () =
  let log, c = mk_world "rollback" in
  auth c;
  Clock.advance 10.;
  auth c;
  (match Client.audit_verified c with Ok _ -> () | Error e -> Alcotest.fail e);
  (* the log silently drops the newest record and re-derives everything
     (chain AND tree) for the shortened history *)
  let cs = Log_service.get_client log "alice" in
  (match cs.Log_service.records with
  | _ :: rest -> cs.Log_service.records <- rest
  | [] -> Alcotest.fail "no records");
  Log_state.rebuild_derived cs;
  match Client.audit_verified c with
  | Error msg ->
      Alcotest.(check bool) "rollback named" true (String.sub msg 0 3 = "log")
  | Ok _ -> Alcotest.fail "rollback not detected"

let rewrite_detected () =
  let log, c = mk_world "rewrite" in
  auth c;
  Clock.advance 10.;
  auth c;
  (match Client.audit_verified c with Ok _ -> () | Error e -> Alcotest.fail e);
  (* the log rewrites an already-audited record in place, fully
     re-deriving chain and tree — only the client's memory of the old
     head can catch it *)
  let cs = Log_service.get_client log "alice" in
  cs.Log_service.records <-
    List.mapi
      (fun i (r : Record.t) -> if i = 1 then { r with Record.ip = "6.6.6.6" } else r)
      cs.Log_service.records;
  Log_state.rebuild_derived cs;
  match Client.audit_verified c with
  | Error msg -> Alcotest.(check bool) "rewrite named" true (String.sub msg 0 3 = "log")
  | Ok _ -> Alcotest.fail "rewrite not detected"

let fork_after_audit_detected () =
  let log, c = mk_world "fork" in
  auth c;
  (match Client.audit_verified c with Ok _ -> () | Error e -> Alcotest.fail e);
  (* fork: the log rewrites the audited record AND appends a new one, so
     sizes grow normally but the old head is not a prefix *)
  let cs = Log_service.get_client log "alice" in
  Clock.advance 10.;
  auth c;
  cs.Log_service.records <-
    List.map (fun (r : Record.t) -> { r with Record.ip = "6.6.6.6" }) cs.Log_service.records;
  Log_state.rebuild_derived cs;
  match Client.audit_verified c with
  | Error msg -> Alcotest.(check bool) "fork named" true (String.sub msg 0 3 = "log")
  | Ok _ -> Alcotest.fail "fork not detected"

let equivocating_two_headed_log () =
  let log, c = mk_world "two-headed" in
  auth c;
  Clock.advance 10.;
  auth c;
  (* two-headed fixture: the hash chain honestly describes the stored
     records, but the Merkle tree answers for a different history — the
     log is telling chain-auditors one story and tree-auditors another *)
  let cs = Log_service.get_client log "alice" in
  cs.Log_service.tree <- Tree.of_leaves [ "forged-history-record" ];
  (match Client.audit_verified c with
  | Error msg ->
      Alcotest.(check bool) "equivocation named" true
        (String.length msg > 0
        && String.sub msg 0 3 = "log"
        &&
        let has_sub needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        has_sub "equivocation" msg)
  | Ok _ -> Alcotest.fail "two-headed log not detected");
  (* the verified view must not have advanced on the failed audit *)
  Alcotest.(check bool) "view did not advance" true (c.Client.last_sth = None)

let anomalies_direct () =
  let _log, c = mk_world "anomalies" in
  auth c;
  Clock.advance 10.;
  auth c;
  (* the user remembers one login; the second is an intruder's *)
  let anomalous = Client.detect_anomalies c ~expected:[ (Types.Password, "a.com") ] in
  Alcotest.(check int) "one unexpected entry" 1 (List.length anomalous);
  let all = Client.detect_anomalies c ~expected:[] in
  Alcotest.(check int) "nothing expected: both flagged" 2 (List.length all);
  let none =
    Client.detect_anomalies c ~expected:[ (Types.Password, "a.com"); (Types.Password, "a.com") ]
  in
  Alcotest.(check int) "all accounted for" 0 (List.length none)

(* --- per-auth attestations --------------------------------------------- *)

let attestation_on_every_auth () =
  let _log, c = mk_world "attest" in
  (* authentications verify their attestations inline; three in a row
     exercise growing proof depths *)
  auth c;
  Clock.advance 10.;
  auth c;
  Clock.advance 10.;
  auth c

let ack_without_storing_detected () =
  let log, c = mk_world "no-store" in
  auth c;
  Clock.advance 10.;
  auth c;
  Clock.advance 10.;
  auth c;
  (match Client.audit_verified c with Ok _ -> () | Error e -> Alcotest.fail e);
  (* the log un-stores two audited records and re-derives a perfectly
     self-consistent chain+tree for the shortened history; the next
     auth's signed head covers fewer leaves than the client already
     audited, so the attestation is rejected at authentication time —
     before any audit runs *)
  let cs = Log_service.get_client log "alice" in
  (match cs.Log_service.records with
  | _ :: _ :: rest -> cs.Log_service.records <- rest
  | _ -> Alcotest.fail "expected 3 records");
  Log_state.rebuild_derived cs;
  Clock.advance 10.;
  match Client.authenticate_password c ~rp_name:"a.com" with
  | _ -> Alcotest.fail "attestation should have failed: tree regressed below audited size"
  | exception Client.Log_misbehaved msg ->
      Alcotest.(check bool) "attestation rejection named" true
        (String.length msg > 0 && String.sub msg 0 4 = "auth")

(* --- multilog split-view detection ------------------------------------- *)

let multilog_split_view () =
  Clock.set 50_000.;
  let r = Larch_hash.Drbg.of_seed "merkle-split" in
  let ml = Multilog.create ~n:3 ~threshold:3 ~rand_bytes:r () in
  let mc = Multilog.enroll ml ~client_id:"alice" ~account_password:"pw" in
  ignore (Multilog.register ml mc ~rp_name:"a.com");
  ignore (Multilog.authenticate ml mc ~rp_name:"a.com" ~now:(Clock.now ()));
  Clock.advance 10.;
  ignore (Multilog.authenticate ml mc ~rp_name:"a.com" ~now:(Clock.now ()));
  (* replicas agree: no bad pairs *)
  let sv = Multilog.check_split_view ml mc in
  Alcotest.(check int) "3 heads" 3 (List.length sv.Multilog.heads);
  Alcotest.(check int) "3 pairs checked" 3 sv.Multilog.checked_pairs;
  Alcotest.(check (list (pair int int))) "no bad pairs" [] sv.Multilog.bad_pairs;
  Alcotest.(check (list int)) "no suspects" [] sv.Multilog.suspects;
  (* log 2 forks: rewrites its copy of the history *)
  let cs = Log_service.get_client ml.Multilog.logs.(2) "alice" in
  cs.Log_service.records <-
    List.map (fun (rec_ : Record.t) -> { rec_ with Record.ip = "6.6.6.6" }) cs.Log_service.records;
  Log_state.rebuild_derived cs;
  let sv' = Multilog.check_split_view ml mc in
  Alcotest.(check int) "2 bad pairs" 2 (List.length sv'.Multilog.bad_pairs);
  Alcotest.(check (list int)) "log 2 localized" [ 2 ] sv'.Multilog.suspects

let multilog_behind_replica_is_consistent () =
  Clock.set 51_000.;
  let r = Larch_hash.Drbg.of_seed "merkle-behind" in
  let ml = Multilog.create ~n:3 ~threshold:2 ~rand_bytes:r () in
  let mc = Multilog.enroll ml ~client_id:"alice" ~account_password:"pw" in
  ignore (Multilog.register ml mc ~rp_name:"a.com");
  (* threshold 2 of 3: the gather loop satisfies itself from logs 0,1 and
     log 2 never sees the record — behind, but honestly so *)
  ignore (Multilog.authenticate ml mc ~rp_name:"a.com" ~now:(Clock.now ()));
  let sv = Multilog.check_split_view ml mc in
  Alcotest.(check (list (pair int int))) "a behind replica is not a fork" [] sv.Multilog.bad_pairs;
  Alcotest.(check (list int)) "no suspects" [] sv.Multilog.suspects

(* --- fsck: the tree is checked against the records --------------------- *)

let fsck_flags_drifted_tree () =
  Clock.set 52_000.;
  let r = Larch_hash.Drbg.of_seed "merkle-fsck" in
  let disk = Larch_store.Disk.create ~seed:"merkle-fsck" ~profile:Larch_store.Disk.clean_profile () in
  let store = Larch_store.Store.open_ ~disk ~dir:"log" () in
  let log = Log_service.create ~store ~rand_bytes:r () in
  let c = Client.create ~client_id:"alice" ~account_password:"pw" ~log ~rand_bytes:r () in
  Client.enroll ~presignature_count:1 c;
  ignore (Client.register_password c ~rp_name:"a.com");
  ignore (Client.authenticate_password c ~rp_name:"a.com");
  (match Log_service.fsck log with
  | Some fr -> Alcotest.(check (list string)) "clean before drift" [] fr.Log_persist.issues
  | None -> Alcotest.fail "store-backed log must offer fsck");
  (* the live tree drifts from the records (e.g. a buggy in-place edit
     that forgot rebuild_derived): replay-match can't see derived state,
     the semantic tree check must *)
  let cs = Log_service.get_client log "alice" in
  Tree.append cs.Log_service.tree "phantom-leaf";
  match Log_service.fsck log with
  | Some fr ->
      Alcotest.(check bool) "drifted tree flagged" true
        (List.exists
           (fun i ->
             let has_sub needle hay =
               let nl = String.length needle and hl = String.length hay in
               let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
               go 0
             in
             has_sub "merkle" i)
           fr.Log_persist.issues)
  | None -> Alcotest.fail "store-backed log must offer fsck"

let qtests = List.map QCheck_alcotest.to_alcotest

let () =
  Larch_util.Clock.use_real_time ();
  Alcotest.run "merkle"
    [
      ( "tree",
        [
          Alcotest.test_case "empty tree" `Quick empty_tree_root;
          Alcotest.test_case "append matches rebuild" `Quick append_matches_rebuild;
          Alcotest.test_case "root_at is prefix root" `Quick root_at_is_prefix_root;
          Alcotest.test_case "inclusion: all leaves, all sizes <= 512" `Slow inclusion_all_sizes;
        ]
        @ qtests [ consistency_composes; flipped_inclusion_rejected; flipped_consistency_rejected ]
      );
      ("sth", [ Alcotest.test_case "binding and tampering" `Quick sth_binding_and_tampering ]);
      ( "lying-log",
        [
          Alcotest.test_case "incremental audit fast path" `Quick incremental_audit_fast_path;
          Alcotest.test_case "rollback detected" `Quick rollback_detected;
          Alcotest.test_case "rewrite detected" `Quick rewrite_detected;
          Alcotest.test_case "fork after audit detected" `Quick fork_after_audit_detected;
          Alcotest.test_case "equivocating two-headed log" `Quick equivocating_two_headed_log;
          Alcotest.test_case "anomaly detection" `Quick anomalies_direct;
        ] );
      ( "attestation",
        [
          Alcotest.test_case "verified on every auth" `Quick attestation_on_every_auth;
          Alcotest.test_case "ack without storing detected" `Quick ack_without_storing_detected;
        ] );
      ( "multilog",
        [
          Alcotest.test_case "forked replica localized" `Quick multilog_split_view;
          Alcotest.test_case "behind replica consistent" `Quick multilog_behind_replica_is_consistent;
        ] );
      ("fsck", [ Alcotest.test_case "drifted tree flagged" `Quick fsck_flags_drifted_tree ]);
    ]
