(* Overload robustness: bounded admission, deadline shedding, per-client
   rate limiting, client retry budgets, the multilog circuit breaker,
   brownout degradation, and the deterministic overload scenario.

   The admission worlds run noop operations through real transports and
   the real Log_async loop under the seeded fiber runtime, so every shed
   and retry exercises the production path; the slow full-scenario
   determinism check is trimmed by LARCH_OVERLOAD_FAST=1 (the @overload
   alias), which keeps the unit worlds only. *)

open Larch_core
module Runtime = Larch_runtime.Runtime
module Transport = Larch_net.Transport
module Channel = Larch_net.Channel
module Clock = Larch_util.Clock
module Ecdsa = Larch_ec.Ecdsa

let fast = Sys.getenv_opt "LARCH_OVERLOAD_FAST" <> None
let base_time = 1_754_000_000.

let drbg = Larch_hash.Drbg.create ~entropy:"test-overload"
let rand n = Larch_hash.Drbg.generate drbg n

(* A world of [n] single-op clients in front of one admission loop.
   Returns per-client outcomes (Ok / typed failure) plus the loop's
   stats and the summed transport stats. *)
type outcome = Done | Shed_typed | Other of string

let admission_world ?(policy = Transport.default_policy) ~config ~clients ~ops_per_client ()
    : outcome array array * Log_async.stats * Transport.stats list =
  Clock.set base_time;
  let log = Log_service.create ~rand_bytes:rand () in
  let la = Log_async.create ~config log in
  let transports =
    Array.init clients (fun i ->
        let label = Printf.sprintf "c%02d" i in
        let tr = Transport.create ~label ~policy (Channel.create ~label ()) in
        Log_async.attach la ~client_id:label tr;
        tr)
  in
  let ops i = ops_per_client i in
  let outcomes = Array.init clients (fun i -> Array.make (ops i) (Other "unset")) in
  Runtime.run ~seed:"overload-unit" (fun () ->
      Log_async.start la;
      let fibers =
        List.init clients (fun i ->
            Runtime.spawn ~name:(Printf.sprintf "c%02d" i) (fun () ->
                for o = 0 to ops i - 1 do
                  outcomes.(i).(o) <-
                    (match Transport.invoke transports.(i) ~op:"noop" (fun () -> ()) with
                    | () -> Done
                    | exception Transport.Error { Transport.last = Transport.Overloaded _; _ }
                      ->
                        Shed_typed
                    | exception e -> Other (Printexc.to_string e))
                done))
      in
      List.iter (fun p -> try Runtime.await p with _ -> ()) fibers;
      Log_async.stop la);
  Clock.use_real_time ();
  (outcomes, Log_async.stats la, Array.to_list (Array.map Transport.stats transports))

let no_other outcomes =
  Array.iter
    (Array.iter (function
      | Other m -> Alcotest.failf "unexpected failure: %s" m
      | Done | Shed_typed -> ()))
    outcomes

(* --- bounded admission ------------------------------------------------- *)

let capacity_bound () =
  let config = { Log_async.off with Log_async.capacity = 4; service_time = 0.05 } in
  let outcomes, stats, tstats =
    admission_world ~config ~clients:10 ~ops_per_client:(fun _ -> 1) ()
  in
  no_other outcomes;
  Alcotest.(check bool) "capacity sheds happened" true (stats.Log_async.shed_capacity > 0);
  let shed_attempts = List.fold_left (fun a s -> a + s.Transport.overloads) 0 tstats in
  Alcotest.(check bool) "transports saw typed sheds" true (shed_attempts > 0);
  (* the bounded queue kept its promise *)
  Alcotest.(check bool)
    (Printf.sprintf "max_queue %d stays near capacity" stats.Log_async.max_queue)
    true
    (stats.Log_async.max_queue <= 12);
  (* every op either completed or failed typed — nothing hung (a hang
     would have deadlocked the runtime) *)
  let done_ =
    Array.fold_left
      (fun a row -> a + List.length (List.filter (( = ) Done) (Array.to_list row)))
      0 outcomes
  in
  Alcotest.(check bool) "most ops were eventually served" true (done_ >= 6)

(* --- deadline-aware shedding ------------------------------------------- *)

let deadline_shed () =
  (* single-attempt callers: the first deadline shed surfaces directly as
     a typed error (retry behavior is covered by the other tests) *)
  let policy =
    {
      Transport.max_attempts = 1;
      attempt_timeout = 0.3;
      base_backoff = 0.01;
      backoff_factor = 2.;
      max_backoff = 0.2;
      jitter = 0.2;
    }
  in
  let config = { Log_async.off with Log_async.service_time = 0.2 } in
  let outcomes, stats, _ =
    admission_world ~policy ~config ~clients:6 ~ops_per_client:(fun _ -> 1) ()
  in
  no_other outcomes;
  Alcotest.(check bool) "deadline sheds happened" true (stats.Log_async.shed_deadline > 0);
  let typed =
    Array.fold_left
      (fun a row -> a + List.length (List.filter (( = ) Shed_typed) (Array.to_list row)))
      0 outcomes
  in
  Alcotest.(check bool) "some callers got typed Overloaded" true (typed > 0);
  (* a served request never waited past its transport deadline: the loop
     shed it instead of burning service time on a caller that left *)
  Alcotest.(check bool)
    (Printf.sprintf "served queue delay %.3f bounded by the deadline"
       stats.Log_async.queue_delay_max)
    true
    (stats.Log_async.queue_delay_max <= 0.3)

(* --- per-client rate limiting and non-starvation ----------------------- *)

let zipf_fairness () =
  let config =
    {
      Log_async.off with
      Log_async.service_time = 0.001;
      client_rate = 2.;
      client_burst = 4.;
    }
  in
  (* client 0 is the Zipf head: 20 authentications against everyone
     else's 3 *)
  let outcomes, stats, tstats =
    admission_world ~config ~clients:4 ~ops_per_client:(fun i -> if i = 0 then 20 else 3) ()
  in
  no_other outcomes;
  Alcotest.(check bool) "rate sheds happened" true (stats.Log_async.shed_rate > 0);
  let hot = List.nth tstats 0 in
  Alcotest.(check bool) "the hot client was throttled" true (hot.Transport.overloads > 0);
  List.iteri
    (fun i st ->
      if i > 0 then
        Alcotest.(check int)
          (Printf.sprintf "client %d never shed (hot client could not starve it)" i)
          0 st.Transport.overloads)
    tstats;
  (* the hot client was slowed, not wedged: its ops still completed *)
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun o out ->
          Alcotest.(check bool) (Printf.sprintf "c%d op %d completed" i o) true (out = Done))
        row)
    outcomes

(* --- client retry budget ----------------------------------------------- *)

let retry_budget () =
  Clock.set base_time;
  let mk () =
    let policy = { Transport.default_policy with Transport.max_attempts = 10 } in
    let tr = Transport.create ~label:"budget" ~policy (Channel.create ~label:"budget" ()) in
    Transport.set_executor tr
      (Some (fun ~op:_ ~req:_ ~deadline:_ _closure -> raise (Transport.Overload 0.01)));
    tr
  in
  Runtime.run ~seed:"budget" (fun () ->
      (* no budget: retries run to max_attempts *)
      let tr = mk () in
      (match Transport.invoke tr ~op:"noop" (fun () -> ()) with
      | () -> Alcotest.fail "always-shedding executor cannot succeed"
      | exception Transport.Error e ->
          Alcotest.(check int) "unlimited: all attempts spent" 10 e.Transport.attempts;
          Alcotest.(check bool) "typed overloaded" true
            (match e.Transport.last with Transport.Overloaded _ -> true | _ -> false));
      Alcotest.(check int) "no budget denials" 0 (Transport.stats tr).Transport.budget_denied;
      (* a 2-token dry bucket stops the third attempt *)
      let tr = mk () in
      Transport.set_retry_budget tr ~capacity:2. ~refill_per_s:0.;
      (match Transport.invoke tr ~op:"noop" (fun () -> ()) with
      | () -> Alcotest.fail "always-shedding executor cannot succeed"
      | exception Transport.Error e ->
          Alcotest.(check int) "budget-limited attempts" 3 e.Transport.attempts);
      let st = Transport.stats tr in
      Alcotest.(check int) "denial counted" 1 st.Transport.budget_denied;
      Alcotest.(check bool) "bucket is dry" true (Transport.retry_budget_remaining tr < 1.);
      Transport.clear_retry_budget tr;
      Alcotest.(check bool) "cleared budget is unlimited" true
        (Transport.retry_budget_remaining tr = infinity));
  Clock.use_real_time ()

(* --- brownout state machine -------------------------------------------- *)

let brownout_hysteresis () =
  Clock.set base_time;
  let log = Log_service.create ~rand_bytes:rand () in
  let config =
    {
      Log_async.capacity = 0;
      service_time = 0.01;
      client_rate = 0.;
      client_burst = 0.;
      brownout_hi = 2;
      brownout_lo = 1;
      brownout_enter_ticks = 2;
      brownout_exit_ticks = 2;
    }
  in
  let la = Log_async.create ~config log in
  let transports =
    Array.init 6 (fun i ->
        let label = Printf.sprintf "b%02d" i in
        let tr = Transport.create ~label (Channel.create ~label ()) in
        Log_async.attach la ~client_id:label tr;
        tr)
  in
  let seen_degraded = ref false in
  Runtime.run ~seed:"brownout" (fun () ->
      Log_async.start la;
      let fibers =
        List.init 6 (fun i ->
            Runtime.spawn ~name:(Printf.sprintf "b%02d" i) (fun () ->
                for _ = 1 to 3 do
                  Transport.invoke transports.(i) ~op:"noop" (fun () ->
                      if Log_service.degraded log then seen_degraded := true)
                done))
      in
      List.iter Runtime.await fibers;
      (* calm traffic drives the hysteretic exit: sequential ops keep the
         queue at/below the low watermark *)
      for _ = 1 to 6 do
        Transport.invoke transports.(0) ~op:"noop" (fun () -> ())
      done;
      Alcotest.(check bool) "brownout exited on calm traffic" false (Log_async.brownout_active la);
      Log_async.stop la);
  Clock.use_real_time ();
  let stats = Log_async.stats la in
  Alcotest.(check bool) "brownout entered under pressure" true
    (stats.Log_async.brownout_entries >= 1);
  Alcotest.(check bool) "brownout ticks counted" true (stats.Log_async.brownout_ticks >= 1);
  Alcotest.(check bool) "requests were served while browned out" true !seen_degraded;
  Alcotest.(check bool) "log left degraded mode" false (Log_service.degraded log)

(* --- degraded attestations --------------------------------------------- *)

let degraded_attestation () =
  Clock.set base_time;
  let log = Log_service.create ~rand_bytes:rand () in
  let client =
    Client.create ~client_id:"deg-user" ~account_password:"pw" ~log ~rand_bytes:rand ()
  in
  Client.enroll ~presignature_count:1 client;
  let rp = Relying_party.create ~name:"rp.example" ~rand_bytes:rand () in
  let site_pw = Client.register_password client ~rp_name:"rp.example" in
  Relying_party.password_set rp ~username:"deg-user" ~password:site_pw;
  (* brownout: the ack carries a flagged proof-less attestation, which
     the client accepts and remembers as deferred *)
  Log_service.set_degraded log true;
  let pw = Client.authenticate_password client ~rp_name:"rp.example" in
  Alcotest.(check bool) "degraded auth still verifies at the relying party" true
    (Relying_party.password_login rp ~username:"deg-user" ~password:pw);
  Alcotest.(check bool) "inclusion deferred" true client.Client.att_deferred;
  (* the accept/reject set never changes: the password derived under
     brownout is the same one *)
  Alcotest.(check string) "same password as the registered one" site_pw pw;
  Log_service.set_degraded log false;
  (* the next verified audit covers the deferred record *)
  (match Client.audit_verified client with
  | Ok entries -> Alcotest.(check int) "audit sees the record" 1 (List.length entries)
  | Error m -> Alcotest.failf "audit failed: %s" m);
  Alcotest.(check bool) "deferral cleared by the verified audit" false
    client.Client.att_deferred;
  (* codec: the degraded form round-trips and is visibly smaller than the
     full form (no proof, no padding) *)
  let sth =
    {
      Larch_merkle.Merkle.Sth.size = 1;
      root = String.make 32 '\042';
      time = base_time;
      signature = String.make 64 '\007';
    }
  in
  let full =
    {
      Log_service.index = 3;
      record = "rec";
      proof = List.init 32 (fun _ -> String.make 32 '\001');
      sth;
      degraded = false;
    }
  in
  let deg = { full with Log_service.proof = []; degraded = true } in
  (match Log_service.decode_attestation (Log_service.encode_attestation deg) with
  | Ok a ->
      Alcotest.(check bool) "degraded flag survives the wire" true a.Log_service.degraded;
      Alcotest.(check int) "index survives" 3 a.Log_service.index;
      Alcotest.(check string) "record survives" "rec" a.Log_service.record;
      Alcotest.(check (list string)) "no proof on the wire" [] a.Log_service.proof
  | Error m -> Alcotest.failf "degraded attestation does not round-trip: %s" m);
  Alcotest.(check bool) "degraded form is smaller on the wire" true
    (String.length (Log_service.encode_attestation deg)
    < String.length (Log_service.encode_attestation full));
  Clock.use_real_time ()

(* A misbehaving log acks under brownout without ever appending the
   record: its tree stays self-consistent, but the stashed (index,
   record) pair has no matching leaf, so the next verified audit must
   error instead of silently clearing the deferral. *)
let degraded_ack_not_logged () =
  Clock.set base_time;
  let log = Log_service.create ~rand_bytes:rand () in
  let client =
    Client.create ~client_id:"phantom-user" ~account_password:"pw" ~log ~rand_bytes:rand ()
  in
  Client.enroll ~presignature_count:1 client;
  let rp = Relying_party.create ~name:"rp.example" ~rand_bytes:rand () in
  let site_pw = Client.register_password client ~rp_name:"rp.example" in
  Relying_party.password_set rp ~username:"phantom-user" ~password:site_pw;
  Log_service.set_degraded log true;
  ignore (Client.authenticate_password client ~rp_name:"rp.example");
  Log_service.set_degraded log false;
  (* the honest ack above was appended; forge one the log never logged *)
  client.Client.att_pending <-
    (5, "record the log never appended") :: client.Client.att_pending;
  (match Client.audit_verified client with
  | Ok _ -> Alcotest.fail "audit cleared a deferral the log never logged"
  | Error _ -> ());
  Alcotest.(check bool) "deferral not cleared" true client.Client.att_deferred;
  Alcotest.(check int) "the honest ack is discharged, the phantom one kept" 1
    (List.length client.Client.att_pending);
  Clock.use_real_time ()

(* --- multilog circuit breaker ------------------------------------------ *)

let circuit_breaker () =
  Clock.set base_time;
  let ml =
    Multilog.create ~breaker_threshold:2 ~breaker_cooldown:1.0 ~n:3 ~threshold:2
      ~rand_bytes:rand ()
  in
  let c = Multilog.enroll ml ~client_id:"cb-user" ~account_password:"pw" in
  let expected = Multilog.register ml c ~rp_name:"rp" in
  let auth () = Multilog.authenticate ml c ~rp_name:"rp" ~now:(Clock.now ()) in
  Alcotest.(check string) "healthy auth" expected (auth ());
  (* log0 goes sick — a drop-everything injector, so every attempt burns
     the full timeout budget: exactly what the breaker exists to stop.
     (Admin-down deliberately does NOT count: it already fails fast.) *)
  let sick () =
    Multilog.set_injector ml 0
      (Some (Larch_net.Fault.seeded ~seed:"cb" { Larch_net.Fault.calm with p_drop = 1. }))
  in
  let healthy () = Multilog.set_injector ml 0 None in
  sick ();
  Alcotest.(check string) "failover auth 1" expected (auth ());
  Alcotest.(check bool) "one failure does not trip" false (Multilog.breaker_open ml 0);
  Alcotest.(check string) "failover auth 2" expected (auth ());
  Alcotest.(check bool) "second consecutive failure trips" true (Multilog.breaker_open ml 0);
  Alcotest.(check int) "one trip" 1 (Multilog.breaker_trips ml 0);
  (* open breaker: the sick log is routed around without an attempt *)
  let attempts_before = (Transport.stats ml.Multilog.transports.(0)).Transport.attempts in
  Alcotest.(check string) "auth while open" expected (auth ());
  let attempts_after = (Transport.stats ml.Multilog.transports.(0)).Transport.attempts in
  Alcotest.(check int) "no attempt spent on the open log" attempts_before attempts_after;
  (* cooldown elapses while the log is still sick: the half-open probe
     fails and re-trips immediately *)
  Clock.advance 1.2;
  Alcotest.(check bool) "cooldown elapsed: half-open" false (Multilog.breaker_open ml 0);
  Alcotest.(check string) "auth probes the sick log" expected (auth ());
  Alcotest.(check bool) "failed probe re-trips" true (Multilog.breaker_open ml 0);
  Alcotest.(check int) "second trip" 2 (Multilog.breaker_trips ml 0);
  (* the log recovers; the next probe closes the breaker for good *)
  Clock.advance 1.2;
  healthy ();
  Alcotest.(check string) "auth probes the recovered log" expected (auth ());
  Alcotest.(check bool) "successful probe closes the breaker" false
    (Multilog.breaker_open ml 0);
  Alcotest.(check string) "healthy again" expected (auth ());
  Clock.use_real_time ()

(* --- Ecdsa.verify_batch edges (the admission loop's batch verifier) ---- *)

let verify_batch_edges () =
  let sk, pk = Ecdsa.keygen ~rand_bytes:rand in
  let sk2, pk2 = Ecdsa.keygen ~rand_bytes:rand in
  let sign ?(even_r = true) sk msg = Ecdsa.sign ~even_r ~sk msg in
  (* empty batch *)
  Alcotest.(check int) "empty batch" 0 (Array.length (Ecdsa.verify_batch []));
  (* singletons *)
  Alcotest.(check (array bool)) "valid singleton" [| true |]
    (Ecdsa.verify_batch [ (pk, "m", sign sk "m") ]);
  Alcotest.(check (array bool)) "wrong-key singleton" [| false |]
    (Ecdsa.verify_batch [ (pk2, "m", sign sk "m") ]);
  (* duplicate signatures in one batch *)
  let s = sign sk "dup" in
  Alcotest.(check (array bool)) "duplicates verify" [| true; true |]
    (Ecdsa.verify_batch [ (pk, "dup", s); (pk, "dup", s) ]);
  (* one bad signature: the combined check fails and the individual
     fallback must keep the accept set exactly equal to [verify]'s *)
  let batch =
    [
      (pk, "a", sign sk "a");
      (pk, "b", sign sk "b");
      (pk2, "c", sign sk "c"); (* wrong key *)
      (pk2, "d", sign sk2 "d");
    ]
  in
  let batched = Ecdsa.verify_batch batch in
  let individual =
    Array.of_list (List.map (fun (pk, m, s) -> Ecdsa.verify ~pk m s) batch)
  in
  Alcotest.(check (array bool)) "fallback matches individual verification" individual batched;
  Alcotest.(check (array bool)) "accept set is (T,T,F,T)" [| true; true; false; true |] batched;
  (* signatures not normalized with even_r (the fallback's other trigger):
     the accept set still matches individual verification *)
  let raw = List.init 8 (fun i -> Printf.sprintf "raw-%d" i) in
  let batch = List.map (fun m -> (pk, m, sign ~even_r:false sk m)) raw in
  Alcotest.(check (array bool)) "non-normalized signatures all accepted"
    (Array.make 8 true) (Ecdsa.verify_batch batch)

(* --- the full scenario is deterministic -------------------------------- *)

let scenario_deterministic () =
  let w1 = Overload.run ~seed:"utest" ~mult:2 in
  let w2 = Overload.run ~seed:"utest" ~mult:2 in
  Alcotest.(check string) "same seed, same digest" w1.Overload.digest w2.Overload.digest;
  Alcotest.(check bool) "overload pressure was real" true
    (w1.Overload.admission.Log_async.shed_total > 0);
  Alcotest.(check bool) "brownout entered and recovered" true
    (w1.Overload.admission.Log_async.brownout_entries >= 1 && w1.Overload.brownout_recovered);
  Alcotest.(check int) "every audit verified" 0 w1.Overload.audits_failed;
  Alcotest.(check bool) "fsck clean after the storm" true w1.Overload.fsck_clean;
  let w3 = Overload.run ~seed:"utest-b" ~mult:2 in
  Alcotest.(check bool) "different seed, different transcript" true
    (w3.Overload.digest <> w1.Overload.digest)

let () =
  let slow = if fast then [] else [ Alcotest.test_case "two runs, one digest" `Slow scenario_deterministic ] in
  Alcotest.run "overload"
    [
      ( "admission",
        [
          Alcotest.test_case "bounded capacity sheds at the door" `Quick capacity_bound;
          Alcotest.test_case "deadline-aware shedding" `Quick deadline_shed;
          Alcotest.test_case "zipf fairness and rate limits" `Quick zipf_fairness;
        ] );
      ("transport", [ Alcotest.test_case "retry budget" `Quick retry_budget ]);
      ( "brownout",
        [
          Alcotest.test_case "hysteretic state machine" `Quick brownout_hysteresis;
          Alcotest.test_case "degraded attestations defer inclusion" `Quick degraded_attestation;
          Alcotest.test_case "degraded ack without append is caught" `Quick
            degraded_ack_not_logged;
        ] );
      ("multilog", [ Alcotest.test_case "circuit breaker" `Quick circuit_breaker ]);
      ("ecdsa", [ Alcotest.test_case "verify_batch edges" `Quick verify_batch_edges ]);
      ("scenario", slow);
    ]
