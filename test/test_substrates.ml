(* Known-answer and property tests for the cryptographic substrates:
   bignum, hashes, MACs, ciphers, and the P-256 group + ECDSA. *)

open Larch_bignum
module Hex = Larch_util.Hex
module Bytesx = Larch_util.Bytesx

let check_hex msg expected actual = Alcotest.(check string) msg expected (Hex.encode actual)

(* ---------- Nat / Modarith ---------- *)

let nat_gen =
  (* Random naturals up to ~512 bits, biased toward interesting small sizes. *)
  QCheck.Gen.(
    let* nbytes = frequency [ (2, return 0); (3, int_range 1 8); (5, int_range 9 64) ] in
    let* s = string_size ~gen:char (return nbytes) in
    return (Nat.of_bytes_be s))

let arb_nat = QCheck.make ~print:Nat.to_hex nat_gen

let nat_props =
  [
    QCheck.Test.make ~name:"add comm" ~count:200 (QCheck.pair arb_nat arb_nat) (fun (a, b) ->
        Nat.equal (Nat.add a b) (Nat.add b a));
    QCheck.Test.make ~name:"add/sub roundtrip" ~count:200 (QCheck.pair arb_nat arb_nat)
      (fun (a, b) -> Nat.equal (Nat.sub (Nat.add a b) b) a);
    QCheck.Test.make ~name:"mul distributes" ~count:200
      (QCheck.triple arb_nat arb_nat arb_nat) (fun (a, b, c) ->
        Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)));
    QCheck.Test.make ~name:"divmod identity" ~count:200 (QCheck.pair arb_nat arb_nat)
      (fun (a, b) ->
        QCheck.assume (not (Nat.is_zero b));
        let q, r = Nat.divmod a b in
        Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0);
    QCheck.Test.make ~name:"bytes roundtrip" ~count:200 arb_nat (fun a ->
        let len = max 1 ((Nat.bit_length a + 7) / 8) in
        Nat.equal (Nat.of_bytes_be (Nat.to_bytes_be ~len a)) a);
    QCheck.Test.make ~name:"shift left/right inverse" ~count:200
      (QCheck.pair arb_nat QCheck.(int_range 0 100)) (fun (a, k) ->
        Nat.equal (Nat.shift_right (Nat.shift_left a k) k) a);
    QCheck.Test.make ~name:"barrett reduce = divmod" ~count:200
      (QCheck.pair arb_nat arb_nat) (fun (a, m) ->
        QCheck.assume (not (Nat.is_zero m));
        let ctx = Modarith.make m in
        (* keep within Barrett's domain: reduce a mod m^2 first *)
        let a = snd (Nat.divmod a (Nat.mul m m)) in
        Nat.equal (Modarith.reduce ctx a) (snd (Nat.divmod a m)));
  ]

let fe_props =
  let module Fe = Larch_ec.P256.Fe in
  let arb_fe = QCheck.make ~print:Nat.to_hex QCheck.Gen.(map Fe.of_nat nat_gen) in
  [
    QCheck.Test.make ~name:"field inverse" ~count:50 arb_fe (fun a ->
        QCheck.assume (not (Nat.is_zero a));
        Fe.equal (Fe.mul a (Fe.inv a)) Fe.one);
    QCheck.Test.make ~name:"field sqrt of square" ~count:50 arb_fe (fun a ->
        match Fe.sqrt (Fe.sqr a) with
        | None -> false
        | Some r -> Fe.equal r a || Fe.equal r (Fe.neg a));
    QCheck.Test.make ~name:"pow matches repeated mul" ~count:30
      (QCheck.pair arb_fe QCheck.(int_range 0 40)) (fun (a, e) ->
        let expected = ref Fe.one in
        for _ = 1 to e do
          expected := Fe.mul !expected a
        done;
        Fe.equal (Fe.pow a (Nat.of_int e)) !expected);
  ]

let nat_units () =
  Alcotest.(check string) "hex roundtrip" "deadbeef" (Nat.to_hex (Nat.of_hex "deadbeef"));
  Alcotest.(check int) "bit_length" 32 (Nat.bit_length (Nat.of_hex "ffffffff"));
  Alcotest.(check int) "to_int" 0xabcdef (Nat.to_int_exn (Nat.of_int 0xabcdef));
  let a = Nat.of_hex "100000000000000000000000000" in
  let q, r = Nat.divmod a (Nat.of_int 7) in
  Nat.(Alcotest.(check bool) "divmod identity" true (equal a (add (mul q (of_int 7)) r)))

(* ---------- Hashes ---------- *)

let sha256_vectors () =
  check_hex "sha256(empty)" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Larch_hash.Sha256.digest "");
  check_hex "sha256(abc)" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Larch_hash.Sha256.digest "abc");
  check_hex "sha256(448-bit)" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Larch_hash.Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  (* long input exercising multi-block streaming *)
  check_hex "sha256(1M a)" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Larch_hash.Sha256.digest (String.make 1_000_000 'a'));
  (* streaming in odd-sized chunks must match one-shot *)
  let data = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let ctx = Larch_hash.Sha256.init () in
  let pos = ref 0 in
  let sizes = [ 1; 3; 63; 64; 65; 100; 200; 504 ] in
  List.iter
    (fun sz ->
      Larch_hash.Sha256.feed ctx (String.sub data !pos sz);
      pos := !pos + sz)
    sizes;
  Alcotest.(check string) "streaming = one-shot"
    (Hex.encode (Larch_hash.Sha256.digest data))
    (Hex.encode (Larch_hash.Sha256.finish ctx))

let sha1_vectors () =
  check_hex "sha1(abc)" "a9993e364706816aba3e25717850c26c9cd0d89d" (Larch_hash.Sha1.digest "abc");
  check_hex "sha1(empty)" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (Larch_hash.Sha1.digest "");
  check_hex "sha1(448-bit)" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (Larch_hash.Sha1.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let hmac_vectors () =
  check_hex "hmac-sha256 rfc4231 tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Larch_hash.Hmac.sha256 ~key:(String.make 20 '\x0b') "Hi There");
  check_hex "hmac-sha256 rfc4231 tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Larch_hash.Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?");
  check_hex "hmac-sha1 rfc2202 tc1" "b617318655057264e28bc0b6fb378c8ef146be00"
    (Larch_hash.Hmac.sha1 ~key:(String.make 20 '\x0b') "Hi There");
  check_hex "hmac-sha1 rfc2202 tc2" "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    (Larch_hash.Hmac.sha1 ~key:"Jefe" "what do ya want for nothing?")

let hkdf_vectors () =
  (* RFC 5869 test case 1 *)
  let ikm = String.make 22 '\x0b' in
  let salt = Hex.decode "000102030405060708090a0b0c" in
  let info = Hex.decode "f0f1f2f3f4f5f6f7f8f9" in
  let prk = Larch_hash.Hkdf.extract ~salt ikm in
  check_hex "hkdf prk" "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5" prk;
  check_hex "hkdf okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (Larch_hash.Hkdf.expand ~prk ~info ~len:42)

let drbg_deterministic () =
  let a = Larch_hash.Drbg.of_seed "seed-1" and b = Larch_hash.Drbg.of_seed "seed-1" in
  Alcotest.(check string) "same seed, same stream" (Hex.encode (a 64)) (Hex.encode (b 64));
  let c = Larch_hash.Drbg.of_seed "seed-2" in
  Alcotest.(check bool) "different seed differs" false (a 64 = c 64)

(* ---------- Ciphers ---------- *)

let chacha20_vectors () =
  (* RFC 8439 §2.3.2 block function test vector *)
  let key = Hex.decode "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = Hex.decode "000000090000004a00000000" in
  check_hex "chacha20 block"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (Larch_cipher.Chacha20.block ~key ~nonce ~counter:1);
  (* RFC 8439 §2.4.2 encryption test vector *)
  let nonce2 = Hex.decode "000000000000004a00000000" in
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it."
  in
  check_hex "chacha20 encrypt"
    "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0bf91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d807ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab77937365af90bbf74a35be6b40b8eedf2785e42874d"
    (Larch_cipher.Chacha20.encrypt ~key ~nonce:nonce2 ~counter:1 plaintext);
  Alcotest.(check string) "decrypt roundtrip" plaintext
    (Larch_cipher.Chacha20.decrypt ~key ~nonce:nonce2 ~counter:1
       (Larch_cipher.Chacha20.encrypt ~key ~nonce:nonce2 ~counter:1 plaintext))

let aes_vectors () =
  let key = Hex.decode "000102030405060708090a0b0c0d0e0f" in
  let pt = Hex.decode "00112233445566778899aabbccddeeff" in
  let ks = Larch_cipher.Aes.expand_key key in
  check_hex "aes-128 fips197" "69c4e0d86a7b0430d8cdb78070b4c55a" (Larch_cipher.Aes.encrypt_block ks pt);
  (* NIST SP 800-38A F.5.1 AES-128-CTR, adapted: our CTR uses nonce||counter32 *)
  let data = "the quick brown fox jumps over the lazy dog!" in
  let nonce = Hex.decode "000102030405060708090a0b" in
  let ct = Larch_cipher.Ctr.aes_ctr ~key ~nonce data in
  Alcotest.(check string) "aes-ctr roundtrip" data (Larch_cipher.Ctr.aes_ctr ~key ~nonce ct);
  Alcotest.(check bool) "ciphertext differs" true (ct <> data)

let sha_ctr_roundtrip () =
  let key = String.make 32 'k' and nonce = String.make 12 'n' in
  let data = "relying-party-identifier-0123456789" in
  let ct = Larch_cipher.Ctr.sha_ctr ~key ~nonce data in
  Alcotest.(check string) "roundtrip" data (Larch_cipher.Ctr.sha_ctr ~key ~nonce ct);
  Alcotest.(check bool) "differs" true (ct <> data)

let prg_props =
  [
    QCheck.Test.make ~name:"prg deterministic & chunking-invariant" ~count:50
      (QCheck.string_of_size (QCheck.Gen.return 16))
      (fun seed ->
        let a = Larch_cipher.Prg.create seed and b = Larch_cipher.Prg.create seed in
        let x = Larch_cipher.Prg.next_bytes a 100 in
        let y1 = Larch_cipher.Prg.next_bytes b 1 in
        let y2 = Larch_cipher.Prg.next_bytes b 37 in
        let y3 = Larch_cipher.Prg.next_bytes b 62 in
        let y = y1 ^ y2 ^ y3 in
        x = y);
  ]

(* ---------- P-256 / ECDSA / ElGamal ---------- *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar

let rand = Larch_hash.Drbg.of_seed "test-substrates"

let p256_known_points () =
  Alcotest.(check bool) "G on curve" true (Point.is_on_curve Point.g);
  let two_g = Point.double Point.g in
  let x, y = Option.get (Point.to_affine two_g) in
  Alcotest.(check string) "2G.x" "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978"
    (Nat.to_hex x);
  Alcotest.(check string) "2G.y" "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1"
    (Nat.to_hex y);
  Alcotest.(check bool) "2G = G+G" true (Point.equal two_g (Point.add Point.g Point.g));
  Alcotest.(check bool) "nG = infinity" true
    (Point.is_infinity (Point.mul (Larch_ec.P256.n :> Nat.t) Point.g))

let p256_group_props =
  let arb_scalar =
    QCheck.make ~print:Nat.to_hex QCheck.Gen.(map (fun s -> Scalar.of_bytes_be s) (string_size ~gen:char (return 40)))
  in
  [
    QCheck.Test.make ~name:"mul distributes over scalar add" ~count:15
      (QCheck.pair arb_scalar arb_scalar) (fun (a, b) ->
        Point.equal
          (Point.mul_base (Scalar.add a b))
          (Point.add (Point.mul_base a) (Point.mul_base b)));
    QCheck.Test.make ~name:"mul matches mul_base" ~count:15 arb_scalar (fun a ->
        Point.equal (Point.mul a Point.g) (Point.mul_base a));
    QCheck.Test.make ~name:"encode/decode roundtrip" ~count:15 arb_scalar (fun a ->
        let p = Point.mul_base a in
        Point.equal (Point.decode_exn (Point.encode p)) p);
    QCheck.Test.make ~name:"P + (-P) = infinity" ~count:15 arb_scalar (fun a ->
        let p = Point.mul_base a in
        Point.is_infinity (Point.add p (Point.neg p)));
    QCheck.Test.make ~name:"associativity sample" ~count:10
      (QCheck.triple arb_scalar arb_scalar arb_scalar) (fun (a, b, c) ->
        let pa = Point.mul_base a and pb = Point.mul_base b and pc = Point.mul_base c in
        Point.equal (Point.add (Point.add pa pb) pc) (Point.add pa (Point.add pb pc)));
  ]

let ecdsa_rfc6979 () =
  let sk = Scalar.of_nat (Nat.of_hex "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721") in
  let pk = Point.mul_base sk in
  let x, y = Option.get (Point.to_affine pk) in
  Alcotest.(check string) "pk.x" "60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6" (Nat.to_hex x);
  Alcotest.(check string) "pk.y" "7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299" (Nat.to_hex y);
  let sg = Larch_ec.Ecdsa.sign ~sk "sample" in
  Alcotest.(check string) "r(sample)" "efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716" (Nat.to_hex sg.r);
  Alcotest.(check string) "s(sample)" "f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8" (Nat.to_hex sg.s);
  Alcotest.(check bool) "verifies" true (Larch_ec.Ecdsa.verify ~pk "sample" sg);
  let sg2 = Larch_ec.Ecdsa.sign ~sk "test" in
  Alcotest.(check string) "r(test)" "f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367" (Nat.to_hex sg2.r);
  Alcotest.(check string) "s(test)" "019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083" (Nat.to_hex sg2.s)

(* Known-answer scalar multiplication: small multiples of G (independently
   recomputed from the curve equation), k = n-1 (the negation edge of the
   wNAF recoding), and a full-width scalar.  [Point.mul] exercises the wNAF
   ladder, [Point.mul_base] the comb, and they must agree with each other
   and with the published points. *)
let check_affine msg (ex, ey) pt =
  match Point.to_affine pt with
  | None -> Alcotest.failf "%s: unexpected infinity" msg
  | Some (x, y) ->
      Alcotest.(check string) (msg ^ ".x") ex (Nat.to_hex x);
      Alcotest.(check string) (msg ^ ".y") ey (Nat.to_hex y)

let p256_scalar_mul_kats () =
  let kats =
    [
      ( 2,
        "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978",
        "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1" );
      ( 3,
        "5ecbe4d1a6330a44c8f7ef951d4bf165e6c6b721efada985fb41661bc6e7fd6c",
        "8734640c4998ff7e374b06ce1a64a2ecd82ab036384fb83d9a79b127a27d5032" );
      ( 4,
        "e2534a3532d08fbba02dde659ee62bd0031fe2db785596ef509302446b030852",
        "e0f1575a4c633cc719dfee5fda862d764efc96c3f30ee0055c42c23f184ed8c6" );
      ( 5,
        "51590b7a515140d2d784c85608668fdfef8c82fd1f5be52421554a0dc3d033ed",
        "e0c17da8904a727d8ae1bf36bf8a79260d012f00d4d80888d1d0bb44fda16da4" );
    ]
  in
  Alcotest.(check bool) "1*G = G (wNAF)" true (Point.equal (Point.mul Nat.one Point.g) Point.g);
  Alcotest.(check bool) "1*G = G (comb)" true (Point.equal (Point.mul_base Nat.one) Point.g);
  List.iter
    (fun (k, x, y) ->
      let kn = Nat.of_int k in
      check_affine (string_of_int k ^ "G wNAF") (x, y) (Point.mul kn Point.g);
      check_affine (string_of_int k ^ "G comb") (x, y) (Point.mul_base kn))
    kats;
  (* (n-1)*G = -G: same x as G, y = p - G.y.  Exercises the top negative
     wNAF digit and the comb's final window. *)
  let n_minus_1 = Nat.sub Larch_ec.P256.n Nat.one in
  let neg_g =
    ( "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296",
      "b01cbd1c01e58065711814b583f061e9d431cca994cea1313449bf97c840ae0a" )
  in
  check_affine "(n-1)G wNAF" neg_g (Point.mul n_minus_1 Point.g);
  check_affine "(n-1)G comb" neg_g (Point.mul_base n_minus_1);
  (* full-width scalar (the RFC 6979 key) through the wNAF path *)
  let sk = Nat.of_hex "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721" in
  check_affine "skG wNAF"
    ( "60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6",
      "7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299" )
    (Point.mul sk Point.g);
  (* Strauss-Shamir joint ladder against its naive decomposition *)
  let u1 = Scalar.of_bytes_be (rand 40) and u2 = Scalar.of_bytes_be (rand 40) in
  let q = Point.mul_base (Scalar.of_bytes_be (rand 40)) in
  Alcotest.(check bool) "mul_add = u1*G + u2*Q" true
    (Point.equal (Point.mul_add u1 u2 q) (Point.add (Point.mul_base u1) (Point.mul u2 q)));
  Alcotest.(check bool) "mul_add with k2 = 0" true
    (Point.equal (Point.mul_add u1 Scalar.zero q) (Point.mul_base u1));
  Alcotest.(check bool) "mul_add with k1 = 0" true
    (Point.equal (Point.mul_add Scalar.zero u2 q) (Point.mul u2 q))

(* Verify-side RFC 6979 vectors: signatures built from the published r/s
   (not produced by our signer), pushed through [Ecdsa.verify] and hence the
   Strauss-Shamir [Point.mul_add]. *)
let ecdsa_verify_vectors () =
  let fe h = Larch_ec.P256.Fe.of_nat (Nat.of_hex h) in
  let pk =
    Point.of_affine
      ~x:(fe "60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6")
      ~y:(fe "7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299")
  in
  let sig_of r s = Larch_ec.Ecdsa.{ r = Scalar.of_nat (Nat.of_hex r); s = Scalar.of_nat (Nat.of_hex s) } in
  let sg_sample =
    sig_of "efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716"
      "f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8"
  in
  Alcotest.(check bool) "verify(sample)" true (Larch_ec.Ecdsa.verify ~pk "sample" sg_sample);
  let sg_test =
    sig_of "f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367"
      "019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083"
  in
  Alcotest.(check bool) "verify(test)" true (Larch_ec.Ecdsa.verify ~pk "test" sg_test);
  Alcotest.(check bool) "cross message rejected" false
    (Larch_ec.Ecdsa.verify ~pk "test" sg_sample);
  Alcotest.(check bool) "swapped r/s rejected" false
    (Larch_ec.Ecdsa.verify ~pk "sample" Larch_ec.Ecdsa.{ r = sg_sample.s; s = sg_sample.r });
  Alcotest.(check bool) "zero r rejected" false
    (Larch_ec.Ecdsa.verify ~pk "sample" Larch_ec.Ecdsa.{ sg_sample with r = Scalar.zero })

(* The cached base-point tables (comb for mul_base, odd multiples of G for
   mul_add) must be built exactly once even when first forced from several
   domains at once. *)
let table_once_parallel () =
  let scalars = Array.init 16 (fun i -> Scalar.of_nat (Nat.of_int (i + 2))) in
  let combed = Larch_util.Parallel.map ~domains:4 (fun k -> Point.encode (Point.mul_base k)) scalars in
  let _ = Larch_util.Parallel.map ~domains:4 (fun k -> Point.encode (Point.mul_add k k Point.g)) scalars in
  Alcotest.(check string) "mul_base correct under domains"
    (Point.encode (Point.double Point.g)) combed.(0);
  let builds = Point.base_table_builds () in
  Alcotest.(check bool)
    (Printf.sprintf "each table built at most once (saw %d builds)" builds)
    true (builds <= 2)

let ecdsa_negative () =
  let sk, pk = Larch_ec.Ecdsa.keygen ~rand_bytes:rand in
  let sg = Larch_ec.Ecdsa.sign ~sk "message" in
  Alcotest.(check bool) "good verifies" true (Larch_ec.Ecdsa.verify ~pk "message" sg);
  Alcotest.(check bool) "wrong message rejected" false (Larch_ec.Ecdsa.verify ~pk "other" sg);
  let bad = { sg with s = Scalar.add sg.s Scalar.one } in
  Alcotest.(check bool) "tampered s rejected" false (Larch_ec.Ecdsa.verify ~pk "message" bad);
  let _, pk2 = Larch_ec.Ecdsa.keygen ~rand_bytes:rand in
  Alcotest.(check bool) "wrong key rejected" false (Larch_ec.Ecdsa.verify ~pk:pk2 "message" sg)

let elgamal_roundtrip () =
  let sk, pk = Larch_ec.Elgamal.keygen ~rand_bytes:rand in
  let msg = Larch_ec.Hash_to_curve.hash "hello-rp" in
  let r = Scalar.random_nonzero ~rand_bytes:rand in
  let ct = Larch_ec.Elgamal.encrypt ~pk ~msg ~r in
  Alcotest.(check bool) "decrypt" true (Point.equal (Larch_ec.Elgamal.decrypt ~sk ct) msg);
  let r2 = Scalar.random_nonzero ~rand_bytes:rand in
  let ct2 = Larch_ec.Elgamal.rerandomize ~pk ~r:r2 ct in
  Alcotest.(check bool) "rerandomized decrypts same" true
    (Point.equal (Larch_ec.Elgamal.decrypt ~sk ct2) msg);
  Alcotest.(check bool) "rerandomized ct differs" false
    (Larch_ec.Elgamal.encode ct = Larch_ec.Elgamal.encode ct2)

let hash_to_curve_props () =
  let p1 = Larch_ec.Hash_to_curve.hash "id-1" and p1' = Larch_ec.Hash_to_curve.hash "id-1" in
  let p2 = Larch_ec.Hash_to_curve.hash "id-2" in
  Alcotest.(check bool) "deterministic" true (Point.equal p1 p1');
  Alcotest.(check bool) "distinct inputs distinct points" false (Point.equal p1 p2);
  Alcotest.(check bool) "on curve" true (Point.is_on_curve p1)

(* ---------- util ---------- *)

let util_tests () =
  Alcotest.(check string) "hex" "00ff10" (Hex.encode (Hex.decode "00ff10"));
  Alcotest.(check string) "xor" "\x03" (Bytesx.xor "\x01" "\x02");
  Alcotest.(check bool) "ct_equal eq" true (Bytesx.ct_equal "abc" "abc");
  Alcotest.(check bool) "ct_equal neq" false (Bytesx.ct_equal "abc" "abd");
  Alcotest.(check bool) "ct_equal len" false (Bytesx.ct_equal "abc" "abcd");
  let bits = Bytesx.bits_of_string "\x05\x80" in
  Alcotest.(check (list int)) "bits" [ 1; 0; 1; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 1 ]
    (Array.to_list bits);
  Alcotest.(check string) "bits roundtrip" "\x05\x80" (Bytesx.string_of_bits bits)

let parallel_tests () =
  let xs = Array.init 100 (fun i -> i) in
  let seq = Larch_util.Parallel.map ~domains:1 (fun x -> x * x) xs in
  let par = Larch_util.Parallel.map ~domains:4 (fun x -> x * x) xs in
  Alcotest.(check (array int)) "parallel = sequential" seq par

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "substrates"
    [
      ( "util",
        [
          Alcotest.test_case "bytes+hex" `Quick util_tests;
          Alcotest.test_case "parallel map" `Quick parallel_tests;
        ] );
      ("nat", [ Alcotest.test_case "units" `Quick nat_units ]);
      qsuite "nat-props" nat_props;
      qsuite "field-props" fe_props;
      ( "hash",
        [
          Alcotest.test_case "sha256 vectors" `Quick sha256_vectors;
          Alcotest.test_case "sha1 vectors" `Quick sha1_vectors;
          Alcotest.test_case "hmac vectors" `Quick hmac_vectors;
          Alcotest.test_case "hkdf vectors" `Quick hkdf_vectors;
          Alcotest.test_case "drbg determinism" `Quick drbg_deterministic;
        ] );
      ( "cipher",
        [
          Alcotest.test_case "chacha20 vectors" `Quick chacha20_vectors;
          Alcotest.test_case "aes vectors" `Quick aes_vectors;
          Alcotest.test_case "sha-ctr roundtrip" `Quick sha_ctr_roundtrip;
        ] );
      qsuite "prg-props" prg_props;
      ( "p256",
        [
          Alcotest.test_case "known points" `Quick p256_known_points;
          Alcotest.test_case "scalar-mul KATs" `Quick p256_scalar_mul_kats;
          Alcotest.test_case "table built once under domains" `Quick table_once_parallel;
          Alcotest.test_case "ecdsa rfc6979" `Quick ecdsa_rfc6979;
          Alcotest.test_case "ecdsa verify vectors" `Quick ecdsa_verify_vectors;
          Alcotest.test_case "ecdsa negative" `Quick ecdsa_negative;
          Alcotest.test_case "elgamal" `Quick elgamal_roundtrip;
          Alcotest.test_case "hash-to-curve" `Quick hash_to_curve_props;
        ] );
      qsuite "p256-props" p256_group_props;
    ]
