(* Schedule-exploration fault matrix for the fiber runtime.

   Sixteen concurrent mixed-protocol session fibers (1 FIDO2, 3 TOTP,
   12 password) share one store-backed log behind the Log_async
   admission loop, over the simulated 20 ms RTT link, while per-session
   seeded injectors apply one of three fault profiles: drop, delay,
   crash-restart.  Sixty-four scheduler seeds per profile
   (LARCH_FAULT_FAST=1 trims to 8 for the @swarm/@smoke aliases).

   Invariants per world:

   - every session ends completed or typed-failed — never hung (a hang
     would surface as a Runtime.Deadlock, failing the world);
   - after calming the link: resync succeeds, the client's and the
     log's presignature cursors agree (no presignature double-consumed,
     none lost), and the full audit chain verifies for every session;
   - Log_persist.fsck with the live state as oracle: per-client record
     hash chains continuous, WAL replay byte-matches live state,
     structural store checks clean;
   - the whole world replays byte-for-byte from its seed alone.

   Seed threading: `--seed S` (stripped before alcotest sees argv) or
   LARCH_SEED=S offsets the seed block, so any CI failure reproduces
   locally with one env var. *)

open Larch_core
module Runtime = Larch_runtime.Runtime
module Fault = Larch_net.Fault
module Transport = Larch_net.Transport
module Clock = Larch_util.Clock
module Obs = Larch_obs

let seed_base, argv =
  let rec strip acc s = function
    | [] -> (s, List.rev acc)
    | "--seed" :: v :: rest -> strip acc (Some v) rest
    | a :: rest -> strip (a :: acc) s rest
  in
  let s, rest = strip [] None (Array.to_list Sys.argv) in
  let s =
    match s with
    | Some s -> s
    | None -> Option.value (Sys.getenv_opt "LARCH_SEED") ~default:"42"
  in
  (s, Array.of_list rest)

let fast = Sys.getenv_opt "LARCH_FAULT_FAST" <> None
let full = Sys.getenv_opt "LARCH_SWARM_FULL" <> None

(* the full 64-seed block is a soak run (LARCH_SWARM_FULL=1); plain
   runtest explores a 16-seed slice, the @swarm alias a fast 8 *)
let matrix_seeds = if full then 64 else if fast then 8 else 16
let sessions_per_world = 16

let () =
  Printf.printf
    "swarm matrix: %d seeds x 3 profiles, %d sessions each, base=%s%s (LARCH_SEED=%s to reproduce)\n%!"
    matrix_seeds sessions_per_world seed_base
    (if full then " [full]" else if fast then " [fast]" else "")
    seed_base

(* --- fault profiles under exploration --- *)

let profiles =
  [
    ("drop", { Fault.calm with Fault.p_drop = 0.12; p_duplicate = 0.06; p_reorder = 0.04 });
    ("delay", { Fault.calm with Fault.p_delay = 0.30; max_delay = 0.4; p_reorder = 0.08 });
    ("crash-restart", { Fault.calm with Fault.p_crash = 0.03; crash_span = 3; p_drop = 0.03 });
  ]

let base_time = 1_754_000_000.

type world = { digest : string; violations : string list; crashes : int }

(* Drive one seeded world: [sessions_per_world] fibers, one shared log,
   one admission loop.  The transcript (completion-order outcomes plus
   aggregate disk/admission state) is digested for the replay check. *)
let run_world ~(entropy : string) ~(profile : Fault.profile) : world =
  Clock.set base_time;
  Obs.Runtime.set_time_source (Some Clock.now);
  let drbg = Larch_hash.Drbg.create ~entropy in
  let rand n = Larch_hash.Drbg.generate drbg n in
  let disk = Larch_store.Disk.create ~seed:entropy () in
  let store = Larch_store.Store.open_ ~disk ~dir:"log" () in
  let log =
    Log_service.create ~checkpoint_every:32 ~objection_window:0.05 ~store ~rand_bytes:rand ()
  in
  let la = Log_async.create log in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let transcript = Buffer.create 1024 in
  Runtime.run ~seed:entropy (fun () ->
      Log_async.start la;
      let session i () =
        let cid = Printf.sprintf "s%02d" i in
        let proto =
          if i mod sessions_per_world = 0 then `Fido2
          else if i mod sessions_per_world <= 3 then `Totp
          else `Password
        in
        let client =
          Client.create ~net:Larch_net.Netsim.paper_default ~client_id:cid
            ~account_password:("pw-" ^ cid) ~log ~rand_bytes:rand ()
        in
        Log_async.attach la ~client_id:cid client.Client.transport;
        (* clean enrollment and registration; faults start with auth *)
        Client.enroll ~presignature_count:(if proto = `Fido2 then 2 else 1) client;
        let rp = Relying_party.create ~name:("rp-" ^ cid) ~rand_bytes:rand () in
        let auth =
          match proto with
          | `Fido2 ->
              let pk = Client.register_fido2 client ~rp_name:("rp-" ^ cid) in
              Relying_party.fido2_register rp ~username:cid ~pk;
              fun () ->
                let challenge = Relying_party.fido2_challenge rp ~username:cid in
                let assertion =
                  Client.authenticate_fido2 client ~rp_name:("rp-" ^ cid) ~challenge
                in
                if not (Relying_party.fido2_login rp ~username:cid assertion) then
                  Types.fail "relying party rejected"
          | `Totp ->
              let totp_key = Relying_party.totp_register rp ~username:cid in
              Client.register_totp client ~rp_name:("rp-" ^ cid) ~totp_key;
              fun () ->
                ignore
                  (Client.authenticate_totp client ~rp_name:("rp-" ^ cid) ~time:(Clock.now ()))
          | `Password ->
              let site_pw = Client.register_password client ~rp_name:("rp-" ^ cid) in
              Relying_party.password_set rp ~username:cid ~password:site_pw;
              fun () ->
                let pw = Client.authenticate_password client ~rp_name:("rp-" ^ cid) in
                if not (Relying_party.password_login rp ~username:cid ~password:pw) then
                  Types.fail "relying party rejected"
        in
        Transport.set_injector client.Client.transport
          (Some (Fault.seeded ~seed:(entropy ^ "/" ^ cid) profile));
        let outcome =
          match auth () with
          | () -> "ok"
          | exception Transport.Error e ->
              "transport " ^ Transport.failure_to_string e.Transport.last
          | exception Types.Protocol_error m -> "protocol " ^ m
          | exception Client.Log_misbehaved m -> "log-misbehaved " ^ m
        in
        (* calm link: the world must be fully recoverable *)
        Transport.set_injector client.Client.transport None;
        (match Client.resync client with
        | () -> ()
        | exception e ->
            violate "%s: resync failed on a calm link: %s" cid (Printexc.to_string e));
        let remaining_c = Client.presignatures_remaining client in
        let remaining_l = Log_service.presignatures_remaining log ~client_id:cid in
        if remaining_c <> remaining_l then
          violate "%s: presig cursors disagree after resync (client %d, log %d)" cid
            remaining_c remaining_l;
        (match Client.audit_verified client with
        | Ok _ -> ()
        | Error m -> violate "%s: audit chain broken after recovery: %s" cid m
        | exception e ->
            violate "%s: audit failed on a calm link: %s" cid (Printexc.to_string e));
        Buffer.add_string transcript
          (Printf.sprintf "%s %s presigs=%d\n" cid outcome remaining_c)
      in
      let fibers =
        List.init sessions_per_world (fun i ->
            Runtime.spawn ~name:(Printf.sprintf "session-%02d" i) (session i))
      in
      List.iter
        (fun p ->
          match Runtime.await p with
          | () -> ()
          | exception e -> violate "session died untyped: %s" (Printexc.to_string e))
        fibers;
      Log_async.stop la);
  (* store oracle: structural checks, chain continuity, presignature
     cursor monotonicity, and WAL-replay-vs-live byte match *)
  (match Log_service.fsck log with
  | None -> violate "no persist layer attached"
  | Some fr ->
      if not (Log_persist.fsck_clean fr) then
        violate "fsck dirty: %s" (String.concat "; " fr.Log_persist.issues));
  let ds = Larch_store.Disk.stats disk in
  Buffer.add_string transcript
    (Printf.sprintf "disk appends=%d crashes=%d admission batches=%d batched=%d\n"
       ds.Larch_store.Disk.appends ds.Larch_store.Disk.crashes (Log_async.batches la)
       (Log_async.batched_requests la));
  Obs.Runtime.set_time_source None;
  Clock.use_real_time ();
  {
    digest = Larch_util.Hex.encode (Larch_hash.Sha256.digest (Buffer.contents transcript));
    violations = List.rev !violations;
    crashes = ds.Larch_store.Disk.crashes;
  }

(* --- the matrix: one alcotest case per profile --- *)

let matrix_case (pname, profile) () =
  let all = ref [] in
  let crashes = ref 0 in
  for k = 0 to matrix_seeds - 1 do
    let entropy = Printf.sprintf "swarm-%s/%s/%d" seed_base pname k in
    let w = run_world ~entropy ~profile in
    crashes := !crashes + w.crashes;
    List.iter (fun v -> all := Printf.sprintf "[seed %d] %s" k v :: !all) w.violations;
    if (k + 1) mod 16 = 0 then Printf.printf "  %s: %d/%d seeds\n%!" pname (k + 1) matrix_seeds
  done;
  (* the crash profile must actually restart the log somewhere in the
     block, or the matrix is silently not exercising recovery *)
  if pname = "crash-restart" && !crashes = 0 then
    Alcotest.failf "%s: no log restart occurred across %d seeds" pname matrix_seeds;
  match !all with
  | [] -> ()
  | vs ->
      Alcotest.failf "%s: %d invariant violation(s):\n%s" pname (List.length vs)
        (String.concat "\n" (List.rev vs))

let replay_case () =
  List.iter
    (fun (pname, profile) ->
      let entropy = Printf.sprintf "swarm-%s/replay/%s" seed_base pname in
      let w1 = run_world ~entropy ~profile in
      let w2 = run_world ~entropy ~profile in
      Alcotest.(check (list string)) (pname ^ ": violations replay") w1.violations w2.violations;
      Alcotest.(check string)
        (Printf.sprintf "%s: transcript replays byte-for-byte (LARCH_SEED=%s)" pname seed_base)
        w1.digest w2.digest)
    profiles

let () =
  Alcotest.run ~argv "swarm"
    [
      ( "matrix",
        List.map
          (fun (pname, p) ->
            Alcotest.test_case (Printf.sprintf "%s x%d seeds" pname matrix_seeds) `Slow
              (matrix_case (pname, p)))
          profiles );
      ("replay", [ Alcotest.test_case "same seed, same world" `Quick replay_case ]);
    ]
