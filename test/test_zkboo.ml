(* ZKBoo proof system tests: completeness, soundness under tampering,
   zero-knowledge smoke checks, serialization, and the full larch FIDO2
   statement. *)

module Circuit = Larch_circuit.Circuit
module Builder = Larch_circuit.Builder
module Zkboo = Larch_zkboo.Zkboo

let rand = Larch_hash.Drbg.of_seed "test-zkboo"

(* A toy circuit: out = (a AND b) XOR (NOT c), 3 inputs, plus a constant. *)
let toy_circuit () =
  let b = Builder.create () in
  let a = Builder.input b and bb = Builder.input b and c = Builder.input b in
  let t = Builder.band b a bb in
  let nc = Builder.bnot b c in
  let o1 = Builder.bxor b t nc in
  let o2 = Builder.bxor b o1 (Builder.const b true) in
  Builder.finalize b ~outputs:[| o1; o2 |]

let prove_verify_toy () =
  let circuit = toy_circuit () in
  List.iter
    (fun witness ->
      let proof =
        Zkboo.prove ~reps:40 ~circuit ~witness ~statement_tag:"toy" ~rand_bytes:rand ()
      in
      let public_output = Circuit.eval circuit witness in
      Alcotest.(check bool) "verifies" true
        (Zkboo.verify ~circuit ~public_output ~statement_tag:"toy" proof);
      (* flipping any output bit must break it *)
      let bad = Array.copy public_output in
      bad.(0) <- not bad.(0);
      Alcotest.(check bool) "wrong output rejected" false
        (Zkboo.verify ~circuit ~public_output:bad ~statement_tag:"toy" proof);
      Alcotest.(check bool) "wrong tag rejected" false
        (Zkboo.verify ~circuit ~public_output ~statement_tag:"other" proof))
    [
      [| true; true; false |];
      [| false; false; false |];
      [| true; false; true |];
      [| true; true; true |];
    ]

(* A medium circuit with many ANDs crossing the 62-lane boundary. *)
let medium_circuit () =
  let b = Builder.create () in
  let xs = Builder.inputs b 64 and ys = Builder.inputs b 64 in
  let prod = Larch_circuit.Word.add b (Array.sub xs 0 32) (Array.sub ys 0 32) in
  let ands = Array.map2 (Builder.band b) (Array.sub xs 32 32) (Array.sub ys 32 32) in
  Builder.finalize b ~outputs:(Array.append prod ands)

let prove_verify_medium () =
  let circuit = medium_circuit () in
  let witness = Array.init 128 (fun i -> Char.code (rand 1).[0] land 1 = 1 || i mod 7 = 0) in
  let public_output = Circuit.eval circuit witness in
  (* 137 reps exercises multiple packed batches (62+62+13) *)
  let proof = Zkboo.prove ~circuit ~witness ~statement_tag:"medium" ~rand_bytes:rand () in
  Alcotest.(check bool) "verifies" true
    (Zkboo.verify ~circuit ~public_output ~statement_tag:"medium" proof);
  (* parallel verify agrees *)
  Alcotest.(check bool) "parallel verifies" true
    (Zkboo.verify ~domains:4 ~circuit ~public_output ~statement_tag:"medium" proof)

let tamper_rejected () =
  let circuit = toy_circuit () in
  let witness = [| true; false; true |] in
  let public_output = Circuit.eval circuit witness in
  let proof = Zkboo.prove ~reps:40 ~circuit ~witness ~statement_tag:"t" ~rand_bytes:rand () in
  let verify p = Zkboo.verify ~circuit ~public_output ~statement_tag:"t" p in
  Alcotest.(check bool) "baseline" true (verify proof);
  (* tamper: z_e1 bit flip in one repetition *)
  let flip_first_byte s =
    if s = "" then s
    else String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) s
  in
  let tampered_z =
    {
      proof with
      Zkboo.responses =
        Array.mapi
          (fun i r ->
            if i = 0 then { r with Zkboo.z_e1 = flip_first_byte r.Zkboo.z_e1 } else r)
          proof.Zkboo.responses;
    }
  in
  Alcotest.(check bool) "tampered z rejected" false (verify tampered_z);
  (* tamper: commitment flip *)
  let tampered_c =
    {
      proof with
      Zkboo.commits =
        Array.mapi
          (fun i cs -> if i = 1 then Array.map flip_first_byte cs else cs)
          proof.Zkboo.commits;
    }
  in
  Alcotest.(check bool) "tampered commit rejected" false (verify tampered_c);
  (* tamper: output share flip (breaks the XOR identity) *)
  let tampered_y =
    {
      proof with
      Zkboo.out_shares =
        Array.mapi
          (fun i ys -> if i = 2 then [| flip_first_byte ys.(0); ys.(1); ys.(2) |] else ys)
          proof.Zkboo.out_shares;
    }
  in
  Alcotest.(check bool) "tampered out share rejected" false (verify tampered_y);
  (* tamper: seed swap *)
  let tampered_s =
    {
      proof with
      Zkboo.responses =
        Array.mapi
          (fun i r ->
            if i = 0 then { r with Zkboo.seed_e = String.make Zkboo.seed_len 'A' } else r)
          proof.Zkboo.responses;
    }
  in
  Alcotest.(check bool) "tampered seed rejected" false (verify tampered_s)

let serialization_roundtrip () =
  let circuit = toy_circuit () in
  let witness = [| false; true; true |] in
  let public_output = Circuit.eval circuit witness in
  let proof = Zkboo.prove ~reps:20 ~circuit ~witness ~statement_tag:"s" ~rand_bytes:rand () in
  let bytes = Zkboo.to_bytes proof in
  match Zkboo.of_bytes bytes with
  | None -> Alcotest.fail "decode failed"
  | Some proof' ->
      Alcotest.(check bool) "decoded verifies" true
        (Zkboo.verify ~circuit ~public_output ~statement_tag:"s" proof');
      Alcotest.(check bool) "reserialization identical" true (Zkboo.to_bytes proof' = bytes);
      (* truncation must fail to decode *)
      Alcotest.(check bool) "truncated rejected" true
        (Zkboo.of_bytes (String.sub bytes 0 (String.length bytes - 3)) = None)

let proofs_are_randomized () =
  let circuit = toy_circuit () in
  let witness = [| true; true; false |] in
  let p1 = Zkboo.prove ~reps:10 ~circuit ~witness ~statement_tag:"zk" ~rand_bytes:rand () in
  let p2 = Zkboo.prove ~reps:10 ~circuit ~witness ~statement_tag:"zk" ~rand_bytes:rand () in
  Alcotest.(check bool) "distinct proofs" false (Zkboo.to_bytes p1 = Zkboo.to_bytes p2)

let fido2_statement_proof () =
  let k = rand 32 and r = rand 16 and id = rand 32 and chal = rand 32 and nonce = rand 12 in
  let cm, ct, dgst = Larch_circuit.Larch_statements.fido2_compute ~k ~r ~id ~chal ~nonce in
  let circuit = Lazy.force Larch_circuit.Larch_statements.fido2_circuit in
  let witness = Larch_circuit.Larch_statements.fido2_witness_bits { k; r; id; chal; nonce } in
  let public_output = Larch_circuit.Larch_statements.fido2_public_bits ~cm ~ct ~dgst ~nonce in
  let tag = "larch-fido2" in
  let t0 = Unix.gettimeofday () in
  let proof = Zkboo.prove ~circuit ~witness ~statement_tag:tag ~rand_bytes:rand () in
  let t1 = Unix.gettimeofday () in
  Alcotest.(check bool) "fido2 proof verifies" true
    (Zkboo.verify ~circuit ~public_output ~statement_tag:tag proof);
  let t2 = Unix.gettimeofday () in
  let size = Zkboo.size_bytes proof in
  Printf.printf "\n  [fido2 zkboo] prove %.0fms verify %.0fms proof %.2f MiB\n" ((t1 -. t0) *. 1000.)
    ((t2 -. t1) *. 1000.)
    (float_of_int size /. 1024. /. 1024.);
  (* wrong digest (e.g. different relying party) must be rejected *)
  let bad_dgst = Larch_hash.Sha256.digest "not-the-right-rp" in
  let bad_output = Larch_circuit.Larch_statements.fido2_public_bits ~cm ~ct ~dgst:bad_dgst ~nonce in
  Alcotest.(check bool) "wrong dgst rejected" false
    (Zkboo.verify ~circuit ~public_output:bad_output ~statement_tag:tag proof)

(* Property: for random small circuits and random witnesses, prove/verify
   round-trips, and verification against a flipped output bit fails. *)
let zkboo_random_circuit_props =
  let gen_circuit_and_witness =
    QCheck.Gen.(
      let* n_in = int_range 4 12 in
      let* n_gates = int_range 5 40 in
      let* seed = string_size ~gen:char (return 16) in
      return (n_in, n_gates, seed))
  in
  let arb = QCheck.make ~print:(fun (a, b, _) -> Printf.sprintf "in=%d gates=%d" a b) gen_circuit_and_witness in
  [
    QCheck.Test.make ~name:"random circuits prove/verify" ~count:15 arb
      (fun (n_in, n_gates, seed) ->
        let prg = Larch_hash.Drbg.of_seed ("zkp" ^ seed) in
        let byte () = Char.code (prg 1).[0] in
        let b = Builder.create () in
        let inputs = Builder.inputs b n_in in
        let wires = ref (Array.to_list inputs) in
        let pick () = List.nth !wires (byte () mod List.length !wires) in
        for _ = 1 to n_gates do
          let w =
            match byte () mod 4 with
            | 0 -> Builder.band b (pick ()) (pick ())
            | 1 -> Builder.bxor b (pick ()) (pick ())
            | 2 -> Builder.bnot b (pick ())
            | _ -> Builder.const b (byte () land 1 = 1)
          in
          wires := w :: !wires
        done;
        let outputs = Array.init 4 (fun _ -> pick ()) in
        let circuit = Builder.finalize b ~outputs in
        let witness = Array.init n_in (fun _ -> byte () land 1 = 1) in
        let public_output = Circuit.eval circuit witness in
        let proof = Zkboo.prove ~reps:15 ~circuit ~witness ~statement_tag:"prop" ~rand_bytes:prg () in
        let good = Zkboo.verify ~circuit ~public_output ~statement_tag:"prop" proof in
        let flipped = Array.copy public_output in
        flipped.(0) <- not flipped.(0);
        let bad = Zkboo.verify ~circuit ~public_output:flipped ~statement_tag:"prop" proof in
        good && not bad);
  ]

(* Repetition counts straddling the 62-lane word boundary: a lone lane,
   one bit under/at/over a full word, exactly two words, and the paper's
   137 (two words + a 13-lane tail) — each proved sequentially and with
   the balanced multi-domain batching. *)
let rep_edge_roundtrips () =
  let circuit = medium_circuit () in
  let witness = Array.init 128 (fun i -> Char.code (rand 1).[0] land 1 = 1 || i mod 5 = 0) in
  let public_output = Circuit.eval circuit witness in
  List.iter
    (fun reps ->
      List.iter
        (fun domains ->
          let proof =
            Zkboo.prove ~reps ~domains ~circuit ~witness ~statement_tag:"edge" ~rand_bytes:rand
              ()
          in
          Alcotest.(check int) "rep count" reps proof.Zkboo.n_reps;
          Alcotest.(check bool)
            (Printf.sprintf "reps=%d domains=%d verifies" reps domains)
            true
            (Zkboo.verify ~circuit ~public_output ~statement_tag:"edge" proof))
        [ 1; 3 ])
    [ 1; 61; 62; 63; 124; 137 ]

(* Batching is an execution detail: the same randomness must yield
   byte-identical proofs whatever the domain count. *)
let domains_do_not_change_bytes () =
  let circuit = medium_circuit () in
  let witness = Array.init 128 (fun i -> i mod 3 = 1) in
  let prove domains =
    let prg = Larch_hash.Drbg.of_seed "zkboo-domain-bytes" in
    Zkboo.to_bytes
      (Zkboo.prove ~reps:137 ~domains ~circuit ~witness ~statement_tag:"db" ~rand_bytes:prg ())
  in
  let base = prove 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool) (Printf.sprintf "domains=%d byte-identical" d) true (prove d = base))
    [ 2; 3; 4 ]

let lane_width_equivalence () =
  (* unpacked and packed proving produce proofs the verifier accepts *)
  let circuit = toy_circuit () in
  let witness = [| true; false; true |] in
  let public_output = Circuit.eval circuit witness in
  List.iter
    (fun w ->
      let proof =
        Zkboo.prove ~reps:20 ~lane_width:w ~circuit ~witness ~statement_tag:"lw" ~rand_bytes:rand ()
      in
      Alcotest.(check bool) (Printf.sprintf "lane width %d" w) true
        (Zkboo.verify ~circuit ~public_output ~statement_tag:"lw" proof))
    [ 1; 2; 7; 62 ]

let () =
  Alcotest.run "zkboo"
    [
      ( "zkboo",
        [
          Alcotest.test_case "toy completeness" `Quick prove_verify_toy;
          Alcotest.test_case "medium circuit" `Quick prove_verify_medium;
          Alcotest.test_case "tamper rejection" `Quick tamper_rejected;
          Alcotest.test_case "serialization" `Quick serialization_roundtrip;
          Alcotest.test_case "proofs randomized" `Quick proofs_are_randomized;
          Alcotest.test_case "fido2 statement" `Slow fido2_statement_proof;
          Alcotest.test_case "lane-width equivalence" `Quick lane_width_equivalence;
          Alcotest.test_case "rep-count edges" `Quick rep_edge_roundtrips;
          Alcotest.test_case "domain-count byte invariance" `Quick domains_do_not_change_bytes;
        ] );
      ("zkboo-props", List.map QCheck_alcotest.to_alcotest zkboo_random_circuit_props);
    ]
