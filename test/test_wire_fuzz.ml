(* Adversarial fuzzing of every wire codec.

   Two families of properties:

   - round trips: anything encoded through [Larch_net.Wire] (and the
     protocol codecs built on it) decodes back to the value it came from;
   - rejection: truncated, inflated, bit-flipped, or random inputs are
     refused with a codec-level error ([Error _] / [None]) — never an
     [Invalid_argument] or any other exception.  The fault injector
     corrupts live traffic, so every decoder doubles as an attack
     surface. *)

open Larch_core
module Wire = Larch_net.Wire
module Scalar = Larch_ec.P256.Scalar
module Point = Larch_ec.Point
module Tpe = Two_party_ecdsa

let rand = Larch_hash.Drbg.rand_bytes_of (Larch_hash.Drbg.create ~entropy:"wire-fuzz")

(* --- generators --- *)

let raw_gen = QCheck.Gen.(string_size ~gen:char (0 -- 200))
let arb_raw = QCheck.make ~print:Larch_util.Hex.encode raw_gen

(* strings whose length prefixes suggest structure: a few random
   length-prefixed fields glued together, then possibly damaged *)
let structured_gen =
  QCheck.Gen.(
    let* n = 1 -- 4 in
    let* fields = list_size (return n) (string_size ~gen:char (0 -- 40)) in
    let enc = Wire.encode (fun w -> List.iter (Wire.bytes w) fields) in
    let* cut = 0 -- String.length enc in
    return (String.sub enc 0 cut))

let arb_structured = QCheck.make ~print:Larch_util.Hex.encode structured_gen

(* --- primitive round trips --- *)

let composite_roundtrip =
  QCheck.Test.make ~name:"composite roundtrip" ~count:300
    QCheck.(
      quad (int_bound 255) (int_bound 0xffffff) (string_of Gen.char) (list (string_of Gen.char)))
    (fun (a, b, s, xs) ->
      let enc =
        Wire.encode (fun w ->
            Wire.u8 w a;
            Wire.u32 w b;
            Wire.u64 w (Int64.of_int (a + b));
            Wire.bytes w s;
            Wire.list w Wire.bytes xs;
            Wire.fixed w "tail")
      in
      Wire.decode enc (fun r ->
          let a' = Wire.read_u8 r in
          let b' = Wire.read_u32 r in
          let c' = Wire.read_u64 r in
          let s' = Wire.read_bytes r in
          let xs' = Wire.read_list r Wire.read_bytes in
          let t' = Wire.read_fixed r 4 in
          (a', b', c', s', xs', t'))
      = Ok (a, b, Int64.of_int (a + b), s, xs, "tail"))

(* --- rejection: every malformed input must yield Error, not an exception --- *)

let decodes_cleanly (f : Wire.reader -> 'a) (s : string) : bool =
  match Wire.decode s f with Ok _ | Error _ -> true | exception _ -> false

let truncation_rejected =
  QCheck.Test.make ~name:"strict prefixes rejected" ~count:200 arb_raw (fun s ->
      let enc = Wire.encode (fun w -> Wire.bytes w s) in
      List.for_all
        (fun cut ->
          match Wire.decode (String.sub enc 0 cut) Wire.read_bytes with
          | Error _ -> true
          | Ok _ -> false
          | exception _ -> false)
        (List.init (String.length enc) (fun i -> i)))

let inflated_length_rejected =
  QCheck.Test.make ~name:"inflated length prefix rejected" ~count:200 arb_raw (fun s ->
      (* claim one more byte than is present *)
      let enc = Wire.encode (fun w -> Wire.u32 w (String.length s + 1)) ^ s in
      match Wire.decode enc Wire.read_bytes with
      | Error _ -> true
      | Ok _ -> false
      | exception _ -> false)

let trailing_rejected =
  QCheck.Test.make ~name:"trailing bytes rejected" ~count:200 arb_raw (fun s ->
      let enc = Wire.encode (fun w -> Wire.bytes w s) ^ "\x00" in
      match Wire.decode enc Wire.read_bytes with Error _ -> true | _ -> false)

let absurd_list_rejected () =
  List.iter
    (fun prefix ->
      match Wire.decode prefix (fun r -> Wire.read_list r Wire.read_bytes) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "absurd list accepted")
    [ "\xff\xff\xff\xff"; "\x00\x98\x96\x81" (* 10_000_001 *); "\x7f\x00\x00\x00" ]

let structured_garbage_never_raises =
  QCheck.Test.make ~name:"reader combinators never raise" ~count:500 arb_structured (fun s ->
      decodes_cleanly Wire.read_bytes s
      && decodes_cleanly (fun r -> Wire.read_list r Wire.read_bytes) s
      && decodes_cleanly (fun r -> Wire.read_fixed r 32) s
      && decodes_cleanly Wire.read_u64 s)

(* --- protocol codecs: decoders are total functions into options --- *)

let protocol_decoders : (string * (string -> bool)) list =
  [
    ("fido2 auth_request", fun s -> Fido2_protocol.decode_auth_request s |> ignore; true);
    ("fido2 auth_response1", fun s -> Fido2_protocol.decode_auth_response1 s |> ignore; true);
    ("totp registration", fun s -> Totp_protocol.decode_registration s |> ignore; true);
    ("password auth_request", fun s -> Password_protocol.decode_auth_request s |> ignore; true);
    ("halfmul_msg", fun s -> Tpe.decode_halfmul_msg s |> ignore; true);
    ("spdz reveal", fun s -> Tpe.decode_reveal s |> ignore; true);
    ("record", fun s -> Record.decode_opt s |> ignore; true);
    ("point", fun s -> Point.decode s |> ignore; true);
    ("compressed point", fun s -> Point.decode_compressed s |> ignore; true);
    ("elgamal", fun s -> Larch_ec.Elgamal.decode s |> ignore; true);
    ("dleq", fun s -> Larch_sigma.Dleq.decode s |> ignore; true);
    ("merkle sth", fun s -> Larch_merkle.Merkle.Sth.decode s |> ignore; true);
    ("merkle proof", fun s -> Larch_merkle.Merkle.decode_proof s |> ignore; true);
    ("attestation", fun s -> Log_service.decode_attestation s |> ignore; true);
    ("audit response", fun s -> Log_service.decode_audit_response s |> ignore; true);
  ]

let decoder_total_tests =
  List.map
    (fun (name, f) ->
      QCheck.Test.make ~name:(name ^ " total on garbage") ~count:300
        (QCheck.pair arb_raw arb_structured)
        (fun (a, b) ->
          (try f a with _ -> false)
          && (try f b with _ -> false)
          (* boundary sizes the fixed-width decoders branch on *)
          && List.for_all (fun n -> try f (rand n) with _ -> false) [ 0; 1; 33; 64; 65; 80; 96 ]))
    protocol_decoders

(* --- protocol round trips --- *)

(* the codec pins the canonical field sizes (16-byte id, 20-byte key
   share): canonical payloads round-trip, everything else is rejected *)
let totp_registration_roundtrip =
  QCheck.Test.make ~name:"totp registration roundtrip" ~count:200
    QCheck.(pair (string_of_size (Gen.return 16)) (string_of_size (Gen.return 20)))
    (fun (id, klog) ->
      Totp_protocol.decode_registration (Totp_protocol.encode_registration { id; klog })
      = Some { Totp_protocol.id; klog })

let totp_registration_wrong_size =
  QCheck.Test.make ~name:"totp registration wrong sizes rejected" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let id = String.make a 'i' and klog = String.make b 'k' in
      let decoded =
        Totp_protocol.decode_registration (Totp_protocol.encode_registration { id; klog })
      in
      if a = 16 && b = 20 then decoded = Some { Totp_protocol.id; klog } else decoded = None)

let canonical_scalar () = Scalar.of_bytes_be (rand 32)

let halfmul_roundtrip =
  QCheck.Test.make ~name:"halfmul roundtrip" ~count:100 QCheck.unit (fun () ->
      let m = { Larch_mpc.Spdz.d = canonical_scalar (); e = canonical_scalar () } in
      match Tpe.decode_halfmul_msg (Tpe.encode_halfmul_msg m) with
      | Some m' ->
          Scalar.to_bytes_be m'.Larch_mpc.Spdz.d = Scalar.to_bytes_be m.Larch_mpc.Spdz.d
          && Scalar.to_bytes_be m'.Larch_mpc.Spdz.e = Scalar.to_bytes_be m.Larch_mpc.Spdz.e
      | None -> false)

let reveal_roundtrip =
  QCheck.Test.make ~name:"spdz reveal roundtrip" ~count:100 QCheck.unit (fun () ->
      let r =
        { Larch_mpc.Spdz.sigma = canonical_scalar (); tau = canonical_scalar (); nonce = rand 16 }
      in
      match Tpe.decode_reveal (Tpe.encode_reveal r) with
      | Some r' -> Tpe.encode_reveal r' = Tpe.encode_reveal r
      | None -> false)

let wrong_size_fixed_codecs () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "halfmul size %d" n)
        (n = 64)
        (Tpe.decode_halfmul_msg (rand n) <> None);
      Alcotest.(check bool)
        (Printf.sprintf "reveal size %d" n)
        (n = 80)
        (Tpe.decode_reveal (rand n) <> None))
    [ 0; 63; 64; 65; 79; 80; 81 ]

let record_roundtrip =
  QCheck.Test.make ~name:"record roundtrip" ~count:100
    QCheck.(pair (int_bound 1_000_000) bool)
    (fun (t, symmetric) ->
      let payload =
        if symmetric then
          Record.Symmetric { nonce = rand 12; ct = rand 32; signature = rand 64 }
        else
          Record.Elgamal
            {
              Larch_ec.Elgamal.c1 = Point.mul_base (canonical_scalar ());
              c2 = Point.mul_base (canonical_scalar ());
            }
      in
      let r = { Record.time = float_of_int t; ip = "10.0.0.1"; method_ = Types.Fido2; payload } in
      match Record.decode (Record.encode r) with
      | Ok r' -> Record.encode r' = Record.encode r
      | Error _ -> false)

(* --- transparency-layer codecs --- *)

module Merkle = Larch_merkle.Merkle

let sth_key = lazy (Larch_ec.Ecdsa.keygen ~rand_bytes:rand)

let mk_sth ~size : Merkle.Sth.t =
  let sk, _ = Lazy.force sth_key in
  Merkle.Sth.sign ~sk ~client_id:"fuzz-client" ~size ~root:(rand 32) ~time:1234.5

let mk_record () : Record.t =
  {
    Record.time = 42.;
    ip = "10.0.0.1";
    method_ = Types.Password;
    payload =
      Record.Elgamal
        {
          Larch_ec.Elgamal.c1 = Point.mul_base (canonical_scalar ());
          c2 = Point.mul_base (canonical_scalar ());
        };
  }

let merkle_sth_roundtrip =
  QCheck.Test.make ~name:"merkle sth roundtrip" ~count:50 QCheck.(int_bound 1_000_000)
    (fun size ->
      let sth = mk_sth ~size in
      match Merkle.Sth.decode (Merkle.Sth.encode sth) with
      | Ok s' -> Merkle.Sth.encode s' = Merkle.Sth.encode sth
      | Error _ -> false)

let merkle_proof_roundtrip =
  QCheck.Test.make ~name:"merkle proof roundtrip" ~count:100 QCheck.(int_bound 40) (fun n ->
      let proof = List.init n (fun _ -> rand 32) in
      Merkle.decode_proof (Merkle.encode_proof proof) = Ok proof)

let attestation_roundtrip =
  QCheck.Test.make ~name:"attestation roundtrip" ~count:50
    QCheck.(triple (int_bound 1000) (int_bound 20) bool)
    (fun (index, depth, degraded) ->
      let a =
        {
          Log_service.index;
          record = Record.encode (mk_record ());
          proof = (if degraded then [] else List.init depth (fun _ -> rand 32));
          sth = mk_sth ~size:(index + 1);
          degraded;
        }
      in
      match Log_service.decode_attestation (Log_service.encode_attestation a) with
      | Ok a' -> Log_service.encode_attestation a' = Log_service.encode_attestation a
      | Error _ -> false)

let audit_response_roundtrip =
  QCheck.Test.make ~name:"audit response roundtrip" ~count:30
    QCheck.(pair (int_bound 5) (int_bound 5))
    (fun (nrecs, since) ->
      let records = List.init nrecs (fun _ -> mk_record ()) in
      let a =
        {
          Log_service.records;
          since;
          chain_head = rand 32;
          chain_len = since + nrecs;
          sth = mk_sth ~size:(since + nrecs);
          consistency = List.init 3 (fun _ -> rand 32);
          proofs = List.map (fun _ -> List.init 4 (fun _ -> rand 32)) records;
        }
      in
      match Log_service.decode_audit_response (Log_service.encode_audit_response a) with
      | Ok a' -> Log_service.encode_audit_response a' = Log_service.encode_audit_response a
      | Error _ -> false)

(* --- mutation fuzz of live protocol messages --- *)

(* one valid fido2 auth request (the largest message in the system),
   then random single-byte damage: decode must stay total, and a strict
   truncation must be rejected *)
let fido2_mutation () =
  let circuit = Lazy.force Larch_circuit.Larch_statements.fido2_circuit in
  let witness = Array.make circuit.Larch_circuit.Circuit.n_inputs false in
  let proof =
    Larch_zkboo.Zkboo.prove ~reps:6 ~circuit ~witness ~statement_tag:"fuzz" ~rand_bytes:rand ()
  in
  let req =
    {
      Fido2_protocol.dgst = rand 32;
      ct_nonce = rand 12;
      ct = rand 32;
      record_sig = rand 64;
      proof;
      presig_index = 3;
      hm_msg = { Larch_mpc.Spdz.d = canonical_scalar (); e = canonical_scalar () };
    }
  in
  let bytes = Fido2_protocol.encode_auth_request req in
  let n = String.length bytes in
  for _ = 1 to 200 do
    let pos = Char.code (rand 3).[0] * 256 * 256 mod n in
    let bit = Char.code (rand 1).[0] land 7 in
    let b = Bytes.of_string bytes in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    match Fido2_protocol.decode_auth_request (Bytes.to_string b) with
    | Some _ | None -> ()
    | exception e ->
        Alcotest.failf "decoder raised %s on flipped bit %d of byte %d" (Printexc.to_string e)
          bit pos
  done;
  for _ = 1 to 50 do
    let cut = 1 + (Char.code (rand 1).[0] * n / 256) in
    let cut = min cut (n - 1) in
    match Fido2_protocol.decode_auth_request (String.sub bytes 0 cut) with
    | None -> ()
    | Some _ -> Alcotest.failf "truncation to %d bytes accepted" cut
    | exception e -> Alcotest.failf "decoder raised %s on truncation" (Printexc.to_string e)
  done

(* a valid attestation + audit response, then random single-byte damage:
   the decoders must stay total (corrupt proofs are for the *verifier* to
   reject, the codec just must not crash) *)
let attestation_mutation () =
  let a =
    {
      Log_service.index = 7;
      record = Record.encode (mk_record ());
      proof = List.init 6 (fun _ -> rand 32);
      sth = mk_sth ~size:8;
      degraded = false;
    }
  in
  let bytes = Log_service.encode_attestation a in
  let n = String.length bytes in
  for _ = 1 to 300 do
    let pos = Char.code (rand 3).[0] * 256 * 256 mod n in
    let bit = Char.code (rand 1).[0] land 7 in
    let b = Bytes.of_string bytes in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    match Log_service.decode_attestation (Bytes.to_string b) with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "attestation decoder raised %s on flipped bit %d of byte %d"
          (Printexc.to_string e) bit pos
  done;
  for cut = 0 to n - 1 do
    match Log_service.decode_attestation (String.sub bytes 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "attestation truncation to %d bytes accepted" cut
    | exception e -> Alcotest.failf "decoder raised %s on truncation" (Printexc.to_string e)
  done

let audit_response_mutation () =
  let records = List.init 3 (fun _ -> mk_record ()) in
  let a =
    {
      Log_service.records;
      since = 2;
      chain_head = rand 32;
      chain_len = 5;
      sth = mk_sth ~size:5;
      consistency = List.init 3 (fun _ -> rand 32);
      proofs = List.map (fun _ -> List.init 3 (fun _ -> rand 32)) records;
    }
  in
  let bytes = Log_service.encode_audit_response a in
  let n = String.length bytes in
  for _ = 1 to 300 do
    let pos = Char.code (rand 3).[0] * 256 * 256 mod n in
    let b = Bytes.of_string bytes in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
    match Log_service.decode_audit_response (Bytes.to_string b) with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "audit response decoder raised %s on byte %d" (Printexc.to_string e) pos
  done

let password_mutation () =
  let x, _x_pub = Password_protocol.client_gen ~rand_bytes:rand in
  let ids = [ rand Password_protocol.id_len; rand Password_protocol.id_len ] in
  let _r, req = Password_protocol.client_auth ~idx:0 ~x ~ids ~rand_bytes:rand in
  let bytes = Password_protocol.encode_auth_request req in
  let n = String.length bytes in
  for _ = 1 to 200 do
    let pos = Char.code (rand 3).[0] * 256 * 256 mod n in
    let b = Bytes.of_string bytes in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
    match Password_protocol.decode_auth_request (Bytes.to_string b) with
    | Some _ | None -> ()
    | exception e -> Alcotest.failf "decoder raised %s on byte %d" (Printexc.to_string e) pos
  done

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "wire-fuzz"
    [
      qsuite "primitives"
        [
          composite_roundtrip;
          truncation_rejected;
          inflated_length_rejected;
          trailing_rejected;
          structured_garbage_never_raises;
        ];
      ( "rejection",
        [
          Alcotest.test_case "absurd list lengths" `Quick absurd_list_rejected;
          Alcotest.test_case "wrong-size fixed codecs" `Quick wrong_size_fixed_codecs;
          Alcotest.test_case "fido2 mutation fuzz" `Quick fido2_mutation;
          Alcotest.test_case "password mutation fuzz" `Quick password_mutation;
          Alcotest.test_case "attestation mutation fuzz" `Quick attestation_mutation;
          Alcotest.test_case "audit response mutation fuzz" `Quick audit_response_mutation;
        ] );
      qsuite "decoder-totality" decoder_total_tests;
      qsuite "protocol-roundtrips"
        [
          totp_registration_roundtrip;
          totp_registration_wrong_size;
          halfmul_roundtrip;
          reveal_roundtrip;
          record_roundtrip;
          merkle_sth_roundtrip;
          merkle_proof_roundtrip;
          attestation_roundtrip;
          audit_response_roundtrip;
        ];
    ]
