(** Deterministic cooperative fibers on OCaml 5 effects.

    A single-domain scheduler: fibers are one-shot delimited
    continuations multiplexed over the simulated {!Larch_util.Clock}.
    Every scheduling decision — which ready fiber runs next, the wake
    order of timers whose deadlines tie — is drawn from a seeded
    HMAC-DRBG, so the complete interleaving is a pure function of the
    seed and two runs with the same seed are byte-for-byte identical,
    while different seeds explore genuinely different schedules
    (simulation testing for concurrency bugs).

    Time is virtual.  [sleep dt] parks the fiber on a timer; when no
    fiber is ready the scheduler jumps the shared clock to the earliest
    deadline.  While {!run} is active, {!Larch_util.Clock.advance}
    performed {e inside} a fiber is intercepted and becomes a sleep, so
    existing code that charges simulated wire or compute time suspends
    cooperatively without being rewritten.

    Fibers never run in parallel (one domain, no preemption): a critical
    section is atomic until the next suspension point ([yield], [sleep],
    [await], mailbox [recv], or a transport leg that advances the
    clock). *)

exception Cancelled
(** Raised inside a fiber killed by {!cancel} (and delivered to its
    awaiters). *)

exception Deadlock of string list
(** No fiber is ready, no timer is pending, yet the named fibers are
    still blocked — every parked fiber is discontinued with
    {!Cancelled} before this is raised. *)

type 'a promise
(** The eventual result of a spawned fiber. *)

val run : ?seed:string -> (unit -> 'a) -> 'a
(** [run ?seed main] runs [main] as the root fiber until it {e and}
    every fiber it spawned have finished; returns [main]'s value or
    re-raises its exception.  Must not be nested. *)

val spawn : ?name:string -> (unit -> 'a) -> 'a promise
(** Start a new fiber (runnable at the scheduler's next seeded pick).
    Only valid under {!run}. *)

val await : 'a promise -> 'a
(** Suspend until the fiber finishes; returns its value or re-raises
    its exception ({!Cancelled} if it was cancelled). *)

val poll : 'a promise -> ('a, exn) result option
(** Non-blocking: [Some] once the fiber finished. *)

val cancel : 'a promise -> unit
(** Kill the fiber: if unstarted it never runs; if parked it is woken
    to receive {!Cancelled} at its suspension point; if finished this
    is a no-op.  Idempotent. *)

val yield : unit -> unit
(** Offer the scheduler a suspension point (reschedules this fiber
    among the ready set). *)

val sleep : float -> unit
(** Park for [dt] seconds of simulated time ([dt <= 0] is a yield). *)

val sleep_until : float -> unit
(** Park until the simulated clock reaches the given absolute time. *)

val in_fiber : unit -> bool
(** True when called from inside a fiber under {!run}. *)

val self_name : unit -> string option
(** Name of the running fiber, if any. *)

val live_fibers : unit -> int
(** Fibers spawned but not yet finished (0 outside {!run}). *)

module Mailbox : sig
  (** Unbounded deterministic channels.  [send] never blocks; [recv]
      parks until a value arrives.  When several fibers block on the
      same mailbox the scheduler wakes them in seeded order and they
      re-race for the queue, so consumer choice is replayable. *)

  type 'a t

  val create : ?name:string -> unit -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a
  val try_recv : 'a t -> 'a option

  val recv_batch : 'a t -> 'a list
  (** Park until the mailbox is non-empty, then drain it: everything
      queued in the same simulated instant comes back as one batch (the
      log's admission loop uses this to batch-verify). *)

  val length : 'a t -> int
end
