(* Deterministic cooperative fibers on OCaml 5 effects.

   One domain, one effect.  A fiber that needs to wait performs
   [Suspend park]; the handler hands [park] a resume token wrapping the
   one-shot continuation and returns to the scheduler loop (a flat
   trampoline — the handler never re-enters the loop, so arbitrarily
   many context switches run in constant stack).  Whoever holds the
   token later (the run queue, a timer, a mailbox, a promise) wakes the
   fiber by pushing the token back on the ready set.

   Determinism: the next ready token is picked by a seeded HMAC-DRBG
   index, and timers that fire at the same instant are DRBG-shuffled
   before entering the ready set, so the full interleaving — and
   therefore every trace, transcript and digest produced under the
   scheduler — is a pure function of the seed. *)

module Clock = Larch_util.Clock
module Drbg = Larch_hash.Drbg

exception Cancelled
exception Deadlock of string list

type fiber = {
  id : int;
  name : string;
  mutable cancelled : bool;
  mutable finished : bool;
  mutable blocked_on : string; (* diagnostic, for Deadlock reports *)
  mutable parked : token option; (* the token waiting somewhere, if any *)
}

and token = {
  tok_fiber : fiber;
  tok_kind : kind;
  mutable consumed : bool; (* one-shot guard *)
}

and kind =
  | Start of (unit -> unit) * (exn -> unit)
      (* body, aborter (resolves the promise without running the body) *)
  | Resume of (unit, unit) Effect.Deep.continuation

type _ Effect.t += Suspend : (token -> unit) -> unit Effect.t

type sched = {
  drbg : Drbg.t;
  mutable ready : token list; (* unordered bag; picks are seeded *)
  mutable timers : (float * int * token) list; (* deadline, seq, sorted *)
  mutable timer_seq : int;
  mutable live : int;
  mutable fibers : fiber list; (* live fibers, for deadlock reports *)
  mutable next_id : int;
  mutable current : fiber option;
}

let state : sched option ref = ref None

let sched () =
  match !state with
  | Some s -> s
  | None -> invalid_arg "Runtime: not inside Runtime.run"

let in_fiber () = match !state with Some s -> s.current <> None | None -> false
let self_name () =
  match !state with
  | Some { current = Some f; _ } -> Some f.name
  | _ -> None
let live_fibers () = match !state with Some s -> s.live | None -> 0

(* -- seeded choices ------------------------------------------------------ *)

let drbg_int s n =
  if n <= 1 then 0
  else
    let b = Drbg.generate s.drbg 4 in
    let x =
      (Char.code b.[0] lsl 24)
      lor (Char.code b.[1] lsl 16)
      lor (Char.code b.[2] lsl 8)
      lor Char.code b.[3]
    in
    x land 0x3FFFFFFF mod n

let drbg_shuffle s arr =
  for i = Array.length arr - 1 downto 1 do
    let j = drbg_int s (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done

(* -- ready set / timers -------------------------------------------------- *)

let push_ready s tok = s.ready <- tok :: s.ready

let pick_ready s =
  let n = List.length s.ready in
  let i = drbg_int s n in
  let rec take k acc = function
    | [] -> assert false
    | t :: rest ->
        if k = i then (t, List.rev_append acc rest)
        else take (k + 1) (t :: acc) rest
  in
  let tok, rest = take 0 [] s.ready in
  s.ready <- rest;
  tok

let add_timer s deadline tok =
  let seq = s.timer_seq in
  s.timer_seq <- seq + 1;
  let entry = (deadline, seq, tok) in
  let rec ins = function
    | [] -> [ entry ]
    | ((d, q, _) as e) :: rest ->
        if deadline < d || (deadline = d && seq < q) then entry :: e :: rest
        else e :: ins rest
  in
  s.timers <- ins s.timers

(* Jump the clock to the earliest deadline and wake everything due at
   that instant.  Ties wake in seeded order (ISSUE 9 satellite: several
   fibers sleeping to the same tick must resolve deterministically). *)
let fire_timers s =
  match s.timers with
  | [] -> ()
  | (d0, _, _) :: _ ->
      if Clock.now () < d0 then Clock.set d0;
      let now = Clock.now () in
      let due, later =
        List.partition (fun (d, _, _) -> d <= now) s.timers
      in
      s.timers <- later;
      let due = Array.of_list (List.map (fun (_, _, t) -> t) due) in
      drbg_shuffle s due;
      Array.iter (fun t -> push_ready s t) due

(* -- suspension ---------------------------------------------------------- *)

let suspend ~why park =
  let s = sched () in
  (match s.current with
  | Some f ->
      f.blocked_on <- why;
      if f.cancelled then raise Cancelled
  | None -> invalid_arg "Runtime.suspend: not inside a fiber");
  Effect.perform (Suspend park)

let yield () =
  suspend ~why:"yield" (fun tok -> push_ready (sched ()) tok)

let sleep_until t =
  if t <= Clock.now () then yield ()
  else suspend ~why:"sleep" (fun tok -> add_timer (sched ()) t tok)

let sleep dt = if dt <= 0. then yield () else sleep_until (Clock.now () +. dt)

(* -- fiber execution ----------------------------------------------------- *)

let metrics_switches =
  lazy (Larch_obs.Metrics.(counter default) "runtime.switches")

let run_body (f : fiber) (body : unit -> unit) =
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e) (* bodies catch; a leak here is a bug *);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend park ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  let tok =
                    { tok_fiber = f; tok_kind = Resume k; consumed = false }
                  in
                  f.parked <- Some tok;
                  park tok)
          | _ -> None);
    }

let run_token s tok =
  if not tok.consumed then begin
    tok.consumed <- true;
    let f = tok.tok_fiber in
    f.parked <- None;
    f.blocked_on <- "running";
    s.current <- Some f;
    Larch_obs.Metrics.inc (Lazy.force metrics_switches);
    let go () =
      match tok.tok_kind with
      | Start (body, abort) ->
          if f.cancelled then abort Cancelled else run_body f body
      | Resume k ->
          if f.cancelled then Effect.Deep.discontinue k Cancelled
          else Effect.Deep.continue k ()
    in
    Fun.protect
      ~finally:(fun () -> s.current <- None)
      (fun () ->
        if Larch_obs.Runtime.tracing_enabled () then
          Larch_obs.Trace.with_tid (2000 + f.id) go
        else go ())
  end

(* -- promises ------------------------------------------------------------ *)

type 'a promise = {
  p_fiber : fiber;
  mutable result : ('a, exn) result option;
  mutable waiters : token list;
}

let poll p = p.result

let resolve s p r =
  match p.result with
  | Some _ -> () (* already settled (e.g. cancel raced completion) *)
  | None ->
      p.result <- Some r;
      p.p_fiber.finished <- true;
      s.live <- s.live - 1;
      s.fibers <- List.filter (fun f -> f != p.p_fiber) s.fibers;
      let ws = p.waiters in
      p.waiters <- [];
      List.iter (fun tok -> push_ready s tok) ws

let spawn ?name f =
  let s = sched () in
  let id = s.next_id in
  s.next_id <- id + 1;
  let name =
    match name with Some n -> n | None -> "fiber-" ^ string_of_int id
  in
  let fib =
    {
      id;
      name;
      cancelled = false;
      finished = false;
      blocked_on = "spawned";
      parked = None;
    }
  in
  let p = { p_fiber = fib; result = None; waiters = [] } in
  let body () =
    match f () with
    | v -> resolve s p (Ok v)
    | exception e -> resolve s p (Error e)
  in
  let abort e = resolve s p (Error e) in
  s.live <- s.live + 1;
  s.fibers <- fib :: s.fibers;
  push_ready s { tok_fiber = fib; tok_kind = Start (body, abort); consumed = false };
  p

let rec await p =
  match p.result with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None ->
      suspend ~why:("await " ^ p.p_fiber.name) (fun tok ->
          p.waiters <- tok :: p.waiters);
      await p

let cancel p =
  let fib = p.p_fiber in
  if not fib.finished && not fib.cancelled then begin
    fib.cancelled <- true;
    match (!state, fib.parked) with
    | Some s, Some tok when not tok.consumed ->
        (* Wake it now so the park spot (mailbox, promise, timer) cannot
           strand it; the resume will discontinue with Cancelled.  The
           stale reference left behind is ignored via [consumed]. *)
        fib.parked <- None;
        push_ready s tok
    | _ -> ()
  end

(* -- mailboxes ----------------------------------------------------------- *)

module Mailbox = struct
  type 'a t = { mb_name : string; q : 'a Queue.t; mutable mb_waiters : token list }

  let create ?(name = "mailbox") () =
    { mb_name = name; q = Queue.create (); mb_waiters = [] }

  let length t = Queue.length t.q

  let wake_all t =
    match !state with
    | None -> t.mb_waiters <- []
    | Some s ->
        let ws = t.mb_waiters in
        t.mb_waiters <- [];
        List.iter (fun tok -> push_ready s tok) ws

  let send t v =
    Queue.push v t.q;
    wake_all t

  let try_recv t = Queue.take_opt t.q

  (* Wake-all + re-check: every blocked consumer races for the queue in
     seeded ready order, so consumer choice is replayable. *)
  let rec recv t =
    match Queue.take_opt t.q with
    | Some v -> v
    | None ->
        suspend ~why:("recv " ^ t.mb_name) (fun tok ->
            t.mb_waiters <- tok :: t.mb_waiters);
        recv t

  let rec recv_batch t =
    if Queue.is_empty t.q then begin
      suspend ~why:("recv_batch " ^ t.mb_name) (fun tok ->
          t.mb_waiters <- tok :: t.mb_waiters);
      recv_batch t
    end
    else begin
      let acc = ref [] in
      Queue.iter (fun v -> acc := v :: !acc) t.q;
      Queue.clear t.q;
      List.rev !acc
    end
end

(* -- the scheduler loop -------------------------------------------------- *)

let rec loop s =
  if s.ready <> [] then begin
    run_token s (pick_ready s);
    loop s
  end
  else if s.timers <> [] then begin
    fire_timers s;
    loop s
  end
  else if s.live > 0 then begin
    (* Nothing ready, nothing sleeping, fibers still blocked: deadlock.
       Unwind every parked fiber (running its cleanup via Cancelled) so
       continuations are not dropped unfinalized, then report. *)
    let stuck =
      List.filter_map
        (fun f ->
          if f.finished then None
          else Some (f.name ^ " (" ^ f.blocked_on ^ ")"))
        s.fibers
    in
    List.iter
      (fun f ->
        f.cancelled <- true;
        match f.parked with
        | Some tok when not tok.consumed -> push_ready s tok
        | _ -> ())
      s.fibers;
    while s.ready <> [] do
      (try run_token s (pick_ready s) with _ -> ())
    done;
    raise (Deadlock (List.rev stuck))
  end

let run ?(seed = "larch.runtime") main =
  if !state <> None then invalid_arg "Runtime.run: nested run";
  let s =
    {
      drbg = Drbg.create ~entropy:("larch.runtime/" ^ seed);
      ready = [];
      timers = [];
      timer_seq = 0;
      live = 0;
      fibers = [];
      next_id = 0;
      current = None;
    }
  in
  state := Some s;
  (* In-fiber Clock.advance becomes a virtual-time sleep: concurrent
     fibers charging wire/compute time no longer shove the shared clock
     under each other — they wait their turn on the timer wheel. *)
  Clock.set_advance_hook
    (Some
       (fun dt ->
         if s.current = None then false
         else begin
           sleep dt;
           true
         end));
  Fun.protect
    ~finally:(fun () ->
      Clock.set_advance_hook None;
      state := None)
    (fun () ->
      let p = spawn ~name:"main" main in
      loop s;
      match p.result with
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> assert false)
