(* FIDO2 / U2F assertion formats (WebAuthn level 2, simplified to the parts
   an authenticator and relying party exchange).

   The relying party sends a random challenge; the authenticator signs a
   payload bound to the relying-party identity and the challenge.  Larch
   maps this onto its provable statement by defining the signed message as

     m  =  rp_id_hash (32B)  ‖  flags (1B)  ‖  counter (4B)  ‖  chal_digest (32B)

   and the in-circuit digest as dgst = SHA256(rp_id_hash ‖ chal') where
   chal' = SHA256(flags ‖ counter ‖ chal_digest ‖ context).  The relying
   party recomputes both, so no RP-side change is needed (Goal 4). *)

module Bytesx = Larch_util.Bytesx

let rp_id_hash (rp_name : string) : string = Larch_hash.Sha256.digest ("larch-rp:" ^ rp_name)

type assertion_request = { rp_name : string; challenge : string (* 32 bytes *) }

type assertion_payload = {
  rp_hash : string; (* 32B: identifies the relying party *)
  flags : int; (* user-presence etc. *)
  counter : int; (* signature counter *)
  challenge_digest : string; (* 32B *)
}

let flags_user_present = 0x01
let flags_user_verified = 0x04

let make_payload ~(rp_name : string) ~(challenge : string) ~(counter : int) : assertion_payload =
  {
    rp_hash = rp_id_hash rp_name;
    flags = flags_user_present lor flags_user_verified;
    counter;
    challenge_digest = Larch_hash.Sha256.digest challenge;
  }

(* The 32-byte "chal" fed to the larch FIDO2 statement circuit: everything
   except the relying-party identity, collapsed into one hash. *)
let statement_challenge (p : assertion_payload) : string =
  Larch_hash.Sha256.digest_list
    [ "larch-fido2-chal"; String.make 1 (Char.chr p.flags); Bytesx.be32 p.counter; p.challenge_digest ]

(* The digest that is ECDSA-signed: dgst = SHA256(rp_hash ‖ statement_challenge). *)
let signing_digest (p : assertion_payload) : string =
  Larch_hash.Sha256.digest (p.rp_hash ^ statement_challenge p)

type assertion = { payload : assertion_payload; signature : Larch_ec.Ecdsa.signature }

(* Relying-party verification: recompute the digest and check the ECDSA
   signature under the public key registered for this credential. *)
let verify ~(pk : Larch_ec.Point.t) ~(rp_name : string) ~(challenge : string) (a : assertion) :
    bool =
  let expected =
    {
      a.payload with
      rp_hash = rp_id_hash rp_name;
      challenge_digest = Larch_hash.Sha256.digest challenge;
    }
  in
  let ok =
    expected = a.payload
    && a.payload.flags land flags_user_present <> 0
    && Larch_ec.Ecdsa.verify_digest ~pk (signing_digest a.payload) a.signature
  in
  (* counter name carries the method only, never the rp_name (§2.3) *)
  let m = Larch_obs.Metrics.default in
  Larch_obs.Metrics.inc
    (Larch_obs.Metrics.counter m
       (if ok then "auth.fido2.verify_ok" else "auth.fido2.verify_fail"));
  ok
