(* Password handling at the relying party: PBKDF2-HMAC-SHA256 salted
   verifiers (RFC 2898).  Relying parties in the simulation store only the
   salted hash, so tests can check that larch-generated passwords actually
   authenticate and that a log-less client cannot reproduce them. *)

module Bytesx = Larch_util.Bytesx

let pbkdf2 ~(password : string) ~(salt : string) ~(iterations : int) ~(len : int) : string =
  if iterations < 1 then invalid_arg "Password.pbkdf2: iterations";
  let hlen = Larch_hash.Sha256.digest_size in
  let blocks = (len + hlen - 1) / hlen in
  let buf = Buffer.create (blocks * hlen) in
  for i = 1 to blocks do
    let u = ref (Larch_hash.Hmac.sha256 ~key:password (salt ^ Bytesx.be32 i)) in
    let acc = ref !u in
    for _ = 2 to iterations do
      u := Larch_hash.Hmac.sha256 ~key:password !u;
      acc := Bytesx.xor !acc !u
    done;
    Buffer.add_string buf !acc
  done;
  String.sub (Buffer.contents buf) 0 len

type verifier = { salt : string; hash : string; iterations : int }

(* The default iteration count is kept small because the simulation hashes
   many passwords in tests; a production RP would use a memory-hard KDF. *)
let default_iterations = 64

let create ?(iterations = default_iterations) ~(rand_bytes : int -> string) (password : string)
    : verifier =
  let salt = rand_bytes 16 in
  { salt; hash = pbkdf2 ~password ~salt ~iterations ~len:32; iterations }

let check (v : verifier) (password : string) : bool =
  let ok =
    Bytesx.ct_equal v.hash (pbkdf2 ~password ~salt:v.salt ~iterations:v.iterations ~len:32)
  in
  let m = Larch_obs.Metrics.default in
  Larch_obs.Metrics.inc
    (Larch_obs.Metrics.counter m
       (if ok then "auth.password.verify_ok" else "auth.password.verify_fail"));
  ok
