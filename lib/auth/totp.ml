(* HOTP (RFC 4226) and TOTP (RFC 6238).

   This is the algorithm the *relying party* runs to verify codes; the
   larch client computes the same code jointly with the log service via the
   garbled-circuit protocol (§4), whose output is the raw HMAC — truncation
   happens client-side in the clear, exactly as here. *)

type algo = Larch_hash.Hmac.algo = SHA256 | SHA1

let time_step = 30L (* seconds, RFC 6238 default *)
let digits = 6

let counter_of_time (t : float) : int64 = Int64.div (Int64.of_float t) time_step

let counter_bytes (c : int64) : string =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 c;
  Bytes.unsafe_to_string b

(* RFC 4226 §5.3 dynamic truncation of a full HMAC value. *)
let truncate (hmac : string) : int =
  let offset = Char.code hmac.[String.length hmac - 1] land 0xf in
  let p =
    ((Char.code hmac.[offset] land 0x7f) lsl 24)
    lor (Char.code hmac.[offset + 1] lsl 16)
    lor (Char.code hmac.[offset + 2] lsl 8)
    lor Char.code hmac.[offset + 3]
  in
  p mod 1_000_000

let hotp ?(algo = SHA1) ~(key : string) (counter : int64) : int =
  truncate (Larch_hash.Hmac.mac ~algo ~key (counter_bytes counter))

let totp ?(algo = SHA1) ~(key : string) ~(time : float) () : int = hotp ~algo ~key (counter_of_time time)

let code_to_string (c : int) : string = Printf.sprintf "%0*d" digits c

(* Relying-party verification with a +/- 1 step window (common practice). *)
let verify ?(algo = SHA1) ~(key : string) ~(time : float) (code : int) : bool =
  let c = counter_of_time time in
  let ok =
    List.exists
      (fun dc -> hotp ~algo ~key (Int64.add c dc) = code)
      [ 0L; -1L; 1L ]
  in
  let m = Larch_obs.Metrics.default in
  Larch_obs.Metrics.inc
    (Larch_obs.Metrics.counter m
       (if ok then "auth.totp.verify_ok" else "auth.totp.verify_fail"));
  ok
