(* Two-party garbled-circuit execution over metered channels.

   Drives one full Yao execution between a garbler (the larch client) and
   an evaluator (the log service), splitting traffic into the offline
   (input-independent: base OTs + garbled tables) and online (input-
   dependent: OT extension, input labels, output exchange) phases that
   Figure 3 (right) and Table 6 report separately.

   Both parties run in-process; every byte that would cross the network is
   pushed through the supplied channels so the meters are exact. *)

module Bytesx = Larch_util.Bytesx
module Circuit = Larch_circuit.Circuit
module Channel = Larch_net.Channel
module Trace = Larch_obs.Trace

type config = {
  circuit : Circuit.t;
  n_garbler_inputs : int; (* input wires [0, n) belong to the garbler *)
  n_evaluator_outputs : int; (* output wires [0, n) are revealed to the evaluator *)
}

type timings = {
  offline_seconds : float; (* base OTs + garbling: input-independent *)
  online_seconds : float; (* OT extension, labels, evaluation, outputs *)
  evaluator_seconds : float; (* the log's share of the CPU time *)
}

type outcome = {
  garbler_outputs : int array; (* bits of outputs [n_evaluator_outputs, ...) *)
  evaluator_outputs : int array; (* bits of outputs [0, n_evaluator_outputs) *)
  timings : timings;
}

exception Cheating of string

let run (cfg : config) ~(garbler_inputs : bool array) ~(evaluator_inputs : bool array)
    ~(rand_garbler : int -> string) ~(rand_evaluator : int -> string)
    ~(offline : Channel.t) ~(online : Channel.t) : outcome =
  let c = cfg.circuit in
  let n_g = cfg.n_garbler_inputs in
  let n_e = c.Circuit.n_inputs - n_g in
  if Array.length garbler_inputs <> n_g then invalid_arg "Yao.run: garbler input count";
  if Array.length evaluator_inputs <> n_e then invalid_arg "Yao.run: evaluator input count";
  let clock = Unix.gettimeofday in
  let eval_cpu = ref 0. in
  let timed_eval f =
    let t0 = clock () in
    let r = f () in
    eval_cpu := !eval_cpu +. (clock () -. t0);
    r
  in
  let t_start = clock () in
  (* --- offline phase --- *)
  let r_base, s_base, g =
    Trace.with_span "yao.offline" @@ fun () ->
    Trace.add_int "n_and" c.Circuit.n_and;
    (* base OTs for the extension (evaluator = extension receiver) *)
    let r_base, s_base, base_bytes =
      Ot_ext.run_base_ots ~rand_bytes_r:rand_evaluator ~rand_bytes_s:rand_garbler
    in
    eval_cpu := !eval_cpu +. ((clock () -. t_start) /. 2.);
    ignore (Channel.send offline Channel.Client_to_log (String.make (base_bytes / 2) '\000'));
    ignore (Channel.send offline Channel.Log_to_client (String.make (base_bytes - (base_bytes / 2)) '\000'));
    (* garble and ship the tables *)
    let g = Garble.garble c ~rand_bytes:rand_garbler in
    ignore (Channel.send offline Channel.Client_to_log (String.make (Garble.tables_bytes g) '\000'));
    (r_base, s_base, g)
  in
  let t_online = clock () in
  (* --- online phase --- *)
  Trace.with_span "yao.online" @@ fun () ->
  (* OT extension for the evaluator's input labels *)
  let choices = Array.map (fun b -> if b then 1 else 0) evaluator_inputs in
  let r_ext, u = timed_eval (fun () -> Ot_ext.receiver_extend r_base ~choices) in
  ignore (Channel.send online Channel.Log_to_client (String.make (Ot_ext.u_matrix_bytes u) '\000'));
  let s_ext = Ot_ext.sender_extend s_base ~u ~m:n_e in
  let label_pairs =
    Array.init n_e (fun i ->
        (Garble.active_input g (n_g + i) 0, Garble.active_input g (n_g + i) 1))
  in
  let cipher = Ot_ext.sender_encrypt s_ext ~pairs:label_pairs in
  ignore
    (Channel.send online Channel.Client_to_log
       (String.make (Array.fold_left (fun a (x, y) -> a + String.length x + String.length y) 0 cipher) '\000'));
  let evaluator_labels = timed_eval (fun () -> Ot_ext.receiver_recover r_ext ~choices ~cipher) in
  (* garbler's own active input labels *)
  let garbler_labels =
    Array.init n_g (fun i -> Garble.active_input g i (if garbler_inputs.(i) then 1 else 0))
  in
  ignore
    (Channel.send online Channel.Client_to_log (String.make (n_g * Garble.label_len) '\000'));
  (* evaluator walks the circuit *)
  let active_inputs = Array.append garbler_labels evaluator_labels in
  let active_out =
    timed_eval (fun () ->
        Garble.evaluate c ~tables:g.Garble.tables ~const_labels:g.Garble.const_labels
          ~active_inputs)
  in
  let n_out = Circuit.n_outputs c in
  let n_eo = cfg.n_evaluator_outputs in
  (* evaluator decodes its own outputs from the decode bits (shipped with
     the tables), and returns the garbler's output labels *)
  let decoded = Garble.decode_outputs g active_out in
  let evaluator_outputs = Array.sub decoded 0 n_eo in
  let returned = Array.sub active_out n_eo (n_out - n_eo) in
  ignore
    (Channel.send online Channel.Log_to_client
       (String.make ((n_out - n_eo) * Garble.label_len) '\000'));
  let garbler_outputs =
    Array.mapi
      (fun i l ->
        match Garble.garbler_decode g (n_eo + i) l with
        | Some v -> v
        | None -> raise (Cheating "invalid output label returned"))
      returned
  in
  let t_end = clock () in
  {
    garbler_outputs;
    evaluator_outputs;
    timings =
      {
        offline_seconds = t_online -. t_start;
        online_seconds = t_end -. t_online;
        evaluator_seconds = !eval_cpu;
      };
  }
