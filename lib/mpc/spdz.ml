(* Half-authenticated secure multiplication and MAC-checked opening
   (paper Appendix B.2, Figure 10, following SPDZ [26]).

   A value x is "authenticated" when the parties additionally hold additive
   shares of x̂ = α·x for a shared information-theoretic MAC key α.  The
   signing nonce r⁻¹ is authenticated; the secret-key share y is not —
   Appendix A shows ECDSA remains secure when the adversary can shift the
   unauthenticated input by an arbitrary additive "tweak", which is what
   makes this cheaper half-authenticated protocol sound for larch.

   The protocol is expressed as pure per-party steps exchanging explicit
   messages, so the driver in [Larch_core.Two_party_ecdsa] can run it over
   a metered channel and tests can inject malicious deviations. *)

module Scalar = Larch_ec.P256.Scalar

(* One party's share of an authenticated Beaver triple plus inputs, exactly
   the per-party input of Π_HalfMul (Figure 10). *)
type halfmul_input = {
  a : Scalar.t;
  b : Scalar.t;
  c : Scalar.t; (* beaver triple: a·b = c *)
  f : Scalar.t;
  g : Scalar.t;
  h : Scalar.t; (* authenticated triple: (f,g,h) = α·(a,b,c) *)
  x : Scalar.t;
  xhat : Scalar.t; (* authenticated input: x̂ = α·x *)
  y : Scalar.t; (* unauthenticated input *)
  alpha : Scalar.t; (* MAC key share *)
}

type halfmul_msg = { d : Scalar.t; e : Scalar.t }

type halfmul_output = {
  z : Scalar.t; (* share of x·y *)
  zhat : Scalar.t; (* share of α·x·y *)
  d_open : Scalar.t; (* opened intermediate d = x - a *)
  dhat : Scalar.t; (* share of α·d, checked at opening time *)
}

let halfmul_round1 (inp : halfmul_input) : halfmul_msg =
  { d = Scalar.sub inp.x inp.a; e = Scalar.sub inp.y inp.b }

(* [party] is this party's index (0 or 1); the public d·e term is added by
   party 0 only (for ẑ both parties weight it by their α share, which sums
   correctly). *)
let halfmul_finish ~(party : int) (inp : halfmul_input) ~(own : halfmul_msg)
    ~(other : halfmul_msg) : halfmul_output =
  let d = Scalar.add own.d other.d in
  let e = Scalar.add own.e other.e in
  let de = Scalar.mul d e in
  let z =
    let base = Scalar.add (Scalar.mul d inp.b) (Scalar.add (Scalar.mul e inp.a) inp.c) in
    if party = 0 then Scalar.add de base else base
  in
  let zhat =
    Scalar.add
      (Scalar.mul de inp.alpha)
      (Scalar.add (Scalar.mul d inp.g) (Scalar.add (Scalar.mul e inp.f) inp.h))
  in
  { z; zhat; d_open = d; dhat = Scalar.sub inp.xhat inp.f }

(* --- Π_Open: commit-then-reveal opening with MAC check (SPDZ "output").

   To open an authenticated value s = s₀+s₁ with tags ŝᵢ under MAC key
   shares αᵢ, and simultaneously check the already-public intermediate d:

   1. exchange value shares sᵢ  →  s
   2. each party computes σᵢ = ŝᵢ − αᵢ·s and τᵢ = d̂ᵢ − αᵢ·d and *commits*
      to (σᵢ, τᵢ)
   3. exchange openings; accept iff σ₀+σ₁ = 0 and τ₀+τ₁ = 0.

   The commitment round prevents the second mover from choosing its σ after
   seeing the first. *)

type open_input = {
  s : Scalar.t;
  shat : Scalar.t;
  d_pub : Scalar.t; (* publicly known d (both parties agree) *)
  dhat_share : Scalar.t;
  alpha_share : Scalar.t;
}

type open_commit = { commitment : string }

type open_reveal = { sigma : Scalar.t; tau : Scalar.t; nonce : string }

type open_state = { reveal : open_reveal; s_share : Scalar.t }

let open_round1 (inp : open_input) ~(s_total : Scalar.t) ~(rand_bytes : int -> string) :
    open_state * open_commit =
  let sigma = Scalar.sub inp.shat (Scalar.mul inp.alpha_share s_total) in
  let tau = Scalar.sub inp.dhat_share (Scalar.mul inp.alpha_share inp.d_pub) in
  let nonce = rand_bytes 16 in
  let commitment =
    Larch_hash.Sha256.digest_list
      [ "spdz-open"; Scalar.to_bytes_be sigma; Scalar.to_bytes_be tau; nonce ]
  in
  ({ reveal = { sigma; tau; nonce }; s_share = inp.s }, { commitment })

let open_check ~(own : open_state) ~(other_commit : open_commit) ~(other_reveal : open_reveal) :
    bool =
  let recomputed =
    Larch_hash.Sha256.digest_list
      [
        "spdz-open";
        Scalar.to_bytes_be other_reveal.sigma;
        Scalar.to_bytes_be other_reveal.tau;
        other_reveal.nonce;
      ]
  in
  Larch_util.Bytesx.ct_equal recomputed other_commit.commitment
  && Scalar.equal (Scalar.add own.reveal.sigma other_reveal.sigma) Scalar.zero
  && Scalar.equal (Scalar.add own.reveal.tau other_reveal.tau) Scalar.zero

(* --- authenticated Beaver triple + MAC-key generation (run by the trusted
   client at enrollment; see Two_party_ecdsa.presign) --- *)

type triple_pair = { share0 : halfmul_input; share1 : halfmul_input }

let make_halfmul_inputs ~(x : Scalar.t) ~(y0 : Scalar.t) ~(y1 : Scalar.t)
    ~(rand_bytes : int -> string) : triple_pair * Scalar.t =
  (* returns the two parties' inputs and the MAC key α (for tests) *)
  Larch_obs.Trace.with_span "spdz.triple_gen" @@ fun () ->
  let alpha = Scalar.random ~rand_bytes in
  let a = Scalar.random ~rand_bytes and b = Scalar.random ~rand_bytes in
  let c = Scalar.mul a b in
  let split v = Sharing.additive v ~rand_bytes in
  let a0, a1 = split a and b0, b1 = split b and c0, c1 = split c in
  let f0, f1 = split (Scalar.mul alpha a) in
  let g0, g1 = split (Scalar.mul alpha b) in
  let h0, h1 = split (Scalar.mul alpha c) in
  let x0, x1 = split x in
  let xh0, xh1 = split (Scalar.mul alpha x) in
  let al0, al1 = split alpha in
  ( {
      share0 =
        { a = a0; b = b0; c = c0; f = f0; g = g0; h = h0; x = x0; xhat = xh0; y = y0; alpha = al0 };
      share1 =
        { a = a1; b = b1; c = c1; f = f1; g = g1; h = h1; x = x1; xhat = xh1; y = y1; alpha = al1 };
    },
    alpha )
