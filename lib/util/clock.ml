(* Simulated wall clock.

   Log records carry timestamps and TOTP codes depend on the current time.
   Tests and examples need deterministic time, so the whole system reads time
   through this module: by default it tracks the real clock, but it can be
   frozen and advanced manually. *)

type mode = Real | Fixed of float

let state = ref Real

let now () : float =
  match !state with Real -> Unix.gettimeofday () | Fixed t -> t

let set (t : float) = state := Fixed t

(* A cooperative runtime (Larch_runtime) installs a hook so that code
   advancing the clock from inside a fiber suspends for the interval
   instead of bumping the global time under every other fiber's feet.
   The hook returns [true] when it handled the advance. *)
let advance_hook : (float -> bool) option ref = ref None
let set_advance_hook h = advance_hook := h

let advance (dt : float) =
  let handled = match !advance_hook with Some h -> h dt | None -> false in
  if not handled then
    match !state with
    | Fixed t -> state := Fixed (t +. dt)
    | Real -> state := Fixed (Unix.gettimeofday () +. dt)

let use_real_time () = state := Real
