(** Simulated wall clock.  Records carry timestamps and TOTP depends on
    time, so the whole system reads time here: real by default, freezable
    and advanceable for deterministic tests and examples. *)

type mode = Real | Fixed of float

val now : unit -> float
val set : float -> unit
val advance : float -> unit
val use_real_time : unit -> unit

val set_advance_hook : (float -> bool) option -> unit
(** Intercept {!advance}.  A cooperative runtime installs a hook that
    turns in-fiber clock advances into virtual-time sleeps; the hook
    returns [true] when it consumed the advance (the clock is then left
    for the scheduler to move).  [None] restores direct advancing. *)
