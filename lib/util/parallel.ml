(* Domain-based fork/join parallelism.

   The larch client parallelises ZKBoo proving across repetition batches
   (Figure 3, left: latency vs. client cores).  [map ~domains f xs] evaluates
   [f] on each element of [xs] using at most [domains] concurrent domains.
   [domains = 1] runs sequentially in the calling domain, which keeps
   single-core measurements free of domain overhead.

   Observability: each worker runs under a "parallel.worker" span adopted
   into the caller's current span (so spans opened inside [f] nest
   correctly across domains), and per-domain busy time aggregates into
   [Larch_obs.Metrics.default] — the histogram "parallel.worker_busy_ms"
   and the gauge "parallel.utilization".  Busy time is the sum of the
   actual task spans (time inside [f]), not worker lifetime, and the
   utilization divisor is the *requested* domain budget × wall — so a
   section whose tail chunk occupies one worker while the rest sit idle
   reads as the fraction of the budget it really used, instead of the
   former over-report that divided by however many workers happened to be
   clamped on and billed their span bookkeeping as busy.  All of it
   compiles to a single atomic load when tracing is disabled. *)

module Obs = Larch_obs

let available_cores () = Domain.recommended_domain_count ()

let map ~(domains : int) (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  if domains <= 1 || n <= 1 then Array.map f xs
  else begin
    let budget = domains in
    let workers = min domains n in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let traced = Obs.Runtime.tracing_enabled () in
    let parent = if traced then Obs.Trace.current () else None in
    let busy_ns = Array.make workers 0L in
    let body w =
      let rec loop count =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          if traced then begin
            let t0 = Obs.Trace.now_ns () in
            results.(i) <- Some (f xs.(i));
            busy_ns.(w) <- Int64.add busy_ns.(w) (Int64.sub (Obs.Trace.now_ns ()) t0)
          end
          else results.(i) <- Some (f xs.(i));
          loop (count + 1)
        end
        else count
      in
      loop 0
    in
    let worker w () =
      if not traced then ignore (body w)
      else
        (* lane 1000+w: a stable trace row per worker slot — domain ids are
           recycled across parallel sections and would interleave rows *)
        Obs.Trace.with_tid (1000 + w) (fun () ->
            Obs.Trace.with_parent parent (fun () ->
                Obs.Trace.with_span "parallel.worker" (fun () ->
                    Obs.Trace.add_int "worker" w;
                    let tasks = body w in
                    Obs.Trace.add_int "tasks" tasks)))
    in
    let t_start = if traced then Obs.Trace.now_ns () else 0L in
    let spawned = Array.init (workers - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    worker 0 ();
    Array.iter Domain.join spawned;
    if traced then begin
      let m = Obs.Metrics.default in
      let wall = Int64.to_float (Int64.sub (Obs.Trace.now_ns ()) t_start) in
      let busy = ref 0. in
      Array.iter
        (fun b ->
          busy := !busy +. Int64.to_float b;
          Obs.Metrics.observe (Obs.Metrics.histogram m "parallel.worker_busy_ms")
            (Int64.to_float b /. 1e6))
        busy_ns;
      if wall > 0. then
        Obs.Metrics.set_gauge
          (Obs.Metrics.gauge m "parallel.utilization")
          (!busy /. (wall *. float_of_int budget))
    end;
    Array.map
      (function Some r -> r | None -> failwith "Parallel.map: missing result")
      results
  end
