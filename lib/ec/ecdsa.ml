(* ECDSA over P-256 with RFC 6979 deterministic nonces.

   This is the relying party's verification algorithm for FIDO2 and the
   reference implementation against which the two-party signing protocol of
   [Larch_core.Two_party_ecdsa] is tested: signatures produced jointly by the
   client and log must verify here under the aggregated public key. *)

open Larch_bignum
module Scalar = P256.Scalar

type signature = { r : Scalar.t; s : Scalar.t }

let hash_to_scalar (msg : string) : Scalar.t =
  Scalar.of_nat (Nat.of_bytes_be (Larch_hash.Sha256.digest msg))

(* RFC 6979 §3.2: deterministic k from the key and message digest. *)
let deterministic_nonce ~(sk : Scalar.t) ~(digest : string) : Scalar.t =
  let x_octets = Scalar.to_bytes_be sk in
  let h_octets = Scalar.to_bytes_be (Scalar.of_nat (Nat.of_bytes_be digest)) in
  let drbg = Larch_hash.Drbg.create ~entropy:(x_octets ^ h_octets) in
  let rec draw () =
    let t = Larch_hash.Drbg.generate drbg 32 in
    let k = Nat.of_bytes_be t in
    if Nat.is_zero k || Nat.compare k P256.n >= 0 then draw () else k
  in
  draw ()

let keygen ~(rand_bytes : int -> string) : Scalar.t * Point.t =
  Point.random ~rand_bytes

let sign_digest ?nonce ?(even_r = false) ~(sk : Scalar.t) (digest : string) : signature =
  let e = Scalar.of_nat (Nat.of_bytes_be digest) in
  let rec go nonce =
    let k = match nonce with Some k -> k | None -> deterministic_nonce ~sk ~digest in
    let r_point = Point.mul_base k in
    let r = Point.x_scalar r_point in
    if Nat.is_zero r then go None
    else begin
      let s = Scalar.mul (Scalar.inv k) (Scalar.add e (Scalar.mul r sk)) in
      if Nat.is_zero s then go None
      else if even_r then begin
        (* Pick the malleability twin whose nonce point has even y:
           (r, -s) verifies against -R, so flipping s when y(R) is odd
           pins the verifier-recoverable R to the even-y candidate.
           Batch verification relies on this normalization to undo
           ECDSA's x-only compression without a parity search. *)
        match Point.to_affine r_point with
        | Some (_, y) when Nat.test_bit y 0 -> { r; s = Scalar.sub Scalar.zero s }
        | _ -> { r; s }
      end
      else { r; s }
    end
  in
  go nonce

(* Sign a raw message (it is hashed with SHA-256 internally). *)
let sign ?nonce ?even_r ~(sk : Scalar.t) (msg : string) : signature =
  sign_digest ?nonce ?even_r ~sk (Larch_hash.Sha256.digest msg)

let verify_digest ~(pk : Point.t) (digest : string) (sg : signature) : bool =
  (not (Nat.is_zero sg.r))
  && (not (Nat.is_zero sg.s))
  && Nat.compare sg.r P256.n < 0
  && Nat.compare sg.s P256.n < 0
  && Point.is_on_curve pk
  && (not (Point.is_infinity pk))
  &&
  let e = Scalar.of_nat (Nat.of_bytes_be digest) in
  let sinv = Scalar.inv sg.s in
  let u1 = Scalar.mul e sinv and u2 = Scalar.mul sg.r sinv in
  (* Strauss–Shamir joint ladder: u1·G + u2·pk on one doubling chain. *)
  let rp = Point.mul_add u1 u2 pk in
  (not (Point.is_infinity rp)) && Scalar.equal (Point.x_scalar rp) sg.r

let verify ~(pk : Point.t) (msg : string) (sg : signature) : bool =
  verify_digest ~pk (Larch_hash.Sha256.digest msg) sg

(* --- batch verification ------------------------------------------------ *)

(* Only r = x(R) mod n crosses the wire, so the nonce point must be
   recovered before signatures can share one multi-exponentiation.  We
   take the even-y candidate (signers opt into [~even_r] normalization);
   x = r + n is possible in principle but only for x(R) < p - n
   (≈ 2⁻¹²⁸ of points), and such signatures just take the fallback. *)
let recover_even_r (sg : signature) : Point.t option =
  if Nat.is_zero sg.r then None
  else Point.decode_compressed ("\x02" ^ Scalar.to_bytes_be sg.r)

let structurally_sound ~pk (sg : signature) =
  (not (Nat.is_zero sg.r))
  && (not (Nat.is_zero sg.s))
  && Nat.compare sg.r P256.n < 0
  && Nat.compare sg.s P256.n < 0
  && Point.is_on_curve pk
  && not (Point.is_infinity pk)

(* One random-weight combination over the whole batch:
     Σᵢ aᵢ·u1ᵢ · G  +  Σᵢ (aᵢ·u2ᵢ) · pkᵢ  −  Σᵢ aᵢ · Rᵢ  =  O.
   Weights come from a DRBG keyed on the batch contents (Fiat–Shamir
   style), so a signer cannot craft cancelling invalid signatures.  On
   any failure — or any structurally odd item — we re-check signatures
   individually: batching never changes the accept set. *)
let verify_digest_batch (items : (Point.t * string * signature) list) : bool array =
  let items = Array.of_list items in
  let n = Array.length items in
  let results = Array.make n false in
  let fallback () =
    Array.iteri
      (fun i (pk, digest, sg) -> results.(i) <- verify_digest ~pk digest sg)
      items;
    results
  in
  if n <= 1 then fallback ()
  else begin
    let recovered =
      Array.map
        (fun (pk, _, sg) ->
          if structurally_sound ~pk sg then recover_even_r sg else None)
        items
    in
    if Array.exists (fun r -> r = None) recovered then fallback ()
    else begin
      let transcript = Buffer.create (n * 128) in
      Buffer.add_string transcript "ecdsa-batch-v1";
      Array.iter
        (fun (pk, digest, sg) ->
          Buffer.add_string transcript (Point.encode pk);
          Buffer.add_string transcript digest;
          Buffer.add_string transcript (Scalar.to_bytes_be sg.r);
          Buffer.add_string transcript (Scalar.to_bytes_be sg.s))
        items;
      let drbg =
        Larch_hash.Drbg.create
          ~entropy:(Larch_hash.Sha256.digest (Buffer.contents transcript))
      in
      let weight () =
        let rec draw () =
          let w = Scalar.of_nat (Nat.of_bytes_be (Larch_hash.Drbg.generate drbg 16)) in
          if Nat.is_zero w then draw () else w
        in
        draw ()
      in
      let g_coeff = ref Scalar.zero in
      let terms = ref [] in
      Array.iteri
        (fun i (pk, digest, sg) ->
          let r_pt = match recovered.(i) with Some p -> p | None -> assert false in
          let e = Scalar.of_nat (Nat.of_bytes_be digest) in
          let sinv = Scalar.inv sg.s in
          let u1 = Scalar.mul e sinv and u2 = Scalar.mul sg.r sinv in
          let a = weight () in
          g_coeff := Scalar.add !g_coeff (Scalar.mul a u1);
          terms := (Scalar.mul a u2, pk) :: (Scalar.sub Scalar.zero a, r_pt) :: !terms)
        items;
      let combined =
        Point.multi_mul (Array.of_list ((!g_coeff, Point.g) :: !terms))
      in
      if Point.is_infinity combined then begin
        Array.fill results 0 n true;
        results
      end
      else fallback ()
    end
  end

let verify_batch items =
  verify_digest_batch
    (List.map (fun (pk, msg, sg) -> (pk, Larch_hash.Sha256.digest msg, sg)) items)

let encode (sg : signature) : string = Scalar.to_bytes_be sg.r ^ Scalar.to_bytes_be sg.s

let decode (s : string) : signature option =
  if String.length s <> 64 then None
  else
    Some
      {
        r = Scalar.of_nat (Nat.of_bytes_be (String.sub s 0 32));
        s = Scalar.of_nat (Nat.of_bytes_be (String.sub s 32 32));
      }
