(* ECDSA over P-256 with RFC 6979 deterministic nonces.

   This is the relying party's verification algorithm for FIDO2 and the
   reference implementation against which the two-party signing protocol of
   [Larch_core.Two_party_ecdsa] is tested: signatures produced jointly by the
   client and log must verify here under the aggregated public key. *)

open Larch_bignum
module Scalar = P256.Scalar

type signature = { r : Scalar.t; s : Scalar.t }

let hash_to_scalar (msg : string) : Scalar.t =
  Scalar.of_nat (Nat.of_bytes_be (Larch_hash.Sha256.digest msg))

(* RFC 6979 §3.2: deterministic k from the key and message digest. *)
let deterministic_nonce ~(sk : Scalar.t) ~(digest : string) : Scalar.t =
  let x_octets = Scalar.to_bytes_be sk in
  let h_octets = Scalar.to_bytes_be (Scalar.of_nat (Nat.of_bytes_be digest)) in
  let drbg = Larch_hash.Drbg.create ~entropy:(x_octets ^ h_octets) in
  let rec draw () =
    let t = Larch_hash.Drbg.generate drbg 32 in
    let k = Nat.of_bytes_be t in
    if Nat.is_zero k || Nat.compare k P256.n >= 0 then draw () else k
  in
  draw ()

let keygen ~(rand_bytes : int -> string) : Scalar.t * Point.t =
  Point.random ~rand_bytes

let sign_digest ?nonce ~(sk : Scalar.t) (digest : string) : signature =
  let e = Scalar.of_nat (Nat.of_bytes_be digest) in
  let rec go nonce =
    let k = match nonce with Some k -> k | None -> deterministic_nonce ~sk ~digest in
    let r_point = Point.mul_base k in
    let r = Point.x_scalar r_point in
    if Nat.is_zero r then go None
    else begin
      let s = Scalar.mul (Scalar.inv k) (Scalar.add e (Scalar.mul r sk)) in
      if Nat.is_zero s then go None else { r; s }
    end
  in
  go nonce

(* Sign a raw message (it is hashed with SHA-256 internally). *)
let sign ?nonce ~(sk : Scalar.t) (msg : string) : signature =
  sign_digest ?nonce ~sk (Larch_hash.Sha256.digest msg)

let verify_digest ~(pk : Point.t) (digest : string) (sg : signature) : bool =
  (not (Nat.is_zero sg.r))
  && (not (Nat.is_zero sg.s))
  && Nat.compare sg.r P256.n < 0
  && Nat.compare sg.s P256.n < 0
  && Point.is_on_curve pk
  && (not (Point.is_infinity pk))
  &&
  let e = Scalar.of_nat (Nat.of_bytes_be digest) in
  let sinv = Scalar.inv sg.s in
  let u1 = Scalar.mul e sinv and u2 = Scalar.mul sg.r sinv in
  (* Strauss–Shamir joint ladder: u1·G + u2·pk on one doubling chain. *)
  let rp = Point.mul_add u1 u2 pk in
  (not (Point.is_infinity rp)) && Scalar.equal (Point.x_scalar rp) sg.r

let verify ~(pk : Point.t) (msg : string) (sg : signature) : bool =
  verify_digest ~pk (Larch_hash.Sha256.digest msg) sg

let encode (sg : signature) : string = Scalar.to_bytes_be sg.r ^ Scalar.to_bytes_be sg.s

let decode (s : string) : signature option =
  if String.length s <> 64 then None
  else
    Some
      {
        r = Scalar.of_nat (Nat.of_bytes_be (String.sub s 0 32));
        s = Scalar.of_nat (Nat.of_bytes_be (String.sub s 32 32));
      }
