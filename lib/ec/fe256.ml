(* Specialized arithmetic for the P-256 base field Z_p,
   p = 2^256 - 2^224 + 2^192 + 2^96 - 1.

   The generic [Modarith] backend pays for its generality on every
   operation: variable-length [Nat.t] heap arrays, several intermediate
   allocations per multiplication, and Barrett reduction shaped like
   generic division.  NIST chose p as a Solinas prime precisely so that
   reduction is a handful of shifted additions; this module exploits that.

   Representation: a field element is a flat [int array] of exactly
   [nlimbs] = 10 limbs in base 2^26, little-endian — the same limb base and
   order as [Nat.t], just fixed-length and unnormalized.  Every kernel
   output is canonical (each limb < 2^26, value < p), so converting to and
   from [Nat.t] is a length check plus at most one 10-int copy.

   Kernels are in-place ([mul_into], [sqr_into], …): the destination is a
   caller-owned limb array and the only heap traffic in steady state is the
   caller's scratch, so scalar-multiplication loops run allocation-free.
   Multiplication computes a 20-limb column product, repacks it into
   sixteen 32-bit words, folds them with the NIST/Solinas term sums
   (s1 + 2s2 + 2s3 + s4 + s5 - s6 - s7 - s8 - s9, offset by +4p to stay
   non-negative), folds the ≥2^256 overflow twice via
   2^256 ≡ 2^224 - 2^192 - 2^96 + 1, and finishes with one conditional
   subtraction of p.  Everything stays inside OCaml's 63-bit native ints.

   The scalar field Z_n keeps the generic Barrett backend ([P256.Scalar]),
   which doubles as the differential-testing oracle for this module (see
   test/test_fe256.ml). *)

open Larch_bignum

let nlimbs = 10
let wide_limbs = 20
let base_bits = Nat.base_bits
let mask = (1 lsl base_bits) - 1
let m32 = 0xFFFFFFFF

let p_nat = Nat.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"

let pad (a : Nat.t) : int array =
  let r = Array.make nlimbs 0 in
  Array.blit a 0 r 0 (Array.length a);
  r

let p_limbs = pad p_nat

(* 4p as nine 32-bit words (little-endian); added into the Solinas term sum
   so the pre-fold value is non-negative, which keeps the overflow folds to
   exactly two rounds. *)
let four_p_words =
  let fp = Nat.mul p_nat (Nat.of_int 4) in
  let b = Nat.to_bytes_be ~len:36 fp in
  Array.init 9 (fun j ->
      let o = 36 - (4 * j) - 4 in
      (Char.code b.[o] lsl 24)
      lor (Char.code b.[o + 1] lsl 16)
      lor (Char.code b.[o + 2] lsl 8)
      lor Char.code b.[o + 3])

let is_zero (a : int array) : bool =
  let rec go i = i >= nlimbs || (Array.unsafe_get a i = 0 && go (i + 1)) in
  go 0

let copy_into (dst : int array) (src : int array) = Array.blit src 0 dst 0 nlimbs
let set_zero (a : int array) = Array.fill a 0 nlimbs 0

let equal_limbs (a : int array) (b : int array) : bool =
  let rec go i = i >= nlimbs || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
  go 0

let geq_p (a : int array) : bool =
  let rec go i =
    if i < 0 then true
    else if a.(i) > p_limbs.(i) then true
    else if a.(i) < p_limbs.(i) then false
    else go (i - 1)
  in
  go (nlimbs - 1)

let sub_p_in_place (a : int array) =
  let borrow = ref 0 in
  for i = 0 to nlimbs - 1 do
    let t = a.(i) - p_limbs.(i) - !borrow in
    if t < 0 then begin
      a.(i) <- t + (1 lsl base_bits);
      borrow := 1
    end
    else begin
      a.(i) <- t;
      borrow := 0
    end
  done

let cond_sub_p (a : int array) = if geq_p a then sub_p_in_place a

(* r <- a + b mod p.  r may alias a or b. *)
let add_into (r : int array) (a : int array) (b : int array) =
  let carry = ref 0 in
  for i = 0 to nlimbs - 1 do
    let t = Array.unsafe_get a i + Array.unsafe_get b i + !carry in
    Array.unsafe_set r i (t land mask);
    carry := t lsr base_bits
  done;
  (* a + b < 2p < 2^257 fits the 10 limbs, so the final carry is 0 *)
  cond_sub_p r

(* r <- a - b mod p.  r may alias a or b. *)
let sub_into (r : int array) (a : int array) (b : int array) =
  let borrow = ref 0 in
  for i = 0 to nlimbs - 1 do
    let t = Array.unsafe_get a i - Array.unsafe_get b i - !borrow in
    if t < 0 then begin
      Array.unsafe_set r i (t + (1 lsl base_bits));
      borrow := 1
    end
    else begin
      Array.unsafe_set r i t;
      borrow := 0
    end
  done;
  if !borrow = 1 then begin
    (* a < b: the limbwise result is a - b + 2^260; adding p produces a
       final carry that cancels the borrow, leaving a - b + p in [1, p). *)
    let carry = ref 0 in
    for i = 0 to nlimbs - 1 do
      let t = Array.unsafe_get r i + p_limbs.(i) + !carry in
      Array.unsafe_set r i (t land mask);
      carry := t lsr base_bits
    done
  end

(* r <- -a mod p.  r may alias a. *)
let neg_into (r : int array) (a : int array) =
  if is_zero a then set_zero r
  else begin
    let borrow = ref 0 in
    for i = 0 to nlimbs - 1 do
      let t = p_limbs.(i) - a.(i) - !borrow in
      if t < 0 then begin
        r.(i) <- t + (1 lsl base_bits);
        borrow := 1
      end
      else begin
        r.(i) <- t;
        borrow := 0
      end
    done
  end

(* Schoolbook product, fully unrolled (product scanning by columns with
   on-the-fly carry normalization).  Column sums stay below
   10*(2^26-1)^2 + 2^30 < 2^56, inside the native int.  The product of two
   canonical elements is < p^2 < 2^512, so the carry out of column 18 fits
   limb 19 (bits 494..512 < 2^18). *)
let mul_wide (wide : int array) (a : int array) (b : int array) =
  let a0 = Array.unsafe_get a 0 in
  let a1 = Array.unsafe_get a 1 in
  let a2 = Array.unsafe_get a 2 in
  let a3 = Array.unsafe_get a 3 in
  let a4 = Array.unsafe_get a 4 in
  let a5 = Array.unsafe_get a 5 in
  let a6 = Array.unsafe_get a 6 in
  let a7 = Array.unsafe_get a 7 in
  let a8 = Array.unsafe_get a 8 in
  let a9 = Array.unsafe_get a 9 in
  let b0 = Array.unsafe_get b 0 in
  let b1 = Array.unsafe_get b 1 in
  let b2 = Array.unsafe_get b 2 in
  let b3 = Array.unsafe_get b 3 in
  let b4 = Array.unsafe_get b 4 in
  let b5 = Array.unsafe_get b 5 in
  let b6 = Array.unsafe_get b 6 in
  let b7 = Array.unsafe_get b 7 in
  let b8 = Array.unsafe_get b 8 in
  let b9 = Array.unsafe_get b 9 in
  let t = (a0 * b0) in
  Array.unsafe_set wide 0 (t land mask);
  let t = (t lsr base_bits) + (a0 * b1) + (a1 * b0) in
  Array.unsafe_set wide 1 (t land mask);
  let t = (t lsr base_bits) + (a0 * b2) + (a1 * b1) + (a2 * b0) in
  Array.unsafe_set wide 2 (t land mask);
  let t = (t lsr base_bits) + (a0 * b3) + (a1 * b2) + (a2 * b1) + (a3 * b0) in
  Array.unsafe_set wide 3 (t land mask);
  let t = (t lsr base_bits) + (a0 * b4) + (a1 * b3) + (a2 * b2) + (a3 * b1) + (a4 * b0) in
  Array.unsafe_set wide 4 (t land mask);
  let t = (t lsr base_bits) + (a0 * b5) + (a1 * b4) + (a2 * b3) + (a3 * b2) + (a4 * b1) + (a5 * b0) in
  Array.unsafe_set wide 5 (t land mask);
  let t = (t lsr base_bits) + (a0 * b6) + (a1 * b5) + (a2 * b4) + (a3 * b3) + (a4 * b2) + (a5 * b1) + (a6 * b0) in
  Array.unsafe_set wide 6 (t land mask);
  let t = (t lsr base_bits) + (a0 * b7) + (a1 * b6) + (a2 * b5) + (a3 * b4) + (a4 * b3) + (a5 * b2) + (a6 * b1) + (a7 * b0) in
  Array.unsafe_set wide 7 (t land mask);
  let t = (t lsr base_bits) + (a0 * b8) + (a1 * b7) + (a2 * b6) + (a3 * b5) + (a4 * b4) + (a5 * b3) + (a6 * b2) + (a7 * b1) + (a8 * b0) in
  Array.unsafe_set wide 8 (t land mask);
  let t = (t lsr base_bits) + (a0 * b9) + (a1 * b8) + (a2 * b7) + (a3 * b6) + (a4 * b5) + (a5 * b4) + (a6 * b3) + (a7 * b2) + (a8 * b1) + (a9 * b0) in
  Array.unsafe_set wide 9 (t land mask);
  let t = (t lsr base_bits) + (a1 * b9) + (a2 * b8) + (a3 * b7) + (a4 * b6) + (a5 * b5) + (a6 * b4) + (a7 * b3) + (a8 * b2) + (a9 * b1) in
  Array.unsafe_set wide 10 (t land mask);
  let t = (t lsr base_bits) + (a2 * b9) + (a3 * b8) + (a4 * b7) + (a5 * b6) + (a6 * b5) + (a7 * b4) + (a8 * b3) + (a9 * b2) in
  Array.unsafe_set wide 11 (t land mask);
  let t = (t lsr base_bits) + (a3 * b9) + (a4 * b8) + (a5 * b7) + (a6 * b6) + (a7 * b5) + (a8 * b4) + (a9 * b3) in
  Array.unsafe_set wide 12 (t land mask);
  let t = (t lsr base_bits) + (a4 * b9) + (a5 * b8) + (a6 * b7) + (a7 * b6) + (a8 * b5) + (a9 * b4) in
  Array.unsafe_set wide 13 (t land mask);
  let t = (t lsr base_bits) + (a5 * b9) + (a6 * b8) + (a7 * b7) + (a8 * b6) + (a9 * b5) in
  Array.unsafe_set wide 14 (t land mask);
  let t = (t lsr base_bits) + (a6 * b9) + (a7 * b8) + (a8 * b7) + (a9 * b6) in
  Array.unsafe_set wide 15 (t land mask);
  let t = (t lsr base_bits) + (a7 * b9) + (a8 * b8) + (a9 * b7) in
  Array.unsafe_set wide 16 (t land mask);
  let t = (t lsr base_bits) + (a8 * b9) + (a9 * b8) in
  Array.unsafe_set wide 17 (t land mask);
  let t = (t lsr base_bits) + (a9 * b9) in
  Array.unsafe_set wide 18 (t land mask);
  let t = t lsr base_bits in
  Array.unsafe_set wide 19 t

(* Squaring, same shape: off-diagonal products counted once and doubled. *)
let sqr_wide (wide : int array) (a : int array) =
  let a0 = Array.unsafe_get a 0 in
  let a1 = Array.unsafe_get a 1 in
  let a2 = Array.unsafe_get a 2 in
  let a3 = Array.unsafe_get a 3 in
  let a4 = Array.unsafe_get a 4 in
  let a5 = Array.unsafe_get a 5 in
  let a6 = Array.unsafe_get a 6 in
  let a7 = Array.unsafe_get a 7 in
  let a8 = Array.unsafe_get a 8 in
  let a9 = Array.unsafe_get a 9 in
  let t = (a0 * a0) in
  Array.unsafe_set wide 0 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a0 * a1))) in
  Array.unsafe_set wide 1 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a0 * a2))) + (a1 * a1) in
  Array.unsafe_set wide 2 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a0 * a3) + (a1 * a2))) in
  Array.unsafe_set wide 3 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a0 * a4) + (a1 * a3))) + (a2 * a2) in
  Array.unsafe_set wide 4 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a0 * a5) + (a1 * a4) + (a2 * a3))) in
  Array.unsafe_set wide 5 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a0 * a6) + (a1 * a5) + (a2 * a4))) + (a3 * a3) in
  Array.unsafe_set wide 6 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a0 * a7) + (a1 * a6) + (a2 * a5) + (a3 * a4))) in
  Array.unsafe_set wide 7 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a0 * a8) + (a1 * a7) + (a2 * a6) + (a3 * a5))) + (a4 * a4) in
  Array.unsafe_set wide 8 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a0 * a9) + (a1 * a8) + (a2 * a7) + (a3 * a6) + (a4 * a5))) in
  Array.unsafe_set wide 9 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a1 * a9) + (a2 * a8) + (a3 * a7) + (a4 * a6))) + (a5 * a5) in
  Array.unsafe_set wide 10 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a2 * a9) + (a3 * a8) + (a4 * a7) + (a5 * a6))) in
  Array.unsafe_set wide 11 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a3 * a9) + (a4 * a8) + (a5 * a7))) + (a6 * a6) in
  Array.unsafe_set wide 12 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a4 * a9) + (a5 * a8) + (a6 * a7))) in
  Array.unsafe_set wide 13 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a5 * a9) + (a6 * a8))) + (a7 * a7) in
  Array.unsafe_set wide 14 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a6 * a9) + (a7 * a8))) in
  Array.unsafe_set wide 15 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a7 * a9))) + (a8 * a8) in
  Array.unsafe_set wide 16 (t land mask);
  let t = (t lsr base_bits) + (2 * ((a8 * a9))) in
  Array.unsafe_set wide 17 (t land mask);
  let t = (t lsr base_bits) + (a9 * a9) in
  Array.unsafe_set wide 18 (t land mask);
  let t = t lsr base_bits in
  Array.unsafe_set wide 19 t

(* NIST fast reduction of a value < 2^512 held in [wide], written
   canonically into [r].  [r] must not alias [wide]; it may alias the
   original multiplicands since they were fully consumed by mul_wide.
   The 32-bit words c0..c15 span up to three 26-bit limbs each, with
   constant shifts; every intermediate stays below 2^57. *)
let reduce_wide (r : int array) (wide : int array) =
  let w0 = Array.unsafe_get wide 0 in
  let w1 = Array.unsafe_get wide 1 in
  let w2 = Array.unsafe_get wide 2 in
  let w3 = Array.unsafe_get wide 3 in
  let w4 = Array.unsafe_get wide 4 in
  let w5 = Array.unsafe_get wide 5 in
  let w6 = Array.unsafe_get wide 6 in
  let w7 = Array.unsafe_get wide 7 in
  let w8 = Array.unsafe_get wide 8 in
  let w9 = Array.unsafe_get wide 9 in
  let w10 = Array.unsafe_get wide 10 in
  let w11 = Array.unsafe_get wide 11 in
  let w12 = Array.unsafe_get wide 12 in
  let w13 = Array.unsafe_get wide 13 in
  let w14 = Array.unsafe_get wide 14 in
  let w15 = Array.unsafe_get wide 15 in
  let w16 = Array.unsafe_get wide 16 in
  let w17 = Array.unsafe_get wide 17 in
  let w18 = Array.unsafe_get wide 18 in
  let w19 = Array.unsafe_get wide 19 in
  let c0 = (w0 lor (w1 lsl 26)) land m32 in
  let c1 = ((w1 lsr 6) lor (w2 lsl 20)) land m32 in
  let c2 = ((w2 lsr 12) lor (w3 lsl 14)) land m32 in
  let c3 = ((w3 lsr 18) lor (w4 lsl 8)) land m32 in
  let c4 = ((w4 lsr 24) lor (w5 lsl 2) lor (w6 lsl 28)) land m32 in
  let c5 = ((w6 lsr 4) lor (w7 lsl 22)) land m32 in
  let c6 = ((w7 lsr 10) lor (w8 lsl 16)) land m32 in
  let c7 = ((w8 lsr 16) lor (w9 lsl 10)) land m32 in
  let c8 = ((w9 lsr 22) lor (w10 lsl 4) lor (w11 lsl 30)) land m32 in
  let c9 = ((w11 lsr 2) lor (w12 lsl 24)) land m32 in
  let c10 = ((w12 lsr 8) lor (w13 lsl 18)) land m32 in
  let c11 = ((w13 lsr 14) lor (w14 lsl 12)) land m32 in
  let c12 = ((w14 lsr 20) lor (w15 lsl 6)) land m32 in
  let c13 = (w16 lor (w17 lsl 26)) land m32 in
  let c14 = ((w17 lsr 6) lor (w18 lsl 20)) land m32 in
  let c15 = ((w18 lsr 12) lor (w19 lsl 14)) land m32 in
  (* s1 + 2s2 + 2s3 + s4 + s5 - s6 - s7 - s8 - s9 per 32-bit position *)
  let a0 = c0 + c8 + c9 - c11 - c12 - c13 - c14
  and a1 = c1 + c9 + c10 - c12 - c13 - c14 - c15
  and a2 = c2 + c10 + c11 - c13 - c14 - c15
  and a3 = c3 + (2 * (c11 + c12)) + c13 - c15 - c8 - c9
  and a4 = c4 + (2 * (c12 + c13)) + c14 - c9 - c10
  and a5 = c5 + (2 * (c13 + c14)) + c15 - c10 - c11
  and a6 = c6 + c13 + (3 * c14) + (2 * c15) - c8 - c9
  and a7 = c7 + c8 + (3 * c15) - c10 - c11 - c12 - c13 in
  (* add 4p and carry-normalize to words in [0, 2^32); the sum is in
     (0, 9p) so the carry out of word 7 lands in [0, 8] *)
  let t = a0 + four_p_words.(0) in
  let e0 = t land m32 in
  let t = a1 + four_p_words.(1) + (t asr 32) in
  let e1 = t land m32 in
  let t = a2 + four_p_words.(2) + (t asr 32) in
  let e2 = t land m32 in
  let t = a3 + four_p_words.(3) + (t asr 32) in
  let e3 = t land m32 in
  let t = a4 + four_p_words.(4) + (t asr 32) in
  let e4 = t land m32 in
  let t = a5 + four_p_words.(5) + (t asr 32) in
  let e5 = t land m32 in
  let t = a6 + four_p_words.(6) + (t asr 32) in
  let e6 = t land m32 in
  let t = a7 + four_p_words.(7) + (t asr 32) in
  let e7 = t land m32 in
  let top = (t asr 32) + four_p_words.(8) in
  (* fold the overflow: 2^256 = 2^224 - 2^192 - 2^96 + 1 (mod p); two
     rounds suffice because the first leaves at most one bit above 2^256 *)
  let t = e0 + top in
  let e0 = t land m32 in
  let t = e1 + (t asr 32) in
  let e1 = t land m32 in
  let t = e2 + (t asr 32) in
  let e2 = t land m32 in
  let t = e3 - top + (t asr 32) in
  let e3 = t land m32 in
  let t = e4 + (t asr 32) in
  let e4 = t land m32 in
  let t = e5 + (t asr 32) in
  let e5 = t land m32 in
  let t = e6 - top + (t asr 32) in
  let e6 = t land m32 in
  let t = e7 + top + (t asr 32) in
  let e7 = t land m32 in
  let top = t asr 32 in
  let t = e0 + top in
  let e0 = t land m32 in
  let t = e1 + (t asr 32) in
  let e1 = t land m32 in
  let t = e2 + (t asr 32) in
  let e2 = t land m32 in
  let t = e3 - top + (t asr 32) in
  let e3 = t land m32 in
  let t = e4 + (t asr 32) in
  let e4 = t land m32 in
  let t = e5 + (t asr 32) in
  let e5 = t land m32 in
  let t = e6 - top + (t asr 32) in
  let e6 = t land m32 in
  let t = e7 + top + (t asr 32) in
  let e7 = t land m32 in
  (* the value is now in [0, 2^256): repack eight 32-bit words into ten
     26-bit limbs and finish with one conditional subtraction (< 2p). *)
  r.(0) <- e0 land mask;
  r.(1) <- ((e0 lsr 26) lor (e1 lsl 6)) land mask;
  r.(2) <- ((e1 lsr 20) lor (e2 lsl 12)) land mask;
  r.(3) <- ((e2 lsr 14) lor (e3 lsl 18)) land mask;
  r.(4) <- ((e3 lsr 8) lor (e4 lsl 24)) land mask;
  r.(5) <- (e4 lsr 2) land mask;
  r.(6) <- ((e4 lsr 28) lor (e5 lsl 4)) land mask;
  r.(7) <- ((e5 lsr 22) lor (e6 lsl 10)) land mask;
  r.(8) <- ((e6 lsr 16) lor (e7 lsl 16)) land mask;
  r.(9) <- (e7 lsr 10) land mask;
  cond_sub_p r

(* r <- a * b mod p.  [wide] is caller scratch of [wide_limbs] ints; r may
   alias a or b (the product is drained into [wide] before r is written). *)
let mul_into (wide : int array) (r : int array) (a : int array) (b : int array) =
  mul_wide wide a b;
  reduce_wide r wide

(* r <- a^2 mod p.  Same aliasing contract as [mul_into]. *)
let sqr_into (wide : int array) (r : int array) (a : int array) =
  sqr_wide wide a;
  reduce_wide r wide

(* ---- conversions between Nat.t and the fixed-limb form ---- *)

(* Read-only view: a canonical (< p) Nat needs at most padding.  The result
   may share structure with [a]; callers must not mutate it. *)
let ro_of_fe (a : Nat.t) : int array = if Array.length a = nlimbs then a else pad a

(* Owned, mutable copy. *)
let own_of_fe (a : Nat.t) : int array =
  if Array.length a = nlimbs then Array.copy a else pad a

(* Trimmed, freshly-allocated Nat (callers never observe kernel scratch). *)
let to_fe (a : int array) : Nat.t =
  let n = ref nlimbs in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  Array.sub a 0 !n

(* Full reduction of an arbitrary Nat into canonical fixed-limb form. *)
let reduce_nat (x : Nat.t) : int array =
  let lx = Array.length x in
  if lx < nlimbs then pad x
  else if lx = nlimbs && not (geq_p x) then Array.copy x
  else if lx < wide_limbs then begin
    let wide = Array.make wide_limbs 0 in
    Array.blit x 0 wide 0 lx;
    let r = Array.make nlimbs 0 in
    reduce_wide r wide;
    r
  end
  else pad (snd (Nat.divmod x p_nat))

(* ---- Modarith-compatible field API ----

   [Fe] satisfies [Modarith.S] with [t = Nat.t], so every existing consumer
   of [P256.Fe] — point arithmetic, ECDSA, ElGamal, hash-to-curve, the
   password protocol — recompiles unchanged.  Values are always canonical
   normalized Nats; the fixed-limb hop is a length check in, a trim out. *)

(* Per-domain scratch for the wide product: steady-state field ops allocate
   only their result.  Domain-local so [Parallel.map] workers never race. *)
let scratch_key = Domain.DLS.new_key (fun () -> Array.make wide_limbs 0)

(* A freshly-allocated result array is returned as-is when its top limb is
   nonzero (almost always, for uniformly distributed elements): the kernel
   output is already a normalized Nat, so the [to_fe] trim-and-copy is only
   needed for values below 2^234. *)
let box (r : int array) : Nat.t = if Array.unsafe_get r (nlimbs - 1) <> 0 then r else to_fe r

module Fe : Modarith.S = struct
  type t = Nat.t

  let modulus = p_nat
  let ctx = Modarith.make p_nat
  let zero = Nat.zero
  let one = Nat.one
  let of_nat x = to_fe (reduce_nat x)
  let of_int x = Nat.of_int x
  let of_bytes_be s = of_nat (Nat.of_bytes_be s)
  let byte_length = 32
  let to_bytes_be x = Nat.to_bytes_be ~len:byte_length x
  let equal = Nat.equal

  let add a b =
    let r = Array.make nlimbs 0 in
    add_into r (ro_of_fe a) (ro_of_fe b);
    box r

  let sub a b =
    let r = Array.make nlimbs 0 in
    sub_into r (ro_of_fe a) (ro_of_fe b);
    box r

  let neg a =
    let r = Array.make nlimbs 0 in
    neg_into r (ro_of_fe a);
    box r

  let mul a b =
    let wide = Domain.DLS.get scratch_key in
    let r = Array.make nlimbs 0 in
    mul_into wide r (ro_of_fe a) (ro_of_fe b);
    box r

  let sqr a =
    let wide = Domain.DLS.get scratch_key in
    let r = Array.make nlimbs 0 in
    sqr_into wide r (ro_of_fe a);
    box r

  let pow (a : t) (e : Nat.t) : t =
    let wide = Domain.DLS.get scratch_key in
    let acc = pad Nat.one in
    let base = own_of_fe a in
    for i = Nat.bit_length e - 1 downto 0 do
      sqr_into wide acc acc;
      if Nat.test_bit e i then mul_into wide acc acc base
    done;
    box acc

  (* Binary extended gcd via the shared Modarith path (p is odd). *)
  let inv a = Modarith.inv ctx a

  (* p = 3 (mod 4): candidate root a^((p+1)/4). *)
  let sqrt_exp = Nat.shift_right (Nat.add p_nat Nat.one) 2

  let sqrt a =
    let r = pow a sqrt_exp in
    if Nat.equal (sqr r) (of_nat a) then Some r else None

  let random ~rand_bytes = Modarith.random ctx ~rand_bytes
  let random_nonzero ~rand_bytes = Modarith.random_nonzero ctx ~rand_bytes
  let pp = Nat.pp
end
