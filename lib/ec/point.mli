(** P-256 group operations (Jacobian coordinates).

    The group underlying every public-key operation in larch: FIDO2's ECDSA
    (required by the standard), the ElGamal archive encryption, the
    password protocol's blinded Diffie-Hellman, and all sigma protocols. *)

module Fe = P256.Fe
module Scalar = P256.Scalar

(** Jacobian point: (X, Y, Z) represents the affine point (X/Z², Y/Z³);
    Z = 0 is the point at infinity. *)
type t = { x : Fe.t; y : Fe.t; z : Fe.t }

val infinity : t
val is_infinity : t -> bool
val of_affine : x:Fe.t -> y:Fe.t -> t

val g : t
(** The standard base point. *)

val to_affine : t -> (Fe.t * Fe.t) option
(** [None] for the point at infinity.  Costs one field inversion. *)

val equal : t -> t -> bool
(** Projective-coordinate-independent equality (no inversion). *)

val double : t -> t
val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t

val mul : Scalar.t -> t -> t
(** Variable-point scalar multiplication (width-5 wNAF). *)

val mul_base : Scalar.t -> t
(** Base-point multiplication via a cached comb table; ~4× faster than
    [mul _ g]. *)

val mul_add : Scalar.t -> Scalar.t -> t -> t
(** [mul_add k1 k2 q] is k1·G + k2·Q via Strauss–Shamir interleaving: one
    shared doubling chain instead of two full ladders.  The shape of ECDSA
    verification (u1·G + u2·Q). *)

val multi_mul : (Scalar.t * t) array -> t
(** Pippenger multi-scalar multiplication: Σᵢ kᵢ·Pᵢ.  The workhorse of
    Groth–Kohlweiss proving/verification (O(n) group work at hundreds of
    relying parties). *)

val is_on_curve : t -> bool

(** {1 Encodings} *)

val encode : t -> string
(** SEC1 uncompressed (65 bytes); infinity encodes as a single zero byte. *)

val decode : string -> t option
(** Validates the point is on the curve. *)

val decode_exn : string -> t

val encode_compressed : t -> string
(** SEC1 compressed (33 bytes). *)

val decode_compressed : string -> t option

val x_scalar : t -> Scalar.t
(** ECDSA's conversion function f : G → Z_n (the x-coordinate mod n).
    @raise Invalid_argument on infinity *)

val random : rand_bytes:(int -> string) -> Scalar.t * t
(** A uniform keypair (k, k·G). *)

val pp : Format.formatter -> t -> unit

(**/**)

val base_table_builds : unit -> int
(** How many times the cached base-point tables have been constructed;
    stays at most 1 per table even when first forced concurrently from
    several domains (regression hook for the once-only guarantee). *)
