(* NIST P-256 (secp256r1) domain parameters.

   FIDO2 mandates ECDSA over P-256, and larch's password protocol and
   ElGamal archive encryption reuse the same group.  [Fe] is the base field
   Z_p, [Scalar] the scalar field Z_n (both prime). *)

open Larch_bignum

let p = Nat.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"
let n = Nat.of_hex "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"
let b = Nat.of_hex "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"
let gx = Nat.of_hex "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"
let gy = Nat.of_hex "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"

(* The base field runs on the dedicated fixed-limb Solinas backend
   (lib/ec/fe256.ml); it satisfies the same [Modarith.S] signature, so
   consumers are oblivious.  The generic Barrett functor remains the
   differential-testing oracle for it (test/test_fe256.ml). *)
module Fe = Fe256.Fe

module Scalar = Modarith.Make (struct
  let modulus = n
end)

(* a = -3 mod p *)
let a = Fe.sub Fe.zero (Fe.of_int 3)
