(* P-256 group operations in Jacobian coordinates.

   A point (X, Y, Z) with Z <> 0 represents the affine point (X/Z², Y/Z³);
   Z = 0 is the point at infinity.  Doubling uses the a = -3 "dbl-2001-b"
   formulas; addition uses "add-2007-bl".  These are complete for this code
   because addition dispatches explicitly on the H = 0 cases.

   Hot paths run on the fixed-limb [Fe256] kernels: scalar-multiplication
   loops work on mutable 10-limb Jacobian triples with caller-owned scratch,
   so the steady state allocates nothing.  Variable-point multiplication is
   width-5 wNAF (8 precomputed odd multiples, ~1 addition per 6 doublings);
   [mul_add] is Strauss–Shamir over one shared doubling chain, which is what
   halves ECDSA verification relative to two independent ladders.  The
   public API is unchanged except for the new [mul_add]. *)

open Larch_bignum
module Fe = P256.Fe
module Scalar = P256.Scalar
module F = Fe256

type t = { x : Fe.t; y : Fe.t; z : Fe.t }

let infinity = { x = Fe.one; y = Fe.one; z = Fe.zero }
let is_infinity p = Nat.is_zero p.z
let of_affine ~(x : Fe.t) ~(y : Fe.t) : t = { x; y; z = Fe.one }
let g : t = of_affine ~x:(Fe.of_nat P256.gx) ~y:(Fe.of_nat P256.gy)

let to_affine (p : t) : (Fe.t * Fe.t) option =
  if is_infinity p then None
  else begin
    let zinv = Fe.inv p.z in
    let zinv2 = Fe.sqr zinv in
    Some (Fe.mul p.x zinv2, Fe.mul p.y (Fe.mul zinv2 zinv))
  end

let equal (p : t) (q : t) : bool =
  match (is_infinity p, is_infinity q) with
  | true, true -> true
  | true, false | false, true -> false
  | false, false ->
      (* Cross-multiply to compare without inversion:
         X1*Z2² = X2*Z1² and Y1*Z2³ = Y2*Z1³. *)
      let z1z1 = Fe.sqr p.z and z2z2 = Fe.sqr q.z in
      Fe.equal (Fe.mul p.x z2z2) (Fe.mul q.x z1z1)
      && Fe.equal (Fe.mul p.y (Fe.mul z2z2 q.z)) (Fe.mul q.y (Fe.mul z1z1 p.z))

(* ---- mutable Jacobian working form over the fixed-limb kernels ---- *)

type jac = { jx : int array; jy : int array; jz : int array }

type scratch = {
  wide : int array;
  t1 : int array;
  t2 : int array;
  t3 : int array;
  t4 : int array;
  t5 : int array;
  t6 : int array;
  t7 : int array;
  t8 : int array;
  tq : jac; (* negated table entry for subtractive wNAF digits *)
}

let fresh () = Array.make F.nlimbs 0
let jac_infinity () = { jx = fresh (); jy = fresh (); jz = fresh () }

let make_scratch () =
  {
    wide = Array.make F.wide_limbs 0;
    t1 = fresh ();
    t2 = fresh ();
    t3 = fresh ();
    t4 = fresh ();
    t5 = fresh ();
    t6 = fresh ();
    t7 = fresh ();
    t8 = fresh ();
    tq = jac_infinity ();
  }

let jac_of_point (p : t) : jac =
  { jx = F.own_of_fe p.x; jy = F.own_of_fe p.y; jz = F.own_of_fe p.z }

let point_of_jac (j : jac) : t =
  if F.is_zero j.jz then infinity
  else { x = F.to_fe j.jx; y = F.to_fe j.jy; z = F.to_fe j.jz }

let jac_copy (dst : jac) (src : jac) =
  F.copy_into dst.jx src.jx;
  F.copy_into dst.jy src.jy;
  F.copy_into dst.jz src.jz

let set_infinity (j : jac) = F.set_zero j.jz

(* In-place doubling (dbl-2001-b, a = -3).  The 3·, 4·, 8· small-constant
   multiplications of the old code are additions here — no per-call
   [Fe.of_int] constants, no allocation at all. *)
let dbl (s : scratch) (j : jac) =
  if F.is_zero j.jz || F.is_zero j.jy then set_infinity j
  else begin
    let { wide; t1; t2; t3; t4; t5; _ } = s in
    F.sqr_into wide t1 j.jz;
    (* delta = Z² *)
    F.sqr_into wide t2 j.jy;
    (* gamma = Y² *)
    F.mul_into wide t3 j.jx t2;
    (* beta = X·gamma *)
    F.sub_into t4 j.jx t1;
    F.add_into t5 j.jx t1;
    F.mul_into wide t4 t4 t5;
    F.add_into t5 t4 t4;
    F.add_into t4 t5 t4;
    (* alpha = 3(X-delta)(X+delta) *)
    F.add_into j.jz j.jy j.jz;
    F.sqr_into wide j.jz j.jz;
    F.sub_into j.jz j.jz t2;
    F.sub_into j.jz j.jz t1;
    (* Z3 = (Y+Z)² - gamma - delta *)
    F.add_into t5 t3 t3;
    F.add_into t5 t5 t5;
    (* t5 = 4·beta *)
    F.sqr_into wide j.jx t4;
    F.sub_into j.jx j.jx t5;
    F.sub_into j.jx j.jx t5;
    (* X3 = alpha² - 8·beta *)
    F.sub_into t5 t5 j.jx;
    F.mul_into wide t5 t4 t5;
    (* alpha·(4beta - X3) *)
    F.sqr_into wide t2 t2;
    F.add_into t2 t2 t2;
    F.add_into t2 t2 t2;
    F.add_into t2 t2 t2;
    (* 8·gamma² *)
    F.sub_into j.jy t5 t2
  end

(* p <- p + q, in place (add-2007-bl).  [q] must be a distinct triple; it is
   only read. *)
let add_assign (s : scratch) (p : jac) (q : jac) =
  if F.is_zero q.jz then ()
  else if F.is_zero p.jz then jac_copy p q
  else begin
    let { wide; t1; t2; t3; t4; t5; t6; t7; t8; _ } = s in
    F.sqr_into wide t1 p.jz;
    (* Z1Z1 *)
    F.sqr_into wide t2 q.jz;
    (* Z2Z2 *)
    F.mul_into wide t3 p.jx t2;
    (* U1 *)
    F.mul_into wide t4 q.jx t1;
    (* U2 *)
    F.mul_into wide t5 q.jz t2;
    F.mul_into wide t5 p.jy t5;
    (* S1 *)
    F.mul_into wide t6 p.jz t1;
    F.mul_into wide t6 q.jy t6;
    (* S2 *)
    F.sub_into t4 t4 t3;
    (* H = U2 - U1 *)
    F.sub_into t6 t6 t5;
    (* S2 - S1 *)
    if F.is_zero t4 then begin
      if F.is_zero t6 then dbl s p else set_infinity p
    end
    else begin
      F.add_into t7 p.jz q.jz;
      F.sqr_into wide t7 t7;
      F.sub_into t7 t7 t1;
      F.sub_into t7 t7 t2;
      F.mul_into wide p.jz t7 t4;
      (* Z3 = ((Z1+Z2)² - Z1Z1 - Z2Z2)·H *)
      F.add_into t6 t6 t6;
      (* r = 2(S2 - S1) *)
      F.add_into t7 t4 t4;
      F.sqr_into wide t7 t7;
      (* I = (2H)² *)
      F.mul_into wide t8 t4 t7;
      (* J = H·I *)
      F.mul_into wide t3 t3 t7;
      (* V = U1·I *)
      F.sqr_into wide p.jx t6;
      F.sub_into p.jx p.jx t8;
      F.sub_into p.jx p.jx t3;
      F.sub_into p.jx p.jx t3;
      (* X3 = r² - J - 2V *)
      F.sub_into t3 t3 p.jx;
      F.mul_into wide t3 t6 t3;
      (* r·(V - X3) *)
      F.mul_into wide t5 t5 t8;
      F.add_into t5 t5 t5;
      (* 2·S1·J *)
      F.sub_into p.jy t3 t5
    end
  end

(* p <- p - q via the scratch-held negation of q. *)
let add_assign_neg (s : scratch) (p : jac) (q : jac) =
  F.copy_into s.tq.jx q.jx;
  F.neg_into s.tq.jy q.jy;
  F.copy_into s.tq.jz q.jz;
  add_assign s p s.tq

(* ---- immutable API over the mutable kernels ---- *)

let double (p : t) : t =
  if is_infinity p || Nat.is_zero p.y then infinity
  else begin
    let s = make_scratch () in
    let j = jac_of_point p in
    dbl s j;
    point_of_jac j
  end

let add (p : t) (q : t) : t =
  if is_infinity p then q
  else if is_infinity q then p
  else begin
    let s = make_scratch () in
    let jp = jac_of_point p and jq = jac_of_point q in
    add_assign s jp jq;
    point_of_jac jp
  end

let neg (p : t) : t = if is_infinity p then p else { p with y = Fe.neg p.y }
let sub (p : t) (q : t) : t = add p (neg q)

(* ---- width-5 wNAF recoding ----

   Digits are odd in ±{1, 3, …, 15}; nonzero digits average one per w+1 = 6
   positions, so a 256-bit scalar costs ~256 doublings + ~43 additions
   against an 8-entry odd-multiples table (the 4-bit window of the old code
   paid 64 additions).  The recoding works on a small mutable limb buffer:
   test low bits, subtract the signed digit, shift right. *)

let wnaf_width = 5
let wnaf_mask = (1 lsl wnaf_width) - 1
let wnaf_half = 1 lsl (wnaf_width - 1)

(* Scalars are < 2^256 (enforced by Scalar/Nat invariants upstream); one
   spare limb absorbs the carry from adding a negative digit back. *)
let wnaf_buf_limbs = 11

let wnaf_digits (k : Nat.t) : int array * int =
  if Array.length k > F.nlimbs then invalid_arg "Point.wnaf_digits: scalar too large";
  let buf = Array.make wnaf_buf_limbs 0 in
  Array.blit k 0 buf 0 (Array.length k);
  (* a 10-limb Nat is < 2^260; one extra position absorbs digit carries *)
  let digits = Array.make 262 0 in
  let top = ref (-1) in
  let nonzero = ref (not (Nat.is_zero k)) in
  let i = ref 0 in
  while !nonzero do
    (if buf.(0) land 1 = 1 then begin
       let d = buf.(0) land wnaf_mask in
       let d = if d >= wnaf_half then d - (2 * wnaf_half) else d in
       digits.(!i) <- d;
       top := !i;
       if d > 0 then begin
         (* buf -= d: d is the low bits of an odd buf, so no underflow *)
         let borrow = ref d in
         let l = ref 0 in
         while !borrow <> 0 do
           let t = buf.(!l) - !borrow in
           if t < 0 then begin
             buf.(!l) <- t + (1 lsl F.base_bits);
             borrow := 1
           end
           else begin
             buf.(!l) <- t;
             borrow := 0
           end;
           incr l
         done
       end
       else begin
         let carry = ref (-d) in
         let l = ref 0 in
         while !carry <> 0 do
           let t = buf.(!l) + !carry in
           buf.(!l) <- t land F.mask;
           carry := t lsr F.base_bits;
           incr l
         done
       end
     end);
    (* buf >>= 1 *)
    for l = 0 to wnaf_buf_limbs - 1 do
      let hi = if l + 1 < wnaf_buf_limbs then buf.(l + 1) land 1 else 0 in
      buf.(l) <- (buf.(l) lsr 1) lor (hi lsl (F.base_bits - 1))
    done;
    incr i;
    nonzero := false;
    for l = 0 to wnaf_buf_limbs - 1 do
      if buf.(l) <> 0 then nonzero := true
    done
  done;
  (digits, !top)

(* Odd multiples P, 3P, …, 15P as mutable Jacobian triples. *)
let odd_multiples (s : scratch) (base : jac) : jac array =
  let twice = jac_infinity () in
  jac_copy twice base;
  dbl s twice;
  let tbl = Array.init wnaf_half (fun _ -> jac_infinity ()) in
  jac_copy tbl.(0) base;
  for i = 1 to wnaf_half - 1 do
    jac_copy tbl.(i) tbl.(i - 1);
    add_assign s tbl.(i) twice
  done;
  tbl

let apply_digit (s : scratch) (acc : jac) (tbl : jac array) (d : int) =
  if d > 0 then add_assign s acc tbl.(d lsr 1)
  else if d < 0 then add_assign_neg s acc tbl.((-d) lsr 1)

(* Variable-point scalar multiplication, width-5 wNAF. *)
let mul (k : Scalar.t) (p : t) : t =
  if Nat.is_zero k || is_infinity p then infinity
  else begin
    let s = make_scratch () in
    let digits, top = wnaf_digits k in
    let tbl = odd_multiples s (jac_of_point p) in
    let acc = jac_infinity () in
    for i = top downto 0 do
      dbl s acc;
      apply_digit s acc tbl digits.(i)
    done;
    point_of_jac acc
  end

(* ---- cached base-point tables ----

   Both tables are built exactly once, under a mutex, and published through
   an [Atomic]: OCaml's [Lazy] is not safe to force concurrently, and
   [Parallel.map] runs group operations from several domains at once.  The
   build counter is exposed so tests can assert single construction. *)

let table_lock = Mutex.create ()
let table_builds = Atomic.make 0
let base_table_builds () = Atomic.get table_builds

let once (cell : 'a option Atomic.t) (build : unit -> 'a) : 'a =
  match Atomic.get cell with
  | Some v -> v
  | None ->
      Mutex.protect table_lock (fun () ->
          match Atomic.get cell with
          | Some v -> v
          | None ->
              let v = build () in
              Atomic.incr table_builds;
              Atomic.set cell (Some v);
              v)

(* comb.(w).(d) = d · 2^(4w) · G for 4-bit digits d (Lim-Lee style
   single-row comb): base-point multiplication is 64 additions, no
   doublings. *)
let comb_cell : jac array array option Atomic.t = Atomic.make None

let build_comb () =
  let s = make_scratch () in
  let cur = jac_of_point g in
  let tbl =
    Array.init 64 (fun _ -> Array.init 16 (fun _ -> jac_infinity ()))
  in
  for w = 0 to 63 do
    let row = tbl.(w) in
    jac_copy row.(1) cur;
    for d = 2 to 15 do
      jac_copy row.(d) row.(d - 1);
      add_assign s row.(d) cur
    done;
    for _ = 1 to 4 do
      dbl s cur
    done
  done;
  tbl

(* Odd multiples of G for the Strauss–Shamir joint ladder. *)
let g_odd_cell : jac array option Atomic.t = Atomic.make None

let build_g_odd () =
  let s = make_scratch () in
  odd_multiples s (jac_of_point g)

let mul_base (k : Scalar.t) : t =
  if Nat.is_zero k then infinity
  else begin
    let table = once comb_cell build_comb in
    let s = make_scratch () in
    let acc = jac_infinity () in
    let kb = Scalar.to_bytes_be k in
    (* byte i (big-endian) covers windows 2*(31-i)+1 and 2*(31-i). *)
    for i = 0 to 31 do
      let byte = Char.code kb.[i] in
      let w_hi = (2 * (31 - i)) + 1 and w_lo = 2 * (31 - i) in
      let hi = byte lsr 4 and lo = byte land 0xf in
      if hi <> 0 then add_assign s acc table.(w_hi).(hi);
      if lo <> 0 then add_assign s acc table.(w_lo).(lo)
    done;
    point_of_jac acc
  end

(* k1·G + k2·Q on one shared doubling chain (Strauss–Shamir): ~256
   doublings total instead of 512 across two independent ladders.  This is
   the ECDSA-verify shape u1·G + u2·Q, and the same interleaving the
   password protocol's log-side checks reduce to. *)
let mul_add (k1 : Scalar.t) (k2 : Scalar.t) (q : t) : t =
  if Nat.is_zero k2 || is_infinity q then mul_base k1
  else if Nat.is_zero k1 then mul k2 q
  else begin
    let s = make_scratch () in
    let gtbl = once g_odd_cell build_g_odd in
    let qtbl = odd_multiples s (jac_of_point q) in
    let d1, top1 = wnaf_digits k1 in
    let d2, top2 = wnaf_digits k2 in
    let acc = jac_infinity () in
    for i = max top1 top2 downto 0 do
      dbl s acc;
      if i <= top1 then apply_digit s acc gtbl d1.(i);
      if i <= top2 then apply_digit s acc qtbl d2.(i)
    done;
    point_of_jac acc
  end

(* Multi-scalar multiplication (Pippenger's bucket method).  Dominates the
   cost of Groth–Kohlweiss proving/verification, which is what makes the
   password protocol's O(n) prover practical at n = 512 relying parties.
   Buckets are mutable Jacobian triples accumulated in place. *)
let multi_mul (pairs : (Scalar.t * t) array) : t =
  let n = Array.length pairs in
  if n = 0 then infinity
  else begin
    let s = make_scratch () in
    let w = if n >= 256 then 6 else if n >= 32 then 5 else if n >= 8 then 4 else 2 in
    let nbuckets = (1 lsl w) - 1 in
    let nwindows = (256 + w - 1) / w in
    let jpairs = Array.map (fun (k, p) -> (k, jac_of_point p)) pairs in
    let digit k win =
      (* bits [win*w, win*w + w) of the scalar *)
      let d = ref 0 in
      for b = (win * w) + w - 1 downto win * w do
        d := (!d lsl 1) lor (if b < 256 && Nat.test_bit k b then 1 else 0)
      done;
      !d
    in
    let buckets = Array.init nbuckets (fun _ -> jac_infinity ()) in
    let run = jac_infinity () and total = jac_infinity () and acc = jac_infinity () in
    for win = nwindows - 1 downto 0 do
      for _ = 1 to w do
        dbl s acc
      done;
      Array.iter set_infinity buckets;
      Array.iter
        (fun (k, jp) ->
          let d = digit k win in
          if d > 0 then add_assign s buckets.(d - 1) jp)
        jpairs;
      set_infinity run;
      set_infinity total;
      for d = nbuckets downto 1 do
        add_assign s run buckets.(d - 1);
        add_assign s total run
      done;
      add_assign s acc total
    done;
    point_of_jac acc
  end

let is_on_curve (p : t) : bool =
  if is_infinity p then true
  else begin
    match to_affine p with
    | None -> true
    | Some (x, y) ->
        let rhs = Fe.add (Fe.add (Fe.mul (Fe.sqr x) x) (Fe.mul P256.a x)) (Fe.of_nat P256.b) in
        Fe.equal (Fe.sqr y) rhs
  end

(* SEC1 uncompressed encoding; infinity encodes as a single zero byte. *)
let encode (p : t) : string =
  match to_affine p with
  | None -> "\x00"
  | Some (x, y) -> "\x04" ^ Fe.to_bytes_be x ^ Fe.to_bytes_be y

let decode (s : string) : t option =
  if s = "\x00" then Some infinity
  else if String.length s = 65 && s.[0] = '\x04' then begin
    let x = Nat.of_bytes_be (String.sub s 1 32) and y = Nat.of_bytes_be (String.sub s 33 32) in
    if Nat.compare x P256.p >= 0 || Nat.compare y P256.p >= 0 then None
    else begin
      let pt = of_affine ~x ~y in
      if is_on_curve pt then Some pt else None
    end
  end
  else None

let decode_exn s =
  match decode s with Some p -> p | None -> invalid_arg "Point.decode_exn: invalid encoding"

(* SEC1 compressed encoding (33 bytes); infinity as a single zero byte. *)
let encode_compressed (p : t) : string =
  match to_affine p with
  | None -> "\x00"
  | Some (x, y) ->
      let tag = if Nat.test_bit y 0 then "\x03" else "\x02" in
      tag ^ Fe.to_bytes_be x

let decode_compressed (s : string) : t option =
  if s = "\x00" then Some infinity
  else if String.length s = 33 && (s.[0] = '\x02' || s.[0] = '\x03') then begin
    let x = Nat.of_bytes_be (String.sub s 1 32) in
    if Nat.compare x P256.p >= 0 then None
    else begin
      let rhs = Fe.add (Fe.add (Fe.mul (Fe.sqr x) x) (Fe.mul P256.a x)) (Fe.of_nat P256.b) in
      match Fe.sqrt rhs with
      | None -> None
      | Some y ->
          let want_odd = s.[0] = '\x03' in
          let y = if Nat.test_bit y 0 = want_odd then y else Fe.neg y in
          Some (of_affine ~x ~y)
    end
  end
  else None

(* x-coordinate as a scalar: ECDSA's conversion function f : G -> Z_n. *)
let x_scalar (p : t) : Scalar.t =
  match to_affine p with
  | None -> invalid_arg "Point.x_scalar: infinity"
  | Some (x, _) -> Scalar.of_nat x

let random ~(rand_bytes : int -> string) : Scalar.t * t =
  let k = Scalar.random_nonzero ~rand_bytes in
  (k, mul_base k)

let pp fmt p =
  match to_affine p with
  | None -> Fmt.pf fmt "Infinity"
  | Some (x, y) -> Fmt.pf fmt "(%a, %a)" Fe.pp x Fe.pp y
