(** ECDSA over P-256 with RFC 6979 deterministic nonces.

    Used directly by relying parties to verify FIDO2 assertions and by the
    client to sign record ciphertexts (§7); signatures produced jointly by
    {!Larch_core.Two_party_ecdsa} verify under this module. *)

module Scalar = P256.Scalar

type signature = { r : Scalar.t; s : Scalar.t }

val keygen : rand_bytes:(int -> string) -> Scalar.t * Point.t

val sign : ?nonce:Scalar.t -> ?even_r:bool -> sk:Scalar.t -> string -> signature
(** Sign a message (SHA-256 hashed internally); the nonce defaults to the
    RFC 6979 derivation, making signing deterministic.  [even_r] (default
    [false]) emits the malleability twin whose nonce point has an even
    y-coordinate — verifier-identical, but lets {!verify_batch} recover
    [R] from [r] without a parity search.  (Off by default so the
    published RFC 6979 vectors keep matching.) *)

val sign_digest : ?nonce:Scalar.t -> ?even_r:bool -> sk:Scalar.t -> string -> signature
(** Sign a precomputed 32-byte digest. *)

val verify : pk:Point.t -> string -> signature -> bool
val verify_digest : pk:Point.t -> string -> signature -> bool

val verify_batch : (Point.t * string * signature) list -> bool array
(** Verify many [(pk, msg, signature)] triples at once: recover each
    signature's even-y nonce point and check one random-weight Pippenger
    multi-exponentiation covering the whole batch (weights drawn from a
    DRBG keyed on the batch contents).  If the combined equation fails —
    a bad signature, or a signer that did not normalize with [even_r] —
    every signature is re-checked individually, so the accept set is
    always exactly {!verify}'s; batching only changes the cost.  Returns
    per-item validity. *)

val verify_digest_batch : (Point.t * string * signature) list -> bool array
(** {!verify_batch} over precomputed digests. *)

val encode : signature -> string
(** Fixed 64-byte r ‖ s. *)

val decode : string -> signature option

(**/**)

val hash_to_scalar : string -> Scalar.t
val deterministic_nonce : sk:Scalar.t -> digest:string -> Scalar.t
