(* The crash-consistent storage engine: snapshots + a per-generation WAL.

   Directory layout (one [dir] per log-service instance, so a multi-log
   deployment gives each log an independent store on a shared disk):

     dir/snap.<g>   snapshot of the full state at generation g
     dir/wal.<g>    every record appended since snapshot g

   Invariant: state(g+1) = state(g) + replay(wal.<g>), so recovery picks
   the newest valid snapshot g* and replays wal.<g*>, wal.<g*+1>, … in
   order.  Replaying *all* newer WALs (not just wal.<g*>) is what makes a
   rotted snapshot harmless: fall back one generation and the records
   baked into the damaged snapshot are re-derived from the retained WAL.

   Checkpoint ordering (each step durable before the next):
     1. create the fresh, empty wal.<g+1>;
     2. write snap.<g+1> atomically (tmp + fsync + rename);
     3. drop generations ≤ g−1 (one old generation is retained).
   A crash between any two steps leaves a recoverable store: before (2)
   the new WAL is an ignored empty file; before (3) there is just extra
   history. *)

module Obs = Larch_obs

let wal_file (dir : string) (gen : int) : string = Printf.sprintf "%s/wal.%06d" dir gen

let wal_gen_of_file (dir : string) (name : string) : int option =
  let prefix = dir ^ "/wal." in
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    int_of_string_opt (String.sub name pl (String.length name - pl))
  else None

type recovery = {
  gen : int; (* generation recovered from *)
  snapshot : string option; (* payload of the recovered snapshot *)
  tail : string list; (* WAL records to replay on top, in order *)
  torn : bool; (* a torn WAL tail was truncated *)
  snapshots_skipped : int; (* damaged newer snapshots we fell back across *)
}

type t = {
  disk : Disk.t;
  dir : string;
  mutable gen : int;
  mutable wal : Wal.t;
  mutable last_recovery : recovery;
}

let wal_gens (disk : Disk.t) ~(dir : string) : int list =
  List.sort compare (List.filter_map (wal_gen_of_file dir) (Disk.files disk))

let open_ ?(disk : Disk.t option) ~(dir : string) () : t =
  let disk = match disk with Some d -> d | None -> Disk.create () in
  let tracing = Obs.Runtime.tracing_enabled () in
  let t0 = if tracing then Unix.gettimeofday () else 0. in
  let snap, skipped = Snapshot.latest_valid disk ~dir in
  let base_gen, payload =
    match snap with Some (g, p) -> (g, Some p) | None -> (0, None)
  in
  (* Every WAL at or after the recovered snapshot replays, oldest first;
     only the newest one is opened for appending (and tail-repaired). *)
  let replay_gens = List.filter (fun g -> g >= base_gen) (wal_gens disk ~dir) in
  let head_gen = List.fold_left max base_gen replay_gens in
  let older = List.filter (fun g -> g < head_gen) replay_gens in
  let older_tail =
    List.concat_map (fun g -> let entries, _, _ = Wal.scan disk ~file:(wal_file dir g) in entries) older
  in
  let wal, head_tail, torn = Wal.open_ disk ~file:(wal_file dir head_gen) in
  let recovery =
    { gen = base_gen; snapshot = payload; tail = older_tail @ head_tail; torn; snapshots_skipped = skipped }
  in
  if tracing then begin
    let m = Obs.Metrics.default in
    Obs.Metrics.inc (Obs.Metrics.counter m "store.recoveries");
    Obs.Metrics.add (Obs.Metrics.counter m "store.recovered.wal_records") (List.length recovery.tail);
    if torn then Obs.Metrics.inc (Obs.Metrics.counter m "store.recovered.torn_tails");
    Obs.Metrics.add (Obs.Metrics.counter m "store.recovered.snapshots_skipped") skipped;
    Obs.Metrics.observe
      (Obs.Metrics.histogram m "store.recover_ms")
      ((Unix.gettimeofday () -. t0) *. 1000.)
  end;
  Obs.Events.emit Obs.Events.Recovery
    (Printf.sprintf "store %s recovered: gen=%d wal_records=%d%s%s" dir head_gen
       (List.length recovery.tail)
       (if torn then " torn-tail-repaired" else "")
       (if skipped > 0 then Printf.sprintf " snapshots-skipped=%d" skipped else ""));
  { disk; dir; gen = head_gen; wal; last_recovery = recovery }

let recovered (t : t) : recovery = t.last_recovery
let disk (t : t) : Disk.t = t.disk
let dir (t : t) : string = t.dir
let generation (t : t) : int = t.gen

let append (t : t) (payload : string) : unit = Wal.append t.wal payload
let flush (t : t) : unit = Wal.flush t.wal
let append_sync (t : t) (payload : string) : unit = Wal.append_sync t.wal payload
let wal_records (t : t) : int = Wal.records t.wal
let wal_commits (t : t) : int = Wal.commits t.wal

let checkpoint (t : t) (payload : string) : unit =
  flush t;
  let gen' = t.gen + 1 in
  (* 1. fresh WAL first: a crash before the snapshot rename recovers from
     the old generation and ignores the empty new WAL *)
  Disk.write t.disk ~file:(wal_file t.dir gen') "";
  Disk.fsync t.disk ~file:(wal_file t.dir gen');
  (* 2. atomic snapshot *)
  Snapshot.write t.disk ~dir:t.dir ~gen:gen' payload;
  (* 3. retention: keep generation gen' and gen'−1, drop the rest *)
  List.iter
    (fun g -> if g < gen' - 1 then Snapshot.delete t.disk ~dir:t.dir ~gen:g)
    (Snapshot.gens t.disk ~dir:t.dir);
  List.iter
    (fun g -> if g < gen' - 1 then Disk.delete t.disk ~file:(wal_file t.dir g))
    (wal_gens t.disk ~dir:t.dir);
  let wal, entries, _ = Wal.open_ t.disk ~file:(wal_file t.dir gen') in
  assert (entries = []);
  t.wal <- wal;
  t.gen <- gen';
  if Obs.Runtime.tracing_enabled () then begin
    let m = Obs.Metrics.default in
    Obs.Metrics.inc (Obs.Metrics.counter m "store.snapshots.written");
    Obs.Metrics.add (Obs.Metrics.counter m "store.snapshots.bytes") (String.length payload);
    Obs.Metrics.set_gauge (Obs.Metrics.gauge m "store.generation") (float_of_int gen');
    (* the fresh WAL starts empty: checkpointing is what resets the curve *)
    Obs.Metrics.set_gauge (Obs.Metrics.gauge m "store.wal.live_bytes") 0.
  end

(* --- structural verification (the storage half of `larch fsck`) --- *)

type verify_report = {
  snapshots_ok : int list; (* generations with valid checksums *)
  snapshots_bad : int list;
  wal_ok : (int * int) list; (* (generation, valid records) *)
  wal_torn : (int * int) list; (* (generation, byte offset of damage) *)
}

let verify_disk (disk : Disk.t) ~(dir : string) : verify_report =
  let snaps_ok = ref [] and snaps_bad = ref [] in
  List.iter
    (fun g ->
      match Snapshot.load disk ~dir ~gen:g with
      | Some _ -> snaps_ok := g :: !snaps_ok
      | None -> snaps_bad := g :: !snaps_bad)
    (Snapshot.gens disk ~dir);
  let wal_ok = ref [] and wal_torn = ref [] in
  List.iter
    (fun g ->
      let entries, valid_len, torn = Wal.scan disk ~file:(wal_file dir g) in
      if torn then wal_torn := (g, valid_len) :: !wal_torn
      else wal_ok := (g, List.length entries) :: !wal_ok)
    (wal_gens disk ~dir);
  {
    snapshots_ok = List.rev !snaps_ok;
    snapshots_bad = List.rev !snaps_bad;
    wal_ok = List.rev !wal_ok;
    wal_torn = List.rev !wal_torn;
  }

let verify (t : t) : verify_report =
  flush t;
  verify_disk t.disk ~dir:t.dir

let verify_clean (r : verify_report) : bool = r.snapshots_bad = [] && r.wal_torn = []
