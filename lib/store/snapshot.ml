(* Checkpoint snapshots: one file per generation, written atomically.

   Layout: "LSN1" magic ‖ u32 generation ‖ u32 CRC-32(payload) ‖
   u32 length ‖ payload.  The writer streams to [dir]/snap.tmp, fsyncs,
   then renames to [dir]/snap.<gen> — on this disk model (as on POSIX with
   the tmp file fsynced) the rename is atomic, so a snapshot either exists
   completely or not at all; a crash mid-write leaves only a tmp file that
   the next writer overwrites.

   Readers pick the highest generation whose checksum verifies, falling
   back across damaged snapshots — [Store] keeps one older generation (and
   its WAL) around precisely so that a rotted current snapshot degrades to
   a longer replay instead of data loss. *)

module Bytesx = Larch_util.Bytesx

let magic = "LSN1"
let tmp_file (dir : string) : string = dir ^ "/snap.tmp"
let file_of_gen (dir : string) (gen : int) : string = Printf.sprintf "%s/snap.%06d" dir gen

let gen_of_file (dir : string) (name : string) : int option =
  let prefix = dir ^ "/snap." in
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    int_of_string_opt (String.sub name pl (String.length name - pl))
  else None

let encode ~(gen : int) (payload : string) : string =
  magic ^ Bytesx.be32 gen
  ^ Bytesx.be32 (Checksum.crc32 payload)
  ^ Bytesx.be32 (String.length payload)
  ^ payload

let decode (blob : string) : (int * string) option =
  if String.length blob < 16 || String.sub blob 0 4 <> magic then None
  else begin
    let gen = Wal.read_be32 blob 4 in
    let crc = Wal.read_be32 blob 8 in
    let len = Wal.read_be32 blob 12 in
    if len < 0 || 16 + len <> String.length blob then None
    else
      let payload = String.sub blob 16 len in
      if Checksum.crc32 payload <> crc then None else Some (gen, payload)
  end

let write (disk : Disk.t) ~(dir : string) ~(gen : int) (payload : string) : unit =
  let tmp = tmp_file dir in
  Disk.write disk ~file:tmp (encode ~gen payload);
  Disk.fsync disk ~file:tmp;
  Disk.rename disk ~src:tmp ~dst:(file_of_gen dir gen)

(* All snapshot generations present on disk, ascending, valid or not. *)
let gens (disk : Disk.t) ~(dir : string) : int list =
  List.sort compare (List.filter_map (gen_of_file dir) (Disk.files disk))

let load (disk : Disk.t) ~(dir : string) ~(gen : int) : string option =
  match Disk.read disk ~file:(file_of_gen dir gen) with
  | None -> None
  | Some blob -> (
      match decode blob with
      | Some (g, payload) when g = gen -> Some payload
      | _ -> None)

(* Highest valid generation, plus how many newer-but-damaged snapshots
   were skipped on the way down. *)
let latest_valid (disk : Disk.t) ~(dir : string) : (int * string) option * int =
  let rec go skipped = function
    | [] -> (None, skipped)
    | g :: rest -> (
        match load disk ~dir ~gen:g with
        | Some payload -> (Some (g, payload), skipped)
        | None -> go (skipped + 1) rest)
  in
  go 0 (List.rev (gens disk ~dir))

let delete (disk : Disk.t) ~(dir : string) ~(gen : int) : unit =
  Disk.delete disk ~file:(file_of_gen dir gen)
