(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).

   Every WAL frame and snapshot carries one of these so recovery can tell
   a valid record from a torn or rotted tail.  CRC-32 rather than a
   cryptographic hash: the store defends against *accidents* (torn writes,
   bit rot), not adversarial tampering — integrity against an adversary is
   the per-client record hash chain's job, one layer up. *)

let table : int array Lazy.t =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* Streaming interface: fold [update] over chunks, [finish] at the end. *)
let init = 0xFFFFFFFF

let update (crc : int) (s : string) : int =
  let t = Lazy.force table in
  let c = ref crc in
  String.iter (fun ch -> c := t.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c

let finish (crc : int) : int = crc lxor 0xFFFFFFFF land 0xFFFFFFFF
let crc32 (s : string) : int = finish (update init s)
