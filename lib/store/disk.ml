(* Deterministic in-memory "disk" with an explicit durability line.

   This is the storage analogue of {!Larch_net.Fault}: a seeded, injectable
   substrate that the crash-consistency machinery above it ([Wal],
   [Snapshot], [Store]) is tested against.  Each file tracks two lengths —
   its full contents and the prefix that has been [fsync]ed.  A [crash]
   re-derives every file from its durability line using the failure model
   below; everything the layer above was told is durable (returned from an
   fsync) survives byte-for-byte, everything else is fair game.

   Failure model applied to the un-fsynced suffix of each file at crash:

   - lost entirely (the default, and the only outcome when unseeded);
   - fully retained (the kernel wrote it out even though nobody asked);
   - torn: an arbitrary prefix of the suffix survives — including
     mid-record prefixes, which is how torn WAL frames arise;
   - bit rot: one bit of the *retained un-fsynced* region flips.

   Rot never touches fsynced bytes: recovery's contract ("acknowledged
   data survives") would otherwise be unsatisfiable.  Deliberate damage to
   durable bytes — the thing `larch fsck` exists to detect — is injected
   explicitly with [corrupt].

   [rename] is atomic and durable (the snapshot writer fsyncs the source
   first, so this models the classic write-tmp/fsync/rename sequence).
   All randomness comes from an HMAC-DRBG keyed on the seed, so a crash
   schedule replays byte-for-byte. *)

type file = { mutable contents : string; mutable synced : int }

type profile = {
  p_retain : float; (* unsynced suffix fully survives *)
  p_torn : float; (* a strict prefix of it survives *)
  p_rot : float; (* one bit of the surviving unsynced bytes flips *)
}

(* The remaining probability mass (1 - p_retain - p_torn) loses the
   un-fsynced suffix outright. *)
let default_profile = { p_retain = 0.25; p_torn = 0.40; p_rot = 0.25 }
let clean_profile = { p_retain = 0.; p_torn = 0.; p_rot = 0. }

type stats = {
  appends : int;
  fsyncs : int;
  bytes_written : int;
  crashes : int;
  torn : int; (* crash outcomes that kept a partial unsynced tail *)
  rotted : int; (* crash outcomes that flipped a bit *)
}

type t = {
  files : (string, file) Hashtbl.t;
  drbg : Larch_hash.Drbg.t option;
  profile : profile;
  mutable s_appends : int;
  mutable s_fsyncs : int;
  mutable s_bytes : int;
  mutable s_crashes : int;
  mutable s_torn : int;
  mutable s_rotted : int;
}

let create ?seed ?(profile = default_profile) () : t =
  {
    files = Hashtbl.create 8;
    drbg = Option.map (fun s -> Larch_hash.Drbg.create ~entropy:("larch-disk-" ^ s)) seed;
    profile;
    s_appends = 0;
    s_fsyncs = 0;
    s_bytes = 0;
    s_crashes = 0;
    s_torn = 0;
    s_rotted = 0;
  }

let stats (t : t) : stats =
  {
    appends = t.s_appends;
    fsyncs = t.s_fsyncs;
    bytes_written = t.s_bytes;
    crashes = t.s_crashes;
    torn = t.s_torn;
    rotted = t.s_rotted;
  }

(* Uniform float in [0,1) from 48 DRBG bits; 0 when unseeded (so every
   crash outcome takes the first branch deterministically). *)
let u01 (t : t) : float =
  match t.drbg with
  | None -> 0.
  | Some drbg ->
      let b = Larch_hash.Drbg.generate drbg 6 in
      let v = ref 0 in
      String.iter (fun c -> v := (!v lsl 8) lor Char.code c) b;
      float_of_int !v /. 281474976710656. (* 2^48 *)

let get (t : t) (name : string) : file =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None ->
      let f = { contents = ""; synced = 0 } in
      Hashtbl.replace t.files name f;
      f

let exists (t : t) ~(file : string) : bool = Hashtbl.mem t.files file
let read (t : t) ~(file : string) : string option = Option.map (fun f -> f.contents) (Hashtbl.find_opt t.files file)
let size (t : t) ~(file : string) : int = match read t ~file with Some s -> String.length s | None -> 0
let synced_size (t : t) ~(file : string) : int = match Hashtbl.find_opt t.files file with Some f -> f.synced | None -> 0
let files (t : t) : string list = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.files [])

let append (t : t) ~(file : string) (data : string) : unit =
  let f = get t file in
  f.contents <- f.contents ^ data;
  t.s_appends <- t.s_appends + 1;
  t.s_bytes <- t.s_bytes + String.length data

(* Truncate-and-rewrite; the fresh contents start un-fsynced. *)
let write (t : t) ~(file : string) (data : string) : unit =
  let f = get t file in
  f.contents <- data;
  f.synced <- 0;
  t.s_appends <- t.s_appends + 1;
  t.s_bytes <- t.s_bytes + String.length data

let fsync (t : t) ~(file : string) : unit =
  let f = get t file in
  f.synced <- String.length f.contents;
  t.s_fsyncs <- t.s_fsyncs + 1

(* Atomic durable rename (write-tmp/fsync/rename discipline upstream). *)
let rename (t : t) ~(src : string) ~(dst : string) : unit =
  match Hashtbl.find_opt t.files src with
  | None -> invalid_arg ("Disk.rename: no such file " ^ src)
  | Some f ->
      Hashtbl.remove t.files src;
      Hashtbl.replace t.files dst { contents = f.contents; synced = String.length f.contents }

let delete (t : t) ~(file : string) : unit = Hashtbl.remove t.files file

let truncate (t : t) ~(file : string) (n : int) : unit =
  let f = get t file in
  let n = max 0 (min n (String.length f.contents)) in
  f.contents <- String.sub f.contents 0 n;
  f.synced <- min f.synced n

(* Explicit bit rot at a byte position — damages durable bytes too; this
   is the deliberate-corruption entry point for fsck tests. *)
let corrupt (t : t) ~(file : string) ~(pos : int) : unit =
  let f = get t file in
  if String.length f.contents > 0 then begin
    let pos = max 0 (min pos (String.length f.contents - 1)) in
    let b = Bytes.of_string f.contents in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
    f.contents <- Bytes.to_string b
  end

let flip_bit_in (t : t) (s : string) (lo : int) : string =
  let span = String.length s - lo in
  if span <= 0 then s
  else begin
    let pos = lo + (int_of_float (u01 t *. float_of_int span) mod span) in
    let b = Bytes.of_string s in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
    Bytes.to_string b
  end

(* Kill the process: every file falls back to its durability line plus a
   profile-drawn fate for the un-fsynced suffix. *)
let crash (t : t) : unit =
  t.s_crashes <- t.s_crashes + 1;
  let names = files t in
  List.iter
    (fun name ->
      let f = get t name in
      let total = String.length f.contents and synced = f.synced in
      if total > synced then begin
        let r = u01 t in
        let keep =
          if r < t.profile.p_retain then total
          else if r < t.profile.p_retain +. t.profile.p_torn then begin
            let k = synced + int_of_float (u01 t *. float_of_int (total - synced)) in
            if k > synced && k < total then t.s_torn <- t.s_torn + 1;
            k
          end
          else synced
        in
        let kept = String.sub f.contents 0 keep in
        let kept =
          if keep > synced && t.profile.p_rot > 0. && u01 t < t.profile.p_rot then begin
            t.s_rotted <- t.s_rotted + 1;
            flip_bit_in t kept synced
          end
          else kept
        in
        f.contents <- kept;
        f.synced <- min synced (String.length kept)
      end)
    names;
  (* Every simulated power cut ships with its last-N-seconds telemetry. *)
  Larch_obs.Flight.incident ~detail:(Printf.sprintf "crash #%d" t.s_crashes)
    Larch_obs.Flight.default "disk.crash"

(* Deep copy of the current byte state (the DRBG is not cloned; the copy
   behaves like an unseeded disk).  The crash-point sweep snapshots a disk
   once and restores it per kill point. *)
type image = (string * (string * int)) list

let dump (t : t) : image =
  List.map (fun name -> let f = get t name in (name, (f.contents, f.synced))) (files t)

let restore (img : image) : t =
  let t = create ~profile:clean_profile () in
  List.iter (fun (name, (contents, synced)) -> Hashtbl.replace t.files name { contents; synced }) img;
  t
