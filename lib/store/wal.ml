(* Append-only write-ahead log with group commit.

   Frame layout (all integers big-endian):

     [u32 payload length][u32 CRC-32 of payload][payload]

   Appends are buffered; [flush] writes every pending frame with a single
   disk append followed by one fsync — the group commit.  A record is
   *acknowledged* (guaranteed to survive any crash) only once the flush
   that covered it returns, which is exactly the contract the log service
   exposes to its clients: reply only after flush.

   Recovery scans frames front to back and stops at the first frame whose
   length field runs past the file or whose CRC disagrees — a torn tail
   from a crash mid-append.  [open_] repairs the file by truncating it at
   the last valid frame boundary, so the next append extends a clean log.

   Metrics (under [Larch_obs.Metrics.default], recorded only while tracing
   is enabled): commit count/latency/bytes and group sizes, plus recovery
   scan results. *)

module Obs = Larch_obs
module Bytesx = Larch_util.Bytesx

let frame_overhead = 8

type t = {
  disk : Disk.t;
  file : string;
  pending : Buffer.t;
  mutable pending_records : int;
  mutable records : int; (* durable records since open *)
  mutable commits : int;
}

let read_be32 (s : string) (pos : int) : int =
  (Char.code s.[pos] lsl 24) lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let frame (payload : string) : string =
  Bytesx.be32 (String.length payload) ^ Bytesx.be32 (Checksum.crc32 payload) ^ payload

(* Scan a WAL image: valid payloads in order, the byte offset of the last
   valid frame boundary, and whether a torn/invalid tail follows it. *)
let scan_bytes (bytes : string) : string list * int * bool =
  let n = String.length bytes in
  let entries = ref [] in
  let pos = ref 0 in
  let torn = ref false in
  (try
     while !pos < n do
       if !pos + frame_overhead > n then begin
         torn := true;
         raise Exit
       end;
       let len = read_be32 bytes !pos in
       let crc = read_be32 bytes (!pos + 4) in
       if len < 0 || !pos + frame_overhead + len > n then begin
         torn := true;
         raise Exit
       end;
       let payload = String.sub bytes (!pos + frame_overhead) len in
       if Checksum.crc32 payload <> crc then begin
         torn := true;
         raise Exit
       end;
       entries := payload :: !entries;
       pos := !pos + frame_overhead + len
     done
   with Exit -> ());
  (List.rev !entries, !pos, !torn)

let scan (disk : Disk.t) ~(file : string) : string list * int * bool =
  scan_bytes (Option.value (Disk.read disk ~file) ~default:"")

(* Open for appending: recover the valid prefix and truncate any torn
   tail so the write head sits on a frame boundary. *)
let open_ (disk : Disk.t) ~(file : string) : t * string list * bool =
  let entries, valid_len, torn = scan disk ~file in
  if torn then begin
    Disk.truncate disk ~file valid_len;
    Disk.fsync disk ~file
  end
  else if not (Disk.exists disk ~file) then Disk.write disk ~file "";
  ( {
      disk;
      file;
      pending = Buffer.create 256;
      pending_records = 0;
      records = List.length entries;
      commits = 0;
    },
    entries,
    torn )

let append (t : t) (payload : string) : unit =
  Buffer.add_string t.pending (frame payload);
  t.pending_records <- t.pending_records + 1

let pending_records (t : t) : int = t.pending_records

(* Group commit: one append + one fsync for every buffered record. *)
let flush (t : t) : unit =
  if t.pending_records > 0 then begin
    let tracing = Obs.Runtime.tracing_enabled () in
    let t0 = if tracing then Unix.gettimeofday () else 0. in
    let bytes = Buffer.contents t.pending in
    Disk.append t.disk ~file:t.file bytes;
    Disk.fsync t.disk ~file:t.file;
    t.records <- t.records + t.pending_records;
    t.commits <- t.commits + 1;
    if tracing then begin
      let m = Obs.Metrics.default in
      Obs.Metrics.add (Obs.Metrics.counter m "store.wal.commits") 1;
      Obs.Metrics.add (Obs.Metrics.counter m "store.wal.records") t.pending_records;
      Obs.Metrics.add (Obs.Metrics.counter m "store.wal.bytes") (String.length bytes);
      Obs.Metrics.inc (Obs.Metrics.counter m "store.wal.fsyncs");
      Obs.Metrics.set_gauge
        (Obs.Metrics.gauge m "store.wal.live_bytes")
        (float_of_int (Disk.size t.disk ~file:t.file));
      Obs.Metrics.observe
        (Obs.Metrics.histogram m "store.wal.group_size")
        (float_of_int t.pending_records);
      Obs.Metrics.observe
        (Obs.Metrics.histogram m "store.wal.commit_ms")
        ((Unix.gettimeofday () -. t0) *. 1000.)
    end;
    Buffer.clear t.pending;
    t.pending_records <- 0
  end

let append_sync (t : t) (payload : string) : unit =
  append t payload;
  flush t

let records (t : t) : int = t.records
let commits (t : t) : int = t.commits
let file (t : t) : string = t.file
