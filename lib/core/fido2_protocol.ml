(* Split-secret FIDO2 authentication (§3.2): message formats and the
   log-side statement check.

   The client sends (dgst, ct, π, presignature index, signing round-1
   message) in one request.  The log verifies the ZKBoo proof that ct is a
   well-formed encryption of the relying-party identity whose hash preimage
   also yields dgst, *before* contributing its signature share — the proof
   of digest-preimage knowledge is also what makes ECDSA-with-presignatures
   safe to expose as a signing oracle (Appendix A, "Zero-knowledge proof of
   preimage"). *)

module Wire = Larch_net.Wire
module Zkboo = Larch_zkboo.Zkboo
module Statements = Larch_circuit.Larch_statements

let statement_tag = "larch-fido2-v1"

type auth_request = {
  dgst : string; (* 32B signing digest *)
  ct_nonce : string; (* 12B record-encryption nonce *)
  ct : string; (* 32B encrypted relying-party id *)
  record_sig : string; (* 64B client signature over the ciphertext (§7) *)
  proof : Zkboo.proof;
  presig_index : int;
  hm_msg : Larch_mpc.Spdz.halfmul_msg;
}

(* What the client proves: see [Statements.fido2_circuit]. *)
let build_public_output ~(cm : string) (req : auth_request) : bool array =
  Statements.fido2_public_bits ~cm ~ct:req.ct ~dgst:req.dgst ~nonce:req.ct_nonce

let verify_statement ?(domains = 1) ~(cm : string) (req : auth_request) : bool =
  Larch_obs.Trace.with_span "fido2.verify_statement" @@ fun () ->
  let circuit = Lazy.force Statements.fido2_circuit in
  Zkboo.verify ~domains ~circuit ~public_output:(build_public_output ~cm req) ~statement_tag
    req.proof

let encode_auth_request (r : auth_request) : string =
  Wire.encode (fun w ->
      Wire.bytes w r.dgst;
      Wire.bytes w r.ct_nonce;
      Wire.bytes w r.ct;
      Wire.bytes w r.record_sig;
      Wire.bytes w (Zkboo.to_bytes r.proof);
      Wire.u32 w r.presig_index;
      Wire.bytes w (Two_party_ecdsa.encode_halfmul_msg r.hm_msg))

let decode_auth_request (s : string) : auth_request option =
  match
    Wire.decode s (fun rd ->
        let dgst = Wire.read_bytes rd in
        let ct_nonce = Wire.read_bytes rd in
        let ct = Wire.read_bytes rd in
        let record_sig = Wire.read_bytes rd in
        let proof =
          match Zkboo.of_bytes (Wire.read_bytes rd) with
          | Some p -> p
          | None -> raise (Wire.Malformed "proof")
        in
        let presig_index = Wire.read_u32 rd in
        let hm_msg =
          match Two_party_ecdsa.decode_halfmul_msg (Wire.read_bytes rd) with
          | Some m -> m
          | None -> raise (Wire.Malformed "halfmul msg")
        in
        { dgst; ct_nonce; ct; record_sig; proof; presig_index; hm_msg })
  with
  | Ok r -> Some r
  | Error _ -> None

(* Log's reply to the request: its signing round-1 message and s share,
   then the opening exchange runs over two smaller messages. *)
type auth_response1 = { hm_msg : Larch_mpc.Spdz.halfmul_msg; s0 : string (* 32B scalar *) }

let encode_auth_response1 (r : auth_response1) : string =
  Two_party_ecdsa.encode_halfmul_msg r.hm_msg ^ r.s0

let decode_auth_response1 (s : string) : auth_response1 option =
  if String.length s <> 96 then None
  else
    match Two_party_ecdsa.decode_halfmul_msg (String.sub s 0 64) with
    | Some m -> Some { hm_msg = m; s0 = String.sub s 64 32 }
    | None -> None
