(** The larch client ("browser extension" role).

    Owns the user's authentication secrets — archive keys, per-relying-party
    key shares, presignatures — and drives the four protocol operations of
    the paper's §2.2 against a {!Log_service}: enrollment, registration,
    authentication, and auditing.

    All client↔log traffic is serialized through the real wire codecs and
    metered on {!val:channel_snapshot}'s channels, so communication figures
    are exact.  State fields are exposed (rather than abstract) because the
    test suite plays the role of an attacker holding full device state. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Channel = Larch_net.Channel
module Transport = Larch_net.Transport
module Tpe = Two_party_ecdsa
module Statements = Larch_circuit.Larch_statements
module Bytesx = Larch_util.Bytesx
module Merkle = Larch_merkle.Merkle

(** Per-relying-party FIDO2 credential: the client's signing-key share [y],
    the aggregated public key [pk] = X·g^y registered at the relying party,
    and the WebAuthn signature counter. *)
type fido2_cred = { y : Scalar.t; pk : Point.t; mutable counter : int }

(** Per-relying-party TOTP credential: random registration identifier [tid]
    and the client's XOR-share [kclient] of the TOTP key. *)
type totp_cred = { tid : string; kclient : string; algo : Larch_auth.Totp.algo }

(** Per-relying-party password credential: registration identifier [pid] and
    the client's multiplicative share [k_id] of the password group element. *)
type pw_cred = { pid : string; k_id : Point.t }

(** FIDO2-side client state: archive key [fk] with commitment nonce [fr],
    the record-integrity signing key (§7 optimization), the log's signing
    public key X, unconsumed presignature batches, and the credential /
    rp-hash→name maps used during authentication and auditing. *)
type fido2_side = {
  fk : string;
  fr : string;
  record_sk : Scalar.t;
  log_pub : Point.t;
  mutable batches : Tpe.client_batch list;
  fido2_creds : (string, fido2_cred) Hashtbl.t;
  fido2_names : (string, string) Hashtbl.t;
}

(** TOTP-side client state: its own archive key/nonce and credential maps. *)
type totp_side = {
  tk : string;
  tr : string;
  totp_creds : (string, totp_cred) Hashtbl.t;
  totp_names : (string, string) Hashtbl.t;
}

(** Password-side client state: the ElGamal archive keypair (x, X), the
    log's Diffie-Hellman public key K, and the registration-ordered
    identifier list that must mirror the log's. *)
type pw_side = {
  x : Scalar.t;
  x_pub : Point.t;
  log_k_pub : Point.t;
  mutable pw_ids : string list;
  pw_creds : (string, pw_cred) Hashtbl.t;
  pw_names : (string, string) Hashtbl.t;
}

type t = {
  client_id : string;
  account_password : string; (** the log-account credential (§2.1) *)
  rand : int -> string;
  log : Log_service.t;
  chan : Channel.t; (** metered FIDO2/password traffic *)
  transport : Transport.t; (** fault/retry layer wrapping [chan] *)
  totp_offline : Channel.t; (** metered TOTP offline-phase traffic *)
  totp_online : Channel.t; (** metered TOTP online-phase traffic *)
  mutable ip : string; (** source address recorded by the log *)
  mutable domains : int; (** client cores used for ZKBoo proving *)
  mutable fido2 : fido2_side option;
  mutable totp : totp_side option;
  mutable pw : pw_side option;
  mutable last_chain : (string * int) option;
      (** head/length of the last verified audit chain *)
  sth_pub : Point.t;
      (** the log's tree-head verification key, pinned at {!create} *)
  mutable last_sth : Merkle.Sth.t option;
      (** last signed tree head verified by {!audit_verified} *)
  mutable audited : Record.t list;
      (** records covered by [last_sth], oldest first — the delta base for
          the next incremental audit *)
  mutable dirty : bool;
      (** a faulty exchange may have left the log's volatile session state
          out of step; the next operation resynchronizes first *)
  mutable att_deferred : bool;
      (** a brownout-degraded attestation was accepted without its
          inclusion proof; cleared only once {!audit_verified} has
          discharged every entry of [att_pending] *)
  mutable att_pending : (int * string) list;
      (** (leaf index, record bytes) of each accepted degraded
          attestation: the next {!audit_verified} fast path must find
          exactly these bytes at these leaves — and errors otherwise —
          before [att_deferred] clears, so a log that acked under
          brownout without appending the record is caught one audit
          later *)
}

val create :
  ?policy:Transport.policy ->
  ?net:Larch_net.Netsim.t ->
  client_id:string ->
  account_password:string ->
  log:Log_service.t ->
  rand_bytes:(int -> string) ->
  unit ->
  t
(** A fresh, unenrolled client bound to a log service.  [rand_bytes] is the
    randomness source (see {!Larch_hash.Drbg.system}).  [policy] sets the
    transport retry policy (default {!Transport.default_policy}); [net]
    models link latency/bandwidth for injected-fault timeout accounting. *)

val resync : t -> unit
(** Abandon any half-finished log session after a transport failure:
    rolls the log's volatile signing state back (burning possibly-leaked
    presignatures forward) and re-adopts the log's password identifier
    list.  A no-op unless the previous operation failed mid-flight. *)

val set_domains : t -> int -> unit
(** Number of domains (cores) the client uses for ZKBoo proving. *)

(** {1 Step 1: enrollment} *)

val enroll : ?presignature_count:int -> t -> unit
(** One-time enrollment with the log service: creates the log account,
    generates archive keys and commitments for all three methods, and ships
    the initial presignature batch (default 100). *)

(** {1 Presignature management (§3.3)} *)

val presignatures_remaining : t -> int

val top_up_presignatures : t -> count:int -> unit
(** Generate a fresh batch and stage it at the log; it activates only after
    the log's objection window elapses. *)

val object_to_presignatures : t -> int
(** Disavow all staged batches (authenticated with the log-account
    credential); returns how many were cancelled. *)

(** {1 Step 2: registration} *)

val register_fido2 : t -> rp_name:string -> Point.t
(** Derive a fresh key share for [rp_name]; returns the aggregated public
    key to hand to the relying party.  Requires no log interaction. *)

val register_totp :
  ?algo:Larch_auth.Totp.algo -> t -> rp_name:string -> totp_key:string -> unit
(** Split the relying party's 20-byte TOTP secret and ship the log its
    share under a fresh random identifier. *)

val register_password : ?legacy:string -> t -> rp_name:string -> string
(** Register a password credential and return the password to set at the
    relying party: a fresh random one by default, or [legacy] imported
    verbatim (with the paper's caveat that reused legacy passwords weaken
    the logging guarantee). *)

(** {1 Step 3: authentication} *)

exception Log_misbehaved of string
(** Raised when the log service fails its own proof obligations (MAC check,
    DLEQ proof, commitment opening, or the per-authentication inclusion
    attestation). *)

val authenticate_fido2 : t -> rp_name:string -> challenge:string -> Larch_auth.Fido2.assertion
(** Full split-secret FIDO2 authentication: proves the encrypted log record
    well-formed in zero knowledge, then runs the two-party ECDSA protocol;
    returns the assertion for the relying party.
    @raise Types.Protocol_error if the log refuses (policy, proofs, presignatures)
    @raise Log_misbehaved if the log cheats in the signing protocol *)

val authenticate_totp_detailed : t -> rp_name:string -> time:float -> Totp_protocol.outcome
(** TOTP authentication via garbled-circuit 2PC; the outcome carries the
    code plus phase timings for the benchmarks. *)

val authenticate_totp : t -> rp_name:string -> time:float -> int
(** The 6-digit TOTP code for [rp_name] at [time]. *)

val authenticate_password : t -> rp_name:string -> string
(** Recompute the password for [rp_name] with the log's help; the password
    is never stored and every call leaves a log record. *)

(** {1 Step 4: auditing} *)

type audit_entry = {
  time : float;
  ip : string;
  method_ : Types.auth_method;
  rp : string option; (** [None] when the record names no known party *)
}

val audit : t -> audit_entry list
(** Download and decrypt the complete authentication history. *)

val audit_verified : t -> (audit_entry list, string) result
(** Like {!audit}, but verified.  Fast path: download only the records
    since the last verified tree size and check the signed tree head, a
    consistency proof old-head → new-head, and one inclusion proof per
    new record — O(log n) hashing per audit.  On any mismatch, fall back
    to the full download and the legacy hash-chain scan, and report the
    anomaly (rollback, rewrite, or a tree/chain equivocation) as
    [Error].  The verified state only advances on the fast path. *)

val detect_anomalies : t -> expected:(Types.auth_method * string) list -> audit_entry list
(** Entries in the log that the client did not initiate, given the activity
    the user believes happened: evidence of device compromise. *)

(** {1 Revocation and migration (§9)} *)

val revoke_all : t -> unit
(** Delete the log-side shares for every method; any stolen device state
    becomes unusable (the log refuses to participate). *)

val migrate_fido2 : t -> unit
(** Re-share the FIDO2 signing key with the log (shift by δ): public keys
    are unchanged, old-device shares become useless. *)

(** {1 Accounting} *)

val channel_snapshot : t -> Channel.snapshot
val reset_channels : t -> unit

(**/**)

(* Internal accessors used by the protocol drivers and the test suite. *)
val now : unit -> float
val send_c2l : t -> string -> unit
val send_l2c : t -> string -> unit
val fido2_side : t -> fido2_side
val totp_side : t -> totp_side
val pw_side : t -> pw_side
