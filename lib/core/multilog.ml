(* Splitting trust across multiple log services (§6).

   The user enrolls with n logs and picks a threshold t: authentication
   succeeds whenever t logs are online, and auditing is complete whenever
   n − t + 1 logs are reachable (any t-subset that served an authentication
   intersects any (n−t+1)-subset).

   Implemented in full for passwords: the client (trusted at enrollment)
   deals Shamir shares k_i of the joint key k to the logs; per
   authentication it collects y_i = c₂^(k_i) from any t logs and
   recombines c₂^k in the exponent with Lagrange coefficients.  Every
   participating log verifies the same one-out-of-many proofs and stores
   the same encrypted record.

   Each log sits behind its own {!Larch_net.Transport}, so a log can be
   taken down administratively ({!set_online}) or given a fault injector
   ({!set_injector}); authentication fails over from unreachable logs to
   any other online subset of size t mid-flight.

   FIDO2/TOTP generalize the same way via threshold ECDSA / multi-party GC
   (the paper defers to existing protocols [24, 80, 13]); this module
   exposes the password deployment plus the availability/audit quorum
   machinery shared by all methods. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Shamir = Larch_mpc.Shamir
module Channel = Larch_net.Channel
module Transport = Larch_net.Transport
module Events = Larch_obs.Events
module Merkle = Larch_merkle.Merkle

(* Per-log circuit breaker: consecutive overload/timeout failures trip it
   open for a cooldown, during which [authenticate] routes around the log
   without spending a transport attempt on it; after the cooldown one
   probe request is allowed through (half-open) — success closes the
   breaker, failure re-trips it for another cooldown.  Garbled responses
   do not count: corruption is damage in flight, not replica sickness. *)
type breaker = {
  mutable consecutive : int;
  mutable open_until : float; (* simulated time the cooldown ends; 0 = closed *)
  mutable trips : int;
}

type t = {
  logs : Log_service.t array;
  transports : Transport.t array;
  threshold : int;
  online : bool array;
  rand : int -> string;
  breakers : breaker array;
  breaker_threshold : int; (* consecutive failures to trip; 0 disables *)
  breaker_cooldown : float; (* simulated seconds a tripped breaker stays open *)
}

(* With [disk] given, each of the n logs owns an independent store on the
   shared disk (directories log0/, log1/, …): a restart of log i recovers
   its own snapshot + WAL without touching its peers. *)
let create ?policy ?net ?disk ?checkpoint_every ?(breaker_threshold = 0)
    ?(breaker_cooldown = 5.) ~(n : int) ~(threshold : int) ~(rand_bytes : int -> string) () : t =
  if threshold < 1 || threshold > n then invalid_arg "Multilog.create: bad threshold";
  let logs =
    Array.init n (fun i ->
        let store =
          Option.map
            (fun disk -> Larch_store.Store.open_ ~disk ~dir:(Printf.sprintf "log%d" i) ())
            disk
        in
        Log_service.create ?store ?checkpoint_every ~rand_bytes ())
  in
  let transports =
    Array.init n (fun i ->
        let label = Printf.sprintf "log%d" i in
        let tr = Transport.create ~label ?policy ?net (Channel.create ~label ()) in
        Transport.on_restart tr (fun () -> Log_service.restart logs.(i));
        tr)
  in
  {
    logs;
    transports;
    threshold;
    online = Array.make n true;
    rand = rand_bytes;
    breakers = Array.init n (fun _ -> { consecutive = 0; open_until = 0.; trips = 0 });
    breaker_threshold;
    breaker_cooldown;
  }

let n_logs (t : t) = Array.length t.logs

let breaker_open (t : t) (i : int) : bool =
  Larch_util.Clock.now () < t.breakers.(i).open_until

let breaker_trips (t : t) (i : int) : int = t.breakers.(i).trips

let breaker_note_ok (t : t) (i : int) ~(client : string) : unit =
  let b = t.breakers.(i) in
  if b.open_until > 0. then
    Events.emit ~severity:Events.Info ~method_:"password" ~client Events.Failover
      (Printf.sprintf "log%d circuit closed (probe succeeded)" i);
  b.consecutive <- 0;
  b.open_until <- 0.

(* Only expensive failures count: timeouts and sheds burn the caller's
   attempt budget, so routing around them saves real time.  Admin-down
   ([Unavailable]) already fails fast — tripping on it would keep a
   breaker open across deliberate up/down transitions — and [Garbled]
   is corruption, not load. *)
let breaker_counts = function
  | Transport.Timeout | Transport.Overloaded _ -> true
  | Transport.Unavailable | Transport.Garbled _ -> false

let breaker_note_failure (t : t) (i : int) ~(client : string) (last : Transport.failure) : unit =
  if t.breaker_threshold > 0 && breaker_counts last then begin
    let b = t.breakers.(i) in
    let now = Larch_util.Clock.now () in
    (* a failed half-open probe re-trips immediately *)
    let half_open = b.open_until > 0. && now >= b.open_until in
    b.consecutive <- b.consecutive + 1;
    if b.consecutive >= t.breaker_threshold || half_open then begin
      b.open_until <- now +. t.breaker_cooldown;
      b.trips <- b.trips + 1;
      Larch_obs.Metrics.inc
        (Larch_obs.Metrics.counter Larch_obs.Metrics.default "multilog.breaker.trips");
      Events.emit ~severity:Events.Warn ~method_:"password" ~client Events.Failover
        (Printf.sprintf "log%d circuit opened for %.1fs (%s after %d consecutive failures)" i
           t.breaker_cooldown
           (Transport.failure_to_string last)
           b.consecutive)
    end
  end

let set_online (t : t) (i : int) (up : bool) =
  t.online.(i) <- up;
  Transport.set_admin_down t.transports.(i) (not up)

let set_injector (t : t) (i : int) inj = Transport.set_injector t.transports.(i) inj

let online_indices (t : t) : int list =
  List.filter (fun i -> t.online.(i)) (List.init (n_logs t) (fun i -> i))

type client = {
  client_id : string;
  account_password : string;
  x : Scalar.t; (* ElGamal archive key *)
  x_pub : Point.t;
  k_pub : Point.t; (* K = g^k for the joint key *)
  mutable ids : string list;
  creds : (string, string * Point.t) Hashtbl.t; (* rp -> (id, k_id) *)
  names : (string, string) Hashtbl.t; (* Point.encode Hash(id) -> rp *)
}

exception Unavailable of string

(* Best-effort revocation at every reachable log; unreachable logs are
   skipped (their shares die with the client's account token anyway). *)
let revoke (t : t) (c : client) : unit =
  Array.iteri
    (fun i log ->
      try
        Transport.invoke t.transports.(i) ~op:"revoke" (fun () ->
            Log_service.revoke_all log ~client_id:c.client_id ~token:c.account_password)
      with Transport.Error _ | Types.Protocol_error _ -> ())
    t.logs;
  Hashtbl.reset c.creds;
  Hashtbl.reset c.names;
  c.ids <- []

(* Enrollment requires all n logs (one-time).  A failure partway rolls the
   already-enrolled logs back so the client can re-enroll cleanly. *)
let enroll (t : t) ~(client_id : string) ~(account_password : string) : client =
  let x, x_pub = Password_protocol.client_gen ~rand_bytes:t.rand in
  let k = Scalar.random_nonzero ~rand_bytes:t.rand in
  let shares = Shamir.split ~threshold:t.threshold ~n:(n_logs t) k ~rand_bytes:t.rand in
  let enrolled = ref [] in
  (try
     List.iteri
       (fun i share ->
         Transport.invoke t.transports.(i) ~op:"enroll" (fun () ->
             Log_service.enroll t.logs.(i) ~client_id ~account_password;
             ignore
               (Log_service.enroll_password_share t.logs.(i) ~client_id ~client_pub:x_pub
                  ~k_share:share.Shamir.value));
         enrolled := i :: !enrolled)
       shares
   with e ->
     List.iter
       (fun i ->
         try
           Transport.invoke t.transports.(i) ~op:"revoke" (fun () ->
               Log_service.revoke_all t.logs.(i) ~client_id ~token:account_password)
         with _ -> ())
       !enrolled;
     raise e);
  (* the client deletes k after dealing the shares *)
  {
    client_id;
    account_password;
    x;
    x_pub;
    k_pub = Point.mul_base k;
    ids = [];
    creds = Hashtbl.create 8;
    names = Hashtbl.create 8;
  }

(* Registration goes to every log so their identifier sets stay aligned;
   the client recombines Hash(id)^k from the first t responses.  A failure
   partway unregisters the identifier from the logs that already stored
   it, keeping all n identifier lists aligned. *)
let register (t : t) (c : client) ~(rp_name : string) : string =
  if Hashtbl.mem c.creds rp_name then Types.fail "already registered: %s" rp_name;
  let online = online_indices t in
  if List.length online < n_logs t then Types.fail "registration requires all logs online";
  let id = t.rand Password_protocol.id_len in
  (* every log stores the id and replies with Hash(id)^(k_i) *)
  let ys = Array.make (n_logs t) Point.infinity in
  let stored = ref [] in
  (try
     Array.iteri
       (fun i log ->
         ys.(i) <-
           Transport.invoke t.transports.(i) ~op:"pw.register" (fun () ->
               Log_service.pw_register log ~client_id:c.client_id ~id);
         stored := i :: !stored)
       t.logs
   with e ->
     List.iter
       (fun i ->
         try
           Transport.invoke t.transports.(i) ~op:"pw.unregister" (fun () ->
               ignore
                 (Log_service.pw_unregister t.logs.(i) ~client_id:c.client_id
                    ~token:c.account_password ~id))
         with _ -> ())
       !stored;
     raise e);
  let idxs = List.init t.threshold (fun i -> i + 1) in
  let h_id_k =
    List.fold_left
      (fun acc i ->
        Point.add acc (Point.mul (Shamir.lagrange_coefficient ~at:i idxs) ys.(i - 1)))
      Point.infinity idxs
  in
  let k_id = Point.mul_base (Scalar.random_nonzero ~rand_bytes:t.rand) in
  c.ids <- c.ids @ [ id ];
  Hashtbl.replace c.creds rp_name (id, k_id);
  Hashtbl.replace c.names (Point.encode (Larch_ec.Hash_to_curve.hash id)) rp_name;
  Password_protocol.password_string (Password_protocol.finish_register ~k_id ~y:h_id_k)

(* Authentication against any t logs, failing over from logs that are
   down or whose transport gives up to the remaining candidates. *)
let authenticate (t : t) (c : client) ~(rp_name : string) ~(now : float) : string =
  let id, k_id =
    match Hashtbl.find_opt c.creds rp_name with
    | Some v -> v
    | None -> Types.fail "not registered: %s" rp_name
  in
  let online = online_indices t in
  if List.length online < t.threshold then
    raise
      (Unavailable
         (Printf.sprintf "only %d of %d required logs online" (List.length online) t.threshold));
  let idx =
    match List.find_index (fun i -> i = id) c.ids with
    | Some i -> i
    | None -> Types.fail "identifier missing"
  in
  let r, req = Password_protocol.client_auth ~idx ~x:c.x ~ids:c.ids ~rand_bytes:t.rand in
  let shares = ref [] in
  let failed = ref [] in
  let rec gather = function
    | [] -> ()
    | _ when List.length !shares >= t.threshold -> ()
    | i :: rest when breaker_open t i ->
        (* the breaker is open: route around the sick replica without
           spending transport attempts (or its retry backoff) on it *)
        failed := i :: !failed;
        Larch_obs.Metrics.inc
          (Larch_obs.Metrics.counter Larch_obs.Metrics.default "multilog.breaker.skips");
        Events.emit ~severity:Events.Info ~method_:"password" ~client:c.client_id Events.Failover
          (Printf.sprintf "log%d skipped, circuit open (%d/%d shares)" i (List.length !shares)
             t.threshold);
        gather rest
    | i :: rest ->
        (match
           Transport.invoke t.transports.(i) ~op:"pw.auth" (fun () ->
               let y, _dleq, _att =
                 Log_service.pw_auth t.logs.(i) ~client_id:c.client_id ~ip:"multilog" ~now req
               in
               y)
         with
        | y ->
            breaker_note_ok t i ~client:c.client_id;
            shares := (i + 1, y) :: !shares
        | exception Transport.Error err ->
            failed := i :: !failed;
            breaker_note_failure t i ~client:c.client_id err.Transport.last;
            Larch_obs.Metrics.inc
              (Larch_obs.Metrics.counter Larch_obs.Metrics.default "multilog.failovers");
            Events.emit ~severity:Events.Warn ~method_:"password" ~client:c.client_id
              Events.Failover
              (Printf.sprintf "log%d unreachable, failing over (%d/%d shares)" i
                 (List.length !shares) t.threshold));
        gather rest
  in
  gather (List.init (n_logs t) (fun i -> i));
  let shares = List.rev !shares in
  if List.length shares < t.threshold then
    raise
      (Unavailable
         (Printf.sprintf "only %d of %d required logs reachable" (List.length shares) t.threshold));
  let lag_idxs = List.map fst shares in
  let y_combined =
    List.fold_left
      (fun acc (i, y) -> Point.add acc (Point.mul (Shamir.lagrange_coefficient ~at:i lag_idxs) y))
      Point.infinity shares
  in
  let pw = Password_protocol.finish_auth ~x:c.x ~log_pub:c.k_pub ~r ~k_id ~y:y_combined in
  Password_protocol.password_string pw

(* Audit: union of the records of all reachable logs, deduplicated by
   ciphertext.  Returns the entries plus whether coverage is guaranteed
   complete (>= n - t + 1 logs reachable). *)
type audit_result = { entries : (float * string option) list; complete : bool }

let audit (t : t) (c : client) : audit_result =
  let seen = Hashtbl.create 64 in
  let entries = ref [] in
  let reached = ref 0 in
  Array.iteri
    (fun i log ->
      match
        Transport.invoke t.transports.(i) ~op:"audit" (fun () ->
            Log_service.audit log ~client_id:c.client_id ~token:c.account_password)
      with
      | exception Transport.Error _ -> ()
      | records ->
          incr reached;
          List.iter
            (fun (r : Record.t) ->
              match r.Record.payload with
              | Record.Elgamal ct ->
                  let key = Larch_ec.Elgamal.encode ct in
                  if not (Hashtbl.mem seen key) then begin
                    Hashtbl.replace seen key ();
                    let h = Password_protocol.decrypt_record ~x:c.x ct in
                    entries :=
                      (r.Record.time, Hashtbl.find_opt c.names (Point.encode h)) :: !entries
                  end
              | Record.Symmetric _ -> ())
            records)
    t.logs;
  { entries = List.rev !entries; complete = !reached >= n_logs t - t.threshold + 1 }

(* --- split-view detection across replicas --- *)

(* Every participating log stores the same records in the same order, so
   their Merkle trees must agree: for any two reachable logs, the smaller
   tree must be a consistent prefix of the larger (equal sizes: equal
   roots).  A log that shows this client a forked history fails the
   consistency check against every honest replica, so with ≥3 reachable
   logs the culprit is the one in multiple bad pairs. *)
type split_view = {
  heads : (int * Merkle.Sth.t) list; (* reachable logs and their verified heads *)
  checked_pairs : int;
  bad_pairs : (int * int) list; (* pairs whose trees are not prefix-consistent *)
  suspects : int list; (* logs implicated by ≥2 bad pairs or a bad signature *)
}

let check_split_view (t : t) (c : client) : split_view =
  let heads = ref [] in
  let sig_bad = ref [] in
  Array.iteri
    (fun i log ->
      match
        Transport.invoke t.transports.(i) ~op:"tree_head" (fun () ->
            Log_service.tree_head log ~client_id:c.client_id ~token:c.account_password)
      with
      | exception Transport.Error _ -> ()
      | sth ->
          if Merkle.Sth.verify ~pk:(Log_service.sth_pub log) ~client_id:c.client_id sth then
            heads := (i, sth) :: !heads
          else sig_bad := i :: !sig_bad)
    t.logs;
  let heads = List.rev !heads in
  let checked = ref 0 in
  let bad = ref [] in
  List.iteri
    (fun a (i, (si : Merkle.Sth.t)) ->
      List.iteri
        (fun b (j, (sj : Merkle.Sth.t)) ->
          if b > a then begin
            incr checked;
            (* ask the log with the larger tree to prove it extends the
               smaller one *)
            let (lo, slo), (hi, shi) =
              if si.Merkle.Sth.size <= sj.Merkle.Sth.size then ((i, si), (j, sj))
              else ((j, sj), (i, si))
            in
            let consistent =
              match
                Transport.invoke t.transports.(hi) ~op:"consistency" (fun () ->
                    Log_service.consistency_proof t.logs.(hi) ~client_id:c.client_id
                      ~token:c.account_password ~old_size:slo.Merkle.Sth.size)
              with
              | exception (Transport.Error _ | Types.Protocol_error _) -> false
              | proof ->
                  Merkle.verify_consistency ~old_root:slo.Merkle.Sth.root
                    ~old_size:slo.Merkle.Sth.size ~new_root:shi.Merkle.Sth.root
                    ~new_size:shi.Merkle.Sth.size ~proof
            in
            if not consistent then begin
              bad := (lo, hi) :: !bad;
              Events.emit ~severity:Events.Warn ~client:c.client_id Events.Audit
                (Printf.sprintf "split view: log%d and log%d present inconsistent trees" lo hi)
            end
          end)
        heads)
    heads;
  let bad_pairs = List.rev !bad in
  let implicated i = List.length (List.filter (fun (a, b) -> a = i || b = i) bad_pairs) in
  let suspects =
    List.sort_uniq compare
      (!sig_bad @ List.filter_map (fun (i, _) -> if implicated i >= 2 then Some i else None) heads)
  in
  { heads; checked_pairs = !checked; bad_pairs; suspects }
