(* The larch client ("browser extension"): owns the archive keys and
   per-relying-party secrets, drives the three split-secret authentication
   protocols against a log service over metered channels, and decrypts the
   audit log.

   Every message that would cross the network is serialized with the real
   wire codecs and pushed through [chan] (or the TOTP offline/online
   channels), so the byte counts behind Table 6 / Figure 5 come from actual
   encodings. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Channel = Larch_net.Channel
module Tpe = Two_party_ecdsa
module Statements = Larch_circuit.Larch_statements
module Bytesx = Larch_util.Bytesx
module Trace = Larch_obs.Trace

type fido2_cred = { y : Scalar.t; pk : Point.t; mutable counter : int }
type totp_cred = { tid : string; kclient : string; algo : Larch_auth.Totp.algo }
type pw_cred = { pid : string; k_id : Point.t }

type fido2_side = {
  fk : string; (* 32B archive key *)
  fr : string; (* 16B commitment nonce *)
  record_sk : Scalar.t; (* record-integrity signing key (§7) *)
  log_pub : Point.t; (* X = g^x, the log's signing share *)
  mutable batches : Tpe.client_batch list;
  fido2_creds : (string, fido2_cred) Hashtbl.t; (* rp_name -> cred *)
  fido2_names : (string, string) Hashtbl.t; (* rp_id_hash -> rp_name *)
}

type totp_side = {
  tk : string;
  tr : string;
  totp_creds : (string, totp_cred) Hashtbl.t; (* rp_name -> cred *)
  totp_names : (string, string) Hashtbl.t; (* 16B id -> rp_name *)
}

type pw_side = {
  x : Scalar.t; (* ElGamal archive secret *)
  x_pub : Point.t;
  log_k_pub : Point.t; (* K = g^k *)
  mutable pw_ids : string list; (* registration order, mirrors the log *)
  pw_creds : (string, pw_cred) Hashtbl.t; (* rp_name -> cred *)
  pw_names : (string, string) Hashtbl.t; (* Point.encode Hash(id) -> rp_name *)
}

type t = {
  client_id : string;
  account_password : string;
  rand : int -> string;
  log : Log_service.t;
  chan : Channel.t; (* FIDO2/password auth traffic *)
  totp_offline : Channel.t;
  totp_online : Channel.t;
  mutable ip : string;
  mutable domains : int; (* client cores for ZKBoo proving *)
  mutable fido2 : fido2_side option;
  mutable totp : totp_side option;
  mutable pw : pw_side option;
  mutable last_chain : (string * int) option; (* last verified audit head *)
}

let create ~(client_id : string) ~(account_password : string) ~(log : Log_service.t)
    ~(rand_bytes : int -> string) () : t =
  {
    client_id;
    account_password;
    rand = rand_bytes;
    log;
    chan = Channel.create ~label:"fido2" ();
    totp_offline = Channel.create ~label:"totp.offline" ();
    totp_online = Channel.create ~label:"totp.online" ();
    ip = "198.51.100.7";
    domains = 1;
    fido2 = None;
    totp = None;
    pw = None;
    last_chain = None;
  }

let set_domains (t : t) (n : int) = t.domains <- max 1 n

let now () = Larch_util.Clock.now ()

let send_c2l (t : t) (payload : string) = ignore (Channel.send t.chan Channel.Client_to_log payload)
let send_l2c (t : t) (payload : string) = ignore (Channel.send t.chan Channel.Log_to_client payload)

(* --- Step 1: enrollment --- *)

let enroll ?(presignature_count = 100) (t : t) : unit =
  Trace.with_span "client.enroll" @@ fun () ->
  Trace.add_int "presigs" presignature_count;
  Log_service.enroll t.log ~client_id:t.client_id ~account_password:t.account_password;
  (* FIDO2: archive key + commitment, record key, presignature batch *)
  let fk = t.rand 32 and fr = t.rand 16 in
  let cm = Larch_hash.Sha256.digest (fk ^ fr) in
  let record_sk, record_vk = Larch_ec.Ecdsa.keygen ~rand_bytes:t.rand in
  let cbatch, lbatch = Tpe.presign_batch ~count:presignature_count ~rand_bytes:t.rand in
  send_c2l t (String.make (Tpe.log_batch_wire_bytes lbatch) '\000');
  let log_pub = Log_service.enroll_fido2 t.log ~client_id:t.client_id ~cm ~record_vk ~batch:lbatch in
  t.fido2 <-
    Some
      {
        fk;
        fr;
        record_sk;
        log_pub;
        batches = [ cbatch ];
        fido2_creds = Hashtbl.create 8;
        fido2_names = Hashtbl.create 8;
      };
  (* TOTP: its own archive key + commitment *)
  let tk = t.rand 32 and tr = t.rand 16 in
  Log_service.enroll_totp t.log ~client_id:t.client_id ~cm:(Larch_hash.Sha256.digest (tk ^ tr));
  t.totp <-
    Some { tk; tr; totp_creds = Hashtbl.create 8; totp_names = Hashtbl.create 8 };
  (* passwords: ElGamal archive keypair *)
  let x, x_pub = Password_protocol.client_gen ~rand_bytes:t.rand in
  let log_k_pub = Log_service.enroll_password t.log ~client_id:t.client_id ~client_pub:x_pub in
  t.pw <-
    Some
      {
        x;
        x_pub;
        log_k_pub;
        pw_ids = [];
        pw_creds = Hashtbl.create 8;
        pw_names = Hashtbl.create 8;
      }

let fido2_side (t : t) = match t.fido2 with Some f -> f | None -> Types.fail "not enrolled (fido2)"
let totp_side (t : t) = match t.totp with Some s -> s | None -> Types.fail "not enrolled (totp)"
let pw_side (t : t) = match t.pw with Some s -> s | None -> Types.fail "not enrolled (password)"

(* --- presignature management (§3.3) --- *)

let presignatures_remaining (t : t) : int =
  List.fold_left (fun acc b -> acc + Tpe.client_batch_remaining b) 0 (fido2_side t).batches

(* Generate and stage a fresh batch; it becomes active at the log only
   after the objection window. *)
let top_up_presignatures (t : t) ~(count : int) : unit =
  let f = fido2_side t in
  let cbatch, lbatch = Tpe.presign_batch ~count ~rand_bytes:t.rand in
  send_c2l t (String.make (Tpe.log_batch_wire_bytes lbatch) '\000');
  Log_service.stage_presignatures t.log ~client_id:t.client_id ~batch:lbatch ~now:(now ());
  f.batches <- f.batches @ [ cbatch ]

let object_to_presignatures (t : t) : int =
  Log_service.object_to_pending t.log ~client_id:t.client_id ~token:t.account_password

(* --- Step 2: registration --- *)

(* FIDO2 registration is log-free (§3.2): derive a fresh key share and hand
   the aggregated public key to the relying party. *)
let register_fido2 (t : t) ~(rp_name : string) : Point.t =
  let f = fido2_side t in
  if Hashtbl.mem f.fido2_creds rp_name then Types.fail "already registered (fido2): %s" rp_name;
  let y, pk = Tpe.client_keygen ~log_pub:f.log_pub ~rand_bytes:t.rand in
  Hashtbl.replace f.fido2_creds rp_name { y; pk; counter = 0 };
  Hashtbl.replace f.fido2_names (Larch_auth.Fido2.rp_id_hash rp_name) rp_name;
  pk

(* TOTP registration: split the relying party's secret, ship the log its
   share under a random 128-bit identifier. *)
let register_totp ?(algo = Larch_auth.Totp.SHA1) (t : t) ~(rp_name : string) ~(totp_key : string)
    : unit =
  let s = totp_side t in
  if Hashtbl.mem s.totp_creds rp_name then Types.fail "already registered (totp): %s" rp_name;
  if String.length totp_key <> Statements.totp_key_len then
    Types.fail "totp key must be %d bytes" Statements.totp_key_len;
  let tid = t.rand Statements.totp_id_len in
  let kclient, klog = Larch_mpc.Sharing.xor totp_key ~rand_bytes:t.rand in
  let reg = { Totp_protocol.id = tid; klog } in
  send_c2l t (Totp_protocol.encode_registration reg);
  Log_service.totp_register t.log ~client_id:t.client_id reg;
  Hashtbl.replace s.totp_creds rp_name { tid; kclient; algo };
  Hashtbl.replace s.totp_names tid rp_name

(* Password registration; returns the password to set at the relying
   party.  [legacy] imports an existing password instead of generating a
   fresh random one (§5). *)
let register_password ?legacy (t : t) ~(rp_name : string) : string =
  let s = pw_side t in
  if Hashtbl.mem s.pw_creds rp_name then Types.fail "already registered (password): %s" rp_name;
  let pid, fresh_k_id = Password_protocol.client_register ~rand_bytes:t.rand in
  send_c2l t pid;
  let y = Log_service.pw_register t.log ~client_id:t.client_id ~id:pid in
  send_l2c t (Point.encode y);
  let k_id, pw_point =
    match legacy with
    | None -> (fresh_k_id, Password_protocol.finish_register ~k_id:fresh_k_id ~y)
    | Some pw ->
        let embedded = Password_protocol.embed_password pw in
        (Password_protocol.import_legacy ~pw:embedded ~y, embedded)
  in
  s.pw_ids <- s.pw_ids @ [ pid ];
  Hashtbl.replace s.pw_creds rp_name { pid; k_id };
  Hashtbl.replace s.pw_names (Point.encode (Larch_ec.Hash_to_curve.hash pid)) rp_name;
  (* the client deletes y and pw after registration (Figure 11) *)
  Password_protocol.password_string pw_point

(* --- Step 3: authentication --- *)

exception Log_misbehaved of string

(* FIDO2: build the statement, prove it, and run Π_Sign with the log. *)
let authenticate_fido2 (t : t) ~(rp_name : string) ~(challenge : string) :
    Larch_auth.Fido2.assertion =
  Trace.with_span "client.fido2.auth" @@ fun () ->
  let f = fido2_side t in
  let cred =
    match Hashtbl.find_opt f.fido2_creds rp_name with
    | Some c -> c
    | None -> Types.fail "not registered (fido2): %s" rp_name
  in
  cred.counter <- cred.counter + 1;
  let payload = Larch_auth.Fido2.make_payload ~rp_name ~challenge ~counter:cred.counter in
  let chal = Larch_auth.Fido2.statement_challenge payload in
  let dgst = Larch_auth.Fido2.signing_digest payload in
  let rp_hash = payload.Larch_auth.Fido2.rp_hash in
  (* encrypted record + integrity signature *)
  let ct_nonce = t.rand 12 in
  let ct = Larch_cipher.Ctr.sha_ctr ~key:f.fk ~nonce:ct_nonce rp_hash in
  let record_sig = Larch_ec.Ecdsa.encode (Larch_ec.Ecdsa.sign ~sk:f.record_sk (ct_nonce ^ ct)) in
  (* the zero-knowledge statement *)
  let witness =
    Statements.fido2_witness_bits
      { Statements.k = f.fk; r = f.fr; id = rp_hash; chal; nonce = ct_nonce }
  in
  let circuit = Lazy.force Statements.fido2_circuit in
  let proof =
    Larch_zkboo.Zkboo.prove ~domains:t.domains ~circuit ~witness
      ~statement_tag:Fido2_protocol.statement_tag ~rand_bytes:t.rand ()
  in
  (* consume the next presignature *)
  let signature =
  Trace.with_span "ecdsa2p.sign.client" @@ fun () ->
  let batch =
    match List.find_opt (fun b -> Tpe.client_batch_remaining b > 0) f.batches with
    | Some b -> b
    | None -> Types.fail "out of presignatures"
  in
  let idx = batch.Tpe.cnext in
  batch.Tpe.cnext <- idx + 1;
  let presig = batch.Tpe.centries.(idx) in
  let st =
    Tpe.init_party ~party:1
      ~inp:(Tpe.halfmul_input_of_client batch idx ~sk1:cred.y)
      ~cap_r:presig.Tpe.cap_r1 ~digest:dgst
  in
  let m1 = Tpe.round1 st in
  let req =
    {
      Fido2_protocol.dgst;
      ct_nonce;
      ct;
      record_sig;
      proof;
      presig_index = idx;
      hm_msg = m1;
    }
  in
  send_c2l t (Fido2_protocol.encode_auth_request req);
  let resp1 =
    Log_service.fido2_auth_begin ~domains:2 t.log ~client_id:t.client_id ~ip:t.ip ~now:(now ()) req
  in
  send_l2c t (Fido2_protocol.encode_auth_response1 resp1);
  let s0 = Scalar.of_bytes_be resp1.Fido2_protocol.s0 in
  let s1 = Tpe.round2 st ~own:m1 ~other:resp1.Fido2_protocol.hm_msg in
  let commit_c = Tpe.open_commit st ~other_s:s0 ~rand_bytes:t.rand in
  send_c2l t (Scalar.to_bytes_be s1 ^ commit_c.Larch_mpc.Spdz.commitment);
  let commit_l, reveal_l =
    Log_service.fido2_auth_commit t.log ~client_id:t.client_id ~s1 ~client_commit:commit_c
  in
  send_l2c t (commit_l.Larch_mpc.Spdz.commitment ^ Tpe.encode_reveal reveal_l);
  if not (Tpe.open_check st ~other_commit:commit_l ~other_reveal:reveal_l) then
    raise (Log_misbehaved "signing MAC check failed");
  let reveal_c = Tpe.open_reveal st in
  send_c2l t (Tpe.encode_reveal reveal_c);
  if not (Log_service.fido2_auth_finish t.log ~client_id:t.client_id ~client_reveal:reveal_c)
  then raise (Log_misbehaved "log rejected the opening");
  Tpe.signature st ~other_s:s0
  in
  { Larch_auth.Fido2.payload; signature }

(* TOTP: run the 2PC; returns the full outcome (code + phase timings). *)
let authenticate_totp_detailed (t : t) ~(rp_name : string) ~(time : float) :
    Totp_protocol.outcome =
  Trace.with_span "client.totp.auth" @@ fun () ->
  let s = totp_side t in
  let cred =
    match Hashtbl.find_opt s.totp_creds rp_name with
    | Some c -> c
    | None -> Types.fail "not registered (totp): %s" rp_name
  in
  let enc_nonce = t.rand 12 in
  let outcome =
    Log_service.totp_auth t.log ~client_id:t.client_id ~ip:t.ip ~now:(now ()) ~enc_nonce
      ~run:(fun ~cm ~registrations ~rand_log ->
        let pub =
          { Statements.cm; enc_nonce; time_counter = Larch_auth.Totp.counter_of_time time }
        in
        Totp_protocol.run_auth ~pub ~n_rps:(List.length registrations)
          ~client:(s.tk, s.tr, cred.tid, cred.kclient)
          ~registrations ~rand_client:t.rand ~rand_log ~offline:t.totp_offline
          ~online:t.totp_online)
  in
  outcome

let authenticate_totp (t : t) ~(rp_name : string) ~(time : float) : int =
  (authenticate_totp_detailed t ~rp_name ~time).Totp_protocol.code

(* Passwords: one-out-of-many proof, log exponentiation, recombination. *)
let authenticate_password (t : t) ~(rp_name : string) : string =
  Trace.with_span "client.pw.auth" @@ fun () ->
  let s = pw_side t in
  let cred =
    match Hashtbl.find_opt s.pw_creds rp_name with
    | Some c -> c
    | None -> Types.fail "not registered (password): %s" rp_name
  in
  let idx =
    match List.find_index (fun id -> id = cred.pid) s.pw_ids with
    | Some i -> i
    | None -> Types.fail "identifier missing from registration list"
  in
  let r, req = Password_protocol.client_auth ~idx ~x:s.x ~ids:s.pw_ids ~rand_bytes:t.rand in
  send_c2l t (Password_protocol.encode_auth_request req);
  let y, dleq =
    Log_service.pw_auth t.log ~client_id:t.client_id ~ip:t.ip ~now:(now ()) req
  in
  send_l2c t (Point.encode y ^ Larch_sigma.Dleq.encode dleq);
  (* check the log exponentiated with its registered key *)
  if
    not
      (Larch_sigma.Dleq.verify ~base1:Point.g ~base2:req.Password_protocol.ct.Larch_ec.Elgamal.c2
         ~public1:s.log_k_pub ~public2:y ~tag:"larch-pw-log" dleq)
  then raise (Log_misbehaved "log's DLEQ proof rejected");
  let pw_point = Password_protocol.finish_auth ~x:s.x ~log_pub:s.log_k_pub ~r ~k_id:cred.k_id ~y in
  (* the password is recomputed per authentication and not stored *)
  Password_protocol.password_string pw_point

(* --- Step 4: auditing --- *)

type audit_entry = {
  time : float;
  ip : string;
  method_ : Types.auth_method;
  rp : string option; (* None = the record names no relying party we know *)
}

let audit_of_records (t : t) (records : Record.t list) : audit_entry list =
  List.map
    (fun (r : Record.t) ->
      let rp =
        match (r.Record.method_, r.Record.payload) with
        | Types.Fido2, Record.Symmetric { nonce; ct; _ } -> (
            match t.fido2 with
            | None -> None
            | Some f ->
                let rp_hash = Larch_cipher.Ctr.sha_ctr ~key:f.fk ~nonce ct in
                Hashtbl.find_opt f.fido2_names rp_hash)
        | Types.Totp, Record.Symmetric { nonce; ct; _ } -> (
            match t.totp with
            | None -> None
            | Some s ->
                let keystream = Larch_hash.Sha256.digest (s.tk ^ nonce ^ Bytesx.be32 0) in
                let tid = Bytesx.xor ct (String.sub keystream 0 (String.length ct)) in
                Hashtbl.find_opt s.totp_names tid)
        | Types.Password, Record.Elgamal ct -> (
            match t.pw with
            | None -> None
            | Some s ->
                let h = Password_protocol.decrypt_record ~x:s.x ct in
                Hashtbl.find_opt s.pw_names (Point.encode h))
        | _ -> None
      in
      { time = r.Record.time; ip = r.Record.ip; method_ = r.Record.method_; rp })
    records

let audit (t : t) : audit_entry list =
  Trace.with_span "client.audit" @@ fun () ->
  audit_of_records t (Log_service.audit t.log ~client_id:t.client_id ~token:t.account_password)

(* Verified audit: recompute the per-client record hash chain, check it
   against the head the log reports, and check consistency with the last
   audit this client performed — detecting a log that rolls back or
   rewrites history (§9). *)
let audit_verified (t : t) : (audit_entry list, string) result =
  let records, head, len =
    Log_service.audit_with_head t.log ~client_id:t.client_id ~token:t.account_password
  in
  let chain_over rs =
    List.fold_left
      (fun h r -> Larch_hash.Sha256.digest_list [ "larch-chain"; h; Record.encode r ])
      (Larch_hash.Sha256.digest "larch-chain-genesis")
      rs
  in
  if List.length records <> len then Error "log reported inconsistent record count"
  else if not (Bytesx.ct_equal (chain_over records) head) then
    Error "record list does not match the log's chain head"
  else begin
    let prefix_ok =
      match t.last_chain with
      | None -> true
      | Some (old_head, old_len) ->
          old_len <= len
          && Bytesx.ct_equal (chain_over (List.filteri (fun i _ -> i < old_len) records)) old_head
    in
    if not prefix_ok then Error "log rolled back or rewrote previously audited records"
    else begin
      t.last_chain <- Some (head, len);
      Ok (audit_of_records t records)
    end
  end

(* Compare the log against locally expected activity: entries the client
   did not initiate are evidence of compromise. *)
let detect_anomalies (t : t) ~(expected : (Types.auth_method * string) list) : audit_entry list =
  let entries = audit t in
  let expected = ref expected in
  List.filter
    (fun e ->
      match e.rp with
      | None -> true
      | Some rp ->
          let key = (e.method_, rp) in
          if List.mem key !expected then begin
            (* consume one expected occurrence *)
            let rec remove = function
              | [] -> []
              | x :: rest when x = key -> rest
              | x :: rest -> x :: remove rest
            in
            expected := remove !expected;
            false
          end
          else true)
    entries

(* --- revocation & migration (§9) --- *)

let revoke_all (t : t) : unit =
  Log_service.revoke_all t.log ~client_id:t.client_id ~token:t.account_password;
  t.fido2 <- None;
  t.totp <- None;
  t.pw <- None

(* Move FIDO2 credentials to this (new) device state by re-sharing: the log
   shifts its share by δ, we shift every per-party share by -δ.  Public
   keys are unchanged; the old device's shares are now useless. *)
let migrate_fido2 (t : t) : unit =
  let f = fido2_side t in
  let delta = Scalar.random_nonzero ~rand_bytes:t.rand in
  Log_service.migrate_fido2 t.log ~client_id:t.client_id ~token:t.account_password ~delta;
  let log_pub' = Point.add f.log_pub (Point.mul_base delta) in
  Hashtbl.iter
    (fun name cred ->
      Hashtbl.replace f.fido2_creds name { cred with y = Scalar.sub cred.y delta })
    (Hashtbl.copy f.fido2_creds);
  t.fido2 <- Some { f with log_pub = log_pub' }

(* --- communication accounting --- *)

let channel_snapshot (t : t) = Channel.snapshot t.chan
let reset_channels (t : t) =
  Channel.reset t.chan;
  Channel.reset t.totp_offline;
  Channel.reset t.totp_online
