(* The larch client ("browser extension"): owns the archive keys and
   per-relying-party secrets, drives the three split-secret authentication
   protocols against a log service over metered channels, and decrypts the
   audit log.

   Every message that would cross the network is serialized with the real
   wire codecs and pushed through [chan] (or the TOTP offline/online
   channels), so the byte counts behind Table 6 / Figure 5 come from actual
   encodings. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Channel = Larch_net.Channel
module Transport = Larch_net.Transport
module Tpe = Two_party_ecdsa
module Statements = Larch_circuit.Larch_statements
module Bytesx = Larch_util.Bytesx
module Trace = Larch_obs.Trace
module Metrics = Larch_obs.Metrics
module Merkle = Larch_merkle.Merkle

let obs_on () = Larch_obs.Runtime.tracing_enabled ()
let m_inc name = Metrics.inc (Metrics.counter Metrics.default name)

type fido2_cred = { y : Scalar.t; pk : Point.t; mutable counter : int }
type totp_cred = { tid : string; kclient : string; algo : Larch_auth.Totp.algo }
type pw_cred = { pid : string; k_id : Point.t }

type fido2_side = {
  fk : string; (* 32B archive key *)
  fr : string; (* 16B commitment nonce *)
  record_sk : Scalar.t; (* record-integrity signing key (§7) *)
  log_pub : Point.t; (* X = g^x, the log's signing share *)
  mutable batches : Tpe.client_batch list;
  fido2_creds : (string, fido2_cred) Hashtbl.t; (* rp_name -> cred *)
  fido2_names : (string, string) Hashtbl.t; (* rp_id_hash -> rp_name *)
}

type totp_side = {
  tk : string;
  tr : string;
  totp_creds : (string, totp_cred) Hashtbl.t; (* rp_name -> cred *)
  totp_names : (string, string) Hashtbl.t; (* 16B id -> rp_name *)
}

type pw_side = {
  x : Scalar.t; (* ElGamal archive secret *)
  x_pub : Point.t;
  log_k_pub : Point.t; (* K = g^k *)
  mutable pw_ids : string list; (* registration order, mirrors the log *)
  pw_creds : (string, pw_cred) Hashtbl.t; (* rp_name -> cred *)
  pw_names : (string, string) Hashtbl.t; (* Point.encode Hash(id) -> rp_name *)
}

type t = {
  client_id : string;
  account_password : string;
  rand : int -> string;
  log : Log_service.t;
  chan : Channel.t; (* FIDO2/password auth traffic *)
  transport : Transport.t; (* every client↔log exchange rides this *)
  totp_offline : Channel.t;
  totp_online : Channel.t;
  mutable ip : string;
  mutable domains : int; (* client cores for ZKBoo proving *)
  mutable fido2 : fido2_side option;
  mutable totp : totp_side option;
  mutable pw : pw_side option;
  mutable last_chain : (string * int) option; (* last verified audit head *)
  sth_pub : Point.t; (* the log's tree-head verification key, pinned at create *)
  mutable last_sth : Merkle.Sth.t option; (* last tree head verified by an audit *)
  mutable audited : Record.t list; (* records covered by [last_sth], oldest first *)
  mutable dirty : bool; (* a transport failure may have left the log mid-session *)
  mutable att_deferred : bool;
      (* a brownout ack carried no inclusion proof; cleared by the next
         verified audit, which covers the deferred record *)
  mutable att_pending : (int * string) list;
      (* (leaf index, record bytes) of every degraded ack still awaiting
         inclusion verification: the next verified audit must show
         exactly these bytes at these leaves before the deferral clears,
         so a log that acked without appending fails that audit *)
}

let create ?policy ?net ~(client_id : string) ~(account_password : string)
    ~(log : Log_service.t) ~(rand_bytes : int -> string) () : t =
  let chan = Channel.create ~label:"fido2" () in
  let transport = Transport.create ?policy ?net ~label:"log" chan in
  (* a peer restart loses the log's volatile in-flight session state *)
  Transport.on_restart transport (fun () -> Log_service.restart log);
  {
    client_id;
    account_password;
    rand = rand_bytes;
    log;
    chan;
    transport;
    totp_offline = Channel.create ~label:"totp.offline" ();
    totp_online = Channel.create ~label:"totp.online" ();
    ip = "198.51.100.7";
    domains = 1;
    fido2 = None;
    totp = None;
    pw = None;
    last_chain = None;
    sth_pub = Log_service.sth_pub log;
    last_sth = None;
    audited = [];
    dirty = false;
    att_deferred = false;
    att_pending = [];
  }

let set_domains (t : t) (n : int) = t.domains <- max 1 n

let now () = Larch_util.Clock.now ()

let send_c2l (t : t) (payload : string) = ignore (Channel.send t.chan Channel.Client_to_log payload)
let send_l2c (t : t) (payload : string) = ignore (Channel.send t.chan Channel.Log_to_client payload)

(* --- transport failure discipline --- *)

(* [dirty] is set when a typed error escapes an operation while a fault
   injector is installed, or — on any path — when that error is an
   admission-control shed ([Overloaded]): either way the log may have been
   left mid-session.  The flag can never be set on a clean successful
   path, so checking it unconditionally is a zero-behavior change.  The
   next session start then resynchronizes with the log: the in-flight
   FIDO2 signing session is aborted with the presignature cursors aligned
   to the client's own count, and the password identifier list is adopted
   from the log (a registration whose ack was lost may live only there). *)
let overloaded_error = function
  | Transport.Error { Transport.last = Transport.Overloaded _; _ } -> true
  | _ -> false

let mark_dirty ?exn (t : t) =
  if Transport.faulty t.transport then t.dirty <- true
  else match exn with Some e when overloaded_error e -> t.dirty <- true | _ -> ()

let resync (t : t) : unit =
  if t.dirty then begin
    (match t.fido2 with
    | Some f ->
        let consumed = List.fold_left (fun acc b -> acc + b.Tpe.cnext) 0 f.batches in
        Transport.invoke t.transport ~op:"fido2.abort" (fun () ->
            Log_service.fido2_auth_abort t.log ~client_id:t.client_id ~consumed)
    | None -> ());
    (match t.pw with
    | Some s ->
        s.pw_ids <-
          Transport.invoke t.transport ~op:"pw.resync" (fun () ->
              Log_service.pw_registered_ids t.log ~client_id:t.client_id)
    | None -> ());
    t.dirty <- false
  end

(* --- Step 1: enrollment --- *)

let enroll ?(presignature_count = 100) (t : t) : unit =
  Trace.with_span "client.enroll" @@ fun () ->
  Trace.add_int "presigs" presignature_count;
  (* All client-side randomness is drawn before the first log exchange, so
     a retried step retransmits identical material and the log-side
     idempotency checks recognize it instead of rejecting a duplicate. *)
  let fk = t.rand 32 and fr = t.rand 16 in
  let cm = Larch_hash.Sha256.digest (fk ^ fr) in
  let record_sk, record_vk = Larch_ec.Ecdsa.keygen ~rand_bytes:t.rand in
  let cbatch, lbatch = Tpe.presign_batch ~count:presignature_count ~rand_bytes:t.rand in
  let tk = t.rand 32 and tr = t.rand 16 in
  let tcm = Larch_hash.Sha256.digest (tk ^ tr) in
  let x, x_pub = Password_protocol.client_gen ~rand_bytes:t.rand in
  try
    Transport.invoke t.transport ~op:"enroll.account" (fun () ->
        Log_service.enroll t.log ~client_id:t.client_id ~account_password:t.account_password);
    (* FIDO2: archive key + commitment, record key, presignature batch *)
    let log_pub =
      Transport.invoke t.transport ~op:"enroll.fido2" (fun () ->
          send_c2l t (String.make (Tpe.log_batch_wire_bytes lbatch) '\000');
          Log_service.enroll_fido2 t.log ~client_id:t.client_id ~cm ~record_vk ~batch:lbatch)
    in
    t.fido2 <-
      Some
        {
          fk;
          fr;
          record_sk;
          log_pub;
          batches = [ cbatch ];
          fido2_creds = Hashtbl.create 8;
          fido2_names = Hashtbl.create 8;
        };
    (* TOTP: its own archive key + commitment *)
    Transport.invoke t.transport ~op:"enroll.totp" (fun () ->
        Log_service.enroll_totp t.log ~client_id:t.client_id ~cm:tcm);
    t.totp <-
      Some { tk; tr; totp_creds = Hashtbl.create 8; totp_names = Hashtbl.create 8 };
    (* passwords: ElGamal archive keypair *)
    let log_k_pub =
      Transport.invoke t.transport ~op:"enroll.pw" (fun () ->
          Log_service.enroll_password t.log ~client_id:t.client_id ~client_pub:x_pub)
    in
    t.pw <-
      Some
        {
          x;
          x_pub;
          log_k_pub;
          pw_ids = [];
          pw_creds = Hashtbl.create 8;
          pw_names = Hashtbl.create 8;
        }
  with Transport.Error _ as e ->
    (* never leave half-enrolled state behind: best-effort server-side
       revocation, then a clean client, then the typed error *)
    (try Log_service.revoke_all t.log ~client_id:t.client_id ~token:t.account_password
     with _ -> ());
    t.fido2 <- None;
    t.totp <- None;
    t.pw <- None;
    raise e

let fido2_side (t : t) = match t.fido2 with Some f -> f | None -> Types.fail "not enrolled (fido2)"
let totp_side (t : t) = match t.totp with Some s -> s | None -> Types.fail "not enrolled (totp)"
let pw_side (t : t) = match t.pw with Some s -> s | None -> Types.fail "not enrolled (password)"

(* --- presignature management (§3.3) --- *)

let presignatures_remaining (t : t) : int =
  List.fold_left (fun acc b -> acc + Tpe.client_batch_remaining b) 0 (fido2_side t).batches

(* Generate and stage a fresh batch; it becomes active at the log only
   after the objection window. *)
let top_up_presignatures (t : t) ~(count : int) : unit =
  resync t;
  let f = fido2_side t in
  let cbatch, lbatch = Tpe.presign_batch ~count ~rand_bytes:t.rand in
  Transport.invoke t.transport ~op:"fido2.top_up" (fun () ->
      send_c2l t (String.make (Tpe.log_batch_wire_bytes lbatch) '\000');
      (* staging is idempotent on the batch value, so a retried invocation
         cannot double the inventory *)
      Log_service.stage_presignatures t.log ~client_id:t.client_id ~batch:lbatch ~now:(now ()));
  f.batches <- f.batches @ [ cbatch ]

let object_to_presignatures (t : t) : int =
  Log_service.object_to_pending t.log ~client_id:t.client_id ~token:t.account_password

(* --- Step 2: registration --- *)

(* FIDO2 registration is log-free (§3.2): derive a fresh key share and hand
   the aggregated public key to the relying party. *)
let register_fido2 (t : t) ~(rp_name : string) : Point.t =
  let f = fido2_side t in
  if Hashtbl.mem f.fido2_creds rp_name then Types.fail "already registered (fido2): %s" rp_name;
  let y, pk = Tpe.client_keygen ~log_pub:f.log_pub ~rand_bytes:t.rand in
  Hashtbl.replace f.fido2_creds rp_name { y; pk; counter = 0 };
  Hashtbl.replace f.fido2_names (Larch_auth.Fido2.rp_id_hash rp_name) rp_name;
  pk

(* TOTP registration: split the relying party's secret, ship the log its
   share under a random 128-bit identifier. *)
let register_totp ?(algo = Larch_auth.Totp.SHA1) (t : t) ~(rp_name : string) ~(totp_key : string)
    : unit =
  let s = totp_side t in
  if Hashtbl.mem s.totp_creds rp_name then Types.fail "already registered (totp): %s" rp_name;
  if String.length totp_key <> Statements.totp_key_len then
    Types.fail "totp key must be %d bytes" Statements.totp_key_len;
  let tid = t.rand Statements.totp_id_len in
  let kclient, klog = Larch_mpc.Sharing.xor totp_key ~rand_bytes:t.rand in
  let reg = { Totp_protocol.id = tid; klog } in
  Transport.post t.transport ~op:"totp.register"
    ~req:(Totp_protocol.encode_registration reg)
    (fun bytes ->
      match Totp_protocol.decode_registration bytes with
      | Some r -> Log_service.totp_register t.log ~client_id:t.client_id r
      | None -> raise (Transport.Reject "undecodable totp registration"));
  Hashtbl.replace s.totp_creds rp_name { tid; kclient; algo };
  Hashtbl.replace s.totp_names tid rp_name

(* Password registration; returns the password to set at the relying
   party.  [legacy] imports an existing password instead of generating a
   fresh random one (§5). *)
let register_password ?legacy (t : t) ~(rp_name : string) : string =
  resync t;
  let s = pw_side t in
  if Hashtbl.mem s.pw_creds rp_name then Types.fail "already registered (password): %s" rp_name;
  let pid, fresh_k_id = Password_protocol.client_register ~rand_bytes:t.rand in
  let y =
    try
      Transport.call t.transport ~op:"pw.register" ~req:pid ~decode:Point.decode (fun bytes ->
          if String.length bytes <> Password_protocol.id_len then
            raise (Transport.Reject "bad password id length");
          Point.encode (Log_service.pw_register t.log ~client_id:t.client_id ~id:bytes))
    with Transport.Error _ as e ->
      (* the log may have stored the id even though the ack never arrived;
         the next session adopts the log's list *)
      mark_dirty ~exn:e t;
      raise e
  in
  let k_id, pw_point =
    match legacy with
    | None -> (fresh_k_id, Password_protocol.finish_register ~k_id:fresh_k_id ~y)
    | Some pw ->
        let embedded = Password_protocol.embed_password pw in
        (Password_protocol.import_legacy ~pw:embedded ~y, embedded)
  in
  s.pw_ids <- s.pw_ids @ [ pid ];
  Hashtbl.replace s.pw_creds rp_name { pid; k_id };
  Hashtbl.replace s.pw_names (Point.encode (Larch_ec.Hash_to_curve.hash pid)) rp_name;
  (* the client deletes y and pw after registration (Figure 11) *)
  Password_protocol.password_string pw_point

(* --- Step 3: authentication --- *)

exception Log_misbehaved of string

(* Check the attestation riding an authentication ack: the tree head is
   genuinely signed by the log, the attested record is the one this very
   authentication produced ([payload_check] binds the ciphertext the
   client just sent), the inclusion proof places it under the head, and
   the head never shrinks below the last audited view.  A log that logs
   something other than what it acks — or acks without logging — fails
   here, at authentication time, not at the next audit.

   A brownout ack ([degraded]) carries no inclusion proof: the signed
   head and the record binding are still checked, and the acked (index,
   record) pair is stashed in [att_pending].  The next verified audit
   must find exactly those bytes at those leaves before the deferral
   clears (a log that acked without logging is still caught — one audit
   later instead of instantly). *)
let check_attestation (t : t) ~(payload_check : Record.t -> bool)
    (att : Log_service.attestation) : unit =
  let fail msg = raise (Log_misbehaved ("auth attestation rejected: " ^ msg)) in
  let sth = att.Log_service.sth in
  if not (Merkle.Sth.verify ~pk:t.sth_pub ~client_id:t.client_id sth) then
    fail "tree-head signature invalid";
  (match Record.decode_opt att.Log_service.record with
  | None -> fail "attested record undecodable"
  | Some r -> if not (payload_check r) then fail "attested record is not this authentication");
  if att.Log_service.degraded then begin
    t.att_pending <- (att.Log_service.index, att.Log_service.record) :: t.att_pending;
    t.att_deferred <- true;
    if obs_on () then m_inc "client.attestations.deferred"
  end
  else if
    not
      (Merkle.verify_inclusion ~root:sth.Merkle.Sth.root ~size:sth.Merkle.Sth.size
         ~index:att.Log_service.index ~leaf:att.Log_service.record ~proof:att.Log_service.proof)
  then fail "inclusion proof invalid";
  (match t.last_sth with
  | Some old when sth.Merkle.Sth.size < old.Merkle.Sth.size ->
      fail "tree head regressed below the last audited size"
  | _ -> ());
  if obs_on () && not att.Log_service.degraded then m_inc "client.attestations.verified"

(* FIDO2: build the statement, prove it, and run Π_Sign with the log.

   Transport discipline: each of the three rounds is one [Transport.call],
   so within a session every retry retransmits the identical bytes and the
   log's replay cache answers duplicates without consuming anything.  If a
   round still fails after the retry budget, the whole session is abandoned
   (the log aborts its in-flight state, cursors are realigned forward) and
   driven once more from scratch — costing exactly one presignature on
   both sides, never leaving a wedged session. *)
let fido2_session (t : t) ~(rp_name : string) ~(challenge : string) :
    Larch_auth.Fido2.assertion =
  let f = fido2_side t in
  let cred =
    match Hashtbl.find_opt f.fido2_creds rp_name with
    | Some c -> c
    | None -> Types.fail "not registered (fido2): %s" rp_name
  in
  cred.counter <- cred.counter + 1;
  let payload = Larch_auth.Fido2.make_payload ~rp_name ~challenge ~counter:cred.counter in
  let chal = Larch_auth.Fido2.statement_challenge payload in
  let dgst = Larch_auth.Fido2.signing_digest payload in
  let rp_hash = payload.Larch_auth.Fido2.rp_hash in
  (* encrypted record + integrity signature *)
  let ct_nonce = t.rand 12 in
  let ct = Larch_cipher.Ctr.sha_ctr ~key:f.fk ~nonce:ct_nonce rp_hash in
  (* even_r: the log's admission loop batch-verifies record signatures
     with one Pippenger pass, which needs the nonce point recoverable
     from r without a parity search (see Ecdsa.verify_batch) *)
  let record_sig =
    Larch_ec.Ecdsa.encode (Larch_ec.Ecdsa.sign ~even_r:true ~sk:f.record_sk (ct_nonce ^ ct))
  in
  (* the zero-knowledge statement *)
  let witness =
    Statements.fido2_witness_bits
      { Statements.k = f.fk; r = f.fr; id = rp_hash; chal; nonce = ct_nonce }
  in
  let circuit = Lazy.force Statements.fido2_circuit in
  let proof =
    Larch_zkboo.Zkboo.prove ~domains:t.domains ~circuit ~witness
      ~statement_tag:Fido2_protocol.statement_tag ~rand_bytes:t.rand ()
  in
  (* consume the next presignature *)
  let signature =
  Trace.with_span "ecdsa2p.sign.client" @@ fun () ->
  let batch =
    match List.find_opt (fun b -> Tpe.client_batch_remaining b > 0) f.batches with
    | Some b -> b
    | None -> Types.fail "out of presignatures"
  in
  let idx = batch.Tpe.cnext in
  batch.Tpe.cnext <- idx + 1;
  let presig = batch.Tpe.centries.(idx) in
  let st =
    Tpe.init_party ~party:1
      ~inp:(Tpe.halfmul_input_of_client batch idx ~sk1:cred.y)
      ~cap_r:presig.Tpe.cap_r1 ~digest:dgst
  in
  let m1 = Tpe.round1 st in
  let req =
    {
      Fido2_protocol.dgst;
      ct_nonce;
      ct;
      record_sig;
      proof;
      presig_index = idx;
      hm_msg = m1;
    }
  in
  let resp1 =
    Transport.call t.transport ~op:"fido2.auth_begin"
      ~req:(Fido2_protocol.encode_auth_request req)
      ~decode:Fido2_protocol.decode_auth_response1
      (fun bytes ->
        match Fido2_protocol.decode_auth_request bytes with
        | Some r ->
            Fido2_protocol.encode_auth_response1
              (Log_service.fido2_auth_begin ~domains:2 t.log ~client_id:t.client_id ~ip:t.ip
                 ~now:(now ()) r)
        | None -> raise (Transport.Reject "undecodable auth request"))
  in
  let s0 = Scalar.of_bytes_be resp1.Fido2_protocol.s0 in
  let s1 = Tpe.round2 st ~own:m1 ~other:resp1.Fido2_protocol.hm_msg in
  let commit_c = Tpe.open_commit st ~other_s:s0 ~rand_bytes:t.rand in
  (* the response is commitment (32B) ‖ reveal (80B) ‖ attestation *)
  let commit_l, reveal_l, att =
    Transport.call t.transport ~op:"fido2.auth_commit"
      ~req:(Scalar.to_bytes_be s1 ^ commit_c.Larch_mpc.Spdz.commitment)
      ~decode:(fun s ->
        if String.length s < 112 then None
        else
          match
            ( Tpe.decode_reveal (String.sub s 32 80),
              Log_service.decode_attestation (String.sub s 112 (String.length s - 112)) )
          with
          | Some reveal, Ok att ->
              Some ({ Larch_mpc.Spdz.commitment = String.sub s 0 32 }, reveal, att)
          | _ -> None)
      (fun bytes ->
        if String.length bytes <> 64 then raise (Transport.Reject "bad commit message length");
        let s1' = Scalar.of_bytes_be (String.sub bytes 0 32) in
        let commit = { Larch_mpc.Spdz.commitment = String.sub bytes 32 32 } in
        let cl, rl, att =
          Log_service.fido2_auth_commit t.log ~client_id:t.client_id ~s1:s1' ~client_commit:commit
        in
        cl.Larch_mpc.Spdz.commitment ^ Tpe.encode_reveal rl ^ Log_service.encode_attestation att)
  in
  check_attestation t att ~payload_check:(fun r ->
      match r.Record.payload with
      | Record.Symmetric { nonce; ct = rct; _ } ->
          Bytesx.ct_equal nonce ct_nonce && Bytesx.ct_equal rct ct
      | _ -> false);
  if not (Tpe.open_check st ~other_commit:commit_l ~other_reveal:reveal_l) then
    raise (Log_misbehaved "signing MAC check failed");
  let reveal_c = Tpe.open_reveal st in
  let ok =
    Transport.call t.transport ~op:"fido2.auth_finish" ~req:(Tpe.encode_reveal reveal_c)
      ~decode:(function "\001" -> Some true | "\000" -> Some false | _ -> None)
      ~meter_resp:false
      (fun bytes ->
        match Tpe.decode_reveal bytes with
        | Some reveal ->
            if Log_service.fido2_auth_finish t.log ~client_id:t.client_id ~client_reveal:reveal
            then "\001"
            else "\000"
        | None -> raise (Transport.Reject "undecodable reveal"))
  in
  if not ok then raise (Log_misbehaved "log rejected the opening");
  Tpe.signature st ~other_s:s0
  in
  { Larch_auth.Fido2.payload; signature }

let authenticate_fido2 (t : t) ~(rp_name : string) ~(challenge : string) :
    Larch_auth.Fido2.assertion =
  Trace.with_span "client.fido2.auth" @@ fun () ->
  resync t;
  try fido2_session t ~rp_name ~challenge with
  | Transport.Error _ as e when Transport.faulty t.transport || overloaded_error e -> (
      (* abandon the wedged session (abort + cursor realignment), then
         drive one fresh session; a second failure surfaces typed.  An
         admission shed gets the same treatment even with no injector
         installed: round 1 may have consumed a presignature before a
         later round was shed *)
      t.dirty <- true;
      resync t;
      try fido2_session t ~rp_name ~challenge
      with e ->
        mark_dirty ~exn:e t;
        raise e)
  | (Log_misbehaved _ | Types.Protocol_error _) as e ->
      mark_dirty t;
      raise e

(* TOTP: run the 2PC; returns the full outcome (code + phase timings). *)
let authenticate_totp_detailed (t : t) ~(rp_name : string) ~(time : float) :
    Totp_protocol.outcome =
  Trace.with_span "client.totp.auth" @@ fun () ->
  resync t;
  let s = totp_side t in
  let cred =
    match Hashtbl.find_opt s.totp_creds rp_name with
    | Some c -> c
    | None -> Types.fail "not registered (totp): %s" rp_name
  in
  (* the nonce is drawn once per authentication, not per attempt: the log
     dedups the 2PC on it, so a retried invocation replays the finished
     outcome instead of re-running the circuit or double-logging *)
  let enc_nonce = t.rand 12 in
  let outcome, att =
    Transport.invoke t.transport ~op:"totp.auth" (fun () ->
        Log_service.totp_auth t.log ~client_id:t.client_id ~ip:t.ip ~now:(now ()) ~enc_nonce
          ~run:(fun ~cm ~registrations ~rand_log ->
            let pub =
              { Statements.cm; enc_nonce; time_counter = Larch_auth.Totp.counter_of_time time }
            in
            Totp_protocol.run_auth ~pub ~n_rps:(List.length registrations)
              ~client:(s.tk, s.tr, cred.tid, cred.kclient)
              ~registrations ~rand_client:t.rand ~rand_log ~offline:t.totp_offline
              ~online:t.totp_online))
  in
  check_attestation t att ~payload_check:(fun r ->
      match r.Record.payload with
      | Record.Symmetric { nonce; ct; _ } ->
          Bytesx.ct_equal nonce enc_nonce && Bytesx.ct_equal ct outcome.Totp_protocol.ct
      | _ -> false);
  outcome

let authenticate_totp (t : t) ~(rp_name : string) ~(time : float) : int =
  (authenticate_totp_detailed t ~rp_name ~time).Totp_protocol.code

(* Passwords: one-out-of-many proof, log exponentiation, recombination. *)
let authenticate_password (t : t) ~(rp_name : string) : string =
  Trace.with_span "client.pw.auth" @@ fun () ->
  resync t;
  let s = pw_side t in
  let cred =
    match Hashtbl.find_opt s.pw_creds rp_name with
    | Some c -> c
    | None -> Types.fail "not registered (password): %s" rp_name
  in
  let idx =
    match List.find_index (fun id -> id = cred.pid) s.pw_ids with
    | Some i -> i
    | None -> Types.fail "identifier missing from registration list"
  in
  let r, req = Password_protocol.client_auth ~idx ~x:s.x ~ids:s.pw_ids ~rand_bytes:t.rand in
  (* the response is y (65B point) ‖ DLEQ proof (98B) ‖ attestation *)
  let y, dleq, att =
    try
      Transport.call t.transport ~op:"pw.auth"
        ~req:(Password_protocol.encode_auth_request req)
        ~decode:(fun bytes ->
          if String.length bytes < 163 then None
          else
            match
              ( Point.decode (String.sub bytes 0 65),
                Larch_sigma.Dleq.decode (String.sub bytes 65 98),
                Log_service.decode_attestation (String.sub bytes 163 (String.length bytes - 163))
              )
            with
            | Some y, Some d, Ok att -> Some (y, d, att)
            | _ -> None)
        (fun bytes ->
          match Password_protocol.decode_auth_request bytes with
          | Some r ->
              let y, dleq, att =
                Log_service.pw_auth t.log ~client_id:t.client_id ~ip:t.ip ~now:(now ()) r
              in
              Point.encode y ^ Larch_sigma.Dleq.encode dleq ^ Log_service.encode_attestation att
          | None -> raise (Transport.Reject "undecodable auth request"))
    with Transport.Error _ as e ->
      mark_dirty ~exn:e t;
      raise e
  in
  check_attestation t att ~payload_check:(fun rec_ ->
      match rec_.Record.payload with
      | Record.Elgamal ct ->
          Bytesx.ct_equal (Point.encode ct.Larch_ec.Elgamal.c1)
            (Point.encode req.Password_protocol.ct.Larch_ec.Elgamal.c1)
          && Bytesx.ct_equal (Point.encode ct.Larch_ec.Elgamal.c2)
               (Point.encode req.Password_protocol.ct.Larch_ec.Elgamal.c2)
      | _ -> false);
  (* check the log exponentiated with its registered key *)
  if
    not
      (Larch_sigma.Dleq.verify ~base1:Point.g ~base2:req.Password_protocol.ct.Larch_ec.Elgamal.c2
         ~public1:s.log_k_pub ~public2:y ~tag:"larch-pw-log" dleq)
  then raise (Log_misbehaved "log's DLEQ proof rejected");
  let pw_point = Password_protocol.finish_auth ~x:s.x ~log_pub:s.log_k_pub ~r ~k_id:cred.k_id ~y in
  (* the password is recomputed per authentication and not stored *)
  Password_protocol.password_string pw_point

(* --- Step 4: auditing --- *)

type audit_entry = {
  time : float;
  ip : string;
  method_ : Types.auth_method;
  rp : string option; (* None = the record names no relying party we know *)
}

let audit_of_records (t : t) (records : Record.t list) : audit_entry list =
  List.map
    (fun (r : Record.t) ->
      let rp =
        match (r.Record.method_, r.Record.payload) with
        | Types.Fido2, Record.Symmetric { nonce; ct; _ } -> (
            match t.fido2 with
            | None -> None
            | Some f ->
                let rp_hash = Larch_cipher.Ctr.sha_ctr ~key:f.fk ~nonce ct in
                Hashtbl.find_opt f.fido2_names rp_hash)
        | Types.Totp, Record.Symmetric { nonce; ct; _ } -> (
            match t.totp with
            | None -> None
            | Some s ->
                let keystream = Larch_hash.Sha256.digest (s.tk ^ nonce ^ Bytesx.be32 0) in
                let tid = Bytesx.xor ct (String.sub keystream 0 (String.length ct)) in
                Hashtbl.find_opt s.totp_names tid)
        | Types.Password, Record.Elgamal ct -> (
            match t.pw with
            | None -> None
            | Some s ->
                let h = Password_protocol.decrypt_record ~x:s.x ct in
                Hashtbl.find_opt s.pw_names (Point.encode h))
        | _ -> None
      in
      { time = r.Record.time; ip = r.Record.ip; method_ = r.Record.method_; rp })
    records

let audit (t : t) : audit_entry list =
  Trace.with_span "client.audit" @@ fun () ->
  audit_of_records t
    (Transport.invoke t.transport ~op:"audit" (fun () ->
         Log_service.audit t.log ~client_id:t.client_id ~token:t.account_password))

let chain_over (rs : Record.t list) : string =
  List.fold_left
    (fun h r -> Larch_hash.Sha256.digest_list [ "larch-chain"; h; Record.encode r ])
    (Larch_hash.Sha256.digest "larch-chain-genesis")
    rs

(* Legacy full-download verification: recompute the whole record hash
   chain, check the reported head, and check prefix consistency against
   the last audit.  O(n) hashing — the Merkle fast path below avoids it. *)
let audit_verified_scan (t : t) (resp : Log_service.audit_response) :
    (audit_entry list, string) result =
  let records = resp.Log_service.records in
  if resp.Log_service.since <> 0 then Error "log refused to serve the full history"
  else if List.length records <> resp.Log_service.chain_len then
    Error "log reported inconsistent record count"
  else if not (Bytesx.ct_equal (chain_over records) resp.Log_service.chain_head) then
    Error "record list does not match the log's chain head"
  else begin
    let prefix_ok =
      match t.last_chain with
      | None -> true
      | Some (old_head, old_len) ->
          old_len <= List.length records
          && Bytesx.ct_equal (chain_over (List.filteri (fun i _ -> i < old_len) records)) old_head
    in
    if not prefix_ok then Error "log rolled back or rewrote previously audited records"
    else Ok (audit_of_records t records)
  end

(* Verified audit, Merkle fast path: download only the delta since the
   last verified tree size, check the signed head, the consistency proof
   old-head → new-head, and one inclusion proof per new record — O(log n)
   hashing per audit instead of rehashing the whole history.

   Any mismatch falls back to the full-download chain scan, whose result
   is reported as an anomaly either way: if the scan pinpoints the lie
   (rollback, head mismatch) that error surfaces; if the chain looks
   clean while the tree does not, the log is presenting two views of the
   same history and we say so.  The verified state ([last_sth],
   [audited], [last_chain]) only ever advances on the fast path. *)
let audit_verified (t : t) : (audit_entry list, string) result =
  Trace.with_span "client.audit.verified" @@ fun () ->
  let since = List.length t.audited in
  let resp =
    Transport.invoke t.transport ~op:"audit.head" (fun () ->
        Log_service.audit_with_head ~since t.log ~client_id:t.client_id
          ~token:t.account_password)
  in
  let sth = resp.Log_service.sth in
  let delta = resp.Log_service.records in
  let fast_ok =
    resp.Log_service.since = since
    && Merkle.Sth.verify ~pk:t.sth_pub ~client_id:t.client_id sth
    && sth.Merkle.Sth.size = since + List.length delta
    && resp.Log_service.chain_len = sth.Merkle.Sth.size
    && (match t.last_sth with
       | None -> since = 0
       | Some old ->
           since = old.Merkle.Sth.size
           && (since = 0 || since = sth.Merkle.Sth.size
              || Merkle.verify_consistency ~old_root:old.Merkle.Sth.root ~old_size:since
                   ~new_root:sth.Merkle.Sth.root ~new_size:sth.Merkle.Sth.size
                   ~proof:resp.Log_service.consistency))
    && (match t.last_sth with
       | Some old when since = sth.Merkle.Sth.size ->
           (* nothing new: the head must be the one we already verified *)
           Bytesx.ct_equal old.Merkle.Sth.root sth.Merkle.Sth.root
       | _ -> true)
    && List.length resp.Log_service.proofs = List.length delta
    && List.for_all2
         (fun (i, r) proof ->
           Merkle.verify_inclusion ~root:sth.Merkle.Sth.root ~size:sth.Merkle.Sth.size ~index:i
             ~leaf:(Record.encode r) ~proof)
         (List.mapi (fun i r -> (since + i, r)) delta)
         resp.Log_service.proofs
  in
  if fast_ok then begin
    t.audited <- t.audited @ delta;
    t.last_sth <- Some sth;
    t.last_chain <- Some (resp.Log_service.chain_head, resp.Log_service.chain_len);
    (* discharge brownout-deferred inclusion checks: every audited record
       was inclusion-verified against the live root, so a degraded ack is
       covered iff its exact record bytes sit at its acked leaf.  A log
       that acked without appending has a consistent tree that simply
       lacks the record — it fails here, one audit later. *)
    let missing =
      match t.att_pending with
      | [] -> []
      | pending ->
          let leaves = Array.of_list (List.map Record.encode t.audited) in
          List.filter
            (fun (i, enc) ->
              i < 0 || i >= Array.length leaves || not (Bytesx.ct_equal leaves.(i) enc))
            pending
    in
    t.att_pending <- missing;
    if missing = [] then begin
      t.att_deferred <- false;
      Ok (audit_of_records t t.audited)
    end
    else begin
      if obs_on () then m_inc "client.audit.deferred_missing";
      Error
        "brownout-deferred record missing from the audited log (log acked without appending)"
    end
  end
  else begin
    (* the log could not extend our verified view: refetch everything and
       let the chain scan name the anomaly *)
    if obs_on () then m_inc "client.audit.fallbacks";
    let full =
      if resp.Log_service.since = 0 then resp
      else
        Transport.invoke t.transport ~op:"audit.head" (fun () ->
            Log_service.audit_with_head ~since:0 t.log ~client_id:t.client_id
              ~token:t.account_password)
    in
    match audit_verified_scan t full with
    | Error _ as e -> e
    | Ok _ ->
        Error "log's merkle tree is inconsistent with its record chain (equivocation suspected)"
  end

(* Compare the log against locally expected activity: entries the client
   did not initiate are evidence of compromise. *)
let detect_anomalies (t : t) ~(expected : (Types.auth_method * string) list) : audit_entry list =
  let entries = audit t in
  let expected = ref expected in
  List.filter
    (fun e ->
      match e.rp with
      | None -> true
      | Some rp ->
          let key = (e.method_, rp) in
          if List.mem key !expected then begin
            (* consume one expected occurrence *)
            let rec remove = function
              | [] -> []
              | x :: rest when x = key -> rest
              | x :: rest -> x :: remove rest
            in
            expected := remove !expected;
            false
          end
          else true)
    entries

(* --- revocation & migration (§9) --- *)

let revoke_all (t : t) : unit =
  Transport.invoke t.transport ~op:"revoke" (fun () ->
      Log_service.revoke_all t.log ~client_id:t.client_id ~token:t.account_password);
  t.fido2 <- None;
  t.totp <- None;
  t.pw <- None

(* Move FIDO2 credentials to this (new) device state by re-sharing: the log
   shifts its share by δ, we shift every per-party share by -δ.  Public
   keys are unchanged; the old device's shares are now useless. *)
let migrate_fido2 (t : t) : unit =
  resync t;
  let f = fido2_side t in
  let delta = Scalar.random_nonzero ~rand_bytes:t.rand in
  (* the log dedups on δ, so the at-least-once invoke applies it exactly
     once; the local shift below runs only after the log confirmed *)
  Transport.invoke t.transport ~op:"fido2.migrate" (fun () ->
      Log_service.migrate_fido2 t.log ~client_id:t.client_id ~token:t.account_password ~delta);
  let log_pub' = Point.add f.log_pub (Point.mul_base delta) in
  Hashtbl.iter
    (fun name cred ->
      Hashtbl.replace f.fido2_creds name { cred with y = Scalar.sub cred.y delta })
    (Hashtbl.copy f.fido2_creds);
  t.fido2 <- Some { f with log_pub = log_pub' }

(* --- communication accounting --- *)

let channel_snapshot (t : t) = Channel.snapshot t.chan
let reset_channels (t : t) =
  Channel.reset t.chan;
  Channel.reset t.totp_offline;
  Channel.reset t.totp_online
