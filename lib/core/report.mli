(** The deterministic capacity report (ROADMAP item 4).

    [run ~seed ()] drives a seeded mixed enroll/auth/audit workload over
    the store-backed, fault-injectable world — simulated clock, one
    HMAC-DRBG, seeded disk and transport faults — and renders per-protocol
    latency (p50/p99/p99.9), the presignature depletion curve, storm-
    segment failure/retry totals, and the WAL growth vs checkpoint cadence
    sweep.  The same seed reproduces the same bytes; [digest] is the hex
    sha256 of [text]. *)

type result = { text : string; digest : string }

val run : ?auths:int -> seed:string -> unit -> result
(** [auths] is the per-method auth count of the calm phase (default 6);
    the storm segment runs [auths/2] rounds and the cadence sweep
    [4*auths] password auths per cadence. *)
