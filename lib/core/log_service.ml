(* The larch log service.

   Holds per-client state for all three authentication methods, verifies
   the client's proofs before contributing to any credential, stores the
   encrypted authentication records, and serves audit downloads.  Also
   implements the operational machinery around the core protocols:
   presignature inventory with an objection window (§3.3), client-specific
   policies (§9), revocation and migration (§9), and storage accounting
   (Figure 4, left).

   The log never sees a relying-party identity: FIDO2/TOTP records are
   sha-ctr ciphertexts under the client's archive key, password records are
   ElGamal ciphertexts under the client's archive public key, and the
   GK15/ZKBoo proofs convince the log they are well-formed without opening
   them.

   Durability: the state types and every mutation of them live in
   {!Log_state}; this module validates requests and then [commit]s logical
   operations.  With a {!Larch_store.Store} attached, each committed op is
   also appended to the write-ahead log and every public call ends with a
   group-commit [sync] — the reply leaves the log only after its ops are
   fsynced.  [restart] then models a genuine kill: the disk drops whatever
   was never fsynced, and the client map is rebuilt purely from storage. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Tpe = Two_party_ecdsa
module Trace = Larch_obs.Trace
module Events = Larch_obs.Events
module Metrics = Larch_obs.Metrics
module Merkle = Larch_merkle.Merkle
module Wire = Larch_net.Wire

(* Pool-depth / burn-forward / record-volume instrumentation (capacity
   report inputs).  Guarded like every other metric: zero work while
   tracing is off. *)
let obs_on () = Larch_obs.Runtime.tracing_enabled ()
let m_inc name = Metrics.inc (Metrics.counter Metrics.default name)
let m_add name n = Metrics.add (Metrics.counter Metrics.default name) n
let m_gauge name v = Metrics.set_gauge (Metrics.gauge Metrics.default name) v

(* Observability note: every [Events.emit] below carries at most the client
   id, the auth method, and protocol-step detail.  Relying-party identities
   never reach the log (see the module header), so they can never appear in
   an event either — test/test_obs.ml checks this over full protocol runs. *)

type policy = Log_state.policy = {
  max_auths_per_window : int option;
  window_seconds : float;
  notify : (Types.auth_method -> float -> unit) option;
      (** §9: e.g. push a login-confirmation notification to the user's
          phone on every authentication. *)
}

let default_policy = Log_state.default_policy

type fido2_state = Log_state.fido2_state = {
  cm : string;
  record_vk : Point.t; (* verifies the client's record-integrity signatures *)
  key : Tpe.log_key;
  mutable batches : Tpe.log_batch list; (* active presignature batches *)
  mutable pending : (Tpe.log_batch * float) list; (* staged until the objection window passes *)
  mutable signing : Tpe.party_state option; (* in-flight Π_Sign *)
  mutable signing_record : Record.t option; (* stored once the proof verifies *)
  mutable client_commit : Larch_mpc.Spdz.open_commit option; (* client's opening commitment *)
}

type totp_state = Log_state.totp_state = {
  cm_totp : string;
  mutable registrations : Totp_protocol.registration list;
  mutable last_auth : (string * Totp_protocol.outcome) option;
}

type pw_state = Log_state.pw_state = {
  client_pub : Point.t; (* X = g^x, the ElGamal archive public key *)
  k : Scalar.t; (* the log's per-client Diffie-Hellman secret *)
  k_pub : Point.t;
  mutable ids : string list; (* registration order defines the GK15 set *)
}

type client_state = Log_state.client_state = {
  account_token : string; (* hash of the user's log-account credential *)
  mutable fido2 : fido2_state option;
  mutable totp : totp_state option;
  mutable pw : pw_state option;
  mutable records : Record.t list; (* newest first *)
  mutable policy : policy;
  mutable recent_auths : float list;
  mutable backup : string option; (* opaque encrypted client-state blob (§9 recovery) *)
  mutable chain_head : string; (* hash chain over records: rollback detection (§9) *)
  mutable chain_len : int;
  mutable last_migrate : string option; (* δ of the last key migration, for retry dedup *)
  mutable tree : Merkle.Tree.t; (* Merkle tree over the records: O(log n) audits *)
}

type t = {
  clients : Log_state.clients;
  rand : int -> string;
  objection_window : float; (* seconds before a staged batch activates *)
  persist : Log_persist.t option; (* None: purely in-memory (tests, benches) *)
  sth_sk : Scalar.t;
      (* the STH signing key lives outside the durable client state, as in
         an HSM: it survives [restart] (which only rebuilds the client
         map) and never appears in snapshots or WAL frames *)
  sth_pk : Point.t;
  preverified : (string, unit) Hashtbl.t;
      (* one-shot tokens from the admission loop's batch signature
         verification: volatile (like a session cache), keyed by a hash
         of (client, ciphertext, signature) so a token can only skip the
         exact individual check that the batch already performed *)
  mutable degraded : bool;
      (* brownout: while set, authentication acks carry degraded
         attestations (no inclusion proof, no padding — explicitly
         flagged) and clients re-verify on the next audit.  Volatile and
         operational — never persisted, never changes accept/reject *)
}

let create ?(objection_window = 0.) ?checkpoint_every ?store ~(rand_bytes : int -> string) () : t
    =
  let sth_sk, sth_pk = Larch_ec.Ecdsa.keygen ~rand_bytes in
  let persist = Option.map (Log_persist.of_store ?checkpoint_every) store in
  let clients =
    match persist with Some p -> Log_persist.recover p | None -> Hashtbl.create 16
  in
  {
    clients;
    rand = rand_bytes;
    objection_window;
    persist;
    sth_sk;
    sth_pk;
    preverified = Hashtbl.create 16;
    degraded = false;
  }

let sth_pub (t : t) : Point.t = t.sth_pk

let set_degraded (t : t) (b : bool) = t.degraded <- b
let degraded (t : t) : bool = t.degraded

let persist (t : t) : Log_persist.t option = t.persist

(* Semantic + structural storage verification (`larch fsck` online mode);
   [None] when the log runs without a store. *)
let fsck (t : t) : Log_persist.fsck option =
  Option.map (fun p -> Log_persist.fsck ~live:t.clients p) t.persist

(* Commit one durable operation: mutate the in-memory state through the
   single [Log_state.apply] path, then append it to the WAL buffer. *)
let commit (t : t) (e : Log_state.entry) : unit =
  Log_state.apply t.clients e;
  match t.persist with None -> () | Some p -> Log_persist.append p e

(* --- admission-batch signature pre-verification ------------------------ *)

let preverify_key ~client_id ~ct_nonce ~ct ~record_sig =
  Larch_hash.Sha256.digest_list
    [ "record-sig-preverified"; client_id; ct_nonce; ct; record_sig ]

let record_verify_key (t : t) ~(client_id : string) : Point.t option =
  match Hashtbl.find_opt t.clients client_id with
  | Some c -> Option.map (fun f -> f.Log_state.record_vk) c.Log_state.fido2
  | None -> None

let preverify_record_sig (t : t) ~(client_id : string) ~(ct_nonce : string)
    ~(ct : string) ~(record_sig : string) : unit =
  Hashtbl.replace t.preverified
    (preverify_key ~client_id ~ct_nonce ~ct ~record_sig)
    ()

(* Group-commit whatever the body appended, even when it raises: a
   rejected proof must not leave its policy charge un-fsynced. *)
let with_sync (t : t) (f : unit -> 'a) : 'a =
  match t.persist with
  | None -> f ()
  | Some p -> Fun.protect ~finally:(fun () -> Log_persist.sync p t.clients) f

let get_client (t : t) (cid : string) : client_state =
  match Hashtbl.find_opt t.clients cid with
  | Some c -> c
  | None -> Types.fail "unknown client %S" cid

let check_token (c : client_state) (token : string) : unit =
  if not (Larch_util.Bytesx.ct_equal c.account_token (Larch_hash.Sha256.digest token)) then
    Types.fail "log-account authentication failed"

(* --- the transparency layer: signed tree heads and per-auth proofs --- *)

(* The signed head of one client's record tree, as of right now.  Signing
   is RFC 6979 deterministic, so seeded worlds stay byte-reproducible. *)
let latest_sth (t : t) ~(client_id : string) (c : client_state) : Merkle.Sth.t =
  Merkle.Sth.sign ~sk:t.sth_sk ~client_id ~size:(Merkle.Tree.size c.tree)
    ~root:(Merkle.Tree.root c.tree) ~time:(Larch_util.Clock.now ())

(* Every authentication ack carries proof that its record landed in the
   tree: the leaf index, the record exactly as stored, the inclusion path,
   and the signed head it verifies against. *)
type attestation = {
  index : int;
  record : string; (* canonical record encoding = the tree leaf *)
  proof : string list;
  sth : Merkle.Sth.t;
  degraded : bool;
      (* brownout ack: no inclusion proof was computed; the client defers
         inclusion verification to its next verified audit *)
}

let attest (t : t) ~(client_id : string) (c : client_state) ~(index : int) : attestation =
  let sth = latest_sth t ~client_id c in
  let total = List.length c.records in
  (* records is newest-first; leaf [index] is the (total-1-index)th element *)
  let record = Record.encode (List.nth c.records (total - 1 - index)) in
  if t.degraded then begin
    (* brownout: skip the O(n) proof walk and the padding bytes — the ack
       is explicitly flagged so the client knows to re-verify at audit
       time.  The record and signed head still bind the authentication *)
    if obs_on () then begin
      m_inc "log.merkle.sths_signed";
      m_inc "log.attest.degraded"
    end;
    { index; record; proof = []; sth; degraded = true }
  end
  else begin
    let proof = Merkle.Tree.inclusion_at c.tree ~index ~size:sth.Merkle.Sth.size in
    if obs_on () then begin
      m_inc "log.merkle.sths_signed";
      Metrics.observe
        (Metrics.histogram Metrics.default "log.merkle.proof.bytes")
        (float_of_int (Merkle.hash_len * List.length proof))
    end;
    { index; record; proof; sth; degraded = false }
  end

(* The inclusion path is padded to a fixed depth on the wire: a proof's
   length is ⌈log₂ size⌉, so an unpadded ack would leak nothing new to
   the log (it knows the record count) but would vary auth-to-auth and
   break the uniform traffic profile the password protocol promises.
   Degraded (brownout) acks skip both proof and padding — that is the
   deferred work — and say so in their flag byte. *)
let attestation_pad_depth = 32

let put_attestation (w : Wire.writer) (a : attestation) : unit =
  Wire.u8 w (if a.degraded then 1 else 0);
  Wire.u32 w a.index;
  Wire.bytes w a.record;
  if a.degraded then Merkle.Sth.put w a.sth
  else begin
    Merkle.put_proof w a.proof;
    let pad = max 0 (attestation_pad_depth - List.length a.proof) in
    Wire.bytes w (String.make (Merkle.hash_len * pad) '\000');
    Merkle.Sth.put w a.sth
  end

let read_attestation (r : Wire.reader) : attestation =
  let flag = Wire.read_u8 r in
  if flag <> 0 && flag <> 1 then raise (Wire.Malformed "bad attestation flag");
  let degraded = flag = 1 in
  let index = Wire.read_u32 r in
  if index < 0 then raise (Wire.Malformed "bad attestation index");
  let record = Wire.read_bytes r in
  if degraded then
    let sth = Merkle.Sth.read r in
    { index; record; proof = []; sth; degraded }
  else
    let proof = Merkle.read_proof r in
    let (_padding : string) = Wire.read_bytes r in
    let sth = Merkle.Sth.read r in
    { index; record; proof; sth; degraded }

let encode_attestation (a : attestation) : string = Wire.encode (fun w -> put_attestation w a)
let decode_attestation (s : string) : (attestation, string) result = Wire.decode s read_attestation

(* --- enrollment --- *)

let enroll (t : t) ~(client_id : string) ~(account_password : string) : unit =
  match Hashtbl.find_opt t.clients client_id with
  | Some c when Larch_util.Bytesx.ct_equal c.account_token (Larch_hash.Sha256.digest account_password)
    ->
      (* a retransmitted enrollment from the same account holder: the
         account already exists, nothing to do *)
      ()
  | Some _ -> Types.fail "client already enrolled"
  | None ->
      Events.emit ~client:client_id Events.Enroll "account created";
      with_sync t @@ fun () ->
      commit t
        { cid = client_id; op = Enroll { token = Larch_hash.Sha256.digest account_password } }

let set_policy (t : t) ~(client_id : string) ~(token : string) (p : policy) : unit =
  let c = get_client t client_id in
  check_token c token;
  (with_sync t @@ fun () ->
   commit t
     {
       cid = client_id;
       op = Set_policy { max_auths = p.max_auths_per_window; window = p.window_seconds };
     });
  (* the notification callback is a closure: runtime-only, never durable *)
  c.policy <- { c.policy with notify = p.notify }

(* Pure rate-limit check — committing the charge is the caller's job, so
   that a single [Charge] op in the WAL captures exactly the window
   mutation the live map saw. *)
let check_policy ?client_id (c : client_state) ~(method_ : Types.auth_method) ~(now : float) :
    unit =
  match c.policy.max_auths_per_window with
  | None -> ()
  | Some limit ->
      let window_start = now -. c.policy.window_seconds in
      let recent = List.filter (fun ts -> ts >= window_start) c.recent_auths in
      if List.length recent >= limit then begin
        Events.emit ~severity:Events.Warn ?client:client_id
          ~method_:(Types.auth_method_to_string method_) Events.Policy_denied
          (Printf.sprintf "rate limit: %d auths in %.0fs window" limit c.policy.window_seconds);
        Types.fail "policy: rate limit exceeded"
      end

(* Check the policy and charge the window.  The charge is durable before
   the protocol proceeds: an authentication attempt counts against the
   rate limit even if its proof later fails. *)
let enforce_policy (t : t) ~(client_id : string) (c : client_state)
    ~(method_ : Types.auth_method) ~(now : float) : unit =
  check_policy ~client_id c ~method_ ~now;
  commit t { cid = client_id; op = Charge { method_; now } };
  match c.policy.notify with None -> () | Some f -> f method_ now

(* FIDO2 enrollment: archive-key commitment, record-integrity key, the
   log's signing-key share, and the first presignature batch. *)
let enroll_fido2 (t : t) ~(client_id : string) ~(cm : string) ~(record_vk : Point.t)
    ~(batch : Tpe.log_batch) : Point.t =
  let c = get_client t client_id in
  match c.fido2 with
  | Some f when Larch_util.Bytesx.ct_equal f.cm cm ->
      (* retransmission of the enrollment the log already processed *)
      f.key.Tpe.x_pub
  | Some _ -> Types.fail "fido2 already enrolled"
  | None ->
      let key = Tpe.log_keygen ~rand_bytes:t.rand in
      (with_sync t @@ fun () ->
       commit t
         { cid = client_id; op = Enroll_fido2 { cm; record_vk; x = key.Tpe.x; batch } });
      Events.emit ~client:client_id ~method_:"fido2" Events.Enroll
        (Printf.sprintf "fido2 enrolled, %d presignatures" (Array.length batch.Tpe.entries));
      key.Tpe.x_pub

let enroll_totp (t : t) ~(client_id : string) ~(cm : string) : unit =
  let c = get_client t client_id in
  match c.totp with
  | Some s when Larch_util.Bytesx.ct_equal s.cm_totp cm -> () (* retransmission *)
  | Some _ -> Types.fail "totp already enrolled"
  | None ->
      Events.emit ~client:client_id ~method_:"totp" Events.Enroll "totp enrolled";
      with_sync t @@ fun () -> commit t { cid = client_id; op = Enroll_totp { cm } }

let enroll_password (t : t) ~(client_id : string) ~(client_pub : Point.t) : Point.t =
  let c = get_client t client_id in
  match c.pw with
  | Some s when Point.equal s.client_pub client_pub -> s.k_pub (* retransmission *)
  | Some _ -> Types.fail "password already enrolled"
  | None ->
      Events.emit ~client:client_id ~method_:"password" Events.Enroll "password vault enrolled";
      let k, k_pub = Password_protocol.log_gen ~rand_bytes:t.rand in
      (with_sync t @@ fun () ->
       commit t { cid = client_id; op = Enroll_pw { client_pub; k } });
      k_pub

(* Multi-log deployments (§6): the client, trusted at enrollment, deals
   this log a Shamir share of the joint Diffie-Hellman key. *)
let enroll_password_share (t : t) ~(client_id : string) ~(client_pub : Point.t)
    ~(k_share : Scalar.t) : Point.t =
  let c = get_client t client_id in
  match c.pw with
  | Some s
    when Point.equal s.client_pub client_pub
         && Larch_util.Bytesx.ct_equal (Scalar.to_bytes_be s.k) (Scalar.to_bytes_be k_share) ->
      s.k_pub (* retransmission *)
  | Some _ -> Types.fail "password already enrolled"
  | None ->
      (with_sync t @@ fun () ->
       commit t { cid = client_id; op = Enroll_pw { client_pub; k = k_share } });
      (Log_state.pw_state c).k_pub

(* --- presignature inventory (§3.3) --- *)

let fido2_state = Log_state.fido2_state

let presignatures_remaining (t : t) ~(client_id : string) : int =
  let f = fido2_state (get_client t client_id) in
  List.fold_left (fun acc b -> acc + Tpe.log_batch_remaining b) 0 f.batches

(* A new batch is staged; it only becomes usable once the objection window
   has elapsed without the account owner objecting. *)
let stage_presignatures (t : t) ~(client_id : string) ~(batch : Tpe.log_batch) ~(now : float) :
    unit =
  let f = fido2_state (get_client t client_id) in
  (* a retransmitted staging request carries the very same batch value;
     staging it twice would double the inventory *)
  if not (List.exists (fun (b, _) -> b == batch) f.pending) then begin
    m_add "log.fido2.presigs_staged" (Array.length batch.Tpe.entries);
    with_sync t @@ fun () ->
    commit t
      { cid = client_id; op = Stage_presigs { batch; activate_at = now +. t.objection_window } }
  end

let activate_pending (t : t) ~(client_id : string) ~(now : float) : int =
  let f = fido2_state (get_client t client_id) in
  let ready, _ = List.partition (fun (_, at) -> at <= now) f.pending in
  let n = List.length ready in
  if n > 0 then begin
    m_add "log.fido2.batches_activated" n;
    with_sync t @@ fun () -> commit t { cid = client_id; op = Activate_pending { now } }
  end;
  n

(* The enrolled user (authenticated with her log-account credential)
   disavows staged presignatures — e.g. after noticing, via audit, a batch
   she never generated. *)
let object_to_pending (t : t) ~(client_id : string) ~(token : string) : int =
  let c = get_client t client_id in
  check_token c token;
  let f = fido2_state c in
  let n = List.length f.pending in
  (with_sync t @@ fun () -> commit t { cid = client_id; op = Object_pending });
  Events.emit ~severity:Events.Warn ~client:client_id ~method_:"fido2" Events.Objection
    (Printf.sprintf "client disavowed %d staged presignature batch(es)" n);
  n

(* Audit view of staged batches, so an honest client can detect
   attacker-generated presignatures during the objection window. *)
let pending_batches (t : t) ~(client_id : string) : (int * float) list =
  let f = fido2_state (get_client t client_id) in
  List.map (fun (b, at) -> (Array.length b.Tpe.entries, at)) f.pending

(* --- FIDO2 authentication --- *)

(* Round 1: check policy, verify the ZKBoo statement, verify the record
   signature, consume the presignature, store the encrypted record, and
   answer with the log's signing message and s-share. *)
let fido2_auth_begin ?(domains = 1) (t : t) ~(client_id : string) ~(ip : string) ~(now : float)
    (req : Fido2_protocol.auth_request) : Fido2_protocol.auth_response1 =
  Trace.with_span "log.fido2.auth_begin" @@ fun () ->
  with_sync t @@ fun () ->
  let proto_err detail =
    Events.emit ~severity:Events.Error ~client:client_id ~method_:"fido2" Events.Protocol_error
      detail
  in
  let c = get_client t client_id in
  let f = fido2_state c in
  enforce_policy t ~client_id c ~method_:Types.Fido2 ~now;
  Events.emit ~client:client_id ~method_:"fido2" Events.Auth_begin "zkboo proof + record received";
  if f.signing <> None then Types.fail "signing already in progress";
  (* the §7 integrity optimization: ciphertext signed outside the proof *)
  (match Larch_ec.Ecdsa.decode req.Fido2_protocol.record_sig with
  | Some sg ->
      (* one-shot skip token if the admission loop already verified this
         exact signature inside a batched Pippenger pass *)
      let pk = preverify_key ~client_id ~ct_nonce:req.Fido2_protocol.ct_nonce
          ~ct:req.Fido2_protocol.ct ~record_sig:req.Fido2_protocol.record_sig
      in
      if Hashtbl.mem t.preverified pk then begin
        Hashtbl.remove t.preverified pk;
        if obs_on () then m_inc "log.fido2.record_sig_batched"
      end
      else if
        not (Larch_ec.Ecdsa.verify ~pk:f.record_vk (req.Fido2_protocol.ct_nonce ^ req.Fido2_protocol.ct) sg)
      then begin
        proto_err "record signature invalid";
        Types.fail "record signature invalid"
      end
  | None ->
      proto_err "record signature malformed";
      Types.fail "record signature malformed");
  if not (Fido2_protocol.verify_statement ~domains ~cm:f.cm req) then begin
    proto_err "zero-knowledge proof rejected";
    Types.fail "zero-knowledge proof rejected"
  end;
  (* single-use presignature discipline: indices are consumed in order *)
  let batch =
    match List.find_opt (fun b -> Tpe.log_batch_remaining b > 0) f.batches with
    | Some b -> b
    | None ->
        proto_err "out of presignatures";
        Types.fail "out of presignatures"
  in
  if req.Fido2_protocol.presig_index <> batch.Tpe.next then begin
    proto_err "presignature index mismatch";
    Types.fail "presignature index mismatch (expected %d, got %d)" batch.Tpe.next
      req.Fido2_protocol.presig_index
  end;
  let idx = batch.Tpe.next in
  commit t
    {
      cid = client_id;
      op = Fido2_consume { index = idx; total = Log_state.total_consumed f + 1 };
    };
  if obs_on () then begin
    m_inc "log.fido2.presigs_consumed";
    m_gauge "log.fido2.presigs_remaining"
      (float_of_int (List.fold_left (fun acc b -> acc + Tpe.log_batch_remaining b) 0 f.batches))
  end;
  (* the record is stored *before* the log releases any signing material *)
  f.signing_record <-
    Some
      {
        Record.time = now;
        ip;
        method_ = Types.Fido2;
        payload =
          Record.Symmetric
            {
              nonce = req.Fido2_protocol.ct_nonce;
              ct = req.Fido2_protocol.ct;
              signature = req.Fido2_protocol.record_sig;
            };
      };
  let inp = Tpe.halfmul_input_of_log batch idx ~sk0:f.key.Tpe.x in
  let st =
    Tpe.init_party ~party:0 ~inp ~cap_r:batch.Tpe.entries.(idx).Tpe.cap_r
      ~digest:req.Fido2_protocol.dgst
  in
  f.signing <- Some st;
  Trace.with_span "ecdsa2p.sign.log" @@ fun () ->
  let own = Tpe.round1 st in
  let s0 = Tpe.round2 st ~own ~other:req.Fido2_protocol.hm_msg in
  { Fido2_protocol.hm_msg = own; s0 = Scalar.to_bytes_be s0 }

(* Round 2: receive the client's s-share and opening commitment; commit the
   record and return the log's commitment, reveal, and an inclusion
   attestation for the freshly appended record. *)
let fido2_auth_commit (t : t) ~(client_id : string) ~(s1 : Scalar.t)
    ~(client_commit : Larch_mpc.Spdz.open_commit) :
    Larch_mpc.Spdz.open_commit * Larch_mpc.Spdz.open_reveal * attestation =
  Trace.with_span "log.fido2.auth_commit" @@ fun () ->
  with_sync t @@ fun () ->
  let c = get_client t client_id in
  let f = fido2_state c in
  let st = match f.signing with Some s -> s | None -> Types.fail "no signing in progress" in
  f.client_commit <- Some client_commit;
  (match f.signing_record with
  | Some r ->
      commit t { cid = client_id; op = Fido2_record { record = r } };
      m_inc "log.records.stored"
  | None -> Types.fail "no pending record");
  f.signing_record <- None;
  Events.emit ~client:client_id ~method_:"fido2" Events.Auth_commit
    "encrypted record appended to the audit chain";
  let att = attest t ~client_id c ~index:(Merkle.Tree.size c.tree - 1) in
  let commit_msg = Tpe.open_commit st ~other_s:s1 ~rand_bytes:t.rand in
  (commit_msg, Tpe.open_reveal st, att)

(* Round 3: the client's reveal; the log checks the MACs.  On failure the
   stored record remains (an attack trace) and the error is surfaced. *)
let fido2_auth_finish (t : t) ~(client_id : string)
    ~(client_reveal : Larch_mpc.Spdz.open_reveal) : bool =
  Trace.with_span "log.fido2.auth_finish" @@ fun () ->
  let c = get_client t client_id in
  let f = fido2_state c in
  let st = match f.signing with Some s -> s | None -> Types.fail "no signing in progress" in
  let commit =
    match f.client_commit with Some c -> c | None -> Types.fail "no client commitment"
  in
  f.signing <- None;
  f.client_commit <- None;
  let ok = Tpe.open_check st ~other_commit:commit ~other_reveal:client_reveal in
  if ok then
    Events.emit ~client:client_id ~method_:"fido2" Events.Auth_finish "signature share released"
  else
    Events.emit ~severity:Events.Error ~client:client_id ~method_:"fido2" Events.Protocol_error
      "client opening failed the MAC check";
  ok

(* Abandon an in-flight FIDO2 signing session after a transport failure.

   The volatile session state is discarded (any staged-but-uncommitted
   record with it), and the presignature cursors are burned *forward* until
   the log has consumed [consumed] presignatures in total — the client's
   own count.  Never backward: a presignature whose round-1 message may
   have left this log is compromised and must not be reused, so a
   half-spent session costs one presignature on both sides and the next
   session starts aligned. *)
let fido2_auth_abort (t : t) ~(client_id : string) ~(consumed : int) : unit =
  let c = get_client t client_id in
  let f = fido2_state c in
  if f.signing <> None || f.signing_record <> None || f.client_commit <> None then
    Events.emit ~severity:Events.Warn ~client:client_id ~method_:"fido2" Events.Protocol_error
      "in-flight signing session abandoned by the client";
  f.signing <- None;
  f.signing_record <- None;
  f.client_commit <- None;
  if Log_state.total_consumed f < consumed then begin
    m_add "log.fido2.presigs_burned" (consumed - Log_state.total_consumed f);
    with_sync t @@ fun () -> commit t { cid = client_id; op = Fido2_abort { consumed } }
  end

(* A log-process restart.  With a store attached this is a genuine kill:
   the disk keeps only what was fsynced (plus whatever its failure profile
   lets survive of the rest), and the client map is rebuilt from the
   snapshot + WAL alone — volatile in-flight session state is gone because
   nothing ever persisted it.  Without a store, the in-memory map *is* the
   durable state, so only the volatile session fields are dropped. *)
let restart (t : t) : unit =
  Hashtbl.reset t.preverified;
  match t.persist with
  | Some p ->
      let recovered = Log_persist.reopen p in
      Hashtbl.reset t.clients;
      Hashtbl.iter (fun cid c -> Hashtbl.replace t.clients cid c) recovered
  | None ->
      Hashtbl.iter
        (fun _ (c : client_state) ->
          match c.fido2 with
          | Some f ->
              f.signing <- None;
              f.signing_record <- None;
              f.client_commit <- None
          | None -> ())
        t.clients

(* --- TOTP --- *)

let totp_state = Log_state.totp_state

let totp_register (t : t) ~(client_id : string) (reg : Totp_protocol.registration) : unit =
  let c = get_client t client_id in
  let s = totp_state c in
  if
    List.exists
      (fun r ->
        r.Totp_protocol.id = reg.Totp_protocol.id && r.Totp_protocol.klog = reg.Totp_protocol.klog)
      s.registrations
  then () (* byte-identical retransmission: already stored *)
  else begin
    if List.exists (fun r -> r.Totp_protocol.id = reg.Totp_protocol.id) s.registrations then
      Types.fail "duplicate totp registration id";
    (with_sync t @@ fun () ->
     commit t
       {
         cid = client_id;
         op = Totp_register { id = reg.Totp_protocol.id; klog = reg.Totp_protocol.klog };
       });
    (* the registration identifier is random and never logged *)
    Events.emit ~client:client_id ~method_:"totp" Events.Register
      (Printf.sprintf "totp share stored (%d registrations)" (List.length s.registrations))
  end

let totp_unregister (t : t) ~(client_id : string) ~(token : string) ~(id : string) : bool =
  (* §4: clients can delete unused registrations to speed up the 2PC *)
  let c = get_client t client_id in
  check_token c token;
  let s = totp_state c in
  let removed = List.exists (fun r -> r.Totp_protocol.id = id) s.registrations in
  if removed then
    (with_sync t @@ fun () -> commit t { cid = client_id; op = Totp_unregister { id } });
  removed

let totp_registration_count (t : t) ~(client_id : string) : int =
  List.length (totp_state (get_client t client_id)).registrations

(* Leaf index of the TOTP record carrying [enc_nonce], for re-attesting a
   replayed 2PC outcome.  [c.records] is newest-first, so position [p]
   from the head is leaf [len - 1 - p]. *)
let record_index_of_nonce (c : client_state) ~(enc_nonce : string) : int =
  let len = List.length c.records in
  let rec scan pos = function
    | [] -> Types.fail "replayed totp outcome has no stored record"
    | (r : Record.t) :: rest -> (
        match r.Record.payload with
        | Record.Symmetric { nonce; _ } when Larch_util.Bytesx.ct_equal nonce enc_nonce ->
            len - 1 - pos
        | _ -> scan (pos + 1) rest)
  in
  scan 0 c.records

(* Execute the joint 2PC.  The closure receives the log's private inputs
   and runs the Yao protocol; the log stores the record iff the circuit's
   validity bit is set.  The ack pairs the outcome with an inclusion
   attestation for the stored record. *)
let totp_auth (t : t) ~(client_id : string) ~(ip : string) ~(now : float) ~(enc_nonce : string)
    ~(run :
       cm:string ->
       registrations:(string * string) list ->
       rand_log:(int -> string) ->
       Totp_protocol.outcome) : Totp_protocol.outcome * attestation =
  Trace.with_span "log.totp.auth" @@ fun () ->
  let c = get_client t client_id in
  let s = totp_state c in
  match s.last_auth with
  | Some (n, outcome) when Larch_util.Bytesx.ct_equal n enc_nonce ->
      (* retransmitted invocation of a 2PC that already completed: replay
         the outcome; the record is already stored and the policy already
         charged, but the attestation is re-issued against the current
         tree (the original's head may have grown since) *)
      (outcome, attest t ~client_id c ~index:(record_index_of_nonce c ~enc_nonce))
  | _ ->
      with_sync t @@ fun () ->
      enforce_policy t ~client_id c ~method_:Types.Totp ~now;
      Events.emit ~client:client_id ~method_:"totp" Events.Auth_begin
        (Printf.sprintf "2pc over %d registrations" (List.length s.registrations));
      let regs = List.map (fun r -> (r.Totp_protocol.id, r.Totp_protocol.klog)) s.registrations in
      (* the commitment baked into the circuit is the one the log recorded at
         enrollment — a client cannot substitute a commitment to a different
         archive key *)
      let outcome = run ~cm:s.cm_totp ~registrations:regs ~rand_log:t.rand in
      if not outcome.Totp_protocol.ok then begin
        Events.emit ~severity:Events.Error ~client:client_id ~method_:"totp" Events.Protocol_error
          "2pc validity bit is 0";
        Types.fail "totp 2pc validity bit is 0"
      end;
      let record =
        {
          Record.time = now;
          ip;
          method_ = Types.Totp;
          (* the Yao execution already binds the ciphertext, so the 64B
             integrity-signature slot is zero-filled but still accounted, as in
             the paper's 88B TOTP record *)
          payload =
            Record.Symmetric
              { nonce = enc_nonce; ct = outcome.Totp_protocol.ct; signature = String.make 64 '\000' };
        }
      in
      commit t
        {
          cid = client_id;
          op =
            Totp_auth
              {
                record;
                enc_nonce;
                code = outcome.Totp_protocol.code;
                hmac = outcome.Totp_protocol.hmac;
                ct = outcome.Totp_protocol.ct;
              };
        };
      m_inc "log.records.stored";
      Events.emit ~client:client_id ~method_:"totp" Events.Auth_finish
        "code released, encrypted record stored";
      (* keep the measured 2PC timings in the volatile dedup slot (replay
         reconstructs the same outcome with zeroed timings) *)
      s.last_auth <- Some (enc_nonce, outcome);
      (outcome, attest t ~client_id c ~index:(Merkle.Tree.size c.tree - 1))

(* --- passwords --- *)

let pw_state = Log_state.pw_state

let pw_register (t : t) ~(client_id : string) ~(id : string) : Point.t =
  let c = get_client t client_id in
  let s = pw_state c in
  if List.mem id s.ids then
    (* retransmission: the id is a 128-bit random handle the client drew,
       so a repeat can only be the same registration arriving twice; the
       answer Hash(id)^k is deterministic *)
    Password_protocol.log_register ~log_sk:s.k ~id
  else begin
    (with_sync t @@ fun () -> commit t { cid = client_id; op = Pw_register { id } });
    (* the identifier is a random handle carrying no relying-party name *)
    Events.emit ~client:client_id ~method_:"password" Events.Register
      (Printf.sprintf "password registered (%d ids)" (List.length s.ids));
    Password_protocol.log_register ~log_sk:s.k ~id
  end

let pw_registered_ids (t : t) ~(client_id : string) : string list =
  (pw_state (get_client t client_id)).ids

(* Roll back a registration that failed partway across a multi-log
   deployment; token-authenticated like every other destructive call. *)
let pw_unregister (t : t) ~(client_id : string) ~(token : string) ~(id : string) : bool =
  let c = get_client t client_id in
  check_token c token;
  let s = pw_state c in
  let removed = List.mem id s.ids in
  if removed then
    (with_sync t @@ fun () -> commit t { cid = client_id; op = Pw_unregister { id } });
  removed

(* Verify the one-out-of-many proofs, store the ElGamal record, reply with
   c₂^k (and a DLEQ proof that the right k was used), plus an inclusion
   attestation for the stored record. *)
let pw_auth (t : t) ~(client_id : string) ~(ip : string) ~(now : float)
    (req : Password_protocol.auth_request) : Point.t * Larch_sigma.Dleq.proof * attestation =
  Trace.with_span "log.pw.auth" @@ fun () ->
  with_sync t @@ fun () ->
  let c = get_client t client_id in
  let s = pw_state c in
  enforce_policy t ~client_id c ~method_:Types.Password ~now;
  Events.emit ~client:client_id ~method_:"password" Events.Auth_begin
    (Printf.sprintf "one-out-of-many proof over %d ids" (List.length s.ids));
  match
    Password_protocol.log_auth ~log_sk:s.k ~client_pub:s.client_pub ~ids:s.ids req
  with
  | None ->
      Events.emit ~severity:Events.Error ~client:client_id ~method_:"password"
        Events.Protocol_error "one-out-of-many proof rejected";
      Types.fail "one-out-of-many proof rejected"
  | Some y ->
      commit t
        {
          cid = client_id;
          op =
            Pw_auth
              {
                record =
                  {
                    Record.time = now;
                    ip;
                    method_ = Types.Password;
                    payload = Record.Elgamal req.Password_protocol.ct;
                  };
              };
        };
      m_inc "log.records.stored";
      Events.emit ~client:client_id ~method_:"password" Events.Auth_finish
        "exponentiation released, elgamal record stored";
      let proof =
        Larch_sigma.Dleq.prove ~base1:Point.g ~base2:req.Password_protocol.ct.Larch_ec.Elgamal.c2
          ~secret:s.k ~tag:"larch-pw-log" ~rand_bytes:t.rand
      in
      let att = attest t ~client_id c ~index:(Merkle.Tree.size c.tree - 1) in
      (y, proof, att)

(* --- auditing, revocation, migration --- *)

let audit (t : t) ~(client_id : string) ~(token : string) : Record.t list =
  Trace.with_span "log.audit" @@ fun () ->
  let c = get_client t client_id in
  check_token c token;
  Events.emit ~client:client_id Events.Audit
    (Printf.sprintf "served %d encrypted records" (List.length c.records));
  List.rev c.records

(* Everything an auditing client needs to extend its verified view:
   the record delta since the tree size it last verified, the hash-chain
   head (legacy rollback detection), a fresh STH, a consistency proof
   from [since] to the new head, and one inclusion proof per delta
   record. *)
type audit_response = {
  records : Record.t list; (* the delta, oldest first *)
  since : int; (* tree size the delta starts at (clamped) *)
  chain_head : string;
  chain_len : int;
  sth : Merkle.Sth.t;
  consistency : string list; (* proof from [since] to [sth.size] *)
  proofs : string list list; (* inclusion proof per delta record *)
}

let put_audit_response (w : Wire.writer) (a : audit_response) : unit =
  Wire.u32 w (List.length a.records);
  List.iter (fun r -> Wire.bytes w (Record.encode r)) a.records;
  Wire.u32 w a.since;
  Wire.fixed w a.chain_head;
  Wire.u32 w a.chain_len;
  Merkle.Sth.put w a.sth;
  Merkle.put_proof w a.consistency;
  Wire.u32 w (List.length a.proofs);
  List.iter (fun p -> Merkle.put_proof w p) a.proofs

let max_audit_records = 1 lsl 20

let read_audit_response (r : Wire.reader) : audit_response =
  let n = Wire.read_u32 r in
  if n < 0 || n > max_audit_records then raise (Wire.Malformed "bad audit record count");
  let records =
    List.init n (fun _ ->
        match Record.decode_opt (Wire.read_bytes r) with
        | Some rec_ -> rec_
        | None -> raise (Wire.Malformed "bad audit record"))
  in
  let since = Wire.read_u32 r in
  if since < 0 then raise (Wire.Malformed "bad audit since");
  let chain_head = Wire.read_fixed r 32 in
  let chain_len = Wire.read_u32 r in
  if chain_len < 0 then raise (Wire.Malformed "bad audit chain length");
  let sth = Merkle.Sth.read r in
  let consistency = Merkle.read_proof r in
  let np = Wire.read_u32 r in
  if np < 0 || np > max_audit_records then raise (Wire.Malformed "bad audit proof count");
  let proofs = List.init np (fun _ -> Merkle.read_proof r) in
  { records; since; chain_head; chain_len; sth; consistency; proofs }

let encode_audit_response (a : audit_response) : string =
  Wire.encode (fun w -> put_audit_response w a)

let decode_audit_response (s : string) : (audit_response, string) result =
  Wire.decode s read_audit_response

(* Audit with proofs.  [since] is the tree size the client last verified;
   a [since] the log cannot serve (after a prune, or from a different
   fork) is clamped to 0 and the full history returned — the client
   notices via the [since] echo and its own consistency check. *)
let audit_with_head ?(since = 0) (t : t) ~(client_id : string) ~(token : string) :
    audit_response =
  Trace.with_span "log.audit.head" @@ fun () ->
  let c = get_client t client_id in
  check_token c token;
  let size = Merkle.Tree.size c.tree in
  let total = List.length c.records in
  let since = if since < 0 || since > size || since > total then 0 else since in
  let oldest_first = List.rev c.records in
  let records = List.filteri (fun i _ -> i >= since) oldest_first in
  let sth = latest_sth t ~client_id c in
  let consistency =
    if since > 0 && since < size then Merkle.Tree.consistency c.tree ~old_size:since ~new_size:size
    else []
  in
  let proofs =
    List.mapi
      (fun i _ ->
        let idx = since + i in
        if idx < size then Merkle.Tree.inclusion_at c.tree ~index:idx ~size else [])
      records
  in
  Events.emit ~client:client_id Events.Audit
    (Printf.sprintf "served %d-record delta from size %d with proofs" (List.length records) since);
  { records; since; chain_head = c.chain_head; chain_len = c.chain_len; sth; consistency; proofs }

(* The signed head alone — what a multilog cross-check or a gossiping
   verifier fetches. *)
let tree_head (t : t) ~(client_id : string) ~(token : string) : Merkle.Sth.t =
  let c = get_client t client_id in
  check_token c token;
  latest_sth t ~client_id c

(* Consistency proof from an old head a verifier remembers to the current
   tree; the verifier supplies the size, the log proves append-only. *)
let consistency_proof (t : t) ~(client_id : string) ~(token : string) ~(old_size : int) :
    string list =
  let c = get_client t client_id in
  check_token c token;
  let size = Merkle.Tree.size c.tree in
  if old_size < 0 || old_size > size then
    Types.fail "no consistency proof from size %d (tree has %d leaves)" old_size size;
  Merkle.Tree.consistency c.tree ~old_size ~new_size:size

(* §9 limitation mitigation: drop or re-encrypt old records. *)
let prune_records (t : t) ~(client_id : string) ~(token : string) ~(older_than : float) : int =
  let c = get_client t client_id in
  check_token c token;
  let dropped = List.length (List.filter (fun r -> r.Record.time < older_than) c.records) in
  if dropped > 0 then
    (with_sync t @@ fun () -> commit t { cid = client_id; op = Prune { older_than } });
  dropped

(* Revocation: delete the log-side shares so a lost device's secrets are
   useless (§9 "Revocation and migration"). *)
let revoke_all (t : t) ~(client_id : string) ~(token : string) : unit =
  let c = get_client t client_id in
  check_token c token;
  (with_sync t @@ fun () -> commit t { cid = client_id; op = Revoke });
  Events.emit ~severity:Events.Warn ~client:client_id Events.Revocation
    "all log-side shares deleted"

(* Migration: shift the log's FIDO2 key share by δ; combined with the
   client shifting every per-party share by -δ, public keys are unchanged
   while the old device's shares become useless. *)
let migrate_fido2 (t : t) ~(client_id : string) ~(token : string) ~(delta : Scalar.t) : unit =
  let c = get_client t client_id in
  check_token c token;
  ignore (fido2_state c);
  let delta_bytes = Scalar.to_bytes_be delta in
  match c.last_migrate with
  | Some d when Larch_util.Bytesx.ct_equal d delta_bytes -> () (* retransmission: δ already applied *)
  | _ -> with_sync t @@ fun () -> commit t { cid = client_id; op = Migrate { delta } }

(* --- encrypted state backups (§9 "Account recovery") --- *)

(* The blob is opaque authenticated ciphertext under a password-derived
   key; the log learns nothing from storing it. *)
let store_backup (t : t) ~(client_id : string) (blob : string) : unit =
  Events.emit ~client:client_id Events.Backup
    (Printf.sprintf "opaque state blob stored (%d bytes)" (String.length blob));
  ignore (get_client t client_id);
  with_sync t @@ fun () -> commit t { cid = client_id; op = Store_backup { blob } }

(* Fetching the backup is the one operation that must NOT require the
   account token through the normal channel: the user has lost her devices.
   The blob is self-protecting (wrong passwords fail its MAC), so handing
   it out reveals nothing; a production log would still rate-limit. *)
let fetch_backup (t : t) ~(client_id : string) : string option =
  Events.emit ~severity:Events.Warn ~client:client_id Events.Recovery
    "backup blob fetched without account token";
  (get_client t client_id).backup

(* --- storage accounting (Figure 4, left) --- *)

type storage = { presig_bytes : int; record_bytes : int }

let storage (t : t) ~(client_id : string) : storage =
  let c = get_client t client_id in
  let presig_bytes =
    match c.fido2 with
    | None -> 0
    | Some f ->
        List.fold_left
          (fun acc b -> acc + 16 + (Tpe.log_batch_remaining b * Tpe.log_presig_bytes))
          0 (f.batches @ List.map fst f.pending)
  in
  let record_bytes = List.fold_left (fun acc r -> acc + Record.storage_bytes r) 0 c.records in
  { presig_bytes; record_bytes }
