(* Wire serialization for the durable log-service state: WAL entries
   (one [Log_state.entry] per frame) and full-state snapshots.

   The snapshot encoding is canonical — clients sorted by id, volatile
   fields omitted — so two state maps that agree on durable content
   produce identical bytes.  `larch fsck` leans on this: it re-derives
   the state by replaying snapshot + WAL through [Log_state.apply] and
   byte-compares the two encodings. *)

module Wire = Larch_net.Wire
module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Tpe = Two_party_ecdsa
open Log_state

let put_scalar w (s : Scalar.t) = Wire.fixed w (Scalar.to_bytes_be s)
let read_scalar r = Scalar.of_bytes_be (Wire.read_fixed r 32)
let put_point w (p : Point.t) = Wire.bytes w (Point.encode p)

let read_point r =
  match Point.decode (Wire.read_bytes r) with
  | Some p -> p
  | None -> raise (Wire.Malformed "bad point")

let put_float w (f : float) = Wire.u64 w (Int64.bits_of_float f)
let read_float r = Int64.float_of_bits (Wire.read_u64 r)

let put_opt (put : Wire.writer -> 'a -> unit) w (v : 'a option) =
  match v with
  | None -> Wire.u8 w 0
  | Some x ->
      Wire.u8 w 1;
      put w x

let read_opt (read : Wire.reader -> 'a) r : 'a option =
  match Wire.read_u8 r with
  | 0 -> None
  | 1 -> Some (read r)
  | _ -> raise (Wire.Malformed "bad option tag")

let put_record w (rec_ : Record.t) = Wire.bytes w (Record.encode rec_)

let read_record r =
  match Record.decode_opt (Wire.read_bytes r) with
  | Some rec_ -> rec_
  | None -> raise (Wire.Malformed "bad record")

let put_batch w (b : Tpe.log_batch) =
  Wire.bytes w b.Tpe.seed;
  Wire.u32 w b.Tpe.next;
  Wire.u32 w (Array.length b.Tpe.entries);
  Array.iter
    (fun (p : Tpe.log_presig) ->
      List.iter (put_scalar w) [ p.Tpe.cap_r; p.Tpe.r0; p.Tpe.rhat0; p.Tpe.alpha0; p.Tpe.c0; p.Tpe.h0 ])
    b.Tpe.entries

let read_batch r : Tpe.log_batch =
  let seed = Wire.read_bytes r in
  let next = Wire.read_u32 r in
  let count = Wire.read_u32 r in
  if count < 0 || count > 1_000_000 then raise (Wire.Malformed "bad batch size");
  let entries =
    Array.init count (fun _ ->
        let cap_r = read_scalar r in
        let r0 = read_scalar r in
        let rhat0 = read_scalar r in
        let alpha0 = read_scalar r in
        let c0 = read_scalar r in
        let h0 = read_scalar r in
        { Tpe.cap_r; r0; rhat0; alpha0; c0; h0 })
  in
  { Tpe.seed; entries; next }

(* --- WAL entries --- *)

let encode_op (w : Wire.writer) (op : op) : unit =
  match op with
  | Enroll { token } ->
      Wire.u8 w 0;
      Wire.bytes w token
  | Set_policy { max_auths; window } ->
      Wire.u8 w 1;
      put_opt (fun w v -> Wire.u32 w v) w max_auths;
      put_float w window
  | Enroll_fido2 { cm; record_vk; x; batch } ->
      Wire.u8 w 2;
      Wire.bytes w cm;
      put_point w record_vk;
      put_scalar w x;
      put_batch w batch
  | Enroll_totp { cm } ->
      Wire.u8 w 3;
      Wire.bytes w cm
  | Enroll_pw { client_pub; k } ->
      Wire.u8 w 4;
      put_point w client_pub;
      put_scalar w k
  | Stage_presigs { batch; activate_at } ->
      Wire.u8 w 5;
      put_batch w batch;
      put_float w activate_at
  | Activate_pending { now } ->
      Wire.u8 w 6;
      put_float w now
  | Object_pending -> Wire.u8 w 7
  | Charge { method_; now } ->
      Wire.u8 w 8;
      Wire.u8 w (Types.auth_method_tag method_);
      put_float w now
  | Fido2_consume { index; total } ->
      Wire.u8 w 9;
      Wire.u32 w index;
      Wire.u32 w total
  | Fido2_record { record } ->
      Wire.u8 w 10;
      put_record w record
  | Fido2_abort { consumed } ->
      Wire.u8 w 11;
      Wire.u32 w consumed
  | Totp_register { id; klog } ->
      Wire.u8 w 12;
      Wire.bytes w id;
      Wire.bytes w klog
  | Totp_unregister { id } ->
      Wire.u8 w 13;
      Wire.bytes w id
  | Totp_auth { record; enc_nonce; code; hmac; ct } ->
      Wire.u8 w 14;
      put_record w record;
      Wire.bytes w enc_nonce;
      Wire.u32 w code;
      Wire.bytes w hmac;
      Wire.bytes w ct
  | Pw_register { id } ->
      Wire.u8 w 15;
      Wire.bytes w id
  | Pw_unregister { id } ->
      Wire.u8 w 16;
      Wire.bytes w id
  | Pw_auth { record } ->
      Wire.u8 w 17;
      put_record w record
  | Prune { older_than } ->
      Wire.u8 w 18;
      put_float w older_than
  | Revoke -> Wire.u8 w 19
  | Migrate { delta } ->
      Wire.u8 w 20;
      put_scalar w delta
  | Store_backup { blob } ->
      Wire.u8 w 21;
      Wire.bytes w blob

let decode_op (r : Wire.reader) : op =
  match Wire.read_u8 r with
  | 0 -> Enroll { token = Wire.read_bytes r }
  | 1 ->
      let max_auths = read_opt Wire.read_u32 r in
      let window = read_float r in
      Set_policy { max_auths; window }
  | 2 ->
      let cm = Wire.read_bytes r in
      let record_vk = read_point r in
      let x = read_scalar r in
      let batch = read_batch r in
      Enroll_fido2 { cm; record_vk; x; batch }
  | 3 -> Enroll_totp { cm = Wire.read_bytes r }
  | 4 ->
      let client_pub = read_point r in
      let k = read_scalar r in
      Enroll_pw { client_pub; k }
  | 5 ->
      let batch = read_batch r in
      let activate_at = read_float r in
      Stage_presigs { batch; activate_at }
  | 6 -> Activate_pending { now = read_float r }
  | 7 -> Object_pending
  | 8 ->
      let method_ =
        match Types.auth_method_of_tag (Wire.read_u8 r) with
        | Some m -> m
        | None -> raise (Wire.Malformed "bad method tag")
      in
      let now = read_float r in
      Charge { method_; now }
  | 9 ->
      let index = Wire.read_u32 r in
      let total = Wire.read_u32 r in
      Fido2_consume { index; total }
  | 10 -> Fido2_record { record = read_record r }
  | 11 -> Fido2_abort { consumed = Wire.read_u32 r }
  | 12 ->
      let id = Wire.read_bytes r in
      let klog = Wire.read_bytes r in
      Totp_register { id; klog }
  | 13 -> Totp_unregister { id = Wire.read_bytes r }
  | 14 ->
      let record = read_record r in
      let enc_nonce = Wire.read_bytes r in
      let code = Wire.read_u32 r in
      let hmac = Wire.read_bytes r in
      let ct = Wire.read_bytes r in
      Totp_auth { record; enc_nonce; code; hmac; ct }
  | 15 -> Pw_register { id = Wire.read_bytes r }
  | 16 -> Pw_unregister { id = Wire.read_bytes r }
  | 17 -> Pw_auth { record = read_record r }
  | 18 -> Prune { older_than = read_float r }
  | 19 -> Revoke
  | 20 -> Migrate { delta = read_scalar r }
  | 21 -> Store_backup { blob = Wire.read_bytes r }
  | t -> raise (Wire.Malformed (Printf.sprintf "bad op tag %d" t))

let encode_entry ({ cid; op } : entry) : string =
  Wire.encode (fun w ->
      Wire.bytes w cid;
      encode_op w op)

let decode_entry (s : string) : (entry, string) result =
  Wire.decode s (fun r ->
      let cid = Wire.read_bytes r in
      let op = decode_op r in
      { cid; op })

(* --- full-state snapshots --- *)

let put_fido2 w (f : fido2_state) =
  Wire.bytes w f.cm;
  put_point w f.record_vk;
  put_scalar w f.key.Tpe.x;
  Wire.list w put_batch f.batches;
  Wire.list w
    (fun w (b, at) ->
      put_batch w b;
      put_float w at)
    f.pending

let read_fido2 r : fido2_state =
  let cm = Wire.read_bytes r in
  let record_vk = read_point r in
  let x = read_scalar r in
  let batches = Wire.read_list r read_batch in
  let pending =
    Wire.read_list r (fun r ->
        let b = read_batch r in
        let at = read_float r in
        (b, at))
  in
  {
    cm;
    record_vk;
    key = { Tpe.x; x_pub = Point.mul_base x };
    batches;
    pending;
    signing = None;
    signing_record = None;
    client_commit = None;
  }

let put_totp w (s : totp_state) =
  Wire.bytes w s.cm_totp;
  Wire.list w (fun w reg -> Wire.bytes w (Totp_protocol.encode_registration reg)) s.registrations;
  put_opt
    (fun w (nonce, (o : Totp_protocol.outcome)) ->
      Wire.bytes w nonce;
      Wire.u32 w o.Totp_protocol.code;
      Wire.bytes w o.Totp_protocol.hmac;
      Wire.bytes w o.Totp_protocol.ct)
    w s.last_auth

let read_totp r : totp_state =
  let cm_totp = Wire.read_bytes r in
  let registrations =
    Wire.read_list r (fun r ->
        match Totp_protocol.decode_registration (Wire.read_bytes r) with
        | Some reg -> reg
        | None -> raise (Wire.Malformed "bad totp registration"))
  in
  let last_auth =
    read_opt
      (fun r ->
        let nonce = Wire.read_bytes r in
        let code = Wire.read_u32 r in
        let hmac = Wire.read_bytes r in
        let ct = Wire.read_bytes r in
        (nonce, { Totp_protocol.code; hmac; ok = true; ct; timings = zero_timings }))
      r
  in
  { cm_totp; registrations; last_auth }

let put_pw w (s : pw_state) =
  put_point w s.client_pub;
  put_scalar w s.k;
  Wire.list w (fun w id -> Wire.bytes w id) s.ids

let read_pw r : pw_state =
  let client_pub = read_point r in
  let k = read_scalar r in
  let ids = Wire.read_list r Wire.read_bytes in
  { client_pub; k; k_pub = Point.mul_base k; ids }

let put_client w (c : client_state) =
  Wire.bytes w c.account_token;
  put_opt put_fido2 w c.fido2;
  put_opt put_totp w c.totp;
  put_opt put_pw w c.pw;
  Wire.list w put_record c.records;
  put_opt (fun w v -> Wire.u32 w v) w c.policy.max_auths_per_window;
  put_float w c.policy.window_seconds;
  Wire.list w put_float c.recent_auths;
  put_opt (fun w b -> Wire.bytes w b) w c.backup;
  Wire.bytes w c.chain_head;
  Wire.u32 w c.chain_len;
  put_opt (fun w d -> Wire.bytes w d) w c.last_migrate

let read_client r : client_state =
  let account_token = Wire.read_bytes r in
  let fido2 = read_opt read_fido2 r in
  let totp = read_opt read_totp r in
  let pw = read_opt read_pw r in
  let records = Wire.read_list r read_record in
  let max_auths = read_opt Wire.read_u32 r in
  let window_seconds = read_float r in
  let recent_auths = Wire.read_list r read_float in
  let backup = read_opt Wire.read_bytes r in
  let chain_head = Wire.read_bytes r in
  let chain_len = Wire.read_u32 r in
  let last_migrate = read_opt Wire.read_bytes r in
  {
    account_token;
    fido2;
    totp;
    pw;
    records;
    policy = { default_policy with max_auths_per_window = max_auths; window_seconds };
    recent_auths;
    backup;
    chain_head;
    chain_len;
    last_migrate;
    (* the Merkle tree is derived state: rebuilt from the decoded records
       (oldest first) so snapshot bytes stay canonical and comparable *)
    tree = Larch_merkle.Merkle.Tree.of_leaves (List.rev_map Record.encode records);
  }

let encode_clients (clients : clients) : string =
  let cids = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) clients []) in
  Wire.encode (fun w ->
      Wire.list w
        (fun w cid ->
          Wire.bytes w cid;
          put_client w (Hashtbl.find clients cid))
        cids)

let decode_clients (s : string) : (clients, string) result =
  Wire.decode s (fun r ->
      let clients : clients = Hashtbl.create 8 in
      let pairs =
        Wire.read_list r (fun r ->
            let cid = Wire.read_bytes r in
            let c = read_client r in
            (cid, c))
      in
      List.iter (fun (cid, c) -> Hashtbl.replace clients cid c) pairs;
      clients)
