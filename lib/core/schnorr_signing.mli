(** Two-party Schnorr signing without presignatures — the §3.3/§9
    "future FIDO" extension and the {!page-index} ablation baseline.

    Two rounds, no preprocessing: commit-reveal on the log's nonce half
    prevents bias, and the challenge hash omits the public key (which the
    log must not learn). *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar

type signature = { r_point : Point.t; s : Scalar.t }

val challenge : r_point:Point.t -> digest:string -> Scalar.t
val verify : pk:Point.t -> digest:string -> signature -> bool

val verify_batch : (Point.t * string * signature) list -> bool array
(** Verify many [(pk, digest, signature)] triples with one random-weight
    Pippenger multi-exponentiation (weights from a DRBG keyed on the
    batch contents); falls back to per-item {!verify} when the combined
    equation fails, so the accept set is unchanged.  Returns per-item
    validity. *)

type log_round1 = { commitment : string }
type log_state = { r0 : Scalar.t; r0_pub : Point.t; nonce : string }

val log_round1 : rand_bytes:(int -> string) -> log_state * log_round1

type client_round = { r1_pub : Point.t }
type client_state = { r1 : Scalar.t; seen_commitment : string }

val client_round : commitment:log_round1 -> rand_bytes:(int -> string) -> client_state * client_round

type log_round2 = { r0_pub : Point.t; nonce : string; s0 : Scalar.t }

val log_round2 : log_state -> client:client_round -> sk0:Scalar.t -> digest:string -> log_round2

val client_finish :
  client_state -> log_msg:log_round2 -> sk1:Scalar.t -> digest:string -> signature option
(** [None] if the log equivocated on its nonce commitment. *)

val wire_bytes : int
(** Total protocol bytes per signature (for the ablation bench). *)
