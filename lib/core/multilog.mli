(** Splitting trust across multiple log services (§6).

    Enroll with n logs, authenticate with any t, audit completely with any
    n − t + 1.  Fully implemented for passwords via Shamir sharing of the
    log-side Diffie-Hellman key with recombination in the exponent; FIDO2
    and TOTP generalize via threshold ECDSA / multi-party GC (the paper
    defers to existing protocols).

    Every log sits behind its own {!Larch_net.Transport}: logs can be taken
    down administratively or given fault injectors, and authentication
    fails over mid-flight to any other online t-subset. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Shamir = Larch_mpc.Shamir
module Transport = Larch_net.Transport

(** Per-log circuit breaker state (see {!breaker_open}). *)
type breaker = {
  mutable consecutive : int;  (** consecutive overload/timeout failures *)
  mutable open_until : float;
      (** simulated time the cooldown ends; 0 = closed *)
  mutable trips : int;
}

type t = {
  logs : Log_service.t array;
  transports : Transport.t array; (** one per log, labelled ["log<i>"] *)
  threshold : int;
  online : bool array;
  rand : int -> string;
  breakers : breaker array;
  breaker_threshold : int;
  breaker_cooldown : float;
}

val create :
  ?policy:Transport.policy ->
  ?net:Larch_net.Netsim.t ->
  ?disk:Larch_store.Disk.t ->
  ?checkpoint_every:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:float ->
  n:int ->
  threshold:int ->
  rand_bytes:(int -> string) ->
  unit ->
  t
(** With [disk], each of the n logs opens an independent
    {!Larch_store.Store} in its own directory ([log0/], [log1/], …) on the
    shared disk, so a transport-injected restart of one log is a genuine
    kill-and-recover that leaves its peers untouched.

    [breaker_threshold] consecutive overload/timeout failures of one log
    trip its circuit breaker: {!authenticate} routes around it for
    [breaker_cooldown] (default 5) simulated seconds, then lets one
    probe through — success closes the breaker, failure re-trips it.
    The default [breaker_threshold = 0] disables the breakers — like
    every other overload control, they are opt-in, so fault-injection
    setups that rely on per-attempt retries keep their behavior. *)

val n_logs : t -> int

val breaker_open : t -> int -> bool
(** Log [i]'s circuit breaker is currently open (on the simulated
    clock): {!authenticate} will skip it without an attempt. *)

val breaker_trips : t -> int -> int
(** How many times log [i]'s breaker has tripped. *)

val set_online : t -> int -> bool -> unit
(** Availability simulation: mark log [i] up or down (administratively —
    the transport fails fast without retrying). *)

val set_injector : t -> int -> Larch_net.Fault.t option -> unit
(** Install (or clear) a fault injector on log [i]'s transport. *)

val online_indices : t -> int list

(** Client-side multi-log password state. *)
type client = {
  client_id : string;
  account_password : string;
  x : Scalar.t;
  x_pub : Point.t;
  k_pub : Point.t; (** K = g^k for the joint (dealt) key *)
  mutable ids : string list;
  creds : (string, string * Point.t) Hashtbl.t;
  names : (string, string) Hashtbl.t;
}

exception Unavailable of string

val enroll : t -> client_id:string -> account_password:string -> client
(** One-time enrollment with all n logs; the client deals Shamir shares of
    the joint key and deletes it.  If any log is unreachable the
    already-enrolled logs are rolled back (best-effort revocation) and the
    transport error is re-raised, leaving the client re-enrollable. *)

val revoke : t -> client -> unit
(** Best-effort revocation at every reachable log; clears the client's
    credential maps so a fresh {!enroll} can follow. *)

val register : t -> client -> rp_name:string -> string
(** Register at every log (so identifier sets stay aligned); returns the
    password for the relying party.  A failure partway unregisters the
    identifier from the logs that already stored it. *)

val authenticate : t -> client -> rp_name:string -> now:float -> string
(** Authenticate against any t reachable logs, failing over past logs
    whose transport gives up (each failover emits a
    {!Larch_obs.Events.Failover} event).
    @raise Unavailable when fewer than t logs answer *)

type audit_result = {
  entries : (float * string option) list;
  complete : bool; (** guaranteed-complete iff ≥ n − t + 1 logs reachable *)
}

val audit : t -> client -> audit_result
(** Union of reachable logs' records, deduplicated by ciphertext;
    unreachable logs are skipped and counted against [complete]. *)

(** Cross-replica tree-head comparison.  Honest replicas hold identical
    record sequences, so every pair of reachable logs must be
    prefix-consistent.  [suspects] lists logs implicated by at least two
    bad pairs (with ≥3 reachable replicas this localizes a single forked
    log) or by an invalid head signature. *)
type split_view = {
  heads : (int * Larch_merkle.Merkle.Sth.t) list;
      (** reachable logs and their signature-verified heads *)
  checked_pairs : int;
  bad_pairs : (int * int) list;
      (** pairs whose trees are not prefix-consistent *)
  suspects : int list;
}

val check_split_view : t -> client -> split_view
(** Fetch every reachable log's signed head, then pairwise ask the log
    with the larger tree to prove it extends the smaller; emits a
    [Warn]-severity event per inconsistent pair. *)
