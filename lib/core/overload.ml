(* Deterministic overload scenario: a seeded swarm of concurrent client
   sessions against one store-backed log behind the Log_async admission
   loop, at a configurable offered-load multiple of the log's capacity.
   See overload.mli. *)

module Runtime = Larch_runtime.Runtime
module Transport = Larch_net.Transport
module Clock = Larch_util.Clock
module Obs = Larch_obs

(* 1x offered load: [pw_per_mult] password clients (the cheap bulk
   traffic) plus two FIDO2 probes whose presignature inventory must
   survive the storm intact (the fsck invariant the scenario exists to
   threaten).  Every 16th password client is "hot" — a Zipf-style head
   that fires [hot_auths] authentications instead of [auths_each],
   exercising the per-client token buckets and fair queueing. *)
let pw_per_mult = 20
let fido2_probes = 2
let auths_each = 3
let hot_auths = 10
let fido2_auths = 2

(* The log services one request per [service_time] simulated seconds
   (100 req/s); the storm admission policy bounds the queue at
   [capacity], rate-limits each client, and flips into brownout when the
   queue sits at/above [brownout_hi]. *)
let storm_config =
  {
    Log_async.capacity = 64;
    service_time = 0.01;
    client_rate = 3.;
    client_burst = 4.;
    brownout_hi = 32;
    brownout_lo = 8;
    brownout_enter_ticks = 6;
    brownout_exit_ticks = 12;
  }

(* Post-storm: no admission control, but the brownout watermarks stay
   armed so the state machine exits hysteretically on real (calm)
   traffic instead of being force-reset. *)
let calm_config =
  { storm_config with Log_async.capacity = 0; service_time = 0.; client_rate = 0. }

(* Impatient clients: a short per-attempt budget so deadline shedding has
   teeth, shallow retries, and backoff that stays well under a second. *)
let storm_policy =
  {
    Transport.max_attempts = 3;
    attempt_timeout = 0.3;
    base_backoff = 0.02;
    backoff_factor = 2.;
    max_backoff = 0.5;
    jitter = 0.2;
  }

let retry_budget_capacity = 6.
let retry_budget_refill = 1.

type world = {
  mult : int;
  clients : int;
  offered : int;
  completed : int;
  overloaded : int;
  failed : int;
  storm_elapsed : float;
  goodput : float;
  admission : Log_async.stats;
  attempts : int;
  retries : int;
  shed_attempts : int;
  budget_denied : int;
  brownout_recovered : bool;
  deferred_clients : int;
  audits_ok : int;
  audits_failed : int;
  fsck_clean : bool;
  digest : string;
  summary : string;
}

let is_overloaded = function
  | Transport.Error { Transport.last = Transport.Overloaded _; _ } -> true
  | _ -> false

let run ~(seed : string) ~(mult : int) : world =
  if mult < 1 then invalid_arg "Overload.run: mult must be >= 1";
  Clock.set 1_700_000_000.;
  Obs.Runtime.set_time_source (Some Clock.now);
  Transport.reset_ordinals ();
  let drbg = Larch_hash.Drbg.create ~entropy:(Printf.sprintf "larch-overload-%s/%dx" seed mult) in
  let rand n = Larch_hash.Drbg.generate drbg n in
  let disk = Larch_store.Disk.create ~seed () in
  let store = Larch_store.Store.open_ ~disk ~dir:"log" () in
  let log =
    Log_service.create ~checkpoint_every:64 ~objection_window:0.05 ~store ~rand_bytes:rand ()
  in
  let la = Log_async.create log in
  let n_pw = pw_per_mult * mult in
  let n_clients = n_pw + fido2_probes in
  let transcript = Buffer.create 4096 in
  let completed = ref 0 and overloaded = ref 0 and failed = ref 0 in
  let attempts = ref 0 and retries = ref 0 and shed_attempts = ref 0 and budget_denied = ref 0 in
  let audits_ok = ref 0 and audits_failed = ref 0 in
  let deferred_clients = ref 0 in
  let offered = ref 0 in
  let storm_elapsed = ref 0. in
  let brownout_recovered = ref true in
  Runtime.run ~seed:(Printf.sprintf "overload-sched-%s/%dx" seed mult) (fun () ->
      Log_async.start la;
      (* --- setup: enroll and register everyone on an unthrottled log --- *)
      let prep =
        Array.init n_clients (fun i ->
            let fido2 = i >= n_pw in
            let cid =
              if fido2 then Printf.sprintf "ovld-f2-%02d" (i - n_pw)
              else Printf.sprintf "ovld-pw-%03d" i
            in
            let client =
              Client.create ~policy:storm_policy ~net:Larch_net.Netsim.paper_default
                ~client_id:cid ~account_password:("pw-" ^ cid) ~log ~rand_bytes:rand ()
            in
            Log_async.attach la ~client_id:cid client.Client.transport;
            Client.enroll ~presignature_count:(if fido2 then 8 else 1) client;
            let rp = Relying_party.create ~name:("rp-" ^ cid) ~rand_bytes:rand () in
            if fido2 then begin
              let pk = Client.register_fido2 client ~rp_name:("rp-" ^ cid) in
              Relying_party.fido2_register rp ~username:cid ~pk
            end
            else begin
              let site_pw = Client.register_password client ~rp_name:("rp-" ^ cid) in
              Relying_party.password_set rp ~username:cid ~password:site_pw
            end;
            let auths =
              if fido2 then fido2_auths else if i mod 16 = 0 then hot_auths else auths_each
            in
            offered := !offered + auths;
            (cid, client, rp, fido2, auths))
      in
      (* --- the storm: tighten admission, arm retry budgets, fire ------- *)
      Log_async.set_config la storm_config;
      Array.iter
        (fun (_, client, _, _, _) ->
          Transport.set_retry_budget client.Client.transport ~capacity:retry_budget_capacity
            ~refill_per_s:retry_budget_refill)
        prep;
      let t0 = Clock.now () in
      let session i () =
        let cid, client, rp, fido2, auths = prep.(i) in
        let outcomes = Buffer.create auths in
        let ok = ref 0 and ovl = ref 0 and bad = ref 0 in
        for _ = 1 to auths do
          match
            if fido2 then begin
              let challenge = Relying_party.fido2_challenge rp ~username:cid in
              let assertion = Client.authenticate_fido2 client ~rp_name:("rp-" ^ cid) ~challenge in
              if not (Relying_party.fido2_login rp ~username:cid assertion) then
                failwith "relying party rejected"
            end
            else begin
              let pw = Client.authenticate_password client ~rp_name:("rp-" ^ cid) in
              if not (Relying_party.password_login rp ~username:cid ~password:pw) then
                failwith "relying party rejected"
            end
          with
          | () ->
              incr ok;
              Buffer.add_char outcomes 'o'
          | exception e when is_overloaded e ->
              incr ovl;
              Buffer.add_char outcomes 'O'
          | exception _ ->
              incr bad;
              Buffer.add_char outcomes 'x'
        done;
        completed := !completed + !ok;
        overloaded := !overloaded + !ovl;
        failed := !failed + !bad;
        let st = Transport.stats client.Client.transport in
        attempts := !attempts + st.Transport.attempts;
        retries := !retries + st.Transport.retries;
        shed_attempts := !shed_attempts + st.Transport.overloads;
        budget_denied := !budget_denied + st.Transport.budget_denied;
        Buffer.add_string transcript
          (Printf.sprintf "%s %-8s %d/%d ok, %d overloaded, %d failed [%s] retries=%d shed=%d\n"
             cid
             (if fido2 then "fido2" else "password")
             !ok auths !ovl !bad (Buffer.contents outcomes) st.Transport.retries
             st.Transport.overloads)
      in
      let fibers =
        List.init n_clients (fun i ->
            Runtime.spawn ~name:(Printf.sprintf "ovld-%03d" i) (session i))
      in
      List.iter
        (fun p -> match Runtime.await p with () -> () | exception _ -> incr failed)
        fibers;
      storm_elapsed := Clock.now () -. t0;
      (* --- calm: relax admission, verify everything survived ----------- *)
      Log_async.set_config la calm_config;
      Array.iter (fun (_, client, _, _, _) -> Transport.clear_retry_budget client.Client.transport) prep;
      Array.iter
        (fun (cid, client, _, _, _) ->
          if client.Client.att_deferred then incr deferred_clients;
          (match
             Client.resync client;
             Client.audit_verified client
           with
          | Ok entries ->
              incr audits_ok;
              Buffer.add_string transcript
                (Printf.sprintf "%s audit ok (%d records, deferred=%b)\n" cid
                   (List.length entries) client.Client.att_deferred)
          | Error m ->
              incr audits_failed;
              Buffer.add_string transcript (Printf.sprintf "%s audit FAILED %s\n" cid m)
          | exception e ->
              incr audits_failed;
              Buffer.add_string transcript
                (Printf.sprintf "%s audit error %s\n" cid (Printexc.to_string e)));
          (* a verified audit must have cleared any brownout deferral *)
          if client.Client.att_deferred then brownout_recovered := false)
        prep;
      if Log_async.brownout_active la then brownout_recovered := false;
      Log_async.stop la);
  let adm = Log_async.stats la in
  let goodput = if !storm_elapsed > 0. then float_of_int !completed /. !storm_elapsed else 0. in
  let fr = Option.get (Log_service.fsck log) in
  let fsck_clean = Log_persist.fsck_clean fr in
  Buffer.add_string transcript
    (Printf.sprintf
       "admission served=%d shed=%d (cap=%d deadline=%d rate=%d) max_queue=%d delay_max=%.3f\n"
       adm.Log_async.served adm.Log_async.shed_total adm.Log_async.shed_capacity
       adm.Log_async.shed_deadline adm.Log_async.shed_rate adm.Log_async.max_queue
       adm.Log_async.queue_delay_max);
  Buffer.add_string transcript
    (Printf.sprintf "transport attempts=%d retries=%d shed=%d budget_denied=%d\n" !attempts
       !retries !shed_attempts !budget_denied);
  Buffer.add_string transcript
    (Printf.sprintf "brownout entries=%d ticks=%d recovered=%b deferred_clients=%d\n"
       adm.Log_async.brownout_entries adm.Log_async.brownout_ticks !brownout_recovered
       !deferred_clients);
  Buffer.add_string transcript
    (Printf.sprintf "storm %d/%d completed, %d overloaded, %d failed in %.3fs (goodput %.1f/s)\n"
       !completed !offered !overloaded !failed !storm_elapsed goodput);
  Buffer.add_string transcript
    (Printf.sprintf "audits ok=%d failed=%d; fsck %s%s\n" !audits_ok !audits_failed
       (if fsck_clean then "clean" else "DIRTY")
       (match fr.Log_persist.issues with [] -> "" | l -> " " ^ String.concat "; " l));
  let summary =
    Printf.sprintf
      "%d clients: %d/%d auths, %d overloaded, %d failed; goodput %.1f/s; shed %d \
       (cap=%d ddl=%d rate=%d); brownout x%d%s; audits %d/%d; fsck %s"
      n_clients !completed !offered !overloaded !failed goodput adm.Log_async.shed_total
      adm.Log_async.shed_capacity adm.Log_async.shed_deadline adm.Log_async.shed_rate
      adm.Log_async.brownout_entries
      (if !brownout_recovered then " (recovered)" else " (STUCK)")
      !audits_ok n_clients
      (if fsck_clean then "clean" else "DIRTY")
  in
  Obs.Runtime.set_time_source None;
  Clock.use_real_time ();
  {
    mult;
    clients = n_clients;
    offered = !offered;
    completed = !completed;
    overloaded = !overloaded;
    failed = !failed;
    storm_elapsed = !storm_elapsed;
    goodput;
    admission = adm;
    attempts = !attempts;
    retries = !retries;
    shed_attempts = !shed_attempts;
    budget_denied = !budget_denied;
    brownout_recovered = !brownout_recovered;
    deferred_clients = !deferred_clients;
    audits_ok = !audits_ok;
    audits_failed = !audits_failed;
    fsck_clean;
    digest = Larch_util.Hex.encode (Larch_hash.Sha256.digest (Buffer.contents transcript));
    summary;
  }
