(* Two-party Schnorr signing without presignatures (§3.3 "Benefits of
   future support for Schnorr-based signing", §9 FIDO improvements).

   If FIDO supported Schnorr/EdDSA-style signatures, larch's signing step
   would collapse to two rounds with no preprocessing: the parties hold
   additive key shares x (log) and y (client), jointly sample R = g^(r0+r1)
   with a commit-reveal on the log's half to prevent nonce bias, and reply
   with partial responses s_i = r_i + c·sk_i for c = H(R ‖ m).  The
   challenge hash deliberately omits the public key, which the log must
   not learn (key-prefixing would link relying parties).

   The ablation bench compares this against the ECDSA-with-presignatures
   protocol. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
open Larch_bignum

type signature = { r_point : Point.t; s : Scalar.t }

let challenge ~(r_point : Point.t) ~(digest : string) : Scalar.t =
  Scalar.of_nat
    (Nat.of_bytes_be (Larch_hash.Sha256.digest_list [ "larch-schnorr"; Point.encode r_point; digest ]))

let verify ~(pk : Point.t) ~(digest : string) (sg : signature) : bool =
  let c = challenge ~r_point:sg.r_point ~digest in
  Point.equal (Point.mul_base sg.s) (Point.add sg.r_point (Point.mul c pk))

(* Batch verification: Schnorr signatures carry the full nonce point, so
   — unlike ECDSA — the textbook random-linear-combination check applies
   directly.  With per-item weights aᵢ from a DRBG keyed on the batch:
       (Σᵢ aᵢ·sᵢ) · G  −  Σᵢ aᵢ · Rᵢ  −  Σᵢ (aᵢ·cᵢ) · pkᵢ  =  O,
   one Pippenger multi-exponentiation for the whole batch.  On failure
   each signature is re-checked individually, so the accept set is
   exactly {!verify}'s. *)
let verify_batch (items : (Point.t * string * signature) list) : bool array =
  let items = Array.of_list items in
  let n = Array.length items in
  let results = Array.make n false in
  let fallback () =
    Array.iteri
      (fun i (pk, digest, sg) -> results.(i) <- verify ~pk ~digest sg)
      items;
    results
  in
  if n <= 1 then fallback ()
  else begin
    let sound =
      Array.for_all
        (fun (pk, _, sg) ->
          Point.is_on_curve pk
          && (not (Point.is_infinity pk))
          && Point.is_on_curve sg.r_point)
        items
    in
    if not sound then fallback ()
    else begin
      let transcript = Buffer.create (n * 128) in
      Buffer.add_string transcript "schnorr-batch-v1";
      Array.iter
        (fun (pk, digest, sg) ->
          Buffer.add_string transcript (Point.encode pk);
          Buffer.add_string transcript digest;
          Buffer.add_string transcript (Point.encode sg.r_point);
          Buffer.add_string transcript (Scalar.to_bytes_be sg.s))
        items;
      let drbg =
        Larch_hash.Drbg.create
          ~entropy:(Larch_hash.Sha256.digest (Buffer.contents transcript))
      in
      let weight () =
        let rec draw () =
          let w = Scalar.of_nat (Nat.of_bytes_be (Larch_hash.Drbg.generate drbg 16)) in
          if Nat.is_zero w then draw () else w
        in
        draw ()
      in
      let g_coeff = ref Scalar.zero in
      let terms = ref [] in
      Array.iter
        (fun (pk, digest, sg) ->
          let c = challenge ~r_point:sg.r_point ~digest in
          let a = weight () in
          let neg_a = Scalar.sub Scalar.zero a in
          g_coeff := Scalar.add !g_coeff (Scalar.mul a sg.s);
          terms := (neg_a, sg.r_point) :: (Scalar.mul neg_a c, pk) :: !terms)
        items;
      let combined =
        Point.multi_mul (Array.of_list ((!g_coeff, Point.g) :: !terms))
      in
      if Point.is_infinity combined then begin
        Array.fill results 0 n true;
        results
      end
      else fallback ()
    end
  end

(* --- the two-party protocol --- *)

type log_round1 = { commitment : string } (* H(R0 ‖ nonce) *)
type log_state = { r0 : Scalar.t; r0_pub : Point.t; nonce : string }

let log_round1 ~(rand_bytes : int -> string) : log_state * log_round1 =
  let r0 = Scalar.random_nonzero ~rand_bytes in
  let r0_pub = Point.mul_base r0 in
  let nonce = rand_bytes 16 in
  let commitment = Larch_hash.Sha256.digest_list [ "schnorr-R0"; Point.encode r0_pub; nonce ] in
  ({ r0; r0_pub; nonce }, { commitment })

type client_round = { r1_pub : Point.t }
type client_state = { r1 : Scalar.t; seen_commitment : string }

let client_round ~(commitment : log_round1) ~(rand_bytes : int -> string) :
    client_state * client_round =
  let r1 = Scalar.random_nonzero ~rand_bytes in
  ({ r1; seen_commitment = commitment.commitment }, { r1_pub = Point.mul_base r1 })

type log_round2 = { r0_pub : Point.t; nonce : string; s0 : Scalar.t }

let log_round2 (st : log_state) ~(client : client_round) ~(sk0 : Scalar.t) ~(digest : string) :
    log_round2 =
  let r_point = Point.add st.r0_pub client.r1_pub in
  let c = challenge ~r_point ~digest in
  { r0_pub = st.r0_pub; nonce = st.nonce; s0 = Scalar.add st.r0 (Scalar.mul c sk0) }

(* The client checks the commitment opening, then completes the signature. *)
let client_finish (st : client_state) ~(log_msg : log_round2) ~(sk1 : Scalar.t)
    ~(digest : string) : signature option =
  let expected =
    Larch_hash.Sha256.digest_list [ "schnorr-R0"; Point.encode log_msg.r0_pub; log_msg.nonce ]
  in
  if not (Larch_util.Bytesx.ct_equal expected st.seen_commitment) then None
  else begin
    let r_point = Point.add log_msg.r0_pub (Point.mul_base st.r1) in
    let c = challenge ~r_point ~digest in
    let s = Scalar.add log_msg.s0 (Scalar.add st.r1 (Scalar.mul c sk1)) in
    Some { r_point; s }
  end

(* wire sizes for the bench: commitment 32 + R1 33 + (R0 33 + nonce 16 + s0 32) *)
let wire_bytes = 32 + 33 + (33 + 16 + 32)
