(* The capacity report (ROADMAP item 4): one seeded, mixed
   enroll/auth/audit workload over the store-backed, fault-injectable
   world, rendered as a byte-for-byte reproducible text report.

   Everything the report prints derives from the seed: randomness is one
   HMAC-DRBG, time is the simulated clock (transport legs advance it by
   rtt/2 + bytes/bandwidth; storage is instant), storage faults come from
   the seeded disk, transport faults from the seeded injector.  Latencies
   are simulated-clock deltas written with [Metrics.force_observe] into a
   private registry — the process-global [Metrics.default] and the
   tracing toggle stay untouched, so span histograms (fed by the real
   monotonic clock) can never leak wall time into the digest.

   Sections: per-protocol latency (p50/p99/p99.9) on a calm link, the
   presignature depletion curve, a storm segment (typed failure counts,
   retry/timeout totals, flight-recorder incidents), and the WAL
   growth vs checkpoint cadence sweep.  The digest is the hex sha256 of
   the rendered text; `larch report` runs the whole thing twice and
   insists the digests match. *)

module Obs = Larch_obs
module Metrics = Obs.Metrics
module Disk = Larch_store.Disk
module Store = Larch_store.Store

type result = { text : string; digest : string }

let hex (s : string) : string =
  String.concat ""
    (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s))))

let ms (t0 : float) (t1 : float) : float = (t1 -. t0) *. 1000.

(* One latency row: count, p50, p99, p99.9, max — all from the private
   registry's high-resolution histograms. *)
let latency_row (buf : Buffer.t) (reg : Metrics.t) ~(label : string) ~(metric : string) : unit =
  let h = Metrics.histogram reg metric in
  if Metrics.histogram_count h > 0 then
    Buffer.add_string buf
      (Printf.sprintf "  %-10s n=%-4d p50=%sms p99=%sms p99.9=%sms max=%sms\n" label
         (Metrics.histogram_count h)
         (Obs.Export.fstr (Metrics.percentile h 0.50))
         (Obs.Export.fstr (Metrics.percentile h 0.99))
         (Obs.Export.fstr (Metrics.percentile h 0.999))
         (Obs.Export.fstr (Metrics.histogram_max h)))

(* Checkpoint-cadence sweep: the same seeded password-only workload per
   cadence; what varies is how often the store folds the WAL into a
   snapshot.  Password auths keep the sweep cheap (no 137-rep ZKBoo). *)
let wal_sweep (buf : Buffer.t) ~(seed : string) ~(auths : int) : unit =
  Buffer.add_string buf "wal growth vs checkpoint cadence:\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-10s %6s %8s %8s %10s %10s\n" "cadence" "gen" "appends" "fsyncs"
       "bytes" "live_wal");
  List.iter
    (fun cadence ->
      let drbg = Larch_hash.Drbg.create ~entropy:(Printf.sprintf "larch-report-wal-%s-%d" seed cadence) in
      let rand n = Larch_hash.Drbg.generate drbg n in
      let disk = Disk.create ~seed () in
      let store = Store.open_ ~disk ~dir:"log" () in
      let log = Log_service.create ~checkpoint_every:cadence ~store ~rand_bytes:rand () in
      let client =
        Client.create ~client_id:"report-user" ~account_password:"pw" ~log ~rand_bytes:rand ()
      in
      Client.enroll ~presignature_count:2 client;
      let site_pw = Client.register_password client ~rp_name:"rp.example" in
      ignore site_pw;
      for _ = 1 to auths do
        Larch_util.Clock.advance 30.;
        ignore (Client.authenticate_password client ~rp_name:"rp.example")
      done;
      let gen = Store.generation store in
      let live = Disk.size disk ~file:(Store.wal_file "log" gen) in
      let ds = Disk.stats disk in
      Buffer.add_string buf
        (Printf.sprintf "  %-10d %6d %8d %8d %10d %10d\n" cadence gen ds.Disk.appends
           ds.Disk.fsyncs ds.Disk.bytes_written live))
    [ 4; 16; 64 ]

let run ?(auths = 6) ~(seed : string) () : result =
  Larch_util.Clock.set 1_700_000_000.;
  Obs.Runtime.set_time_source (Some Larch_util.Clock.now);
  Obs.Runtime.set_events true;
  Obs.Events.clear ();
  Obs.Flight.clear Obs.Flight.default;
  let incidents_before = Obs.Flight.incident_count Obs.Flight.default in
  let reg = Metrics.create () in
  let obs name v = Metrics.force_observe (Metrics.histogram reg name) v in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "larch capacity report (seed=%s, %d auths per method)\n" seed auths);

  (* --- the seeded world ------------------------------------------------ *)
  let drbg = Larch_hash.Drbg.create ~entropy:("larch-report-" ^ seed) in
  let rand n = Larch_hash.Drbg.generate drbg n in
  let disk = Disk.create ~seed () in
  let store = Store.open_ ~disk ~dir:"log" () in
  let log = Log_service.create ~checkpoint_every:16 ~store ~rand_bytes:rand () in
  let client =
    Client.create ~net:Larch_net.Netsim.paper_default ~client_id:"report-user"
      ~account_password:"pw" ~log ~rand_bytes:rand ()
  in
  (* calm injector: no faults, but every exchange pays simulated wire time
     (rtt/2 per leg + bytes/bandwidth) — that is where latency comes from *)
  Client.Transport.set_injector client.Client.transport
    (Some (Larch_net.Fault.seeded ~seed Larch_net.Fault.calm));
  let presig_total = (2 * auths) + 2 in
  let t0 = Larch_util.Clock.now () in
  Client.enroll ~presignature_count:presig_total client;
  obs "enroll.ms" (ms t0 (Larch_util.Clock.now ()));
  let rp = Relying_party.create ~name:"rp.example" ~rand_bytes:rand () in
  let pk = Client.register_fido2 client ~rp_name:"rp.example" in
  Relying_party.fido2_register rp ~username:"report-user" ~pk;
  let totp_key = Relying_party.totp_register rp ~username:"report-user" in
  Client.register_totp client ~rp_name:"rp.example" ~totp_key;
  let site_pw = Client.register_password client ~rp_name:"rp.example" in
  Relying_party.password_set rp ~username:"report-user" ~password:site_pw;

  (* --- calm-link latency + presig depletion ---------------------------- *)
  let depletion = ref [ (0, Log_service.presignatures_remaining log ~client_id:"report-user") ] in
  let timed metric f =
    let t0 = Larch_util.Clock.now () in
    let r = f () in
    obs metric (ms t0 (Larch_util.Clock.now ()));
    r
  in
  for i = 1 to auths do
    Larch_util.Clock.advance 60.;
    timed "auth.fido2.ms" (fun () ->
        let challenge = Relying_party.fido2_challenge rp ~username:"report-user" in
        let assertion = Client.authenticate_fido2 client ~rp_name:"rp.example" ~challenge in
        if not (Relying_party.fido2_login rp ~username:"report-user" assertion) then
          failwith "relying party rejected");
    depletion := (i, Log_service.presignatures_remaining log ~client_id:"report-user") :: !depletion;
    Larch_util.Clock.advance 60.;
    timed "auth.totp.ms" (fun () ->
        ignore
          (Client.authenticate_totp client ~rp_name:"rp.example"
             ~time:(Larch_util.Clock.now ())));
    Larch_util.Clock.advance 60.;
    timed "auth.password.ms" (fun () ->
        let pw = Client.authenticate_password client ~rp_name:"rp.example" in
        if not (Relying_party.password_login rp ~username:"report-user" ~password:pw) then
          failwith "relying party rejected");
    if i mod 3 = 0 then
      timed "audit.ms" (fun () ->
          ignore (Log_service.audit log ~client_id:"report-user" ~token:"pw"));
    Obs.Flight.record Obs.Flight.default
  done;
  Buffer.add_string buf "latency (calm link, paper-default netsim: 20ms rtt, 100 Mbit/s):\n";
  latency_row buf reg ~label:"fido2" ~metric:"auth.fido2.ms";
  latency_row buf reg ~label:"totp" ~metric:"auth.totp.ms";
  latency_row buf reg ~label:"password" ~metric:"auth.password.ms";
  latency_row buf reg ~label:"audit" ~metric:"audit.ms";
  latency_row buf reg ~label:"enroll" ~metric:"enroll.ms";
  Buffer.add_string buf
    (Printf.sprintf "presignature depletion (start=%d, batch activates after objection window):\n"
       presig_total);
  List.iter
    (fun (i, remaining) ->
      Buffer.add_string buf (Printf.sprintf "  after auth %-3d remaining=%d\n" i remaining))
    (List.rev !depletion);

  (* --- storm segment --------------------------------------------------- *)
  Client.Transport.set_injector client.Client.transport
    (Some (Larch_net.Fault.seeded ~seed Larch_net.Fault.stormy));
  let ok = ref 0 and failed = ref 0 in
  let attempt f =
    Larch_util.Clock.advance 60.;
    match f () with
    | () -> incr ok
    | exception Client.Transport.Error _ -> incr failed
    | exception Types.Protocol_error _ -> incr failed
    | exception Client.Log_misbehaved _ -> incr failed
  in
  let storm_rounds = max 1 (auths / 2) in
  for _ = 1 to storm_rounds do
    attempt (fun () ->
        let challenge = Relying_party.fido2_challenge rp ~username:"report-user" in
        ignore (Client.authenticate_fido2 client ~rp_name:"rp.example" ~challenge));
    attempt (fun () ->
        ignore
          (Client.authenticate_totp client ~rp_name:"rp.example"
             ~time:(Larch_util.Clock.now ())));
    attempt (fun () -> ignore (Client.authenticate_password client ~rp_name:"rp.example"))
  done;
  Client.Transport.set_injector client.Client.transport None;
  Client.resync client;
  let st = Client.Transport.stats client.Client.transport in
  let ds = Disk.stats disk in
  let incidents = Obs.Flight.incident_count Obs.Flight.default - incidents_before in
  Buffer.add_string buf
    (Printf.sprintf
       "storm segment (stormy profile, %d rounds): %d ok / %d failed (typed)\n" storm_rounds !ok
       !failed);
  Buffer.add_string buf
    (Printf.sprintf
       "  transport: attempts=%d retries=%d timeouts=%d faults=%d replays=%d\n"
       st.Client.Transport.attempts st.Client.Transport.retries st.Client.Transport.timeouts
       st.Client.Transport.faults st.Client.Transport.replays);
  Buffer.add_string buf
    (Printf.sprintf "  disk: appends=%d fsyncs=%d bytes=%d crashes=%d torn=%d rotted=%d\n"
       ds.Disk.appends ds.Disk.fsyncs ds.Disk.bytes_written ds.Disk.crashes ds.Disk.torn
       ds.Disk.rotted);
  Buffer.add_string buf
    (Printf.sprintf "  flight recorder: %d incident dump(s)\n" incidents);
  let audit_resp = Log_service.audit_with_head log ~client_id:"report-user" ~token:"pw" in
  Buffer.add_string buf
    (Printf.sprintf "  audit chain len=%d head=%s\n" audit_resp.Log_service.chain_len
       (hex audit_resp.Log_service.chain_head));
  Buffer.add_string buf
    (Printf.sprintf "  merkle head size=%d root=%s\n"
       audit_resp.Log_service.sth.Larch_merkle.Merkle.Sth.size
       (hex audit_resp.Log_service.sth.Larch_merkle.Merkle.Sth.root));
  Buffer.add_string buf
    (Printf.sprintf "  events emitted=%d\n" (List.length (Obs.Events.recent ())));

  (* --- WAL growth vs checkpoint cadence -------------------------------- *)
  wal_sweep buf ~seed ~auths:(4 * auths);

  Obs.Runtime.set_events false;
  Obs.Runtime.set_time_source None;
  Larch_util.Clock.use_real_time ();
  let text = Buffer.contents buf in
  { text; digest = hex (Larch_hash.Sha256.digest text) }
