(* Two-party ECDSA with client-side preprocessing (paper §3.3, Appendix B).

   The log holds one long-term key share x (the same for every relying
   party); the client derives a fresh share y per relying party, so the
   aggregated public key pk = g^(x+y) is unlinkable across parties and the
   log never learns which pk a signature belongs to.

   Because the client is honest at enrollment time, it can generate the
   entire presignature — the shared signing nonce r⁻¹, its MAC r̂ = α·r⁻¹,
   the MAC key α, and the authenticated Beaver triple — locally and ship
   the log its shares.  The online phase is then a single half-authenticated
   multiplication plus a MAC-checked opening (Π_Sign, Figure 9):

     s = r⁻¹ · (Hash(m) + f(R) · (x + y))

   Presignature compression (§7): the log's Beaver-triple shares
   (a₀,b₀,f₀,g₀) are PRG-derived from a per-batch seed; the log stores six
   explicit scalars per presignature — (R, r₀, r̂₀, α₀, c₀, h₀) = 192 bytes,
   the figure the paper reports. *)

open Larch_bignum
module Scalar = Larch_ec.P256.Scalar
module Point = Larch_ec.Point
module Spdz = Larch_mpc.Spdz
module Sharing = Larch_mpc.Sharing
module Wire = Larch_net.Wire

(* --- key generation --- *)

type log_key = { x : Scalar.t; x_pub : Point.t }

let log_keygen ~(rand_bytes : int -> string) : log_key =
  let x, x_pub = Point.random ~rand_bytes in
  { x; x_pub }

(* ClientKeyGen: y fresh per relying party; pk = X · g^y. *)
let client_keygen ~(log_pub : Point.t) ~(rand_bytes : int -> string) : Scalar.t * Point.t =
  let y = Scalar.random_nonzero ~rand_bytes in
  (y, Point.add log_pub (Point.mul_base y))

(* --- presignatures --- *)

type log_presig = {
  cap_r : Scalar.t; (* f(g^r): the signature's r component *)
  r0 : Scalar.t; (* share of r⁻¹ *)
  rhat0 : Scalar.t; (* share of α·r⁻¹ *)
  alpha0 : Scalar.t; (* share of the MAC key *)
  c0 : Scalar.t;
  h0 : Scalar.t; (* explicit triple shares; a0,b0,f0,g0 are PRG-derived *)
}

type client_presig = {
  cap_r1 : Scalar.t;
  r1 : Scalar.t;
  rhat1 : Scalar.t;
  alpha1 : Scalar.t;
  a1 : Scalar.t;
  b1 : Scalar.t;
  c1 : Scalar.t;
  f1 : Scalar.t;
  g1 : Scalar.t;
  h1 : Scalar.t;
}

type log_batch = {
  seed : string; (* derives (a0,b0,f0,g0) per index *)
  entries : log_presig array;
  mutable next : int; (* single-use counter *)
}

type client_batch = { centries : client_presig array; mutable cnext : int }

(* per-presignature log storage in bytes: six explicit Z_q elements *)
let log_presig_bytes = 6 * 32

let scalar_of_prg (prg : Larch_cipher.Prg.t) : Scalar.t =
  Scalar.of_bytes_be (Larch_cipher.Prg.next_bytes prg 48)

let derived_log_shares (seed : string) (index : int) : Scalar.t * Scalar.t * Scalar.t * Scalar.t
    =
  let prg = Larch_cipher.Prg.create (seed ^ "presig" ^ Larch_util.Bytesx.be32 index) in
  let a0 = scalar_of_prg prg in
  let b0 = scalar_of_prg prg in
  let f0 = scalar_of_prg prg in
  let g0 = scalar_of_prg prg in
  (a0, b0, f0, g0)

(* PreSign, run by the (trusted-at-enrollment) client. *)
let presign_batch ~(count : int) ~(rand_bytes : int -> string) : client_batch * log_batch =
  Larch_obs.Trace.with_span "ecdsa2p.presign_batch" @@ fun () ->
  Larch_obs.Trace.add_int "count" count;
  let seed = rand_bytes 16 in
  let centries = Array.make count None and lentries = Array.make count None in
  for i = 0 to count - 1 do
    let r = Scalar.random_nonzero ~rand_bytes in
    let cap_r = Point.x_scalar (Point.mul_base r) in
    let rinv = Scalar.inv r in
    let alpha = Scalar.random ~rand_bytes in
    let rhat = Scalar.mul alpha rinv in
    let a = Scalar.random ~rand_bytes and b = Scalar.random ~rand_bytes in
    let c = Scalar.mul a b in
    let f = Scalar.mul alpha a and g = Scalar.mul alpha b in
    let h = Scalar.mul alpha c in
    let a0, b0, f0, g0 = derived_log_shares seed i in
    let c0 = Scalar.random ~rand_bytes and h0 = Scalar.random ~rand_bytes in
    let r0, r1 = Sharing.additive rinv ~rand_bytes in
    let rhat0, rhat1 = Sharing.additive rhat ~rand_bytes in
    let alpha0, alpha1 = Sharing.additive alpha ~rand_bytes in
    lentries.(i) <- Some { cap_r; r0; rhat0; alpha0; c0; h0 };
    centries.(i) <-
      Some
        {
          cap_r1 = cap_r;
          r1;
          rhat1;
          alpha1;
          a1 = Scalar.sub a a0;
          b1 = Scalar.sub b b0;
          c1 = Scalar.sub c c0;
          f1 = Scalar.sub f f0;
          g1 = Scalar.sub g g0;
          h1 = Scalar.sub h h0;
        }
  done;
  let force a = Array.map Option.get a in
  ( { centries = force centries; cnext = 0 },
    { seed; entries = force lentries; next = 0 } )

(* Wire size of shipping a log batch at enrollment: seed + 6 scalars each. *)
let log_batch_wire_bytes (b : log_batch) : int = 16 + (Array.length b.entries * log_presig_bytes)

let log_batch_remaining (b : log_batch) : int = Array.length b.entries - b.next
let client_batch_remaining (b : client_batch) : int = Array.length b.centries - b.cnext

(* --- the signing protocol Π_Sign --- *)

let halfmul_input_of_log (b : log_batch) (i : int) ~(sk0 : Scalar.t) : Spdz.halfmul_input =
  let p = b.entries.(i) in
  let a0, b0, f0, g0 = derived_log_shares b.seed i in
  {
    Spdz.a = a0;
    b = b0;
    c = p.c0;
    f = f0;
    g = g0;
    h = p.h0;
    x = p.r0;
    xhat = p.rhat0;
    y = sk0;
    alpha = p.alpha0;
  }

let halfmul_input_of_client (b : client_batch) (i : int) ~(sk1 : Scalar.t) : Spdz.halfmul_input =
  let p = b.centries.(i) in
  {
    Spdz.a = p.a1;
    b = p.b1;
    c = p.c1;
    f = p.f1;
    g = p.g1;
    h = p.h1;
    x = p.r1;
    xhat = p.rhat1;
    y = sk1;
    alpha = p.alpha1;
  }

(* Per-party signing state threaded through the rounds. *)
type party_state = {
  party : int; (* 0 = log, 1 = client *)
  inp : Spdz.halfmul_input;
  cap_r : Scalar.t;
  e_scalar : Scalar.t; (* Hash(m) as a scalar *)
  mutable hm_out : Spdz.halfmul_output option;
  mutable s_share : Scalar.t;
  mutable shat_share : Scalar.t;
  mutable open_state : Spdz.open_state option;
}

let digest_scalar (digest : string) : Scalar.t = Scalar.of_nat (Nat.of_bytes_be digest)

let init_party ~(party : int) ~(inp : Spdz.halfmul_input) ~(cap_r : Scalar.t) ~(digest : string)
    : party_state =
  {
    party;
    inp;
    cap_r;
    e_scalar = digest_scalar digest;
    hm_out = None;
    s_share = Scalar.zero;
    shat_share = Scalar.zero;
    open_state = None;
  }

let round1 (st : party_state) : Spdz.halfmul_msg = Spdz.halfmul_round1 st.inp

(* After exchanging halfmul messages, each party derives its s and ŝ shares:
   s_i = r_i·Hash(m) + z_i·f(R),  ŝ_i = r̂_i·Hash(m) + ẑ_i·f(R). *)
let round2 (st : party_state) ~(own : Spdz.halfmul_msg) ~(other : Spdz.halfmul_msg) : Scalar.t =
  let out = Spdz.halfmul_finish ~party:st.party st.inp ~own ~other in
  st.hm_out <- Some out;
  st.s_share <- Scalar.add (Scalar.mul st.inp.Spdz.x st.e_scalar) (Scalar.mul out.Spdz.z st.cap_r);
  st.shat_share <-
    Scalar.add (Scalar.mul st.inp.Spdz.xhat st.e_scalar) (Scalar.mul out.Spdz.zhat st.cap_r);
  st.s_share

(* With both s shares public, run the MAC-checked opening (commit round). *)
let open_commit (st : party_state) ~(other_s : Scalar.t) ~(rand_bytes : int -> string) :
    Spdz.open_commit =
  let out = match st.hm_out with Some o -> o | None -> Types.fail "round2 not run" in
  let s_total = Scalar.add st.s_share other_s in
  let inp =
    Spdz.
      {
        s = st.s_share;
        shat = st.shat_share;
        d_pub = out.d_open;
        dhat_share = out.dhat;
        alpha_share = st.inp.Spdz.alpha;
      }
  in
  let ostate, commit = Spdz.open_round1 inp ~s_total ~rand_bytes in
  st.open_state <- Some ostate;
  commit

let open_reveal (st : party_state) : Spdz.open_reveal =
  match st.open_state with Some o -> o.Spdz.reveal | None -> Types.fail "open not started"

let open_check (st : party_state) ~(other_commit : Spdz.open_commit)
    ~(other_reveal : Spdz.open_reveal) : bool =
  match st.open_state with
  | Some own -> Spdz.open_check ~own ~other_commit ~other_reveal
  | None -> false

let signature (st : party_state) ~(other_s : Scalar.t) : Larch_ec.Ecdsa.signature =
  { Larch_ec.Ecdsa.r = st.cap_r; s = Scalar.add st.s_share other_s }

(* --- wire encodings for the signing messages --- *)

let encode_halfmul_msg (m : Spdz.halfmul_msg) : string =
  Scalar.to_bytes_be m.Spdz.d ^ Scalar.to_bytes_be m.Spdz.e

let decode_halfmul_msg (s : string) : Spdz.halfmul_msg option =
  if String.length s <> 64 then None
  else
    Some
      Spdz.
        {
          d = Scalar.of_bytes_be (String.sub s 0 32);
          e = Scalar.of_bytes_be (String.sub s 32 32);
        }

let encode_reveal (r : Spdz.open_reveal) : string =
  Scalar.to_bytes_be r.Spdz.sigma ^ Scalar.to_bytes_be r.Spdz.tau ^ r.Spdz.nonce

let decode_reveal (s : string) : Spdz.open_reveal option =
  if String.length s <> 80 then None
  else
    Some
      Spdz.
        {
          sigma = Scalar.of_bytes_be (String.sub s 0 32);
          tau = Scalar.of_bytes_be (String.sub s 32 32);
          nonce = String.sub s 64 16;
        }
