(** The larch log service.

    Stores per-client state for all three authentication methods, verifies
    the client's proofs before contributing to any credential, records every
    authentication as a ciphertext it cannot read, and serves audit
    downloads.  Sensitive operations (audit, revocation, objections, policy
    changes) require the user's log-account credential (§2.1).

    State types are exposed for the test suite, which exercises malicious
    behaviour on both sides of every protocol.  They live in {!Log_state}
    (and are re-exported here), which also defines the logical operations
    this module commits; with a {!Larch_store.Store} attached at [create],
    every committed operation is appended to a write-ahead log and
    group-committed before the call returns, and {!restart} becomes a
    genuine kill-and-recover. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Tpe = Two_party_ecdsa
module Merkle = Larch_merkle.Merkle

(** Client-specific authentication policy (§9 "Enforcing client-specific
    policies"): optional rate limit per time window and an optional
    notification hook invoked on every authentication. *)
type policy = Log_state.policy = {
  max_auths_per_window : int option;
  window_seconds : float;
  notify : (Types.auth_method -> float -> unit) option;
}

val default_policy : policy

(** Log-side FIDO2 state: the archive-key commitment from enrollment, the
    client's record-integrity verification key, the log's long-term signing
    share, active and objection-staged presignature batches, and the
    in-flight signing session. *)
type fido2_state = Log_state.fido2_state = {
  cm : string;
  record_vk : Point.t;
  key : Tpe.log_key;
  mutable batches : Tpe.log_batch list;
  mutable pending : (Tpe.log_batch * float) list;
  mutable signing : Tpe.party_state option;
  mutable signing_record : Record.t option;
  mutable client_commit : Larch_mpc.Spdz.open_commit option;
}

type totp_state = Log_state.totp_state = {
  cm_totp : string;
  mutable registrations : Totp_protocol.registration list;
  mutable last_auth : (string * Totp_protocol.outcome) option;
      (** (nonce, outcome) of the last 2PC: retransmission replay dedup *)
}

type pw_state = Log_state.pw_state = {
  client_pub : Point.t; (** the client's ElGamal archive public key X *)
  k : Scalar.t; (** the log's per-client Diffie-Hellman secret *)
  k_pub : Point.t;
  mutable ids : string list; (** registration order = the GK15 statement set *)
}

type client_state = Log_state.client_state = {
  account_token : string;
  mutable fido2 : fido2_state option;
  mutable totp : totp_state option;
  mutable pw : pw_state option;
  mutable records : Record.t list; (** newest first *)
  mutable policy : policy;
  mutable recent_auths : float list;
  mutable backup : string option; (** opaque encrypted client-state blob (§9) *)
  mutable chain_head : string; (** hash chain over records (rollback detection) *)
  mutable chain_len : int;
  mutable last_migrate : string option; (** δ of the last key migration (retry dedup) *)
  mutable tree : Merkle.Tree.t;
      (** Merkle tree over the same records (oldest first).  Derived state:
          never serialized, rebuilt from the records on recovery. *)
}

type t = {
  clients : Log_state.clients;
  rand : int -> string;
  objection_window : float; (** seconds before staged presignatures activate *)
  persist : Log_persist.t option; (** [None]: purely in-memory (tests, benches) *)
  sth_sk : Scalar.t;
      (** the log's tree-head signing key — held like an HSM key: drawn at
          [create], survives {!restart}, never serialized *)
  sth_pk : Point.t;
  preverified : (string, unit) Hashtbl.t;
      (** one-shot skip tokens from the admission loop's batched signature
          verification (see {!preverify_record_sig}); volatile *)
  mutable degraded : bool;
      (** brownout mode (set by the admission loop): attestations skip
          their inclusion proof and say so.  Volatile, never persisted,
          and never changes what the log accepts or rejects. *)
}

val create :
  ?objection_window:float ->
  ?checkpoint_every:int ->
  ?store:Larch_store.Store.t ->
  rand_bytes:(int -> string) ->
  unit ->
  t
(** With [store], the client map is recovered from it (snapshot + WAL
    replay) and every subsequent mutation is made durable before the call
    that performed it returns.  [checkpoint_every] (default 128) bounds
    how many WAL records accumulate before the full state is snapshotted
    into a fresh generation. *)

val persist : t -> Log_persist.t option

val sth_pub : t -> Point.t
(** The tree-head verification key clients pin at enrollment. *)

val set_degraded : t -> bool -> unit
(** Enter/leave brownout mode (the admission loop's knob, see
    {!Log_async}).  While set, {!attestation}s are issued without an
    inclusion proof and flagged [degraded]; the accept/reject behavior of
    every operation is unchanged. *)

val degraded : t -> bool

(** {1 The transparency layer (§9 fork consistency)} *)

(** Proof that an authentication's record landed in the client's record
    tree: the leaf index, the record exactly as stored, the inclusion
    path, and the signed tree head it verifies against.  Every auth ack
    carries one.  Under brownout ([degraded = true]) the proof is empty:
    the signed head and record still bind the authentication, and the
    client defers inclusion verification to its next verified audit. *)
type attestation = {
  index : int;
  record : string; (** canonical record encoding = the tree leaf *)
  proof : string list;
  sth : Merkle.Sth.t;
  degraded : bool;
}

val put_attestation : Larch_net.Wire.writer -> attestation -> unit

val read_attestation : Larch_net.Wire.reader -> attestation
(** @raise Larch_net.Wire.Malformed on hostile input *)

val encode_attestation : attestation -> string
val decode_attestation : string -> (attestation, string) result

val fsck : t -> Log_persist.fsck option
(** Verify the attached store — structural checksums plus the semantic
    invariants (hash-chain continuity, presignature cursor monotonicity,
    live-vs-replayed state match).  [None] without a store. *)

(** {1 Enrollment} *)

val enroll : t -> client_id:string -> account_password:string -> unit
(** Idempotent for a retransmission from the same account holder (same
    credential); a different credential for an existing client still
    fails. *)

val set_policy : t -> client_id:string -> token:string -> policy -> unit

val enroll_fido2 :
  t -> client_id:string -> cm:string -> record_vk:Point.t -> batch:Tpe.log_batch -> Point.t
(** Returns the log's signing public key X, from which the client derives
    per-relying-party keys. *)

val enroll_totp : t -> client_id:string -> cm:string -> unit

val enroll_password : t -> client_id:string -> client_pub:Point.t -> Point.t
(** Returns the log's Diffie-Hellman public key K = g^k. *)

val enroll_password_share :
  t -> client_id:string -> client_pub:Point.t -> k_share:Scalar.t -> Point.t
(** Multi-log variant (§6): enroll with a dealt Shamir share of the joint
    key instead of a locally sampled one. *)

(** {1 Presignature inventory (§3.3)} *)

val presignatures_remaining : t -> client_id:string -> int
val stage_presignatures : t -> client_id:string -> batch:Tpe.log_batch -> now:float -> unit

val activate_pending : t -> client_id:string -> now:float -> int
(** Promote staged batches whose objection window has elapsed; returns how
    many were activated. *)

val object_to_pending : t -> client_id:string -> token:string -> int
(** The account owner disavows all staged batches. *)

val pending_batches : t -> client_id:string -> (int * float) list
(** Audit view: (size, activation time) of each staged batch. *)

(** {1 FIDO2 authentication (three rounds)} *)

val fido2_auth_begin :
  ?domains:int ->
  t ->
  client_id:string ->
  ip:string ->
  now:float ->
  Fido2_protocol.auth_request ->
  Fido2_protocol.auth_response1
(** Round 1: enforce policy, verify the record signature and the ZKBoo
    statement, consume the next presignature, stage the encrypted record,
    and answer with the log's signing message and s-share.
    @raise Types.Protocol_error on any check failure *)

val fido2_auth_commit :
  t ->
  client_id:string ->
  s1:Scalar.t ->
  client_commit:Larch_mpc.Spdz.open_commit ->
  Larch_mpc.Spdz.open_commit * Larch_mpc.Spdz.open_reveal * attestation
(** Round 2: persist the record, exchange MAC-check commitments; the
    attestation proves the record is in the client's tree. *)

val fido2_auth_finish :
  t -> client_id:string -> client_reveal:Larch_mpc.Spdz.open_reveal -> bool
(** Round 3: check the client's MAC opening; [false] flags a cheating
    client (the stored record remains as an attack trace). *)

val fido2_auth_abort : t -> client_id:string -> consumed:int -> unit
(** Abandon an in-flight signing session after a transport failure: the
    volatile session state is discarded and the presignature cursors are
    burned {e forward} to [consumed] (the client's own total) — never
    backward, since a presignature whose round-1 message may have leaked
    must not be reused. *)

val record_verify_key : t -> client_id:string -> Larch_ec.Point.t option
(** The client's record-integrity verification key (once FIDO2-enrolled):
    what the admission loop's batch signature verification checks
    against. *)

val preverify_record_sig :
  t -> client_id:string -> ct_nonce:string -> ct:string -> record_sig:string -> unit
(** Deposit a one-shot skip token: the admission loop verified this exact
    record signature inside a batched Pippenger pass, so the matching
    {!fido2_auth_begin} may skip its individual check.  Tokens are keyed
    by a hash of (client, ciphertext, signature), are consumed on use,
    and do not survive {!restart} — an unverified signature can never
    ride a stale token. *)

val restart : t -> unit
(** A log-process restart.  With a store attached this is a genuine kill:
    the in-memory disk drops whatever was never fsynced (per its failure
    profile) and the client map is rebuilt from the snapshot + WAL alone.
    Without one, durable state survives in memory and only volatile
    in-flight session state is dropped.  {!Larch_net.Transport.on_restart}
    hooks call this. *)

(** {1 TOTP} *)

val totp_register : t -> client_id:string -> Totp_protocol.registration -> unit
val totp_unregister : t -> client_id:string -> token:string -> id:string -> bool
val totp_registration_count : t -> client_id:string -> int

val totp_auth :
  t ->
  client_id:string ->
  ip:string ->
  now:float ->
  enc_nonce:string ->
  run:
    (cm:string ->
    registrations:(string * string) list ->
    rand_log:(int -> string) ->
    Totp_protocol.outcome) ->
  Totp_protocol.outcome * attestation
(** Execute the joint 2PC: the [run] closure receives the log's private
    inputs (its stored commitment and key shares) and returns the Yao
    outcome; the record is stored iff the circuit's validity bit is set.
    The attestation proves the stored record is in the client's tree.
    @raise Types.Protocol_error if the validity bit is 0 *)

(** {1 Passwords} *)

val pw_register : t -> client_id:string -> id:string -> Point.t
(** Store the identifier, reply with Hash(id)^k. *)

val pw_registered_ids : t -> client_id:string -> string list

val pw_unregister : t -> client_id:string -> token:string -> id:string -> bool
(** Roll back a registration that failed partway across a multi-log
    deployment; [true] if the identifier was present. *)

val pw_auth :
  t ->
  client_id:string ->
  ip:string ->
  now:float ->
  Password_protocol.auth_request ->
  Point.t * Larch_sigma.Dleq.proof * attestation
(** Verify both one-out-of-many proofs, store the ElGamal record, reply
    with c₂^k plus a DLEQ proof of correct exponentiation and an
    inclusion attestation for the stored record.
    @raise Types.Protocol_error if either proof fails *)

(** {1 Auditing, revocation, migration} *)

val audit : t -> client_id:string -> token:string -> Record.t list

(** Everything an auditing client needs to extend its verified view. *)
type audit_response = {
  records : Record.t list; (** the delta, oldest first *)
  since : int; (** tree size the delta starts at (clamped; echoes the request) *)
  chain_head : string;
  chain_len : int;
  sth : Merkle.Sth.t;
  consistency : string list; (** proof from [since] to [sth.size] *)
  proofs : string list list; (** inclusion proof per delta record *)
}

val put_audit_response : Larch_net.Wire.writer -> audit_response -> unit

val read_audit_response : Larch_net.Wire.reader -> audit_response
(** @raise Larch_net.Wire.Malformed on hostile input *)

val encode_audit_response : audit_response -> string
val decode_audit_response : string -> (audit_response, string) result

val audit_with_head : ?since:int -> t -> client_id:string -> token:string -> audit_response
(** Audit from tree size [since] (default 0): the record delta, the
    hash-chain head (legacy rollback detection), a fresh STH, a
    consistency proof [since] → head, and an inclusion proof per
    record.  A [since] the log cannot serve (after a prune, or from a
    different fork) is clamped to 0 and the full history returned. *)

val tree_head : t -> client_id:string -> token:string -> Merkle.Sth.t
(** The signed head alone — what a multilog cross-check fetches. *)

val consistency_proof : t -> client_id:string -> token:string -> old_size:int -> string list
(** Prove the current tree extends the [old_size] prefix a verifier
    remembers.
    @raise Types.Protocol_error if [old_size] exceeds the tree *)

val prune_records : t -> client_id:string -> token:string -> older_than:float -> int
val revoke_all : t -> client_id:string -> token:string -> unit
val migrate_fido2 : t -> client_id:string -> token:string -> delta:Scalar.t -> unit

(** {1 Encrypted state backups (§9 account recovery)} *)

val store_backup : t -> client_id:string -> string -> unit

val fetch_backup : t -> client_id:string -> string option
(** No account token needed: the blob is self-protecting authenticated
    ciphertext, and the requester has by definition lost her devices. *)

(** {1 Storage accounting (Figure 4, left)} *)

type storage = { presig_bytes : int; record_bytes : int }

val storage : t -> client_id:string -> storage

(**/**)

val get_client : t -> string -> client_state
val check_token : client_state -> string -> unit
(* Pure rate-limit check; [client_id], when given, names the client in any
   [Policy_denied] event.  Committing the [Charge] op is the caller's job. *)
val check_policy :
  ?client_id:string -> client_state -> method_:Types.auth_method -> now:float -> unit
val fido2_state : client_state -> fido2_state
val totp_state : client_state -> totp_state
val pw_state : client_state -> pw_state
