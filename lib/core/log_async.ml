(* Admission loop: one mailbox in front of the log service, drained by a
   dedicated fiber with bounded, deadline-aware, per-client-fair
   admission control.  See log_async.mli. *)

module Runtime = Larch_runtime.Runtime
module Mailbox = Larch_runtime.Runtime.Mailbox
module Transport = Larch_net.Transport
module Metrics = Larch_obs.Metrics
module Clock = Larch_util.Clock

(* What the admission fiber tells the submitting fiber: its closure ran,
   or it was shed with a retry_after hint (seconds). *)
type verdict = Served | Shed of float

type item = {
  client_id : string;
  op : string;
  req : string option;
  enqueued : float; (* simulated arrival time *)
  deadline : float; (* caller gives up at this simulated time *)
  closure : unit -> unit;
  done_mb : verdict Mailbox.t;
}

type config = {
  capacity : int;
  service_time : float;
  client_rate : float;
  client_burst : float;
  brownout_hi : int;
  brownout_lo : int;
  brownout_enter_ticks : int;
  brownout_exit_ticks : int;
}

let off =
  {
    capacity = 0;
    service_time = 0.;
    client_rate = 0.;
    client_burst = 0.;
    brownout_hi = 0;
    brownout_lo = 0;
    brownout_enter_ticks = 0;
    brownout_exit_ticks = 0;
  }

let controlled cfg = cfg.capacity > 0 || cfg.service_time > 0. || cfg.client_rate > 0.

type stats = {
  served : int;
  shed_capacity : int;
  shed_deadline : int;
  shed_rate : int;
  shed_total : int;
  max_queue : int;
  brownout_entries : int;
  brownout_ticks : int;
  queue_delay_max : float;
}

(* Per-client token bucket, refilled on the simulated clock. *)
type bucket = { mutable tokens : float; mutable stamp : float }

type t = {
  log : Log_service.t;
  inbox : item Mailbox.t;
  mutable cfg : config;
  (* per-client FIFOs drained round-robin: one item per client per turn,
     so a hot client's backlog cannot starve everyone behind it *)
  pending : (string, item Queue.t) Hashtbl.t;
  rr : string Queue.t; (* clients with pending work, in service order *)
  mutable queued : int; (* total items across [pending] *)
  buckets : (string, bucket) Hashtbl.t;
  mutable fiber : unit Runtime.promise option;
  mutable n_batches : int;
  mutable n_batched : int;
  (* brownout state machine (hysteretic) *)
  mutable brownout : bool;
  mutable above_ticks : int;
  mutable below_ticks : int;
  (* counters, kept outside lib/obs so scenario digests work with
     tracing off *)
  mutable n_served : int;
  mutable n_shed_capacity : int;
  mutable n_shed_deadline : int;
  mutable n_shed_rate : int;
  mutable n_max_queue : int;
  mutable n_brownout_entries : int;
  mutable n_brownout_ticks : int;
  mutable queue_delay_max : float;
  mutable first_shed_dumped : bool;
}

let create ?(config = off) log =
  {
    log;
    inbox = Mailbox.create ~name:"log.admission" ();
    cfg = config;
    pending = Hashtbl.create 16;
    rr = Queue.create ();
    queued = 0;
    buckets = Hashtbl.create 16;
    fiber = None;
    n_batches = 0;
    n_batched = 0;
    brownout = false;
    above_ticks = 0;
    below_ticks = 0;
    n_served = 0;
    n_shed_capacity = 0;
    n_shed_deadline = 0;
    n_shed_rate = 0;
    n_max_queue = 0;
    n_brownout_entries = 0;
    n_brownout_ticks = 0;
    queue_delay_max = 0.;
    first_shed_dumped = false;
  }

let set_config t config = t.cfg <- config
let config t = t.cfg
let batches t = t.n_batches
let batched_requests t = t.n_batched
let brownout_active t = t.brownout

let stats t =
  {
    served = t.n_served;
    shed_capacity = t.n_shed_capacity;
    shed_deadline = t.n_shed_deadline;
    shed_rate = t.n_shed_rate;
    shed_total = t.n_shed_capacity + t.n_shed_deadline + t.n_shed_rate;
    max_queue = t.n_max_queue;
    brownout_entries = t.n_brownout_entries;
    brownout_ticks = t.n_brownout_ticks;
    queue_delay_max = t.queue_delay_max;
  }

let obs_on () = Larch_obs.Runtime.tracing_enabled ()
let m_default = Metrics.default

let queued_len t = t.queued + Mailbox.length t.inbox

(* How long a freshly rejected caller should wait before retrying: the
   estimated time to drain what is queued ahead of it, floored so a
   zero-cost service model still spreads retries out, and capped so a
   deep backlog never tells callers to disappear for whole seconds
   (bounding the idle tail after a storm subsides). *)
let retry_hint t =
  Float.min 1.0 (Float.max 0.01 (t.cfg.service_time *. float_of_int (queued_len t + 1)))

type shed_reason = Cap | Deadline | Rate

let record_shed t reason ~op =
  (match reason with
  | Cap -> t.n_shed_capacity <- t.n_shed_capacity + 1
  | Deadline -> t.n_shed_deadline <- t.n_shed_deadline + 1
  | Rate -> t.n_shed_rate <- t.n_shed_rate + 1);
  if obs_on () then Metrics.inc (Metrics.counter m_default "log.admission.shed");
  (* overload is a crash-adjacent event: dump the flight recorder once,
     at the first shed, like disk and transport crashes do *)
  if not t.first_shed_dumped then begin
    t.first_shed_dumped <- true;
    Larch_obs.Flight.incident ~detail:op Larch_obs.Flight.default "log.admission.shed"
  end

(* --- per-client fair queue ------------------------------------------- *)

let fq_push t (it : item) =
  let q =
    match Hashtbl.find_opt t.pending it.client_id with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace t.pending it.client_id q;
        q
  in
  if Queue.is_empty q then Queue.add it.client_id t.rr;
  Queue.add it q;
  t.queued <- t.queued + 1;
  if t.queued > t.n_max_queue then t.n_max_queue <- t.queued

let fq_pop t : item option =
  match Queue.take_opt t.rr with
  | None -> None
  | Some cid ->
      let q = Hashtbl.find t.pending cid in
      let it = Queue.take q in
      t.queued <- t.queued - 1;
      if not (Queue.is_empty q) then Queue.add cid t.rr;
      Some it

(* --- token buckets ---------------------------------------------------- *)

(* [None] when the client may proceed; [Some ra] when its bucket is dry
   and it should come back in [ra] seconds. *)
let rate_check t (cid : string) : float option =
  let cfg = t.cfg in
  if cfg.client_rate <= 0. then None
  else begin
    let now = Clock.now () in
    let b =
      match Hashtbl.find_opt t.buckets cid with
      | Some b -> b
      | None ->
          let b = { tokens = Float.max 1. cfg.client_burst; stamp = now } in
          Hashtbl.replace t.buckets cid b;
          b
    in
    b.tokens <-
      Float.min (Float.max 1. cfg.client_burst) (b.tokens +. ((now -. b.stamp) *. cfg.client_rate));
    b.stamp <- now;
    if b.tokens >= 1. then begin
      b.tokens <- b.tokens -. 1.;
      None
    end
    else
      (* clamped like [retry_hint]: the transport honors the hint
         verbatim (bypassing policy.max_backoff), so an unclamped value
         under a tiny [client_rate] would stall a caller arbitrarily *)
      Some (Float.min 1.0 (Float.max 0.01 ((1. -. b.tokens) /. cfg.client_rate)))
  end

(* --- brownout state machine ------------------------------------------ *)

let brownout_gauge t v =
  ignore t;
  if obs_on () then
    Metrics.force_set_gauge (Metrics.gauge m_default "log.brownout.active") v

let brownout_tick t =
  let cfg = t.cfg in
  if cfg.brownout_hi > 0 then begin
    let q = t.queued in
    if q >= cfg.brownout_hi then begin
      t.above_ticks <- t.above_ticks + 1;
      t.below_ticks <- 0
    end
    else if q <= cfg.brownout_lo then begin
      t.below_ticks <- t.below_ticks + 1;
      t.above_ticks <- 0
    end
    else begin
      t.above_ticks <- 0;
      t.below_ticks <- 0
    end;
    if (not t.brownout) && t.above_ticks >= cfg.brownout_enter_ticks then begin
      t.brownout <- true;
      t.n_brownout_entries <- t.n_brownout_entries + 1;
      Log_service.set_degraded t.log true;
      brownout_gauge t 1.;
      Larch_obs.Events.emit ~severity:Larch_obs.Events.Warn Larch_obs.Events.Transport_fault
        (Printf.sprintf "log brownout entered (queue=%d)" t.queued)
    end
    else if t.brownout && t.below_ticks >= cfg.brownout_exit_ticks then begin
      t.brownout <- false;
      Log_service.set_degraded t.log false;
      brownout_gauge t 0.;
      Larch_obs.Events.emit ~severity:Larch_obs.Events.Info Larch_obs.Events.Transport_fault
        (Printf.sprintf "log brownout exited (queue=%d)" t.queued)
    end;
    if t.brownout then t.n_brownout_ticks <- t.n_brownout_ticks + 1
  end

(* --- batch signature pre-verification (unchanged from PR 9) ----------- *)

(* Batch-verify every fido2.auth_begin record signature in the batch
   with one Pippenger pass; deposit skip tokens for the valid ones.
   Anything undecodable or unknown is left for the individual path. *)
let preverify_fido2 t (batch : item list) =
  let candidates =
    List.filter_map
      (fun it ->
        if it.op <> "fido2.auth_begin" then None
        else
          match it.req with
          | None -> None
          | Some bytes -> (
              match Fido2_protocol.decode_auth_request bytes with
              | None -> None
              | Some req -> (
                  match
                    ( Log_service.record_verify_key t.log ~client_id:it.client_id,
                      Larch_ec.Ecdsa.decode req.Fido2_protocol.record_sig )
                  with
                  | Some vk, Some sg -> Some (it.client_id, req, vk, sg)
                  | _ -> None)))
      batch
  in
  (* a singleton batch would do the same work as the individual check —
     only combine when there is something to amortize *)
  if List.length candidates >= 2 then begin
    let triples =
      List.map
        (fun (_, req, vk, sg) ->
          (vk, req.Fido2_protocol.ct_nonce ^ req.Fido2_protocol.ct, sg))
        candidates
    in
    let ok = Larch_ec.Ecdsa.verify_batch triples in
    List.iteri
      (fun i (client_id, req, _, _) ->
        if ok.(i) then
          Log_service.preverify_record_sig t.log ~client_id
            ~ct_nonce:req.Fido2_protocol.ct_nonce ~ct:req.Fido2_protocol.ct
            ~record_sig:req.Fido2_protocol.record_sig)
      candidates;
    if obs_on () then
      Metrics.add
        (Metrics.counter m_default "log.admission.sigs_batch_verified")
        (List.length candidates)
  end

(* Idle work: activate any staged presignature batches whose objection
   window has passed — the refill happens between request bursts instead
   of on a session's critical path.  Deferred while browned out: refills
   are exactly the postponable work.  Client order is sorted for seed
   independence from hash-table internals. *)
let idle_refill t =
  let ids = ref [] in
  Hashtbl.iter (fun cid _ -> ids := cid :: !ids) t.log.Log_service.clients;
  let now = Larch_util.Clock.now () in
  List.iter
    (fun cid ->
      (* clients mid-enrollment have an account but no fido2 share yet *)
      match Log_service.record_verify_key t.log ~client_id:cid with
      | None -> ()
      | Some _ ->
          let n = Log_service.activate_pending t.log ~client_id:cid ~now in
          if n > 0 && obs_on () then
            Metrics.add (Metrics.counter m_default "log.admission.idle_refills") n)
    (List.sort compare !ids)

(* --- the admission loop ----------------------------------------------- *)

let drain_now mb =
  let rec go acc =
    match Mailbox.try_recv mb with Some v -> go (v :: acc) | None -> List.rev acc
  in
  go []

let serve t (it : item) =
  let now = Clock.now () in
  let delay = now -. it.enqueued in
  if delay > t.queue_delay_max then t.queue_delay_max <- delay;
  if obs_on () then
    Metrics.observe (Metrics.histogram m_default "log.admission.queue_delay") delay;
  (* charge the log's service time before executing, so offered load
     beyond 1/service_time genuinely queues (and misses deadlines) *)
  if t.cfg.service_time > 0. then Clock.advance t.cfg.service_time;
  it.closure ();
  t.n_served <- t.n_served + 1;
  Mailbox.send it.done_mb Served

let shed t (it : item) reason ra =
  record_shed t reason ~op:it.op;
  Mailbox.send it.done_mb (Shed ra)

let rec admission_loop t =
  (* idle: refill presignatures before parking (deferred while browned
     out — refills are exactly the postponable work) *)
  if t.queued = 0 && Mailbox.length t.inbox = 0 && not t.brownout then idle_refill t;
  (* gather: block only when there is nothing left to do *)
  let fresh = if t.queued = 0 then Mailbox.recv_batch t.inbox else drain_now t.inbox in
  (match fresh with
  | [] -> ()
  | batch ->
      t.n_batches <- t.n_batches + 1;
      let n = List.length batch in
      if n > 1 then t.n_batched <- t.n_batched + n;
      if obs_on () then
        Metrics.observe
          (Metrics.histogram m_default "log.admission.batch_size")
          (float_of_int n);
      preverify_fido2 t batch;
      List.iter (fq_push t) batch);
  brownout_tick t;
  (match fq_pop t with
  | None -> ()
  | Some it ->
      let now = Clock.now () in
      if controlled t.cfg && it.deadline < now +. t.cfg.service_time then
        (* cannot finish before the caller gives up: shed instead of
           burning service time on a request nobody is waiting for *)
        shed t it Deadline (retry_hint t)
      else begin
        match rate_check t it.client_id with
        | Some ra -> shed t it Rate ra
        | None -> serve t it
      end);
  admission_loop t

let start t =
  match t.fiber with
  | Some _ -> ()
  | None ->
      t.fiber <-
        Some (Runtime.spawn ~name:"log.admission" (fun () -> admission_loop t))

let stop t =
  match t.fiber with
  | None -> ()
  | Some p ->
      (* drain stragglers before honoring the cancel, so no submitting
         fiber is left waiting on its done-signal.  With a service-time
         model the loop parks on timers, and timers only fire when the
         ready set is empty — so wait by sleeping, never by busy-yield *)
      while t.queued > 0 || Mailbox.length t.inbox > 0 do
        if t.cfg.service_time > 0. then Runtime.sleep (Float.max 0.001 t.cfg.service_time)
        else Runtime.yield ()
      done;
      Runtime.cancel p;
      (match Runtime.await p with
      | () -> ()
      | exception Runtime.Cancelled -> ());
      if t.brownout then begin
        t.brownout <- false;
        Log_service.set_degraded t.log false;
        brownout_gauge t 0.
      end;
      t.fiber <- None

let attach t ~client_id transport =
  Transport.set_executor transport
    (Some
       (fun ~op ~req ~deadline closure ->
         match t.fiber with
         | None ->
             (* no admission fiber running: execute directly *)
             closure ()
         | Some _ when Runtime.self_name () = Some "log.admission" ->
             (* the loop itself re-entering (a handler that performs a
                nested exchange): run inline, never self-enqueue *)
             closure ()
         | Some _ ->
             (* bounded inbox: reject at the door when full, before the
                caller parks — the cheapest possible shed *)
             if t.cfg.capacity > 0 && queued_len t >= t.cfg.capacity then begin
               record_shed t Cap ~op;
               raise (Transport.Overload (retry_hint t))
             end;
             let done_mb = Mailbox.create ~name:("done." ^ op) () in
             Mailbox.send t.inbox
               { client_id; op; req; enqueued = Clock.now (); deadline; closure; done_mb };
             (match Mailbox.recv done_mb with
             | Served -> ()
             | Shed ra -> raise (Transport.Overload ra))))
