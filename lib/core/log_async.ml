(* Admission loop: one mailbox in front of the log service, drained a
   batch per simulated tick by a dedicated fiber.  See log_async.mli. *)

module Runtime = Larch_runtime.Runtime
module Mailbox = Larch_runtime.Runtime.Mailbox
module Transport = Larch_net.Transport
module Metrics = Larch_obs.Metrics

type item = {
  client_id : string;
  op : string;
  req : string option;
  closure : unit -> unit;
  done_mb : unit Mailbox.t; (* signalled once the closure ran *)
}

type t = {
  log : Log_service.t;
  inbox : item Mailbox.t;
  mutable fiber : unit Runtime.promise option;
  mutable n_batches : int;
  mutable n_batched : int;
}

let create log =
  {
    log;
    inbox = Mailbox.create ~name:"log.admission" ();
    fiber = None;
    n_batches = 0;
    n_batched = 0;
  }

let batches t = t.n_batches
let batched_requests t = t.n_batched

let obs_on () = Larch_obs.Runtime.tracing_enabled ()
let m_default = Metrics.default

(* Batch-verify every fido2.auth_begin record signature in the batch
   with one Pippenger pass; deposit skip tokens for the valid ones.
   Anything undecodable or unknown is left for the individual path. *)
let preverify_fido2 t (batch : item list) =
  let candidates =
    List.filter_map
      (fun it ->
        if it.op <> "fido2.auth_begin" then None
        else
          match it.req with
          | None -> None
          | Some bytes -> (
              match Fido2_protocol.decode_auth_request bytes with
              | None -> None
              | Some req -> (
                  match
                    ( Log_service.record_verify_key t.log ~client_id:it.client_id,
                      Larch_ec.Ecdsa.decode req.Fido2_protocol.record_sig )
                  with
                  | Some vk, Some sg -> Some (it.client_id, req, vk, sg)
                  | _ -> None)))
      batch
  in
  (* a singleton batch would do the same work as the individual check —
     only combine when there is something to amortize *)
  if List.length candidates >= 2 then begin
    let triples =
      List.map
        (fun (_, req, vk, sg) ->
          (vk, req.Fido2_protocol.ct_nonce ^ req.Fido2_protocol.ct, sg))
        candidates
    in
    let ok = Larch_ec.Ecdsa.verify_batch triples in
    List.iteri
      (fun i (client_id, req, _, _) ->
        if ok.(i) then
          Log_service.preverify_record_sig t.log ~client_id
            ~ct_nonce:req.Fido2_protocol.ct_nonce ~ct:req.Fido2_protocol.ct
            ~record_sig:req.Fido2_protocol.record_sig)
      candidates;
    if obs_on () then
      Metrics.add
        (Metrics.counter m_default "log.admission.sigs_batch_verified")
        (List.length candidates)
  end

(* Idle work: activate any staged presignature batches whose objection
   window has passed — the refill happens between request bursts instead
   of on a session's critical path.  Client order is sorted for seed
   independence from hash-table internals. *)
let idle_refill t =
  let ids = ref [] in
  Hashtbl.iter (fun cid _ -> ids := cid :: !ids) t.log.Log_service.clients;
  let now = Larch_util.Clock.now () in
  List.iter
    (fun cid ->
      (* clients mid-enrollment have an account but no fido2 share yet *)
      match Log_service.record_verify_key t.log ~client_id:cid with
      | None -> ()
      | Some _ ->
          let n = Log_service.activate_pending t.log ~client_id:cid ~now in
          if n > 0 && obs_on () then
            Metrics.add (Metrics.counter m_default "log.admission.idle_refills") n)
    (List.sort compare !ids)

let rec admission_loop t =
  let batch = Mailbox.recv_batch t.inbox in
  t.n_batches <- t.n_batches + 1;
  let n = List.length batch in
  if n > 1 then t.n_batched <- t.n_batched + n;
  if obs_on () then
    Metrics.observe
      (Metrics.histogram m_default "log.admission.batch_size")
      (float_of_int n);
  preverify_fido2 t batch;
  List.iter
    (fun it ->
      it.closure ();
      Mailbox.send it.done_mb ())
    batch;
  if Mailbox.length t.inbox = 0 then idle_refill t;
  admission_loop t

let start t =
  match t.fiber with
  | Some _ -> ()
  | None ->
      t.fiber <-
        Some (Runtime.spawn ~name:"log.admission" (fun () -> admission_loop t))

let stop t =
  match t.fiber with
  | None -> ()
  | Some p ->
      (* drain stragglers before honoring the cancel, so no submitting
         fiber is left waiting on its done-signal *)
      while Mailbox.length t.inbox > 0 do
        Runtime.yield ()
      done;
      Runtime.cancel p;
      (match Runtime.await p with
      | () -> ()
      | exception Runtime.Cancelled -> ());
      t.fiber <- None

let attach t ~client_id transport =
  Transport.set_executor transport
    (Some
       (fun ~op ~req closure ->
         match t.fiber with
         | None ->
             (* no admission fiber running: execute directly *)
             closure ()
         | Some _ when Runtime.self_name () = Some "log.admission" ->
             (* the loop itself re-entering (a handler that performs a
                nested exchange): run inline, never self-enqueue *)
             closure ()
         | Some _ ->
             let done_mb = Mailbox.create ~name:("done." ^ op) () in
             Mailbox.send t.inbox { client_id; op; req; closure; done_mb };
             Mailbox.recv done_mb))
