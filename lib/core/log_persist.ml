(* Binds the log service's durable state to {!Larch_store.Store}.

   Runtime flow: every public [Log_service] entry point that mutates
   durable state commits one or more {!Log_state.entry} values — [apply]
   to the in-memory map plus [append] here — and ends with [sync], which
   group-commits the buffered WAL frames (one disk append, one fsync).
   The reply leaves the log only after [sync] returns, so an acknowledged
   operation is on disk by definition.

   Every [checkpoint_every] WAL records, [sync] also rolls the store to a
   new generation: the full client map is encoded canonically
   ({!Log_codec.encode_clients}) and written as a snapshot, bounding
   recovery replay time.

   [fsck] is the semantic half of `larch fsck` (the structural half —
   checksums, torn tails — is {!Larch_store.Store.verify}): it re-derives
   the state by replay and checks the invariants that make an audit log
   trustworthy: per-client record hash-chain continuity, presignature
   cursor bounds and WAL-order consume monotonicity, and (online) that
   the live map and the replayed map encode byte-identically. *)

module Store = Larch_store.Store
module Disk = Larch_store.Disk
module Events = Larch_obs.Events

type t = {
  mutable store : Store.t;
  checkpoint_every : int; (* WAL records between snapshots *)
  mutable since_checkpoint : int;
}

let of_store ?(checkpoint_every = 128) (store : Store.t) : t =
  let since =
    (* records already sitting in the open WAL count toward the cadence *)
    (Store.recovered store).Store.tail |> List.length
  in
  { store; checkpoint_every; since_checkpoint = since }

let store (t : t) : Store.t = t.store

let replay_failure what msg =
  Types.fail "store recovery: %s (%s) — refusing to serve from damaged state" what msg

(* Rebuild the client map from the store's last recovery: decode the
   snapshot, then replay the WAL tail through the same [Log_state.apply]
   the runtime uses. *)
let recover (t : t) : Log_state.clients =
  let r = Store.recovered t.store in
  let clients =
    match r.Store.snapshot with
    | None -> Hashtbl.create 16
    | Some payload -> (
        match Log_codec.decode_clients payload with
        | Ok c -> c
        | Error m -> replay_failure "snapshot undecodable" m)
  in
  List.iter
    (fun bytes ->
      match Log_codec.decode_entry bytes with
      | Ok e -> Log_state.apply clients e
      | Error m -> replay_failure "WAL entry undecodable" m)
    r.Store.tail;
  clients

let append (t : t) (e : Log_state.entry) : unit =
  Store.append t.store (Log_codec.encode_entry e);
  t.since_checkpoint <- t.since_checkpoint + 1

let sync (t : t) (clients : Log_state.clients) : unit =
  Store.flush t.store;
  if t.since_checkpoint >= t.checkpoint_every then begin
    Store.checkpoint t.store (Log_codec.encode_clients clients);
    t.since_checkpoint <- 0
  end

(* Kill and restart the process this store belongs to: the disk loses its
   un-fsynced suffixes per its failure profile, then a fresh [Store.open_]
   recovers and the client map is rebuilt by replay.  Volatile session
   state disappears with the old map. *)
let reopen (t : t) : Log_state.clients =
  let disk = Store.disk t.store and dir = Store.dir t.store in
  Disk.crash disk;
  t.store <- Store.open_ ~disk ~dir ();
  t.since_checkpoint <- List.length (Store.recovered t.store).Store.tail;
  recover t

(* --- fsck: semantic invariants over the stored state --- *)

type fsck = {
  structural : Store.verify_report;
  wal_ops : int; (* decoded WAL entries across replayable generations *)
  clients : int;
  issues : string list; (* human-readable; empty = clean *)
}

let fsck_clean (r : fsck) : bool = Store.verify_clean r.structural && r.issues = []

let check_client (cid : string) (c : Log_state.client_state) (issues : string list ref) : unit =
  let record_count = List.length c.Log_state.records in
  if c.Log_state.chain_len <> record_count then
    issues :=
      Printf.sprintf "client %s: chain_len %d but %d records stored" cid c.Log_state.chain_len
        record_count
      :: !issues;
  let head = Log_state.chain_over (List.rev c.Log_state.records) in
  if head <> c.Log_state.chain_head then
    issues := Printf.sprintf "client %s: record hash chain does not verify" cid :: !issues;
  (* the derived Merkle tree must agree with the records it summarizes *)
  let module Merkle = Larch_merkle.Merkle in
  let expect =
    Merkle.Tree.of_leaves (List.rev_map Record.encode c.Log_state.records)
  in
  if Merkle.Tree.size c.Log_state.tree <> record_count then
    issues :=
      Printf.sprintf "client %s: merkle tree has %d leaves but %d records stored" cid
        (Merkle.Tree.size c.Log_state.tree) record_count
      :: !issues
  else if not (String.equal (Merkle.Tree.root c.Log_state.tree) (Merkle.Tree.root expect)) then
    issues := Printf.sprintf "client %s: merkle tree root does not verify" cid :: !issues;
  match c.Log_state.fido2 with
  | None -> ()
  | Some f ->
      List.iteri
        (fun i (b : Two_party_ecdsa.log_batch) ->
          let len = Array.length b.Two_party_ecdsa.entries in
          if b.Two_party_ecdsa.next < 0 || b.Two_party_ecdsa.next > len then
            issues :=
              Printf.sprintf "client %s: batch %d cursor %d out of bounds [0,%d]" cid i
                b.Two_party_ecdsa.next len
              :: !issues)
        f.Log_state.batches;
      List.iteri
        (fun i ((b : Two_party_ecdsa.log_batch), _) ->
          if b.Two_party_ecdsa.next <> 0 then
            issues :=
              Printf.sprintf "client %s: staged batch %d has consumed cursor %d" cid i
                b.Two_party_ecdsa.next
              :: !issues)
        f.Log_state.pending

(* Presignature consume totals must march forward one at a time in WAL
   order; re-enrollment and revocation reset the count, an abort can only
   burn forward (never reveal an older index again). *)
let check_consume_order (entries : Log_state.entry list) (issues : string list ref) : unit =
  let totals : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun { Log_state.cid; op } ->
      match op with
      | Log_state.Enroll_fido2 _ | Log_state.Revoke -> Hashtbl.remove totals cid
      | Log_state.Fido2_consume { total; _ } ->
          (match Hashtbl.find_opt totals cid with
          | Some prev when total <> prev + 1 ->
              issues :=
                Printf.sprintf
                  "client %s: presig consume total went %d -> %d (must increase by 1)" cid prev
                  total
                :: !issues
          | _ -> ());
          Hashtbl.replace totals cid total
      | Log_state.Fido2_abort { consumed } ->
          (match Hashtbl.find_opt totals cid with
          | Some prev when consumed < prev ->
              issues :=
                Printf.sprintf "client %s: abort rewound presig total %d -> %d" cid prev consumed
                :: !issues
          | _ -> ());
          Hashtbl.replace totals cid (max consumed (Option.value (Hashtbl.find_opt totals cid) ~default:0))
      | _ -> ())
    entries

let fsck ?(live : Log_state.clients option) (t : t) : fsck =
  Store.flush t.store;
  let disk = Store.disk t.store and dir = Store.dir t.store in
  let structural = Store.verify_disk disk ~dir in
  let issues = ref [] in
  (* Re-derive the recovery base as a fresh open would see the disk NOW —
     checkpoints since our own recovery have rolled generations, so the
     recorded recovery is stale. *)
  let snap, _skipped = Larch_store.Snapshot.latest_valid disk ~dir in
  let base_gen = match snap with Some (g, _) -> g | None -> 0 in
  let replayed : Log_state.clients = Hashtbl.create 16 in
  (match snap with
  | None -> ()
  | Some (_, payload) -> (
      match Log_codec.decode_clients payload with
      | Ok c -> Hashtbl.iter (fun k v -> Hashtbl.replace replayed k v) c
      | Error m -> issues := Printf.sprintf "snapshot undecodable: %s" m :: !issues));
  let wal_entries =
    (* everything at or after the recovery-base snapshot replays on top *)
    let gens = List.filter (fun g -> g >= base_gen) (Store.wal_gens disk ~dir) in
    List.concat_map
      (fun g ->
        let entries, _, _ = Larch_store.Wal.scan disk ~file:(Store.wal_file dir g) in
        entries)
      (List.sort compare gens)
  in
  let decoded =
    List.filter_map
      (fun bytes ->
        match Log_codec.decode_entry bytes with
        | Ok e -> Some e
        | Error m ->
            issues := Printf.sprintf "WAL entry undecodable: %s" m :: !issues;
            None)
      wal_entries
  in
  let replay_failed = ref false in
  List.iter
    (fun e ->
      if not !replay_failed then
        try Log_state.apply replayed e
        with Types.Protocol_error m ->
          replay_failed := true;
          issues := Printf.sprintf "WAL replay failed: %s" m :: !issues)
    decoded;
  if not !replay_failed then begin
    Hashtbl.iter (fun cid c -> check_client cid c issues) replayed;
    check_consume_order decoded issues;
    match live with
    | None -> ()
    | Some live ->
        if Log_codec.encode_clients live <> Log_codec.encode_clients replayed then
          issues := "live state and replayed state differ (replay-match failed)" :: !issues;
        (* the tree is derived state outside the snapshot encoding, so the
           replay-match above cannot see it: compare the live signed-head
           inputs against the tree a fresh recovery would rebuild *)
        let module Merkle = Larch_merkle.Merkle in
        Hashtbl.iter
          (fun cid (lc : Log_state.client_state) ->
            match Hashtbl.find_opt replayed cid with
            | None -> ()
            | Some rc ->
                if
                  Merkle.Tree.size lc.Log_state.tree <> Merkle.Tree.size rc.Log_state.tree
                  || not
                       (String.equal
                          (Merkle.Tree.root lc.Log_state.tree)
                          (Merkle.Tree.root rc.Log_state.tree))
                then
                  issues :=
                    Printf.sprintf "client %s: live merkle root differs from replayed tree" cid
                    :: !issues)
          live
  end;
  { structural; wal_ops = List.length decoded; clients = Hashtbl.length replayed; issues = List.rev !issues }
