(** Fiber-based admission loop for the log service, with overload
    control.

    Under {!Larch_runtime.Runtime}, each client session is a fiber and
    its transport hands log-side execution to an installed executor
    ({!Larch_net.Transport.set_executor}).  This module is that
    executor: requests from any number of concurrent sessions land in
    one mailbox, and a dedicated admission fiber serves them — batching
    same-instant arrivals for signature pre-verification, draining
    per-client FIFOs round-robin, and shedding what it cannot serve.

    Admission control (all off by default — see {!off}):
    - {b bounded inbox}: beyond [capacity] queued requests, a submitting
      fiber is rejected at the door with
      {!Larch_net.Transport.Overload} carrying a retry_after hint
      derived from the backlog and the service-time estimate;
    - {b deadline-aware shedding}: every enqueued request carries the
      simulated time by which its caller gives up ([now +
      attempt_timeout], piped through the executor); a request that
      cannot finish before its deadline is shed {e early} instead of
      burning service time on a caller that already left;
    - {b per-client fair queueing}: one item per client per round-robin
      turn, so one hot client's backlog cannot starve the rest;
    - {b token-bucket rate limiting}: [client_rate]/[client_burst]
      tokens per client on the simulated clock; a dry bucket sheds with
      the exact time until the next token;
    - {b brownout}: when the queue sits at or above [brownout_hi] for
      [brownout_enter_ticks] consecutive serve cycles, the log enters a
      degraded mode — presignature refills are deferred and
      authentication acks carry explicitly-flagged degraded
      attestations ({!Log_service.set_degraded}) — and exits
      hysteretically after [brownout_exit_ticks] cycles at or below
      [brownout_lo].

    Everything is driven by the virtual clock and the seeded runtime, so
    shed decisions replay byte-for-byte.  Metrics (when tracing is on):
    [log.admission.shed], [log.admission.queue_delay],
    [log.brownout.active], plus the PR 9 batch metrics; the flight
    recorder dumps once at the first shed (overload is a crash-adjacent
    event).  The {!stats} counters work with tracing off, for
    deterministic scenario digests. *)

type t

(** What the admission fiber tells a submitting fiber. *)
type verdict = Served | Shed of float  (** retry_after hint, seconds *)

type config = {
  capacity : int;  (** max queued requests; 0 = unbounded *)
  service_time : float;
      (** simulated seconds of log work charged per served request
          (capacity = 1/service_time req/s); 0 = free *)
  client_rate : float;  (** per-client token refill per second; 0 = unlimited *)
  client_burst : float;  (** per-client bucket depth (floored at 1) *)
  brownout_hi : int;  (** queue length at/above which pressure accumulates; 0 = off *)
  brownout_lo : int;  (** queue length at/below which recovery accumulates *)
  brownout_enter_ticks : int;  (** consecutive high cycles before entering *)
  brownout_exit_ticks : int;  (** consecutive low cycles before exiting *)
}

val off : config
(** Everything disabled: the PR 9 behavior (unbounded FIFO admission). *)

val create : ?config:config -> Log_service.t -> t
(** [config] defaults to {!off}. *)

val set_config : t -> config -> unit
(** Swap the admission policy live (e.g. relax it for a post-storm
    verification phase). *)

val config : t -> config

val attach : t -> client_id:string -> Larch_net.Transport.t -> unit
(** Install this admission loop as the transport's executor and bind
    the transport's requests to [client_id] (the loop needs the id for
    batch checking, fair queueing, and rate limiting). *)

val start : t -> unit
(** Spawn the admission fiber (idempotent).  Must run under
    {!Larch_runtime.Runtime.run}. *)

val stop : t -> unit
(** Cancel the admission fiber.  Any still-queued requests complete (or
    shed) first; an active brownout is force-exited. *)

val batches : t -> int
(** Batches drained so far. *)

val batched_requests : t -> int
(** Requests that arrived batched with at least one companion. *)

val brownout_active : t -> bool

type stats = {
  served : int;
  shed_capacity : int;  (** rejected at the door: inbox at capacity *)
  shed_deadline : int;  (** shed at dequeue: could not meet the caller's deadline *)
  shed_rate : int;  (** shed at dequeue: client token bucket dry *)
  shed_total : int;
  max_queue : int;  (** high-water mark of the admission queue *)
  brownout_entries : int;
  brownout_ticks : int;  (** serve cycles spent browned out *)
  queue_delay_max : float;  (** worst simulated queueing delay of a served request *)
}

val stats : t -> stats
