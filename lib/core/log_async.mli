(** Fiber-based admission loop for the log service.

    Under {!Larch_runtime.Runtime}, each client session is a fiber and
    its transport hands log-side execution to an installed executor
    ({!Larch_net.Transport.set_executor}).  This module is that
    executor: requests from any number of concurrent sessions land in
    one mailbox, and a dedicated admission fiber drains {e everything
    that arrived in the same simulated instant} as one batch per tick.

    Batching is what makes the concurrency pay:
    - all [fido2.auth_begin] record signatures in a batch are verified
      together by one random-weight Pippenger multi-exponentiation
      ({!Larch_ec.Ecdsa.verify_batch}); winners deposit one-shot skip
      tokens ({!Log_service.preverify_record_sig}) so the per-request
      handler does not repeat the check — failures simply fall back to
      the individual path, the accept set never changes;
    - when the inbox goes idle, the loop activates matured staged
      presignature batches ({!Log_service.activate_pending}) — the
      paper's "refill during idle time" amortization.

    Requests within a batch execute sequentially (the log is one
    service); their order is the seeded mailbox-drain order, so the
    whole construction stays byte-for-byte replayable. *)

type t

val create : Log_service.t -> t

val attach : t -> client_id:string -> Larch_net.Transport.t -> unit
(** Install this admission loop as the transport's executor and bind
    the transport's requests to [client_id] (the loop needs the id to
    look up the record-verification key for batch checking). *)

val start : t -> unit
(** Spawn the admission fiber (idempotent).  Must run under
    {!Larch_runtime.Runtime.run}. *)

val stop : t -> unit
(** Cancel the admission fiber.  Any still-queued requests complete
    first (they are drained before cancellation is honored). *)

val batches : t -> int
(** Batches drained so far. *)

val batched_requests : t -> int
(** Requests that arrived batched with at least one companion. *)
