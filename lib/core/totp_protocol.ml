(* Split-secret TOTP authentication (§4): registration message formats and
   the per-authentication 2PC execution.

   At registration the relying party hands the client a TOTP secret; the
   client samples a random 128-bit identifier, XOR-splits the secret, and
   sends (id, klog_id) to the log.  Authentication executes the
   [Larch_statements.totp_circuit] with the Yao runner: the log (evaluator)
   learns only (ok, ct) — an encrypted record — and the client (garbler)
   learns the full HMAC, which it truncates to the 6-digit code. *)

module Wire = Larch_net.Wire
module Statements = Larch_circuit.Larch_statements
module Yao = Larch_mpc.Yao
module Channel = Larch_net.Channel

type registration = { id : string (* 16B *); klog : string (* 20B share of the TOTP key *) }

let encode_registration (r : registration) : string =
  Wire.encode (fun w ->
      Wire.bytes w r.id;
      Wire.bytes w r.klog)

let decode_registration (s : string) : registration option =
  match
    Wire.decode s (fun rd ->
        let id = Wire.read_bytes rd in
        let klog = Wire.read_bytes rd in
        { id; klog })
  with
  | Ok r when String.length r.id = Statements.totp_id_len && String.length r.klog = Statements.totp_key_len ->
      Some r
  | _ -> None

(* The log learns ok(1) ‖ ct(128); the client's 160 HMAC bits come back
   gated by ok. *)
let evaluator_output_bits = 1 + (8 * Statements.totp_id_len)

type outcome = {
  code : int; (* the 6-digit TOTP code, client side *)
  hmac : string; (* full 20-byte HMAC the circuit released *)
  ok : bool; (* log-side validity bit *)
  ct : string; (* log-side encrypted record (16B) *)
  timings : Yao.timings; (* offline/online/evaluator split for the bench *)
}

let run_auth ~(pub : Statements.totp_public) ~(n_rps : int)
    ~(client : string * string * string * string) (* k, r, id, kclient *)
    ~(registrations : (string * string) list) ~(rand_client : int -> string)
    ~(rand_log : int -> string) ~(offline : Channel.t) ~(online : Channel.t) : outcome =
  Larch_obs.Trace.with_span "totp.2pc.run" @@ fun () ->
  Larch_obs.Trace.add_int "n_rps" n_rps;
  let k, r, id, kclient = client in
  let circuit = Statements.totp_circuit ~n_rps pub in
  let garbler_inputs = Statements.totp_client_input ~k ~r ~id ~kclient in
  let evaluator_inputs = Statements.totp_log_input ~registrations in
  let cfg =
    Yao.
      {
        circuit;
        n_garbler_inputs = Array.length garbler_inputs;
        n_evaluator_outputs = evaluator_output_bits;
      }
  in
  let res =
    Yao.run cfg ~garbler_inputs ~evaluator_inputs ~rand_garbler:rand_client
      ~rand_evaluator:rand_log ~offline ~online
  in
  let ok = res.Yao.evaluator_outputs.(0) = 1 in
  let ct =
    Larch_util.Bytesx.string_of_bits (Array.sub res.Yao.evaluator_outputs 1 (8 * Statements.totp_id_len))
  in
  let hmac = Larch_util.Bytesx.string_of_bits res.Yao.garbler_outputs in
  { code = Larch_auth.Totp.truncate hmac; hmac; ok; ct; timings = res.Yao.timings }
