(** Deterministic overload scenario (the [larch overload] driver and the
    [-e overload] bench share it).

    One seeded world per (seed, load multiple): [20·mult] password
    clients plus two FIDO2 probes run concurrent authentication sessions
    against a single store-backed log whose {!Log_async} admission loop
    services 100 requests per simulated second.  Every 16th password
    client is a Zipf-style hot head firing more authentications than the
    rest — the per-client fair queue and token buckets keep it from
    starving everyone else.  Client transports carry a short per-attempt
    timeout (so deadline shedding has teeth), a leaky-bucket retry
    budget, and retry_after-honoring jittered backoff.

    At 1× the offered load roughly matches capacity and (almost)
    everything completes; beyond it the log sheds typed
    {!Larch_net.Transport.Overloaded} replies at the door, by deadline,
    and by rate, enters brownout (degraded attestations, deferred
    presignature refills), and keeps serving near capacity.  After the
    storm the admission policy is relaxed, the brownout exits
    hysteretically on calm traffic, every client runs a verified audit
    (clearing any deferred inclusion checks), and the store is fscked.

    Everything runs on the virtual clock under the seeded runtime, so
    two runs from the same seed produce byte-identical transcripts
    ([digest]). *)

type world = {
  mult : int;  (** offered-load multiple of the log's service capacity *)
  clients : int;
  offered : int;  (** authentication attempts fired during the storm *)
  completed : int;
  overloaded : int;
      (** attempts that surfaced a typed [Overloaded] error after retries *)
  failed : int;  (** any other failure *)
  storm_elapsed : float;  (** simulated seconds of storm *)
  goodput : float;  (** completed / storm_elapsed, per simulated second *)
  admission : Log_async.stats;
  attempts : int;  (** transport attempts, summed over clients *)
  retries : int;
  shed_attempts : int;  (** transport attempts answered with a shed *)
  budget_denied : int;  (** retries refused by the client retry budgets *)
  brownout_recovered : bool;
      (** the brownout exited on calm traffic and every client's deferred
          attestation flag was cleared by its verified audit *)
  deferred_clients : int;
      (** clients that accepted at least one degraded (proof-less)
          attestation during the storm *)
  audits_ok : int;
  audits_failed : int;
  fsck_clean : bool;
  digest : string;  (** SHA-256 of the run transcript, hex *)
  summary : string;  (** one human-readable line *)
}

val storm_config : Log_async.config
(** The admission policy the storm runs under (capacity 64, 10 ms
    service time, 4 tokens/s per client). *)

val storm_policy : Larch_net.Transport.policy
(** The client transport policy (3 attempts, 0.3 s attempt timeout). *)

val run : seed:string -> mult:int -> world
(** Run one world.  Sets and restores the process clock; must not be
    called from inside a runtime.
    @raise Larch_runtime.Runtime.Deadlock if the schedule wedges (the
    CLI surfaces the stuck-fiber report) *)
