(* Durable log-service state and the logical operations that mutate it.

   This module is the single write path for everything the log service
   must not lose across a crash: the per-client enrollment shares, the
   encrypted record chains, the presignature inventory cursors, and the §9
   backup blobs.  [Log_service] validates a request, then commits one [op]
   — [apply] mutates the in-memory map and (when a store is attached)
   [Log_persist] appends the encoded op to the write-ahead log.  Recovery
   replays the same [apply] over the same ops, so the recovered state is
   the durable state by construction, not by a parallel re-implementation.

   Volatile state (the in-flight Π_Sign session, the client's opening
   commitment, the staged-but-uncommitted record) lives in the same
   records but is deliberately *not* described by any op: a crash drops
   it, which is the semantics the transport layer's restart hooks expect.

   Policy [notify] callbacks are runtime-only (closures don't persist);
   the durable half of a policy is its rate limit and window. *)

module Point = Larch_ec.Point
module Scalar = Larch_ec.P256.Scalar
module Tpe = Two_party_ecdsa
module Merkle = Larch_merkle.Merkle

type policy = {
  max_auths_per_window : int option;
  window_seconds : float;
  notify : (Types.auth_method -> float -> unit) option;
      (** §9: e.g. push a login-confirmation notification to the user's
          phone on every authentication.  Volatile: never persisted. *)
}

let default_policy = { max_auths_per_window = None; window_seconds = 60.; notify = None }

type fido2_state = {
  cm : string;
  record_vk : Point.t; (* verifies the client's record-integrity signatures *)
  key : Tpe.log_key;
  mutable batches : Tpe.log_batch list; (* active presignature batches *)
  mutable pending : (Tpe.log_batch * float) list; (* staged until the objection window passes *)
  mutable signing : Tpe.party_state option; (* volatile: in-flight Π_Sign *)
  mutable signing_record : Record.t option; (* volatile: stored once the proof verifies *)
  mutable client_commit : Larch_mpc.Spdz.open_commit option; (* volatile *)
}

type totp_state = {
  cm_totp : string;
  mutable registrations : Totp_protocol.registration list;
  mutable last_auth : (string * Totp_protocol.outcome) option;
      (* (enc_nonce, outcome) of the last 2PC: a retransmitted invocation
         with the same nonce replays the outcome instead of re-running the
         circuit and double-appending the record *)
}

type pw_state = {
  client_pub : Point.t; (* X = g^x, the ElGamal archive public key *)
  k : Scalar.t; (* the log's per-client Diffie-Hellman secret *)
  k_pub : Point.t;
  mutable ids : string list; (* registration order defines the GK15 set *)
}

type client_state = {
  account_token : string; (* hash of the user's log-account credential *)
  mutable fido2 : fido2_state option;
  mutable totp : totp_state option;
  mutable pw : pw_state option;
  mutable records : Record.t list; (* newest first *)
  mutable policy : policy;
  mutable recent_auths : float list;
  mutable backup : string option; (* opaque encrypted client-state blob (§9 recovery) *)
  mutable chain_head : string; (* hash chain over records: rollback detection (§9) *)
  mutable chain_len : int;
  mutable last_migrate : string option; (* δ of the last key migration, for retry dedup *)
  mutable tree : Merkle.Tree.t;
      (* Merkle tree over the same records, oldest first: O(log n) audits.
         Derived state — never serialized, rebuilt from the records on
         recovery — so snapshots stay byte-identical across versions. *)
}

type clients = (string, client_state) Hashtbl.t

let chain_genesis () : string = Larch_hash.Sha256.digest "larch-chain-genesis"

let create_client ~(token : string) : client_state =
  {
    account_token = token;
    fido2 = None;
    totp = None;
    pw = None;
    records = [];
    policy = default_policy;
    recent_auths = [];
    backup = None;
    chain_head = chain_genesis ();
    chain_len = 0;
    last_migrate = None;
    tree = Merkle.Tree.create ();
  }

(* Every stored record extends a per-client hash chain and the Merkle
   tree; audits return the head so a client that remembers the last head
   it saw can detect a log that rolls back or rewrites history (§9
   "Multiple devices" / fork consistency). *)
let append_record (c : client_state) (r : Record.t) : unit =
  let enc = Record.encode r in
  c.records <- r :: c.records;
  c.chain_head <- Larch_hash.Sha256.digest_list [ "larch-chain"; c.chain_head; enc ];
  c.chain_len <- c.chain_len + 1;
  Merkle.Tree.append c.tree enc

(* Chain over a full record list, oldest first. *)
let chain_over (records_oldest_first : Record.t list) : string =
  List.fold_left
    (fun h r -> Larch_hash.Sha256.digest_list [ "larch-chain"; h; Record.encode r ])
    (chain_genesis ()) records_oldest_first

(* Recompute every record-derived field — chain head/length and the
   Merkle tree — from [c.records].  Recovery and pruning both rebuild
   through here, so the derived state can never drift from the records
   it summarizes. *)
let rebuild_derived (c : client_state) : unit =
  let oldest_first = List.rev c.records in
  c.chain_head <- chain_over oldest_first;
  c.chain_len <- List.length oldest_first;
  c.tree <- Merkle.Tree.of_leaves (List.map Record.encode oldest_first)

let fido2_state (c : client_state) : fido2_state =
  match c.fido2 with Some f -> f | None -> Types.fail "fido2 not enrolled"

let totp_state (c : client_state) : totp_state =
  match c.totp with Some s -> s | None -> Types.fail "totp not enrolled"

let pw_state (c : client_state) : pw_state =
  match c.pw with Some s -> s | None -> Types.fail "password not enrolled"

(* --- the logical operation log --- *)

type op =
  | Enroll of { token : string (* sha256 of the account credential *) }
  | Set_policy of { max_auths : int option; window : float }
  | Enroll_fido2 of { cm : string; record_vk : Point.t; x : Scalar.t; batch : Tpe.log_batch }
  | Enroll_totp of { cm : string }
  | Enroll_pw of { client_pub : Point.t; k : Scalar.t }
  | Stage_presigs of { batch : Tpe.log_batch; activate_at : float }
  | Activate_pending of { now : float }
  | Object_pending
  | Charge of { method_ : Types.auth_method; now : float } (* a policy-window auth charge *)
  | Fido2_consume of { index : int; total : int (* consumed across batches after this op *) }
  | Fido2_record of { record : Record.t }
  | Fido2_abort of { consumed : int }
  | Totp_register of { id : string; klog : string }
  | Totp_unregister of { id : string }
  | Totp_auth of { record : Record.t; enc_nonce : string; code : int; hmac : string; ct : string }
  | Pw_register of { id : string }
  | Pw_unregister of { id : string }
  | Pw_auth of { record : Record.t }
  | Prune of { older_than : float }
  | Revoke
  | Migrate of { delta : Scalar.t }
  | Store_backup of { blob : string }

type entry = { cid : string; op : op }

let get (clients : clients) (cid : string) : client_state =
  match Hashtbl.find_opt clients cid with
  | Some c -> c
  | None -> Types.fail "unknown client %S" cid

let total_consumed (f : fido2_state) : int =
  List.fold_left (fun acc (b : Tpe.log_batch) -> acc + b.Tpe.next) 0 f.batches

(* Zeroed 2PC timings for a replayed TOTP outcome: phase timings are
   measurements of an execution that did not happen on this process. *)
let zero_timings : Larch_mpc.Yao.timings =
  { Larch_mpc.Yao.offline_seconds = 0.; online_seconds = 0.; evaluator_seconds = 0. }

(* The one mutation path for durable state.  Runtime commits and WAL
   replay both run through here; anything [apply] does not do is, by
   definition, not durable. *)
let apply (clients : clients) ({ cid; op } : entry) : unit =
  match op with
  | Enroll { token } -> Hashtbl.replace clients cid (create_client ~token)
  | Set_policy { max_auths; window } ->
      let c = get clients cid in
      c.policy <- { c.policy with max_auths_per_window = max_auths; window_seconds = window }
  | Enroll_fido2 { cm; record_vk; x; batch } ->
      let c = get clients cid in
      c.fido2 <-
        Some
          {
            cm;
            record_vk;
            key = { Tpe.x; x_pub = Point.mul_base x };
            batches = [ batch ];
            pending = [];
            signing = None;
            signing_record = None;
            client_commit = None;
          }
  | Enroll_totp { cm } ->
      (get clients cid).totp <- Some { cm_totp = cm; registrations = []; last_auth = None }
  | Enroll_pw { client_pub; k } ->
      (get clients cid).pw <- Some { client_pub; k; k_pub = Point.mul_base k; ids = [] }
  | Stage_presigs { batch; activate_at } ->
      let f = fido2_state (get clients cid) in
      f.pending <- f.pending @ [ (batch, activate_at) ]
  | Activate_pending { now } ->
      let f = fido2_state (get clients cid) in
      let ready, waiting = List.partition (fun (_, at) -> at <= now) f.pending in
      f.pending <- waiting;
      f.batches <- f.batches @ List.map fst ready
  | Object_pending -> (fido2_state (get clients cid)).pending <- []
  | Charge { method_ = _; now } ->
      let c = get clients cid in
      (match c.policy.max_auths_per_window with
      | None -> ()
      | Some _ ->
          let window_start = now -. c.policy.window_seconds in
          c.recent_auths <- List.filter (fun ts -> ts >= window_start) c.recent_auths);
      c.recent_auths <- now :: c.recent_auths
  | Fido2_consume { index; total = _ } ->
      let f = fido2_state (get clients cid) in
      (match List.find_opt (fun b -> Tpe.log_batch_remaining b > 0) f.batches with
      | Some b when b.Tpe.next = index -> b.Tpe.next <- index + 1
      | Some b -> Types.fail "replay: presignature cursor mismatch (at %d, op says %d)" b.Tpe.next index
      | None -> Types.fail "replay: no presignature to consume")
  | Fido2_record { record } -> append_record (get clients cid) record
  | Fido2_abort { consumed } ->
      let f = fido2_state (get clients cid) in
      let rec burn batches need =
        match batches with
        | [] -> ()
        | (b : Tpe.log_batch) :: rest ->
            let take = min (Array.length b.Tpe.entries) need in
            if b.Tpe.next < take then b.Tpe.next <- take;
            burn rest (need - take)
      in
      burn f.batches (max 0 consumed)
  | Totp_register { id; klog } ->
      let s = totp_state (get clients cid) in
      s.registrations <- s.registrations @ [ { Totp_protocol.id; klog } ]
  | Totp_unregister { id } ->
      let s = totp_state (get clients cid) in
      s.registrations <- List.filter (fun r -> r.Totp_protocol.id <> id) s.registrations
  | Totp_auth { record; enc_nonce; code; hmac; ct } ->
      let c = get clients cid in
      let s = totp_state c in
      append_record c record;
      s.last_auth <-
        Some (enc_nonce, { Totp_protocol.code; hmac; ok = true; ct; timings = zero_timings })
  | Pw_register { id } ->
      let s = pw_state (get clients cid) in
      s.ids <- s.ids @ [ id ]
  | Pw_unregister { id } ->
      let s = pw_state (get clients cid) in
      s.ids <- List.filter (fun i -> i <> id) s.ids
  | Pw_auth { record } -> append_record (get clients cid) record
  | Prune { older_than } ->
      let c = get clients cid in
      let keep = List.filter (fun (r : Record.t) -> r.Record.time >= older_than) c.records in
      c.records <- keep;
      (* user-authorized truncation restarts the hash chain and the tree
         so future audits verify against the pruned history *)
      rebuild_derived c
  | Revoke ->
      let c = get clients cid in
      c.fido2 <- None;
      c.totp <- None;
      c.pw <- None
  | Migrate { delta } ->
      let c = get clients cid in
      let f = fido2_state c in
      let x' = Scalar.add f.key.Tpe.x delta in
      c.fido2 <- Some { f with key = { Tpe.x = x'; x_pub = Point.mul_base x' } };
      c.last_migrate <- Some (Scalar.to_bytes_be delta)
  | Store_backup { blob } -> (get clients cid).backup <- Some blob
