(** Flattened circuit execution plan: the gate graph compiled once into
    struct-of-arrays form (opcode byte + operand-index arrays + dense AND
    indices) so hot evaluators stream through int arrays instead of
    dispatching on [Circuit.gate] blocks.

    Wire references are re-validated at compile time — evaluators built on
    a plan may use unchecked array access.  Plans are immutable and safe
    to share across domains. *)

type t = private {
  circuit : Circuit.t;
  n_inputs : int;
  n_gates : int;
  n_wires : int;
  n_and : int;
  n_outputs : int;
  op : Bytes.t;  (** one opcode byte per gate: {!op_xor} … {!op_const} *)
  arg_a : int array;  (** first operand wire; for Const, the value 0/1 *)
  arg_b : int array;  (** second operand wire (And/Xor) *)
  and_k : int array;  (** gate → dense AND index (tape position), or -1 *)
  outputs : int array;
}

val op_xor : int
val op_and : int
val op_not : int
val op_const : int

val of_circuit : Circuit.t -> t
(** Compile. @raise Invalid_argument on malformed wire references. *)

val cached : Circuit.t -> t
(** Memoized {!of_circuit}, keyed on physical equality of the circuit —
    the static statement circuits compile once per process. *)

val eval : t -> bool array -> bool array
(** Cleartext evaluation over the flat arrays; agrees bit-for-bit with
    [Circuit.eval] (differentially tested). *)

val eval_into : t -> scratch:int array -> bool array -> bool array
(** [eval] with a caller-provided wire scratch (≥ [n_wires] ints). *)
