(* Flattened circuit execution plan.

   [Circuit.t] stores gates as an array of variant blocks; evaluating it
   means chasing a heap pointer and dispatching on the constructor for
   every gate — ~3 words of scattered heap per gate, half a million gates
   per ZKBoo batch.  A plan compiles the gate graph once into a
   struct-of-arrays form the hot evaluators stream through:

     op     one byte per gate (opcode),
     arg_a  first operand wire (or the constant's value),
     arg_b  second operand wire,
     and_k  dense AND index (position on the random tape), -1 otherwise.

   All wire references are re-validated at compile time, so evaluators
   built on a plan may use unchecked array access.  Plans are immutable
   and safe to share across domains; [cached] memoizes compilation per
   circuit (physical equality), which makes "compile once, prove many"
   automatic for the static statement circuits. *)

type t = {
  circuit : Circuit.t;
  n_inputs : int;
  n_gates : int;
  n_wires : int;
  n_and : int;
  n_outputs : int;
  op : Bytes.t;
  arg_a : int array;
  arg_b : int array;
  and_k : int array;
  outputs : int array;
}

let op_xor = 0
let op_and = 1
let op_not = 2
let op_const = 3

let of_circuit (c : Circuit.t) : t =
  let n_gates = Circuit.n_gates c in
  let n_wires = Circuit.n_wires c in
  let op = Bytes.make n_gates '\000' in
  let arg_a = Array.make n_gates 0 in
  let arg_b = Array.make n_gates 0 in
  let check i w =
    if w < 0 || w >= c.n_inputs + i then invalid_arg "Plan.of_circuit: bad wire reference"
  in
  Array.iteri
    (fun i g ->
      match g with
      | Circuit.Xor (a, b) ->
          check i a; check i b;
          Bytes.unsafe_set op i (Char.chr op_xor);
          arg_a.(i) <- a;
          arg_b.(i) <- b
      | Circuit.And (a, b) ->
          check i a; check i b;
          if c.and_index.(i) < 0 || c.and_index.(i) >= c.n_and then
            invalid_arg "Plan.of_circuit: bad AND index";
          Bytes.unsafe_set op i (Char.chr op_and);
          arg_a.(i) <- a;
          arg_b.(i) <- b
      | Circuit.Not a ->
          check i a;
          Bytes.unsafe_set op i (Char.chr op_not);
          arg_a.(i) <- a
      | Circuit.Const v ->
          Bytes.unsafe_set op i (Char.chr op_const);
          arg_a.(i) <- (if v then 1 else 0))
    c.gates;
  Array.iter
    (fun w -> if w < 0 || w >= n_wires then invalid_arg "Plan.of_circuit: bad output wire")
    c.outputs;
  {
    circuit = c;
    n_inputs = c.n_inputs;
    n_gates;
    n_wires;
    n_and = c.n_and;
    n_outputs = Circuit.n_outputs c;
    op;
    arg_a;
    arg_b;
    and_k = c.and_index;
    outputs = c.outputs;
  }

(* --- memoized compilation ---

   Keyed on physical equality: the statement circuits are built once
   (lazily) and shared, so pointer identity is the natural cache key.  A
   short bounded list is plenty — a process touches a handful of distinct
   circuits — and the mutex only guards the (rare) lookup, never any
   evaluation. *)

let cache_cap = 8
let cache : (Circuit.t * t) list ref = ref []
let cache_lock = Mutex.create ()

let cached (c : Circuit.t) : t =
  Mutex.lock cache_lock;
  let hit = List.find_opt (fun (c', _) -> c' == c) !cache in
  match hit with
  | Some (_, p) ->
      Mutex.unlock cache_lock;
      p
  | None ->
      (* compile outside the lock: compilation is pure, and a duplicate
         compile on a race is cheaper than holding the lock across it *)
      Mutex.unlock cache_lock;
      let p = of_circuit c in
      Mutex.lock cache_lock;
      let keep = List.filteri (fun i _ -> i < cache_cap - 1) !cache in
      cache := (c, p) :: keep;
      Mutex.unlock cache_lock;
      p

(* --- cleartext evaluation over the flat arrays ---

   Wire values are 0/1 ints in a preallocated scratch; this is the fast
   counterpart of [Circuit.eval] (differentially tested against it) used
   to recompute the public output during Fiat–Shamir. *)

let eval_into (p : t) ~(scratch : int array) (inputs : bool array) : bool array =
  if Array.length inputs <> p.n_inputs then invalid_arg "Plan.eval: wrong input count";
  if Array.length scratch < p.n_wires then invalid_arg "Plan.eval: scratch too small";
  let w = scratch in
  for i = 0 to p.n_inputs - 1 do
    Array.unsafe_set w i (if Array.unsafe_get inputs i then 1 else 0)
  done;
  let op = p.op and aa = p.arg_a and bb = p.arg_b in
  let ni = p.n_inputs in
  for i = 0 to p.n_gates - 1 do
    let code = Char.code (Bytes.unsafe_get op i) in
    let v =
      if code = op_xor then
        Array.unsafe_get w (Array.unsafe_get aa i) lxor Array.unsafe_get w (Array.unsafe_get bb i)
      else if code = op_and then
        Array.unsafe_get w (Array.unsafe_get aa i) land Array.unsafe_get w (Array.unsafe_get bb i)
      else if code = op_not then 1 - Array.unsafe_get w (Array.unsafe_get aa i)
      else Array.unsafe_get aa i
    in
    Array.unsafe_set w (ni + i) v
  done;
  Array.map (fun o -> Array.unsafe_get w o = 1) p.outputs

let eval (p : t) (inputs : bool array) : bool array =
  eval_into p ~scratch:(Array.make p.n_wires 0) inputs
