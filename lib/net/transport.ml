(* Faultable client↔log transport with a typed retry policy.

   Shape of the layer: the protocol drivers in lib/core hand us either a
   byte-level exchange ([call]/[post]: request bytes → handler → response
   bytes) or an opaque typed thunk ([invoke], for exchanges whose payloads
   never existed as one serialized message — enrollment key-setup, the TOTP
   garbled-circuit umbrella, audit).  We own the metering channel and,
   optionally, a [Fault.t] injector.

   Injector absent (the default): every operation is a pure passthrough —
   exactly one [Channel.send] per metered leg, no clock reads, no caching,
   no stats.  This reproduces the drivers' pre-transport metering
   byte-for-byte, so turning the layer "off" is a zero-behavior change.

   Injector present: each attempt draws one fault action per leg.  Drops
   and over-budget delays cost [attempt_timeout] on the simulated clock and
   surface as [Timeout]; crashes as [Unavailable]; corruption as [Garbled]
   (either because the log-side handler raises [Reject] on undecodable
   request bytes, or because the client-side [decode] returns [None] on a
   damaged response).  The policy retries with exponential backoff plus
   DRBG jitter, all on [Larch_util.Clock] — never the real clock — so runs
   replay exactly.

   Idempotency: a retried request is byte-identical, and the log side keeps
   a replay cache keyed by sha256(op ‖ 0x00 ‖ request-bytes) — a
   retransmitted or duplicated request is answered from the cache without
   re-executing the handler, so a retry can never burn an extra
   presignature or double-append a record.  A peer restart (injected or
   explicit) clears the cache and fires [on_restart] hooks, which is where
   the log service drops its volatile in-flight session state.

   Everything transmitted is metered, including dropped, duplicated, stale
   and corrupted copies — the accounting reflects bytes on the wire, not
   bytes usefully received. *)

module Obs = Larch_obs
module Clock = Larch_util.Clock
module Runtime = Larch_runtime.Runtime

type policy = {
  max_attempts : int;
  attempt_timeout : float;
  base_backoff : float;
  backoff_factor : float;
  max_backoff : float;
  jitter : float;
}

let default_policy =
  {
    max_attempts = 4;
    attempt_timeout = 1.0;
    base_backoff = 0.05;
    backoff_factor = 2.0;
    max_backoff = 2.0;
    jitter = 0.2;
  }

type failure = Timeout | Unavailable | Garbled of string | Overloaded of float

type error = { op : string; attempts : int; elapsed : float; last : failure }

exception Error of error
exception Reject of string
exception Overload of float

let failure_to_string = function
  | Timeout -> "timeout"
  | Unavailable -> "unavailable"
  | Garbled m -> Printf.sprintf "garbled (%s)" m
  | Overloaded ra -> Printf.sprintf "overloaded (retry after %.3fs)" ra

let error_to_string (e : error) =
  Printf.sprintf "%s failed after %d attempt%s (%.3fs simulated): %s" e.op e.attempts
    (if e.attempts = 1 then "" else "s")
    e.elapsed (failure_to_string e.last)

type stats = {
  attempts : int;
  retries : int;
  timeouts : int;
  faults : int;
  replays : int;
  evictions : int;
  overloads : int;
  budget_denied : int;
}

type mstats = {
  mutable s_attempts : int;
  mutable s_retries : int;
  mutable s_timeouts : int;
  mutable s_faults : int;
  mutable s_replays : int;
  mutable s_evictions : int;
  mutable s_overloads : int;
  mutable s_budget_denied : int;
}

type counters = {
  c_retries : Obs.Metrics.counter;
  c_timeouts : Obs.Metrics.counter;
  c_faults : Obs.Metrics.counter;
  c_replays : Obs.Metrics.counter;
  c_evictions : Obs.Metrics.counter;
}

(* Client-wide retry budget: a leaky bucket refilled on the simulated
   clock.  Every retry — overload-driven or fault-driven — spends one
   token; an empty bucket fails the operation immediately instead of
   adding another attempt to a storm.  [None] (the default) is an
   unlimited budget: the historical behavior, byte-for-byte. *)
type budget = {
  b_capacity : float;
  b_refill_per_s : float;
  mutable b_tokens : float;
  mutable b_stamp : float; (* simulated time of the last refill *)
}

(* Replay-cache entry: [seq] is the entry's position in the recency order.
   Each touch re-enqueues the key with a fresh sequence number; queue
   entries whose number no longer matches are stale and skipped at
   eviction time (lazy LRU — no linked list, amortized O(1)). *)
type cache_entry = { resp : string; mutable seq : int }

type t = {
  chan : Channel.t;
  label : string;
  policy : policy;
  net : Netsim.t;
  mutable injector : Fault.t option;
  mutable admin : bool;
  cache : (string, cache_entry) Hashtbl.t;  (* log-side idempotent replay cache *)
  cache_order : (string * int) Queue.t;  (* (key, seq) in touch order *)
  cache_cap : int;
  mutable cache_seq : int;
  mutable restart_hooks : (unit -> unit) list;
  mutable executor :
    (op:string -> req:string option -> deadline:float -> (unit -> unit) -> unit) option;
  mutable budget : budget option;
  jitter_drbg : Larch_hash.Drbg.t Lazy.t;
      (* per-transport DRBG for overload-retry jitter on the clean path
         (the faulty path draws from its injector): seeded from the label
         and a deterministic creation counter, so concurrent clients
         desynchronize their retry storms reproducibly *)
  st : mstats;
  mutable last_req : (string * string) option;  (* (op, bytes) last delivered request *)
  mutable last_resp : string option;  (* last delivered response *)
  mutable op_elapsed : float;  (* simulated seconds spent on the current op *)
  mutable live : counters option;
}

let default_cache_cap = 256

(* Deterministic per-process creation counter: transports are created in
   a deterministic order under seeded runs, so the jitter DRBG sequence
   is a pure function of the run.  Scenario runners reset it so a re-run
   from the same seed replays the same jitter byte for byte. *)
let creation_counter = ref 0

let reset_ordinals () = creation_counter := 0

let create ?(label = "log") ?(policy = default_policy) ?(net = Netsim.zero)
    ?(cache_cap = default_cache_cap) chan =
  if cache_cap < 1 then invalid_arg "Transport.create: cache_cap must be positive";
  incr creation_counter;
  let ordinal = !creation_counter in
  {
    chan;
    label;
    policy;
    net;
    injector = None;
    admin = false;
    cache = Hashtbl.create 32;
    cache_order = Queue.create ();
    cache_cap;
    cache_seq = 0;
    restart_hooks = [];
    executor = None;
    budget = None;
    jitter_drbg =
      lazy
        (Larch_hash.Drbg.create
           ~entropy:(Printf.sprintf "transport-jitter/%s/%d" label ordinal));
    st =
      {
        s_attempts = 0;
        s_retries = 0;
        s_timeouts = 0;
        s_faults = 0;
        s_replays = 0;
        s_evictions = 0;
        s_overloads = 0;
        s_budget_denied = 0;
      };
    last_req = None;
    last_resp = None;
    op_elapsed = 0.;
    live = None;
  }

let channel t = t.chan
let set_injector t i = t.injector <- i
let injector t = t.injector
let faulty t = t.injector <> None
let set_admin_down t b = t.admin <- b
let admin_down t = t.admin
let on_restart t f = t.restart_hooks <- t.restart_hooks @ [ f ]
let set_executor t ex = t.executor <- ex

let set_retry_budget t ~capacity ~refill_per_s =
  if capacity <= 0. || refill_per_s < 0. then
    invalid_arg "Transport.set_retry_budget: capacity must be positive, refill non-negative";
  t.budget <-
    Some
      {
        b_capacity = capacity;
        b_refill_per_s = refill_per_s;
        b_tokens = capacity;
        b_stamp = Clock.now ();
      }

let clear_retry_budget t = t.budget <- None

let retry_budget_remaining t =
  match t.budget with
  | None -> infinity
  | Some b ->
      let now = Clock.now () in
      min b.b_capacity (b.b_tokens +. ((now -. b.b_stamp) *. b.b_refill_per_s))

(* Spend one retry token; [false] means the bucket is dry and the caller
   must fail the operation instead of retrying. *)
let take_retry_token t =
  match t.budget with
  | None -> true
  | Some b ->
      let now = Clock.now () in
      b.b_tokens <- min b.b_capacity (b.b_tokens +. ((now -. b.b_stamp) *. b.b_refill_per_s));
      b.b_stamp <- now;
      if b.b_tokens >= 1. then begin
        b.b_tokens <- b.b_tokens -. 1.;
        true
      end
      else false

(* Route log-side execution through the installed admission executor when
   the caller is a fiber: the closure travels to the log's admission loop
   (which may batch it with other clients' requests landing in the same
   simulated instant) and the calling fiber suspends until its slot is
   filled.  Without an executor — or outside a runtime — this is a direct
   call, byte-for-byte the historical behavior. *)
let via_exec t ~op ?req (f : unit -> 'a) : 'a =
  match t.executor with
  | Some ex when Runtime.in_fiber () ->
      let slot = ref None in
      (* the admission deadline rides along: if the loop cannot serve the
         request before the caller's own attempt timeout would expire, it
         sheds early by raising [Overload] instead of letting the caller
         burn the timeout *)
      let deadline = Clock.now () +. t.policy.attempt_timeout in
      ex ~op ~req ~deadline (fun () ->
          slot := Some (match f () with v -> Ok v | exception e -> Error e));
      (match !slot with
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> failwith "Transport: executor dropped a request")
  | _ -> f ()
let stats t =
  {
    attempts = t.st.s_attempts;
    retries = t.st.s_retries;
    timeouts = t.st.s_timeouts;
    faults = t.st.s_faults;
    replays = t.st.s_replays;
    evictions = t.st.s_evictions;
    overloads = t.st.s_overloads;
    budget_denied = t.st.s_budget_denied;
  }

let reset_stats t =
  t.st.s_attempts <- 0;
  t.st.s_retries <- 0;
  t.st.s_timeouts <- 0;
  t.st.s_faults <- 0;
  t.st.s_replays <- 0;
  t.st.s_evictions <- 0;
  t.st.s_overloads <- 0;
  t.st.s_budget_denied <- 0

let live_counters (t : t) : counters =
  match t.live with
  | Some c -> c
  | None ->
      let m = Obs.Metrics.default in
      let n suffix = "transport." ^ t.label ^ "." ^ suffix in
      let c =
        {
          c_retries = Obs.Metrics.counter m (n "retries");
          c_timeouts = Obs.Metrics.counter m (n "timeouts");
          c_faults = Obs.Metrics.counter m (n "faults");
          c_replays = Obs.Metrics.counter m (n "replays");
          c_evictions = Obs.Metrics.counter m (n "evictions");
        }
      in
      t.live <- Some c;
      c

(* All helpers below run only on the faulty path. *)

exception Fail_attempt of failure

let fail (f : failure) = raise (Fail_attempt f)

let advance t dt =
  if dt > 0. then begin
    Clock.advance dt;
    t.op_elapsed <- t.op_elapsed +. dt
  end

(* One delivered leg costs half an RTT plus serialization time. *)
let wire_time t bytes =
  advance t ((t.net.Netsim.rtt_s /. 2.) +. (float_of_int bytes /. t.net.Netsim.bandwidth_bytes_per_s))

let meter_up t s =
  ignore (Channel.send t.chan Channel.Client_to_log s);
  wire_time t (String.length s)

let meter_down t s =
  ignore (Channel.send t.chan Channel.Log_to_client s);
  wire_time t (String.length s)

let bump_replays t =
  t.st.s_replays <- t.st.s_replays + 1;
  if Obs.Runtime.tracing_enabled () then Obs.Metrics.inc (live_counters t).c_replays

let bump_fault t ~op reason =
  t.st.s_faults <- t.st.s_faults + 1;
  if Obs.Runtime.tracing_enabled () then Obs.Metrics.inc (live_counters t).c_faults;
  Obs.Events.emit ~severity:Warn Obs.Events.Transport_fault
    (Printf.sprintf "%s op=%s %s" t.label op reason)

(* Uniform [0,1) draw for overload-retry jitter: the injector's DRBG when
   one is installed, the transport's own otherwise. *)
let overload_jitter t =
  match t.injector with
  | Some i -> Fault.jitter i
  | None ->
      let b = Larch_hash.Drbg.generate (Lazy.force t.jitter_drbg) 6 in
      let v = ref 0 in
      String.iter (fun c -> v := (!v lsl 8) lor Char.code c) b;
      float_of_int !v /. 281474976710656. (* 2^48 *)

let bump_overload t ~op =
  t.st.s_overloads <- t.st.s_overloads + 1;
  if Obs.Runtime.tracing_enabled () then
    Obs.Metrics.inc
      (Obs.Metrics.counter Obs.Metrics.default ("transport." ^ t.label ^ ".overloads"));
  Obs.Events.emit ~severity:Warn Obs.Events.Transport_fault
    (Printf.sprintf "%s op=%s shed by admission control" t.label op)

let bump_budget_denied t ~op =
  t.st.s_budget_denied <- t.st.s_budget_denied + 1;
  if Obs.Runtime.tracing_enabled () then
    Obs.Metrics.inc (Obs.Metrics.counter Obs.Metrics.default "transport.retry_budget_exhausted");
  Obs.Events.emit ~severity:Error Obs.Events.Transport_fault
    (Printf.sprintf "%s op=%s retry budget exhausted" t.label op)

let do_restart t =
  Hashtbl.reset t.cache;
  Queue.clear t.cache_order;
  t.last_req <- None;
  t.last_resp <- None;
  t.st.s_faults <- t.st.s_faults + 1;
  if Obs.Runtime.tracing_enabled () then Obs.Metrics.inc (live_counters t).c_faults;
  Obs.Events.emit ~severity:Warn Obs.Events.Transport_fault
    (Printf.sprintf "%s peer restarted (volatile state lost)" t.label);
  Obs.Flight.incident ~detail:t.label Obs.Flight.default "transport.restart";
  List.iter (fun f -> f ()) t.restart_hooks

let restart = do_restart

let cache_key op bytes = Larch_hash.Sha256.digest (op ^ "\x00" ^ bytes)

let cache_touch t key (e : cache_entry) =
  t.cache_seq <- t.cache_seq + 1;
  e.seq <- t.cache_seq;
  Queue.add (key, e.seq) t.cache_order

(* Size-capped insert: evict least-recently-touched entries until there is
   room, skipping queue entries that a later touch made stale. *)
let cache_insert t key resp =
  while Hashtbl.length t.cache >= t.cache_cap do
    match Queue.take_opt t.cache_order with
    | None -> Hashtbl.reset t.cache (* unreachable: every entry is enqueued *)
    | Some (k, seq) -> (
        match Hashtbl.find_opt t.cache k with
        | Some e when e.seq = seq ->
            Hashtbl.remove t.cache k;
            t.st.s_evictions <- t.st.s_evictions + 1;
            if Obs.Runtime.tracing_enabled () then Obs.Metrics.inc (live_counters t).c_evictions
        | _ -> () (* stale order entry: the key was touched again or evicted *))
  done;
  let e = { resp; seq = 0 } in
  Hashtbl.replace t.cache key e;
  cache_touch t key e

let cache_size t = Hashtbl.length t.cache
let cache_mem t ~op ~req = Hashtbl.mem t.cache (cache_key op req)

(* Log-side receipt of request bytes: answer retransmissions from the
   replay cache, execute the handler exactly once per distinct request. *)
let exec t ~op bytes handler : string =
  t.last_req <- Some (op, bytes);
  let key = cache_key op bytes in
  match Hashtbl.find_opt t.cache key with
  | Some e ->
      bump_replays t;
      cache_touch t key e;
      e.resp
  | None ->
      let resp = via_exec t ~op ~req:bytes (fun () -> handler bytes) in
      cache_insert t key resp;
      resp

let unavailable_leg t =
  advance t t.policy.attempt_timeout;
  fail Unavailable

(* Request leg: returns the handler's response bytes, or fails the
   attempt.  [Reject] from the handler propagates (the retry loop maps it
   to [Garbled]). *)
let request_leg t inj ~op ~req handler : string =
  let pol = t.policy in
  let o = Fault.next inj in
  if o.Fault.restarted then do_restart t;
  if o.Fault.down then unavailable_leg t;
  match o.Fault.action with
  | Fault.Deliver ->
      meter_up t req;
      exec t ~op req handler
  | Fault.Drop ->
      meter_up t req;
      bump_fault t ~op "request dropped";
      advance t pol.attempt_timeout;
      fail Timeout
  | Fault.Delay dt when dt >= pol.attempt_timeout ->
      (* the log still receives — and answers into its cache — after the
         client has given up; the retry is then a pure replay *)
      meter_up t req;
      bump_fault t ~op "request over-delayed";
      (try ignore (exec t ~op req handler) with Reject _ -> ());
      advance t pol.attempt_timeout;
      fail Timeout
  | Fault.Delay dt ->
      meter_up t req;
      advance t dt;
      exec t ~op req handler
  | Fault.Duplicate ->
      meter_up t req;
      meter_up t req;
      bump_fault t ~op "request duplicated";
      let resp = exec t ~op req handler in
      ignore (exec t ~op req handler);
      (* the duplicate: replay-cached *)
      resp
  | Fault.Reorder ->
      bump_fault t ~op "stale request re-delivered";
      (match t.last_req with
      | Some (lop, lbytes) ->
          meter_up t lbytes;
          (* the log answers the stale copy from its cache; the client
             discards that stale answer by attempt-tag *)
          if Hashtbl.mem t.cache (cache_key lop lbytes) then bump_replays t
      | None -> ());
      meter_up t req;
      exec t ~op req handler
  | Fault.Corrupt c ->
      let damaged = Fault.corrupt_payload inj c req in
      meter_up t damaged;
      bump_fault t ~op "request corrupted";
      exec t ~op damaged handler

(* Response leg: returns the bytes the client actually received. *)
let response_leg t inj ~op ~meter_resp resp : string =
  let pol = t.policy in
  let meter s = if meter_resp then meter_down t s in
  let o = Fault.next inj in
  if o.Fault.restarted then begin
    (* the log died after executing and came back — the response is gone *)
    do_restart t;
    advance t pol.attempt_timeout;
    fail Timeout
  end;
  if o.Fault.down then unavailable_leg t;
  let delivered =
    match o.Fault.action with
    | Fault.Deliver ->
        meter resp;
        resp
    | Fault.Drop ->
        meter resp;
        bump_fault t ~op "response dropped";
        advance t pol.attempt_timeout;
        fail Timeout
    | Fault.Delay dt when dt >= pol.attempt_timeout ->
        meter resp;
        bump_fault t ~op "response over-delayed";
        advance t pol.attempt_timeout;
        fail Timeout
    | Fault.Delay dt ->
        meter resp;
        advance t dt;
        resp
    | Fault.Duplicate ->
        meter resp;
        meter resp;
        bump_fault t ~op "response duplicated";
        resp
    | Fault.Reorder ->
        bump_fault t ~op "stale response re-delivered";
        (match t.last_resp with Some s -> meter s | None -> ());
        meter resp;
        resp
    | Fault.Corrupt c ->
        let damaged = Fault.corrupt_payload inj c resp in
        meter damaged;
        bump_fault t ~op "response corrupted";
        damaged
  in
  t.last_resp <- Some delivered;
  delivered

let fail_now t ~op ~attempts (last : failure) =
  raise (Error { op; attempts; elapsed = t.op_elapsed; last })

(* Retry loop for the faulty path: typed failures, exponential backoff +
   DRBG jitter on the simulated clock, obs events per retry/timeout.
   Admission sheds ([Overloaded]) honor the log's retry_after hint
   instead of the exponential schedule, and every retry — whatever the
   failure — spends one token of the retry budget when one is set. *)
let run_op t ~op (attempt : unit -> 'a) : 'a =
  let pol = t.policy in
  t.op_elapsed <- 0.;
  let rec go k =
    t.st.s_attempts <- t.st.s_attempts + 1;
    match attempt () with
    | v -> v
    | exception Fail_attempt f -> handle f k
    | exception Reject m -> handle (Garbled m) k
    | exception Overload ra -> handle (Overloaded ra) k
  and handle f k =
    (match f with
    | Timeout | Unavailable ->
        t.st.s_timeouts <- t.st.s_timeouts + 1;
        if Obs.Runtime.tracing_enabled () then Obs.Metrics.inc (live_counters t).c_timeouts;
        Obs.Events.emit ~severity:Warn Obs.Events.Transport_timeout
          (Printf.sprintf "%s op=%s attempt=%d %s" t.label op k (failure_to_string f))
    | Overloaded _ -> bump_overload t ~op
    | Garbled _ -> ());
    if k >= pol.max_attempts then begin
      Obs.Events.emit ~severity:Error Obs.Events.Transport_fault
        (Printf.sprintf "%s op=%s giving up after %d attempts: %s" t.label op k (failure_to_string f));
      fail_now t ~op ~attempts:k f
    end
    else if not (take_retry_token t) then begin
      bump_budget_denied t ~op;
      fail_now t ~op ~attempts:k f
    end
    else begin
      t.st.s_retries <- t.st.s_retries + 1;
      if Obs.Runtime.tracing_enabled () then Obs.Metrics.inc (live_counters t).c_retries;
      let backoff =
        match f with
        | Overloaded ra ->
            (* honor the server's hint, jittered over its full magnitude
               so synchronized shed victims spread back out *)
            ra *. (1. +. overload_jitter t)
        | _ ->
            let base =
              min pol.max_backoff
                (pol.base_backoff *. (pol.backoff_factor ** float_of_int (k - 1)))
            in
            let j = match t.injector with Some i -> Fault.jitter i | None -> 0. in
            base *. (1. +. (pol.jitter *. j))
      in
      advance t backoff;
      Obs.Events.emit ~severity:Warn Obs.Events.Transport_retry
        (Printf.sprintf "%s op=%s attempt=%d/%d after %s" t.label op (k + 1) pol.max_attempts
           (failure_to_string f));
      go (k + 1)
    end
  in
  go 1

(* Overload-aware wrapper for the clean (injector-free) path.  The only
   retryable failure without an injector is an admission shed: honor its
   retry_after hint (jittered over its full magnitude), spend the retry
   budget, and surface a typed [Overloaded] error once attempts or budget
   run out.  An attempt that never touches an admission queue takes the
   historical zero-overhead path through [attempt] unchanged. *)
let run_clean t ~op (attempt : unit -> 'a) : 'a =
  let pol = t.policy in
  t.op_elapsed <- 0.;
  let rec go k =
    match attempt () with
    | v -> v
    | exception Overload ra ->
        bump_overload t ~op;
        if k >= pol.max_attempts then begin
          Obs.Events.emit ~severity:Error Obs.Events.Transport_fault
            (Printf.sprintf "%s op=%s giving up after %d attempts: %s" t.label op k
               (failure_to_string (Overloaded ra)));
          fail_now t ~op ~attempts:k (Overloaded ra)
        end
        else if not (take_retry_token t) then begin
          bump_budget_denied t ~op;
          fail_now t ~op ~attempts:k (Overloaded ra)
        end
        else begin
          t.st.s_retries <- t.st.s_retries + 1;
          if Obs.Runtime.tracing_enabled () then Obs.Metrics.inc (live_counters t).c_retries;
          advance t (ra *. (1. +. overload_jitter t));
          Obs.Events.emit ~severity:Warn Obs.Events.Transport_retry
            (Printf.sprintf "%s op=%s attempt=%d/%d after %s" t.label op (k + 1)
               pol.max_attempts
               (failure_to_string (Overloaded ra)));
          go (k + 1)
        end
  in
  go 1

let call t ~op ~req ~decode ?(meter_resp = true) handler =
  if t.admin then raise (Error { op; attempts = 1; elapsed = 0.; last = Unavailable });
  match t.injector with
  | None ->
      (* passthrough: byte-for-byte the drivers' historical metering.
         Under a fiber runtime each leg also charges its wire time, so
         clean concurrent sessions genuinely interleave over the link
         (outside a runtime, or with Netsim.zero, nothing changes). *)
      run_clean t ~op (fun () ->
          ignore (Channel.send t.chan Channel.Client_to_log req);
          if Runtime.in_fiber () then wire_time t (String.length req);
          let resp =
            try via_exec t ~op ~req (fun () -> handler req)
            with Reject m -> raise (Error { op; attempts = 1; elapsed = 0.; last = Garbled m })
          in
          if meter_resp then begin
            ignore (Channel.send t.chan Channel.Log_to_client resp);
            if Runtime.in_fiber () then wire_time t (String.length resp)
          end;
          match decode resp with
          | Some v -> v
          | None ->
              raise (Error { op; attempts = 1; elapsed = 0.; last = Garbled "undecodable response" }))
  | Some inj ->
      run_op t ~op (fun () ->
          let resp = request_leg t inj ~op ~req handler in
          let delivered = response_leg t inj ~op ~meter_resp resp in
          match decode delivered with
          | Some v -> v
          | None -> fail (Garbled "undecodable response"))

let post t ~op ~req handler =
  if t.admin then raise (Error { op; attempts = 1; elapsed = 0.; last = Unavailable });
  match t.injector with
  | None ->
      run_clean t ~op (fun () ->
          ignore (Channel.send t.chan Channel.Client_to_log req);
          if Runtime.in_fiber () then wire_time t (String.length req);
          (try via_exec t ~op ~req (fun () -> handler req)
           with Reject m -> raise (Error { op; attempts = 1; elapsed = 0.; last = Garbled m }));
          if Runtime.in_fiber () then wire_time t 0 (* unserialized ack leg *))
  | Some inj ->
      run_op t ~op (fun () ->
          let handler' bytes =
            handler bytes;
            ""
          in
          ignore (request_leg t inj ~op ~req handler');
          (* the ack leg is subject to faults but never metered *)
          let pol = t.policy in
          let o = Fault.next inj in
          if o.Fault.restarted then begin
            do_restart t;
            advance t pol.attempt_timeout;
            fail Timeout
          end;
          if o.Fault.down then unavailable_leg t;
          match o.Fault.action with
          | Fault.Drop ->
              bump_fault t ~op "ack dropped";
              advance t pol.attempt_timeout;
              fail Timeout
          | Fault.Delay dt when dt >= pol.attempt_timeout ->
              bump_fault t ~op "ack over-delayed";
              advance t pol.attempt_timeout;
              fail Timeout
          | Fault.Delay dt -> advance t dt
          | _ -> wire_time t 0)

let invoke t ~op (thunk : unit -> 'a) : 'a =
  if t.admin then raise (Error { op; attempts = 1; elapsed = 0.; last = Unavailable });
  match t.injector with
  | None ->
      if Runtime.in_fiber () then
        run_clean t ~op (fun () ->
            wire_time t 0;
            let v = via_exec t ~op thunk in
            wire_time t 0;
            v)
      else thunk ()
  | Some inj ->
      run_op t ~op (fun () ->
          let pol = t.policy in
          (* request leg *)
          let o = Fault.next inj in
          if o.Fault.restarted then do_restart t;
          if o.Fault.down then unavailable_leg t;
          (* no serialized payload on this path, but the exchange still
             crosses the link: charge propagation delay per leg *)
          wire_time t 0;
          let run () =
            via_exec t ~op (fun () ->
                try thunk () with Reject m -> fail (Garbled m))
          in
          let v =
            match o.Fault.action with
            | Fault.Drop ->
                bump_fault t ~op "request dropped";
                advance t pol.attempt_timeout;
                fail Timeout
            | Fault.Delay dt when dt >= pol.attempt_timeout ->
                bump_fault t ~op "request over-delayed";
                advance t pol.attempt_timeout;
                fail Timeout
            | Fault.Delay dt ->
                advance t dt;
                run ()
            | Fault.Duplicate ->
                bump_fault t ~op "request duplicated";
                let v = run () in
                ignore (run ());
                (* the duplicate: callee-level dedup must absorb it *)
                v
            | Fault.Deliver | Fault.Reorder | Fault.Corrupt _ ->
                (* nothing serialized to reorder or damage on this path *)
                run ()
          in
          (* response leg *)
          let o2 = Fault.next inj in
          if o2.Fault.restarted then begin
            do_restart t;
            advance t pol.attempt_timeout;
            fail Timeout
          end;
          if o2.Fault.down then unavailable_leg t;
          wire_time t 0;
          (match o2.Fault.action with
          | Fault.Drop ->
              bump_fault t ~op "response dropped";
              advance t pol.attempt_timeout;
              fail Timeout
          | Fault.Delay dt when dt >= pol.attempt_timeout ->
              bump_fault t ~op "response over-delayed";
              advance t pol.attempt_timeout;
              fail Timeout
          | Fault.Delay dt -> advance t dt
          | _ -> ());
          v)
