(* Deterministic fault injector for the client↔log transport.

   Two modes share one [next] entry point:

   - Scripted: an explicit (message_index, action) schedule plus optional
     (message_index, Crash|Restart) events.  Every leg not named in the
     schedule delivers cleanly; nothing is random, so test schedules are
     exact down to the leg.

   - Seeded: every decision is drawn from an HMAC-DRBG keyed on the seed
     (uniform floats from 48 DRBG bits).  The draw sequence is a pure
     function of the seed and the call sequence, so a whole failure run —
     actions, delay magnitudes, corruption positions, backoff jitter —
     replays byte-for-byte from the seed.  Crashes last [crash_span]
     message legs, then the peer restarts (volatile state lost).

   The injector itself never touches the clock or any channel; the
   transport interprets the returned actions. *)

type corruption = Truncate | Flip_bit | Flip_length

type action =
  | Deliver
  | Drop
  | Delay of float
  | Duplicate
  | Reorder
  | Corrupt of corruption

type event = Crash | Restart

type profile = {
  p_drop : float;
  p_delay : float;
  max_delay : float;
  p_duplicate : float;
  p_reorder : float;
  p_corrupt : float;
  p_crash : float;
  crash_span : int;
}

let calm =
  {
    p_drop = 0.;
    p_delay = 0.;
    max_delay = 0.;
    p_duplicate = 0.;
    p_reorder = 0.;
    p_corrupt = 0.;
    p_crash = 0.;
    crash_span = 0;
  }

let stormy =
  {
    p_drop = 0.04;
    p_delay = 0.10;
    max_delay = 0.2;
    p_duplicate = 0.05;
    p_reorder = 0.04;
    p_corrupt = 0.03;
    p_crash = 0.01;
    crash_span = 4;
  }

type mode =
  | Scripted of { sched : (int * action) list; events : (int * event) list }
  | Seeded of { drbg : Larch_hash.Drbg.t; profile : profile }

type t = {
  mode : mode;
  mutable counter : int;  (* message legs judged so far *)
  mutable down : bool;
  mutable down_remaining : int;  (* seeded mode: legs left before auto-restart *)
}

let scripted ?(events = []) sched = { mode = Scripted { sched; events }; counter = 0; down = false; down_remaining = 0 }

let seeded ~seed profile =
  {
    mode = Seeded { drbg = Larch_hash.Drbg.create ~entropy:seed; profile };
    counter = 0;
    down = false;
    down_remaining = 0;
  }

(* Uniform float in [0,1) from 48 DRBG bits. *)
let u01 (t : t) : float =
  match t.mode with
  | Scripted _ -> 0.
  | Seeded { drbg; _ } ->
      let b = Larch_hash.Drbg.generate drbg 6 in
      let v = ref 0 in
      String.iter (fun c -> v := (!v lsl 8) lor Char.code c) b;
      float_of_int !v /. 281474976710656. (* 2^48 *)

type outcome = { restarted : bool; down : bool; action : action }

let draw_action (t : t) (p : profile) : action =
  if p.p_drop > 0. && u01 t < p.p_drop then Drop
  else if p.p_delay > 0. && u01 t < p.p_delay then Delay (p.max_delay *. u01 t)
  else if p.p_duplicate > 0. && u01 t < p.p_duplicate then Duplicate
  else if p.p_reorder > 0. && u01 t < p.p_reorder then Reorder
  else if p.p_corrupt > 0. && u01 t < p.p_corrupt then
    Corrupt
      (match int_of_float (u01 t *. 3.) with
      | 0 -> Truncate
      | 1 -> Flip_bit
      | _ -> Flip_length)
  else Deliver

let next (t : t) : outcome =
  let i = t.counter in
  t.counter <- i + 1;
  let restarted = ref false in
  (match t.mode with
  | Scripted { events; _ } ->
      List.iter
        (fun (j, (e : event)) ->
          if j = i then
            match e with
            | Crash -> t.down <- true
            | Restart ->
                if t.down then begin
                  t.down <- false;
                  restarted := true
                end)
        events
  | Seeded { profile; _ } ->
      if t.down then begin
        t.down_remaining <- t.down_remaining - 1;
        if t.down_remaining <= 0 then begin
          t.down <- false;
          restarted := true
        end
      end
      else if profile.p_crash > 0. && u01 t < profile.p_crash then begin
        t.down <- true;
        t.down_remaining <- max 1 profile.crash_span
      end);
  if t.down then { restarted = false; down = true; action = Deliver }
  else
    let action =
      match t.mode with
      | Scripted { sched; _ } -> ( match List.assoc_opt i sched with Some a -> a | None -> Deliver)
      | Seeded { profile; _ } -> draw_action t profile
    in
    { restarted = !restarted; down = false; action }

let peer_down (t : t) = t.down
let jitter (t : t) = u01 t
let msg_index (t : t) = t.counter

(* Corruption position: DRBG-drawn when seeded, counter-derived when
   scripted — deterministic either way. *)
let pick_pos (t : t) (n : int) : int =
  if n <= 1 then 0
  else
    match t.mode with
    | Scripted _ -> t.counter mod n
    | Seeded _ -> int_of_float (u01 t *. float_of_int n) mod n

let corrupt_payload (t : t) (c : corruption) (payload : string) : string =
  if String.length payload = 0 then "\001"
  else
    match c with
    | Truncate -> String.sub payload 0 (max 1 (String.length payload / 2))
    | Flip_bit ->
        let b = Bytes.of_string payload in
        let pos = pick_pos t (Bytes.length b) in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
        Bytes.to_string b
    | Flip_length ->
        let b = Bytes.of_string payload in
        let pos = pick_pos t (min 4 (Bytes.length b)) in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
        Bytes.to_string b
