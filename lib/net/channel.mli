(** Byte- and round-metered message channel between the two in-process
    parties.  All reported communication numbers (Table 6, Figure 5) come
    from payloads pushed through {!send}. *)

type direction = Client_to_log | Log_to_client

type t

val create : ?label:string -> unit -> t
(** [label] names the channel in automatically exported metrics
    (counters [net.<label>.bytes_up] / [.bytes_down] / [.messages] /
    [.rounds] in [Larch_obs.Metrics.default], live while tracing is
    enabled).  Defaults to ["chan"]. *)

val send : t -> direction -> string -> string
(** Meter a payload; returns it unchanged.  A request/response direction
    flip counts toward round trips. *)

val total_bytes : t -> int

val round_trips : t -> int
(** ceil(direction flips / 2): a request+response pair costs one RTT, so a
    request→response→request sequence is exactly 2 round trips. *)

val network_time : t -> Netsim.t -> float
(** Modeled network time for everything sent so far. *)

val reset : t -> unit
(** Clear all accounting state, including the last-direction memory: a
    {!snapshot} taken immediately after [reset] is all zeros and the next
    message opens a fresh round, as on a newly created channel.  Metrics
    already exported to a registry are monotonic and are not unwound. *)

type snapshot = { up : int; down : int; msgs : int; rts : int }

val snapshot : t -> snapshot

val observe : t -> Larch_obs.Metrics.t -> unit
(** Export the channel's current totals into the given registry as
    monotonic counters ([net.<label>.bytes_up] / [.bytes_down] /
    [.messages] / [.round_trips]); bypasses the runtime toggle — calling
    [observe] is itself the opt-in.  Call once per measurement interval
    (typically after a protocol run, before {!reset}). *)
