(* Byte- and round-metered message channel between two in-process parties.

   A "round" is a direction flip: the paper's RTT cost is paid once per
   request/response exchange, so we count a round each time a message
   reverses the direction of the previous one (the first message also
   counts as opening a round).  [round_trips] = ceil(flips / 2): a
   request+response pair costs one RTT, so request→response→request is
   exactly 2 round trips (the trailing request opens the second RTT).

   [reset] clears *all* accounting state — byte/message/round counters AND
   the last-direction memory — so a snapshot taken immediately after a
   reset is all zeros and the next message opens a fresh round, exactly as
   on a newly created channel.  (Metrics already exported to a registry are
   monotonic and are deliberately NOT unwound by [reset].)

   Observability: when tracing is enabled, every send flows into
   [Larch_obs.Metrics.default] counters named net.<label>.bytes_up /
   .bytes_down / .messages / .rounds; [observe] additionally exports a
   point-in-time snapshot (including derived round trips) into any
   registry. *)

module Obs = Larch_obs

type direction = Client_to_log | Log_to_client

type counters = {
  c_up : Obs.Metrics.counter;
  c_down : Obs.Metrics.counter;
  c_msgs : Obs.Metrics.counter;
  c_rounds : Obs.Metrics.counter;
}

type t = {
  label : string;
  mutable bytes_client_to_log : int;
  mutable bytes_log_to_client : int;
  mutable messages : int;
  mutable rounds : int;
  mutable last_direction : direction option;
  mutable live : counters option; (* lazily bound Metrics.default counters *)
}

let create ?(label = "chan") () =
  {
    label;
    bytes_client_to_log = 0;
    bytes_log_to_client = 0;
    messages = 0;
    rounds = 0;
    last_direction = None;
    live = None;
  }

let live_counters (t : t) : counters =
  match t.live with
  | Some c -> c
  | None ->
      let m = Obs.Metrics.default in
      let c =
        {
          c_up = Obs.Metrics.counter m ("net." ^ t.label ^ ".bytes_up");
          c_down = Obs.Metrics.counter m ("net." ^ t.label ^ ".bytes_down");
          c_msgs = Obs.Metrics.counter m ("net." ^ t.label ^ ".messages");
          c_rounds = Obs.Metrics.counter m ("net." ^ t.label ^ ".rounds");
        }
      in
      t.live <- Some c;
      c

let send (t : t) (dir : direction) (payload : string) : string =
  let n = String.length payload in
  (match dir with
  | Client_to_log -> t.bytes_client_to_log <- t.bytes_client_to_log + n
  | Log_to_client -> t.bytes_log_to_client <- t.bytes_log_to_client + n);
  t.messages <- t.messages + 1;
  let new_round =
    match t.last_direction with
    | Some d when d = dir -> false (* same direction: pipelined, no extra round *)
    | Some _ -> true
    | None -> true
  in
  if new_round then t.rounds <- t.rounds + 1;
  t.last_direction <- Some dir;
  if Obs.Runtime.tracing_enabled () then begin
    let c = live_counters t in
    Obs.Metrics.add (match dir with Client_to_log -> c.c_up | Log_to_client -> c.c_down) n;
    Obs.Metrics.inc c.c_msgs;
    if new_round then Obs.Metrics.inc c.c_rounds
  end;
  payload

let total_bytes (t : t) = t.bytes_client_to_log + t.bytes_log_to_client

(* round trips = ceil(direction flips / 2): a request+response pair costs
   one RTT. *)
let round_trips (t : t) = (t.rounds + 1) / 2

let network_time (t : t) (net : Netsim.t) : float =
  Netsim.transfer_time net ~bytes:(total_bytes t) ~rounds:(round_trips t)

let reset (t : t) =
  t.bytes_client_to_log <- 0;
  t.bytes_log_to_client <- 0;
  t.messages <- 0;
  t.rounds <- 0;
  t.last_direction <- None

type snapshot = { up : int; down : int; msgs : int; rts : int }

let snapshot (t : t) : snapshot =
  { up = t.bytes_client_to_log; down = t.bytes_log_to_client; msgs = t.messages; rts = round_trips t }

(* Export the channel's current totals into [m] as monotonic counters
   (net.<label>.bytes_up/.bytes_down/.messages/.round_trips).  Bypasses the
   runtime toggle: calling [observe] is itself the opt-in.  Call once per
   measurement interval (typically after a protocol run, before [reset]);
   repeated calls without an intervening reset double-count. *)
let observe (t : t) (m : Obs.Metrics.t) : unit =
  let add name v = Obs.Metrics.force_add (Obs.Metrics.counter m ("net." ^ t.label ^ "." ^ name)) v in
  add "bytes_up" t.bytes_client_to_log;
  add "bytes_down" t.bytes_log_to_client;
  add "messages" t.messages;
  add "round_trips" (round_trips t)
