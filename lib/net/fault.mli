(** Deterministic fault injector for the client↔log transport.

    An injector decides, per transmitted message leg, whether the leg is
    delivered cleanly or suffers a fault (drop, added latency, duplication,
    reordering, corruption), and whether the log peer crashes or restarts.
    Two construction modes:

    - {!scripted}: an explicit [(message_index, action)] schedule plus
      optional [(message_index, Crash|Restart)] events — exact, minimal,
      and ideal for the per-protocol schedule matrix in [test/test_fault.ml].
    - {!seeded}: every decision is drawn from an HMAC-DRBG keyed on the
      seed, so a whole failure run is byte-for-byte reproducible from
      [seed] alone.

    The injector never performs I/O and never reads real time; it is pure
    state + (optionally) a DRBG stream, which is what makes replays exact. *)

type corruption =
  | Truncate  (** keep only the first half of the payload *)
  | Flip_bit  (** flip one bit in the payload body *)
  | Flip_length  (** flip a low bit inside the leading 4 bytes (a length prefix, when present) *)

type action =
  | Deliver
  | Drop
  | Delay of float  (** seconds of added one-way latency *)
  | Duplicate
  | Reorder  (** the previous message on this link arrives again, late *)
  | Corrupt of corruption

type event = Crash | Restart

type profile = {
  p_drop : float;
  p_delay : float;
  max_delay : float;  (** delays are uniform in [0, max_delay) *)
  p_duplicate : float;
  p_reorder : float;
  p_corrupt : float;
  p_crash : float;
  crash_span : int;  (** message legs the log stays down before auto-restarting *)
}

val calm : profile
(** All probabilities zero — a seeded injector that never misbehaves. *)

val stormy : profile
(** A lively default for demos and soak tests: a few percent of every
    fault class, short crashes. *)

type t

val scripted : ?events:(int * event) list -> (int * action) list -> t
(** [scripted sched] faults exactly the message legs named in [sched]
    (0-based, counted per injector); all other legs deliver cleanly.
    [events] crash/restart the peer when the counter reaches the given
    index.  Duplicate indices are allowed in [events] (processed in list
    order); [sched] lookups take the first match. *)

val seeded : seed:string -> profile -> t
(** Every decision drawn from HMAC-DRBG(seed).  Same seed + same call
    sequence ⇒ identical action sequence. *)

type outcome = {
  restarted : bool;  (** the peer came back up at this leg (volatile state was lost) *)
  down : bool;  (** the peer is crashed for this leg — nothing is delivered *)
  action : action;  (** [Deliver] whenever [down] *)
}

val next : t -> outcome
(** Advance the per-injector message counter and decide the fate of the
    next message leg. *)

val peer_down : t -> bool
(** Whether the peer is currently crashed (without consuming a leg). *)

val jitter : t -> float
(** A backoff-jitter draw in [0,1): from the DRBG when seeded, [0.] when
    scripted (so scripted schedules stay exact). *)

val corrupt_payload : t -> corruption -> string -> string
(** Apply a corruption.  Positions come from the DRBG when seeded and from
    the message counter when scripted.  The empty payload corrupts to
    ["\001"] so corruption is never a silent no-op. *)

val msg_index : t -> int
(** Message legs consumed so far (= index the next {!next} will judge). *)
