(** Faultable client↔log transport with a typed retry policy.

    Every client↔log exchange in [lib/core] routes through one of three
    shapes:

    - {!call}: request bytes → response bytes through a handler, the
      common case (wire-codable exchanges);
    - {!post}: one-way request bytes (registration-style fire-and-ack);
    - {!invoke}: an opaque typed thunk, for exchanges whose payloads are
      not separately serialized (enrollment key-setup, the TOTP garbled
      circuit umbrella, audit).

    With no injector installed ({!set_injector} [None], the default) and
    the peer administratively up, every operation is a pure passthrough:
    exactly one {!Channel.send} per metered leg, no clock reads, no
    caching, no stats — byte-for-byte the metering the protocol drivers
    performed before this layer existed, at ~zero overhead.

    With an injector installed, each attempt's request and response legs
    draw a {!Fault.action}; drops and excess delays become {!Timeout}s,
    crashes become {!Unavailable}, corruption surfaces as {!Garbled}, and
    the policy retries with exponential backoff (+ DRBG jitter) on the
    simulated {!Larch_util.Clock}.  A retried request is re-sent
    byte-identical, and an idempotent replay cache on the log side answers
    duplicates without re-executing the handler — so a retry never consumes
    an extra presignature and never double-appends a record.  A peer
    restart clears that cache and fires {!on_restart} hooks (the log drops
    its volatile in-flight state).

    Failures are typed end-to-end: after [max_attempts], {!call} raises
    {!Error} carrying the operation label, attempt count, elapsed simulated
    time, and last failure.  Handler-level request rejections raise
    {!Reject} (retryable — the request was damaged in flight); every other
    handler exception (e.g. [Protocol_error]) propagates immediately,
    unretried, because it is an application outcome, not a transport one. *)

type policy = {
  max_attempts : int;  (** total tries, first included; ≥ 1 *)
  attempt_timeout : float;  (** seconds the client waits for one exchange *)
  base_backoff : float;  (** backoff before the 2nd attempt, seconds *)
  backoff_factor : float;  (** exponential growth per further attempt *)
  max_backoff : float;  (** backoff ceiling, seconds *)
  jitter : float;  (** fraction of backoff added as DRBG jitter, e.g. 0.2 *)
}

val default_policy : policy
(** 4 attempts, 1 s per-attempt timeout, 50 ms base backoff ×2 capped at
    2 s, 20% jitter. *)

type failure =
  | Timeout  (** a leg was dropped or arrived after [attempt_timeout] *)
  | Unavailable  (** the peer is crashed or administratively offline *)
  | Garbled of string  (** the payload was corrupted in flight (either direction) *)
  | Overloaded of float
      (** the log's admission control shed the request before serving it;
          the payload is the server's retry_after hint in seconds *)

type error = {
  op : string;  (** operation label, e.g. ["fido2.auth_begin"] *)
  attempts : int;
  elapsed : float;  (** simulated seconds spent, including backoff *)
  last : failure;
}

exception Error of error
(** Raised once the retry budget is exhausted. *)

exception Reject of string
(** Raised by handlers that cannot decode their request bytes; the
    transport treats it as in-flight damage ({!Garbled}) and retries. *)

exception Overload of float
(** Raised by an admission executor ({!set_executor}) that sheds a request
    instead of running it; the payload is the retry_after hint.  The
    transport maps it to an {!Overloaded} failure: it retries after the
    hinted (jittered) delay while attempts and the retry budget last, then
    surfaces [Error { last = Overloaded _; _ }]. *)

val failure_to_string : failure -> string
val error_to_string : error -> string

type stats = {
  attempts : int;
  retries : int;
  timeouts : int;
  faults : int;
  replays : int;
  evictions : int;  (** replay-cache entries dropped by the LRU size cap *)
  overloads : int;  (** attempts shed by the log's admission control *)
  budget_denied : int;  (** retries refused because the retry budget ran dry *)
}

type t

val default_cache_cap : int
(** Default replay-cache capacity (256 entries). *)

val reset_ordinals : unit -> unit
(** Reset the process-wide transport creation counter that seeds each
    transport's overload-jitter DRBG.  Deterministic scenario runners
    call this at world start (next to [Clock.set]) so a re-run from the
    same seed creates transports with the same DRBG streams. *)

val create :
  ?label:string -> ?policy:policy -> ?net:Netsim.t -> ?cache_cap:int -> Channel.t -> t
(** Wrap [chan].  [label] names the transport in metrics/events (default
    the channel's purpose, ["log"]); [net] models per-leg wire time on the
    simulated clock under faults (default {!Netsim.zero} — no time cost).
    [cache_cap] bounds the replay cache (LRU eviction); it must comfortably
    exceed the number of distinct in-flight requests within a retry window,
    and the default does. *)

val channel : t -> Channel.t
val set_injector : t -> Fault.t option -> unit
val injector : t -> Fault.t option

val faulty : t -> bool
(** An injector is installed — the transport is on its fault-handling
    path. *)

val set_admin_down : t -> bool -> unit
(** Administratively mark the peer offline (multilog's availability knob);
    every operation fails {!Unavailable} without touching the wire. *)

val admin_down : t -> bool

val on_restart : t -> (unit -> unit) -> unit
(** Run [f] whenever the injector reports a peer restart (and once per
    {!restart}).  The log service registers its volatile-state reset
    here. *)

val restart : t -> unit
(** Explicitly restart the peer: clear the replay cache and fire
    {!on_restart} hooks.  (Injector-driven restarts do this
    automatically.) *)

val set_executor :
  t ->
  (op:string -> req:string option -> deadline:float -> (unit -> unit) -> unit) option ->
  unit
(** Install a log-side admission executor.  When the caller runs inside
    a {!Larch_runtime.Runtime} fiber, every log-side handler/thunk
    execution is wrapped in a closure and handed to the executor instead
    of being called directly; the executor must run the closure (e.g.
    from the log's admission-loop fiber, batched with other clients'
    same-instant arrivals) before returning — or shed the request by
    raising {!Overload}.  [deadline] is the simulated time by which the
    caller gives up ([now + attempt_timeout]); an executor that cannot
    serve the request before its deadline should shed it early rather
    than burn the caller's timeout.  Outside a runtime, or with no
    executor installed, execution is a direct call — byte-for-byte the
    historical behavior. *)

val set_retry_budget : t -> capacity:float -> refill_per_s:float -> unit
(** Arm the client-wide retry budget: a leaky bucket of [capacity] tokens
    refilled at [refill_per_s] on the simulated clock.  Every retry (any
    failure kind, clean or faulty path) spends one token; when the bucket
    is dry the operation fails immediately with its last failure instead
    of retrying — so a fleet of retrying clients sheds its own
    amplification.  No budget is set by default (unlimited retries, the
    historical behavior). *)

val clear_retry_budget : t -> unit

val retry_budget_remaining : t -> float
(** Tokens currently available ([infinity] when no budget is set). *)

val stats : t -> stats
val reset_stats : t -> unit

val cache_size : t -> int
(** Current number of replay-cache entries (≤ [cache_cap]). *)

val cache_mem : t -> op:string -> req:string -> bool
(** Whether a response for this exact request is still cached. *)

val call :
  t -> op:string -> req:string -> decode:(string -> 'a option) -> ?meter_resp:bool -> (string -> string) -> 'a
(** One request/response exchange.  [handler] maps request bytes to
    response bytes on the log side; [decode] types the response on the
    client side ([None] ⇒ the response was damaged ⇒ retry).
    [meter_resp] (default [true]) matches the pre-transport metering of
    exchanges whose response was never charged to the channel. *)

val post : t -> op:string -> req:string -> (string -> unit) -> unit
(** One-way request (the ack is subject to faults but never metered,
    matching the drivers' historical accounting). *)

val invoke : t -> op:string -> (unit -> 'a) -> 'a
(** An opaque exchange: under faults the thunk may time out before or
    after executing, or run twice under duplication — callees must be
    idempotent (the log-side dedup added for exactly this).  Corruption
    degenerates to clean delivery (there are no bytes to damage); any
    metering inside the thunk is the thunk's own. *)
