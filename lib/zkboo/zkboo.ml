(* ZKBoo / ZKB++ non-interactive zero-knowledge proofs for Boolean circuits
   (Giacomelli–Madsen–Orlandi, with the ZKB++ seed-derived views of
   Chase et al.), in the random-oracle model via Fiat–Shamir.

   The prover runs a (2,3)-decomposition of the circuit "in the head":
   wire w is XOR-shared as w = w0 ⊕ w1 ⊕ w2.  Linear gates are local; an
   AND gate costs one communicated bit per party:

     z_j = x_j·y_j ⊕ x_{j+1}·y_j ⊕ x_j·y_{j+1} ⊕ R_j(c) ⊕ R_{j+1}(c)

   The prover commits to each party's view, derives per-repetition
   challenges e ∈ {0,1,2} by hashing the transcript, and opens views e and
   e+1.  Soundness error is (2/3)^t, so t = 137 repetitions give < 2^-80
   (the paper's setting).

   Performance: repetitions are evaluated 62 at a time, bit-packed into
   native ints — the OCaml analogue of the paper's "SIMD instructions with
   a bitwidth of 32" — and batches run on multiple domains for the client
   core count sweep of Figure 3 (left). *)

module Bytesx = Larch_util.Bytesx
module Circuit = Larch_circuit.Circuit
module Trace = Larch_obs.Trace
open Circuit

let default_reps = 137
let lanes = 62 (* repetitions packed per native int *)
let seed_len = 16

type response = {
  seed_e : string;
  seed_e1 : string;
  x2 : string option; (* party 2's explicit input share, when opened *)
  z_e1 : string; (* packed AND-gate outputs of party e+1 *)
}

type proof = {
  n_reps : int;
  commits : string array array; (* n_reps × 3 *)
  out_shares : string array array; (* n_reps × 3, packed output bits *)
  responses : response array;
}

let bytes_for_bits n = (n + 7) / 8

(* --- per-(repetition, party) randomness, derived from a 16-byte seed --- *)

let input_share_of_seed (seed : string) (n_in : int) : string =
  Larch_cipher.Prg.next_bytes (Larch_cipher.Prg.create (seed ^ "zkboo-input")) (bytes_for_bits n_in)

let tape_of_seed (seed : string) (n_and : int) : string =
  Larch_cipher.Prg.next_bytes (Larch_cipher.Prg.create (seed ^ "zkboo-tape")) (bytes_for_bits n_and)

let commit ~(seed : string) ~(x_explicit : string option) ~(z : string) : string =
  Larch_hash.Sha256.digest_list
    [ "zkboo-commit"; seed; (match x_explicit with Some x -> x | None -> ""); z ]

(* --- bit packing: lane l of word i = bit i of repetition l --- *)

(* OR bit i of [s] into lane [lane] of words.(i), for i < n_bits. *)
let pack_into (words : int array) ~(lane : int) (s : string) (n_bits : int) : unit =
  let lane_bit = 1 lsl lane in
  let full_bytes = n_bits / 8 in
  for b = 0 to full_bytes - 1 do
    let v = Char.code (String.unsafe_get s b) in
    if v <> 0 then begin
      let base = 8 * b in
      if v land 0x01 <> 0 then words.(base) <- words.(base) lor lane_bit;
      if v land 0x02 <> 0 then words.(base + 1) <- words.(base + 1) lor lane_bit;
      if v land 0x04 <> 0 then words.(base + 2) <- words.(base + 2) lor lane_bit;
      if v land 0x08 <> 0 then words.(base + 3) <- words.(base + 3) lor lane_bit;
      if v land 0x10 <> 0 then words.(base + 4) <- words.(base + 4) lor lane_bit;
      if v land 0x20 <> 0 then words.(base + 5) <- words.(base + 5) lor lane_bit;
      if v land 0x40 <> 0 then words.(base + 6) <- words.(base + 6) lor lane_bit;
      if v land 0x80 <> 0 then words.(base + 7) <- words.(base + 7) lor lane_bit
    end
  done;
  for i = 8 * full_bytes to n_bits - 1 do
    if Bytesx.get_bit s i = 1 then words.(i) <- words.(i) lor lane_bit
  done

let unpack_lane (words : int array) ~(lane : int) (n_bits : int) : string =
  let out = Bytes.make (bytes_for_bits n_bits) '\000' in
  for i = 0 to n_bits - 1 do
    if (words.(i) lsr lane) land 1 = 1 then Bytesx.set_bit out i 1
  done;
  Bytes.unsafe_to_string out

(* --- three-party packed evaluation (prover side) --- *)

type eval3_result = {
  zs : int array array; (* party -> n_and words *)
  ys : int array array; (* party -> n_out words *)
}

let eval3 (c : Circuit.t) ~(mask : int) ~(inputs : int array array) ~(tapes : int array array) :
    eval3_result =
  let nw = Circuit.n_wires c in
  let w0 = Array.make nw 0 and w1 = Array.make nw 0 and w2 = Array.make nw 0 in
  Array.blit inputs.(0) 0 w0 0 c.n_inputs;
  Array.blit inputs.(1) 0 w1 0 c.n_inputs;
  Array.blit inputs.(2) 0 w2 0 c.n_inputs;
  let z0 = Array.make c.n_and 0 and z1 = Array.make c.n_and 0 and z2 = Array.make c.n_and 0 in
  let t0 = tapes.(0) and t1 = tapes.(1) and t2 = tapes.(2) in
  Array.iteri
    (fun i g ->
      let o = c.n_inputs + i in
      match g with
      | Xor (a, b) ->
          w0.(o) <- w0.(a) lxor w0.(b);
          w1.(o) <- w1.(a) lxor w1.(b);
          w2.(o) <- w2.(a) lxor w2.(b)
      | Not a ->
          w0.(o) <- w0.(a) lxor mask;
          w1.(o) <- w1.(a);
          w2.(o) <- w2.(a)
      | Const v ->
          w0.(o) <- (if v then mask else 0);
          w1.(o) <- 0;
          w2.(o) <- 0
      | And (a, b) ->
          let k = c.and_index.(i) in
          let x0 = w0.(a) and y0 = w0.(b) in
          let x1 = w1.(a) and y1 = w1.(b) in
          let x2 = w2.(a) and y2 = w2.(b) in
          let r0 = t0.(k) and r1 = t1.(k) and r2 = t2.(k) in
          let v0 = (x0 land y0) lxor (x1 land y0) lxor (x0 land y1) lxor r0 lxor r1 in
          let v1 = (x1 land y1) lxor (x2 land y1) lxor (x1 land y2) lxor r1 lxor r2 in
          let v2 = (x2 land y2) lxor (x0 land y2) lxor (x2 land y0) lxor r2 lxor r0 in
          w0.(o) <- v0;
          w1.(o) <- v1;
          w2.(o) <- v2;
          z0.(k) <- v0;
          z1.(k) <- v1;
          z2.(k) <- v2)
    c.gates;
  let gather w = Array.map (fun o -> w.(o)) c.outputs in
  { zs = [| z0; z1; z2 |]; ys = [| gather w0; gather w1; gather w2 |] }

(* --- two-party packed re-evaluation (verifier side) ---

   Lane A simulates absolute party [pa] = e; lane B simulates party
   [pa+1 mod 3], whose AND-gate outputs [zb] are taken from the proof. *)

type eval2_result = { za : int array; ya : int array; yb : int array }

let eval2 (c : Circuit.t) ~(mask : int) ~(pa : int) ~(input_a : int array) ~(input_b : int array)
    ~(tape_a : int array) ~(tape_b : int array) ~(zb : int array) : eval2_result =
  let pb = (pa + 1) mod 3 in
  let nw = Circuit.n_wires c in
  let wa = Array.make nw 0 and wb = Array.make nw 0 in
  Array.blit input_a 0 wa 0 c.n_inputs;
  Array.blit input_b 0 wb 0 c.n_inputs;
  let za = Array.make c.n_and 0 in
  Array.iteri
    (fun i g ->
      let o = c.n_inputs + i in
      match g with
      | Xor (a, b) ->
          wa.(o) <- wa.(a) lxor wa.(b);
          wb.(o) <- wb.(a) lxor wb.(b)
      | Not a ->
          wa.(o) <- (if pa = 0 then wa.(a) lxor mask else wa.(a));
          wb.(o) <- (if pb = 0 then wb.(a) lxor mask else wb.(a))
      | Const v ->
          let bitval = if v then mask else 0 in
          wa.(o) <- (if pa = 0 then bitval else 0);
          wb.(o) <- (if pb = 0 then bitval else 0)
      | And (a, b) ->
          let k = c.and_index.(i) in
          let v =
            (wa.(a) land wa.(b)) lxor (wb.(a) land wa.(b)) lxor (wa.(a) land wb.(b))
            lxor tape_a.(k) lxor tape_b.(k)
          in
          wa.(o) <- v;
          za.(k) <- v;
          wb.(o) <- zb.(k))
    c.gates;
  let gather w = Array.map (fun o -> w.(o)) c.outputs in
  { za; ya = gather wa; yb = gather wb }

(* --- Fiat–Shamir --- *)

let derive_challenges ~(statement_tag : string) ~(public_output : string)
    ~(commits : string array array) ~(out_shares : string array array) (n_reps : int) : int array
    =
  let ctx = Larch_hash.Sha256.init () in
  Larch_hash.Sha256.feed ctx "zkboo-fs";
  Larch_hash.Sha256.feed ctx statement_tag;
  Larch_hash.Sha256.feed ctx public_output;
  Array.iter (fun cs -> Array.iter (Larch_hash.Sha256.feed ctx) cs) commits;
  Array.iter (fun ys -> Array.iter (Larch_hash.Sha256.feed ctx) ys) out_shares;
  let h = Larch_hash.Sha256.finish ctx in
  let drbg = Larch_hash.Drbg.create ~entropy:h in
  let out = Array.make n_reps 0 in
  let i = ref 0 in
  while !i < n_reps do
    let block = Larch_hash.Drbg.generate drbg 32 in
    String.iter
      (fun ch ->
        let v = Char.code ch in
        (* 255 = 85*3, so bytes < 255 give uniform trits *)
        if v < 255 && !i < n_reps then begin
          out.(!i) <- v mod 3;
          incr i
        end)
      block
  done;
  out

let bits_to_bytes (bits : bool array) : string =
  Bytesx.string_of_bits (Array.map (fun b -> if b then 1 else 0) bits)

(* --- prover --- *)

type rep_artifact = { z : string array; y : string array; c : string array }

(* [lane_width] controls how many repetitions share each packed word —
   the default uses all 62 usable bits of a native int; [~lane_width:1]
   degenerates to the unpacked evaluation (the ablation baseline for the
   paper's SIMD optimization). *)
let prove ?(reps = default_reps) ?(domains = 1) ?(lane_width = lanes) ~(circuit : Circuit.t)
    ~(witness : bool array) ~(statement_tag : string) ~(rand_bytes : int -> string) () : proof =
  Trace.with_span "zkboo.prove" @@ fun () ->
  Trace.add_int "reps" reps;
  Trace.add_int "domains" domains;
  Trace.add_int "n_and" circuit.n_and;
  let lanes = max 1 (min lanes lane_width) in
  if Array.length witness <> circuit.n_inputs then invalid_arg "Zkboo.prove: witness size mismatch";
  let n_in = circuit.n_inputs and n_and = circuit.n_and in
  let n_out = Circuit.n_outputs circuit in
  let witness_bytes = bits_to_bytes witness in
  (* phase 1/4: per-repetition seeds and input shares *)
  let seeds, shares =
    Trace.with_span "zkboo.prove.shares" @@ fun () ->
    let seeds = Array.init reps (fun _ -> Array.init 3 (fun _ -> rand_bytes seed_len)) in
    (* input shares: parties 0,1 from seeds; party 2 explicit *)
    let shares =
      Array.map
        (fun s ->
          let x0 = input_share_of_seed s.(0) n_in and x1 = input_share_of_seed s.(1) n_in in
          let x2 = Bytesx.xor (Bytesx.xor witness_bytes x0) x1 in
          [| x0; x1; x2 |])
        seeds
    in
    (seeds, shares)
  in
  (* Process repetitions in packed batches.  Batch size shrinks below the
     full lane width when more domains are available than batches, so the
     cores sweep of Figure 3 (left) has work to distribute. *)
  let batch_size = min lanes (max 1 ((reps + domains - 1) / domains)) in
  let batches =
    let rec go start acc =
      if start >= reps then List.rev acc
      else go (start + batch_size) ((start, min batch_size (reps - start)) :: acc)
    in
    Array.of_list (go 0 [])
  in
  let run_batch (start, count) : rep_artifact array =
    Trace.with_span "zkboo.prove.batch" @@ fun () ->
    Trace.add_int "reps" count;
    let mask = if count >= 62 then max_int else (1 lsl count) - 1 in
    let inputs = Array.init 3 (fun _ -> Array.make n_in 0) in
    let tapes = Array.init 3 (fun _ -> Array.make n_and 0) in
    let tape_strs = Array.make_matrix count 3 "" in
    for l = 0 to count - 1 do
      let rep = start + l in
      for j = 0 to 2 do
        pack_into inputs.(j) ~lane:l shares.(rep).(j) n_in;
        let tape = tape_of_seed seeds.(rep).(j) n_and in
        tape_strs.(l).(j) <- tape;
        pack_into tapes.(j) ~lane:l tape n_and
      done
    done;
    let res = eval3 circuit ~mask ~inputs ~tapes in
    Array.init count (fun l ->
        let rep = start + l in
        let z = Array.init 3 (fun j -> unpack_lane res.zs.(j) ~lane:l n_and) in
        let y = Array.init 3 (fun j -> unpack_lane res.ys.(j) ~lane:l n_out) in
        let c =
          Array.init 3 (fun j ->
              commit ~seed:seeds.(rep).(j)
                ~x_explicit:(if j = 2 then Some shares.(rep).(2) else None)
                ~z:z.(j))
        in
        { z; y; c })
  in
  (* phase 2/4: evaluate + commit every repetition (the parallel part) *)
  let per_rep =
    Trace.with_span "zkboo.prove.commit" @@ fun () ->
    let artifacts = Larch_util.Parallel.map ~domains run_batch batches in
    Array.concat (Array.to_list artifacts)
  in
  let commits = Array.map (fun a -> a.c) per_rep in
  let out_shares = Array.map (fun a -> a.y) per_rep in
  (* phase 3/4: Fiat–Shamir challenge derivation *)
  let challenges =
    Trace.with_span "zkboo.prove.challenge" @@ fun () ->
    (* sanity: shares of the output must XOR to the circuit's real output *)
    let public_output = bits_to_bytes (Circuit.eval circuit witness) in
    derive_challenges ~statement_tag ~public_output ~commits ~out_shares reps
  in
  (* phase 4/4: assemble the opened views *)
  let responses =
    Trace.with_span "zkboo.prove.respond" @@ fun () ->
    Array.init reps (fun i ->
        let e = challenges.(i) in
        let e1 = (e + 1) mod 3 in
        {
          seed_e = seeds.(i).(e);
          seed_e1 = seeds.(i).(e1);
          x2 = (if e = 2 || e1 = 2 then Some shares.(i).(2) else None);
          z_e1 = per_rep.(i).z.(e1);
        })
  in
  { n_reps = reps; commits; out_shares; responses }

(* --- verifier --- *)

let verify ?(domains = 1) ~(circuit : Circuit.t) ~(public_output : bool array)
    ~(statement_tag : string) (proof : proof) : bool =
  Trace.with_span "zkboo.verify" @@ fun () ->
  Trace.add_int "reps" proof.n_reps;
  Trace.add_int "domains" domains;
  let n_in = circuit.n_inputs and n_and = circuit.n_and in
  let n_out = Circuit.n_outputs circuit in
  let out_bytes = bits_to_bytes public_output in
  if Array.length public_output <> n_out then false
  else if
    Array.length proof.commits <> proof.n_reps
    || Array.length proof.out_shares <> proof.n_reps
    || Array.length proof.responses <> proof.n_reps
  then false
  else begin
    let challenges =
      derive_challenges ~statement_tag ~public_output:out_bytes ~commits:proof.commits
        ~out_shares:proof.out_shares proof.n_reps
    in
    (* output shares must XOR to the public output in every repetition *)
    let xor_ok =
      Array.for_all
        (fun ys ->
          Array.length ys = 3
          && Bytesx.ct_equal (Bytesx.xor (Bytesx.xor ys.(0) ys.(1)) ys.(2)) out_bytes)
        proof.out_shares
    in
    if not xor_ok then false
    else begin
      (* group repetitions by challenge so each group packs into words *)
      let groups = [| ref []; ref []; ref [] |] in
      Array.iteri (fun i e -> groups.(e) := i :: !(groups.(e))) challenges;
      let jobs =
        Array.to_list groups
        |> List.concat_map (fun l ->
               let reps = Array.of_list (List.rev !l) in
               (* split into lane-sized chunks *)
               let rec chunks i acc =
                 if i >= Array.length reps then List.rev acc
                 else begin
                   let n = min lanes (Array.length reps - i) in
                   chunks (i + n) (Array.sub reps i n :: acc)
                 end
               in
               chunks 0 [])
        |> Array.of_list
      in
      let check_chunk (rep_ids : int array) : bool =
        Trace.with_span "zkboo.verify.chunk" @@ fun () ->
        let count = Array.length rep_ids in
        Trace.add_int "reps" count;
        if count = 0 then true
        else begin
          let e = challenges.(rep_ids.(0)) in
          let e1 = (e + 1) mod 3 in
          let mask = if count >= 62 then max_int else (1 lsl count) - 1 in
          let input_a = Array.make n_in 0 and input_b = Array.make n_in 0 in
          let tape_a = Array.make n_and 0 and tape_b = Array.make n_and 0 in
          let zb = Array.make n_and 0 in
          let share_a = Array.make count "" and share_b = Array.make count "" in
          let ok = ref true in
          for l = 0 to count - 1 do
            let i = rep_ids.(l) in
            let r = proof.responses.(i) in
            let share_of party seed =
              if party = 2 then begin
                match r.x2 with
                | Some x when String.length x = bytes_for_bits n_in -> x
                | _ -> ok := false; String.make (bytes_for_bits n_in) '\000'
              end
              else input_share_of_seed seed n_in
            in
            let sa = share_of e r.seed_e and sb = share_of e1 r.seed_e1 in
            share_a.(l) <- sa;
            share_b.(l) <- sb;
            if String.length r.z_e1 <> bytes_for_bits n_and then ok := false
            else begin
              pack_into input_a ~lane:l sa n_in;
              pack_into input_b ~lane:l sb n_in;
              pack_into tape_a ~lane:l (tape_of_seed r.seed_e n_and) n_and;
              pack_into tape_b ~lane:l (tape_of_seed r.seed_e1 n_and) n_and;
              pack_into zb ~lane:l r.z_e1 n_and
            end
          done;
          !ok
          && begin
               let res = eval2 circuit ~mask ~pa:e ~input_a ~input_b ~tape_a ~tape_b ~zb in
               Array.for_all
                 (fun l ->
                   let i = rep_ids.(l) in
                   let r = proof.responses.(i) in
                   let za = unpack_lane res.za ~lane:l n_and in
                   let ya = unpack_lane res.ya ~lane:l n_out in
                   let yb = unpack_lane res.yb ~lane:l n_out in
                   let ca =
                     commit ~seed:r.seed_e
                       ~x_explicit:(if e = 2 then Some share_a.(l) else None)
                       ~z:za
                   in
                   let cb =
                     commit ~seed:r.seed_e1
                       ~x_explicit:(if e1 = 2 then Some share_b.(l) else None)
                       ~z:r.z_e1
                   in
                   Bytesx.ct_equal ca proof.commits.(i).(e)
                   && Bytesx.ct_equal cb proof.commits.(i).(e1)
                   && Bytesx.ct_equal ya proof.out_shares.(i).(e)
                   && Bytesx.ct_equal yb proof.out_shares.(i).(e1))
                 (Array.init count (fun l -> l))
             end
        end
      in
      let results = Larch_util.Parallel.map ~domains check_chunk jobs in
      Array.for_all (fun b -> b) results
    end
  end

(* --- serialization --- *)

let put_str buf s =
  Buffer.add_string buf (Bytesx.be32 (String.length s));
  Buffer.add_string buf s

let to_bytes (p : proof) : string =
  let buf = Buffer.create (1 lsl 20) in
  Buffer.add_string buf (Bytesx.be32 p.n_reps);
  Array.iteri
    (fun i cs ->
      Array.iter (Buffer.add_string buf) cs;
      Array.iter (put_str buf) p.out_shares.(i);
      let r = p.responses.(i) in
      Buffer.add_string buf r.seed_e;
      Buffer.add_string buf r.seed_e1;
      (match r.x2 with
      | None -> Buffer.add_char buf '\000'
      | Some x ->
          Buffer.add_char buf '\001';
          put_str buf x);
      put_str buf r.z_e1)
    p.commits;
  Buffer.contents buf

exception Malformed

let of_bytes (s : string) : proof option =
  let pos = ref 0 in
  let take n =
    if !pos + n > String.length s then raise Malformed;
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  let take_u32 () =
    let b = take 4 in
    (Char.code b.[0] lsl 24) lor (Char.code b.[1] lsl 16) lor (Char.code b.[2] lsl 8)
    lor Char.code b.[3]
  in
  let take_str () =
    let n = take_u32 () in
    if n > String.length s then raise Malformed;
    take n
  in
  try
    let n_reps = take_u32 () in
    if n_reps <= 0 || n_reps > 4096 then raise Malformed;
    let commits = Array.make n_reps [||] in
    let out_shares = Array.make n_reps [||] in
    let responses =
      Array.init n_reps (fun i ->
          commits.(i) <- Array.init 3 (fun _ -> take 32);
          out_shares.(i) <- Array.init 3 (fun _ -> take_str ());
          let seed_e = take seed_len in
          let seed_e1 = take seed_len in
          let x2 = match (take 1).[0] with '\000' -> None | _ -> Some (take_str ()) in
          let z_e1 = take_str () in
          { seed_e; seed_e1; x2; z_e1 })
    in
    if !pos <> String.length s then raise Malformed;
    Some { n_reps; commits; out_shares; responses }
  with Malformed -> None

let size_bytes (p : proof) : int = String.length (to_bytes p)
